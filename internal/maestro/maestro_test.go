package maestro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/maestro"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 20 * time.Second

type sink struct {
	kernel.Base
	mu       sync.Mutex
	delivers []string
	switches []core.Switched
}

func (s *sink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch v := ind.(type) {
	case core.Deliver:
		s.delivers = append(s.delivers, fmt.Sprintf("%d:%s", v.Origin, v.Data))
	case core.Switched:
		s.switches = append(s.switches, v)
	}
}

func (s *sink) deliverCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivers)
}

func (s *sink) switchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.switches)
}

func (s *sink) deliveries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.delivers...)
}

func build(t *testing.T, n int, finalize time.Duration) (*stacktest.Cluster, []*sink) {
	t.Helper()
	c := stacktest.New(t, n, simnet.Config{}, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	c.Reg.MustRegister(maestro.Factory(maestro.Config{
		InitialProtocol: abcast.ProtocolCT, FinalizeDelay: finalize,
	}))
	c.CreateAll(maestro.Protocol)
	sinks := make([]*sink, n)
	for i := range sinks {
		i := i
		c.OnSync(i, func() {
			sinks[i] = &sink{Base: kernel.NewBase(c.Stacks[i], "sink")}
			c.Stacks[i].AddModule(sinks[i])
			c.Stacks[i].Subscribe(core.Service, sinks[i])
		})
	}
	return c, sinks
}

func TestBroadcastWithoutSwitch(t *testing.T) {
	c, sinks := build(t, 3, 50*time.Millisecond)
	for k := 0; k < 10; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
	}
	c.Eventually(timeout, "deliveries", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 10 {
				return false
			}
		}
		return true
	})
}

func TestWholeStackSwitchCompletes(t *testing.T) {
	c, sinks := build(t, 3, 30*time.Millisecond)
	c.Stacks[0].Call(core.Service, core.Broadcast{Data: []byte("pre")})
	c.Eventually(timeout, "pre delivery", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 1 {
				return false
			}
		}
		return true
	})
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Eventually(timeout, "switch everywhere", func() bool {
		for _, s := range sinks {
			if s.switchCount() != 1 {
				return false
			}
		}
		return true
	})
	c.Stacks[2].Call(core.Service, core.Broadcast{Data: []byte("post")})
	c.Eventually(timeout, "post delivery", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 2 {
				return false
			}
		}
		return true
	})
	got := make(chan core.Status, 1)
	c.Stacks[0].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
	if s := <-got; s.Protocol != abcast.ProtocolSeq || s.Sn != 1 {
		t.Errorf("status = %+v", s)
	}
}

func TestApplicationIsBlockedDuringSwitch(t *testing.T) {
	// Maestro's defining weakness vs the paper's approach: broadcasts
	// issued during the switch window are queued until the new stack
	// starts, so their latency includes the whole coordination window.
	const finalize = 120 * time.Millisecond
	c, sinks := build(t, 3, finalize)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolCT})
	time.Sleep(20 * time.Millisecond) // inside the blocking window
	sentAt := time.Now()
	c.Stacks[0].Call(core.Service, core.Broadcast{Data: []byte("blocked")})
	c.Eventually(timeout, "blocked message delivered", func() bool {
		return sinks[0].deliverCount() >= 1
	})
	elapsed := time.Since(sentAt)
	if elapsed < finalize/2 {
		t.Errorf("blocked message delivered after %v; expected to wait out the finalize window (~%v)",
			elapsed, finalize)
	}
}

func TestDeliverySequencesMatchAcrossSwitch(t *testing.T) {
	c, sinks := build(t, 3, 30*time.Millisecond)
	for k := 0; k < 5; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("a%d", k))})
	}
	time.Sleep(50 * time.Millisecond)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Eventually(timeout, "switch", func() bool {
		for _, s := range sinks {
			if s.switchCount() != 1 {
				return false
			}
		}
		return true
	})
	for k := 0; k < 5; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("b%d", k))})
	}
	c.Eventually(timeout, "all delivered", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 10 {
				return false
			}
		}
		return true
	})
	ref := sinks[0].deliveries()
	for i := 1; i < 3; i++ {
		got := sinks[i].deliveries()
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("stack %d sequence %v != %v", i, got, ref)
		}
	}
}
