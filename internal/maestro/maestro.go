// Package maestro is a baseline replacement manager modelled on the
// Maestro/Ensemble approach the paper compares against (Section 4.2):
// protocol replacement is whole-stack replacement, coordinated by a
// stack switch (SS) module on every machine.
//
// The protocol: the initiator reliably broadcasts PREPARE; every stack
// then (1) blocks the application — new broadcast calls queue — and
// finalizes the old protocol by letting its stream drain for
// FinalizeDelay; (2) reports READY to the initiator; (3) the initiator,
// once all stacks are ready, broadcasts SWITCH; (4) every stack destroys
// the old modules, creates the new stack, flushes the queued calls and
// unblocks.
//
// The measurable consequences the paper points out: the application is
// blocked for the whole coordination window (unlike the Repl approach),
// and a crash during the window stalls the switch (the SS coordination
// is not fault-tolerant the way ABcast-based coordination is).
//
// The module provides the same public service and request/indication
// types as core.Repl, so workloads run unchanged against either manager.
package maestro

import (
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// Protocol is the protocol name registered for this module.
const Protocol = "dpu/maestro"

const (
	ctrlChannel = "maestro"     // rbcast: PREPARE / SWITCH
	ackChannel  = "maestro-ack" // rp2p: READY
)

const (
	ctrlPrepare byte = 0
	ctrlSwitch  byte = 1
)

// Config configures the Maestro-style manager.
type Config struct {
	// InitialProtocol names the implementation installed at epoch 0.
	InitialProtocol string
	// Impls resolves implementation names.
	Impls *abcast.Registry
	// FinalizeDelay is how long each stack lets the old stack drain
	// while the application is blocked (the finalize() call).
	FinalizeDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.InitialProtocol == "" {
		c.InitialProtocol = abcast.ProtocolCT
	}
	if c.Impls == nil {
		c.Impls = abcast.StandardRegistry()
	}
	if c.FinalizeDelay <= 0 {
		c.FinalizeDelay = 100 * time.Millisecond
	}
	return c
}

// Module is the SS (stack switch) module.
type Module struct {
	kernel.Base
	cfg Config

	epoch    uint64
	cur      kernel.Module
	curName  string
	blocking bool
	queued   [][]byte

	// Initiator state.
	switchSeq uint64
	ready     map[kernel.Addr]bool
	pendName  string
}

// Factory returns the kernel factory for the Maestro baseline.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{core.Service},
		Requires: []kernel.ServiceID{rbcast.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base:  kernel.NewBase(st, Protocol),
				cfg:   cfg,
				ready: make(map[kernel.Addr]bool),
			}
		},
	}
}

// Start installs the initial implementation and wires control channels.
func (m *Module) Start() {
	m.Stk.Subscribe(abcast.ServiceImpl, m)
	m.Stk.Call(rbcast.Service, rbcast.Listen{Channel: ctrlChannel, Handler: m.onCtrl})
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: ackChannel, Handler: m.onReady})
	if err := m.install(m.cfg.InitialProtocol); err != nil {
		m.Stk.Logf("maestro: install: %v", err)
	}
}

// Stop detaches.
func (m *Module) Stop() {
	m.Stk.Unsubscribe(abcast.ServiceImpl, m)
	m.Stk.Call(rbcast.Service, rbcast.Unlisten{Channel: ctrlChannel})
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: ackChannel})
	if m.cur != nil {
		m.Stk.RemoveModule(m.cur.ID())
		m.cur = nil
	}
}

func (m *Module) install(name string) error {
	im, ok := m.cfg.Impls.Lookup(name)
	if !ok {
		return errUnknown(name)
	}
	for _, svc := range im.Requires {
		if err := m.Stk.EnsureService(svc); err != nil {
			return err
		}
	}
	mod := im.New(m.Stk, m.epoch)
	if err := m.Stk.AddModule(mod); err != nil {
		return err
	}
	if err := m.Stk.Bind(abcast.ServiceImpl, mod); err != nil {
		m.Stk.RemoveModule(mod.ID())
		return err
	}
	mod.Start()
	m.cur = mod
	m.curName = name
	return nil
}

type unknownErr string

func (e unknownErr) Error() string { return "maestro: unknown implementation " + string(e) }

func errUnknown(name string) error { return unknownErr(name) }

// HandleRequest processes Broadcast, ChangeProtocol and StatusReq using
// the shared core types.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case core.Broadcast:
		if m.blocking {
			m.queued = append(m.queued, append([]byte(nil), r.Data...))
			return
		}
		m.Stk.Call(abcast.ServiceImpl, abcast.Broadcast{Data: r.Data})
	case core.ChangeProtocol:
		m.initiate(r.Protocol)
	case core.StatusReq:
		if r.Reply != nil {
			r.Reply(core.Status{Sn: m.epoch, Protocol: m.curName, Undelivered: len(m.queued)})
		}
	}
}

func (m *Module) initiate(name string) {
	m.switchSeq++
	m.ready = make(map[kernel.Addr]bool)
	m.pendName = name
	w := wire.NewWriter(len(name) + 16)
	w.Byte(ctrlPrepare).Uvarint(m.switchSeq).Uvarint(uint64(m.Stk.Addr())).String(name)
	m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: ctrlChannel, Data: w.Bytes()})
}

func (m *Module) onCtrl(d rbcast.Deliver) {
	r := wire.NewReader(d.Data)
	switch r.Byte() {
	case ctrlPrepare:
		seq := r.Uvarint()
		initiator := kernel.Addr(r.Uvarint())
		name := r.String()
		if r.Err() != nil {
			return
		}
		// Block the application and finalize the old stack.
		m.blocking = true
		m.Stk.After(m.cfg.FinalizeDelay, func() {
			w := wire.NewWriter(12)
			w.Uvarint(seq)
			m.Stk.Call(rp2p.Service, rp2p.Send{To: initiator, Channel: ackChannel, Data: w.Bytes()})
		})
		_ = name // the switch message re-carries the name
	case ctrlSwitch:
		_ = r.Uvarint() // seq
		name := r.String()
		if r.Err() != nil {
			return
		}
		m.doSwitch(name)
	}
}

func (m *Module) onReady(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	seq := r.Uvarint()
	if r.Err() != nil || seq != m.switchSeq {
		return
	}
	m.ready[rv.From] = true
	if len(m.ready) == m.Stk.N() {
		w := wire.NewWriter(len(m.pendName) + 12)
		w.Byte(ctrlSwitch).Uvarint(seq).String(m.pendName)
		m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: ctrlChannel, Data: w.Bytes()})
	}
}

// doSwitch destroys the old stack and starts the new one (whole-stack
// replacement), then flushes the blocked calls.
func (m *Module) doSwitch(name string) {
	if m.cur != nil {
		m.Stk.Unbind(abcast.ServiceImpl)
		m.Stk.RemoveModule(m.cur.ID())
		m.cur = nil
	}
	m.epoch++
	if err := m.install(name); err != nil {
		m.Stk.Logf("maestro: switch install: %v", err)
		return
	}
	m.blocking = false
	queued := m.queued
	m.queued = nil
	for _, data := range queued {
		m.Stk.Call(abcast.ServiceImpl, abcast.Broadcast{Data: data})
	}
	m.Stk.Indicate(core.Service, core.Switched{
		Sn: m.epoch, Protocol: name, At: m.Stk.Now(), Reissued: len(queued),
	})
}

// HandleIndication re-indicates inner deliveries on the public service.
func (m *Module) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc != abcast.ServiceImpl {
		return
	}
	if d, ok := ind.(abcast.Deliver); ok {
		m.Stk.Indicate(core.Service, core.Deliver{Origin: d.Origin, Data: d.Data})
	}
}
