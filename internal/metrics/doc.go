// Package metrics is the stack's lightweight observability layer: a
// process-wide registry of named counters and gauges, plus the latency
// recorder behind the paper's Section 6 measurements.
//
// # Counters and gauges
//
// Modules expose high-frequency events (drops, retransmissions,
// decisions, deliveries) as registered Counters instead of per-event
// log lines, and instantaneous measurements (smoothed round-trip
// times, consensus latency) as Gauges. Both are cheap — one atomic
// word — and safe for concurrent use from every stack in the process.
// Snapshots (Counters, Gauges) feed cmd/dpu-bench's -json report and
// the adaptation engine in internal/policy, which derives windowed
// rates from counter deltas between samples. The full name registry is
// documented in docs/OPERATIONS.md.
//
// The registry is process-wide by design: a multi-process deployment
// has one registry per OS process (per node), while an in-process
// simulation aggregates all its stacks into one registry — the right
// granularity for a controller deciding a group-wide protocol switch.
//
// # Latency recorder
//
// The Recorder implements the measurement machinery of the paper's
// Section 6: the *average latency* of atomic broadcast. For a message
// m sent at t0, t_i(m) is the time between sending m and delivering m
// on stack i; the average latency of m is the mean of t_i(m) over all
// stacks. The recorder aggregates per-message averages and bins them
// by send time to draw Figure 5-style timelines.
package metrics
