package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named, monotonically increasing counter. Modules use
// counters (instead of per-event log lines) to expose drop and overflow
// events that may fire millions of times under load.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

var counterReg sync.Map // name -> *Counter

// NewCounter returns the process-wide counter registered under name,
// creating it on first use. Counters are cheap (one atomic) and safe
// for concurrent use; repeated calls with the same name return the same
// counter.
func NewCounter(name string) *Counter {
	if c, ok := counterReg.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := counterReg.LoadOrStore(name, &Counter{name: name})
	return c.(*Counter)
}

// Counters returns a snapshot of every registered counter, keyed by
// name.
func Counters() map[string]uint64 {
	out := make(map[string]uint64)
	counterReg.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// Gauge is a named, instantaneous measurement: the latest value of a
// signal rather than an accumulating count. Modules either Set it to
// the newest reading or Observe samples into a smoothed average.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Observe folds one sample into an exponentially weighted moving
// average (alpha = 1/8, the RFC 6298 SRTT coefficient): the gauge
// tracks the signal's recent level without a stale spike pinning it.
// The first sample (on a zero gauge) is adopted as-is.
func (g *Gauge) Observe(sample int64) {
	for {
		old := g.v.Load()
		next := sample
		if old != 0 {
			next = old + (sample-old)/8
		}
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

var gaugeReg sync.Map // name -> *Gauge

// NewGauge returns the process-wide gauge registered under name,
// creating it on first use. Repeated calls with the same name return
// the same gauge.
func NewGauge(name string) *Gauge {
	if g, ok := gaugeReg.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := gaugeReg.LoadOrStore(name, &Gauge{name: name})
	return g.(*Gauge)
}

// Gauges returns a snapshot of every registered gauge, keyed by name.
func Gauges() map[string]int64 {
	out := make(map[string]int64)
	gaugeReg.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Gauge).Value()
		return true
	})
	return out
}

// MsgID identifies one workload message.
type MsgID uint64

type msgStat struct {
	sentAt time.Time
	sum    time.Duration
	count  int
}

// Recorder aggregates latencies; safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	n    int // deliveries expected per message (group size)
	msgs map[MsgID]*msgStat
}

// NewRecorder returns a recorder for a group of n stacks.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, msgs: make(map[MsgID]*msgStat)}
}

// Sent records the send instant of a message.
func (r *Recorder) Sent(id MsgID, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.msgs[id]; !dup {
		r.msgs[id] = &msgStat{sentAt: at}
	}
}

// Delivered records a delivery of the message on some stack at the
// given instant. Deliveries recorded before Sent (impossible in a
// causally correct system) are ignored.
func (r *Recorder) Delivered(id MsgID, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.msgs[id]
	if !ok {
		return
	}
	st.sum += at.Sub(st.sentAt)
	st.count++
}

// MsgResult is the aggregated latency of one message.
type MsgResult struct {
	ID         MsgID
	SentAt     time.Time
	Avg        time.Duration // mean of t_i(m) over recorded deliveries
	Deliveries int
}

// Results returns per-message averages for every message with at least
// one recorded delivery, sorted by send time.
func (r *Recorder) Results() []MsgResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MsgResult, 0, len(r.msgs))
	for id, st := range r.msgs {
		if st.count == 0 {
			continue
		}
		out = append(out, MsgResult{
			ID:         id,
			SentAt:     st.sentAt,
			Avg:        st.sum / time.Duration(st.count),
			Deliveries: st.count,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SentAt.Before(out[j].SentAt) })
	return out
}

// Complete reports how many messages have all n deliveries recorded and
// how many were sent in total.
func (r *Recorder) Complete() (complete, sent int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.msgs {
		if st.count >= r.n {
			complete++
		}
	}
	return complete, len(r.msgs)
}

// ExpectPer lowers the per-message completeness target (e.g. after
// crashing stacks).
func (r *Recorder) ExpectPer(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = n
}

// Bin is one time bucket of a latency timeline.
type Bin struct {
	// Offset of the bucket start relative to the timeline origin.
	Offset time.Duration
	Count  int
	Avg    time.Duration
	P95    time.Duration
	Max    time.Duration
}

// Timeline buckets per-message averages by send time.
func Timeline(results []MsgResult, origin time.Time, width time.Duration) []Bin {
	if width <= 0 || len(results) == 0 {
		return nil
	}
	byBucket := make(map[int][]time.Duration)
	maxIdx := 0
	for _, res := range results {
		idx := int(res.SentAt.Sub(origin) / width)
		if idx < 0 {
			idx = 0
		}
		byBucket[idx] = append(byBucket[idx], res.Avg)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	bins := make([]Bin, 0, maxIdx+1)
	for idx := 0; idx <= maxIdx; idx++ {
		lats := byBucket[idx]
		b := Bin{Offset: time.Duration(idx) * width, Count: len(lats)}
		if len(lats) > 0 {
			b.Avg = Mean(lats)
			b.P95 = Percentile(lats, 0.95)
			b.Max = Percentile(lats, 1.0)
		}
		bins = append(bins, b)
	}
	return bins
}

// Mean returns the arithmetic mean.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank on a
// sorted copy.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WindowMean averages messages sent within [from, to).
func WindowMean(results []MsgResult, from, to time.Time) (time.Duration, int) {
	var lats []time.Duration
	for _, r := range results {
		if !r.SentAt.Before(from) && r.SentAt.Before(to) {
			lats = append(lats, r.Avg)
		}
	}
	return Mean(lats), len(lats)
}
