package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderAveragesOverStacks(t *testing.T) {
	r := NewRecorder(3)
	t0 := time.Now()
	r.Sent(1, t0)
	r.Delivered(1, t0.Add(10*time.Millisecond))
	r.Delivered(1, t0.Add(20*time.Millisecond))
	r.Delivered(1, t0.Add(30*time.Millisecond))
	res := r.Results()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Avg != 20*time.Millisecond {
		t.Errorf("Avg = %v, want 20ms", res[0].Avg)
	}
	if res[0].Deliveries != 3 {
		t.Errorf("Deliveries = %d", res[0].Deliveries)
	}
	complete, sent := r.Complete()
	if complete != 1 || sent != 1 {
		t.Errorf("Complete = %d/%d", complete, sent)
	}
}

func TestRecorderIgnoresUnknownAndDuplicateSends(t *testing.T) {
	r := NewRecorder(2)
	t0 := time.Now()
	r.Delivered(99, t0) // never sent: ignored
	r.Sent(1, t0)
	r.Sent(1, t0.Add(time.Hour)) // duplicate send keeps the original
	r.Delivered(1, t0.Add(5*time.Millisecond))
	res := r.Results()
	if len(res) != 1 || res[0].Avg != 5*time.Millisecond {
		t.Errorf("results = %+v", res)
	}
}

func TestRecorderIncompleteMessagesExcludedFromComplete(t *testing.T) {
	r := NewRecorder(3)
	t0 := time.Now()
	r.Sent(1, t0)
	r.Delivered(1, t0.Add(time.Millisecond))
	complete, sent := r.Complete()
	if complete != 0 || sent != 1 {
		t.Errorf("Complete = %d/%d, want 0/1", complete, sent)
	}
	r.ExpectPer(1)
	complete, _ = r.Complete()
	if complete != 1 {
		t.Errorf("after ExpectPer(1): complete = %d", complete)
	}
}

func TestResultsSortedBySendTime(t *testing.T) {
	r := NewRecorder(1)
	t0 := time.Now()
	r.Sent(2, t0.Add(10*time.Millisecond))
	r.Sent(1, t0)
	r.Delivered(1, t0.Add(time.Millisecond))
	r.Delivered(2, t0.Add(11*time.Millisecond))
	res := r.Results()
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 2 {
		t.Errorf("results = %+v", res)
	}
}

func TestTimelineBinning(t *testing.T) {
	t0 := time.Now()
	results := []MsgResult{
		{SentAt: t0.Add(10 * time.Millisecond), Avg: 2 * time.Millisecond},
		{SentAt: t0.Add(20 * time.Millisecond), Avg: 4 * time.Millisecond},
		{SentAt: t0.Add(120 * time.Millisecond), Avg: 10 * time.Millisecond},
	}
	bins := Timeline(results, t0, 100*time.Millisecond)
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(bins))
	}
	if bins[0].Count != 2 || bins[0].Avg != 3*time.Millisecond {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[1].Count != 1 || bins[1].Avg != 10*time.Millisecond {
		t.Errorf("bin 1 = %+v", bins[1])
	}
	if bins[1].Offset != 100*time.Millisecond {
		t.Errorf("bin 1 offset = %v", bins[1].Offset)
	}
}

func TestTimelineEmptyAndZeroWidth(t *testing.T) {
	if got := Timeline(nil, time.Now(), time.Second); got != nil {
		t.Errorf("Timeline(nil) = %v", got)
	}
	if got := Timeline([]MsgResult{{}}, time.Now(), 0); got != nil {
		t.Errorf("Timeline(width=0) = %v", got)
	}
}

func TestMeanAndPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2, 5}
	if Mean(ds) != 3 {
		t.Errorf("Mean = %v", Mean(ds))
	}
	if Percentile(ds, 0) != 1 {
		t.Errorf("P0 = %v", Percentile(ds, 0))
	}
	if Percentile(ds, 1) != 5 {
		t.Errorf("P100 = %v", Percentile(ds, 1))
	}
	if p := Percentile(ds, 0.5); p != 3 {
		t.Errorf("P50 = %v, want 3", p)
	}
	if Mean(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Error("empty inputs must yield 0")
	}
}

func TestWindowMean(t *testing.T) {
	t0 := time.Now()
	results := []MsgResult{
		{SentAt: t0, Avg: 10},
		{SentAt: t0.Add(time.Second), Avg: 20},
		{SentAt: t0.Add(2 * time.Second), Avg: 90},
	}
	mean, n := WindowMean(results, t0, t0.Add(1500*time.Millisecond))
	if n != 2 || mean != 15 {
		t.Errorf("WindowMean = %v over %d", mean, n)
	}
	_, n = WindowMean(results, t0.Add(time.Hour), t0.Add(2*time.Hour))
	if n != 0 {
		t.Errorf("out-of-range window matched %d", n)
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		var minD, maxD time.Duration = 1 << 62, -(1 << 62)
		for i, v := range raw {
			ds[i] = time.Duration(v)
			if ds[i] < minD {
				minD = ds[i]
			}
			if ds[i] > maxD {
				maxD = ds[i]
			}
		}
		p := float64(pRaw) / 255.0
		got := Percentile(ds, p)
		return got >= minD && got <= maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		var maxD time.Duration
		for i, v := range raw {
			ds[i] = time.Duration(v)
			if ds[i] > maxD {
				maxD = ds[i]
			}
		}
		m := Mean(ds)
		return m >= 0 && m <= maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountersRegisterOnceAndAccumulate(t *testing.T) {
	a := NewCounter("test.metrics.counter_a")
	b := NewCounter("test.metrics.counter_a")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(3)
	b.Add(2)
	if got := a.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if a.Name() != "test.metrics.counter_a" {
		t.Fatalf("Name = %q", a.Name())
	}
	snap := Counters()
	if snap["test.metrics.counter_a"] != 5 {
		t.Fatalf("snapshot = %v, want counter_a=5", snap)
	}
}

func TestGaugeSetObserveAndRegistry(t *testing.T) {
	g := NewGauge("test.metrics.gauge_a")
	if g != NewGauge("test.metrics.gauge_a") {
		t.Fatal("same name must return the same gauge")
	}
	g.Set(100)
	if got := g.Value(); got != 100 {
		t.Fatalf("Value = %d, want 100", got)
	}
	// EWMA: first sample on a zero gauge is adopted as-is, later
	// samples move 1/8 of the gap.
	g.Set(0)
	g.Observe(800)
	if got := g.Value(); got != 800 {
		t.Fatalf("first Observe = %d, want 800", got)
	}
	g.Observe(0)
	if got := g.Value(); got != 700 {
		t.Fatalf("EWMA after 800,0 = %d, want 700", got)
	}
	if snap := Gauges(); snap["test.metrics.gauge_a"] != 700 {
		t.Fatalf("snapshot = %v, want gauge_a=700", snap)
	}
	if g.Name() != "test.metrics.gauge_a" {
		t.Fatalf("Name = %q", g.Name())
	}
}

// TestRegistryConcurrentRegisterIncrementSnapshot hammers the
// process-wide registry from many goroutines — registering, adding,
// observing and snapshotting concurrently — and then verifies no
// increment was lost. Run under -race (CI does) this is the registry's
// data-race regression test.
func TestRegistryConcurrentRegisterIncrementSnapshot(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	names := []string{
		"test.metrics.race_a", "test.metrics.race_b",
		"test.metrics.race_c", "test.metrics.race_d",
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := names[(w+i)%len(names)]
				NewCounter(name).Add(1)
				NewGauge(name + ".gauge").Observe(int64(i))
				if i%64 == 0 {
					_ = Counters()
					_ = Gauges()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := Counters()
	var total uint64
	for _, name := range names {
		total += snap[name]
	}
	if want := uint64(workers * rounds); total != want {
		t.Fatalf("lost increments: %d counted, want %d", total, want)
	}
	for _, name := range names {
		if NewGauge(name+".gauge").Value() == 0 {
			t.Fatalf("gauge %s.gauge never observed", name)
		}
	}
}
