package kernel

import "time"

// TraceKind classifies structural events emitted by a stack.
type TraceKind int

// Trace event kinds. The DPU property checkers consume these: blocked /
// unblocked pairs witness (weak) stack-well-formedness, bind events per
// protocol witness protocol-operationability.
const (
	// TraceCall: a service call dispatched to the bound module.
	TraceCall TraceKind = iota
	// TraceCallBlocked: a call arrived while the service was unbound and
	// was parked.
	TraceCallBlocked
	// TraceCallUnblocked: a parked call was flushed to a newly bound
	// module; Blocked carries the waiting duration.
	TraceCallUnblocked
	// TraceBind: a module was bound to a service.
	TraceBind
	// TraceUnbind: a module was unbound from a service.
	TraceUnbind
	// TraceSubscribe / TraceUnsubscribe: listener registration changes.
	TraceSubscribe
	TraceUnsubscribe
	// TraceIndicate: an indication was delivered to at least one listener.
	TraceIndicate
	// TraceIndicationDropped: an indication had no listener.
	TraceIndicationDropped
	// TraceModuleAdd / TraceModuleRemove: module lifecycle.
	TraceModuleAdd
	TraceModuleRemove
	// TraceCrash: the stack crashed.
	TraceCrash
	// TracePeersChanged: SetPeers installed a new membership view.
	TracePeersChanged
)

var traceKindNames = [...]string{
	"call", "call-blocked", "call-unblocked", "bind", "unbind",
	"subscribe", "unsubscribe", "indicate", "indication-dropped",
	"module-add", "module-remove", "crash", "peers-changed",
}

// String returns a short name for the kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one structural event on one stack.
type TraceEvent struct {
	Stack    Addr
	Kind     TraceKind
	Service  ServiceID
	Module   ModuleID
	Protocol string
	Blocked  time.Duration // TraceCallUnblocked: how long the call waited
	Time     time.Time
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use: stacks of a group typically share one tracer.
type Tracer interface {
	Trace(TraceEvent)
}
