package kernel

import (
	"sync"
	"sync/atomic"
)

// task is one queued executor event. The hot paths (Call, Indicate)
// enqueue a small typed struct instead of allocating a fresh closure
// per event; generic events (Do, timers) still carry a closure.
type task struct {
	kind byte
	svc  ServiceID
	arg  any    // request or indication payload, pre-boxed by the caller
	fn   func() // kindFn only
}

const (
	kindFn byte = iota
	kindCall
	kindIndicate
	kindIndicateBatch // arg is []Indication, delivered in order
)

// executor is the serial event loop of one stack: an unbounded FIFO of
// tasks drained in batches, with the stack's flushers run after every
// batch (see Stack.RegisterFlusher). Unboundedness matters: module code
// enqueues follow-up events while the executor is busy, and a bounded
// channel would deadlock the loop against itself.
//
// The executor runs in one of two modes, fixed at construction:
//
//   - Dedicated (pool == nil): a goroutine per stack, parked on a cond
//     var while idle. The original mode; best for a handful of stacks.
//
//   - Pooled (pool != nil): no goroutine of its own. When the queue
//     goes non-empty the executor is submitted to a kernel.Pool, whose
//     workers call slice() — at most one worker owns the executor at a
//     time (the scheduled flag), so per-stack serialization is exactly
//     the dedicated mode's, while independent stacks run on however
//     many cores the pool has. A long-running stack yields the worker
//     back after poolSlicePasses batches so co-scheduled stacks are
//     never starved.
//
// Both modes drain in batches: the whole queue is swapped out under one
// lock acquisition and run from a local slice, so N queued events cost
// one lock round-trip instead of N.
type executor struct {
	mu       sync.Mutex
	cond     *sync.Cond // dedicated mode only
	queue    []task
	spare    []task // recycled batch storage, swapped back under the lock
	accepted uint64 // monotonic count of enqueued tasks (quiescence detection)
	busy     bool   // a batch is being drained or flushed
	stopped  bool
	drain    bool
	killed   atomic.Bool // crash: discard remaining batch events too
	done     chan struct{}
	doneOnce sync.Once
	runTask  func(*task)
	flush    func()

	pool      *Pool
	scheduled bool // pooled mode: a slice() is queued on the pool or running
}

// poolSlicePasses bounds how many batches one pool slice drains before
// yielding the worker, so a stack under sustained load cannot starve
// its pool-mates.
const poolSlicePasses = 8

func newExecutor(runTask func(*task), flush func(), pool *Pool) *executor {
	e := &executor{done: make(chan struct{}), runTask: runTask, flush: flush, pool: pool}
	if pool == nil {
		e.cond = sync.NewCond(&e.mu)
		go e.run()
	}
	return e
}

// do enqueues fn; reports false when the executor no longer accepts work.
func (e *executor) do(fn func()) bool {
	return e.enqueue(task{kind: kindFn, fn: fn})
}

// enqueue appends a task; reports false when the executor has stopped.
// Dedicated mode signals the loop only on the empty->non-empty
// transition (it re-checks the queue under the lock before waiting);
// pooled mode submits the executor to the pool on the idle->scheduled
// transition, so a busy or already-queued executor costs no pool
// traffic.
func (e *executor) enqueue(t task) bool {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, t)
	e.accepted++
	if e.pool != nil {
		submit := !e.scheduled
		if submit {
			e.scheduled = true
		}
		e.mu.Unlock()
		if submit {
			e.pool.submit(e)
		}
		return true
	}
	first := len(e.queue) == 1
	e.mu.Unlock()
	if first {
		e.cond.Signal()
	}
	return true
}

// stop halts the loop and returns without waiting, so it is safe to
// call from an event running on the executor itself. With drain=true,
// already-queued events still run; with drain=false (crash) the queue —
// including the not-yet-run remainder of an in-flight batch — is
// discarded. In pooled mode an idle executor is submitted once more so
// a slice observes the stop and closes done.
func (e *executor) stop(drain bool) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.drain = drain
	if !drain {
		e.killed.Store(true)
		e.queue = nil
	}
	if e.pool != nil {
		submit := !e.scheduled
		if submit {
			e.scheduled = true
		}
		e.mu.Unlock()
		if submit {
			e.pool.submit(e)
		}
		return
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// wait blocks until the executor has fully stopped (its goroutine
// exited, or — pooled — its final slice completed). Must not be called
// from the executor itself.
func (e *executor) wait() { <-e.done }

func (e *executor) running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.stopped
}

// queueState reports the monotonic count of tasks ever accepted and
// whether the loop is idle (nothing queued, no batch in flight). A
// stopped executor reports idle once its final batch drains, so virtual
// clocks never wait on dead stacks.
func (e *executor) queueState() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.accepted, len(e.queue) == 0 && !e.busy
}

// drainBatch swaps the queue out and runs it, then runs the flushers.
// Returns false when there was nothing to drain or the executor is
// finished (stopped and drained). Both modes' loops are built on it.
// The caller must NOT hold e.mu.
func (e *executor) drainBatch() (again bool) {
	e.mu.Lock()
	if e.stopped && (!e.drain || len(e.queue) == 0) {
		e.queue, e.spare = nil, nil
		e.busy = false
		e.mu.Unlock()
		e.doneOnce.Do(func() { close(e.done) })
		return false
	}
	if len(e.queue) == 0 {
		e.busy = false
		e.mu.Unlock()
		return false
	}
	batch := e.queue
	e.queue = e.spare
	e.spare = nil
	e.busy = true
	e.mu.Unlock()

	for i := range batch {
		if e.killed.Load() {
			break
		}
		e.runTask(&batch[i])
	}
	// Release payload/closure references before the storage is
	// recycled, whether the batch completed or a crash cut it short.
	clear(batch)
	if !e.killed.Load() {
		e.flush()
	}
	e.mu.Lock()
	e.spare = batch[:0]
	e.busy = false
	e.mu.Unlock()
	return true
}

// run is the dedicated-mode loop: drain batches, park on the cond var
// when idle, exit once stopped (and, when draining, empty).
func (e *executor) run() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.stopped {
			e.cond.Wait()
		}
		e.mu.Unlock()
		if !e.drainBatch() {
			e.mu.Lock()
			finished := e.stopped && (!e.drain || len(e.queue) == 0)
			e.mu.Unlock()
			if finished {
				e.doneOnce.Do(func() { close(e.done) })
				return
			}
		}
	}
}

// slice is one pool worker's turn at this executor: up to
// poolSlicePasses batches, then the worker goes back to the pool. If
// work remains (or arrived during the last batch) the executor re-queues
// itself; otherwise it clears scheduled so the next enqueue submits it
// again. Exactly one worker runs slice at a time — the scheduled flag
// is the ownership token, handed back only here or at enqueue/stop.
func (e *executor) slice() {
	for pass := 0; pass < poolSlicePasses; pass++ {
		if !e.drainBatch() {
			e.mu.Lock()
			if e.stopped && (!e.drain || len(e.queue) == 0) {
				e.mu.Unlock()
				// drainBatch's finished branch usually closed done, but
				// stop() may have landed between drainBatch releasing the
				// lock in its empty-queue branch and the re-lock above —
				// then no further slice is ever submitted, so done must be
				// closed here or wait() hangs. doneOnce dedupes the two
				// paths. scheduled stays set — a stopped executor is never
				// resubmitted.
				e.doneOnce.Do(func() { close(e.done) })
				return
			}
			if len(e.queue) == 0 {
				e.scheduled = false
				e.mu.Unlock()
				return
			}
			e.mu.Unlock()
		}
	}
	// Passes exhausted with (possibly) work left: yield the worker and
	// take a place at the back of the pool's run queue.
	e.mu.Lock()
	requeue := len(e.queue) > 0 || e.stopped
	if !requeue {
		e.scheduled = false
	}
	e.mu.Unlock()
	if requeue {
		e.pool.yield(e)
	}
}
