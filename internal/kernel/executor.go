package kernel

import "sync"

// executor is the serial event loop of one stack: an unbounded FIFO of
// closures drained by a single goroutine. Unboundedness matters: module
// code enqueues follow-up events while the executor is busy, and a
// bounded channel would deadlock the loop against itself.
type executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	stopped bool
	drain   bool
	done    chan struct{}
}

func newExecutor() *executor {
	e := &executor{done: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// do enqueues fn; reports false when the executor no longer accepts work.
func (e *executor) do(fn func()) bool {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, fn)
	e.mu.Unlock()
	e.cond.Signal()
	return true
}

// stop halts the loop and returns without waiting, so it is safe to
// call from an event running on the executor itself. With drain=true,
// already-queued events still run; with drain=false (crash) the queue
// is discarded.
func (e *executor) stop(drain bool) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.drain = drain
	if !drain {
		e.queue = nil
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// wait blocks until the loop goroutine has exited. Must not be called
// from the executor itself.
func (e *executor) wait() { <-e.done }

func (e *executor) running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.stopped
}

func (e *executor) run() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.stopped {
			e.cond.Wait()
		}
		if e.stopped && (!e.drain || len(e.queue) == 0) {
			e.queue = nil
			e.mu.Unlock()
			close(e.done)
			return
		}
		fn := e.queue[0]
		e.queue[0] = nil
		e.queue = e.queue[1:]
		e.mu.Unlock()
		fn()
	}
}
