package kernel

import (
	"sync"
	"sync/atomic"
)

// task is one queued executor event. The hot paths (Call, Indicate)
// enqueue a small typed struct instead of allocating a fresh closure
// per event; generic events (Do, timers) still carry a closure.
type task struct {
	kind byte
	svc  ServiceID
	arg  any    // request or indication payload, pre-boxed by the caller
	fn   func() // kindFn only
}

const (
	kindFn byte = iota
	kindCall
	kindIndicate
)

// executor is the serial event loop of one stack: an unbounded FIFO of
// tasks drained by a single goroutine. Unboundedness matters: module
// code enqueues follow-up events while the executor is busy, and a
// bounded channel would deadlock the loop against itself.
//
// The loop drains in batches: it swaps the whole queue out under one
// lock acquisition and runs the events from a local slice, so N queued
// events cost one lock round-trip instead of N. After each drained
// batch the stack's flushers run (see Stack.RegisterFlusher), which is
// what lets modules coalesce the batch's outgoing traffic.
type executor struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []task
	spare    []task // recycled batch storage, swapped back under the lock
	accepted uint64 // monotonic count of enqueued tasks (quiescence detection)
	busy     bool   // a batch is being drained or flushed
	stopped  bool
	drain    bool
	killed   atomic.Bool // crash: discard remaining batch events too
	done     chan struct{}
	runTask  func(*task)
	flush    func()
}

func newExecutor(runTask func(*task), flush func()) *executor {
	e := &executor{done: make(chan struct{}), runTask: runTask, flush: flush}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// do enqueues fn; reports false when the executor no longer accepts work.
func (e *executor) do(fn func()) bool {
	return e.enqueue(task{kind: kindFn, fn: fn})
}

// enqueue appends a task; reports false when the executor has stopped.
// The wake-up signal fires only on the empty->non-empty transition: the
// loop re-checks the queue under the lock before waiting, so a signal
// for an already-busy loop would be redundant.
func (e *executor) enqueue(t task) bool {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, t)
	e.accepted++
	first := len(e.queue) == 1
	e.mu.Unlock()
	if first {
		e.cond.Signal()
	}
	return true
}

// stop halts the loop and returns without waiting, so it is safe to
// call from an event running on the executor itself. With drain=true,
// already-queued events still run; with drain=false (crash) the queue —
// including the not-yet-run remainder of an in-flight batch — is
// discarded.
func (e *executor) stop(drain bool) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.drain = drain
	if !drain {
		e.killed.Store(true)
		e.queue = nil
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// wait blocks until the loop goroutine has exited. Must not be called
// from the executor itself.
func (e *executor) wait() { <-e.done }

func (e *executor) running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.stopped
}

// queueState reports the monotonic count of tasks ever accepted and
// whether the loop is idle (nothing queued, no batch in flight). A
// stopped executor reports idle once its final batch drains, so virtual
// clocks never wait on dead stacks.
func (e *executor) queueState() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.accepted, len(e.queue) == 0 && !e.busy
}

func (e *executor) run() {
	var batch []task
	for {
		e.mu.Lock()
		// Return the previous batch's storage for reuse before waiting.
		if batch != nil {
			e.spare = batch[:0]
			batch = nil
		}
		e.busy = false
		for len(e.queue) == 0 && !e.stopped {
			e.cond.Wait()
		}
		if e.stopped && (!e.drain || len(e.queue) == 0) {
			e.queue, e.spare = nil, nil
			e.mu.Unlock()
			close(e.done)
			return
		}
		batch = e.queue
		e.queue = e.spare
		e.spare = nil
		e.busy = true
		e.mu.Unlock()

		for i := range batch {
			if e.killed.Load() {
				break
			}
			e.runTask(&batch[i])
		}
		// Release payload/closure references before the storage is
		// recycled, whether the batch completed or a crash cut it short.
		clear(batch)
		if !e.killed.Load() {
			e.flush()
		}
	}
}
