package kernel

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Process-wide counters for pool scheduling (docs/OPERATIONS.md):
// pool_slices counts worker turns (one slice = up to poolSlicePasses
// event batches on one stack), pool_yields counts the turns that ended
// with the stack still loaded and re-queued — a high yield share means
// stacks are saturating their slices and the pool is the bottleneck.
var (
	poolSlicesCounter = metrics.NewCounter("kernel.pool_slices")
	poolYieldsCounter = metrics.NewCounter("kernel.pool_yields")
)

// Pool is a shared executor scheduler: a fixed set of workers that run
// event slices for any number of stacks, so one process can host many
// stacks on a few cores instead of a goroutine per stack. A stack is
// owned by at most one worker at a time (see executor.slice), so the
// kernel's serial-executor semantics are untouched — the pool changes
// where stacks run, never how.
//
// Stacks opt in through Config.Pool (the dpu layer's WithExecutorPool).
// Lifecycle contract: close every stack before closing the pool. A
// straggler submitted after Close is still drained — on a transient
// goroutine — so nothing hangs, but orderly shutdown should not rely
// on that.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	runq   []*executor
	closed bool
	wg     sync.WaitGroup
	n      int
}

// NewPool starts a pool of n workers; n <= 0 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{n: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.n }

// worker pops executors FIFO and runs one slice each. After Close the
// backlog is drained before the worker exits.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.runq) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.runq) == 0 {
			p.mu.Unlock()
			return
		}
		e := p.runq[0]
		p.runq[0] = nil
		p.runq = p.runq[1:]
		p.mu.Unlock()
		poolSlicesCounter.Add(1)
		e.slice()
	}
}

// submit queues an executor for a worker slice. Called by the executor
// on its idle->scheduled transition, never twice concurrently for the
// same executor.
func (p *Pool) submit(e *executor) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// Shutdown-order violation (a stack still live after Pool.Close,
		// or a final stop straggling in): drain it on its own goroutine
		// so Stack.Close never hangs.
		go e.slice()
		return
	}
	p.runq = append(p.runq, e)
	p.mu.Unlock()
	p.cond.Signal()
}

// yield re-queues an executor whose slice expired with work remaining.
func (p *Pool) yield(e *executor) {
	poolYieldsCounter.Add(1)
	p.submit(e)
}

// Close stops the workers after the queued slices drain and waits for
// them to exit. Close every stack using the pool first.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
