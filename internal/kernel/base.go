package kernel

// Base provides the boilerplate part of a Module. Protocol modules embed
// it and override the handlers they care about; the zero-value handlers
// ignore events, matching modules that are pure initiators.
type Base struct {
	Stk   *Stack
	MID   ModuleID
	Proto string
}

// NewBase builds a Base with a fresh unique module ID for the protocol.
// Executor-only (uses the stack's ID counter).
func NewBase(st *Stack, protocol string) Base {
	return Base{Stk: st, MID: st.NextModuleID(protocol), Proto: protocol}
}

// ID returns the module's identity.
func (b *Base) ID() ModuleID { return b.MID }

// Protocol returns the protocol name.
func (b *Base) Protocol() string { return b.Proto }

// Stack returns the stack the module lives in.
func (b *Base) Stack() *Stack { return b.Stk }

// HandleRequest ignores requests; override in the embedding module.
func (b *Base) HandleRequest(ServiceID, Request) {}

// HandleIndication ignores indications; override in the embedding module.
func (b *Base) HandleIndication(ServiceID, Indication) {}

// Start is a no-op; override in the embedding module.
func (b *Base) Start() {}

// Stop is a no-op; override in the embedding module.
func (b *Base) Stop() {}
