package kernel

import (
	"fmt"
	"testing"
)

// peerLog records PeersChanged indications.
type peerLog struct {
	Base
	events []PeersChanged
}

func (l *peerLog) HandleIndication(_ ServiceID, ind Indication) {
	if pc, ok := ind.(PeersChanged); ok {
		l.events = append(l.events, pc)
	}
}

func TestSetPeersDiffsAndIndicates(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0, 1, 2}})
	defer st.Close()
	var l *peerLog
	st.DoSync(func() {
		l = &peerLog{Base: NewBase(st, "peer-log")}
		st.AddModule(l)
		st.Subscribe(PeerService, l)
	})

	var added, removed []Addr
	st.DoSync(func() {
		added, removed = st.SetPeers([]Addr{0, 2, 5}, map[Addr]string{5: "host:5"})
	})
	if fmt.Sprint(added) != "[5]" || fmt.Sprint(removed) != "[1]" {
		t.Fatalf("diff added=%v removed=%v", added, removed)
	}
	if got := fmt.Sprint(st.Peers()); got != "[0 2 5]" {
		t.Fatalf("Peers() = %s", got)
	}
	if st.N() != 3 {
		t.Fatalf("N() = %d", st.N())
	}
	if got := fmt.Sprint(st.Others()); got != "[2 5]" {
		t.Fatalf("Others() = %s", got)
	}
	if st.Endpoint(5) != "host:5" || st.Endpoint(0) != "" {
		t.Fatalf("endpoints: %q %q", st.Endpoint(5), st.Endpoint(0))
	}

	var events []PeersChanged
	st.DoSync(func() { events = append([]PeersChanged(nil), l.events...) })
	if len(events) != 1 {
		t.Fatalf("got %d PeersChanged, want 1", len(events))
	}
	ev := events[0]
	if fmt.Sprint(ev.Peers) != "[0 2 5]" || fmt.Sprint(ev.Added) != "[5]" || fmt.Sprint(ev.Removed) != "[1]" {
		t.Fatalf("event %+v", ev)
	}
	if ev.Endpoints[5] != "host:5" {
		t.Fatalf("event endpoints %v", ev.Endpoints)
	}
}

func TestSetPeersNoChangeNoIndication(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0, 1}})
	defer st.Close()
	var l *peerLog
	st.DoSync(func() {
		l = &peerLog{Base: NewBase(st, "peer-log")}
		st.AddModule(l)
		st.Subscribe(PeerService, l)
	})
	var added, removed []Addr
	st.DoSync(func() {
		added, removed = st.SetPeers([]Addr{1, 0}, nil) // same set, different order
	})
	if added != nil || removed != nil {
		t.Fatalf("diff on identical set: %v / %v", added, removed)
	}
	var count int
	st.DoSync(func() { count = len(l.events) })
	if count != 0 {
		t.Fatalf("identical set indicated %d times", count)
	}
}

func TestPeersSafeFromAnyGoroutine(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0, 1}})
	defer st.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = st.Peers()
			_ = st.Others()
			_ = st.N()
		}
	}()
	for i := 0; i < 100; i++ {
		n := i
		st.DoSync(func() { st.SetPeers([]Addr{0, 1, Addr(2 + n%3)}, nil) })
	}
	<-done
}
