package kernel

// Tests for the shared executor pool (pool.go) and the batched
// indication path (IndicateBatch). The pool must change WHERE stacks
// run, never their semantics: strict per-stack serialization, FIFO
// event order, Close draining — everything the dedicated-goroutine
// mode guarantees.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPooledStack(t *testing.T, p *Pool) *Stack {
	t.Helper()
	st := NewStack(Config{Addr: 0, Peers: []Addr{0, 1, 2}, Pool: p})
	return st
}

// TestPoolSerializationAndFIFO is the pool-mode executor quickcheck:
// several stacks share a small pool while a dedicated sender per stack
// streams sequenced events. Each stack asserts (a) mutual exclusion —
// an atomic in-flight flag catches any two workers inside one stack at
// once — and (b) strict FIFO from a single enqueuer.
func TestPoolSerializationAndFIFO(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const stacks, events = 6, 400
	var violations atomic.Int64
	sts := make([]*Stack, stacks)
	for s := range sts {
		sts[s] = newPooledStack(t, p)
	}
	var wg sync.WaitGroup
	for s, st := range sts {
		wg.Add(1)
		go func(s int, st *Stack) {
			defer wg.Done()
			var inFlight atomic.Int32
			next := 0
			for i := 0; i < events; i++ {
				i := i
				st.Do(func() {
					if !inFlight.CompareAndSwap(0, 1) {
						violations.Add(1) // two workers inside one stack
					}
					if i != next {
						violations.Add(1) // reordered
					}
					next++
					inFlight.Store(0)
				})
			}
			if err := st.DoSync(func() {
				if next != events {
					t.Errorf("stack %d ran %d/%d events", s, next, events)
				}
			}); err != nil {
				t.Errorf("stack %d: %v", s, err)
			}
		}(s, st)
	}
	wg.Wait()
	for _, st := range sts {
		st.Close()
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d serialization/FIFO violations", v)
	}
}

// TestPoolStress hammers pooled stacks from many goroutines with the
// full event mix — Do, Call, Indicate, DoSync, timers — then closes
// everything. Run under -race this doubles as the data-race check for
// the scheduled-flag handoff between pool workers.
func TestPoolStress(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const stacks, goroutines, perG = 4, 6, 200
	for s := 0; s < stacks; s++ {
		st := newPooledStack(t, p)
		var m *testModule
		var count atomic.Int64
		st.DoSync(func() {
			m = newTestModule(st, "p")
			m.onRequest = func(ServiceID, Request) { count.Add(1) }
			st.AddModule(m)
			st.Bind("svc", m)
			st.Subscribe("svc", m)
		})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					switch i % 4 {
					case 0:
						st.Call("svc", i)
					case 1:
						st.Indicate("svc", i)
					case 2:
						st.Do(func() {})
					case 3:
						st.DoSync(func() {})
					}
				}
			}()
		}
		wg.Wait()
		st.DoSync(func() {
			if got := count.Load(); got != goroutines*perG/4 {
				t.Errorf("stack %d: %d requests, want %d", s, got, goroutines*perG/4)
			}
			if got := len(m.indications); got != goroutines*perG/4 {
				t.Errorf("stack %d: %d indications, want %d", s, got, goroutines*perG/4)
			}
		})
		st.Close()
	}
}

// TestPoolCloseDrainsQueuedEvents mirrors the dedicated-mode guarantee:
// events enqueued before Close run before Close returns, even when the
// stack is scheduled on a shared pool.
func TestPoolCloseDrainsQueuedEvents(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	st := newPooledStack(t, p)
	var ran atomic.Int64
	block := make(chan struct{})
	st.Do(func() { <-block })
	for i := 0; i < 50; i++ {
		st.Do(func() { ran.Add(1) })
	}
	close(block)
	st.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("Close drained %d/50 queued events", got)
	}
}

// TestPoolClosedStraggler violates the documented close order (pool
// before stacks) and checks the fallback: a stack whose pool is gone
// must still run its events and Close without hanging.
func TestPoolClosedStraggler(t *testing.T) {
	p := NewPool(2)
	st := newPooledStack(t, p)
	st.DoSync(func() {}) // scheduled at least once while the pool lives
	p.Close()
	var ran bool
	done := make(chan struct{})
	st.Do(func() { ran = true })
	go func() { st.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after pool shutdown")
	}
	if !ran {
		t.Fatal("event enqueued after pool Close never ran")
	}
}

// TestPoolStopDuringSliceClosesDone checks the pooled-shutdown liveness
// contract: whatever the interleaving of enqueue and stop, wait() must
// return. The motivating race — stop() landing between drainBatch
// releasing the lock in its empty-queue branch and slice() re-locking,
// so stop sees scheduled still set and skips the pool submit, leaving
// slice's stopped-and-drained branch as the last code to observe the
// stop (it must close done itself or wait() hangs forever) — sits in a
// gap too narrow to force from a test, so this is a stress check of the
// invariant, not a deterministic reproduction.
func TestPoolStopDuringSliceClosesDone(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < 2000; i++ {
		e := newExecutor(func(*task) {}, func() {}, p)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				e.do(func() {})
			}
		}()
		go func() {
			defer wg.Done()
			e.stop(i%2 == 0) // alternate drain and kill
		}()
		wg.Wait()
		done := make(chan struct{})
		go func() { e.wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: wait() hung after stop", i)
		}
	}
}

// TestPoolWorkersDefault checks the n<=0 → GOMAXPROCS default.
func TestPoolWorkersDefault(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

// TestIndicateBatchOrdering checks that one batched indication event is
// observationally identical to its unbatched expansion: listeners see
// every indication individually, in slice order, correctly interleaved
// with surrounding plain Indicates. Runs in both executor modes.
func TestIndicateBatchOrdering(t *testing.T) {
	modes := []struct {
		name string
		mk   func(t *testing.T) *Stack
	}{
		{"dedicated", func(t *testing.T) *Stack { return newTestStack(t, nil) }},
		{"pooled", func(t *testing.T) *Stack {
			p := NewPool(2)
			st := newPooledStack(t, p)
			t.Cleanup(func() { st.Close(); p.Close() })
			return st
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			st := mode.mk(t)
			var a, b *testModule
			st.DoSync(func() {
				a = newTestModule(st, "a")
				b = newTestModule(st, "b")
				st.AddModule(a)
				st.AddModule(b)
				st.Subscribe("svc", a)
				st.Subscribe("svc", b)
			})
			st.Indicate("svc", "pre")
			st.IndicateBatch("svc", []Indication{"x0", "x1", "x2"})
			st.IndicateBatch("svc", nil) // empty batch: no event at all
			st.Indicate("svc", "post")
			want := []Indication{"pre", "x0", "x1", "x2", "post"}
			st.DoSync(func() {
				for _, m := range []*testModule{a, b} {
					if fmt.Sprint(m.indications) != fmt.Sprint(want) {
						t.Errorf("indications = %v, want %v", m.indications, want)
					}
				}
			})
		})
	}
}

// TestIndicateBatchSingleQueueEvent checks the point of batching: a
// batch of N indications crosses the executor queue as ONE task (one
// flusher pass), not N.
func TestIndicateBatchSingleQueueEvent(t *testing.T) {
	st := newTestStack(t, nil)
	var flushes atomic.Int64
	var seen int
	var m *testModule
	st.DoSync(func() {
		m = newTestModule(st, "m")
		st.AddModule(m)
		st.Subscribe("svc", m)
		st.RegisterFlusher(func() { flushes.Add(1) })
	})
	// Park the executor so everything below lands in one drained batch.
	block := make(chan struct{})
	release := make(chan struct{})
	st.Do(func() { close(block); <-release })
	<-block
	st.IndicateBatch("svc", []Indication{1, 2, 3, 4, 5})
	close(release)
	st.DoSync(func() {})
	st.DoSync(func() { seen = len(m.indications) })
	if seen != 5 {
		t.Fatalf("listener saw %d indications, want 5", seen)
	}
	// The batch plus the parked Do drained together: at most a handful
	// of flusher passes, nowhere near one per indication.
	if got := flushes.Load(); got > 4 {
		t.Fatalf("%d flusher passes for one 5-indication batch", got)
	}
}
