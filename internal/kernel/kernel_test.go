package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testModule records everything it handles.
type testModule struct {
	Base
	requests    []Request
	indications []Indication
	started     int
	stopped     int
	onRequest   func(ServiceID, Request)
}

func newTestModule(st *Stack, proto string) *testModule {
	return &testModule{Base: NewBase(st, proto)}
}

func (m *testModule) HandleRequest(svc ServiceID, req Request) {
	m.requests = append(m.requests, req)
	if m.onRequest != nil {
		m.onRequest(svc, req)
	}
}

func (m *testModule) HandleIndication(svc ServiceID, ind Indication) {
	m.indications = append(m.indications, ind)
}

func (m *testModule) Start() { m.started++ }
func (m *testModule) Stop()  { m.stopped++ }

func newTestStack(t *testing.T, tracer Tracer) *Stack {
	t.Helper()
	st := NewStack(Config{Addr: 0, Peers: []Addr{0, 1, 2}, Tracer: tracer})
	t.Cleanup(st.Close)
	return st
}

func TestCallDispatchedToBoundModule(t *testing.T) {
	st := newTestStack(t, nil)
	var m *testModule
	if err := st.DoSync(func() {
		m = newTestModule(st, "p")
		if err := st.AddModule(m); err != nil {
			t.Errorf("AddModule: %v", err)
		}
		if err := st.Bind("svc", m); err != nil {
			t.Errorf("Bind: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st.Call("svc", "hello")
	st.DoSync(func() {})
	if err := st.DoSync(func() {
		if len(m.requests) != 1 || m.requests[0] != "hello" {
			t.Errorf("requests = %v", m.requests)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCallBlocksUntilBindThenFlushesInOrder(t *testing.T) {
	st := newTestStack(t, nil)
	// Calls before any bind must park.
	for i := 0; i < 5; i++ {
		st.Call("svc", i)
	}
	var m *testModule
	if err := st.DoSync(func() {
		if got := st.PendingCalls("svc"); got != 5 {
			t.Errorf("PendingCalls = %d, want 5", got)
		}
		m = newTestModule(st, "p")
		st.AddModule(m)
		if err := st.Bind("svc", m); err != nil {
			t.Errorf("Bind: %v", err)
		}
		// Flush happens synchronously inside Bind.
		if len(m.requests) != 5 {
			t.Fatalf("flushed %d calls, want 5", len(m.requests))
		}
		for i, r := range m.requests {
			if r != i {
				t.Errorf("request %d = %v, want %d (FIFO violated)", i, r, i)
			}
		}
		if st.PendingCalls("svc") != 0 {
			t.Errorf("pending not drained")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAtMostOneModuleBound(t *testing.T) {
	st := newTestStack(t, nil)
	st.DoSync(func() {
		a := newTestModule(st, "a")
		b := newTestModule(st, "b")
		st.AddModule(a)
		st.AddModule(b)
		if err := st.Bind("svc", a); err != nil {
			t.Fatalf("first Bind: %v", err)
		}
		if err := st.Bind("svc", b); err == nil {
			t.Fatal("second Bind succeeded; paper requires at most one bound module")
		}
		st.Unbind("svc")
		if err := st.Bind("svc", b); err != nil {
			t.Fatalf("Bind after Unbind: %v", err)
		}
		if st.Provider("svc") != b {
			t.Error("Provider is not the rebound module")
		}
	})
}

func TestUnboundModuleStaysInStackAndCanIndicate(t *testing.T) {
	// Paper §2: "Unbinding a module does not remove it from the stack"
	// and "a module can respond to a service call even if unbound".
	st := newTestStack(t, nil)
	var provider, listener *testModule
	st.DoSync(func() {
		provider = newTestModule(st, "p")
		listener = newTestModule(st, "q")
		st.AddModule(provider)
		st.AddModule(listener)
		st.Bind("svc", provider)
		st.Subscribe("svc", listener)
		st.Unbind("svc")
		if _, ok := st.Module(provider.ID()); !ok {
			t.Error("unbound module removed from stack")
		}
	})
	st.Indicate("svc", "late response")
	st.DoSync(func() {
		if len(listener.indications) != 1 || listener.indications[0] != "late response" {
			t.Errorf("indications = %v", listener.indications)
		}
	})
}

func TestIndicationsGoToAllListeners(t *testing.T) {
	st := newTestStack(t, nil)
	var a, b *testModule
	st.DoSync(func() {
		a = newTestModule(st, "a")
		b = newTestModule(st, "b")
		st.AddModule(a)
		st.AddModule(b)
		st.Subscribe("svc", a)
		st.Subscribe("svc", b)
		st.Subscribe("svc", a) // duplicate subscribe must be idempotent
	})
	st.Indicate("svc", 1)
	st.Indicate("svc", 2)
	st.DoSync(func() {
		if len(a.indications) != 2 || len(b.indications) != 2 {
			t.Errorf("a=%v b=%v, want 2 each", a.indications, b.indications)
		}
	})
}

func TestUnsubscribeStopsIndications(t *testing.T) {
	st := newTestStack(t, nil)
	var a *testModule
	st.DoSync(func() {
		a = newTestModule(st, "a")
		st.AddModule(a)
		st.Subscribe("svc", a)
	})
	st.Indicate("svc", 1)
	st.DoSync(func() { st.Unsubscribe("svc", a) })
	st.Indicate("svc", 2)
	st.DoSync(func() {
		if len(a.indications) != 1 {
			t.Errorf("indications = %v, want just the first", a.indications)
		}
	})
}

func TestRemoveModuleUnbindsStopsAndUnsubscribes(t *testing.T) {
	st := newTestStack(t, nil)
	st.DoSync(func() {
		m := newTestModule(st, "p")
		st.AddModule(m)
		st.Bind("svc", m)
		st.Subscribe("other", m)
		st.RemoveModule(m.ID())
		if m.stopped != 1 {
			t.Errorf("stopped = %d, want 1", m.stopped)
		}
		if st.Provider("svc") != nil {
			t.Error("still bound after removal")
		}
		if _, ok := st.Module(m.ID()); ok {
			t.Error("still in stack after removal")
		}
	})
}

func TestExecutorIsFIFO(t *testing.T) {
	st := newTestStack(t, nil)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		st.Do(func() { order = append(order, i) })
	}
	st.DoSync(func() {})
	st.DoSync(func() {
		for i, v := range order {
			if v != i {
				t.Fatalf("order[%d] = %d; executor reordered events", i, v)
			}
		}
	})
}

func TestEventsFromManyGoroutinesAllRun(t *testing.T) {
	st := newTestStack(t, nil)
	var count int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st.Do(func() { count++ })
			}
		}()
	}
	wg.Wait()
	st.DoSync(func() {
		if count != 4000 {
			t.Errorf("count = %d, want 4000", count)
		}
	})
}

func TestCreateProtocolRecursion(t *testing.T) {
	// q requires r; r requires s; creating q must build the whole chain
	// bottom-up (Algorithm 1, create_module).
	reg := NewRegistry()
	var startOrder []string
	mk := func(name string, provides, requires []ServiceID) Factory {
		return Factory{
			Protocol: name,
			Provides: provides,
			Requires: requires,
			New: func(st *Stack) Module {
				m := newTestModule(st, name)
				m.onRequest = nil
				return &startRecorder{testModule: m, order: &startOrder}
			},
		}
	}
	reg.MustRegister(mk("q", []ServiceID{"q"}, []ServiceID{"r"}))
	reg.MustRegister(mk("r", []ServiceID{"r"}, []ServiceID{"s"}))
	reg.MustRegister(mk("s", []ServiceID{"s"}, nil))

	st := NewStack(Config{Addr: 0, Peers: []Addr{0}, Registry: reg})
	defer st.Close()
	st.DoSync(func() {
		if _, err := st.CreateProtocol("q"); err != nil {
			t.Fatalf("CreateProtocol: %v", err)
		}
		for _, svc := range []ServiceID{"q", "r", "s"} {
			if st.Provider(svc) == nil {
				t.Errorf("service %q not bound after recursion", svc)
			}
		}
	})
	// Substrates must start before the protocols that require them.
	want := []string{"s", "r", "q"}
	if fmt.Sprint(startOrder) != fmt.Sprint(want) {
		t.Errorf("start order = %v, want %v", startOrder, want)
	}
}

type startRecorder struct {
	*testModule
	order *[]string
}

func (m *startRecorder) Start() {
	m.testModule.Start()
	*m.order = append(*m.order, m.Protocol())
}

func TestCreateProtocolDoesNotDuplicateBoundServices(t *testing.T) {
	reg := NewRegistry()
	created := 0
	reg.MustRegister(Factory{
		Protocol: "base", Provides: []ServiceID{"s"},
		New: func(st *Stack) Module {
			created++
			return newTestModule(st, "base")
		},
	})
	reg.MustRegister(Factory{
		Protocol: "top", Provides: []ServiceID{"t"}, Requires: []ServiceID{"s"},
		New: func(st *Stack) Module { return newTestModule(st, "top") },
	})
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}, Registry: reg})
	defer st.Close()
	st.DoSync(func() {
		if _, err := st.CreateProtocol("top"); err != nil {
			t.Fatalf("first: %v", err)
		}
		st.Unbind("t")
		if _, err := st.CreateProtocol("top"); err != nil {
			t.Fatalf("second: %v", err)
		}
	})
	if created != 1 {
		t.Errorf("base created %d times, want 1 (service already bound)", created)
	}
}

func TestMutualRequirementsResolve(t *testing.T) {
	// a requires sb, b requires sa. Because a module is bound to its
	// provided services *before* its requirements are ensured, the
	// apparent cycle resolves: creating a binds sa, then creates b,
	// whose requirement on sa is already satisfied.
	reg := NewRegistry()
	reg.MustRegister(Factory{
		Protocol: "a", Provides: []ServiceID{"sa"}, Requires: []ServiceID{"sb"},
		New: func(st *Stack) Module { return newTestModule(st, "a") },
	})
	reg.MustRegister(Factory{
		Protocol: "b", Provides: []ServiceID{"sb"}, Requires: []ServiceID{"sa"},
		New: func(st *Stack) Module { return newTestModule(st, "b") },
	})
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}, Registry: reg})
	defer st.Close()
	st.DoSync(func() {
		if _, err := st.CreateProtocol("a"); err != nil {
			t.Errorf("mutual requirements did not resolve: %v", err)
		}
		if st.Provider("sa") == nil || st.Provider("sb") == nil {
			t.Error("services not both bound")
		}
	})
}

func TestUnknownProtocolAndProvider(t *testing.T) {
	st := newTestStack(t, nil)
	st.DoSync(func() {
		if _, err := st.CreateProtocol("nope"); err == nil {
			t.Error("CreateProtocol(unknown) succeeded")
		}
		if err := st.EnsureService("unprovided"); err == nil {
			t.Error("EnsureService(unprovided) succeeded")
		}
	})
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := NewRegistry()
	f := Factory{Protocol: "x", New: func(st *Stack) Module { return newTestModule(st, "x") }}
	if err := reg.Register(f); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(f); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register(Factory{Protocol: "", New: f.New}); err == nil {
		t.Error("empty protocol name accepted")
	}
	if err := reg.Register(Factory{Protocol: "y"}); err == nil {
		t.Error("nil constructor accepted")
	}
}

func TestTimerAfterFiresOnExecutor(t *testing.T) {
	st := newTestStack(t, nil)
	ch := make(chan struct{})
	st.After(5*time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
}

func TestTimerStopPreventsFiring(t *testing.T) {
	st := newTestStack(t, nil)
	var fired atomic.Bool
	tm := st.After(30*time.Millisecond, func() { fired.Store(true) })
	tm.Stop()
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Error("stopped timer fired")
	}
}

func TestEveryRepeats(t *testing.T) {
	st := newTestStack(t, nil)
	var n atomic.Int32
	tm := st.Every(5*time.Millisecond, func() { n.Add(1) })
	deadline := time.After(2 * time.Second)
	for n.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("Every fired only %d times", n.Load())
		case <-time.After(time.Millisecond):
		}
	}
	tm.Stop()
	at := n.Load()
	time.Sleep(50 * time.Millisecond)
	if got := n.Load(); got > at+1 {
		t.Errorf("Every kept firing after Stop: %d -> %d", at, got)
	}
}

func TestCrashDiscardsQueueAndStopsTimers(t *testing.T) {
	st := NewStack(Config{Addr: 3, Peers: []Addr{3}})
	var ran atomic.Bool
	st.After(50*time.Millisecond, func() { ran.Store(true) })
	st.Crash()
	if st.Do(func() { ran.Store(true) }) {
		t.Error("Do accepted after crash")
	}
	if !st.Crashed() {
		t.Error("Crashed() = false")
	}
	if st.Running() {
		t.Error("Running() = true after crash")
	}
	time.Sleep(80 * time.Millisecond)
	if ran.Load() {
		t.Error("event or timer ran after crash")
	}
}

func TestCrashFromOwnExecutorDoesNotDeadlock(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
	done := make(chan struct{})
	st.Do(func() {
		st.Crash()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Crash from executor deadlocked")
	}
}

func TestDoSyncReturnsErrorWhenCrashedBeforeRunning(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
	block := make(chan struct{})
	st.Do(func() { <-block })
	errCh := make(chan error, 1)
	go func() { errCh <- st.DoSync(func() {}) }()
	time.Sleep(10 * time.Millisecond)
	st.Crash()
	close(block)
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("DoSync returned nil after crash discarded its event")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DoSync hung after crash")
	}
}

func TestCloseDrainsQueuedEvents(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
	var count int
	for i := 0; i < 50; i++ {
		st.Do(func() { count++ })
	}
	st.Close()
	if count != 50 {
		t.Errorf("count = %d, want 50 (Close must drain)", count)
	}
}

func TestNextModuleIDUnique(t *testing.T) {
	st := newTestStack(t, nil)
	st.DoSync(func() {
		seen := make(map[ModuleID]bool)
		for i := 0; i < 100; i++ {
			id := st.NextModuleID("p")
			if seen[id] {
				t.Fatalf("duplicate module id %q", id)
			}
			seen[id] = true
		}
	})
}

func TestOthersExcludesSelf(t *testing.T) {
	st := NewStack(Config{Addr: 1, Peers: []Addr{0, 1, 2}})
	defer st.Close()
	others := st.Others()
	if len(others) != 2 || others[0] != 0 || others[1] != 2 {
		t.Errorf("Others = %v", others)
	}
	if st.N() != 3 {
		t.Errorf("N = %d", st.N())
	}
}

// recTracer collects events for assertions.
type recTracer struct {
	mu  sync.Mutex
	evs []TraceEvent
}

func (r *recTracer) Trace(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = append(r.evs, ev)
}

func (r *recTracer) count(k TraceKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestTracerSeesBlockedAndUnblockedCalls(t *testing.T) {
	tr := &recTracer{}
	st := newTestStack(t, tr)
	st.Call("svc", "x")
	st.DoSync(func() {
		m := newTestModule(st, "p")
		st.AddModule(m)
		st.Bind("svc", m)
	})
	st.DoSync(func() {})
	if tr.count(TraceCallBlocked) != 1 {
		t.Errorf("blocked events = %d, want 1", tr.count(TraceCallBlocked))
	}
	if tr.count(TraceCallUnblocked) != 1 {
		t.Errorf("unblocked events = %d, want 1", tr.count(TraceCallUnblocked))
	}
	if tr.count(TraceBind) != 1 {
		t.Errorf("bind events = %d, want 1", tr.count(TraceBind))
	}
}

func TestTracerSeesDroppedIndications(t *testing.T) {
	tr := &recTracer{}
	st := newTestStack(t, tr)
	st.Indicate("svc", "nobody listening")
	st.DoSync(func() {})
	if tr.count(TraceIndicationDropped) != 1 {
		t.Errorf("dropped = %d, want 1", tr.count(TraceIndicationDropped))
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceBind.String() != "bind" {
		t.Errorf("TraceBind.String() = %q", TraceBind.String())
	}
	if TraceKind(99).String() != "unknown" {
		t.Errorf("unknown kind String() = %q", TraceKind(99).String())
	}
}
