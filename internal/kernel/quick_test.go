package kernel

import (
	"testing"
	"testing/quick"
)

// TestQuickBindingModelEquivalence drives a service with random
// bind/unbind/call sequences and compares against a trivial reference
// model: calls made while bound are handled immediately by the bound
// module; calls made while unbound park and flush, in order, to the
// next module bound.
func TestQuickBindingModelEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
		defer st.Close()
		ok := true
		err := st.DoSync(func() {
			var handled []int // (moduleIdx<<16 | callId) in handling order
			var modules []*quickModule
			mkModule := func() *quickModule {
				m := &quickModule{Base: NewBase(st, "qm"), idx: len(modules), out: &handled}
				modules = append(modules, m)
				st.AddModule(m)
				return m
			}
			// Reference model state.
			var refParked []int
			var refHandled []int
			bound := -1
			callID := 0
			for _, op := range ops {
				switch op % 4 {
				case 0, 1: // call
					st.dispatch("svc", callID)
					if bound >= 0 {
						refHandled = append(refHandled, bound<<16|callID)
					} else {
						refParked = append(refParked, callID)
					}
					callID++
				case 2: // bind a fresh module (unbinding any current one)
					st.Unbind("svc")
					m := mkModule()
					if e := st.Bind("svc", m); e != nil {
						ok = false
						return
					}
					bound = m.idx
					for _, parked := range refParked {
						refHandled = append(refHandled, bound<<16|parked)
					}
					refParked = nil
				case 3: // unbind
					st.Unbind("svc")
					bound = -1
				}
			}
			if len(handled) != len(refHandled) {
				ok = false
				return
			}
			for i := range handled {
				if handled[i] != refHandled[i] {
					ok = false
					return
				}
			}
			// Parked calls match the model too.
			if st.PendingCalls("svc") != len(refParked) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

type quickModule struct {
	Base
	idx int
	out *[]int
}

func (m *quickModule) HandleRequest(_ ServiceID, req Request) {
	*m.out = append(*m.out, m.idx<<16|req.(int))
}
