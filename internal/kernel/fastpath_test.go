package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// recorderModule appends every request/indication it handles to a
// shared executor-owned log.
type recorderModule struct {
	Base
	log *[]int
}

func (m *recorderModule) HandleRequest(_ ServiceID, req Request) {
	*m.log = append(*m.log, req.(int))
}

func (m *recorderModule) HandleIndication(_ ServiceID, ind Indication) {
	*m.log = append(*m.log, ind.(int))
}

// TestConcurrentCallIndicateCloseStress drives the typed fast-path from
// many goroutines while the stack shuts down mid-burst. Run under
// -race (CI does) it checks the two-queue batch drain for data races;
// in any mode it checks that no event is handled after the drain
// completes and nothing deadlocks.
func TestConcurrentCallIndicateCloseStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
		var handled atomic.Int64
		countingHandler := &hookModule{Base: NewBase(st, "stress")}
		countingHandler.onReq = func(Request) { handled.Add(1) }
		countingHandler.onInd = func(Indication) { handled.Add(1) }
		if err := st.DoSync(func() {
			st.AddModule(countingHandler)
			st.Bind("svc", countingHandler)
			st.Subscribe("svc", countingHandler)
		}); err != nil {
			t.Fatal(err)
		}
		const workers = 8
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					switch i % 3 {
					case 0:
						st.Call("svc", i)
					case 1:
						st.Indicate("svc", i)
					case 2:
						st.Do(func() { handled.Add(1) })
					}
				}
			}(w)
		}
		time.Sleep(time.Millisecond)
		if round%2 == 0 {
			st.Close()
		} else {
			st.Crash()
		}
		close(stop)
		wg.Wait()
		<-st.Done()
		final := handled.Load()
		time.Sleep(500 * time.Microsecond)
		if got := handled.Load(); got != final {
			t.Fatalf("round %d: %d events handled after the executor exited", round, got-final)
		}
		if st.Running() {
			t.Fatalf("round %d: stack still running after stop", round)
		}
	}
}

// hookModule dispatches to test-provided handlers.
type hookModule struct {
	Base
	onReq func(Request)
	onInd func(Indication)
}

func (m *hookModule) HandleRequest(_ ServiceID, req Request) {
	if m.onReq != nil {
		m.onReq(req)
	}
}

func (m *hookModule) HandleIndication(_ ServiceID, ind Indication) {
	if m.onInd != nil {
		m.onInd(ind)
	}
}

// TestQuickFastPathFIFO is the quickcheck FIFO property for the typed
// executor fast-path: an arbitrary single-source interleaving of Call,
// Indicate and Do events is handled in exactly the order it was
// enqueued, across batch boundaries.
func TestQuickFastPathFIFO(t *testing.T) {
	f := func(ops []uint8) bool {
		st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
		defer st.Close()
		var log []int
		rec := &recorderModule{Base: Base{}, log: &log}
		if err := st.DoSync(func() {
			rec.Base = NewBase(st, "fifo")
			st.AddModule(rec)
			st.Bind("svc", rec)
			st.Subscribe("svc", rec)
		}); err != nil {
			return false
		}
		want := make([]int, 0, len(ops))
		for i, op := range ops {
			switch op % 3 {
			case 0:
				st.Call("svc", i)
			case 1:
				st.Indicate("svc", i)
			case 2:
				i := i
				st.Do(func() { log = append(log, i) })
			}
			want = append(want, i)
		}
		if err := st.DoSync(func() {}); err != nil {
			return false
		}
		var got []int
		if err := st.DoSync(func() { got = append(got, log...) }); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFlusherRunsAfterEachDrainedBatch gates the executor on a slow
// event so a burst queues up as one batch, then checks the registered
// flusher ran after the whole batch — the hook rbcast/rp2p coalescing
// depends on — and not between its events.
func TestFlusherRunsAfterEachDrainedBatch(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
	defer st.Close()
	var log []string
	if err := st.DoSync(func() {
		st.RegisterFlusher(func() {
			if n := len(log); n > 0 && log[n-1] != "flush" {
				log = append(log, "flush")
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	st.Do(func() { <-gate })
	const burst = 10
	for i := 0; i < burst; i++ {
		st.Do(func() { log = append(log, "event") })
	}
	close(gate)
	if err := st.DoSync(func() {}); err != nil {
		t.Fatal(err)
	}
	var snapshot []string
	if err := st.DoSync(func() { snapshot = append(snapshot, log...) }); err != nil {
		t.Fatal(err)
	}
	events := 0
	sawFlushAfterLast := false
	for i, e := range snapshot {
		if e == "event" {
			events++
			if events == burst {
				sawFlushAfterLast = i+1 < len(snapshot) && snapshot[i+1] == "flush"
			}
		}
	}
	if events != burst {
		t.Fatalf("handled %d events, want %d (log %v)", events, burst, snapshot)
	}
	if !sawFlushAfterLast {
		t.Fatalf("no flush directly after the drained batch (log %v)", snapshot)
	}
	for i := 0; i < len(snapshot)-1; i++ {
		if snapshot[i] == "event" && snapshot[i+1] == "flush" && i+2 < len(snapshot) && snapshot[i+2] == "event" {
			// A flush may legitimately separate two batches; with the
			// gate holding the executor, the burst must be ONE batch, so
			// no flush may interleave before its end.
			if i+1 < burst {
				t.Fatalf("flusher ran mid-batch at position %d (log %v)", i, snapshot)
			}
		}
	}
}

// TestListenersCopyOnWriteDuringIndication mutates the subscription
// list from inside a handler: the in-flight indication must keep the
// snapshot it started with (old listeners still get it; a listener
// added mid-indication does not), and nothing panics.
func TestListenersCopyOnWriteDuringIndication(t *testing.T) {
	st := NewStack(Config{Addr: 0, Peers: []Addr{0}})
	defer st.Close()
	var aGot, bGot, cGot int
	if err := st.DoSync(func() {
		b := &hookModule{Base: NewBase(st, "b")}
		c := &hookModule{Base: NewBase(st, "c")}
		c.onInd = func(Indication) { cGot++ }
		b.onInd = func(Indication) { bGot++ }
		a := &hookModule{Base: NewBase(st, "a")}
		a.onInd = func(Indication) {
			aGot++
			st.Unsubscribe("svc", b) // b was in the starting snapshot: still served
			st.Subscribe("svc", c)   // c joins only for subsequent indications
		}
		for _, m := range []Module{a, b, c} {
			st.AddModule(m)
		}
		st.Subscribe("svc", a)
		st.Subscribe("svc", b)
	}); err != nil {
		t.Fatal(err)
	}
	st.Indicate("svc", 1)
	if err := st.DoSync(func() {}); err != nil {
		t.Fatal(err)
	}
	if aGot != 1 || bGot != 1 || cGot != 0 {
		t.Fatalf("first indication reached a=%d b=%d c=%d, want 1,1,0", aGot, bGot, cGot)
	}
	st.Indicate("svc", 2)
	if err := st.DoSync(func() {}); err != nil {
		t.Fatal(err)
	}
	if aGot != 2 || bGot != 1 || cGot != 1 {
		t.Fatalf("second indication reached a=%d b=%d c=%d, want 2,1,1", aGot, bGot, cGot)
	}
}
