// Package kernel implements the protocol-composition framework of the
// paper's Section 2 (the SAMOA model): protocols are implemented by one
// module per stack; modules are dynamically bound to and unbound from
// services; a service call executes the bound module, and a call made
// while no module is bound is parked until some module is bound (weak
// stack-well-formedness is the guarantee that this wait is finite).
//
// Execution model: every stack owns a single serial executor goroutine.
// All module state on a stack is read and written only by events running
// on that executor, so modules need no internal locking. Network
// callbacks and timers inject events from the outside with Do; test and
// application code can use DoSync to run a closure and wait for it.
//
// Concurrency contract:
//
//   - Call, Indicate, Do, After, Every are safe from any goroutine.
//   - CallSync, RegisterFlusher, Bind, Unbind, Subscribe, Unsubscribe,
//     AddModule, RemoveModule, CreateProtocol, EnsureService, Provider
//     and the other structural accessors must run on the executor
//     (module code, or a closure passed to Do/DoSync).
package kernel

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// Addr identifies a stack (a machine in the paper's model).
type Addr int

// ServiceID names a service: the specification of a distributed
// protocol, e.g. "abcast" or "consensus".
type ServiceID string

// ModuleID uniquely names a module instance within one stack.
type ModuleID string

// Request is a service call payload, handled by the module bound to the
// service.
type Request any

// Indication is an up-call payload, delivered to every listener of the
// service (a "response" in the paper's terminology).
type Indication any

// Module is one protocol module living in one stack. HandleRequest and
// HandleIndication are invoked on the stack's executor goroutine.
type Module interface {
	// ID returns the module's unique identity within its stack.
	ID() ModuleID
	// Protocol returns the protocol name this module implements
	// (several modules of the same protocol may coexist, e.g. the old
	// and the new version during a dynamic update).
	Protocol() string
	// HandleRequest processes a call on a service this module is bound to.
	HandleRequest(svc ServiceID, req Request)
	// HandleIndication processes an indication emitted on a service this
	// module subscribed to.
	HandleIndication(svc ServiceID, ind Indication)
	// Start is invoked on the executor after the module has been added,
	// bound to its provided services, and its required services ensured.
	Start()
	// Stop is invoked on the executor when the module is removed.
	Stop()
}

// Factory describes how to instantiate a protocol module and which
// services it provides and requires, enabling the paper's create_module
// recursion (Algorithm 1, lines 22-28).
type Factory struct {
	// Protocol is the unique protocol name, e.g. "net/rp2p".
	Protocol string
	// Provides lists services the module gets bound to on creation.
	Provides []ServiceID
	// Requires lists services that must be bound before the module starts.
	Requires []ServiceID
	// New constructs the module for a stack. It must not touch stack
	// structure; wiring happens in Start.
	New func(st *Stack) Module
}

// Registry maps protocol names to factories and services to the
// protocols able to provide them. A single registry is typically shared
// by all stacks of a group.
type Registry struct {
	mu        sync.RWMutex
	byProto   map[string]Factory
	byService map[ServiceID][]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byProto:   make(map[string]Factory),
		byService: make(map[ServiceID][]string),
	}
}

// Register adds a factory. Registering the same protocol name twice is
// an error.
func (r *Registry) Register(f Factory) error {
	if f.Protocol == "" {
		return fmt.Errorf("kernel: factory with empty protocol name")
	}
	if f.New == nil {
		return fmt.Errorf("kernel: factory %q has nil constructor", f.Protocol)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byProto[f.Protocol]; dup {
		return fmt.Errorf("kernel: protocol %q already registered", f.Protocol)
	}
	r.byProto[f.Protocol] = f
	for _, s := range f.Provides {
		r.byService[s] = append(r.byService[s], f.Protocol)
	}
	return nil
}

// MustRegister is Register that panics on error; for package init wiring.
func (r *Registry) MustRegister(f Factory) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the factory registered under the protocol name.
func (r *Registry) Lookup(protocol string) (Factory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.byProto[protocol]
	return f, ok
}

// ProviderFor returns the first registered protocol providing svc.
func (r *Registry) ProviderFor(svc ServiceID) (Factory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	protos := r.byService[svc]
	if len(protos) == 0 {
		return Factory{}, false
	}
	return r.byProto[protos[0]], true
}

// Protocols returns the sorted names of all registered protocols.
func (r *Registry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byProto))
	for n := range r.byProto {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Config configures a stack.
type Config struct {
	// Addr is this stack's address within the group.
	Addr Addr
	// Peers lists every stack of the group, including Addr itself.
	Peers []Addr
	// Registry resolves protocol factories for create_module recursion.
	Registry *Registry
	// Tracer, when non-nil, receives structural events (binds, blocked
	// calls, ...) for the property checkers. May be shared across stacks.
	Tracer Tracer
	// Seed seeds the stack-local deterministic RNG (executor-only use).
	Seed int64
	// Logger, when non-nil, receives diagnostic messages.
	Logger *log.Logger
	// Clock supplies time to the stack (timers, timestamps). Nil means
	// the wall clock; simulations inject a vclock.Virtual so whole
	// clusters run under discrete-event virtual time.
	Clock vclock.Clock
	// Pool, when non-nil, schedules this stack's executor on a shared
	// worker pool instead of a dedicated goroutine. Serialization is
	// unchanged (one worker owns the stack at a time); see Pool. The
	// pool must outlive the stack.
	Pool *Pool
}

// PeerService is the kernel-provided membership service: SetPeers
// indicates PeersChanged on it, so protocol modules whose state is
// keyed by the peer set (rp2p connections, fd monitors, consensus
// quorums, transport routes) can reconfigure at runtime instead of
// freezing the group at construction. The service has no provider —
// only indications flow.
const PeerService ServiceID = "kernel/peers"

// PeersChanged is indicated on PeerService after every SetPeers that
// altered the peer set. Slices and the map are shared snapshots:
// listeners must not mutate them.
type PeersChanged struct {
	// Peers is the new peer set (sorted, including this stack when it
	// is still a member).
	Peers []Addr
	// Added and Removed are the deltas relative to the previous set.
	Added   []Addr
	Removed []Addr
	// Endpoints maps peers to transport endpoint strings, when known
	// (empty for fabrics with implicit routing, e.g. simnet).
	Endpoints map[Addr]string
}

// peerSet is the stack's current view of the group, swapped atomically
// so Peers/Others/N stay safe from any goroutine.
type peerSet struct {
	peers     []Addr
	endpoints map[Addr]string
}

// Stack is the set of modules located on one machine, together with the
// service bindings and the serial executor that runs them.
type Stack struct {
	cfg   Config
	clock vclock.Clock
	exec  *executor
	rng   *rand.Rand
	peers atomic.Pointer[peerSet]

	// Executor-owned state below.
	services   map[ServiceID]*service
	modules    map[ModuleID]Module
	protoSeq   map[string]int // per-protocol instance counter for module IDs
	ensuring   map[ServiceID]bool
	flushers   []flusher
	flusherSeq int

	timerMu sync.Mutex
	timers  map[*Timer]struct{}
	closed  bool // guarded by timerMu; blocks new timers after close

	crashed atomic.Bool
}

// service holds the binding state for one service on one stack.
type service struct {
	id        ServiceID
	provider  Module
	listeners []Module
	pending   []pendingCall
}

type pendingCall struct {
	req Request
	at  time.Time
}

// NewStack creates a stack and starts its executor.
func NewStack(cfg Config) *Stack {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Wall
	}
	st := &Stack{
		cfg:      cfg,
		clock:    clock,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.Addr) << 32))),
		services: make(map[ServiceID]*service),
		modules:  make(map[ModuleID]Module),
		protoSeq: make(map[string]int),
		ensuring: make(map[ServiceID]bool),
		timers:   make(map[*Timer]struct{}),
	}
	initial := append([]Addr(nil), cfg.Peers...)
	sort.Slice(initial, func(i, j int) bool { return initial[i] < initial[j] })
	st.peers.Store(&peerSet{peers: initial})
	st.exec = newExecutor(st.runTask, st.runFlushers, cfg.Pool)
	return st
}

// Addr returns this stack's address.
func (st *Stack) Addr() Addr { return st.cfg.Addr }

// Clock returns the stack's time source (the wall clock unless one was
// injected through Config.Clock).
func (st *Stack) Clock() vclock.Clock { return st.clock }

// Now returns the current instant on the stack's clock. Modules must
// use this (or Clock()) instead of time.Now so simulated runs stay on
// virtual time.
func (st *Stack) Now() time.Time { return st.clock.Now() }

// QueueState exposes the executor's accepted-work counter and idleness
// so a virtual clock can detect quiescence (vclock.Source).
func (st *Stack) QueueState() (uint64, bool) { return st.exec.queueState() }

// Peers returns the current group membership (including this stack
// while it remains a member). The slice is a shared snapshot — callers
// must not mutate it. The set is seeded from Config.Peers and evolves
// through SetPeers as GM views are installed.
func (st *Stack) Peers() []Addr { return st.peers.Load().peers }

// Endpoint returns the transport endpoint recorded for a peer by the
// last SetPeers ("" when unknown or for implicit-routing fabrics).
func (st *Stack) Endpoint(p Addr) string { return st.peers.Load().endpoints[p] }

// N returns the current group size.
func (st *Stack) N() int { return len(st.Peers()) }

// Others returns all current peers except this stack.
func (st *Stack) Others() []Addr {
	peers := st.Peers()
	out := make([]Addr, 0, len(peers)-1)
	for _, p := range peers {
		if p != st.cfg.Addr {
			out = append(out, p)
		}
	}
	return out
}

// SetPeers installs a new peer set (a membership view), returning the
// deltas against the previous one. When anything changed, PeersChanged
// is indicated on PeerService so every peer-keyed layer reconfigures.
// endpoints (may be nil) maps peers to transport endpoint strings; it is
// retained as a shared snapshot. Executor-only.
//
//dpulint:executor
func (st *Stack) SetPeers(peers []Addr, endpoints map[Addr]string) (added, removed []Addr) {
	next := append([]Addr(nil), peers...)
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	prev := st.peers.Load()
	in := func(set []Addr, p Addr) bool {
		for _, q := range set {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, p := range next {
		if !in(prev.peers, p) {
			added = append(added, p)
		}
	}
	for _, p := range prev.peers {
		if !in(next, p) {
			removed = append(removed, p)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return nil, nil
	}
	st.peers.Store(&peerSet{peers: next, endpoints: endpoints})
	st.trace(TraceEvent{Kind: TracePeersChanged})
	st.Indicate(PeerService, PeersChanged{Peers: next, Added: added, Removed: removed, Endpoints: endpoints})
	return added, removed
}

// Registry returns the factory registry used for create_module recursion.
func (st *Stack) Registry() *Registry { return st.cfg.Registry }

// Rand returns the stack-local deterministic RNG. Executor-only.
//
//dpulint:executor
func (st *Stack) Rand() *rand.Rand { return st.rng }

// Logf logs a diagnostic message when a logger is configured.
func (st *Stack) Logf(format string, args ...any) {
	if st.cfg.Logger != nil {
		st.cfg.Logger.Printf("[stack %d] "+format, append([]any{st.cfg.Addr}, args...)...)
	}
}

// Do schedules fn on the executor. It reports false when the stack has
// stopped (crashed or closed) and the event was discarded.
func (st *Stack) Do(fn func()) bool {
	return st.exec.do(fn)
}

// runTask executes one queued event on the executor goroutine.
func (st *Stack) runTask(t *task) {
	switch t.kind {
	case kindFn:
		t.fn()
	case kindCall:
		st.dispatch(t.svc, t.arg)
	case kindIndicate:
		st.indicate(t.svc, t.arg)
	case kindIndicateBatch:
		for _, ind := range t.arg.([]Indication) {
			st.indicate(t.svc, ind)
		}
	}
}

// flusher is one registered post-batch hook.
type flusher struct {
	id int
	fn func()
}

// RegisterFlusher registers fn to run on the executor after every
// drained event batch (and before the executor sleeps), so a module can
// coalesce the batch's outgoing traffic into fewer datagrams. The
// returned handle unregisters it. Executor-only.
//
//dpulint:executor
func (st *Stack) RegisterFlusher(fn func()) (unregister func()) {
	st.flusherSeq++
	id := st.flusherSeq
	st.flushers = append(st.flushers, flusher{id: id, fn: fn})
	return func() {
		for i, f := range st.flushers {
			if f.id == id {
				st.flushers = append(st.flushers[:i], st.flushers[i+1:]...)
				return
			}
		}
	}
}

// runFlushers runs after each drained batch, on the executor goroutine.
func (st *Stack) runFlushers() {
	for _, f := range st.flushers {
		f.fn()
	}
}

// DoSync runs fn on the executor and waits for it to complete. It must
// not be called from the executor itself (it would deadlock); module
// code already runs on the executor and can call fn directly. When the
// stack crashes before fn runs, DoSync returns an error instead of
// hanging.
func (st *Stack) DoSync(fn func()) error {
	done := make(chan struct{})
	ran := false
	ok := st.exec.do(func() {
		defer close(done)
		fn()
		ran = true
	})
	if !ok {
		return fmt.Errorf("kernel: stack %d stopped", st.cfg.Addr)
	}
	select {
	case <-done:
		return nil
	case <-st.exec.done:
		select {
		case <-done:
			if ran {
				return nil
			}
		default:
		}
		return fmt.Errorf("kernel: stack %d stopped before event ran", st.cfg.Addr)
	}
}

// Crashed reports whether the stack has crashed.
func (st *Stack) Crashed() bool { return st.crashed.Load() }

// Done returns a channel that is closed once the stack's executor has
// exited (after Crash or Close). It lets callers waiting on a reply
// from the executor abandon the wait instead of hanging forever.
func (st *Stack) Done() <-chan struct{} { return st.exec.done }

// Running reports whether the executor still accepts events.
func (st *Stack) Running() bool { return st.exec.running() }

// Crash halts the stack immediately: queued events are discarded and
// timers cancelled, modelling a machine crash. Safe from any goroutine,
// including the stack's own executor.
func (st *Stack) Crash() {
	st.crashed.Store(true)
	st.cancelTimers()
	st.trace(TraceEvent{Kind: TraceCrash})
	st.exec.stop(false)
}

// Close stops the stack after the currently queued events have run and
// waits for the executor to exit. Must not be called from the executor.
func (st *Stack) Close() {
	st.cancelTimers()
	st.exec.stop(true)
	st.exec.wait()
}

func (st *Stack) cancelTimers() {
	st.timerMu.Lock()
	st.closed = true
	timers := st.timers
	st.timers = make(map[*Timer]struct{})
	st.timerMu.Unlock()
	for t := range timers {
		t.mu.Lock()
		t.stopped = true
		if t.t != nil {
			t.t.Stop()
		}
		t.mu.Unlock()
	}
}

// Timer is a cancellable deferred event.
type Timer struct {
	st *Stack

	mu      sync.Mutex
	t       vclock.Timer
	stopped bool
}

// Stop cancels the timer. Safe from any goroutine; a no-op if the timer
// already fired or was stopped.
func (t *Timer) Stop() {
	t.mu.Lock()
	t.stopped = true
	if t.t != nil {
		t.t.Stop()
	}
	t.mu.Unlock()
	t.st.timerMu.Lock()
	delete(t.st.timers, t)
	t.st.timerMu.Unlock()
}

func (t *Timer) isStopped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stopped
}

// arm sets the underlying timer unless the Timer or its stack stopped.
func (t *Timer) arm(d time.Duration, onFire func()) bool {
	st := t.st
	st.timerMu.Lock()
	defer st.timerMu.Unlock()
	if st.closed {
		return false
	}
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return false
	}
	t.t = st.clock.AfterFunc(d, func() {
		st.timerMu.Lock()
		delete(st.timers, t)
		st.timerMu.Unlock()
		if !t.isStopped() {
			onFire()
		}
	})
	t.mu.Unlock()
	st.timers[t] = struct{}{}
	return true
}

// After schedules fn on the executor after d. The returned timer can be
// stopped; it is valid (and inert) even when the stack already stopped.
func (st *Stack) After(d time.Duration, fn func()) *Timer {
	tm := &Timer{st: st}
	tm.arm(d, func() { st.Do(fn) })
	return tm
}

// Every schedules fn on the executor every d until the returned timer
// is stopped or the stack stops.
func (st *Stack) Every(d time.Duration, fn func()) *Timer {
	tm := &Timer{st: st}
	var fire func()
	fire = func() {
		if st.Do(fn) {
			tm.arm(d, fire)
		}
	}
	tm.arm(d, fire)
	return tm
}

// svc returns (creating on demand) the service record. Executor-only.
func (st *Stack) svc(id ServiceID) *service {
	s, ok := st.services[id]
	if !ok {
		s = &service{id: id}
		st.services[id] = s
	}
	return s
}

// Call invokes the service: the bound module handles the request; with
// no module bound the call is parked until a bind (the paper's blocked
// service call). Safe from any goroutine.
func (st *Stack) Call(id ServiceID, req Request) {
	st.exec.enqueue(task{kind: kindCall, svc: id, arg: req})
}

// CallSync invokes the service synchronously, without a trip through
// the event queue: the bound module's handler runs before CallSync
// returns (an unbound service still parks the request, exactly like
// Call). Executor-only — module code uses it on its hot data path to a
// required lower service, where the queue round-trip (and the extended
// buffer lifetime it implies) is pure overhead. Callers must tolerate
// the handler running re-entrantly beneath them.
//
//dpulint:executor
func (st *Stack) CallSync(id ServiceID, req Request) {
	st.dispatch(id, req)
}

// dispatch routes a request. Executor-only.
func (st *Stack) dispatch(id ServiceID, req Request) {
	s := st.svc(id)
	if s.provider == nil {
		s.pending = append(s.pending, pendingCall{req: req, at: st.clock.Now()})
		st.trace(TraceEvent{Kind: TraceCallBlocked, Service: id})
		return
	}
	st.trace(TraceEvent{Kind: TraceCall, Service: id, Module: s.provider.ID()})
	s.provider.HandleRequest(id, req)
}

// Indicate emits an indication on the service: every subscribed listener
// receives it. Safe from any goroutine.
func (st *Stack) Indicate(id ServiceID, ind Indication) {
	st.exec.enqueue(task{kind: kindIndicate, svc: id, arg: ind})
}

// IndicateBatch emits a batch of indications on the service as ONE
// queued executor event: listeners see each indication individually, in
// order, exactly as len(inds) Indicate calls would deliver them, but
// the whole batch costs one queue round-trip (and one wake-up) instead
// of len(inds). The batched transport receive path exists for this
// call. The slice is retained until the event runs; the caller hands
// over ownership. Safe from any goroutine.
func (st *Stack) IndicateBatch(id ServiceID, inds []Indication) {
	if len(inds) == 0 {
		return
	}
	st.exec.enqueue(task{kind: kindIndicateBatch, svc: id, arg: inds})
}

// indicate delivers an indication to the current listeners. Executor-only.
func (st *Stack) indicate(id ServiceID, ind Indication) {
	s := st.svc(id)
	if len(s.listeners) == 0 {
		st.trace(TraceEvent{Kind: TraceIndicationDropped, Service: id})
		return
	}
	st.trace(TraceEvent{Kind: TraceIndicate, Service: id})
	// The listener slice is copy-on-write (Subscribe/Unsubscribe replace
	// it, never mutate it in place), so iterating the current header is
	// safe even when a handler changes the subscriptions mid-indication
	// — no per-indication snapshot copy.
	for _, m := range s.listeners {
		m.HandleIndication(id, ind)
	}
}

// Bind binds m to the service and flushes any parked calls to it, in
// arrival order. At most one module may be bound at a time (paper §2).
// Executor-only.
//
//dpulint:executor
func (st *Stack) Bind(id ServiceID, m Module) error {
	s := st.svc(id)
	if s.provider != nil {
		return fmt.Errorf("kernel: service %q already bound to %q", id, s.provider.ID())
	}
	s.provider = m
	st.trace(TraceEvent{Kind: TraceBind, Service: id, Module: m.ID(), Protocol: m.Protocol()})
	if len(s.pending) > 0 {
		parked := s.pending
		s.pending = nil
		now := st.clock.Now()
		for _, pc := range parked {
			st.trace(TraceEvent{
				Kind: TraceCallUnblocked, Service: id, Module: m.ID(),
				Blocked: now.Sub(pc.at),
			})
			m.HandleRequest(id, pc.req)
		}
	}
	return nil
}

// Unbind removes the current binding of the service. The module stays
// in the stack and may keep emitting indications (paper §2: "Unbinding a
// module does not remove it from the stack"). Executor-only.
func (st *Stack) Unbind(id ServiceID) {
	s := st.svc(id)
	if s.provider == nil {
		return
	}
	st.trace(TraceEvent{Kind: TraceUnbind, Service: id, Module: s.provider.ID(), Protocol: s.provider.Protocol()})
	s.provider = nil
}

// Provider returns the module currently bound to the service, or nil.
// Executor-only.
func (st *Stack) Provider(id ServiceID) Module {
	return st.svc(id).provider
}

// PendingCalls returns the number of parked calls on the service.
// Executor-only.
func (st *Stack) PendingCalls(id ServiceID) int {
	return len(st.svc(id).pending)
}

// Subscribe registers m as a listener of the service's indications.
// The listener slice is copy-on-write: mutation allocates a fresh slice
// so that an indication iterating the old one mid-change stays valid
// (subscriptions change rarely; indications are the hot path).
// Executor-only.
func (st *Stack) Subscribe(id ServiceID, m Module) {
	s := st.svc(id)
	for _, l := range s.listeners {
		if l.ID() == m.ID() {
			return
		}
	}
	next := make([]Module, len(s.listeners)+1)
	copy(next, s.listeners)
	next[len(next)-1] = m
	s.listeners = next
	st.trace(TraceEvent{Kind: TraceSubscribe, Service: id, Module: m.ID()})
}

// Unsubscribe removes m from the service's listeners (copy-on-write,
// see Subscribe). Executor-only.
func (st *Stack) Unsubscribe(id ServiceID, m Module) {
	s := st.svc(id)
	for i, l := range s.listeners {
		if l.ID() == m.ID() {
			next := make([]Module, 0, len(s.listeners)-1)
			next = append(next, s.listeners[:i]...)
			next = append(next, s.listeners[i+1:]...)
			s.listeners = next
			st.trace(TraceEvent{Kind: TraceUnsubscribe, Service: id, Module: m.ID()})
			return
		}
	}
}

// AddModule inserts a constructed module into the stack without binding
// or starting it. Executor-only.
func (st *Stack) AddModule(m Module) error {
	if _, dup := st.modules[m.ID()]; dup {
		return fmt.Errorf("kernel: module %q already in stack %d", m.ID(), st.cfg.Addr)
	}
	st.modules[m.ID()] = m
	st.trace(TraceEvent{Kind: TraceModuleAdd, Module: m.ID(), Protocol: m.Protocol()})
	return nil
}

// RemoveModule unbinds the module everywhere, unsubscribes it, stops it
// and removes it from the stack. Executor-only.
func (st *Stack) RemoveModule(id ModuleID) {
	m, ok := st.modules[id]
	if !ok {
		return
	}
	for _, s := range st.services {
		if s.provider != nil && s.provider.ID() == id {
			st.Unbind(s.id)
		}
		st.Unsubscribe(s.id, m)
	}
	m.Stop()
	delete(st.modules, id)
	st.trace(TraceEvent{Kind: TraceModuleRemove, Module: id, Protocol: m.Protocol()})
}

// Module returns the module with the given ID, if present. Executor-only.
func (st *Stack) Module(id ModuleID) (Module, bool) {
	m, ok := st.modules[id]
	return m, ok
}

// Modules returns the IDs of all modules in the stack, sorted.
// Executor-only.
func (st *Stack) Modules() []ModuleID {
	ids := make([]ModuleID, 0, len(st.modules))
	for id := range st.modules {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HasProtocol reports whether some module of the protocol is in the
// stack. Executor-only.
func (st *Stack) HasProtocol(protocol string) bool {
	for _, m := range st.modules {
		if m.Protocol() == protocol {
			return true
		}
	}
	return false
}

// NextModuleID builds a unique module ID for a protocol instance, e.g.
// "abcast/ct#1@3". Executor-only.
func (st *Stack) NextModuleID(protocol string) ModuleID {
	st.protoSeq[protocol]++
	return ModuleID(fmt.Sprintf("%s#%d@%d", protocol, st.protoSeq[protocol], st.cfg.Addr))
}

// CreateProtocol implements the paper's create_module(p) recursion
// (Algorithm 1, lines 22-28): construct the protocol's module, add it,
// bind it to its provided services, recursively ensure every required
// service has a bound provider, then start the module. Executor-only.
//
//dpulint:executor
func (st *Stack) CreateProtocol(protocol string) (Module, error) {
	f, ok := st.cfg.Registry.Lookup(protocol)
	if !ok {
		return nil, fmt.Errorf("kernel: unknown protocol %q", protocol)
	}
	return st.instantiate(f)
}

func (st *Stack) instantiate(f Factory) (Module, error) {
	m := f.New(st)
	if err := st.AddModule(m); err != nil {
		return nil, err
	}
	for _, svc := range f.Provides {
		if err := st.Bind(svc, m); err != nil {
			st.RemoveModule(m.ID())
			return nil, err
		}
	}
	for _, svc := range f.Requires {
		if err := st.EnsureService(svc); err != nil {
			st.RemoveModule(m.ID())
			return nil, err
		}
	}
	m.Start()
	return m, nil
}

// EnsureService guarantees that a provider is bound to svc, creating one
// through the registry when necessary (lines 26-28 of Algorithm 1).
// Executor-only.
//
//dpulint:executor
func (st *Stack) EnsureService(svc ServiceID) error {
	if st.svc(svc).provider != nil {
		return nil
	}
	if st.ensuring[svc] {
		return fmt.Errorf("kernel: cyclic service requirement through %q", svc)
	}
	f, ok := st.cfg.Registry.ProviderFor(svc)
	if !ok {
		return fmt.Errorf("kernel: no registered provider for service %q", svc)
	}
	st.ensuring[svc] = true
	defer delete(st.ensuring, svc)
	_, err := st.instantiate(f)
	return err
}

func (st *Stack) trace(ev TraceEvent) {
	if st.cfg.Tracer == nil {
		return
	}
	ev.Stack = st.cfg.Addr
	if ev.Time.IsZero() {
		ev.Time = st.clock.Now()
	}
	st.cfg.Tracer.Trace(ev)
}
