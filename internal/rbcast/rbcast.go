// Package rbcast implements reliable broadcast over the RP2P service:
// the initiator sends to everybody, and every stack relays a message on
// first receipt before delivering it. With reliable channels this gives
// the classic guarantees — validity (a correct sender's message is
// delivered), agreement (if any correct stack delivers m, every correct
// stack does, even if the sender crashed mid-broadcast) and integrity
// (no duplicates, no invention).
//
// Like RP2P, deliveries are demultiplexed by named channels with
// buffering of unclaimed channels, so messages addressed to a protocol
// version that does not exist yet wait for its module.
package rbcast

import (
	"repro/internal/kernel"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// Service is the reliable-broadcast service.
const Service kernel.ServiceID = "rbcast"

// Protocol is the protocol name registered for this module.
const Protocol = "rbcast"

// rp2pChannel carries all rbcast traffic on the RP2P service.
const rp2pChannel = "rb"

// Broadcast requests a reliable broadcast to the whole group,
// including the sender.
type Broadcast struct {
	Channel string
	Data    []byte
}

// Deliver is handed to the channel's handler on every stack.
type Deliver struct {
	Origin kernel.Addr
	Data   []byte
}

// Listen registers the handler for a channel, flushing buffered
// messages. The handler runs on the stack's executor.
type Listen struct {
	Channel string
	Handler func(Deliver)
}

// Unlisten removes the channel's handler; subsequent messages buffer.
type Unlisten struct {
	Channel string
}

// Config tunes the module.
type Config struct {
	// BufferLimit bounds per-channel buffering of unclaimed messages.
	BufferLimit int
}

func (c Config) withDefaults() Config {
	if c.BufferLimit <= 0 {
		c.BufferLimit = 16384
	}
	return c
}

// seenSet tracks which sequence numbers of one origin were received,
// compacting the contiguous prefix so memory stays bounded under FIFO
// arrival.
type seenSet struct {
	maxContig uint64
	sparse    map[uint64]bool
}

func (s *seenSet) add(seq uint64) bool {
	if seq <= s.maxContig || s.sparse[seq] {
		return false
	}
	s.sparse[seq] = true
	for s.sparse[s.maxContig+1] {
		delete(s.sparse, s.maxContig+1)
		s.maxContig++
	}
	return true
}

// Module implements reliable broadcast.
type Module struct {
	kernel.Base
	cfg       Config
	seq       uint64
	seen      map[kernel.Addr]*seenSet
	handlers  map[string]func(Deliver)
	unclaimed map[string][]Deliver
	drops     uint64
}

// Factory returns the module factory.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: []kernel.ServiceID{rp2p.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base:      kernel.NewBase(st, Protocol),
				cfg:       cfg,
				seen:      make(map[kernel.Addr]*seenSet),
				handlers:  make(map[string]func(Deliver)),
				unclaimed: make(map[string][]Deliver),
			}
		},
	}
}

// Start hooks into the RP2P channel.
func (m *Module) Start() {
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: rp2pChannel, Handler: m.onRecv})
}

// Stop detaches from RP2P.
func (m *Module) Stop() {
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: rp2pChannel})
}

// HandleRequest processes Broadcast, Listen and Unlisten.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Broadcast:
		m.broadcast(r)
	case Listen:
		m.handlers[r.Channel] = r.Handler
		if buf := m.unclaimed[r.Channel]; len(buf) > 0 {
			delete(m.unclaimed, r.Channel)
			for _, d := range buf {
				r.Handler(d)
			}
		}
	case Unlisten:
		delete(m.handlers, r.Channel)
	}
}

func (m *Module) broadcast(b Broadcast) {
	m.seq++
	origin := m.Stk.Addr()
	w := wire.NewWriter(len(b.Data) + len(b.Channel) + 20)
	w.Uvarint(uint64(origin)).Uvarint(m.seq).String(b.Channel).Raw(b.Data)
	encoded := w.Bytes()
	m.markSeen(origin, m.seq)
	for _, p := range m.Stk.Others() {
		m.Stk.Call(rp2p.Service, rp2p.Send{To: p, Channel: rp2pChannel, Data: encoded})
	}
	m.deliver(b.Channel, Deliver{Origin: origin, Data: b.Data})
}

func (m *Module) markSeen(origin kernel.Addr, seq uint64) bool {
	ss, ok := m.seen[origin]
	if !ok {
		ss = &seenSet{sparse: make(map[uint64]bool)}
		m.seen[origin] = ss
	}
	return ss.add(seq)
}

func (m *Module) onRecv(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	origin := kernel.Addr(r.Uvarint())
	seq := r.Uvarint()
	channel := r.String()
	data := r.Rest()
	if r.Err() != nil {
		return
	}
	if !m.markSeen(origin, seq) {
		return // already relayed and delivered
	}
	// Relay before delivering: agreement despite sender crash.
	for _, p := range m.Stk.Others() {
		if p == origin || p == rv.From {
			continue
		}
		m.Stk.Call(rp2p.Service, rp2p.Send{To: p, Channel: rp2pChannel, Data: rv.Data})
	}
	m.deliver(channel, Deliver{Origin: origin, Data: data})
}

func (m *Module) deliver(channel string, d Deliver) {
	if h, ok := m.handlers[channel]; ok {
		h(d)
		return
	}
	buf := m.unclaimed[channel]
	if len(buf) >= m.cfg.BufferLimit {
		m.drops++
		m.Stk.Logf("rbcast: channel %q buffer full, dropping", channel)
		return
	}
	m.unclaimed[channel] = append(buf, d)
}
