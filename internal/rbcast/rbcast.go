// Package rbcast implements reliable broadcast over the RP2P service:
// the initiator sends to everybody, and every stack relays a message on
// first receipt before delivering it. With reliable channels this gives
// the classic guarantees — validity (a correct sender's message is
// delivered), agreement (if any correct stack delivers m, every correct
// stack does, even if the sender crashed mid-broadcast) and integrity
// (no duplicates, no invention).
//
// Like RP2P, deliveries are demultiplexed by named channels with
// buffering of unclaimed channels, so messages addressed to a protocol
// version that does not exist yet wait for its module.
//
// # Wire format and coalescing
//
// One RP2P datagram on the "rb" channel carries a frame of one or more
// records (uvarint origin, uvarint seq, length-prefixed channel,
// length-prefixed data). Outgoing traffic — initial sends and relays
// alike — accumulates per destination during one executor pass and is
// flushed as one frame per destination at the end of the pass (see
// kernel.Stack.RegisterFlusher), so a burst of broadcasts costs one
// datagram per peer instead of one per message per peer, and a relayed
// record is copied straight from the incoming frame without
// re-encoding.
package rbcast

import (
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// Service is the reliable-broadcast service.
const Service kernel.ServiceID = "rbcast"

// Protocol is the protocol name registered for this module.
const Protocol = "rbcast"

// rp2pChannel carries all rbcast traffic on the RP2P service.
const rp2pChannel = "rb"

// maxFrameBytes caps one coalesced frame so the resulting RP2P packet
// (frame + rp2p/udp/transport headers) stays under the UDP datagram
// ceiling (transport.MaxDatagram); a frame that would grow past the cap
// is flushed and a fresh one started. A single record larger than the
// cap still travels alone — coalescing never makes a datagram bigger
// than that record needs by itself.
const maxFrameBytes = 48 << 10

// dropCounter counts deliveries discarded because an unclaimed
// channel's buffer was full (see Config.BufferLimit). Exposed through
// the process-wide metrics registry instead of a per-message log line.
var dropCounter = metrics.NewCounter("rbcast.buffer_drops")

// Adaptation signals: received records and the relays they trigger.
// Their windowed ratio is the relay amplification (fan-out) the
// adaptation layer samples — it grows with the group size and with
// redundant relay traffic under churn.
var (
	recvCounter  = metrics.NewCounter("rbcast.records_received")
	relayCounter = metrics.NewCounter("rbcast.records_relayed")
)

// Broadcast requests a reliable broadcast to the whole group,
// including the sender. Data is handed through to the local channel
// handler (which may retain it) and copied into outgoing frames, so the
// caller must not mutate it afterwards.
type Broadcast struct {
	Channel string
	Data    []byte
}

// Deliver is handed to the channel's handler on every stack.
type Deliver struct {
	Origin kernel.Addr
	Data   []byte
}

// Listen registers the handler for a channel, flushing buffered
// messages. The handler runs on the stack's executor.
type Listen struct {
	Channel string
	Handler func(Deliver)
}

// Unlisten removes the channel's handler; subsequent messages buffer.
type Unlisten struct {
	Channel string
}

// Config tunes the module.
type Config struct {
	// BufferLimit bounds per-channel buffering of unclaimed messages.
	BufferLimit int
}

func (c Config) withDefaults() Config {
	if c.BufferLimit <= 0 {
		c.BufferLimit = 16384
	}
	return c
}

// seenSet tracks which sequence numbers of one origin were received,
// compacting the contiguous prefix so memory stays bounded under FIFO
// arrival.
//
// The first record observed from an origin sets a baseline: a receiver
// that joined the group mid-stream (view-driven membership) first hears
// an origin at some seq far above 1, and without the baseline the
// sparse set would wait forever for a prefix that was never addressed
// to it. Records below the baseline — in-flight at join time, arriving
// late via relays — are still accepted exactly once through a small
// side set that only ever holds seqs actually received.
type seenSet struct {
	maxContig uint64
	sparse    map[uint64]bool
	based     bool
	base      uint64          // adopted baseline: seqs <= base tracked in below
	below     map[uint64]bool // below-baseline seqs received individually
}

func (s *seenSet) add(seq uint64) bool {
	if !s.based {
		s.based = true
		if seq > 1 {
			s.base = seq - 1
			s.maxContig = s.base
		}
	}
	if seq <= s.base {
		if s.below[seq] {
			return false
		}
		if s.below == nil {
			s.below = make(map[uint64]bool)
		}
		s.below[seq] = true
		return true
	}
	if seq <= s.maxContig || s.sparse[seq] {
		return false
	}
	s.sparse[seq] = true
	for s.sparse[s.maxContig+1] {
		delete(s.sparse, s.maxContig+1)
		s.maxContig++
	}
	return true
}

// Module implements reliable broadcast.
type Module struct {
	kernel.Base
	cfg        Config
	seq        uint64
	seen       map[kernel.Addr]*seenSet
	handlers   map[string]func(Deliver)
	unclaimed  map[string][]Deliver
	drops      uint64
	dropLogged map[string]bool

	// Outgoing frame accumulation, one pooled writer per destination,
	// flushed at the end of every executor pass.
	outq       map[kernel.Addr]*wire.Writer
	outOrder   []kernel.Addr
	unregister func()
}

// Factory returns the module factory.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: []kernel.ServiceID{rp2p.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base:       kernel.NewBase(st, Protocol),
				cfg:        cfg,
				seen:       make(map[kernel.Addr]*seenSet),
				handlers:   make(map[string]func(Deliver)),
				unclaimed:  make(map[string][]Deliver),
				dropLogged: make(map[string]bool),
				outq:       make(map[kernel.Addr]*wire.Writer),
			}
		},
	}
}

// Start hooks into the RP2P channel and registers the frame flusher.
func (m *Module) Start() {
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: rp2pChannel, Handler: m.onRecv})
	m.unregister = m.Stk.RegisterFlusher(m.flushFrames)
}

// Stop detaches from RP2P and releases pending frame buffers.
func (m *Module) Stop() {
	if m.unregister != nil {
		m.unregister()
	}
	// Free in enqueue order, not map order: the pool's free list is
	// LIFO, so the release order decides which buffer the next GetWriter
	// returns and must be run-to-run deterministic (dpu-lint maporder).
	for _, p := range m.outOrder {
		if f := m.outq[p]; f != nil {
			f.Free()
			delete(m.outq, p)
		}
	}
	m.outOrder = m.outOrder[:0]
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: rp2pChannel})
}

// HandleRequest processes Broadcast, Listen and Unlisten.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Broadcast:
		m.broadcast(r)
	case Listen:
		m.handlers[r.Channel] = r.Handler
		delete(m.dropLogged, r.Channel) // a fresh consumer re-arms the warning
		if buf := m.unclaimed[r.Channel]; len(buf) > 0 {
			delete(m.unclaimed, r.Channel)
			for _, d := range buf {
				r.Handler(d)
			}
		}
	case Unlisten:
		delete(m.handlers, r.Channel)
	}
}

func (m *Module) broadcast(b Broadcast) {
	m.seq++
	origin := m.Stk.Addr()
	// Encode the record once into a pooled scratch buffer, then append
	// it to every destination's pending frame.
	rec := wire.GetWriter(len(b.Data) + len(b.Channel) + 24)
	rec.Uvarint(uint64(origin)).Uvarint(m.seq).String(b.Channel).BytesField(b.Data)
	m.markSeen(origin, m.seq)
	for _, p := range m.Stk.Others() {
		m.enqueueRecord(p, rec.Bytes())
	}
	rec.Free()
	m.deliver(b.Channel, Deliver{Origin: origin, Data: b.Data})
}

// enqueueRecord appends one encoded record to the destination's pending
// frame. A frame that would exceed the size cap is flushed BEFORE the
// append, so coalescing never builds a datagram larger than one the
// biggest single record would need on its own (an oversized record
// still travels alone, exactly as it would without coalescing).
func (m *Module) enqueueRecord(p kernel.Addr, rec []byte) {
	f := m.outq[p]
	if f == nil {
		f = wire.GetWriter(len(rec) + 256)
		//dpulint:ignore poolfree frame parked in m.outq between executor passes; flushFrames and Stop guarantee the Free
		m.outq[p] = f
		m.outOrder = append(m.outOrder, p)
	}
	if f.Len() > 0 && f.Len()+len(rec) > maxFrameBytes {
		if m.sendFrame(p, f) {
			f.Reset()
		} else {
			f = wire.GetWriter(len(rec) + 256) // ownership passed to a parked call
			m.outq[p] = f
		}
	}
	f.Raw(rec)
}

// sendFrame hands one frame to RP2P. It reports whether the caller
// still owns the writer: with RP2P bound (the normal case) the frame is
// copied synchronously and the writer is reusable; with RP2P unbound
// the request parks retaining the buffer, so ownership transfers and
// the writer must be neither reused nor freed.
func (m *Module) sendFrame(p kernel.Addr, f *wire.Writer) bool {
	bound := m.Stk.Provider(rp2p.Service) != nil
	m.Stk.CallSync(rp2p.Service, rp2p.Send{To: p, Channel: rp2pChannel, Data: f.Bytes()})
	return bound
}

// flushFrames runs as a stack flusher after every drained event batch:
// each destination's accumulated records go out as one RP2P datagram.
func (m *Module) flushFrames() {
	if len(m.outOrder) == 0 {
		return
	}
	for _, p := range m.outOrder {
		f := m.outq[p]
		if f == nil {
			continue
		}
		if f.Len() == 0 || m.sendFrame(p, f) {
			f.Free()
		}
		delete(m.outq, p)
	}
	m.outOrder = m.outOrder[:0]
}

func (m *Module) markSeen(origin kernel.Addr, seq uint64) bool {
	ss, ok := m.seen[origin]
	if !ok {
		ss = &seenSet{sparse: make(map[uint64]bool)}
		m.seen[origin] = ss
	}
	return ss.add(seq)
}

func (m *Module) onRecv(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	for r.Err() == nil && r.Remaining() > 0 {
		start := r.Pos()
		origin := kernel.Addr(r.Uvarint())
		seq := r.Uvarint()
		channel := r.String()
		data := r.BytesField()
		if r.Err() != nil {
			return // truncated frame: drop the unreadable tail
		}
		rec := rv.Data[start:r.Pos()]
		if !m.markSeen(origin, seq) {
			continue // already relayed and delivered
		}
		recvCounter.Add(1)
		// Relay before delivering: agreement despite sender crash. The
		// record is appended to the relay frames verbatim — no
		// re-encoding.
		for _, p := range m.Stk.Others() {
			if p == origin || p == rv.From {
				continue
			}
			m.enqueueRecord(p, rec)
			relayCounter.Add(1)
		}
		m.deliver(channel, Deliver{Origin: origin, Data: data})
	}
}

func (m *Module) deliver(channel string, d Deliver) {
	if h, ok := m.handlers[channel]; ok {
		h(d)
		return
	}
	buf := m.unclaimed[channel]
	if len(buf) >= m.cfg.BufferLimit {
		m.drops++
		dropCounter.Add(1)
		if !m.dropLogged[channel] {
			m.dropLogged[channel] = true
			m.Stk.Logf("rbcast: channel %q buffer full, dropping (suppressing further logs; see metrics counter %q)",
				channel, dropCounter.Name())
		}
		return
	}
	// A buffered record would otherwise alias the whole incoming
	// coalesced frame (up to maxFrameBytes), pinning it for as long as
	// the channel stays unclaimed; copy so buffering retains only the
	// record itself.
	d.Data = append([]byte(nil), d.Data...)
	m.unclaimed[channel] = append(buf, d)
}
