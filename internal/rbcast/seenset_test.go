package rbcast

import (
	"testing"
	"testing/quick"
)

func TestSeenSetExactlyOnce(t *testing.T) {
	s := &seenSet{sparse: make(map[uint64]bool)}
	if !s.add(1) || s.add(1) {
		t.Fatal("first add must return true, second false")
	}
	if !s.add(3) {
		t.Fatal("gap add failed")
	}
	if s.add(3) {
		t.Fatal("duplicate gap add accepted")
	}
	if !s.add(2) {
		t.Fatal("fill add failed")
	}
	// 1..3 now contiguous; all must read as seen.
	for seq := uint64(1); seq <= 3; seq++ {
		if s.add(seq) {
			t.Fatalf("seq %d re-added after compaction", seq)
		}
	}
	if s.maxContig != 3 {
		t.Fatalf("maxContig = %d, want 3", s.maxContig)
	}
	if len(s.sparse) != 0 {
		t.Fatalf("sparse not compacted: %v", s.sparse)
	}
}

// TestQuickSeenSetMatchesReferenceSet compares the compacting set with
// a plain map under random insertion orders: add must return true
// exactly on first insertion, and memory must compact to the contiguous
// prefix.
func TestQuickSeenSetMatchesReferenceSet(t *testing.T) {
	f := func(raw []uint8) bool {
		s := &seenSet{sparse: make(map[uint64]bool)}
		ref := make(map[uint64]bool)
		for _, r := range raw {
			seq := uint64(r%32) + 1 // dense domain to force compaction
			fresh := !ref[seq]
			ref[seq] = true
			if s.add(seq) != fresh {
				return false
			}
		}
		// Every seq in ref must now be rejected; absent ones accepted.
		for seq := uint64(1); seq <= 33; seq++ {
			if ref[seq] && s.add(seq) {
				return false
			}
		}
		// Compaction invariant: sparse never contains seqs <= maxContig.
		for seq := range s.sparse {
			if seq <= s.maxContig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeenSetMidStreamBaseline(t *testing.T) {
	// A receiver that first hears an origin mid-stream (a node admitted
	// by a view change) adopts a baseline: memory stays bounded, and
	// in-flight records below the baseline are still accepted exactly
	// once.
	s := &seenSet{sparse: make(map[uint64]bool)}
	if !s.add(500) {
		t.Fatal("first mid-stream record rejected")
	}
	if s.add(500) {
		t.Fatal("duplicate accepted")
	}
	if s.maxContig != 500 {
		t.Fatalf("maxContig = %d, want 500 (baseline adopted)", s.maxContig)
	}
	// The contiguous stream continues without sparse growth.
	for seq := uint64(501); seq <= 600; seq++ {
		if !s.add(seq) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	if len(s.sparse) != 0 {
		t.Fatalf("sparse grew to %d under FIFO arrival", len(s.sparse))
	}
	// Late below-baseline records (relayed in-flight at join time) are
	// delivered exactly once.
	if !s.add(480) || s.add(480) {
		t.Fatal("below-baseline record not exactly-once")
	}
	if !s.add(479) {
		t.Fatal("second below-baseline record rejected")
	}
	if len(s.below) != 2 {
		t.Fatalf("below set %d, want 2", len(s.below))
	}
}
