package rbcast

import (
	"testing"
	"testing/quick"
)

func TestSeenSetExactlyOnce(t *testing.T) {
	s := &seenSet{sparse: make(map[uint64]bool)}
	if !s.add(1) || s.add(1) {
		t.Fatal("first add must return true, second false")
	}
	if !s.add(3) {
		t.Fatal("gap add failed")
	}
	if s.add(3) {
		t.Fatal("duplicate gap add accepted")
	}
	if !s.add(2) {
		t.Fatal("fill add failed")
	}
	// 1..3 now contiguous; all must read as seen.
	for seq := uint64(1); seq <= 3; seq++ {
		if s.add(seq) {
			t.Fatalf("seq %d re-added after compaction", seq)
		}
	}
	if s.maxContig != 3 {
		t.Fatalf("maxContig = %d, want 3", s.maxContig)
	}
	if len(s.sparse) != 0 {
		t.Fatalf("sparse not compacted: %v", s.sparse)
	}
}

// TestQuickSeenSetMatchesReferenceSet compares the compacting set with
// a plain map under random insertion orders: add must return true
// exactly on first insertion, and memory must compact to the contiguous
// prefix.
func TestQuickSeenSetMatchesReferenceSet(t *testing.T) {
	f := func(raw []uint8) bool {
		s := &seenSet{sparse: make(map[uint64]bool)}
		ref := make(map[uint64]bool)
		for _, r := range raw {
			seq := uint64(r%32) + 1 // dense domain to force compaction
			fresh := !ref[seq]
			ref[seq] = true
			if s.add(seq) != fresh {
				return false
			}
		}
		// Every seq in ref must now be rejected; absent ones accepted.
		for seq := uint64(1); seq <= 33; seq++ {
			if ref[seq] && s.add(seq) {
				return false
			}
		}
		// Compaction invariant: sparse never contains seqs <= maxContig.
		for seq := range s.sparse {
			if seq <= s.maxContig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
