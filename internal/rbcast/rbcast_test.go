package rbcast_test

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/transport"
	"repro/internal/udp"
)

const timeout = 10 * time.Second

type delivLog struct {
	mu  sync.Mutex
	got []rbcast.Deliver
}

func (l *delivLog) add(d rbcast.Deliver) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.got = append(l.got, d)
}

func (l *delivLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.got)
}

func (l *delivLog) snapshot() []rbcast.Deliver {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]rbcast.Deliver(nil), l.got...)
}

func build(t *testing.T, n int, netCfg simnet.Config) (*stacktest.Cluster, []*delivLog) {
	c := stacktest.New(t, n, netCfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.CreateAll(rbcast.Protocol)
	logs := make([]*delivLog, n)
	for i := range logs {
		logs[i] = &delivLog{}
		c.Stacks[i].Call(rbcast.Service, rbcast.Listen{Channel: "t", Handler: logs[i].add})
	}
	return c, logs
}

func TestBroadcastReachesEveryoneIncludingSender(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{})
	c.Stacks[0].Call(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte("hello")})
	c.Eventually(timeout, "delivery everywhere", func() bool {
		for _, l := range logs {
			if l.count() != 1 {
				return false
			}
		}
		return true
	})
	for i, l := range logs {
		d := l.snapshot()[0]
		if d.Origin != 0 || string(d.Data) != "hello" {
			t.Errorf("stack %d got %+v", i, d)
		}
	}
}

func TestNoDuplicatesDespiteRelays(t *testing.T) {
	c, logs := build(t, 5, simnet.Config{Seed: 3, BaseLatency: time.Millisecond, Jitter: time.Millisecond})
	const total = 30
	for i := 0; i < total; i++ {
		c.Stacks[i%5].Call(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "all deliveries", func() bool {
		for _, l := range logs {
			if l.count() < total {
				return false
			}
		}
		return true
	})
	time.Sleep(50 * time.Millisecond)
	for i, l := range logs {
		if got := l.count(); got != total {
			t.Errorf("stack %d delivered %d, want exactly %d", i, got, total)
		}
		seen := map[string]bool{}
		for _, d := range l.snapshot() {
			key := fmt.Sprintf("%d-%v", d.Origin, d.Data)
			if seen[key] {
				t.Errorf("stack %d delivered %s twice", i, key)
			}
			seen[key] = true
		}
	}
}

func TestAgreementDespiteSenderCrashMidBroadcast(t *testing.T) {
	// The sender manages to reach only stack 1 before crashing; the
	// relay step must spread the message to stack 2 anyway.
	c, logs := build(t, 3, simnet.Config{BaseLatency: 2 * time.Millisecond})
	c.Net.Cut(0, 2) // sender can only reach stack 1
	c.Stacks[0].Call(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte("m")})
	// Give the message time to reach stack 1, then crash the sender.
	c.Eventually(timeout, "reached stack 1", func() bool { return logs[1].count() == 1 })
	c.Net.SetDown(0, true)
	c.Eventually(timeout, "relayed to stack 2", func() bool { return logs[2].count() == 1 })
	if d := logs[2].snapshot()[0]; d.Origin != 0 || string(d.Data) != "m" {
		t.Errorf("stack 2 got %+v", d)
	}
}

func TestLossyNetworkStillDeliversEverywhere(t *testing.T) {
	c, logs := build(t, 4, simnet.Config{Seed: 6, LossRate: 0.25, BaseLatency: time.Millisecond})
	const total = 20
	for i := 0; i < total; i++ {
		c.Stacks[i%4].Call(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "all deliveries under loss", func() bool {
		for _, l := range logs {
			if l.count() != total {
				return false
			}
		}
		return true
	})
}

func TestChannelBufferingForLateListeners(t *testing.T) {
	c, _ := build(t, 2, simnet.Config{})
	c.Stacks[0].Call(rbcast.Service, rbcast.Broadcast{Channel: "late", Data: []byte("early-bird")})
	late := &delivLog{}
	time.Sleep(20 * time.Millisecond)
	c.Stacks[1].Call(rbcast.Service, rbcast.Listen{Channel: "late", Handler: late.add})
	c.Eventually(timeout, "buffered message flushed", func() bool { return late.count() == 1 })
	if d := late.snapshot()[0]; string(d.Data) != "early-bird" {
		t.Errorf("got %+v", d)
	}
}

func TestValidityLocalDeliveryIsImmediate(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{BaseLatency: 50 * time.Millisecond})
	start := time.Now()
	c.Stacks[0].Call(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte("x")})
	c.Eventually(timeout, "self delivery", func() bool { return logs[0].count() == 1 })
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Errorf("local delivery took %v; should not wait for the network", el)
	}
}

// TestBurstCoalescesIntoFewDatagrams checks the per-destination frame
// coalescing: a burst of broadcasts issued in one executor pass leaves
// the sender as a handful of RP2P datagrams, not one per message per
// peer.
func TestBurstCoalescesIntoFewDatagrams(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{})
	const burst = 100
	// Issue the whole burst in one executor event, so it drains as one
	// batch and the flusher coalesces the outgoing records.
	c.OnSync(0, func() {
		for i := 0; i < burst; i++ {
			c.Stacks[0].CallSync(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: []byte{byte(i)}})
		}
	})
	c.Eventually(timeout, "burst delivered everywhere", func() bool {
		for _, l := range logs {
			if l.count() != burst {
				return false
			}
		}
		return true
	})
	var sent uint64
	done := make(chan struct{})
	c.Stacks[0].Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) {
		sent = s.Sent
		close(done)
	}})
	<-done
	// Without coalescing the burst costs burst*(n-1) = 200 rp2p sends.
	// With per-pass frames it is a few datagrams per peer (the 100 tiny
	// records fit one frame each).
	if sent >= burst {
		t.Fatalf("burst of %d broadcasts used %d rp2p sends; coalescing should use far fewer", burst, sent)
	}
	// FIFO within the frame: stack 0's own order must be the arrival
	// order everywhere.
	for i, l := range logs {
		snap := l.snapshot()
		for j, d := range snap {
			if int(d.Data[0]) != j {
				t.Fatalf("stack %d: record %d out of order (got %d)", i, j, d.Data[0])
			}
		}
	}
}

// TestBufferFullLogsOnceAndCounts overflows an unclaimed channel and
// checks the drop path: one log line per channel (not one per message)
// and every drop counted.
func TestBufferFullLogsOnceAndCounts(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "", 0)
	reg := kernel.NewRegistry()
	net := simnet.New(simnet.Config{})
	defer net.Close()
	reg.MustRegister(udp.Factory(transport.Sim(net)))
	reg.MustRegister(rp2p.Factory(rp2p.Config{}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{BufferLimit: 4}))
	st2 := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}, Registry: reg, Logger: logger})
	defer st2.Close()
	if err := st2.DoSync(func() {
		if _, err := st2.CreateProtocol(rbcast.Protocol); err != nil {
			t.Errorf("create: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	before := metrics.NewCounter("rbcast.buffer_drops").Value()
	const extra = 10
	for i := 0; i < 4+extra; i++ {
		st2.Call(rbcast.Service, rbcast.Broadcast{Channel: "unclaimed", Data: []byte{byte(i)}})
	}
	if err := st2.DoSync(func() {}); err != nil {
		t.Fatal(err)
	}
	if got := metrics.NewCounter("rbcast.buffer_drops").Value() - before; got != extra {
		t.Fatalf("drop counter advanced by %d, want %d", got, extra)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if n := strings.Count(logged, "buffer full"); n != 1 {
		t.Fatalf("buffer-full logged %d times, want once per channel:\n%s", n, logged)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestFrameNeverGrowsPastCapWhenCoalescing: two records that together
// exceed the frame cap must leave as two datagrams — coalescing must
// never build a frame a real UDP socket cannot carry.
func TestFrameNeverGrowsPastCapWhenCoalescing(t *testing.T) {
	c, logs := build(t, 2, simnet.Config{})
	big := make([]byte, 30<<10) // two of these exceed the 48 KiB cap
	c.OnSync(0, func() {
		c.Stacks[0].CallSync(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: big})
		c.Stacks[0].CallSync(rbcast.Service, rbcast.Broadcast{Channel: "t", Data: big})
	})
	c.Eventually(timeout, "both records delivered", func() bool {
		return logs[1].count() == 2
	})
	var sent uint64
	done := make(chan struct{})
	c.Stacks[0].Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) {
		sent = s.Sent
		close(done)
	}})
	<-done
	// One peer, two records that cannot share a frame: exactly 2 sends.
	if sent != 2 {
		t.Fatalf("rp2p sends = %d, want 2 (one frame per over-cap record)", sent)
	}
}
