package abcast

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/rbcast"
	"repro/internal/wire"
)

// ctModule is the Chandra–Toueg atomic broadcast: messages are
// disseminated with reliable broadcast; a sequence of consensus
// instances agrees, one batch at a time, on the delivery order of the
// not-yet-delivered messages. Decisions carry full payloads, so a stack
// that missed the dissemination of a message still delivers it from the
// decided batch.
//
// This is the implementation measured in the paper's experiments (the
// ABcast module of Figure 4, on top of the CT consensus module). It is
// uniform and tolerates any minority of crashes.
//
// Instances are pipelined: up to maxInflight consensus instances run
// concurrently, each proposing a disjoint slice of the pending backlog.
// Decisions are still processed strictly in instance order (out-of-order
// arrivals buffer in decBuf), so the delivery order is unchanged; the
// pipeline only overlaps the network round-trips of consecutive
// instances, which is what keeps a loaded group throughput-bound instead
// of latency-bound. Proposing the same message in two instances is
// harmless (delivery dedups), but the in-flight set avoids it to keep
// decisions lean.
type ctModule struct {
	kernel.Base
	epoch   uint64
	channel string           // rbcast dissemination channel, epoch-scoped
	consSvc kernel.ServiceID // which consensus service orders batches

	sendSeq    uint64
	pending    map[msgID][]byte // received but not delivered
	delivered  map[msgID]bool
	k          uint64             // next consensus instance to process in this epoch's group
	nextK      uint64             // next consensus instance to propose on (>= k)
	running    int                // proposals outstanding in [k, nextK)
	inFlight   map[msgID]bool     // ids carried by an outstanding proposal of ours
	proposed   map[uint64][]msgID // instance -> ids our proposal carried
	proposedAt map[uint64]time.Time
	decBuf     map[uint64][]byte // out-of-order decisions, bounded by maxDecBuf
	decDropped map[uint64]bool   // decisions evicted from decBuf, to refetch at their turn
}

// maxInflight bounds how many consensus instances this stack proposes
// concurrently. Depth 1 is the classic serial reduction; a modest
// pipeline overlaps the instance round-trips without flooding the
// substrate.
const maxInflight = 4

// maxDecBuf bounds the out-of-order decision buffer. A stack that falls
// behind while decisions keep arriving would otherwise buffer them
// without limit (each up to maxBatchBytes — the same rationale that
// bounds proposal batches). Beyond the cap the furthest-ahead decision
// is dropped and counted; it is refetched from the consensus module's
// decision cache (consensus.Refetch) when its turn comes.
const maxDecBuf = 256

// decBufDrops counts decisions evicted from the bounded decBuf.
var decBufDrops = metrics.NewCounter("abcast.ct.decbuf_drops")

// Adaptation signals: decided instances and the smoothed
// propose-to-decide latency of the instances this stack proposed. The
// latency gauge is what internal/policy samples to tell whether the
// consensus path is keeping up with the environment.
var (
	decisionCounter  = metrics.NewCounter("abcast.decisions")
	consLatencyGauge = metrics.NewGauge("abcast.consensus_latency_us")
)

// CTImpl returns the implementation descriptor for abcast/ct, using the
// default consensus service.
func CTImpl() Impl {
	return CTImplOn(ProtocolCT, consensus.Service)
}

// CTImplOn returns a CT atomic-broadcast variant bound to a specific
// consensus service. Registering such a variant and switching to it is
// the consensus-replacement extension ([16] in the paper): the
// create_module recursion instantiates the new consensus protocol as a
// required service of the new ABcast module, while the old epoch keeps
// draining on the old consensus protocol.
func CTImplOn(name string, consSvc kernel.ServiceID) Impl {
	return Impl{
		Name:     name,
		Requires: []kernel.ServiceID{rbcast.Service, consSvc},
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			return &ctModule{
				Base:       kernel.NewBase(st, name),
				epoch:      epoch,
				channel:    fmt.Sprintf("ab/%s/%d", name, epoch),
				consSvc:    consSvc,
				pending:    make(map[msgID][]byte),
				delivered:  make(map[msgID]bool),
				inFlight:   make(map[msgID]bool),
				proposed:   make(map[uint64][]msgID),
				proposedAt: make(map[uint64]time.Time),
				decBuf:     make(map[uint64][]byte),
				decDropped: make(map[uint64]bool),
			}
		},
	}
}

// Start attaches to the epoch-scoped rbcast channel and consensus group.
// The consensus Listen replays decisions of this group that were made
// before this module existed (a module created mid-update catches up).
func (m *ctModule) Start() {
	m.Stk.Call(rbcast.Service, rbcast.Listen{Channel: m.channel, Handler: m.onMsg})
	m.Stk.Call(m.consSvc, consensus.Listen{Group: m.epoch, Handler: m.onDecide})
}

// Stop detaches from the substrate and garbage-collects this epoch's
// decision cache (the module is the sole user of its consensus group).
func (m *ctModule) Stop() {
	m.Stk.Call(rbcast.Service, rbcast.Unlisten{Channel: m.channel})
	m.Stk.Call(m.consSvc, consensus.Forget{Group: m.epoch})
}

// HandleRequest processes Broadcast.
func (m *ctModule) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	b, ok := req.(Broadcast)
	if !ok {
		return
	}
	m.sendSeq++
	w := wire.NewWriter(len(b.Data) + 16)
	w.Uvarint(uint64(m.Stk.Addr())).Uvarint(m.sendSeq).Raw(b.Data)
	m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: m.channel, Data: w.Bytes()})
}

func (m *ctModule) onMsg(d rbcast.Deliver) {
	r := wire.NewReader(d.Data)
	id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
	data := r.Rest()
	if r.Err() != nil {
		return
	}
	if m.delivered[id] {
		return
	}
	if _, dup := m.pending[id]; dup {
		return
	}
	m.pending[id] = data
	m.maybePropose()
}

// maxBatch and maxBatchBytes bound how much one consensus instance
// orders, by count and by payload volume. Unbounded batches grow with
// the backlog, and a multi-hundred-kilobyte estimate takes so long to
// transmit that the instance starves the very backlog it is trying to
// drain; the overflow simply waits for the next instance.
//
// maxBatchBytes must also keep a proposal (and therefore an estimate
// and a decision, which carry the same bytes) inside one real UDP
// datagram with the consensus/rp2p/frame headers on top — the same
// 48 KiB rationale that caps core's sender-side batches. A proposal
// over transport.MaxDatagram is silently unsendable on the datagram
// backend and the instance stalls forever. A single over-limit payload
// still goes through as a one-record batch: the byte cap is checked
// after the first record, and one record within the stream transport's
// message limit is the sender's problem, not ours.
const (
	maxBatch      = 256
	maxBatchBytes = 48 << 10
)

// maybePropose starts consensus instances on the pending backlog, up to
// the pipeline depth, each carrying ids no other outstanding proposal
// of ours already covers.
func (m *ctModule) maybePropose() {
	if m.nextK < m.k {
		m.nextK = m.k
	}
	// No len(pending)-vs-len(inFlight) shortcut here: inFlight can hold
	// ids another stack's decision already removed from pending, which
	// would make such a comparison undercount proposable work.
	for m.running < maxInflight && len(m.pending) > 0 {
		ids := make([]msgID, 0, len(m.pending))
		for id := range m.pending {
			if !m.inFlight[id] {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return
		}
		sortIDs(ids)
		if len(ids) > maxBatch {
			ids = ids[:maxBatch]
		}
		count := 0
		bytes := 0
		for _, id := range ids {
			bytes += len(m.pending[id])
			count++
			if bytes >= maxBatchBytes {
				break
			}
		}
		ids = ids[:count]
		w := wire.NewWriter(bytes + 16*count + 16)
		w.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			w.Uvarint(uint64(id.origin)).Uvarint(id.seq).BytesField(m.pending[id])
			m.inFlight[id] = true
		}
		m.proposed[m.nextK] = ids
		m.proposedAt[m.nextK] = m.Stk.Now()
		m.running++
		m.Stk.Call(m.consSvc, consensus.Propose{
			ID:    consensus.InstanceID{Group: m.epoch, Seq: m.nextK},
			Value: w.Bytes(),
		})
		m.nextK++
	}
}

func (m *ctModule) onDecide(d consensus.Decide) {
	switch {
	case d.ID.Seq < m.k:
		return // replayed or duplicate decision, already processed
	case d.ID.Seq > m.k:
		m.bufferDecision(d.ID.Seq, d.Value)
		return
	}
	m.processDecision(d.Value)
	for {
		val, ok := m.decBuf[m.k]
		if !ok {
			if m.decDropped[m.k] {
				// This decision was evicted from the bounded buffer; pull
				// it back from the consensus module's decision cache. The
				// re-indication arrives through onDecide.
				delete(m.decDropped, m.k)
				m.Stk.Call(m.consSvc, consensus.Refetch{
					ID: consensus.InstanceID{Group: m.epoch, Seq: m.k},
				})
			}
			break
		}
		delete(m.decBuf, m.k)
		m.processDecision(val)
	}
	m.maybePropose()
}

// bufferDecision holds an out-of-order decision, evicting the
// furthest-ahead one when the buffer is full. Evicted decisions are
// recoverable: the consensus module caches every decision of the group
// until Forget, so they are refetched when processing reaches them.
func (m *ctModule) bufferDecision(seq uint64, val []byte) {
	if _, dup := m.decBuf[seq]; dup {
		return
	}
	if len(m.decBuf) >= maxDecBuf {
		far := seq
		for s := range m.decBuf {
			if s > far {
				far = s
			}
		}
		decBufDrops.Add(1)
		m.decDropped[far] = true
		if far == seq {
			return // the newcomer is the furthest ahead: don't store it
		}
		delete(m.decBuf, far)
	}
	m.decBuf[seq] = val
}

// processDecision delivers the decided batch in its (deterministic)
// encoded order, advances to the next instance, and releases this
// stack's outstanding proposal for it (ids whose value lost the
// instance become proposable again).
func (m *ctModule) processDecision(batch []byte) {
	r := wire.NewReader(batch)
	count := r.Uvarint()
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
		data := r.BytesField()
		if r.Err() != nil {
			break
		}
		if m.delivered[id] {
			continue
		}
		m.delivered[id] = true
		delete(m.pending, id)
		m.Stk.Indicate(ServiceImpl, Deliver{Origin: id.origin, Data: data})
	}
	decisionCounter.Add(1)
	if ids, ok := m.proposed[m.k]; ok {
		delete(m.proposed, m.k)
		m.running--
		for _, id := range ids {
			delete(m.inFlight, id)
		}
		if at, ok := m.proposedAt[m.k]; ok {
			delete(m.proposedAt, m.k)
			consLatencyGauge.Observe(m.Stk.Now().Sub(at).Microseconds())
		}
	}
	m.k++
}
