package abcast

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/wire"
)

// ctModule is the Chandra–Toueg atomic broadcast: messages are
// disseminated with reliable broadcast; a sequence of consensus
// instances agrees, one batch at a time, on the delivery order of the
// not-yet-delivered messages. Decisions carry full payloads, so a stack
// that missed the dissemination of a message still delivers it from the
// decided batch.
//
// This is the implementation measured in the paper's experiments (the
// ABcast module of Figure 4, on top of the CT consensus module). It is
// uniform and tolerates any minority of crashes.
type ctModule struct {
	kernel.Base
	epoch   uint64
	channel string           // rbcast dissemination channel, epoch-scoped
	consSvc kernel.ServiceID // which consensus service orders batches

	sendSeq   uint64
	pending   map[msgID][]byte // received but not delivered
	delivered map[msgID]bool
	k         uint64 // next consensus instance in this epoch's group
	running   bool   // a proposal for instance k is outstanding
	decBuf    map[uint64][]byte
}

// CTImpl returns the implementation descriptor for abcast/ct, using the
// default consensus service.
func CTImpl() Impl {
	return CTImplOn(ProtocolCT, consensus.Service)
}

// CTImplOn returns a CT atomic-broadcast variant bound to a specific
// consensus service. Registering such a variant and switching to it is
// the consensus-replacement extension ([16] in the paper): the
// create_module recursion instantiates the new consensus protocol as a
// required service of the new ABcast module, while the old epoch keeps
// draining on the old consensus protocol.
func CTImplOn(name string, consSvc kernel.ServiceID) Impl {
	return Impl{
		Name:     name,
		Requires: []kernel.ServiceID{rbcast.Service, consSvc},
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			return &ctModule{
				Base:      kernel.NewBase(st, name),
				epoch:     epoch,
				channel:   fmt.Sprintf("ab/%s/%d", name, epoch),
				consSvc:   consSvc,
				pending:   make(map[msgID][]byte),
				delivered: make(map[msgID]bool),
				decBuf:    make(map[uint64][]byte),
			}
		},
	}
}

// Start attaches to the epoch-scoped rbcast channel and consensus group.
// The consensus Listen replays decisions of this group that were made
// before this module existed (a module created mid-update catches up).
func (m *ctModule) Start() {
	m.Stk.Call(rbcast.Service, rbcast.Listen{Channel: m.channel, Handler: m.onMsg})
	m.Stk.Call(m.consSvc, consensus.Listen{Group: m.epoch, Handler: m.onDecide})
}

// Stop detaches from the substrate and garbage-collects this epoch's
// decision cache (the module is the sole user of its consensus group).
func (m *ctModule) Stop() {
	m.Stk.Call(rbcast.Service, rbcast.Unlisten{Channel: m.channel})
	m.Stk.Call(m.consSvc, consensus.Forget{Group: m.epoch})
}

// HandleRequest processes Broadcast.
func (m *ctModule) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	b, ok := req.(Broadcast)
	if !ok {
		return
	}
	m.sendSeq++
	w := wire.NewWriter(len(b.Data) + 16)
	w.Uvarint(uint64(m.Stk.Addr())).Uvarint(m.sendSeq).Raw(b.Data)
	m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: m.channel, Data: w.Bytes()})
}

func (m *ctModule) onMsg(d rbcast.Deliver) {
	r := wire.NewReader(d.Data)
	id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
	data := r.Rest()
	if r.Err() != nil {
		return
	}
	if m.delivered[id] {
		return
	}
	if _, dup := m.pending[id]; dup {
		return
	}
	m.pending[id] = data
	m.maybePropose()
}

// maxBatch and maxBatchBytes bound how much one consensus instance
// orders, by count and by payload volume. Unbounded batches grow with
// the backlog, and a multi-hundred-kilobyte estimate takes so long to
// transmit that the instance starves the very backlog it is trying to
// drain; the overflow simply waits for the next instance.
const (
	maxBatch      = 256
	maxBatchBytes = 128 << 10
)

// maybePropose starts consensus instance k on the current batch of
// undelivered messages. One instance runs at a time.
func (m *ctModule) maybePropose() {
	if m.running || len(m.pending) == 0 {
		return
	}
	ids := make([]msgID, 0, len(m.pending))
	for id := range m.pending {
		ids = append(ids, id)
	}
	sortIDs(ids)
	if len(ids) > maxBatch {
		ids = ids[:maxBatch]
	}
	w := wire.NewWriter(256)
	count := 0
	bytes := 0
	for _, id := range ids {
		bytes += len(m.pending[id])
		count++
		if bytes >= maxBatchBytes {
			break
		}
	}
	ids = ids[:count]
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Uvarint(uint64(id.origin)).Uvarint(id.seq).BytesField(m.pending[id])
	}
	m.running = true
	m.Stk.Call(m.consSvc, consensus.Propose{
		ID:    consensus.InstanceID{Group: m.epoch, Seq: m.k},
		Value: w.Bytes(),
	})
}

func (m *ctModule) onDecide(d consensus.Decide) {
	switch {
	case d.ID.Seq < m.k:
		return // replayed or duplicate decision, already processed
	case d.ID.Seq > m.k:
		m.decBuf[d.ID.Seq] = d.Value // out of order: hold
		return
	}
	m.processDecision(d.Value)
	for {
		val, ok := m.decBuf[m.k]
		if !ok {
			break
		}
		delete(m.decBuf, m.k)
		m.processDecision(val)
	}
	m.maybePropose()
}

// processDecision delivers the decided batch in its (deterministic)
// encoded order and advances to the next instance.
func (m *ctModule) processDecision(batch []byte) {
	r := wire.NewReader(batch)
	count := r.Uvarint()
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
		data := r.BytesField()
		if r.Err() != nil {
			break
		}
		if m.delivered[id] {
			continue
		}
		m.delivered[id] = true
		delete(m.pending, id)
		m.Stk.Indicate(ServiceImpl, Deliver{Origin: id.origin, Data: data})
	}
	m.k++
	m.running = false
}
