package abcast

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// TestQuickSortIDsDeterministic verifies the batch ordering used by the
// CT implementation is a strict total order independent of input
// permutation — the property that makes decided batches deliver in the
// same order on every stack.
func TestQuickSortIDsDeterministic(t *testing.T) {
	f := func(raw []uint16, seed uint8) bool {
		ids := make([]msgID, len(raw))
		for i, r := range raw {
			ids[i] = msgID{origin: kernel.Addr(r % 7), seq: uint64(r / 7)}
		}
		a := append([]msgID(nil), ids...)
		b := append([]msgID(nil), ids...)
		// Shuffle b deterministically from seed.
		for i := len(b) - 1; i > 0; i-- {
			j := int(seed) * (i + 3) % (i + 1)
			b[i], b[j] = b[j], b[i]
		}
		sortIDs(a)
		sortIDs(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Sorted: non-decreasing under less().
		return sort.SliceIsSorted(a, func(i, j int) bool { return a[i].less(a[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMsgIDLessIsStrictWeakOrder(t *testing.T) {
	f := func(o1, o2 uint8, s1, s2 uint32) bool {
		a := msgID{origin: kernel.Addr(o1), seq: uint64(s1)}
		b := msgID{origin: kernel.Addr(o2), seq: uint64(s2)}
		if a == b {
			return !a.less(b) && !b.less(a)
		}
		return a.less(b) != b.less(a) // exactly one direction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCTBatchCapLeavesOverflowPending(t *testing.T) {
	// White-box: a module with more pending than maxBatch proposes only
	// the first maxBatch ids (in sorted order).
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	defer st.Close()
	err := st.DoSync(func() {
		im := CTImpl()
		m := im.New(st, 0).(*ctModule)
		for i := 0; i < maxBatch+50; i++ {
			m.pending[msgID{origin: 0, seq: uint64(i + 1)}] = []byte{byte(i)}
		}
		// Capture the proposal by intercepting the consensus service:
		// no consensus module is bound, so the call parks; we inspect
		// the pending-call count instead and the running flag.
		m.maybePropose()
		if m.running == 0 {
			t.Error("no proposal issued")
		}
		if got := len(m.proposed[0]); got != maxBatch {
			t.Errorf("first proposal carries %d ids, want %d", got, maxBatch)
		}
		if len(m.pending) != maxBatch+50 {
			t.Error("pending mutated by proposing")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecBufBoundedAndEvictionsMarked(t *testing.T) {
	// White-box: out-of-order decisions beyond the cap evict the
	// furthest-ahead seq and mark it for refetch, so memory stays
	// bounded however far the stack falls behind.
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	defer st.Close()
	err := st.DoSync(func() {
		im := CTImpl()
		m := im.New(st, 0).(*ctModule)
		const extra = 5
		for seq := uint64(1); seq <= maxDecBuf+extra; seq++ {
			m.bufferDecision(seq, []byte{byte(seq)})
		}
		if len(m.decBuf) > maxDecBuf {
			t.Errorf("decBuf holds %d decisions, cap %d", len(m.decBuf), maxDecBuf)
		}
		if len(m.decDropped) != extra {
			t.Errorf("%d seqs marked dropped, want %d", len(m.decDropped), extra)
		}
		// The furthest-ahead seqs are the evicted ones; the near ones
		// (which unblock processing soonest) are retained.
		for seq := uint64(1); seq <= maxDecBuf; seq++ {
			if _, ok := m.decBuf[seq]; !ok {
				t.Errorf("near decision %d evicted; eviction must prefer the furthest", seq)
				break
			}
		}
		for seq := uint64(maxDecBuf + 1); seq <= maxDecBuf+extra; seq++ {
			if !m.decDropped[seq] {
				t.Errorf("far decision %d not marked for refetch", seq)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
