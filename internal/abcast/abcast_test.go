package abcast_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 20 * time.Second

// delivery is a delivered message as seen by one stack.
type delivery struct {
	origin kernel.Addr
	data   string
}

// sink subscribes to ServiceImpl and logs deliveries.
type sink struct {
	kernel.Base
	mu  sync.Mutex
	seq []delivery
}

func newSink(st *kernel.Stack) *sink { return &sink{Base: kernel.NewBase(st, "sink")} }

func (s *sink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	if d, ok := ind.(abcast.Deliver); ok {
		s.mu.Lock()
		s.seq = append(s.seq, delivery{origin: d.Origin, data: string(d.Data)})
		s.mu.Unlock()
	}
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seq)
}

func (s *sink) snapshot() []delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]delivery(nil), s.seq...)
}

// build assembles n stacks with the full substrate and the named
// implementation bound to ServiceImpl at epoch 0.
func build(t *testing.T, n int, netCfg simnet.Config, implName string) (*stacktest.Cluster, []*sink) {
	t.Helper()
	c := stacktest.New(t, n, netCfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	reg := abcast.StandardRegistry()
	im, ok := reg.Lookup(implName)
	if !ok {
		t.Fatalf("unknown implementation %q", implName)
	}
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		i := i
		c.OnSync(i, func() {
			st := c.Stacks[i]
			for _, svc := range im.Requires {
				if err := st.EnsureService(svc); err != nil {
					t.Errorf("stack %d: ensure %q: %v", i, svc, err)
				}
			}
			mod := im.New(st, 0)
			st.AddModule(mod)
			if err := st.Bind(abcast.ServiceImpl, mod); err != nil {
				t.Errorf("stack %d: bind: %v", i, err)
			}
			sinks[i] = newSink(st)
			st.AddModule(sinks[i])
			st.Subscribe(abcast.ServiceImpl, sinks[i])
			mod.Start()
		})
	}
	return c, sinks
}

var allImpls = []string{abcast.ProtocolCT, abcast.ProtocolSeq, abcast.ProtocolToken}

func waitAll(t *testing.T, c *stacktest.Cluster, sinks []*sink, want int, skip map[int]bool) {
	t.Helper()
	c.Eventually(timeout, fmt.Sprintf("%d deliveries everywhere", want), func() bool {
		for i, s := range sinks {
			if skip[i] {
				continue
			}
			if s.count() < want {
				return false
			}
		}
		return true
	})
}

// checkTotalOrder verifies pairwise order consistency: the delivery
// sequences of any two stacks must not order the same two messages
// differently (uniform total order, §5.1).
func checkTotalOrder(t *testing.T, sinks []*sink, skip map[int]bool) {
	t.Helper()
	var ref []delivery
	refIdx := -1
	for i, s := range sinks {
		if skip[i] {
			continue
		}
		seq := s.snapshot()
		if ref == nil {
			ref, refIdx = seq, i
			continue
		}
		pos := make(map[delivery]int, len(ref))
		for k, d := range ref {
			pos[d] = k
		}
		last := -1
		for k, d := range seq {
			p, ok := pos[d]
			if !ok {
				continue // ref may not have it yet; order among common prefix matters
			}
			if p < last {
				t.Fatalf("total order violated between stacks %d and %d at position %d: %v", refIdx, i, k, d)
			}
			last = p
		}
	}
}

func checkNoDuplicates(t *testing.T, sinks []*sink, skip map[int]bool) {
	t.Helper()
	for i, s := range sinks {
		if skip[i] {
			continue
		}
		seen := make(map[delivery]bool)
		for _, d := range s.snapshot() {
			if seen[d] {
				t.Fatalf("stack %d delivered %v twice (uniform integrity violated)", i, d)
			}
			seen[d] = true
		}
	}
}

func TestDeliveryToAllIncludingSender(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl, func(t *testing.T) {
			c, sinks := build(t, 3, simnet.Config{}, impl)
			c.Stacks[1].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte("hello")})
			waitAll(t, c, sinks, 1, nil)
			for i, s := range sinks {
				d := s.snapshot()[0]
				if d.origin != 1 || d.data != "hello" {
					t.Errorf("stack %d delivered %+v", i, d)
				}
			}
		})
	}
}

func TestTotalOrderWithConcurrentSenders(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl, func(t *testing.T) {
			c, sinks := build(t, 3,
				simnet.Config{Seed: 21, BaseLatency: 500 * time.Microsecond, Jitter: time.Millisecond}, impl)
			const per = 15
			for k := 0; k < per; k++ {
				for i := 0; i < 3; i++ {
					c.Stacks[i].Call(abcast.ServiceImpl,
						abcast.Broadcast{Data: []byte(fmt.Sprintf("s%d-m%d", i, k))})
				}
			}
			waitAll(t, c, sinks, per*3, nil)
			checkTotalOrder(t, sinks, nil)
			checkNoDuplicates(t, sinks, nil)
			// With everything delivered, the sequences must be equal.
			ref := sinks[0].snapshot()
			for i := 1; i < 3; i++ {
				got := sinks[i].snapshot()
				if len(got) != len(ref) {
					t.Fatalf("stack %d delivered %d, stack 0 delivered %d", i, len(got), len(ref))
				}
				for k := range ref {
					if got[k] != ref[k] {
						t.Fatalf("stack %d position %d: %v != %v", i, k, got[k], ref[k])
					}
				}
			}
		})
	}
}

func TestTotalOrderUnderLoss(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl, func(t *testing.T) {
			c, sinks := build(t, 3,
				simnet.Config{Seed: 22, LossRate: 0.1, BaseLatency: time.Millisecond}, impl)
			const per = 10
			for k := 0; k < per; k++ {
				for i := 0; i < 3; i++ {
					c.Stacks[i].Call(abcast.ServiceImpl,
						abcast.Broadcast{Data: []byte(fmt.Sprintf("s%d-m%d", i, k))})
				}
			}
			waitAll(t, c, sinks, per*3, nil)
			checkTotalOrder(t, sinks, nil)
			checkNoDuplicates(t, sinks, nil)
		})
	}
}

func TestCTUniformAgreementWithMinorityCrash(t *testing.T) {
	c, sinks := build(t, 5, simnet.Config{Seed: 23, BaseLatency: time.Millisecond}, abcast.ProtocolCT)
	// Crash stacks 3 and 4 after a short warm-up of traffic.
	for k := 0; k < 5; k++ {
		c.Stacks[0].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte(fmt.Sprintf("pre-%d", k))})
	}
	waitAll(t, c, sinks, 5, nil)
	c.Net.SetDown(3, true)
	c.Stacks[3].Crash()
	c.Net.SetDown(4, true)
	c.Stacks[4].Crash()
	for k := 0; k < 5; k++ {
		c.Stacks[1].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte(fmt.Sprintf("post-%d", k))})
	}
	skip := map[int]bool{3: true, 4: true}
	waitAll(t, c, sinks, 10, skip)
	checkTotalOrder(t, sinks, skip)
	checkNoDuplicates(t, sinks, skip)
}

func TestCTSenderCrashAfterBroadcast(t *testing.T) {
	// Uniform agreement: a message the crashed sender managed to get out
	// must be delivered by all survivors or none — and since one
	// survivor delivers it here, all must.
	c, sinks := build(t, 3, simnet.Config{Seed: 24, BaseLatency: time.Millisecond}, abcast.ProtocolCT)
	c.Stacks[0].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte("last-words")})
	c.Eventually(timeout, "sender self-processing", func() bool { return sinks[0].count() >= 0 })
	time.Sleep(10 * time.Millisecond) // let dissemination start
	c.Net.SetDown(0, true)
	c.Stacks[0].Crash()
	skip := map[int]bool{0: true}
	waitAll(t, c, sinks, 1, skip)
	for i := 1; i < 3; i++ {
		if d := sinks[i].snapshot()[0]; d.data != "last-words" {
			t.Errorf("stack %d delivered %+v", i, d)
		}
	}
}

func TestSeqNonSequencerSender(t *testing.T) {
	c, sinks := build(t, 3, simnet.Config{}, abcast.ProtocolSeq)
	// Stack 2 (not the sequencer, which is stack 0) broadcasts.
	c.Stacks[2].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte("via-sequencer")})
	waitAll(t, c, sinks, 1, nil)
	for i, s := range sinks {
		if d := s.snapshot()[0]; d.origin != 2 {
			t.Errorf("stack %d: origin %d", i, d.origin)
		}
	}
}

func TestTokenIdleCirculationDoesNotDeliver(t *testing.T) {
	c, sinks := build(t, 3, simnet.Config{}, abcast.ProtocolToken)
	// Let the token do a few idle laps.
	time.Sleep(50 * time.Millisecond)
	for i, s := range sinks {
		if s.count() != 0 {
			t.Errorf("stack %d delivered %d messages with no broadcasts", i, s.count())
		}
	}
	c.Stacks[1].Call(abcast.ServiceImpl, abcast.Broadcast{Data: []byte("with-token")})
	waitAll(t, c, sinks, 1, nil)
}

func TestTokenFairnessAllSendersProgress(t *testing.T) {
	c, sinks := build(t, 4, simnet.Config{Seed: 25}, abcast.ProtocolToken)
	const per = 5
	for k := 0; k < per; k++ {
		for i := 0; i < 4; i++ {
			c.Stacks[i].Call(abcast.ServiceImpl,
				abcast.Broadcast{Data: []byte(fmt.Sprintf("s%d-m%d", i, k))})
		}
	}
	waitAll(t, c, sinks, per*4, nil)
	checkTotalOrder(t, sinks, nil)
	// Every origin must appear per times at each stack.
	for i, s := range sinks {
		byOrigin := map[kernel.Addr]int{}
		for _, d := range s.snapshot() {
			byOrigin[d.origin]++
		}
		for o := kernel.Addr(0); o < 4; o++ {
			if byOrigin[o] != per {
				t.Errorf("stack %d: origin %d delivered %d times, want %d", i, o, byOrigin[o], per)
			}
		}
	}
}

func TestLargePayloadsSurvive(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl, func(t *testing.T) {
			c, sinks := build(t, 3, simnet.Config{}, impl)
			big := make([]byte, 64*1024)
			for i := range big {
				big[i] = byte(i * 31)
			}
			c.Stacks[0].Call(abcast.ServiceImpl, abcast.Broadcast{Data: big})
			waitAll(t, c, sinks, 1, nil)
			for i, s := range sinks {
				if got := s.snapshot()[0].data; got != string(big) {
					t.Errorf("stack %d corrupted a large payload (len %d)", i, len(got))
				}
			}
		})
	}
}

func TestRegistryContents(t *testing.T) {
	reg := abcast.StandardRegistry()
	names := reg.Names()
	want := []string{abcast.ProtocolCT, abcast.ProtocolSeq, abcast.ProtocolToken}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for _, w := range want {
		if _, ok := reg.Lookup(w); !ok {
			t.Errorf("missing %q", w)
		}
	}
	if _, ok := reg.Lookup("abcast/nope"); ok {
		t.Error("Lookup(unknown) succeeded")
	}
	if err := reg.Register(abcast.Impl{}); err == nil {
		t.Error("invalid descriptor accepted")
	}
	if err := reg.Register(abcast.CTImpl()); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestTwoEpochsAreIsolated(t *testing.T) {
	// Two CT instances at different epochs on the same stacks must not
	// see each other's messages — the property the DPU layer depends on.
	c := stacktest.New(t, 3, simnet.Config{}, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	im := abcast.CTImpl()
	const svcA, svcB = kernel.ServiceID("epochA"), kernel.ServiceID("epochB")
	sinksA := make([]*sink, 3)
	sinksB := make([]*sink, 3)
	for i := 0; i < 3; i++ {
		i := i
		c.OnSync(i, func() {
			st := c.Stacks[i]
			for _, svc := range im.Requires {
				st.EnsureService(svc)
			}
			a := im.New(st, 1)
			b := im.New(st, 2)
			st.AddModule(a)
			st.AddModule(b)
			st.Bind(svcA, a)
			st.Bind(svcB, b)
			sinksA[i] = newSink(st)
			sinksB[i] = newSink(st)
			st.AddModule(sinksA[i])
			st.AddModule(sinksB[i])
			st.Subscribe(abcast.ServiceImpl, sinksA[i]) // both indicate on ServiceImpl
			a.Start()
			b.Start()
		})
	}
	c.Stacks[0].Call(svcA, abcast.Broadcast{Data: []byte("epoch-1-only")})
	c.Eventually(timeout, "epoch 1 delivery", func() bool {
		for _, s := range sinksA {
			if s.count() != 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(20 * time.Millisecond)
	for i, s := range sinksA {
		if s.count() != 1 {
			t.Errorf("stack %d: %d deliveries, want 1 (epoch leakage)", i, s.count())
		}
	}
}
