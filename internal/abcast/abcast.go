// Package abcast provides three implementations of the atomic broadcast
// service specified in Section 5.1 of the paper (ABcast/Adeliver with
// validity, uniform agreement, uniform integrity and uniform total
// order):
//
//   - abcast/ct: the Chandra–Toueg reduction to consensus, as in the
//     paper's measured stack (Figure 4). Uniform, tolerates f < n/2
//     crashes.
//   - abcast/seq: fixed sequencer. Total order with a central ordering
//     point; guarantees hold in crash-free runs (the sequencer is a
//     single point of failure), documented as such.
//   - abcast/token: moving sequencer (privilege-based). The token
//     circulates; the holder orders its pending messages. Crash-free
//     guarantee, documented as such.
//
// All implementations provide the same inner service ServiceImpl and are
// constructed with a replacement epoch (Algorithm 1's seqNumber): every
// network channel and consensus group is scoped by the epoch, so the old
// and the new protocol instance never observe each other's traffic while
// both are alive during a dynamic update.
package abcast

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/kernel"
)

// ServiceImpl is the inner atomic-broadcast service the replacement
// layer binds implementations to. Applications normally use the public
// "abcast" service provided by the replacement module; binding an
// implementation directly to a service of choice is how the "without
// replacement layer" baseline is assembled.
const ServiceImpl kernel.ServiceID = "abcast/impl"

// Protocol names of the bundled implementations.
const (
	ProtocolCT    = "abcast/ct"
	ProtocolSeq   = "abcast/seq"
	ProtocolToken = "abcast/token"
)

// Broadcast requests an atomic broadcast of Data to the whole group.
type Broadcast struct {
	Data []byte
}

// Deliver is indicated on the implementation's service for every
// message, in the same total order on every stack.
type Deliver struct {
	Origin kernel.Addr
	Data   []byte
}

// msgID identifies an atomic-broadcast message by its origin and the
// origin-local sequence number.
type msgID struct {
	origin kernel.Addr
	seq    uint64
}

func (id msgID) less(o msgID) bool {
	if id.origin != o.origin {
		return id.origin < o.origin
	}
	return id.seq < o.seq
}

// Impl describes an atomic-broadcast implementation: its substrate
// service requirements and an epoch-scoped constructor. This is the
// protocol-level registry entry the DPU layer instantiates during a
// replacement (the paper's create_module uses Requires for recursion).
type Impl struct {
	// Name is the protocol name, e.g. "abcast/ct".
	Name string
	// Requires lists substrate services that must be bound before the
	// module starts.
	Requires []kernel.ServiceID
	// New constructs the module for the given stack and epoch. The
	// module is not yet added, bound or started.
	New func(st *kernel.Stack, epoch uint64) kernel.Module
}

// Registry maps implementation names to Impl descriptors.
type Registry struct {
	mu    sync.RWMutex
	impls map[string]Impl
}

// NewRegistry returns an empty implementation registry.
func NewRegistry() *Registry {
	return &Registry{impls: make(map[string]Impl)}
}

// Register adds an implementation; duplicate names are an error.
func (r *Registry) Register(im Impl) error {
	if im.Name == "" || im.New == nil {
		return fmt.Errorf("abcast: invalid implementation descriptor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.impls[im.Name]; dup {
		return fmt.Errorf("abcast: implementation %q already registered", im.Name)
	}
	r.impls[im.Name] = im
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(im Impl) {
	if err := r.Register(im); err != nil {
		panic(err)
	}
}

// Lookup resolves an implementation by name.
func (r *Registry) Lookup(name string) (Impl, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	im, ok := r.impls[name]
	return im, ok
}

// Names returns the sorted registered implementation names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.impls))
	for n := range r.impls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StandardRegistry returns a registry with the three bundled
// implementations under their default configurations.
func StandardRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(CTImpl())
	r.MustRegister(SequencerImpl())
	r.MustRegister(TokenImpl(TokenConfig{}))
	return r
}

// sortIDs returns the ids in deterministic (origin, seq) order.
func sortIDs(ids []msgID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].less(ids[j]) })
}
