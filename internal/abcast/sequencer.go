package abcast

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// seqModule is a fixed-sequencer atomic broadcast (the classic "UB"
// unicast-broadcast variant): senders forward messages to the sequencer
// — the lowest stack address of the group — which assigns a global
// sequence number and broadcasts the ordered message to everybody;
// stacks deliver in global sequence order.
//
// The ordering guarantee holds in crash-free runs: the sequencer is a
// single point of failure and no takeover protocol is included. The
// paper's replacement algorithm is exactly the remedy when more
// resilience becomes necessary: switch to abcast/ct on the fly.
type seqModule struct {
	kernel.Base
	epoch     uint64
	channel   string
	sequencer kernel.Addr

	sendSeq    uint64
	nextGlobal uint64 // sequencer only: next global number to assign
	nextDel    uint64 // receiver: next global number to deliver
	hold       map[uint64]Deliver
}

const (
	seqMsgData byte = 0
	seqMsgOrd  byte = 1
)

// SequencerImpl returns the implementation descriptor for abcast/seq.
func SequencerImpl() Impl {
	return Impl{
		Name:     ProtocolSeq,
		Requires: []kernel.ServiceID{rp2p.Service},
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			seq := st.Peers()[0]
			for _, p := range st.Peers() {
				if p < seq {
					seq = p
				}
			}
			return &seqModule{
				Base:      kernel.NewBase(st, ProtocolSeq),
				epoch:     epoch,
				channel:   fmt.Sprintf("sq/%d", epoch),
				sequencer: seq,
				hold:      make(map[uint64]Deliver),
			}
		},
	}
}

// Start attaches to the epoch-scoped RP2P channel; messages that
// arrived before this module existed were buffered by RP2P and flush
// now, in order.
func (m *seqModule) Start() {
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: m.channel, Handler: m.onRecv})
}

// Stop detaches from RP2P.
func (m *seqModule) Stop() {
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: m.channel})
}

// HandleRequest processes Broadcast: send the payload to the sequencer.
func (m *seqModule) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	b, ok := req.(Broadcast)
	if !ok {
		return
	}
	m.sendSeq++
	w := wire.NewWriter(len(b.Data) + 20)
	w.Byte(seqMsgData).Uvarint(uint64(m.Stk.Addr())).Uvarint(m.sendSeq).Raw(b.Data)
	m.Stk.Call(rp2p.Service, rp2p.Send{To: m.sequencer, Channel: m.channel, Data: w.Bytes()})
}

func (m *seqModule) onRecv(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	switch r.Byte() {
	case seqMsgData:
		if m.Stk.Addr() != m.sequencer {
			return // not addressed to me; stale routing
		}
		origin := kernel.Addr(r.Uvarint())
		oseq := r.Uvarint()
		data := r.Rest()
		if r.Err() != nil {
			return
		}
		g := m.nextGlobal
		m.nextGlobal++
		w := wire.NewWriter(len(data) + 28)
		w.Byte(seqMsgOrd).Uvarint(g).Uvarint(uint64(origin)).Uvarint(oseq).Raw(data)
		ord := w.Bytes()
		for _, p := range m.Stk.Peers() {
			m.Stk.Call(rp2p.Service, rp2p.Send{To: p, Channel: m.channel, Data: ord})
		}
	case seqMsgOrd:
		g := r.Uvarint()
		origin := kernel.Addr(r.Uvarint())
		_ = r.Uvarint() // origin-local seq: carried for tracing
		data := r.Rest()
		if r.Err() != nil {
			return
		}
		if g < m.nextDel {
			return // duplicate
		}
		m.hold[g] = Deliver{Origin: origin, Data: data}
		for {
			d, ok := m.hold[m.nextDel]
			if !ok {
				break
			}
			delete(m.hold, m.nextDel)
			m.nextDel++
			m.Stk.Indicate(ServiceImpl, d)
		}
	}
}
