package abcast

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// tokenModule is a moving-sequencer (privilege-based) atomic broadcast:
// a token carrying the next global sequence number circulates around the
// ring of stacks; the holder stamps its pending messages with
// consecutive numbers, broadcasts them, and passes the token on. All
// stacks deliver in stamp order.
//
// Like abcast/seq this variant's guarantees are for crash-free runs:
// token regeneration after a holder crash is not implemented. It trades
// higher latency at low load (waiting for the token) for sender fairness
// and no fixed bottleneck — giving the protocol-switch benchmarks a
// third, behaviourally distinct implementation.
type tokenModule struct {
	kernel.Base
	epoch   uint64
	channel string
	cfg     TokenConfig
	ring    []kernel.Addr

	sendSeq  uint64
	pending  []Deliver // local messages waiting for the token
	hasToken bool
	tokenSeq uint64 // next global number the token will assign
	idleWait *kernel.Timer

	nextDel uint64
	hold    map[uint64]Deliver
}

// TokenConfig tunes the token protocol.
type TokenConfig struct {
	// HoldIdle is how long an idle holder keeps the token before
	// passing it on; bounds token-circulation traffic at zero load.
	HoldIdle time.Duration
}

func (c TokenConfig) withDefaults() TokenConfig {
	if c.HoldIdle <= 0 {
		c.HoldIdle = 2 * time.Millisecond
	}
	return c
}

const (
	tokMsgOrd   byte = 0
	tokMsgToken byte = 1
)

// TokenImpl returns the implementation descriptor for abcast/token.
func TokenImpl(cfg TokenConfig) Impl {
	cfg = cfg.withDefaults()
	return Impl{
		Name:     ProtocolToken,
		Requires: []kernel.ServiceID{rp2p.Service},
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			ring := append([]kernel.Addr(nil), st.Peers()...)
			sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
			return &tokenModule{
				Base:    kernel.NewBase(st, ProtocolToken),
				epoch:   epoch,
				channel: fmt.Sprintf("tk/%d", epoch),
				cfg:     cfg,
				ring:    ring,
				hold:    make(map[uint64]Deliver),
			}
		},
	}
}

// Start attaches to the epoch channel; the lowest address mints the
// initial token.
func (m *tokenModule) Start() {
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: m.channel, Handler: m.onRecv})
	if m.Stk.Addr() == m.ring[0] {
		m.acquireToken(0)
	}
}

// Stop detaches and drops the token if held (crash-free model).
func (m *tokenModule) Stop() {
	if m.idleWait != nil {
		m.idleWait.Stop()
	}
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: m.channel})
}

func (m *tokenModule) next() kernel.Addr {
	for i, a := range m.ring {
		if a == m.Stk.Addr() {
			return m.ring[(i+1)%len(m.ring)]
		}
	}
	return m.ring[0]
}

// HandleRequest queues Broadcast payloads until the token arrives.
func (m *tokenModule) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	b, ok := req.(Broadcast)
	if !ok {
		return
	}
	m.sendSeq++
	m.pending = append(m.pending, Deliver{Origin: m.Stk.Addr(), Data: b.Data})
	if m.hasToken {
		m.flushAndPass()
	}
}

func (m *tokenModule) acquireToken(seq uint64) {
	m.hasToken = true
	m.tokenSeq = seq
	if len(m.pending) > 0 {
		m.flushAndPass()
		return
	}
	// Idle: hold briefly so an imminent broadcast can use the token,
	// then pass it on.
	m.idleWait = m.Stk.After(m.cfg.HoldIdle, func() {
		m.idleWait = nil
		if m.hasToken {
			m.flushAndPass()
		}
	})
}

// flushAndPass stamps and broadcasts pending messages, then forwards
// the token.
func (m *tokenModule) flushAndPass() {
	if m.idleWait != nil {
		m.idleWait.Stop()
		m.idleWait = nil
	}
	for _, d := range m.pending {
		g := m.tokenSeq
		m.tokenSeq++
		w := wire.NewWriter(len(d.Data) + 24)
		w.Byte(tokMsgOrd).Uvarint(g).Uvarint(uint64(d.Origin)).Raw(d.Data)
		ord := w.Bytes()
		for _, p := range m.ring {
			m.Stk.Call(rp2p.Service, rp2p.Send{To: p, Channel: m.channel, Data: ord})
		}
	}
	m.pending = nil
	m.hasToken = false
	w := wire.NewWriter(12)
	w.Byte(tokMsgToken).Uvarint(m.tokenSeq)
	m.Stk.Call(rp2p.Service, rp2p.Send{To: m.next(), Channel: m.channel, Data: w.Bytes()})
}

func (m *tokenModule) onRecv(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	switch r.Byte() {
	case tokMsgToken:
		seq := r.Uvarint()
		if r.Err() != nil {
			return
		}
		m.acquireToken(seq)
	case tokMsgOrd:
		g := r.Uvarint()
		origin := kernel.Addr(r.Uvarint())
		data := r.Rest()
		if r.Err() != nil {
			return
		}
		if g < m.nextDel {
			return
		}
		m.hold[g] = Deliver{Origin: origin, Data: data}
		for {
			d, ok := m.hold[m.nextDel]
			if !ok {
				break
			}
			delete(m.hold, m.nextDel)
			m.nextDel++
			m.Stk.Indicate(ServiceImpl, d)
		}
	}
}
