// Package graceful is a baseline replacement manager modelled on
// Graceful Adaptation (Chen, Hiltunen, Schlichting), the second system
// the paper compares against (Section 4.2): each adaptable component
// holds Adaptation-Aware Components (AACs) providing alternative
// implementations, and a Component Adaptor (CA) coordinates switching in
// three barrier-synchronized phases:
//
//  1. PREPARE  — every stack instantiates the new AAC and acks;
//  2. DEACTIVATE — the old AAC stops accepting new calls (calls are
//     buffered, not blocked), drains for SettleDelay, and acks;
//  3. ACTIVATE — the new AAC becomes active, buffered calls flush.
//
// Compared to the paper's Repl approach this costs three coordination
// rounds with barriers (the paper argues barrier synchronization is
// exactly what should be avoided in an asynchronous network), and the
// buffered calls show up as a latency bump for messages issued during
// the window — while the application is, unlike with Maestro, never
// fully blocked.
//
// The module provides the same public service and request/indication
// types as core.Repl, so workloads run unchanged against either manager.
package graceful

import (
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// Protocol is the protocol name registered for this module.
const Protocol = "dpu/graceful"

const (
	ctrlChannel = "graceful"
	ackChannel  = "graceful-ack"
)

const (
	ctrlPrepare    byte = 0
	ctrlDeactivate byte = 1
	ctrlActivate   byte = 2
)

// Config configures the Graceful Adaptation baseline.
type Config struct {
	// InitialProtocol names the implementation activated at epoch 0.
	InitialProtocol string
	// Impls resolves implementation names.
	Impls *abcast.Registry
	// SettleDelay is the drain window between deactivation and the
	// deactivation ack.
	SettleDelay time.Duration
	// Grace is how long the deactivated AAC survives after activation
	// of the new one.
	Grace time.Duration
}

func (c Config) withDefaults() Config {
	if c.InitialProtocol == "" {
		c.InitialProtocol = abcast.ProtocolCT
	}
	if c.Impls == nil {
		c.Impls = abcast.StandardRegistry()
	}
	if c.SettleDelay <= 0 {
		c.SettleDelay = 60 * time.Millisecond
	}
	if c.Grace <= 0 {
		c.Grace = 300 * time.Millisecond
	}
	return c
}

type phase int

const (
	phaseIdle phase = iota
	phasePrepared
	phaseDeactivated
)

// Module is the CA (component adaptor) with its AACs.
type Module struct {
	kernel.Base
	cfg Config

	epoch   uint64
	active  kernel.Module // the activated AAC
	curName string

	ph       phase
	nextAAC  kernel.Module // instantiated at PREPARE, activated at ACTIVATE
	nextName string
	buffered [][]byte

	switchSeq uint64
	acks      map[kernel.Addr]bool
	initiator bool
}

// Factory returns the kernel factory for the Graceful baseline.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{core.Service},
		Requires: []kernel.ServiceID{rbcast.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base: kernel.NewBase(st, Protocol),
				cfg:  cfg,
				acks: make(map[kernel.Addr]bool),
			}
		},
	}
}

// Start activates the initial AAC and wires control channels.
func (m *Module) Start() {
	m.Stk.Subscribe(abcast.ServiceImpl, m)
	m.Stk.Call(rbcast.Service, rbcast.Listen{Channel: ctrlChannel, Handler: m.onCtrl})
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: ackChannel, Handler: m.onAck})
	mod, err := m.instantiate(m.cfg.InitialProtocol, m.epoch)
	if err != nil {
		m.Stk.Logf("graceful: install: %v", err)
		return
	}
	m.activate(mod, m.cfg.InitialProtocol)
}

// Stop detaches.
func (m *Module) Stop() {
	m.Stk.Unsubscribe(abcast.ServiceImpl, m)
	m.Stk.Call(rbcast.Service, rbcast.Unlisten{Channel: ctrlChannel})
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: ackChannel})
	for _, mod := range []kernel.Module{m.active, m.nextAAC} {
		if mod != nil {
			m.Stk.RemoveModule(mod.ID())
		}
	}
	m.active, m.nextAAC = nil, nil
}

func (m *Module) instantiate(name string, epoch uint64) (kernel.Module, error) {
	im, ok := m.cfg.Impls.Lookup(name)
	if !ok {
		return nil, errUnknown(name)
	}
	for _, svc := range im.Requires {
		if err := m.Stk.EnsureService(svc); err != nil {
			return nil, err
		}
	}
	mod := im.New(m.Stk, epoch)
	if err := m.Stk.AddModule(mod); err != nil {
		return nil, err
	}
	mod.Start()
	return mod, nil
}

func (m *Module) activate(mod kernel.Module, name string) {
	if err := m.Stk.Bind(abcast.ServiceImpl, mod); err != nil {
		m.Stk.Logf("graceful: bind: %v", err)
		return
	}
	m.active = mod
	m.curName = name
}

type unknownErr string

func (e unknownErr) Error() string { return "graceful: unknown implementation " + string(e) }

func errUnknown(name string) error { return unknownErr(name) }

// HandleRequest processes the shared core request types.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case core.Broadcast:
		if m.ph == phaseDeactivated {
			// Old AAC no longer accepts calls; buffer for the new one.
			m.buffered = append(m.buffered, append([]byte(nil), r.Data...))
			return
		}
		m.Stk.Call(abcast.ServiceImpl, abcast.Broadcast{Data: r.Data})
	case core.ChangeProtocol:
		m.initiate(r.Protocol)
	case core.StatusReq:
		if r.Reply != nil {
			r.Reply(core.Status{Sn: m.epoch, Protocol: m.curName, Undelivered: len(m.buffered)})
		}
	}
}

func (m *Module) initiate(name string) {
	m.switchSeq++
	m.acks = make(map[kernel.Addr]bool)
	m.initiator = true
	m.broadcastCtrl(ctrlPrepare, m.switchSeq, name)
}

func (m *Module) broadcastCtrl(op byte, seq uint64, name string) {
	w := wire.NewWriter(len(name) + 16)
	w.Byte(op).Uvarint(seq).Uvarint(uint64(m.Stk.Addr())).String(name)
	m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: ctrlChannel, Data: w.Bytes()})
}

func (m *Module) sendAck(to kernel.Addr, seq uint64) {
	w := wire.NewWriter(12)
	w.Uvarint(seq)
	m.Stk.Call(rp2p.Service, rp2p.Send{To: to, Channel: ackChannel, Data: w.Bytes()})
}

func (m *Module) onCtrl(d rbcast.Deliver) {
	r := wire.NewReader(d.Data)
	op := r.Byte()
	seq := r.Uvarint()
	from := kernel.Addr(r.Uvarint())
	name := r.String()
	if r.Err() != nil {
		return
	}
	switch op {
	case ctrlPrepare:
		mod, err := m.instantiate(name, m.epoch+1)
		if err != nil {
			m.Stk.Logf("graceful: prepare: %v", err)
			return
		}
		m.nextAAC = mod
		m.nextName = name
		m.ph = phasePrepared
		m.sendAck(from, seq)
	case ctrlDeactivate:
		if m.ph != phasePrepared {
			return
		}
		m.ph = phaseDeactivated
		// Old AAC drains while calls buffer; ack after the settle window.
		m.Stk.After(m.cfg.SettleDelay, func() { m.sendAck(from, seq) })
	case ctrlActivate:
		if m.ph != phaseDeactivated || m.nextAAC == nil {
			return
		}
		old := m.active
		m.Stk.Unbind(abcast.ServiceImpl)
		m.epoch++
		m.activate(m.nextAAC, m.nextName)
		m.nextAAC = nil
		m.ph = phaseIdle
		buffered := m.buffered
		m.buffered = nil
		for _, data := range buffered {
			m.Stk.Call(abcast.ServiceImpl, abcast.Broadcast{Data: data})
		}
		if old != nil {
			oldID := old.ID()
			m.Stk.After(m.cfg.Grace, func() { m.Stk.RemoveModule(oldID) })
		}
		m.Stk.Indicate(core.Service, core.Switched{
			Sn: m.epoch, Protocol: m.curName, At: m.Stk.Now(), Reissued: len(buffered),
		})
	}
}

// onAck advances the initiator's barrier.
func (m *Module) onAck(rv rp2p.Recv) {
	if !m.initiator {
		return
	}
	r := wire.NewReader(rv.Data)
	seq := r.Uvarint()
	if r.Err() != nil || seq != m.switchSeq {
		return
	}
	m.acks[rv.From] = true
	if len(m.acks) != m.Stk.N() {
		return
	}
	m.acks = make(map[kernel.Addr]bool)
	switch m.ph {
	case phasePrepared:
		m.broadcastCtrl(ctrlDeactivate, seq, m.nextName)
	case phaseDeactivated:
		m.broadcastCtrl(ctrlActivate, seq, m.nextName)
		m.initiator = false
	}
}

// HandleIndication re-indicates inner deliveries on the public service.
func (m *Module) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc != abcast.ServiceImpl {
		return
	}
	if d, ok := ind.(abcast.Deliver); ok {
		m.Stk.Indicate(core.Service, core.Deliver{Origin: d.Origin, Data: d.Data})
	}
}
