package graceful_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/graceful"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 20 * time.Second

type sink struct {
	kernel.Base
	mu       sync.Mutex
	delivers []string
	switches []core.Switched
}

func (s *sink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch v := ind.(type) {
	case core.Deliver:
		s.delivers = append(s.delivers, fmt.Sprintf("%d:%s", v.Origin, v.Data))
	case core.Switched:
		s.switches = append(s.switches, v)
	}
}

func (s *sink) deliverCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivers)
}

func (s *sink) switchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.switches)
}

func build(t *testing.T, n int, settle time.Duration) (*stacktest.Cluster, []*sink) {
	t.Helper()
	c := stacktest.New(t, n, simnet.Config{}, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	c.Reg.MustRegister(graceful.Factory(graceful.Config{
		InitialProtocol: abcast.ProtocolCT, SettleDelay: settle, Grace: 100 * time.Millisecond,
	}))
	c.CreateAll(graceful.Protocol)
	sinks := make([]*sink, n)
	for i := range sinks {
		i := i
		c.OnSync(i, func() {
			sinks[i] = &sink{Base: kernel.NewBase(c.Stacks[i], "sink")}
			c.Stacks[i].AddModule(sinks[i])
			c.Stacks[i].Subscribe(core.Service, sinks[i])
		})
	}
	return c, sinks
}

func TestBroadcastWithoutSwitch(t *testing.T) {
	c, sinks := build(t, 3, 30*time.Millisecond)
	for k := 0; k < 8; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
	}
	c.Eventually(timeout, "deliveries", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 8 {
				return false
			}
		}
		return true
	})
}

func TestThreePhaseSwitchCompletes(t *testing.T) {
	c, sinks := build(t, 3, 30*time.Millisecond)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Eventually(timeout, "switch everywhere", func() bool {
		for _, s := range sinks {
			if s.switchCount() != 1 {
				return false
			}
		}
		return true
	})
	got := make(chan core.Status, 1)
	c.Stacks[2].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
	if s := <-got; s.Protocol != abcast.ProtocolSeq || s.Sn != 1 {
		t.Errorf("status = %+v", s)
	}
	// Traffic flows on the new AAC.
	c.Stacks[1].Call(core.Service, core.Broadcast{Data: []byte("post")})
	c.Eventually(timeout, "post delivery", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 1 {
				return false
			}
		}
		return true
	})
}

func TestCallsBufferedNotLostDuringWindow(t *testing.T) {
	// Unlike Maestro, graceful adaptation accepts calls during the
	// window (they are buffered at the CA); all must be delivered after
	// activation.
	c, sinks := build(t, 3, 60*time.Millisecond)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolCT})
	// Issue a burst while the three phases run.
	for k := 0; k < 10; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("w%d", k))})
		time.Sleep(5 * time.Millisecond)
	}
	c.Eventually(timeout, "all window messages delivered", func() bool {
		for _, s := range sinks {
			if s.deliverCount() < 10 {
				return false
			}
		}
		return true
	})
	// Exactly once.
	time.Sleep(100 * time.Millisecond)
	for i, s := range sinks {
		if got := s.deliverCount(); got != 10 {
			t.Errorf("stack %d delivered %d, want 10", i, got)
		}
	}
}

func TestBackToBackSwitches(t *testing.T) {
	c, sinks := build(t, 3, 20*time.Millisecond)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Eventually(timeout, "first switch", func() bool {
		for _, s := range sinks {
			if s.switchCount() < 1 {
				return false
			}
		}
		return true
	})
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolToken})
	c.Eventually(timeout, "second switch", func() bool {
		for _, s := range sinks {
			if s.switchCount() < 2 {
				return false
			}
		}
		return true
	})
	got := make(chan core.Status, 1)
	c.Stacks[0].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
	if s := <-got; s.Protocol != abcast.ProtocolToken || s.Sn != 2 {
		t.Errorf("status = %+v", s)
	}
}
