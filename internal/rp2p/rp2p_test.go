package rp2p_test

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kernel"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 10 * time.Second

// recvLog collects deliveries thread-safely (handlers run on executors).
type recvLog struct {
	mu  sync.Mutex
	got []rp2p.Recv
}

func (l *recvLog) add(rv rp2p.Recv) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.got = append(l.got, rv)
}

func (l *recvLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.got)
}

func (l *recvLog) snapshot() []rp2p.Recv {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]rp2p.Recv(nil), l.got...)
}

func build(t *testing.T, n int, netCfg simnet.Config, cfg rp2p.Config) *stacktest.Cluster {
	c := stacktest.New(t, n, netCfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(cfg))
	c.CreateAll(rp2p.Protocol)
	return c
}

func listen(c *stacktest.Cluster, i int, channel string, log *recvLog) {
	c.Stacks[i].Call(rp2p.Service, rp2p.Listen{Channel: channel, Handler: log.add})
}

func TestReliableDeliveryPerfectNet(t *testing.T) {
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	for i := 0; i < 20; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "20 messages", func() bool { return log.count() == 20 })
	for i, rv := range log.snapshot() {
		if rv.Data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, rv.Data[0])
		}
		if rv.From != 0 {
			t.Fatalf("message %d from %d", i, rv.From)
		}
	}
}

func TestReliableFIFOUnderHeavyLoss(t *testing.T) {
	c := build(t, 2,
		simnet.Config{Seed: 11, LossRate: 0.3, BaseLatency: time.Millisecond, Jitter: time.Millisecond},
		rp2p.Config{RTO: 5 * time.Millisecond, Window: 16})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	const total = 200
	for i := 0; i < total; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i / 256), byte(i % 256)}})
	}
	c.Eventually(timeout, "all messages despite loss", func() bool { return log.count() == total })
	for i, rv := range log.snapshot() {
		got := int(rv.Data[0])*256 + int(rv.Data[1])
		if got != i {
			t.Fatalf("position %d: got message %d (FIFO violated under loss)", i, got)
		}
	}
}

func TestExactlyOnceUnderDuplication(t *testing.T) {
	c := build(t, 2,
		simnet.Config{Seed: 5, DupRate: 0.5, BaseLatency: time.Millisecond},
		rp2p.Config{RTO: 5 * time.Millisecond})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	const total = 100
	for i := 0; i < total; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "all messages", func() bool { return log.count() >= total })
	time.Sleep(50 * time.Millisecond) // give duplicates a chance to arrive
	if got := log.count(); got != total {
		t.Errorf("delivered %d, want exactly %d (duplicates leaked)", got, total)
	}
}

func TestSelfSendDeliversLocally(t *testing.T) {
	c := build(t, 1, simnet.Config{BaseLatency: time.Hour}, rp2p.Config{})
	log := &recvLog{}
	listen(c, 0, "me", log)
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 0, Channel: "me", Data: []byte("self")})
	c.Eventually(timeout, "self delivery", func() bool { return log.count() == 1 })
	if rv := log.snapshot()[0]; rv.From != 0 || string(rv.Data) != "self" {
		t.Errorf("got %+v", rv)
	}
}

func TestUnclaimedChannelBuffersUntilListen(t *testing.T) {
	// The paper's "invocation completed when the module is added":
	// messages for a channel nobody listens to yet must wait, then flush
	// in order on Listen.
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	for i := 0; i < 5; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "future", Data: []byte{byte(i)}})
	}
	// Wait for the messages to arrive and buffer on stack 1.
	c.Eventually(timeout, "buffered messages", func() bool {
		var buffered uint64
		done := make(chan struct{})
		c.Stacks[1].Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) {
			buffered = s.Buffered
			close(done)
		}})
		<-done
		return buffered == 5
	})
	log := &recvLog{}
	listen(c, 1, "future", log)
	c.Eventually(timeout, "flush on listen", func() bool { return log.count() == 5 })
	for i, rv := range log.snapshot() {
		if rv.Data[0] != byte(i) {
			t.Fatalf("flushed out of order at %d: %d", i, rv.Data[0])
		}
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	logA, logB := &recvLog{}, &recvLog{}
	listen(c, 1, "a", logA)
	listen(c, 1, "b", logB)
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "a", Data: []byte("to-a")})
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "b", Data: []byte("to-b")})
	c.Eventually(timeout, "both channels", func() bool { return logA.count() == 1 && logB.count() == 1 })
	if string(logA.snapshot()[0].Data) != "to-a" || string(logB.snapshot()[0].Data) != "to-b" {
		t.Error("channel demux mixed up payloads")
	}
}

func TestUnlistenBuffersAgain(t *testing.T) {
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte("1")})
	c.Eventually(timeout, "first", func() bool { return log.count() == 1 })
	c.Stacks[1].Call(rp2p.Service, rp2p.Unlisten{Channel: "ch"})
	c.OnSync(1, func() {})
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte("2")})
	time.Sleep(20 * time.Millisecond)
	if log.count() != 1 {
		t.Fatalf("message delivered after Unlisten")
	}
	listen(c, 1, "ch", log)
	c.Eventually(timeout, "second after re-listen", func() bool { return log.count() == 2 })
}

func TestWindowBacklogDrains(t *testing.T) {
	// With a tiny window, a burst larger than the window must still be
	// delivered completely and in order.
	c := build(t, 2,
		simnet.Config{Seed: 2, BaseLatency: time.Millisecond, LossRate: 0.1},
		rp2p.Config{Window: 4, RTO: 5 * time.Millisecond})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	const total = 100
	for i := 0; i < total; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "backlog drained", func() bool { return log.count() == total })
	for i, rv := range log.snapshot() {
		if rv.Data[0] != byte(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestBidirectionalTrafficIsIndependent(t *testing.T) {
	c := build(t, 2, simnet.Config{Seed: 9, LossRate: 0.2}, rp2p.Config{RTO: 5 * time.Millisecond})
	log0, log1 := &recvLog{}, &recvLog{}
	listen(c, 0, "ch", log0)
	listen(c, 1, "ch", log1)
	for i := 0; i < 50; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i)}})
		c.Stacks[1].Call(rp2p.Service, rp2p.Send{To: 0, Channel: "ch", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "both directions", func() bool {
		return log0.count() == 50 && log1.count() == 50
	})
}

func TestManyPeersAllToAll(t *testing.T) {
	const n = 5
	c := build(t, n, simnet.Config{Seed: 4, LossRate: 0.1, BaseLatency: time.Millisecond},
		rp2p.Config{RTO: 5 * time.Millisecond})
	logs := make([]*recvLog, n)
	for i := 0; i < n; i++ {
		logs[i] = &recvLog{}
		listen(c, i, "all", logs[i])
	}
	const per = 20
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			for j := 0; j < n; j++ {
				if j != i {
					c.Stacks[i].Call(rp2p.Service, rp2p.Send{To: c.Stacks[j].Addr(), Channel: "all", Data: []byte{byte(i), byte(k)}})
				}
			}
		}
	}
	want := per * (n - 1)
	c.Eventually(timeout, "all-to-all", func() bool {
		for i := 0; i < n; i++ {
			if logs[i].count() != want {
				return false
			}
		}
		return true
	})
	// Per-sender FIFO must hold at every receiver.
	for i := 0; i < n; i++ {
		lastK := map[byte]int{}
		for _, rv := range logs[i].snapshot() {
			sender, k := rv.Data[0], int(rv.Data[1])
			if last, ok := lastK[sender]; ok && k != last+1 {
				t.Fatalf("receiver %d: sender %d jumped %d -> %d", i, sender, last, k)
			}
			lastK[sender] = k
		}
	}
}

func TestRetransmissionsHappenUnderLoss(t *testing.T) {
	c := build(t, 2, simnet.Config{Seed: 8, LossRate: 0.5}, rp2p.Config{RTO: 5 * time.Millisecond})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	for i := 0; i < 30; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "delivery", func() bool { return log.count() == 30 })
	var stats rp2p.Stats
	done := make(chan struct{})
	c.Stacks[0].Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) {
		stats = s
		close(done)
	}})
	<-done
	if stats.Retransmits == 0 {
		t.Error("no retransmissions recorded under 50% loss")
	}
}

// TestQuickExactlyOnceFIFO is the package's property-based test: for
// random message counts, loss rates and window sizes, every message is
// delivered exactly once and in order.
func TestQuickExactlyOnceFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64, nMsg uint8, loss uint8, window uint8) bool {
		total := int(nMsg)%40 + 1
		lossRate := float64(loss%45) / 100.0
		win := int(window)%8 + 1
		c := build(t, 2,
			simnet.Config{Seed: seed, LossRate: lossRate, BaseLatency: 200 * time.Microsecond},
			rp2p.Config{Window: win, RTO: 2 * time.Millisecond, MaxRTO: 20 * time.Millisecond})
		defer c.Close()
		log := &recvLog{}
		listen(c, 1, "q", log)
		for i := 0; i < total; i++ {
			c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "q", Data: []byte{byte(i)}})
		}
		deadline := time.Now().Add(5 * time.Second)
		for log.count() < total && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if log.count() != total {
			t.Logf("seed=%d total=%d loss=%.2f win=%d: delivered %d", seed, total, lossRate, win, log.count())
			return false
		}
		for i, rv := range log.snapshot() {
			if rv.Data[0] != byte(i) {
				t.Logf("seed=%d: order violated at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	log := &recvLog{}
	listen(c, 1, "ch", log)
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "ch", Data: []byte("x")})
	c.Eventually(timeout, "delivery", func() bool { return log.count() == 1 })
	for i, st := range c.Stacks {
		done := make(chan rp2p.Stats, 1)
		st.Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) { done <- s }})
		s := <-done
		if i == 0 && s.Sent != 1 {
			t.Errorf("sender stats: %+v", s)
		}
		if i == 1 && s.Delivered != 1 {
			t.Errorf("receiver stats: %+v", s)
		}
	}
}

func TestBufferLimitDropsExcess(t *testing.T) {
	c := build(t, 2, simnet.Config{}, rp2p.Config{BufferLimit: 3})
	for i := 0; i < 10; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "nobody", Data: []byte{byte(i)}})
	}
	c.Eventually(timeout, "buffer filled and trimmed", func() bool {
		var s rp2p.Stats
		done := make(chan struct{})
		c.Stacks[1].Call(rp2p.Service, rp2p.StatsReq{Reply: func(got rp2p.Stats) {
			s = got
			close(done)
		}})
		<-done
		return s.Buffered == 3 && s.BufferDrops == 7
	})
}

func TestEvictedPeerStateDropped(t *testing.T) {
	// A peer removed from the view has its reliability state released:
	// in-flight packets to an unreachable peer stop retransmitting, and
	// the stats no longer grow.
	c := build(t, 2, simnet.Config{}, rp2p.Config{RTO: 5 * time.Millisecond})
	c.Net.SetDown(1, true) // peer 1 unreachable: packets pile up unacked
	for i := 0; i < 5; i++ {
		c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "x", Data: []byte{byte(i)}})
	}
	stats := func() rp2p.Stats {
		got := make(chan rp2p.Stats, 1)
		c.Stacks[0].Call(rp2p.Service, rp2p.StatsReq{Reply: func(s rp2p.Stats) { got <- s }})
		return <-got
	}
	c.Eventually(timeout, "retransmissions to the dead peer", func() bool {
		return stats().Retransmits > 0
	})
	// Evict peer 1 from stack 0's view: state dropped, timers stopped.
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0}, nil) })
	base := stats().Retransmits
	time.Sleep(50 * time.Millisecond)
	if got := stats().Retransmits; got != base {
		t.Errorf("retransmissions continued after eviction: %d -> %d", base, got)
	}
}

func TestTrafficAfterRejoinStartsFresh(t *testing.T) {
	// Evicting and re-admitting a peer resets the sequence space on the
	// evicting side; the rejoined peer's fresh state must interoperate.
	c := build(t, 2, simnet.Config{}, rp2p.Config{})
	log := &recvLog{}
	listen(c, 1, "x", log)
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "x", Data: []byte("a")})
	c.Eventually(timeout, "first delivery", func() bool { return log.count() == 1 })
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0}, nil) })
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0, 1}, nil) })
	// Peer 1 still expects the original sequence stream from 0 — it was
	// never evicted on its side. The fresh sender state (seq 1) collides
	// with 1's dedup, which is exactly why real rejoins use fresh ids;
	// here we just assert nothing deadlocks and self-sends still work.
	c.Stacks[0].Call(rp2p.Service, rp2p.Send{To: 0, Channel: "y", Data: []byte("self")})
	self := &recvLog{}
	listen(c, 0, "y", self)
	c.Eventually(timeout, "self delivery after churn", func() bool { return self.count() >= 1 })
}
