// Package rp2p implements the RP2P module of the paper's stack
// (Figure 4): reliable, FIFO point-to-point communication between
// stacks, built on the unreliable UDP service with sequence numbers,
// cumulative acknowledgements, retransmission with exponential backoff
// and a sliding send window.
//
// Deliveries are demultiplexed by named channels. A channel with no
// registered handler buffers its messages until a handler registers:
// this realises the paper's rule that "if Pj is not currently in stack
// j, the invocation made by Q is completed when Pj is added to stack j"
// — during a dynamic protocol update, messages addressed to the next
// protocol version wait for that module's creation.
//
// On the wire, all RP2P traffic shares the socket under the
// udp.ChanRP2P channel tag (see internal/udp's registry); the named
// channels here ("rb", "cons", epoch-scoped abcast channels, ...) are
// a second, string-keyed multiplexing level inside that tag.
package rp2p

import (
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/udp"
	"repro/internal/wire"
)

// Adaptation signals exported through the process-wide metrics
// registry: every data-packet transmission and retransmission is
// counted, and the smoothed ack round-trip time is published as a
// gauge. The ratio of the two counters over a sampling window is the
// loss estimate internal/policy's LossSensitive policy switches on.
var (
	sentCounter    = metrics.NewCounter("rp2p.packets_sent")
	retransCounter = metrics.NewCounter("rp2p.retransmits")
	ackRTTGauge    = metrics.NewGauge("rp2p.ack_rtt_us")
)

// Service is the reliable point-to-point service.
const Service kernel.ServiceID = "net/rp2p"

// Protocol is the protocol name registered for this module.
const Protocol = "net/rp2p"

// Send requests a reliable FIFO transmission to one stack.
//
// For a remote destination, Data is copied into the packet buffer while
// the request is handled, so a sender issuing the request with
// Stack.CallSync may reuse or pool the buffer as soon as the call
// returns. A self-addressed Send is delivered by handing Data straight
// to the channel handler, which may retain it — do not pool buffers
// sent to self.
type Send struct {
	To      kernel.Addr
	Channel string
	Data    []byte
}

// Recv is handed to the channel's registered handler for every
// delivered message, in FIFO order per (sender, receiver) pair.
type Recv struct {
	From    kernel.Addr
	Channel string
	Data    []byte
}

// Listen registers the handler for a channel and flushes any messages
// buffered while the channel had no handler. The handler runs on the
// stack's executor.
type Listen struct {
	Channel string
	Handler func(Recv)
}

// Unlisten removes the channel's handler; subsequent messages buffer.
type Unlisten struct {
	Channel string
}

// StatsReq asks for a snapshot of module counters, delivered through
// Reply on the executor.
type StatsReq struct {
	Reply func(Stats)
}

// Stats counts module activity.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	Retransmits   uint64
	DupsDiscarded uint64
	Buffered      uint64 // currently buffered on unclaimed channels
	BufferDrops   uint64
}

// Config tunes the reliability machinery.
type Config struct {
	// RTO is the initial (and minimum) retransmission timeout. The
	// effective timeout adapts to the measured round-trip time
	// (RFC 6298-style SRTT/RTTVAR over echo-timestamp samples), so a
	// congested path does not collapse into a retransmission storm.
	RTO time.Duration
	// MaxRTO caps exponential backoff and RTT adaptation.
	MaxRTO time.Duration
	// Window is the maximum number of unacknowledged packets per peer.
	Window int
	// RetransmitBurst caps how many packets one timer expiry resends
	// (oldest first); the rest wait for the next expiry or an ack.
	RetransmitBurst int
	// BufferLimit bounds per-channel buffering of unclaimed messages.
	BufferLimit int
}

// DefaultConfig returns production defaults scaled for the simulated
// LAN profiles used in the experiments.
func DefaultConfig() Config {
	return Config{
		RTO:             20 * time.Millisecond,
		MaxRTO:          500 * time.Millisecond,
		Window:          128,
		RetransmitBurst: 8,
		BufferLimit:     16384,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.RetransmitBurst <= 0 {
		c.RetransmitBurst = d.RetransmitBurst
	}
	if c.BufferLimit <= 0 {
		c.BufferLimit = d.BufferLimit
	}
	return c
}

const (
	pktData byte = 0
	pktAck  byte = 1
)

// outPkt is one in-flight packet. The wire encoding carries a transmit
// timestamp that the receiver echoes in its ack (like TCP timestamps,
// RFC 7323): RTT samples stay clean even when cumulative acks are held
// back by a head-of-line loss, the case where sampling "time until the
// ack covered it" would wildly inflate the estimate.
//
// The encoding lives in a pooled wire.Writer (with wire.FrameOverhead
// bytes of leading headroom for the UDP frame header, so transmissions
// cross the framing layer without a copy) that is released back to the
// pool once the packet is acknowledged.
type outPkt struct {
	seq   uint64
	w     *wire.Writer // encoded packet; timestamp field starts at tsOff
	tsOff int
}

type peer struct {
	addr kernel.Addr

	// Sender side.
	nextSeq uint64 // next sequence number to assign (starts at 1)
	sendQ   []*outPkt
	unacked map[uint64]*outPkt
	rto     time.Duration // current timeout incl. backoff
	srtt    time.Duration // smoothed RTT (0 until first sample)
	rttvar  time.Duration
	rtimer  *kernel.Timer
	rtGen   uint64 // invalidates retransmit events queued by dead timers

	// Receiver side.
	expected uint64 // next in-order sequence wanted (starts at 1)
	oob      map[uint64]Recv
	echoTS   uint64 // transmit timestamp of the last data packet, echoed in acks
	ackDue   bool   // a cumulative ack is owed at the end of this executor pass
}

// sampleRTT folds one round-trip measurement into the adaptive timeout
// (RFC 6298 coefficients).
func (p *peer) sampleRTT(s time.Duration, minRTO, maxRTO time.Duration) {
	if p.srtt == 0 {
		p.srtt = s
		p.rttvar = s / 2
	} else {
		diff := p.srtt - s
		if diff < 0 {
			diff = -diff
		}
		p.rttvar = (3*p.rttvar + diff) / 4
		p.srtt = (7*p.srtt + s) / 8
	}
	rto := p.srtt + 4*p.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	p.rto = rto
}

// Module implements the RP2P module.
type Module struct {
	kernel.Base
	cfg        Config
	peers      map[kernel.Addr]*peer
	handlers   map[string]func(Recv)
	unclaimed  map[string][]Recv
	stats      Stats
	ackQ       []*peer // peers owed a cumulative ack this executor pass
	unregister func()
}

// Factory returns the module factory.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: []kernel.ServiceID{udp.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base:      kernel.NewBase(st, Protocol),
				cfg:       cfg,
				peers:     make(map[kernel.Addr]*peer),
				handlers:  make(map[string]func(Recv)),
				unclaimed: make(map[string][]Recv),
			}
		},
	}
}

// Start subscribes to the UDP service and registers the end-of-pass
// ack flusher: data packets arriving in one executor batch are answered
// with one cumulative ack per peer instead of one ack per packet. It
// also subscribes to membership views so per-peer reliability state is
// garbage-collected when a member is evicted.
func (m *Module) Start() {
	m.Stk.Subscribe(udp.Service, m)
	m.Stk.Subscribe(kernel.PeerService, m)
	m.unregister = m.Stk.RegisterFlusher(m.flushAcks)
}

// Stop cancels retransmission timers and releases in-flight packet
// buffers back to the pool.
func (m *Module) Stop() {
	// Tear peers down in address order: releasing pooled buffers in map
	// order would leave the pool's LIFO free list in a random order and
	// leak nondeterminism into every later GetWriter (dpu-lint maporder).
	addrs := make([]int, 0, len(m.peers))
	for a := range m.peers {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		p := m.peers[kernel.Addr(a)]
		if p.rtimer != nil {
			p.rtimer.Stop()
		}
		freeUnacked(p)
		for _, pkt := range p.sendQ {
			pkt.w.Free()
		}
		p.sendQ = nil
	}
	if m.unregister != nil {
		m.unregister()
	}
	m.Stk.Unsubscribe(udp.Service, m)
	m.Stk.Unsubscribe(kernel.PeerService, m)
}

// dropPeer releases all reliability state held for a peer that left the
// view: the retransmission timer (which would otherwise keep firing at
// MaxRTO forever, the packets unackable), pooled in-flight buffers and
// the backlog. Out-of-order receive buffers go with it; a straggler
// datagram from the gone peer would lazily recreate clean state, which
// the next view change collects again.
func (m *Module) dropPeer(a kernel.Addr) {
	p, ok := m.peers[a]
	if !ok {
		return
	}
	if p.rtimer != nil {
		p.rtimer.Stop()
		p.rtimer = nil
	}
	p.rtGen++ // invalidate any queued retransmit event
	freeUnacked(p)
	for _, pkt := range p.sendQ {
		pkt.w.Free()
	}
	p.sendQ = nil
	p.oob = nil
	delete(m.peers, a)
}

// freeUnacked releases a peer's in-flight packet buffers in sequence
// order, so the pool's LIFO free list ends up in the same order every
// run regardless of map iteration order.
func freeUnacked(p *peer) {
	seqs := make([]uint64, 0, len(p.unacked))
	for s := range p.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		p.unacked[s].w.Free()
	}
	p.unacked = nil
}

func (m *Module) peerFor(a kernel.Addr) *peer {
	p, ok := m.peers[a]
	if !ok {
		p = &peer{addr: a, nextSeq: 1, expected: 1,
			unacked: make(map[uint64]*outPkt), oob: make(map[uint64]Recv), rto: m.cfg.RTO}
		m.peers[a] = p
	}
	return p
}

// HandleRequest processes Send, Listen, Unlisten and StatsReq.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Send:
		m.send(r)
	case Listen:
		m.handlers[r.Channel] = r.Handler
		if buf := m.unclaimed[r.Channel]; len(buf) > 0 {
			delete(m.unclaimed, r.Channel)
			m.stats.Buffered -= uint64(len(buf))
			for _, rv := range buf {
				r.Handler(rv)
			}
		}
	case Unlisten:
		delete(m.handlers, r.Channel)
	case StatsReq:
		if r.Reply != nil {
			r.Reply(m.stats)
		}
	}
}

func (m *Module) send(s Send) {
	m.stats.Sent++
	if s.To == m.Stk.Addr() {
		// Local shortcut: the executor's FIFO already gives order.
		m.deliver(Recv{From: s.To, Channel: s.Channel, Data: s.Data})
		return
	}
	p := m.peerFor(s.To)
	w := wire.GetWriter(len(s.Data) + len(s.Channel) + 24 + wire.FrameOverhead)
	w.Pad(wire.FrameOverhead) // headroom for the UDP frame header (udp.Send{Headroom: true})
	w.Byte(pktData).Uvarint(p.nextSeq)
	tsOff := w.Len()
	w.Uint64(0) // transmit timestamp, stamped per transmission
	w.String(s.Channel).Raw(s.Data)
	//dpulint:ignore poolfree buffer parked in the retransmission window; onAck, dropPeer and Stop guarantee the Free
	pkt := &outPkt{seq: p.nextSeq, w: w, tsOff: tsOff}
	p.nextSeq++
	if len(p.unacked) < m.cfg.Window {
		p.unacked[pkt.seq] = pkt
		m.transmit(p, pkt)
		m.armRetransmit(p)
	} else {
		p.sendQ = append(p.sendQ, pkt)
	}
}

func (m *Module) transmit(p *peer, pkt *outPkt) {
	sentCounter.Add(1)
	encoded := pkt.w.Bytes()
	binary.BigEndian.PutUint64(encoded[pkt.tsOff:], uint64(m.Stk.Now().UnixNano()))
	// Synchronous dispatch into the UDP module: no queue round-trip, and
	// the headroom byte lets the frame go out without a copy.
	m.Stk.CallSync(udp.Service, udp.Send{To: p.addr, Chan: udp.ChanRP2P, Data: encoded, Headroom: true})
}

func (m *Module) armRetransmit(p *peer) {
	if p.rtimer != nil {
		return
	}
	p.rtGen++
	gen := p.rtGen
	p.rtimer = m.Stk.After(p.rto, func() { m.retransmit(p, gen) })
}

func (m *Module) retransmit(p *peer, gen uint64) {
	if gen != p.rtGen {
		return // a queued event from a timer that was since invalidated
	}
	p.rtimer = nil
	if len(p.unacked) == 0 {
		return
	}
	seqs := make([]uint64, 0, len(p.unacked))
	for s := range p.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	// Resend only the oldest few: a full-window resend under congestion
	// is exactly the retransmission storm that melts a loaded path.
	if len(seqs) > m.cfg.RetransmitBurst {
		seqs = seqs[:m.cfg.RetransmitBurst]
	}
	for _, s := range seqs {
		m.transmit(p, p.unacked[s])
		m.stats.Retransmits++
		retransCounter.Add(1)
	}
	p.rto = min(p.rto*2, m.cfg.MaxRTO)
	m.armRetransmit(p)
}

// HandleIndication processes UDP receptions tagged for RP2P and
// membership views (evicted members' state is released).
func (m *Module) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc == kernel.PeerService {
		if pc, ok := ind.(kernel.PeersChanged); ok {
			for _, p := range pc.Removed {
				m.dropPeer(p)
			}
		}
		return
	}
	rv, ok := ind.(udp.Recv)
	if !ok || rv.Chan != udp.ChanRP2P {
		return
	}
	r := wire.NewReader(rv.Data)
	switch r.Byte() {
	case pktData:
		seq := r.Uvarint()
		ts := r.Uint64()
		channel := r.String()
		data := r.Rest()
		if r.Err() != nil {
			return
		}
		m.onData(rv.From, seq, ts, channel, data)
	case pktAck:
		want := r.Uvarint()
		echoTS := r.Uint64()
		if r.Err() != nil {
			return
		}
		m.onAck(rv.From, want, echoTS)
	}
}

func (m *Module) onData(from kernel.Addr, seq uint64, ts uint64, channel string, data []byte) {
	p := m.peerFor(from)
	p.echoTS = ts
	switch {
	case seq < p.expected:
		m.stats.DupsDiscarded++
	case seq == p.expected:
		m.deliver(Recv{From: from, Channel: channel, Data: data})
		p.expected++
		for {
			next, ok := p.oob[p.expected]
			if !ok {
				break
			}
			delete(p.oob, p.expected)
			m.deliver(next)
			p.expected++
		}
	default: // future packet: buffer out-of-order
		if _, dup := p.oob[seq]; !dup {
			// The sender's window bounds how far ahead seq can be; cap
			// defensively anyway.
			if len(p.oob) < 4*m.cfg.Window {
				p.oob[seq] = Recv{From: from, Channel: channel, Data: data}
			}
		} else {
			m.stats.DupsDiscarded++
		}
	}
	m.sendAck(p)
}

// sendAck schedules a cumulative ack to p at the end of the current
// executor pass; n data packets drained in one batch cost one ack.
func (m *Module) sendAck(p *peer) {
	if p.ackDue {
		return
	}
	p.ackDue = true
	m.ackQ = append(m.ackQ, p)
}

// flushAcks runs as a stack flusher after every drained event batch.
func (m *Module) flushAcks() {
	if len(m.ackQ) == 0 {
		return
	}
	for i, p := range m.ackQ {
		m.ackQ[i] = nil
		p.ackDue = false
		w := wire.GetWriter(20 + wire.FrameOverhead)
		w.Pad(wire.FrameOverhead) // headroom for the UDP frame header
		w.Byte(pktAck).Uvarint(p.expected).Uint64(p.echoTS)
		m.Stk.CallSync(udp.Service, udp.Send{To: p.addr, Chan: udp.ChanRP2P, Data: w.Bytes(), Headroom: true})
		w.Free()
	}
	m.ackQ = m.ackQ[:0]
}

func (m *Module) onAck(from kernel.Addr, want uint64, echoTS uint64) {
	p := m.peerFor(from)
	// Every ack carries an RTT measurement for the transmission that
	// triggered it, valid even for retransmissions and held-back
	// cumulative acks.
	if echoTS > 0 {
		if sample := m.Stk.Now().Sub(time.Unix(0, int64(echoTS))); sample > 0 && sample < 10*m.cfg.MaxRTO {
			p.sampleRTT(sample, m.cfg.RTO, m.cfg.MaxRTO)
			ackRTTGauge.Observe(p.srtt.Microseconds())
		}
	}
	progressed := false
	// Unacked sequence numbers form a contiguous range (they are
	// assigned consecutively and only removed as a prefix by cumulative
	// acks), so walking downward from want-1 until the first miss visits
	// exactly the acked packets — in deterministic order and without the
	// allocation a sorted-keys pass would need on this hot path.
	for s := want - 1; ; s-- {
		pkt, ok := p.unacked[s]
		if !ok {
			break
		}
		delete(p.unacked, s)
		pkt.w.Free() // retransmission impossible; recycle the buffer
		progressed = true
	}
	if progressed {
		// Forward progress resets exponential backoff (as TCP does):
		// back to the RTT-derived timeout, or the floor with no samples.
		if p.srtt > 0 {
			rto := p.srtt + 4*p.rttvar
			if rto < m.cfg.RTO {
				rto = m.cfg.RTO
			}
			if rto > m.cfg.MaxRTO {
				rto = m.cfg.MaxRTO
			}
			p.rto = rto
		} else {
			p.rto = m.cfg.RTO
		}
	}
	// Top the window up from the backlog.
	for len(p.sendQ) > 0 && len(p.unacked) < m.cfg.Window {
		pkt := p.sendQ[0]
		p.sendQ[0] = nil
		p.sendQ = p.sendQ[1:]
		p.unacked[pkt.seq] = pkt
		m.transmit(p, pkt)
	}
	switch {
	case len(p.unacked) == 0:
		if p.rtimer != nil {
			p.rtimer.Stop()
			p.rtimer = nil
			p.rtGen++ // invalidate any already-queued retransmit event
		}
	case progressed:
		// Restart the clock with the current (possibly just reduced)
		// timeout: a timer armed during backoff would otherwise keep
		// pacing retransmissions at the backed-off interval even while
		// acks flow.
		if p.rtimer != nil {
			p.rtimer.Stop()
			p.rtimer = nil
			p.rtGen++
		}
		m.armRetransmit(p)
	default:
		m.armRetransmit(p)
	}
}

func (m *Module) deliver(rv Recv) {
	m.stats.Delivered++
	if h, ok := m.handlers[rv.Channel]; ok {
		h(rv)
		return
	}
	buf := m.unclaimed[rv.Channel]
	if len(buf) >= m.cfg.BufferLimit {
		m.stats.BufferDrops++
		m.Stk.Logf("rp2p: channel %q buffer full, dropping", rv.Channel)
		return
	}
	m.unclaimed[rv.Channel] = append(buf, rv)
	m.stats.Buffered++
}
