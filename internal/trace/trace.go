// Package trace collects kernel trace events across the stacks of a
// group and checks the paper's generic dynamic-update properties
// (Section 3) on recorded runs:
//
//   - weak stack-well-formedness: a service call made while no module is
//     bound is eventually unblocked by a bind (no call parked forever);
//   - weak protocol-operationability: whenever a module of protocol P is
//     bound in some stack, every non-crashed stack eventually contains a
//     module of P.
//
// The checkers run offline on the recorded event list once the system
// has quiesced, which matches the "eventually" modality of the weak
// properties.
package trace

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
)

// Collector is a kernel.Tracer shared by all stacks of a group.
type Collector struct {
	mu  sync.Mutex
	evs []kernel.TraceEvent
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Trace implements kernel.Tracer.
func (c *Collector) Trace(ev kernel.TraceEvent) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Events returns a snapshot of the recorded events.
func (c *Collector) Events() []kernel.TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]kernel.TraceEvent(nil), c.evs...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

// Reset discards recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.evs = nil
	c.mu.Unlock()
}

// BlockReport summarises blocked service calls for one run.
type BlockReport struct {
	// Blocked counts calls that were parked on an unbound service.
	Blocked int
	// Unblocked counts parked calls later flushed by a bind.
	Unblocked int
	// MaxBlock and TotalBlock aggregate the waiting durations.
	MaxBlock   time.Duration
	TotalBlock time.Duration
}

// MeanBlock returns the average waiting duration of unblocked calls.
func (r BlockReport) MeanBlock() time.Duration {
	if r.Unblocked == 0 {
		return 0
	}
	return r.TotalBlock / time.Duration(r.Unblocked)
}

// CheckWeakStackWellFormedness verifies that every call parked on an
// unbound service was eventually flushed. Crashed stacks are exempt
// (the paper's properties only constrain non-crashed stacks).
func CheckWeakStackWellFormedness(evs []kernel.TraceEvent) (BlockReport, error) {
	rep := BlockReport{}
	type key struct {
		stack kernel.Addr
		svc   kernel.ServiceID
	}
	outstanding := make(map[key]int)
	crashed := make(map[kernel.Addr]bool)
	for _, ev := range evs {
		switch ev.Kind {
		case kernel.TraceCallBlocked:
			rep.Blocked++
			outstanding[key{ev.Stack, ev.Service}]++
		case kernel.TraceCallUnblocked:
			rep.Unblocked++
			outstanding[key{ev.Stack, ev.Service}]--
			rep.TotalBlock += ev.Blocked
			if ev.Blocked > rep.MaxBlock {
				rep.MaxBlock = ev.Blocked
			}
		case kernel.TraceCrash:
			crashed[ev.Stack] = true
		}
	}
	for k, n := range outstanding {
		if n > 0 && !crashed[k.stack] {
			return rep, fmt.Errorf(
				"trace: weak stack-well-formedness violated: %d call(s) still parked on service %q of stack %d",
				n, k.svc, k.stack)
		}
	}
	return rep, nil
}

// CheckProtocolOperationability verifies weak protocol-operationability
// for protocol P: if some stack ever bound a module of P, then every
// non-crashed stack of the group eventually contained a module of P.
func CheckProtocolOperationability(evs []kernel.TraceEvent, protocol string, group []kernel.Addr) error {
	bound := false
	contains := make(map[kernel.Addr]bool)
	crashed := make(map[kernel.Addr]bool)
	for _, ev := range evs {
		switch ev.Kind {
		case kernel.TraceBind:
			if ev.Protocol == protocol {
				bound = true
			}
		case kernel.TraceModuleAdd:
			if ev.Protocol == protocol {
				contains[ev.Stack] = true
			}
		case kernel.TraceCrash:
			crashed[ev.Stack] = true
		}
	}
	if !bound {
		return nil // vacuously true
	}
	for _, a := range group {
		if !crashed[a] && !contains[a] {
			return fmt.Errorf(
				"trace: weak protocol-operationability violated: protocol %q was bound somewhere but stack %d never contained a module of it",
				protocol, a)
		}
	}
	return nil
}

// BindCount returns how many bind events each stack recorded for the
// protocol, a convenience for switch-counting assertions.
func BindCount(evs []kernel.TraceEvent, protocol string) map[kernel.Addr]int {
	out := make(map[kernel.Addr]int)
	for _, ev := range evs {
		if ev.Kind == kernel.TraceBind && ev.Protocol == protocol {
			out[ev.Stack]++
		}
	}
	return out
}
