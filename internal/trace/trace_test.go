package trace

import (
	"testing"
	"time"

	"repro/internal/kernel"
)

func ev(stack kernel.Addr, kind kernel.TraceKind) kernel.TraceEvent {
	return kernel.TraceEvent{Stack: stack, Kind: kind, Time: time.Now()}
}

func TestCollectorRecordsAndResets(t *testing.T) {
	c := NewCollector()
	c.Trace(ev(0, kernel.TraceBind))
	c.Trace(ev(1, kernel.TraceCall))
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	events := c.Events()
	if len(events) != 2 || events[0].Kind != kernel.TraceBind {
		t.Errorf("Events = %+v", events)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
}

func TestWellFormednessHoldsWhenAllCallsFlushed(t *testing.T) {
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceCallBlocked, Service: "s"},
		{Stack: 0, Kind: kernel.TraceCallBlocked, Service: "s"},
		{Stack: 0, Kind: kernel.TraceCallUnblocked, Service: "s", Blocked: 3 * time.Millisecond},
		{Stack: 0, Kind: kernel.TraceCallUnblocked, Service: "s", Blocked: 5 * time.Millisecond},
	}
	rep, err := CheckWeakStackWellFormedness(evs)
	if err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
	if rep.Blocked != 2 || rep.Unblocked != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.MaxBlock != 5*time.Millisecond {
		t.Errorf("MaxBlock = %v", rep.MaxBlock)
	}
	if rep.MeanBlock() != 4*time.Millisecond {
		t.Errorf("MeanBlock = %v", rep.MeanBlock())
	}
}

func TestWellFormednessViolatedByParkedCall(t *testing.T) {
	evs := []kernel.TraceEvent{
		{Stack: 2, Kind: kernel.TraceCallBlocked, Service: "abcast"},
	}
	if _, err := CheckWeakStackWellFormedness(evs); err == nil {
		t.Fatal("parked call not detected")
	}
}

func TestWellFormednessExemptsCrashedStacks(t *testing.T) {
	evs := []kernel.TraceEvent{
		{Stack: 2, Kind: kernel.TraceCallBlocked, Service: "abcast"},
		{Stack: 2, Kind: kernel.TraceCrash},
	}
	if _, err := CheckWeakStackWellFormedness(evs); err != nil {
		t.Fatalf("crashed stack not exempt: %v", err)
	}
}

func TestMeanBlockZeroWhenNothingUnblocked(t *testing.T) {
	if (BlockReport{}).MeanBlock() != 0 {
		t.Error("MeanBlock on empty report != 0")
	}
}

func TestOperationabilityHolds(t *testing.T) {
	group := []kernel.Addr{0, 1, 2}
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceBind, Protocol: "p"},
		{Stack: 0, Kind: kernel.TraceModuleAdd, Protocol: "p"},
		{Stack: 1, Kind: kernel.TraceModuleAdd, Protocol: "p"},
		{Stack: 2, Kind: kernel.TraceModuleAdd, Protocol: "p"},
	}
	if err := CheckProtocolOperationability(evs, "p", group); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestOperationabilityViolatedByMissingModule(t *testing.T) {
	group := []kernel.Addr{0, 1, 2}
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceBind, Protocol: "p"},
		{Stack: 0, Kind: kernel.TraceModuleAdd, Protocol: "p"},
		{Stack: 1, Kind: kernel.TraceModuleAdd, Protocol: "p"},
		// stack 2 never contains a module of p
	}
	if err := CheckProtocolOperationability(evs, "p", group); err == nil {
		t.Fatal("missing module not detected")
	}
}

func TestOperationabilityVacuousWhenNeverBound(t *testing.T) {
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceModuleAdd, Protocol: "p"},
	}
	if err := CheckProtocolOperationability(evs, "p", []kernel.Addr{0, 1}); err != nil {
		t.Fatalf("vacuous case flagged: %v", err)
	}
}

func TestOperationabilityExemptsCrashedStacks(t *testing.T) {
	group := []kernel.Addr{0, 1}
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceBind, Protocol: "p"},
		{Stack: 0, Kind: kernel.TraceModuleAdd, Protocol: "p"},
		{Stack: 1, Kind: kernel.TraceCrash},
	}
	if err := CheckProtocolOperationability(evs, "p", group); err != nil {
		t.Fatalf("crashed stack not exempt: %v", err)
	}
}

func TestBindCount(t *testing.T) {
	evs := []kernel.TraceEvent{
		{Stack: 0, Kind: kernel.TraceBind, Protocol: "p"},
		{Stack: 0, Kind: kernel.TraceBind, Protocol: "p"},
		{Stack: 1, Kind: kernel.TraceBind, Protocol: "q"},
	}
	counts := BindCount(evs, "p")
	if counts[0] != 2 || counts[1] != 0 {
		t.Errorf("counts = %v", counts)
	}
}
