// Package experiments assembles benchmark clusters and regenerates
// every figure of the paper's evaluation (Section 6) plus the ablations
// listed in DESIGN.md. Absolute numbers differ from the 2006 testbed
// (simulated LAN instead of 100Base-TX, current CPUs instead of Pentium
// III); the shapes — overhead percentage, spike-and-recover, load
// curves — are the reproduction target.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/fd"
	"repro/internal/graceful"
	"repro/internal/kernel"
	"repro/internal/maestro"
	"repro/internal/metrics"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udp"
	"repro/internal/workload"
)

// Manager selects the replacement manager under test.
type Manager string

// Manager kinds.
const (
	// ManagerRepl is the paper's replacement module (core.Repl).
	ManagerRepl Manager = "repl"
	// ManagerMaestro is the whole-stack-switch baseline.
	ManagerMaestro Manager = "maestro"
	// ManagerGraceful is the AAC/barrier baseline.
	ManagerGraceful Manager = "graceful"
	// ManagerNone binds the implementation directly, with no
	// replacement layer at all (Figure 6's "without rplcmnt layer").
	ManagerNone Manager = "none"
)

// LANProfile models the paper's testbed network, scaled: a switched
// 100 Mb/s LAN with ~100 µs one-way latency, small jitter, and per-NIC
// egress serialization so a broadcast's fan-out cost grows with the
// group size (as on the paper's Pentium-III/100Base-TX cluster).
func LANProfile(seed int64) simnet.Config {
	return simnet.Config{
		Seed:            seed,
		BaseLatency:     100 * time.Microsecond,
		Jitter:          50 * time.Microsecond,
		BandwidthBps:    100e6,
		SerializeEgress: true,
	}
}

// ClusterConfig assembles a benchmark group.
type ClusterConfig struct {
	N        int
	Manager  Manager
	Protocol string // initial abcast implementation
	Net      simnet.Config
	Grace    time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.N <= 0 {
		c.N = 3
	}
	if c.Protocol == "" {
		c.Protocol = abcast.ProtocolCT
	}
	if c.Manager == "" {
		c.Manager = ManagerRepl
	}
	if c.Grace <= 0 {
		c.Grace = 200 * time.Millisecond
	}
	return c
}

// Cluster is a running benchmark group.
type Cluster struct {
	cfg      ClusterConfig
	Net      *simnet.Network
	Stacks   []*kernel.Stack
	Recorder *metrics.Recorder
	appSvc   kernel.ServiceID
	sinks    []*benchSink
	switchMu sync.Mutex
	switches []switchEvent
	// switchNotify carries a (coalesced) wake-up per recorded switch so
	// WaitSwitched blocks on progress instead of sleep-polling.
	switchNotify chan struct{}
}

type switchEvent struct {
	stack int
	sn    uint64
	at    time.Time
}

// benchSink records workload deliveries and switch events of one stack.
type benchSink struct {
	kernel.Base
	cl    *Cluster
	stack int
}

func (s *benchSink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case core.Deliver:
		s.record(v.Data)
	case abcast.Deliver: // ManagerNone path
		s.record(v.Data)
	case core.Switched:
		s.cl.switchMu.Lock()
		s.cl.switches = append(s.cl.switches, switchEvent{stack: s.stack, sn: v.Sn, at: v.At})
		s.cl.switchMu.Unlock()
		select {
		case s.cl.switchNotify <- struct{}{}:
		default:
		}
	}
}

func (s *benchSink) record(data []byte) {
	kind, body, err := envelope.Unwrap(data)
	if err != nil || kind != envelope.KindBench {
		return
	}
	if p, ok := workload.Decode(body); ok {
		s.cl.Recorder.Delivered(p.ID, time.Now())
	}
}

// BuildCluster assembles and starts a benchmark group.
func BuildCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	cl := &Cluster{
		cfg:          cfg,
		Net:          simnet.New(cfg.Net),
		Recorder:     metrics.NewRecorder(cfg.N),
		switchNotify: make(chan struct{}, 1),
	}
	reg := kernel.NewRegistry()
	reg.MustRegister(udp.Factory(transport.Sim(cl.Net)))
	reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	reg.MustRegister(fd.Factory(fd.Config{Interval: 10 * time.Millisecond, Timeout: 100 * time.Millisecond}))
	reg.MustRegister(consensus.Factory())

	switch cfg.Manager {
	case ManagerRepl:
		reg.MustRegister(core.Factory(core.Config{
			InitialProtocol: cfg.Protocol, Grace: cfg.Grace,
		}))
		cl.appSvc = core.Service
	case ManagerMaestro:
		reg.MustRegister(maestro.Factory(maestro.Config{InitialProtocol: cfg.Protocol}))
		cl.appSvc = core.Service
	case ManagerGraceful:
		reg.MustRegister(graceful.Factory(graceful.Config{InitialProtocol: cfg.Protocol, Grace: cfg.Grace}))
		cl.appSvc = core.Service
	case ManagerNone:
		cl.appSvc = abcast.ServiceImpl
	default:
		return nil, fmt.Errorf("experiments: unknown manager %q", cfg.Manager)
	}

	peers := make([]kernel.Addr, cfg.N)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	impls := abcast.StandardRegistry()
	for i := 0; i < cfg.N; i++ {
		st := kernel.NewStack(kernel.Config{
			Addr: kernel.Addr(i), Peers: peers, Registry: reg, Seed: cfg.Net.Seed + int64(i),
		})
		cl.Stacks = append(cl.Stacks, st)
		i := i
		var buildErr error
		err := st.DoSync(func() {
			switch cfg.Manager {
			case ManagerRepl:
				_, buildErr = st.CreateProtocol(core.Protocol)
			case ManagerMaestro:
				_, buildErr = st.CreateProtocol(maestro.Protocol)
			case ManagerGraceful:
				_, buildErr = st.CreateProtocol(graceful.Protocol)
			case ManagerNone:
				im, _ := impls.Lookup(cfg.Protocol)
				for _, svc := range im.Requires {
					if e := st.EnsureService(svc); e != nil {
						buildErr = e
						return
					}
				}
				mod := im.New(st, 0)
				st.AddModule(mod)
				if e := st.Bind(abcast.ServiceImpl, mod); e != nil {
					buildErr = e
					return
				}
				mod.Start()
			}
			if buildErr != nil {
				return
			}
			sink := &benchSink{Base: kernel.NewBase(st, "bench-sink"), cl: cl, stack: i}
			st.AddModule(sink)
			st.Subscribe(cl.appSvc, sink)
			cl.sinks = append(cl.sinks, sink)
		})
		if err != nil {
			return nil, err
		}
		if buildErr != nil {
			return nil, buildErr
		}
	}
	return cl, nil
}

// Broadcast issues a workload payload from the stack.
func (cl *Cluster) Broadcast(stack int, payload []byte) {
	data := envelope.Wrap(envelope.KindBench, payload)
	if cl.appSvc == core.Service {
		cl.Stacks[stack].Call(core.Service, core.Broadcast{Data: data})
	} else {
		cl.Stacks[stack].Call(abcast.ServiceImpl, abcast.Broadcast{Data: data})
	}
}

// ChangeProtocol triggers a replacement from the stack. Returns the
// trigger instant.
func (cl *Cluster) ChangeProtocol(stack int, name string) time.Time {
	at := time.Now()
	cl.Stacks[stack].Call(core.Service, core.ChangeProtocol{Protocol: name})
	return at
}

// SwitchesSince returns per-stack switch completion times with sn >
// afterSn. The switch is complete when every stack reported it
// ("finishes when all machines have replaced the old modules").
func (cl *Cluster) SwitchesSince(afterSn uint64) map[int]time.Time {
	cl.switchMu.Lock()
	defer cl.switchMu.Unlock()
	out := make(map[int]time.Time)
	for _, ev := range cl.switches {
		if ev.sn > afterSn {
			if cur, ok := out[ev.stack]; !ok || ev.at.After(cur) {
				out[ev.stack] = ev.at
			}
		}
	}
	return out
}

// WaitSwitched blocks until every stack completed a switch with sn >
// afterSn or the deadline passes; it returns the last completion time.
// It wakes on switch progress (no polling).
func (cl *Cluster) WaitSwitched(afterSn uint64, deadline time.Duration) (time.Time, bool) {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for {
		got := cl.SwitchesSince(afterSn)
		if len(got) == cl.cfg.N {
			var last time.Time
			for _, at := range got {
				if at.After(last) {
					last = at
				}
			}
			return last, true
		}
		select {
		case <-cl.switchNotify:
		case <-timer.C:
			return time.Time{}, false
		}
	}
}

// WaitQuiesce waits until every sent message has been delivered on all
// stacks, or the deadline passes.
func (cl *Cluster) WaitQuiesce(deadline time.Duration) bool {
	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		complete, sent := cl.Recorder.Complete()
		if complete == sent {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Close shuts the group down.
func (cl *Cluster) Close() {
	cl.Net.Close()
	for _, st := range cl.Stacks {
		if st.Running() {
			st.Close()
		}
	}
}
