package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/workload"
)

// TestClusterManagersDeliverWorkload smoke-tests every manager path of
// the benchmark cluster builder.
func TestClusterManagersDeliverWorkload(t *testing.T) {
	for _, mgr := range []Manager{ManagerRepl, ManagerMaestro, ManagerGraceful, ManagerNone} {
		mgr := mgr
		t.Run(string(mgr), func(t *testing.T) {
			cl, err := BuildCluster(ClusterConfig{N: 3, Manager: mgr, Net: LANProfile(1)})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			gen := workload.NewGenerator(3, workload.Config{RatePerStack: 100, PayloadSize: 128},
				cl.Recorder, cl.Broadcast)
			gen.Start()
			time.Sleep(100 * time.Millisecond)
			gen.Stop()
			if !cl.WaitQuiesce(15 * time.Second) {
				complete, sent := cl.Recorder.Complete()
				t.Fatalf("did not quiesce: %d/%d", complete, sent)
			}
			results := cl.Recorder.Results()
			if len(results) == 0 {
				t.Fatal("no results recorded")
			}
			for _, r := range results {
				if r.Deliveries != 3 {
					t.Fatalf("message %d delivered %d times", r.ID, r.Deliveries)
				}
				if r.Avg <= 0 {
					t.Fatalf("non-positive latency %v", r.Avg)
				}
			}
		})
	}
}

func TestUnknownManagerRejected(t *testing.T) {
	if _, err := BuildCluster(ClusterConfig{N: 2, Manager: "bogus"}); err == nil {
		t.Fatal("bogus manager accepted")
	}
}

func TestSwitchTracking(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{N: 3, Manager: ManagerRepl, Net: LANProfile(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.ChangeProtocol(0, abcast.ProtocolSeq)
	if _, ok := cl.WaitSwitched(0, 15*time.Second); !ok {
		t.Fatal("switch not tracked to completion")
	}
	if got := cl.SwitchesSince(0); len(got) != 3 {
		t.Errorf("SwitchesSince saw %d stacks", len(got))
	}
}

// TestFigure5Short runs a miniature Figure 5 and checks its structural
// properties: all messages delivered, a finite switch window, and a
// printable result.
func TestFigure5Short(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := RunFigure5(Figure5Config{
		N: 3, RatePerStack: 80, PayloadSize: 512,
		Duration: 900 * time.Millisecond, SwitchAt: 400 * time.Millisecond,
		Bin: 100 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Complete != res.Sent {
		t.Errorf("sent %d complete %d", res.Sent, res.Complete)
	}
	if res.SwitchDone < res.SwitchStart {
		t.Errorf("switch window inverted: %v .. %v", res.SwitchStart, res.SwitchDone)
	}
	if res.BaselineAvg <= 0 || res.DuringAvg <= 0 {
		t.Errorf("degenerate averages: %+v", res)
	}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "replacement triggered") {
		t.Errorf("Print output malformed:\n%s", out)
	}
}

// TestFigure6Short runs a miniature Figure 6 sweep.
func TestFigure6Short(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := Figure6Config{
		Ns: []int{3}, Loads: []float64{60}, PayloadSize: 256,
		Duration: 700 * time.Millisecond, Seed: 4,
	}
	points, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	p := points[0]
	if p.NoLayer <= 0 || p.WithLayer <= 0 || p.During <= 0 {
		t.Errorf("degenerate point %+v", p)
	}
	if p.NoLayerN == 0 || p.WithLayerN == 0 || p.DuringN == 0 {
		t.Errorf("empty windows %+v", p)
	}
	var sb strings.Builder
	PrintFigure6(&sb, cfg, points)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Errorf("Print output malformed:\n%s", sb.String())
	}
}

// TestManagersComparisonShort checks the ablation runs and that the
// Maestro baseline indeed disrupts more than the Repl manager.
func TestManagersComparisonShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	rs, err := RunManagersComparison(3, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	byMgr := map[Manager]ManagersResult{}
	for _, r := range rs {
		byMgr[r.Manager] = r
	}
	repl, maest := byMgr[ManagerRepl], byMgr[ManagerMaestro]
	if repl.DuringCount == 0 {
		t.Error("repl window empty")
	}
	// Maestro blocks the application for its finalize window; its
	// during-switch latency must exceed ours by a clear margin.
	if maest.DuringAvg <= repl.DuringAvg {
		t.Errorf("maestro during (%v) not worse than repl (%v); blocking not visible",
			maest.DuringAvg, repl.DuringAvg)
	}
	var sb strings.Builder
	PrintManagersComparison(&sb, 3, 60, rs)
	if !strings.Contains(sb.String(), "Ablation A") {
		t.Error("print malformed")
	}
}

func TestReissueScalingShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	rs, err := RunReissueScaling([]int{0, 50}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.SwitchDuration <= 0 {
			t.Errorf("backlog %d: switch %v", r.Backlog, r.SwitchDuration)
		}
	}
	var sb strings.Builder
	PrintReissueScaling(&sb, rs)
	if !strings.Contains(sb.String(), "Ablation B") {
		t.Error("print malformed")
	}
}

func TestSwitchMatrixShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	rs, err := RunSwitchMatrix(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("matrix rows = %d, want 6 ordered pairs", len(rs))
	}
	var sb strings.Builder
	PrintSwitchMatrix(&sb, rs)
	if !strings.Contains(sb.String(), "Ablation C") {
		t.Error("print malformed")
	}
}
