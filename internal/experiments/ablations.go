package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/abcast"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// ManagersResult compares the three replacement managers on the same
// workload: the quantitative version of the paper's qualitative
// Section 4.2/5.3 comparison (Ablation A in DESIGN.md).
type ManagersResult struct {
	Manager        Manager
	SwitchDuration time.Duration // trigger -> all stacks switched
	BaselineAvg    time.Duration // latency before the switch
	DuringAvg      time.Duration // latency of messages sent in the window
	DuringMax      time.Duration
	DuringCount    int
}

// RunManagersComparison switches once under constant load for each
// manager and reports the disruption.
func RunManagersComparison(n int, ratePerStack float64, seed int64) ([]ManagersResult, error) {
	managers := []Manager{ManagerRepl, ManagerGraceful, ManagerMaestro}
	var out []ManagersResult
	for i, mgr := range managers {
		cl, err := BuildCluster(ClusterConfig{
			N: n, Manager: mgr, Protocol: abcast.ProtocolCT, Net: LANProfile(seed + int64(i)),
		})
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(n,
			workload.Config{RatePerStack: ratePerStack, PayloadSize: 512},
			cl.Recorder, cl.Broadcast)
		start := time.Now()
		gen.Start()
		time.Sleep(400 * time.Millisecond)
		trigger := cl.ChangeProtocol(0, abcast.ProtocolCT)
		// Probe burst at the trigger instant: these messages are sent
		// inside the switch window by construction, so the disruption
		// measurement never depends on the generator's phase (a CT->CT
		// switch can complete between two 60 msg/s ticks).
		gen.Burst(0, 10)
		doneAt, ok := cl.WaitSwitched(0, 15*time.Second)
		if !ok {
			gen.Stop()
			cl.Close()
			return nil, fmt.Errorf("experiments: %s switch stalled", mgr)
		}
		time.Sleep(300 * time.Millisecond)
		gen.Stop()
		cl.WaitQuiesce(10 * time.Second)
		results := cl.Recorder.Results()
		res := ManagersResult{Manager: mgr, SwitchDuration: doneAt.Sub(trigger)}
		res.BaselineAvg, _ = metrics.WindowMean(results, start, trigger)
		var lats []time.Duration
		for _, r := range results {
			if !r.SentAt.Before(trigger) && r.SentAt.Before(doneAt) {
				lats = append(lats, r.Avg)
			}
		}
		res.DuringAvg = metrics.Mean(lats)
		res.DuringMax = metrics.Percentile(lats, 1.0)
		res.DuringCount = len(lats)
		cl.Close()
		out = append(out, res)
	}
	return out, nil
}

// PrintManagersComparison writes the comparison table.
func PrintManagersComparison(w io.Writer, n int, rate float64, rs []ManagersResult) {
	fmt.Fprintf(w, "Ablation A — replacement managers under load (n=%d, %0.f msg/s/stack, CT->CT)\n", n, rate)
	fmt.Fprintf(w, "%10s %12s %14s %14s %14s %8s\n",
		"manager", "switch[ms]", "baseline[ms]", "during[ms]", "during-max", "msgs")
	for _, r := range rs {
		fmt.Fprintf(w, "%10s %12.1f %14.2f %14.2f %14.2f %8d\n",
			r.Manager, ms(r.SwitchDuration), ms(r.BaselineAvg), ms(r.DuringAvg), ms(r.DuringMax), r.DuringCount)
	}
}

// ReissueResult measures the switch cost as a function of the
// undelivered backlog reissued through the new protocol (Algorithm 1
// lines 15-16; Ablation B).
type ReissueResult struct {
	Backlog        int // burst size injected right before the switch
	SwitchDuration time.Duration
	DrainTime      time.Duration // trigger -> every backlog message delivered
}

// RunReissueScaling sweeps the in-flight backlog at switch time.
func RunReissueScaling(backlogs []int, seed int64) ([]ReissueResult, error) {
	var out []ReissueResult
	for i, backlog := range backlogs {
		cl, err := BuildCluster(ClusterConfig{
			N: 3, Manager: ManagerRepl, Protocol: abcast.ProtocolCT, Net: LANProfile(seed + int64(i)),
		})
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(3,
			workload.Config{RatePerStack: 1, PayloadSize: 256}, cl.Recorder, cl.Broadcast)
		// Inject the backlog and switch immediately, so the burst is
		// still in flight when the change message overtakes it.
		gen.Burst(0, backlog)
		trigger := cl.ChangeProtocol(0, abcast.ProtocolCT)
		doneAt, ok := cl.WaitSwitched(0, 15*time.Second)
		if !ok {
			cl.Close()
			return nil, fmt.Errorf("experiments: switch stalled at backlog %d", backlog)
		}
		if !cl.WaitQuiesce(15 * time.Second) {
			cl.Close()
			return nil, fmt.Errorf("experiments: backlog %d did not drain", backlog)
		}
		drained := time.Now()
		gen.Stop()
		out = append(out, ReissueResult{
			Backlog:        backlog,
			SwitchDuration: doneAt.Sub(trigger),
			DrainTime:      drained.Sub(trigger),
		})
		cl.Close()
	}
	return out, nil
}

// PrintReissueScaling writes the sweep table.
func PrintReissueScaling(w io.Writer, rs []ReissueResult) {
	fmt.Fprintln(w, "Ablation B — switch cost vs undelivered backlog (n=3, CT->CT)")
	fmt.Fprintf(w, "%10s %12s %12s\n", "backlog", "switch[ms]", "drain[ms]")
	for _, r := range rs {
		fmt.Fprintf(w, "%10d %12.1f %12.1f\n", r.Backlog, ms(r.SwitchDuration), ms(r.DrainTime))
	}
}

// MatrixResult is one cross-protocol switch measurement (Ablation C).
type MatrixResult struct {
	From, To       string
	SwitchDuration time.Duration
	BaselineAvg    time.Duration
	DuringAvg      time.Duration
}

// RunSwitchMatrix measures every ordered pair of distinct protocols.
func RunSwitchMatrix(ratePerStack float64, seed int64) ([]MatrixResult, error) {
	protos := []string{abcast.ProtocolCT, abcast.ProtocolSeq, abcast.ProtocolToken}
	var out []MatrixResult
	salt := seed
	for _, from := range protos {
		for _, to := range protos {
			if from == to {
				continue
			}
			salt++
			cl, err := BuildCluster(ClusterConfig{
				N: 3, Manager: ManagerRepl, Protocol: from, Net: LANProfile(salt),
			})
			if err != nil {
				return nil, err
			}
			gen := workload.NewGenerator(3,
				workload.Config{RatePerStack: ratePerStack, PayloadSize: 512},
				cl.Recorder, cl.Broadcast)
			start := time.Now()
			gen.Start()
			time.Sleep(300 * time.Millisecond)
			trigger := cl.ChangeProtocol(0, to)
			doneAt, ok := cl.WaitSwitched(0, 15*time.Second)
			if !ok {
				gen.Stop()
				cl.Close()
				return nil, fmt.Errorf("experiments: %s->%s stalled", from, to)
			}
			time.Sleep(200 * time.Millisecond)
			gen.Stop()
			cl.WaitQuiesce(10 * time.Second)
			results := cl.Recorder.Results()
			r := MatrixResult{From: from, To: to, SwitchDuration: doneAt.Sub(trigger)}
			r.BaselineAvg, _ = metrics.WindowMean(results, start, trigger)
			r.DuringAvg, _ = metrics.WindowMean(results, trigger, doneAt)
			cl.Close()
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintSwitchMatrix writes the matrix table.
func PrintSwitchMatrix(w io.Writer, rs []MatrixResult) {
	fmt.Fprintln(w, "Ablation C — cross-protocol switch matrix (n=3)")
	fmt.Fprintf(w, "%14s %14s %12s %14s %14s\n", "from", "to", "switch[ms]", "baseline[ms]", "during[ms]")
	for _, r := range rs {
		fmt.Fprintf(w, "%14s %14s %12.1f %14.2f %14.2f\n",
			r.From, r.To, ms(r.SwitchDuration), ms(r.BaselineAvg), ms(r.DuringAvg))
	}
}
