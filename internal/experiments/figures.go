package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/abcast"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Figure5Config parameterises the latency-timeline experiment (paper
// Figure 5): constant load on n stacks, one CT→CT replacement triggered
// mid-run, average latency plotted against the send time of each
// message.
type Figure5Config struct {
	N            int
	RatePerStack float64       // messages per second per stack
	PayloadSize  int           // bytes
	Duration     time.Duration // total experiment time
	SwitchAt     time.Duration // when the replacement is triggered
	Protocol     string        // both the old and the new protocol
	NewProtocol  string        // defaults to Protocol (the paper replaces CT by CT)
	Bin          time.Duration // timeline bucket width
	Seed         int64
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.N <= 0 {
		c.N = 7
	}
	if c.RatePerStack <= 0 {
		c.RatePerStack = 50
	}
	if c.PayloadSize <= 0 {
		c.PayloadSize = 1024
	}
	if c.Duration <= 0 {
		c.Duration = 4 * time.Second
	}
	if c.SwitchAt <= 0 {
		c.SwitchAt = c.Duration / 2
	}
	if c.Protocol == "" {
		c.Protocol = abcast.ProtocolCT
	}
	if c.NewProtocol == "" {
		c.NewProtocol = c.Protocol
	}
	if c.Bin <= 0 {
		c.Bin = 100 * time.Millisecond
	}
	return c
}

// Figure5Result is the regenerated Figure 5.
type Figure5Result struct {
	Config      Figure5Config
	Bins        []metrics.Bin
	SwitchStart time.Duration // trigger, relative to experiment start
	SwitchDone  time.Duration // all stacks switched, relative to start
	BaselineAvg time.Duration // mean latency of messages sent before the switch
	DuringAvg   time.Duration // mean latency of messages sent in the switch window
	AfterAvg    time.Duration // mean latency of messages sent after the window
	Sent        int
	Complete    int
}

// OverheadPct returns the relative latency increase of the switch
// window against the pre-switch baseline, in percent.
func (r Figure5Result) OverheadPct() float64 {
	if r.BaselineAvg == 0 {
		return 0
	}
	return 100 * (float64(r.DuringAvg) - float64(r.BaselineAvg)) / float64(r.BaselineAvg)
}

// RunFigure5 executes the experiment.
func RunFigure5(cfg Figure5Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	cl, err := BuildCluster(ClusterConfig{
		N: cfg.N, Manager: ManagerRepl, Protocol: cfg.Protocol, Net: LANProfile(cfg.Seed),
	})
	if err != nil {
		return Figure5Result{}, err
	}
	defer cl.Close()

	gen := workload.NewGenerator(cfg.N,
		workload.Config{RatePerStack: cfg.RatePerStack, PayloadSize: cfg.PayloadSize},
		cl.Recorder, cl.Broadcast)
	start := time.Now()
	gen.Start()
	time.Sleep(cfg.SwitchAt)
	trigger := cl.ChangeProtocol(0, cfg.NewProtocol)
	doneAt, ok := cl.WaitSwitched(0, cfg.Duration)
	if !ok {
		gen.Stop()
		return Figure5Result{}, fmt.Errorf("experiments: switch did not complete everywhere")
	}
	remaining := cfg.Duration - time.Since(start)
	if remaining > 0 {
		time.Sleep(remaining)
	}
	gen.Stop()
	cl.WaitQuiesce(10 * time.Second)

	results := cl.Recorder.Results()
	res := Figure5Result{
		Config:      cfg,
		Bins:        metrics.Timeline(results, start, cfg.Bin),
		SwitchStart: trigger.Sub(start),
		SwitchDone:  doneAt.Sub(start),
	}
	res.BaselineAvg, _ = metrics.WindowMean(results, start, trigger)
	res.DuringAvg, _ = metrics.WindowMean(results, trigger, doneAt.Add(cfg.Bin))
	res.AfterAvg, _ = metrics.WindowMean(results, doneAt.Add(cfg.Bin), start.Add(cfg.Duration))
	res.Complete, res.Sent = cl.Recorder.Complete()
	return res, nil
}

// Print writes the figure as an aligned text series.
func (r Figure5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5 — average ABcast latency vs send time (n=%d, %0.f msg/s/stack, %d-byte payloads)\n",
		r.Config.N, r.Config.RatePerStack, r.Config.PayloadSize)
	fmt.Fprintf(w, "replacement: %s -> %s, triggered at %v, completed everywhere at %v (window %v)\n",
		r.Config.Protocol, r.Config.NewProtocol, r.SwitchStart.Round(time.Millisecond),
		r.SwitchDone.Round(time.Millisecond), (r.SwitchDone - r.SwitchStart).Round(time.Millisecond))
	fmt.Fprintf(w, "%12s %8s %12s %12s %12s\n", "t[ms]", "msgs", "avg[ms]", "p95[ms]", "max[ms]")
	for _, b := range r.Bins {
		marker := ""
		if b.Offset <= r.SwitchStart && r.SwitchStart < b.Offset+r.Config.Bin {
			marker = "  <- replacement triggered"
		}
		fmt.Fprintf(w, "%12d %8d %12.2f %12.2f %12.2f%s\n",
			b.Offset.Milliseconds(), b.Count, ms(b.Avg), ms(b.P95), ms(b.Max), marker)
	}
	fmt.Fprintf(w, "baseline avg %0.2f ms | during replacement %0.2f ms (%+0.1f%%) | after %0.2f ms\n",
		ms(r.BaselineAvg), ms(r.DuringAvg), r.OverheadPct(), ms(r.AfterAvg))
	fmt.Fprintf(w, "messages: %d sent, %d fully delivered\n", r.Sent, r.Complete)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Figure6Config parameterises the latency-vs-load experiment (paper
// Figure 6): for each group size and each offered load, measure the
// average latency (1) without the replacement layer, (2) with the
// layer in normal operation, and (3) for messages sent while a
// replacement is in progress.
type Figure6Config struct {
	Ns          []int
	Loads       []float64 // total group load, messages per second
	PayloadSize int
	Duration    time.Duration // per measurement point
	Protocol    string
	Seed        int64
}

func (c Figure6Config) withDefaults() Figure6Config {
	if len(c.Ns) == 0 {
		c.Ns = []int{3, 7}
	}
	if len(c.Loads) == 0 {
		// The top of the sweep sits just below the n=7 saturation knee;
		// beyond it the system is overloaded and latencies explode (the
		// steep right edge of the paper's Figure 6).
		c.Loads = []float64{50, 100, 200, 350, 500}
	}
	if c.PayloadSize <= 0 {
		c.PayloadSize = 1024
	}
	if c.Duration <= 0 {
		c.Duration = 1500 * time.Millisecond
	}
	if c.Protocol == "" {
		c.Protocol = abcast.ProtocolCT
	}
	return c
}

// Figure6Point is one row of the regenerated Figure 6.
type Figure6Point struct {
	N         int
	Load      float64 // total msgs/s offered to the group
	NoLayer   time.Duration
	WithLayer time.Duration
	During    time.Duration
	// Counts of messages behind each column, for confidence.
	NoLayerN, WithLayerN, DuringN int
}

// LayerOverheadPct is the overhead of adding the replacement layer.
func (p Figure6Point) LayerOverheadPct() float64 {
	if p.NoLayer == 0 {
		return 0
	}
	return 100 * (float64(p.WithLayer) - float64(p.NoLayer)) / float64(p.NoLayer)
}

// RunFigure6 executes the sweep.
func RunFigure6(cfg Figure6Config) ([]Figure6Point, error) {
	cfg = cfg.withDefaults()
	var out []Figure6Point
	for _, n := range cfg.Ns {
		for _, load := range cfg.Loads {
			p := Figure6Point{N: n, Load: load}
			rate := load / float64(n)

			lat, cnt, err := steadyState(ManagerNone, n, rate, cfg, 1)
			if err != nil {
				return nil, err
			}
			p.NoLayer, p.NoLayerN = lat, cnt

			lat, cnt, err = steadyState(ManagerRepl, n, rate, cfg, 2)
			if err != nil {
				return nil, err
			}
			p.WithLayer, p.WithLayerN = lat, cnt

			lat, cnt, err = duringReplacement(n, rate, cfg, 3)
			if err != nil {
				return nil, err
			}
			p.During, p.DuringN = lat, cnt
			out = append(out, p)
		}
	}
	return out, nil
}

// steadyState measures the mean latency at a fixed load.
func steadyState(mgr Manager, n int, rate float64, cfg Figure6Config, salt int64) (time.Duration, int, error) {
	cl, err := BuildCluster(ClusterConfig{
		N: n, Manager: mgr, Protocol: cfg.Protocol, Net: LANProfile(cfg.Seed + salt),
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	gen := workload.NewGenerator(n,
		workload.Config{RatePerStack: rate, PayloadSize: cfg.PayloadSize},
		cl.Recorder, cl.Broadcast)
	gen.Start()
	time.Sleep(cfg.Duration)
	gen.Stop()
	cl.WaitQuiesce(10 * time.Second)
	results := cl.Recorder.Results()
	// Skip the warm-up fifth.
	if len(results) > 5 {
		results = results[len(results)/5:]
	}
	var lats []time.Duration
	for _, r := range results {
		lats = append(lats, r.Avg)
	}
	return metrics.Mean(lats), len(lats), nil
}

// duringReplacement measures the mean latency of messages sent inside
// replacement windows, triggering repeated switches during the run.
func duringReplacement(n int, rate float64, cfg Figure6Config, salt int64) (time.Duration, int, error) {
	cl, err := BuildCluster(ClusterConfig{
		N: n, Manager: ManagerRepl, Protocol: cfg.Protocol, Net: LANProfile(cfg.Seed + salt),
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	gen := workload.NewGenerator(n,
		workload.Config{RatePerStack: rate, PayloadSize: cfg.PayloadSize},
		cl.Recorder, cl.Broadcast)
	gen.Start()
	type window struct{ from, to time.Time }
	var windows []window
	deadline := time.Now().Add(cfg.Duration)
	var sn uint64
	for time.Now().Before(deadline) {
		time.Sleep(cfg.Duration / 8)
		trigger := cl.ChangeProtocol(0, cfg.Protocol)
		doneAt, ok := cl.WaitSwitched(sn, 10*time.Second)
		if !ok {
			gen.Stop()
			return 0, 0, fmt.Errorf("experiments: replacement %d stalled", sn+1)
		}
		sn++
		// The window covers the switch plus one typical delivery time,
		// so messages whose latency the switch affected are included
		// even when the window itself is only a few milliseconds.
		windows = append(windows, window{from: trigger, to: doneAt.Add(15 * time.Millisecond)})
	}
	gen.Stop()
	cl.WaitQuiesce(10 * time.Second)
	var lats []time.Duration
	for _, r := range cl.Recorder.Results() {
		for _, w := range windows {
			if !r.SentAt.Before(w.from) && r.SentAt.Before(w.to) {
				lats = append(lats, r.Avg)
				break
			}
		}
	}
	return metrics.Mean(lats), len(lats), nil
}

// PrintFigure6 writes the sweep as an aligned table.
func PrintFigure6(w io.Writer, cfg Figure6Config, points []Figure6Point) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Figure 6 — average ABcast latency vs load (%s, %dB payloads)\n", cfg.Protocol, cfg.PayloadSize)
	fmt.Fprintf(w, "%4s %10s | %14s %14s %9s | %14s\n",
		"n", "load[m/s]", "no-layer[ms]", "with-layer[ms]", "ovhd", "during[ms]")
	for _, p := range points {
		fmt.Fprintf(w, "%4d %10.0f | %14.2f %14.2f %8.1f%% | %14.2f\n",
			p.N, p.Load, ms(p.NoLayer), ms(p.WithLayer), p.LayerOverheadPct(), ms(p.During))
	}
}
