// Package stacktest assembles multi-stack groups over a simnet fabric
// for the module test suites: one registry shared by n stacks, helpers
// to create protocols on every stack and to wait for cross-stack
// conditions with a deadline.
package stacktest

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Cluster is a group of stacks wired to one fabric.
type Cluster struct {
	T      *testing.T
	Net    *simnet.Network
	Tr     transport.Transport // Net wrapped as a transport, for udp.Factory
	Reg    *kernel.Registry
	Stacks []*kernel.Stack
}

// New builds n stacks over a fabric with the given config. The caller
// registers factories on c.Reg and then calls CreateAll.
func New(t *testing.T, n int, netCfg simnet.Config, tracer kernel.Tracer) *Cluster {
	t.Helper()
	c := &Cluster{
		T:   t,
		Net: simnet.New(netCfg),
		Reg: kernel.NewRegistry(),
	}
	c.Tr = transport.Sim(c.Net)
	peers := make([]kernel.Addr, n)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	for i := 0; i < n; i++ {
		st := kernel.NewStack(kernel.Config{
			Addr:     kernel.Addr(i),
			Peers:    peers,
			Registry: c.Reg,
			Tracer:   tracer,
			Seed:     int64(netCfg.Seed) + int64(i),
		})
		c.Stacks = append(c.Stacks, st)
	}
	t.Cleanup(c.Close)
	return c
}

// CreateAll instantiates the protocol (with its create_module
// recursion) on every stack.
func (c *Cluster) CreateAll(protocol string) {
	c.T.Helper()
	for i, st := range c.Stacks {
		err := st.DoSync(func() {
			if _, e := st.CreateProtocol(protocol); e != nil {
				c.T.Errorf("stack %d: CreateProtocol(%q): %v", i, protocol, e)
			}
		})
		if err != nil {
			c.T.Fatalf("stack %d: %v", i, err)
		}
	}
}

// Close shuts everything down.
func (c *Cluster) Close() {
	c.Net.Close()
	for _, st := range c.Stacks {
		if st.Running() {
			st.Close()
		}
	}
}

// Eventually polls cond until it returns true or the deadline passes.
// cond runs on the caller's goroutine; use stack-safe accessors inside.
func (c *Cluster) Eventually(d time.Duration, what string, cond func() bool) {
	c.T.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.T.Fatalf("timed out after %v waiting for %s", d, what)
}

// OnSync runs fn on stack i's executor and waits.
func (c *Cluster) OnSync(i int, fn func()) {
	c.T.Helper()
	if err := c.Stacks[i].DoSync(fn); err != nil {
		c.T.Fatalf("stack %d: %v", i, err)
	}
}
