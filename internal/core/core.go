// Package core implements the paper's primary contribution: dynamic
// protocol update (DPU) of atomic broadcast by a replacement module
// (Repl) that adds a level of indirection between service callers and
// the protocol providing the service (Section 4), plus the replacement
// algorithm of Section 5 (Algorithm 1).
//
// Structure (Figure 3): applications and dependent protocols (e.g.
// group membership) call the public "abcast" service, which is provided
// by Repl. Repl intercepts every call and every response: calls are
// wrapped in a replacement header and forwarded to the inner
// "abcast/impl" service; inner deliveries are unwrapped, filtered and
// re-indicated upward. Protocol modules are never aware that a
// replacement takes place, and the algorithm depends only on the
// *specification* of atomic broadcast, never on an implementation.
//
// Algorithm 1 (per stack):
//
//	rABcast(m):            undelivered ∪= {m}; ABcast(nil, sn, m)
//	changeABcast(prot):    ABcast(newABcast, sn, prot)
//	Adeliver(newABcast, sn', prot), sn' = sn:
//	    sn++; unbind current module; create_module(prot); bind it;
//	    reissue every m ∈ undelivered with the new sn
//	Adeliver(nil, sn', m): if sn' = sn { undelivered \= {m}; rAdeliver(m) }
//
// The sn filter on nil messages is the paper's line 18; we apply the
// same filter to newABcast messages so that two changes racing in the
// same epoch resolve identically on every stack (the first in the old
// protocol's total order wins; a stale change is discarded and, when
// this stack initiated it, transparently retried in the new epoch).
//
// The old module is unbound but NOT removed — the paper's model lets an
// unbound module keep responding — so the old protocol's stream keeps
// delivering (and being filtered) until it drains; the module is retired
// after a configurable grace period.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/abcast"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// deliveryCounter counts totally-ordered deliveries indicated by the
// replacement layer (batch payloads counted individually). Its
// windowed rate is the throughput signal the adaptation layer samples.
var deliveryCounter = metrics.NewCounter("core.deliveries")

// ErrUnknownProtocol is returned (wrapped) through ChangeProtocol.Reply
// when the requested implementation name is not in the registry.
var ErrUnknownProtocol = errors.New("core: unknown abcast implementation")

// Service is the public atomic-broadcast service provided by the
// replacement module. Applications and dependent protocols call and
// subscribe to this service and never touch abcast.ServiceImpl.
const Service kernel.ServiceID = "abcast"

// Protocol is the protocol name of the replacement module.
const Protocol = "dpu/repl"

// Broadcast is the rABcast request: atomically broadcast Data.
type Broadcast struct {
	Data []byte
}

// ChangeProtocol is the changeABcast request: replace the running
// atomic-broadcast implementation, on every stack, by the named one.
type ChangeProtocol struct {
	Protocol string
	// Reply, when non-nil, is invoked on the stack's executor once the
	// replacement requested by THIS call completes locally (carrying the
	// resulting Switched event) or fails. The request is validated
	// against the implementation registry before it is broadcast, so an
	// unknown name fails immediately with ErrUnknownProtocol. A request
	// that loses the race against a concurrent change is transparently
	// retried (Config.RetryLostChange) and replies when the retry wins;
	// with retries disabled it replies with an error.
	Reply func(ChangeReply)
}

// ChangeReply reports the outcome of a tracked ChangeProtocol request.
type ChangeReply struct {
	Ev  Switched
	Err error
}

// EpochWaitReq parks until this stack's seqNumber reaches Epoch, then
// replies with the stack's status on the executor. A request for an
// already-reached epoch replies immediately. This is the observable
// switch-completion barrier Algorithm 1 defines but the original API
// hid: "the replacement completes on a machine when seqNumber
// advances".
type EpochWaitReq struct {
	Epoch uint64
	Reply func(Status)
	// Done, when non-nil, marks the request as abandoned once closed
	// (typically a context's Done channel): the parked waiter is pruned
	// on later switch/wait activity instead of being retained forever.
	Done <-chan struct{}
}

// Deliver is the rAdeliver indication: Data is delivered in the same
// total order on every stack, across protocol replacements.
type Deliver struct {
	Origin kernel.Addr
	Data   []byte
}

// Switched is indicated (in delivery order) when this stack completes a
// replacement: the moment line 10-16 of Algorithm 1 ran locally.
type Switched struct {
	// Sn is the new value of seqNumber (the new epoch).
	Sn uint64
	// Protocol is the implementation now bound.
	Protocol string
	// At is when the switch completed on this stack.
	At time.Time
	// Reissued counts undelivered messages re-broadcast through the new
	// protocol (Algorithm 1, lines 15-16).
	Reissued int
}

// StatusReq asks for a snapshot of the replacement layer's state,
// delivered through Reply on the executor.
type StatusReq struct {
	Reply func(Status)
}

// Status describes the replacement layer on one stack.
type Status struct {
	Sn          uint64
	Protocol    string
	Undelivered int
	// ViewID and Members describe the installed membership view; the
	// EpochWaitReq barrier therefore doubles as a view barrier (a view
	// change advances Sn).
	ViewID  uint64
	Members []kernel.Addr
}

// Config configures the replacement module.
type Config struct {
	// InitialProtocol names the implementation installed at boot (epoch
	// InitialEpoch).
	InitialProtocol string
	// InitialEpoch is the replacement layer's seqNumber at boot. Founders
	// start at 0; a node joining a running group boots at the epoch its
	// join committed in, so its first implementation instance plugs
	// straight into the post-join epoch's traffic.
	InitialEpoch uint64
	// InitialViewID is the installed-view count at boot (see ViewChange).
	InitialViewID uint64
	// InitialNextID seeds the deterministic member-id allocator; it is
	// raised to max(peer)+1 automatically. Joiners receive the group's
	// current value through the join handshake.
	InitialNextID kernel.Addr
	// Endpoints maps the boot membership to transport endpoints, where
	// known; view changes keep it current and feed it to the transport's
	// routing state.
	Endpoints map[kernel.Addr]string
	// Impls resolves implementation names (abcast.StandardRegistry plus
	// any custom protocols).
	Impls *abcast.Registry
	// Grace is how long an unbound (old) module keeps running before
	// being removed from the stack, so its stream can drain.
	Grace time.Duration
	// RetryLostChange re-issues this stack's own change request when it
	// lost the race against a concurrent change in the same epoch.
	RetryLostChange bool
	// BatchDelay, when > 0, enables sender-side batching: Broadcast
	// payloads accumulate for at most BatchDelay (or until BatchBytes)
	// and go out as ONE inner atomic broadcast, so one dissemination,
	// one consensus slot and one ack cycle amortize over many
	// application messages. Delivery unpacks the batch in order, so the
	// public stream is unchanged except for latency ≤ BatchDelay. All
	// stacks of a group must agree on whether batching is enabled only
	// in the sense that receivers always understand both framings; the
	// knob is per-stack.
	BatchDelay time.Duration
	// BatchBytes flushes a batch early once its packed payloads reach
	// this size (default 32 KiB when batching is enabled).
	BatchBytes int
}

func (c Config) withDefaults() Config {
	if c.InitialProtocol == "" {
		c.InitialProtocol = abcast.ProtocolCT
	}
	if c.Impls == nil {
		c.Impls = abcast.StandardRegistry()
	}
	if c.Grace <= 0 {
		c.Grace = 500 * time.Millisecond
	}
	if c.BatchBytes > 0 && c.BatchDelay <= 0 {
		// Size-only batching still needs a flush deadline, or a lone
		// trailing payload would sit in the open batch forever.
		c.BatchDelay = time.Millisecond
	}
	if c.BatchDelay > 0 && c.BatchBytes <= 0 {
		c.BatchBytes = 32 << 10
	}
	// Cap the batch so that, with the rbcast record and rp2p/udp/
	// transport headers on top, one batch always fits a real UDP
	// datagram (transport.MaxDatagram) — an oversized record would be
	// silently unsendable over real sockets.
	const maxBatchBytesCap = 48 << 10
	if c.BatchBytes > maxBatchBytesCap {
		c.BatchBytes = maxBatchBytesCap
	}
	return c
}

const (
	tagNil   byte = 0 // ordinary rABcast message
	tagNew   byte = 1 // replacement request
	tagBatch byte = 2 // packed batch of rABcast messages (sender-side batching)
	tagView  byte = 3 // membership change (view-driven epoch bump; see view.go)
)

type msgID struct {
	origin kernel.Addr
	seq    uint64
}

// pendingSet is the ordered undelivered set: insertion order is the
// reissue order; removal is O(1) with lazy compaction.
type pendingSet struct {
	order []msgID
	data  map[msgID][]byte
}

func newPendingSet() *pendingSet {
	return &pendingSet{data: make(map[msgID][]byte)}
}

func (s *pendingSet) add(id msgID, data []byte) {
	if _, dup := s.data[id]; dup {
		return
	}
	s.data[id] = data
	s.order = append(s.order, id)
}

func (s *pendingSet) remove(id msgID) bool {
	if _, ok := s.data[id]; !ok {
		return false
	}
	delete(s.data, id)
	if len(s.order) > 2*len(s.data) && len(s.order) > 64 {
		kept := s.order[:0]
		for _, d := range s.order {
			if _, ok := s.data[d]; ok {
				kept = append(kept, d)
			}
		}
		s.order = kept
	}
	return true
}

func (s *pendingSet) len() int { return len(s.data) }

// each visits live entries in insertion order.
func (s *pendingSet) each(fn func(id msgID, data []byte)) {
	for _, id := range s.order {
		if d, ok := s.data[id]; ok {
			fn(id, d)
		}
	}
}

// epochWaiter is one parked EpochWaitReq.
type epochWaiter struct {
	epoch uint64
	reply func(Status)
	done  <-chan struct{}
}

// abandoned reports whether the waiter's requester has given up.
func (w epochWaiter) abandoned() bool {
	if w.done == nil {
		return false
	}
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// Repl is the replacement module (Algorithm 1).
type Repl struct {
	kernel.Base
	cfg Config

	sn          uint64
	mseq        uint64
	undelivered *pendingSet
	cur         kernel.Module
	curName     string

	// changeSeq numbers this stack's own change requests so a completed
	// switch can be correlated back to the call that asked for it (the
	// request id travels in the tagNew/tagView header, initiator-scoped).
	changeSeq      uint64
	pendingChanges map[uint64]func(ChangeReply)
	pendingViews   map[uint64]func(ViewReply)
	epochWaiters   []epochWaiter

	// view is the ordered membership state (see view.go).
	view viewState

	// Sender-side batching state (Config.BatchDelay > 0): payloads
	// accumulate as length-prefixed records in batch until a flush.
	batch      *wire.Writer
	batchTimer *kernel.Timer
}

// Factory returns the kernel factory for the replacement module. The
// initial implementation's substrate requirements are resolved in Start
// through the stack's registry (create_module recursion), so Requires
// here only lists what every implementation path needs transitively.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		New: func(st *kernel.Stack) kernel.Module {
			m := &Repl{
				Base:           kernel.NewBase(st, Protocol),
				cfg:            cfg,
				sn:             cfg.InitialEpoch,
				undelivered:    newPendingSet(),
				pendingChanges: make(map[uint64]func(ChangeReply)),
				pendingViews:   make(map[uint64]func(ViewReply)),
			}
			m.initViewState()
			return m
		},
	}
}

// Start subscribes to the inner service and installs the initial
// implementation (epoch 0).
func (m *Repl) Start() {
	m.Stk.Subscribe(abcast.ServiceImpl, m)
	if err := m.install(m.cfg.InitialProtocol); err != nil {
		m.Stk.Logf("repl: installing %q: %v", m.cfg.InitialProtocol, err)
	}
}

// Stop retires the current implementation and detaches.
func (m *Repl) Stop() {
	if m.batchTimer != nil {
		m.batchTimer.Stop()
		m.batchTimer = nil
	}
	m.Stk.Unsubscribe(abcast.ServiceImpl, m)
	if m.cur != nil {
		cur := m.cur
		m.cur = nil
		m.Stk.RemoveModule(cur.ID())
	}
}

// install is create_module(prot) (Algorithm 1, lines 22-28): construct
// the implementation for the current epoch, add it to the stack, bind
// it to the inner service (flushing calls parked during the unbound
// window), ensure its required services exist, and start it.
func (m *Repl) install(name string) error {
	im, ok := m.cfg.Impls.Lookup(name)
	if !ok {
		return fmt.Errorf("core: unknown abcast implementation %q", name)
	}
	for _, svc := range im.Requires {
		if err := m.Stk.EnsureService(svc); err != nil {
			return fmt.Errorf("core: ensuring %q for %q: %w", svc, name, err)
		}
	}
	mod := im.New(m.Stk, m.sn)
	if err := m.Stk.AddModule(mod); err != nil {
		return err
	}
	if err := m.Stk.Bind(abcast.ServiceImpl, mod); err != nil {
		m.Stk.RemoveModule(mod.ID())
		return err
	}
	mod.Start()
	m.cur = mod
	m.curName = name
	return nil
}

// HandleRequest processes Broadcast (rABcast), ChangeProtocol
// (changeABcast), StatusReq and EpochWaitReq.
func (m *Repl) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Broadcast:
		m.rABcast(r.Data)
	case ChangeProtocol:
		m.requestChange(r)
	case ChangeView:
		m.requestView(r)
	case StatusReq:
		if r.Reply != nil {
			r.Reply(m.status())
		}
	case EpochWaitReq:
		if r.Reply == nil {
			return
		}
		if m.sn >= r.Epoch {
			r.Reply(m.status())
			return
		}
		// Prune abandoned waiters before parking a new one, so a caller
		// polling for an epoch that never comes cannot grow the slice
		// without bound.
		m.pruneEpochWaiters()
		m.epochWaiters = append(m.epochWaiters, epochWaiter{epoch: r.Epoch, reply: r.Reply, done: r.Done})
	}
}

func (m *Repl) status() Status {
	return Status{
		Sn: m.sn, Protocol: m.curName, Undelivered: m.undelivered.len(),
		ViewID: m.view.seq, Members: m.snapshotMembers(),
	}
}

// requestChange validates and tracks a local change request, then
// broadcasts it (changeABcast). Unknown names fail before anything is
// sent, so a typo can never circulate through the group.
func (m *Repl) requestChange(r ChangeProtocol) {
	if _, known := m.cfg.Impls.Lookup(r.Protocol); !known {
		err := fmt.Errorf("%w %q", ErrUnknownProtocol, r.Protocol)
		if r.Reply != nil {
			r.Reply(ChangeReply{Err: err})
		} else {
			m.Stk.Logf("repl: %v", err)
		}
		return
	}
	m.changeSeq++
	if r.Reply != nil {
		m.pendingChanges[m.changeSeq] = r.Reply
	}
	m.changeABcast(r.Protocol, m.changeSeq)
}

// rABcast: lines 7-9 of Algorithm 1. With batching enabled the payload
// joins the open batch instead of going out on its own; the batch as a
// whole then follows the exact same undelivered/reissue lifecycle as a
// single message would.
func (m *Repl) rABcast(data []byte) {
	if m.cfg.BatchDelay > 0 {
		m.batchAppend(data)
		return
	}
	m.mseq++
	id := msgID{origin: m.Stk.Addr(), seq: m.mseq}
	m.undelivered.add(id, data)
	m.innerBroadcast(m.encodeNil(id, data))
}

// batchAppend adds one payload to the open batch, opening it (and
// arming the flush timer) if needed, and flushes on the size threshold.
func (m *Repl) batchAppend(data []byte) {
	if m.batch == nil {
		m.batch = wire.NewWriter(m.cfg.BatchBytes + 256)
		m.batchTimer = m.Stk.After(m.cfg.BatchDelay, m.onBatchTimer)
	}
	m.batch.BytesField(data)
	if m.batch.Len() >= m.cfg.BatchBytes {
		m.flushBatch()
	}
}

func (m *Repl) onBatchTimer() { m.flushBatch() }

// flushBatch closes the open batch: it becomes one undelivered message
// (so a switch reissues it, once, through the new epoch) and goes out
// as one inner broadcast.
func (m *Repl) flushBatch() {
	if id, blob, ok := m.closeBatch(); ok {
		m.innerBroadcast(m.encodeBatch(id, blob))
	}
}

// closeBatchForReissue closes the open batch into the undelivered set
// without broadcasting it; the caller is about to reissue the whole
// set.
func (m *Repl) closeBatchForReissue() {
	m.closeBatch()
}

func (m *Repl) closeBatch() (msgID, []byte, bool) {
	if m.batch == nil {
		return msgID{}, nil, false
	}
	if m.batchTimer != nil {
		m.batchTimer.Stop()
		m.batchTimer = nil
	}
	blob := m.batch.Bytes()
	m.batch = nil
	m.mseq++
	id := msgID{origin: m.Stk.Addr(), seq: m.mseq}
	m.undelivered.add(id, blob)
	return id, blob, true
}

// changeABcast: lines 5-6 of Algorithm 1. reqID is the initiator-local
// request number, echoed back in the delivered change so the completed
// switch can be matched to the originating ChangeProtocol call.
func (m *Repl) changeABcast(name string, reqID uint64) {
	w := wire.NewWriter(len(name) + 24)
	w.Byte(tagNew).Uvarint(m.sn).Uvarint(uint64(m.Stk.Addr())).Uvarint(reqID).String(name)
	m.innerBroadcast(w.Bytes())
}

func (m *Repl) encodeNil(id msgID, data []byte) []byte {
	w := wire.NewWriter(len(data) + 24)
	w.Byte(tagNil).Uvarint(m.sn).Uvarint(uint64(id.origin)).Uvarint(id.seq).Raw(data)
	return w.Bytes()
}

// encodeBatch frames a packed record blob; the records were encoded
// once when appended, so the payloads cross this layer with one copy.
func (m *Repl) encodeBatch(id msgID, blob []byte) []byte {
	w := wire.NewWriter(len(blob) + 24)
	w.Byte(tagBatch).Uvarint(m.sn).Uvarint(uint64(id.origin)).Uvarint(id.seq).Raw(blob)
	return w.Bytes()
}

// encodePending encodes one undelivered entry for (re)broadcast. With
// batching enabled every entry is a packed batch; without it, a plain
// message.
func (m *Repl) encodePending(id msgID, data []byte) []byte {
	if m.cfg.BatchDelay > 0 {
		return m.encodeBatch(id, data)
	}
	return m.encodeNil(id, data)
}

func (m *Repl) innerBroadcast(encoded []byte) {
	m.Stk.Call(abcast.ServiceImpl, abcast.Broadcast{Data: encoded})
}

// HandleIndication processes Adeliver events from the inner service —
// from the bound module or from an unbound old module still draining.
func (m *Repl) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc != abcast.ServiceImpl {
		return
	}
	d, ok := ind.(abcast.Deliver)
	if !ok {
		return
	}
	r := wire.NewReader(d.Data)
	tag := r.Byte()
	sn := r.Uvarint()
	switch tag {
	case tagNew:
		initiator := kernel.Addr(r.Uvarint())
		reqID := r.Uvarint()
		name := r.String()
		if r.Err() != nil {
			return
		}
		m.onChange(sn, initiator, reqID, name)
	case tagNil:
		id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
		data := r.Rest()
		if r.Err() != nil {
			return
		}
		m.onDeliver(sn, id, data)
	case tagBatch:
		id := msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
		blob := r.Rest()
		if r.Err() != nil {
			return
		}
		m.onDeliverBatch(sn, id, blob)
	case tagView:
		initiator := kernel.Addr(r.Uvarint())
		reqID := r.Uvarint()
		op := ViewOp(r.Byte())
		assign := r.Byte() != 0
		member := kernel.Addr(r.Uvarint())
		endpoint := r.String()
		if r.Err() != nil {
			return
		}
		m.onView(sn, initiator, reqID, op, assign, member, endpoint)
	}
}

// onDeliverBatch is onDeliver for a packed batch: the batch follows
// lines 17-21 of Algorithm 1 as ONE message (sn filter, undelivered
// removal), then unpacks into per-payload rAdeliver indications in
// packing order.
func (m *Repl) onDeliverBatch(sn uint64, id msgID, blob []byte) {
	if sn != m.sn {
		return // stale protocol's delivery, discarded
	}
	if id.origin == m.Stk.Addr() {
		m.undelivered.remove(id)
	}
	r := wire.NewReader(blob)
	for r.Err() == nil && r.Remaining() > 0 {
		rec := r.BytesField()
		if r.Err() != nil {
			return
		}
		deliveryCounter.Add(1)
		m.Stk.Indicate(Service, Deliver{Origin: id.origin, Data: rec})
	}
}

// failChange resolves a tracked local change request with an error.
func (m *Repl) failChange(reqID uint64, err error) {
	reply, ok := m.pendingChanges[reqID]
	if !ok {
		return
	}
	delete(m.pendingChanges, reqID)
	reply(ChangeReply{Err: err})
}

// pruneEpochWaiters drops waiters whose requester has abandoned them.
func (m *Repl) pruneEpochWaiters() {
	kept := m.epochWaiters[:0]
	for _, w := range m.epochWaiters {
		if !w.abandoned() {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(m.epochWaiters); i++ {
		m.epochWaiters[i] = epochWaiter{} // release retained closures
	}
	m.epochWaiters = kept
}

// flushEpochWaiters releases every parked EpochWaitReq whose target
// epoch has been reached and prunes abandoned ones.
func (m *Repl) flushEpochWaiters() {
	if len(m.epochWaiters) == 0 {
		return
	}
	kept := m.epochWaiters[:0]
	for _, w := range m.epochWaiters {
		if w.abandoned() {
			continue
		}
		if m.sn >= w.epoch {
			w.reply(m.status())
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(m.epochWaiters); i++ {
		m.epochWaiters[i] = epochWaiter{}
	}
	m.epochWaiters = kept
}

// onChange: lines 10-16 of Algorithm 1.
func (m *Repl) onChange(sn uint64, initiator kernel.Addr, reqID uint64, name string) {
	mine := initiator == m.Stk.Addr()
	if sn != m.sn {
		// A change that lost the race against another change in the same
		// epoch. Every stack discards it at the same point of the total
		// order. If we initiated it, optionally retry in the new epoch
		// (keeping the request id, so the eventual win still resolves the
		// originating call).
		if mine {
			if m.cfg.RetryLostChange {
				m.changeABcast(name, reqID)
			} else {
				m.failChange(reqID, fmt.Errorf("core: change to %q lost the race in epoch %d", name, sn))
			}
		}
		return
	}
	// Validate before mutating: an unknown implementation name is
	// discarded consistently on every stack (registries must agree
	// across the group) without advancing the epoch.
	if _, known := m.cfg.Impls.Lookup(name); !known {
		m.Stk.Logf("repl: discarding change to unknown implementation %q", name)
		if mine {
			m.failChange(reqID, fmt.Errorf("%w %q", ErrUnknownProtocol, name))
		}
		return
	}
	// Line 11: seqNumber++.
	m.sn++
	// Line 12: unbind the current module. It stays in the stack and
	// keeps delivering its (now stale, sn-filtered) stream.
	old := m.cur
	m.Stk.Unbind(abcast.ServiceImpl)
	// Lines 13-14 and 22-28: create_module(prot) and bind.
	if err := m.install(name); err != nil {
		// Substrate wiring failed (configuration error): restore the old
		// binding so the service keeps operating.
		m.Stk.Logf("repl: change to %q failed: %v; keeping %q", name, err, m.curName)
		m.sn--
		if old != nil {
			if err := m.Stk.Bind(abcast.ServiceImpl, old); err != nil {
				m.Stk.Logf("repl: rebind failed: %v", err)
			}
			m.cur = old
		}
		if mine {
			m.failChange(reqID, fmt.Errorf("core: change to %q failed: %w", name, err))
		}
		return
	}
	// A batch still open at the switch joins the undelivered set now —
	// without a broadcast of its own, since the reissue below sends it —
	// so it crosses the epoch boundary exactly once. (On the
	// install-failure path above the batch stays open instead, and the
	// normal delay/size flush sends it through the retained epoch.)
	m.closeBatchForReissue()
	// Lines 15-16: reissue undelivered messages through the new module.
	// An undelivered batch is a single entry here: it is reissued
	// exactly once, as a whole, through the new epoch.
	reissued := 0
	m.undelivered.each(func(id msgID, data []byte) {
		m.innerBroadcast(m.encodePending(id, data))
		reissued++
	})
	// Retire the old module once its stream has had time to drain.
	if old != nil {
		oldID := old.ID()
		m.Stk.After(m.cfg.Grace, func() { m.Stk.RemoveModule(oldID) })
	}
	ev := Switched{Sn: m.sn, Protocol: name, At: m.Stk.Now(), Reissued: reissued}
	if mine {
		if reply, ok := m.pendingChanges[reqID]; ok {
			delete(m.pendingChanges, reqID)
			reply(ChangeReply{Ev: ev})
		}
	}
	m.flushEpochWaiters()
	m.Stk.Indicate(Service, ev)
}

// onDeliver: lines 17-21 of Algorithm 1.
func (m *Repl) onDeliver(sn uint64, id msgID, data []byte) {
	if sn != m.sn {
		return // line 18: stale protocol's delivery, discarded
	}
	if id.origin == m.Stk.Addr() {
		m.undelivered.remove(id) // lines 19-20
	}
	deliveryCounter.Add(1)
	m.Stk.Indicate(Service, Deliver{Origin: id.origin, Data: data}) // line 21
}
