package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/simnet"
)

// TestRandomizedSwitchSchedules is the package's scenario-level property
// test: for random seeds, generate a random interleaving of broadcasts
// and protocol switches (random initiators, random target protocols,
// random pauses) and assert the one invariant that must survive
// anything — every stack delivers the identical sequence, exactly once.
func TestRandomizedSwitchSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario property test")
	}
	protocols := []string{abcast.ProtocolCT, abcast.ProtocolSeq, abcast.ProtocolToken}
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			n := 3 + rng.Intn(2)*2 // 3 or 5
			c, sinks := buildDPU(t, n,
				simnet.Config{Seed: int64(trial), BaseLatency: 300 * time.Microsecond,
					Jitter: 300 * time.Microsecond, LossRate: float64(rng.Intn(8)) / 100},
				core.Config{InitialProtocol: protocols[rng.Intn(3)], Grace: 100 * time.Millisecond,
					RetryLostChange: true}, nil)
			sent := 0
			switches := 0
			for op := 0; op < 60; op++ {
				switch rng.Intn(10) {
				case 0, 1: // switch from a random stack to a random protocol
					if switches < 4 { // bound the churn so the run quiesces
						c.Stacks[rng.Intn(n)].Call(core.Service,
							core.ChangeProtocol{Protocol: protocols[rng.Intn(3)]})
						switches++
					}
				case 2: // short pause: let epochs overlap differently
					time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
				default:
					c.Stacks[rng.Intn(n)].Call(core.Service,
						core.Broadcast{Data: []byte(fmt.Sprintf("t%d-m%d", trial, sent))})
					sent++
				}
			}
			waitDelivered(t, c, sinks, sent, nil)
			checkIdenticalSequences(t, sinks, nil)
		})
	}
}
