// View changes: the replacement module is also the commit point for
// membership. A view operation (join / leave) travels through the inner
// atomic broadcast with the same epoch filter as a protocol change
// (tagNew), so every stack applies it at the same position of the total
// order — and applying it IS a protocol switch: seqNumber advances, the
// current implementation is reinstalled over the new peer set
// (kernel.Stack.SetPeers reconfigures rbcast destinations, rp2p peer
// state, fd monitors, consensus quorums and transport routes), and
// undelivered messages are reissued through the new epoch. A node that
// joins therefore lands on a coherent cut: the epoch boundary created
// by its own join, where every implementation instance starts fresh.
package core

import (
	"fmt"
	"time"

	"repro/internal/abcast"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// ViewOp is a membership operation kind.
type ViewOp byte

// Membership operation kinds.
const (
	// ViewJoin adds a member (optionally assigning a fresh id at the
	// commit point).
	ViewJoin ViewOp = 0
	// ViewLeave removes a member. A removed member that is still alive
	// observes its own eviction and stops participating.
	ViewLeave ViewOp = 1
)

// Membership counters, exported through the process-wide metrics
// registry (and dpu-bench -json).
var (
	viewsInstalledCounter = metrics.NewCounter("membership.views_installed")
	evictionsCounter      = metrics.NewCounter("membership.members_evicted")
)

// ChangeView requests a totally-ordered membership change. Like
// ChangeProtocol it is broadcast through the inner service and applied
// at its delivery point; unlike ChangeProtocol a request that loses the
// epoch race against a concurrent change is ALWAYS retried (the intent
// of a view operation is unconditional), terminating when the operation
// is applied or found to be a no-op against the then-current view.
type ChangeView struct {
	Op ViewOp
	// Member is the operand address. Ignored for Op == ViewJoin with
	// Assign set.
	Member kernel.Addr
	// Assign makes a join allocate a fresh member id deterministically
	// at the commit point (all stacks compute the same id), instead of
	// re-admitting a caller-chosen address.
	Assign bool
	// Endpoint is the transport endpoint of a joining member, admitted
	// into every stack's routing state when the view installs ("" over
	// implicit-routing fabrics).
	Endpoint string
	// Reply, when non-nil, is invoked on the executor once the change
	// requested by THIS call commits locally (possibly as a no-op) or
	// fails validation.
	Reply func(ViewReply)
}

// ViewReply reports the outcome of a tracked ChangeView request.
type ViewReply struct {
	Ev  ViewChange
	Err error
}

// ViewChange is indicated on Service (in delivery order) when a
// membership change commits on this stack; it is also the payload of
// ViewReply, where NoOp marks a request that matched the current view.
// Slices and maps are snapshots owned by the receiver's executor pass;
// GM republishes them upward as a gm.NewView.
type ViewChange struct {
	// ViewID counts installed views (0 = the founding view).
	ViewID uint64
	// Sn is the epoch after the change: every effective view change
	// advances the replacement layer's seqNumber.
	Sn uint64
	// Op and Member describe the applied operation.
	Op     ViewOp
	Member kernel.Addr
	// Members is the resulting membership (sorted).
	Members []kernel.Addr
	// Endpoints maps members to transport endpoints, where known.
	Endpoints map[kernel.Addr]string
	// Protocol is the implementation bound in the new epoch.
	Protocol string
	// NextID is the next member id a fresh join would be assigned —
	// part of the ordered state, so a joiner boots with the same
	// allocator position as the founders.
	NextID kernel.Addr
	// NoOp marks a ViewReply for an operation that did not change the
	// view (joining a present member, removing an absent one).
	NoOp bool
	// At is when the change committed on this stack.
	At time.Time
}

// viewState is the ordered membership state the replacement module
// carries alongside Algorithm 1's seqNumber. Every stack mutates it
// only at delivery points of the total order, so it is identical on
// every member at the same position of the stream.
type viewState struct {
	seq       uint64 // installed view count
	nextID    kernel.Addr
	endpoints map[kernel.Addr]string
}

// initViewState seeds the ordered membership state from the boot
// configuration (founders: zero values; joiners: the cut served by
// their sponsor).
func (m *Repl) initViewState() {
	m.view.seq = m.cfg.InitialViewID
	m.view.endpoints = make(map[kernel.Addr]string, len(m.cfg.Endpoints))
	for p, ep := range m.cfg.Endpoints {
		m.view.endpoints[p] = ep
	}
	m.view.nextID = m.cfg.InitialNextID
	for _, p := range m.Stk.Peers() {
		if p >= m.view.nextID {
			m.view.nextID = p + 1
		}
	}
}

// requestView validates and tracks a local view-change request, then
// broadcasts it through the inner service.
func (m *Repl) requestView(r ChangeView) {
	fail := func(err error) {
		if r.Reply != nil {
			r.Reply(ViewReply{Err: err})
		} else {
			m.Stk.Logf("repl: %v", err)
		}
	}
	switch {
	case r.Op != ViewJoin && r.Op != ViewLeave:
		fail(fmt.Errorf("core: unknown view operation %d", r.Op))
		return
	case r.Op == ViewLeave && r.Assign:
		fail(fmt.Errorf("core: leave cannot assign a member id"))
		return
	case r.Member < 0 && !r.Assign:
		fail(fmt.Errorf("core: negative member address %d", r.Member))
		return
	}
	m.changeSeq++
	if r.Reply != nil {
		m.pendingViews[m.changeSeq] = r.Reply
	}
	m.viewABcast(r.Op, r.Assign, r.Member, r.Endpoint, m.changeSeq)
}

// viewABcast broadcasts one encoded view operation in the current
// epoch; the epoch filter at delivery makes the commit point exact.
func (m *Repl) viewABcast(op ViewOp, assign bool, member kernel.Addr, endpoint string, reqID uint64) {
	var aFlag byte
	if assign {
		aFlag = 1
	}
	w := wire.NewWriter(len(endpoint) + 32)
	w.Byte(tagView).Uvarint(m.sn).Uvarint(uint64(m.Stk.Addr())).Uvarint(reqID).
		Byte(byte(op)).Byte(aFlag).Uvarint(uint64(member)).String(endpoint)
	m.innerBroadcast(w.Bytes())
}

// failView resolves a tracked local view request with an error.
func (m *Repl) failView(reqID uint64, err error) {
	reply, ok := m.pendingViews[reqID]
	if !ok {
		return
	}
	delete(m.pendingViews, reqID)
	reply(ViewReply{Err: err})
}

// snapshotMembers returns a sorted copy of the current membership.
func (m *Repl) snapshotMembers() []kernel.Addr {
	return append([]kernel.Addr(nil), m.Stk.Peers()...)
}

// snapshotEndpoints copies the endpoint map; the copy is what crosses
// into kernel.SetPeers and indications, so the ordered state stays
// private to the module.
func (m *Repl) snapshotEndpoints() map[kernel.Addr]string {
	out := make(map[kernel.Addr]string, len(m.view.endpoints))
	for p, ep := range m.view.endpoints {
		out[p] = ep
	}
	return out
}

// viewChangeEvent assembles the indication for the just-committed view.
func (m *Repl) viewChangeEvent(op ViewOp, member kernel.Addr, noOp bool) ViewChange {
	return ViewChange{
		ViewID:    m.view.seq,
		Sn:        m.sn,
		Op:        op,
		Member:    member,
		Members:   m.snapshotMembers(),
		Endpoints: m.snapshotEndpoints(),
		Protocol:  m.curName,
		NextID:    m.view.nextID,
		NoOp:      noOp,
		At:        m.Stk.Now(),
	}
}

// onView applies a delivered membership operation: the view-change
// analogue of onChange (Algorithm 1, lines 10-16), with the peer set
// swap in the middle.
func (m *Repl) onView(sn uint64, initiator kernel.Addr, reqID uint64, op ViewOp, assign bool, member kernel.Addr, endpoint string) {
	mine := initiator == m.Stk.Addr()
	if sn != m.sn {
		// Lost the epoch race against a concurrent change. The operation's
		// intent stands regardless of the epoch it commits in, so the
		// initiator always rebroadcasts into the new epoch (keeping the
		// request id so the eventual commit resolves the original call).
		if mine {
			m.viewABcast(op, assign, member, endpoint, reqID)
		}
		return
	}
	members := m.snapshotMembers()
	contains := func(p kernel.Addr) bool {
		for _, q := range members {
			if q == p {
				return true
			}
		}
		return false
	}
	if assign {
		member = m.view.nextID
	}
	var next []kernel.Addr
	switch op {
	case ViewJoin:
		if contains(member) {
			if mine {
				m.resolveView(reqID, m.viewChangeEvent(op, member, true))
			}
			return
		}
		next = append(members, member)
	case ViewLeave:
		if !contains(member) {
			if mine {
				m.resolveView(reqID, m.viewChangeEvent(op, member, true))
			}
			return
		}
		next = members[:0:0]
		for _, q := range members {
			if q != member {
				next = append(next, q)
			}
		}
	default:
		m.Stk.Logf("repl: discarding unknown view operation %d", op)
		if mine {
			m.failView(reqID, fmt.Errorf("core: unknown view operation %d", op))
		}
		return
	}

	// Commit: mutate the ordered state, advance the epoch, swap the peer
	// set, reinstall the implementation over it and reissue undelivered
	// messages — a protocol switch whose "new protocol" is the same
	// implementation over a new membership.
	prevMembers := members
	prevNextID := m.view.nextID
	prevEndpoint, hadEndpoint := m.view.endpoints[member]
	m.view.seq++
	if op == ViewJoin {
		if endpoint != "" {
			m.view.endpoints[member] = endpoint
		}
		if member >= m.view.nextID {
			m.view.nextID = member + 1
		}
	} else {
		delete(m.view.endpoints, member)
	}
	m.sn++
	old := m.cur
	m.Stk.Unbind(abcast.ServiceImpl)
	m.Stk.SetPeers(next, m.snapshotEndpoints())

	if op == ViewLeave && member == m.Stk.Addr() {
		// Self-eviction: this stack is out of the group. Retire the inner
		// implementation and stop participating — the final ViewChange is
		// still indicated so observers (GM, the dpu layer) see the view
		// they were removed in before the stack is retired above us.
		m.cur = nil
		m.curName = ""
		if old != nil {
			m.Stk.RemoveModule(old.ID())
		}
		m.Stk.Logf("repl: evicted from the view at epoch %d", m.sn)
		evictionsCounter.Add(1)
		ev := m.viewChangeEvent(op, member, false)
		if mine {
			m.resolveView(reqID, ev) // a self-requested departure still confirms
		}
		m.flushEpochWaiters()
		m.Stk.Indicate(Service, ev)
		return
	}

	if err := m.install(m.curName); err != nil {
		// Substrate wiring failed: roll the whole commit back — view
		// counter, id allocator and endpoint bookkeeping included — so
		// the service keeps operating on the old view.
		m.Stk.Logf("repl: view change failed: %v; keeping view %d", err, m.view.seq-1)
		m.view.seq--
		m.view.nextID = prevNextID
		if hadEndpoint {
			m.view.endpoints[member] = prevEndpoint
		} else {
			delete(m.view.endpoints, member)
		}
		m.sn--
		m.Stk.SetPeers(prevMembers, m.snapshotEndpoints())
		if old != nil {
			if err := m.Stk.Bind(abcast.ServiceImpl, old); err != nil {
				m.Stk.Logf("repl: rebind failed: %v", err)
			}
			m.cur = old
		}
		if mine {
			m.failView(reqID, fmt.Errorf("core: view change failed: %w", err))
		}
		return
	}
	m.closeBatchForReissue()
	reissued := 0
	m.undelivered.each(func(id msgID, data []byte) {
		m.innerBroadcast(m.encodePending(id, data))
		reissued++
	})
	if old != nil {
		oldID := old.ID()
		m.Stk.After(m.cfg.Grace, func() { m.Stk.RemoveModule(oldID) })
	}
	viewsInstalledCounter.Add(1)
	if op == ViewLeave {
		evictionsCounter.Add(1)
	}
	ev := m.viewChangeEvent(op, member, false)
	if mine {
		m.resolveView(reqID, ev)
	}
	m.flushEpochWaiters()
	m.Stk.Indicate(Service, ev)
	m.Stk.Indicate(Service, Switched{Sn: m.sn, Protocol: m.curName, At: ev.At, Reissued: reissued})
}

// resolveView completes a tracked local view request successfully.
func (m *Repl) resolveView(reqID uint64, ev ViewChange) {
	reply, ok := m.pendingViews[reqID]
	if !ok {
		return
	}
	delete(m.pendingViews, reqID)
	reply(ViewReply{Ev: ev})
}
