package core

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/wire"
)

// encView encodes one tagView wire message, mirroring viewABcast.
func encView(sn uint64, initiator kernel.Addr, reqID uint64, op ViewOp, assign bool, member kernel.Addr, endpoint string) []byte {
	var aFlag byte
	if assign {
		aFlag = 1
	}
	w := wire.NewWriter(len(endpoint) + 32)
	w.Byte(tagView).Uvarint(sn).Uvarint(uint64(initiator)).Uvarint(reqID).
		Byte(byte(op)).Byte(aFlag).Uvarint(uint64(member)).String(endpoint)
	return w.Bytes()
}

// pumpOwnBroadcasts feeds every message the bound mock has sent back as
// a delivery (a single-stack group's inner protocol does exactly this).
// Events cascade through the executor (a Call can enqueue further
// Calls), so the pump only stops after several consecutive settled
// empty reads.
func (r *rig) pumpOwnBroadcasts(t *testing.T) {
	t.Helper()
	empty := 0
	for empty < 3 {
		r.sync(t) // let queued inner Calls land in the mock
		var pending [][]byte
		if err := r.st.DoSync(func() {
			cur := r.cur()
			pending = cur.sent
			cur.sent = nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(pending) == 0 {
			empty++
			continue
		}
		empty = 0
		for _, msg := range pending {
			r.injectDeliver(msg)
		}
		r.sync(t)
	}
}

func TestViewJoinAssignBumpsEpochAndReinstalls(t *testing.T) {
	r := newRig(t, Config{})
	var got ViewReply
	done := make(chan struct{})
	r.st.Call(Service, ChangeView{
		Op: ViewJoin, Assign: true, Endpoint: "joiner:1",
		Reply: func(vr ViewReply) { got = vr; close(done) },
	})
	r.pumpOwnBroadcasts(t)
	<-done
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	ev := got.Ev
	// The single founder is addr 0, so the allocator assigns 1.
	if ev.Member != 1 || ev.Sn != 1 || ev.ViewID != 1 || ev.NoOp {
		t.Fatalf("join reply %+v", ev)
	}
	if fmt.Sprint(ev.Members) != "[0 1]" {
		t.Fatalf("members %v", ev.Members)
	}
	if ev.Endpoints[1] != "joiner:1" {
		t.Fatalf("endpoints %v", ev.Endpoints)
	}
	if ev.NextID != 2 {
		t.Fatalf("nextID %d", ev.NextID)
	}
	r.st.DoSync(func() {
		if fmt.Sprint(r.st.Peers()) != "[0 1]" {
			t.Errorf("stack peers %v", r.st.Peers())
		}
		if r.st.Endpoint(1) != "joiner:1" {
			t.Errorf("stack endpoint %q", r.st.Endpoint(1))
		}
	})
	// A view change is a reinstall: a second mock instance at epoch 1.
	if len(*r.mocks) != 2 || (*r.mocks)[1].epoch != 1 {
		t.Fatalf("mocks %d, epoch %d", len(*r.mocks), (*r.mocks)[1].epoch)
	}
	r.sync(t)
	if len(r.sink.views) != 1 || len(r.sink.switches) != 1 {
		t.Fatalf("views %d switches %d", len(r.sink.views), len(r.sink.switches))
	}
}

func TestViewLeaveOfAbsentMemberIsNoOp(t *testing.T) {
	r := newRig(t, Config{})
	var got ViewReply
	done := make(chan struct{})
	r.st.Call(Service, ChangeView{
		Op: ViewLeave, Member: 7,
		Reply: func(vr ViewReply) { got = vr; close(done) },
	})
	r.pumpOwnBroadcasts(t)
	<-done
	if got.Err != nil || !got.Ev.NoOp {
		t.Fatalf("reply %+v", got)
	}
	if got.Ev.Sn != 0 || got.Ev.ViewID != 0 {
		t.Fatalf("no-op advanced state: %+v", got.Ev)
	}
	if len(*r.mocks) != 1 {
		t.Fatalf("no-op reinstalled the implementation (%d instances)", len(*r.mocks))
	}
}

func TestViewOpLosingEpochRaceIsAlwaysRebroadcast(t *testing.T) {
	// Unlike ChangeProtocol, view ops retry even with RetryLostChange
	// unset: the operation's intent does not depend on the epoch.
	r := newRig(t, Config{RetryLostChange: false})
	r.st.DoSync(func() { r.repl.sn = 3 })
	r.injectDeliver(encView(2, 0, 9, ViewJoin, false, 5, "ep:5"))
	r.sync(t)
	var resent [][]byte
	r.st.DoSync(func() { resent = r.cur().sent })
	if len(resent) != 1 {
		t.Fatalf("lost view op rebroadcast %d times, want 1", len(resent))
	}
	rd := wire.NewReader(resent[0])
	if tag := rd.Byte(); tag != tagView {
		t.Fatalf("rebroadcast tag %d", tag)
	}
	if sn := rd.Uvarint(); sn != 3 {
		t.Fatalf("rebroadcast sn %d, want 3", sn)
	}
}

func TestSelfEvictionRetiresInnerModule(t *testing.T) {
	r := newRig(t, Config{})
	// Admit member 1, then deliver this stack's own eviction.
	r.st.Call(Service, ChangeView{Op: ViewJoin, Member: 1})
	r.pumpOwnBroadcasts(t)
	r.st.Call(Service, ChangeView{Op: ViewLeave, Member: 0})
	r.pumpOwnBroadcasts(t)
	r.sync(t)
	var (
		sn      uint64
		curNil  bool
		stopped bool
		peers   string
	)
	r.st.DoSync(func() {
		sn = r.repl.sn
		curNil = r.repl.cur == nil
		stopped = (*r.mocks)[1].stopped
		peers = fmt.Sprint(r.st.Peers())
	})
	if sn != 2 || !curNil || !stopped {
		t.Fatalf("self-eviction: sn=%d curNil=%v stopped=%v", sn, curNil, stopped)
	}
	if peers != "[1]" {
		t.Fatalf("peers after self-eviction %s", peers)
	}
	if len(r.sink.views) != 2 || fmt.Sprint(r.sink.views[1].Members) != "[1]" {
		t.Fatalf("views %+v", r.sink.views)
	}
}

func TestNextIDMonotonicAcrossLeaveAndRejoin(t *testing.T) {
	// Evicting the highest member must not make the allocator reuse its
	// id: a later Assign-join gets a fresh one.
	r := newRig(t, Config{})
	join := func(assign bool, member kernel.Addr) ViewChange {
		var got ViewReply
		done := make(chan struct{})
		r.st.Call(Service, ChangeView{
			Op: ViewJoin, Assign: assign, Member: member,
			Reply: func(vr ViewReply) { got = vr; close(done) },
		})
		r.pumpOwnBroadcasts(t)
		<-done
		if got.Err != nil {
			t.Fatal(got.Err)
		}
		return got.Ev
	}
	if ev := join(true, 0); ev.Member != 1 {
		t.Fatalf("first assign %+v", ev)
	}
	r.st.Call(Service, ChangeView{Op: ViewLeave, Member: 1})
	r.pumpOwnBroadcasts(t)
	if ev := join(true, 0); ev.Member != 2 {
		t.Fatalf("post-eviction assign got member %d, want 2", ev.Member)
	}
}

func TestChangeViewValidation(t *testing.T) {
	r := newRig(t, Config{})
	bad := []ChangeView{
		{Op: ViewOp(9)},
		{Op: ViewLeave, Assign: true},
		{Op: ViewJoin, Member: -1},
	}
	for i, req := range bad {
		errCh := make(chan error, 1)
		req.Reply = func(vr ViewReply) { errCh <- vr.Err }
		r.st.Call(Service, req)
		r.sync(t)
		select {
		case err := <-errCh:
			if err == nil {
				t.Errorf("case %d: invalid request accepted", i)
			}
		default:
			t.Errorf("case %d: no immediate reply", i)
		}
		var sent int
		r.st.DoSync(func() { sent = len(r.cur().sent) })
		if sent != 0 {
			t.Errorf("case %d: invalid request was broadcast", i)
		}
	}
}
