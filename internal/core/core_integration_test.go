package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/trace"
	"repro/internal/udp"
)

const timeout = 30 * time.Second

// appSink records rAdeliver and Switched indications on one stack.
type appSink struct {
	kernel.Base
	mu       sync.Mutex
	delivers []core.Deliver
	switches []core.Switched
}

func newAppSink(st *kernel.Stack) *appSink {
	return &appSink{Base: kernel.NewBase(st, "app-sink")}
}

func (s *appSink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch v := ind.(type) {
	case core.Deliver:
		s.delivers = append(s.delivers, v)
	case core.Switched:
		s.switches = append(s.switches, v)
	}
}

func (s *appSink) deliverCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivers)
}

func (s *appSink) switchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.switches)
}

func (s *appSink) deliveries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.delivers))
	for i, d := range s.delivers {
		out[i] = fmt.Sprintf("%d:%s", d.Origin, d.Data)
	}
	return out
}

// buildDPU assembles n stacks with the full Figure-4 stack plus Repl.
func buildDPU(t *testing.T, n int, netCfg simnet.Config, replCfg core.Config, tracer kernel.Tracer) (*stacktest.Cluster, []*appSink) {
	t.Helper()
	c := stacktest.New(t, n, netCfg, tracer)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	if replCfg.Grace == 0 {
		replCfg.Grace = 150 * time.Millisecond
	}
	c.Reg.MustRegister(core.Factory(replCfg))
	c.CreateAll(core.Protocol)
	sinks := make([]*appSink, n)
	for i := range sinks {
		i := i
		c.OnSync(i, func() {
			sinks[i] = newAppSink(c.Stacks[i])
			c.Stacks[i].AddModule(sinks[i])
			c.Stacks[i].Subscribe(core.Service, sinks[i])
		})
	}
	return c, sinks
}

func waitDelivered(t *testing.T, c *stacktest.Cluster, sinks []*appSink, want int, skip map[int]bool) {
	t.Helper()
	c.Eventually(timeout, fmt.Sprintf("%d deliveries on every live stack", want), func() bool {
		for i, s := range sinks {
			if skip[i] {
				continue
			}
			if s.deliverCount() < want {
				return false
			}
		}
		return true
	})
}

// checkIdenticalSequences asserts every live stack delivered exactly the
// same sequence (total order + agreement + integrity at quiescence).
func checkIdenticalSequences(t *testing.T, sinks []*appSink, skip map[int]bool) {
	t.Helper()
	var ref []string
	refIdx := -1
	for i, s := range sinks {
		if skip[i] {
			continue
		}
		got := s.deliveries()
		if ref == nil {
			ref, refIdx = got, i
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("stack %d delivered %d, stack %d delivered %d", i, len(got), refIdx, len(ref))
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("sequences diverge at %d: stack %d has %q, stack %d has %q",
					k, i, got[k], refIdx, ref[k])
			}
		}
	}
	// Integrity: no duplicates.
	seen := map[string]bool{}
	for _, d := range ref {
		if seen[d] {
			t.Fatalf("duplicate delivery %q", d)
		}
		seen[d] = true
	}
}

func TestBroadcastWithoutSwitch(t *testing.T) {
	c, sinks := buildDPU(t, 3, simnet.Config{}, core.Config{}, nil)
	for k := 0; k < 10; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
	}
	waitDelivered(t, c, sinks, 10, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestCTtoCTReplacementUnderLoad(t *testing.T) {
	// The paper's measured experiment: replace Chandra-Toueg ABcast by
	// the same protocol mid-run, under constant load.
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 31, BaseLatency: 500 * time.Microsecond},
		core.Config{InitialProtocol: abcast.ProtocolCT}, nil)
	stop := make(chan struct{})
	var sent int
	var mu sync.Mutex
	go func() {
		k := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
			mu.Lock()
			sent++
			mu.Unlock()
			k++
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolCT})
	c.Eventually(timeout, "all stacks switched", func() bool {
		for _, s := range sinks {
			if s.switchCount() != 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(30 * time.Millisecond)
	close(stop)
	mu.Lock()
	total := sent
	mu.Unlock()
	waitDelivered(t, c, sinks, total, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestSwitchMatrixPreservesTotalOrder(t *testing.T) {
	pairs := [][2]string{
		{abcast.ProtocolCT, abcast.ProtocolSeq},
		{abcast.ProtocolSeq, abcast.ProtocolToken},
		{abcast.ProtocolToken, abcast.ProtocolCT},
		{abcast.ProtocolSeq, abcast.ProtocolCT},
	}
	for _, pair := range pairs {
		pair := pair
		t.Run(fmt.Sprintf("%s_to_%s", pair[0], pair[1]), func(t *testing.T) {
			c, sinks := buildDPU(t, 3, simnet.Config{Seed: 32, BaseLatency: 500 * time.Microsecond},
				core.Config{InitialProtocol: pair[0]}, nil)
			const pre, post = 10, 10
			for k := 0; k < pre; k++ {
				c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("pre%d", k))})
			}
			c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: pair[1]})
			for k := 0; k < post; k++ {
				c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("post%d", k))})
			}
			c.Eventually(timeout, "switch everywhere", func() bool {
				for _, s := range sinks {
					if s.switchCount() != 1 {
						return false
					}
				}
				return true
			})
			waitDelivered(t, c, sinks, pre+post, nil)
			checkIdenticalSequences(t, sinks, nil)
			// Verify the switch actually took effect.
			for i := range sinks {
				got := make(chan core.Status, 1)
				c.Stacks[i].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
				s := <-got
				if s.Protocol != pair[1] || s.Sn != 1 {
					t.Errorf("stack %d status = %+v", i, s)
				}
			}
		})
	}
}

func TestChainOfSwitches(t *testing.T) {
	chain := []string{abcast.ProtocolSeq, abcast.ProtocolToken, abcast.ProtocolCT, abcast.ProtocolSeq}
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 33},
		core.Config{InitialProtocol: abcast.ProtocolCT, Grace: 80 * time.Millisecond}, nil)
	msgs := 0
	for step, next := range chain {
		for k := 0; k < 5; k++ {
			c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("s%d-m%d", step, k))})
			msgs++
		}
		c.Stacks[step%3].Call(core.Service, core.ChangeProtocol{Protocol: next})
		want := step + 1
		c.Eventually(timeout, fmt.Sprintf("switch %d everywhere", want), func() bool {
			for _, s := range sinks {
				if s.switchCount() < want {
					return false
				}
			}
			return true
		})
	}
	waitDelivered(t, c, sinks, msgs, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestApplicationNeverBlockedDuringSwitch(t *testing.T) {
	// The paper's claim vs Maestro: the application on top of the stack
	// is never blocked. Broadcast calls issued in the middle of the
	// switch window must all be accepted and eventually delivered.
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 34, BaseLatency: 2 * time.Millisecond},
		core.Config{InitialProtocol: abcast.ProtocolCT}, nil)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	// Immediately flood during the switch window.
	const burst = 30
	for k := 0; k < burst; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("mid%d", k))})
	}
	waitDelivered(t, c, sinks, burst, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestInitiatorCrashAfterChangeRequest(t *testing.T) {
	// The initiator crashes right after requesting the change. Uniform
	// agreement of the underlying ABcast guarantees the survivors agree
	// on whether the change happened; traffic must keep flowing either
	// way.
	c, sinks := buildDPU(t, 5, simnet.Config{Seed: 35, BaseLatency: time.Millisecond},
		core.Config{InitialProtocol: abcast.ProtocolCT}, nil)
	for k := 0; k < 5; k++ {
		c.Stacks[k%5].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("pre%d", k))})
	}
	waitDelivered(t, c, sinks, 5, nil)
	c.Stacks[2].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolCT})
	time.Sleep(5 * time.Millisecond)
	c.Net.SetDown(2, true)
	c.Stacks[2].Crash()
	skip := map[int]bool{2: true}
	// Post-crash traffic from a survivor.
	for k := 0; k < 10; k++ {
		c.Stacks[0].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("post%d", k))})
	}
	waitDelivered(t, c, sinks, 15, skip)
	// Survivors must agree on the number of switches that happened.
	time.Sleep(100 * time.Millisecond)
	ref := -1
	for i, s := range sinks {
		if skip[i] {
			continue
		}
		if ref == -1 {
			ref = s.switchCount()
		} else if s.switchCount() != ref {
			t.Fatalf("stack %d saw %d switches, another saw %d (agreement on change violated)",
				i, s.switchCount(), ref)
		}
	}
	checkIdenticalSequences(t, sinks, skip)
}

func TestConcurrentChangesResolveConsistently(t *testing.T) {
	// Two stacks request different protocols at the same time in the
	// same epoch: the first in total order wins; with RetryLostChange
	// both eventually apply, in the same order everywhere.
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 36, BaseLatency: time.Millisecond},
		core.Config{InitialProtocol: abcast.ProtocolCT, RetryLostChange: true}, nil)
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolToken})
	c.Eventually(timeout, "both changes applied", func() bool {
		for _, s := range sinks {
			if s.switchCount() < 2 {
				return false
			}
		}
		return true
	})
	time.Sleep(100 * time.Millisecond)
	// All stacks end at the same protocol and epoch.
	var refStatus core.Status
	for i := range sinks {
		got := make(chan core.Status, 1)
		c.Stacks[i].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
		s := <-got
		if i == 0 {
			refStatus = s
		} else if s.Sn != refStatus.Sn || s.Protocol != refStatus.Protocol ||
			s.Undelivered != refStatus.Undelivered || s.ViewID != refStatus.ViewID ||
			fmt.Sprint(s.Members) != fmt.Sprint(refStatus.Members) {
			t.Errorf("stack %d status %+v != stack 0 status %+v", i, s, refStatus)
		}
	}
	// Switch sequences must match across stacks.
	var refSwitches []string
	for i, s := range sinks {
		s.mu.Lock()
		var seq []string
		for _, sw := range s.switches {
			seq = append(seq, fmt.Sprintf("%d:%s", sw.Sn, sw.Protocol))
		}
		s.mu.Unlock()
		if refSwitches == nil {
			refSwitches = seq
		} else if fmt.Sprint(seq) != fmt.Sprint(refSwitches) {
			t.Errorf("stack %d switch sequence %v != %v", i, seq, refSwitches)
		}
	}
	// Traffic still flows afterwards.
	for k := 0; k < 5; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("after%d", k))})
	}
	waitDelivered(t, c, sinks, 5, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestPaperPropertiesOnTraces(t *testing.T) {
	// Record a run with a switch under load, then check Section 3's
	// properties on the trace: weak stack-well-formedness and weak
	// protocol-operationability of the new protocol.
	col := trace.NewCollector()
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 37},
		core.Config{InitialProtocol: abcast.ProtocolCT}, col)
	for k := 0; k < 10; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
	}
	c.Stacks[0].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Eventually(timeout, "switch everywhere", func() bool {
		for _, s := range sinks {
			if s.switchCount() != 1 {
				return false
			}
		}
		return true
	})
	waitDelivered(t, c, sinks, 10, nil)
	evs := col.Events()
	rep, err := trace.CheckWeakStackWellFormedness(evs)
	if err != nil {
		t.Errorf("stack-well-formedness: %v", err)
	}
	t.Logf("blocked calls: %d, max block %v, mean %v", rep.Blocked, rep.MaxBlock, rep.MeanBlock())
	group := []kernel.Addr{0, 1, 2}
	if err := trace.CheckProtocolOperationability(evs, abcast.ProtocolSeq, group); err != nil {
		t.Errorf("protocol-operationability(seq): %v", err)
	}
	if err := trace.CheckProtocolOperationability(evs, abcast.ProtocolCT, group); err != nil {
		t.Errorf("protocol-operationability(ct): %v", err)
	}
	// Every stack must have bound the new protocol exactly once.
	binds := trace.BindCount(evs, abcast.ProtocolSeq)
	for _, a := range group {
		if binds[a] != 1 {
			t.Errorf("stack %d bound %q %d times, want 1", a, abcast.ProtocolSeq, binds[a])
		}
	}
}

func TestSwitchWithLossyNetwork(t *testing.T) {
	c, sinks := buildDPU(t, 3,
		simnet.Config{Seed: 38, LossRate: 0.1, BaseLatency: time.Millisecond},
		core.Config{InitialProtocol: abcast.ProtocolCT}, nil)
	const pre, post = 8, 8
	for k := 0; k < pre; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("pre%d", k))})
	}
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolCT})
	for k := 0; k < post; k++ {
		c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("post%d", k))})
	}
	waitDelivered(t, c, sinks, pre+post, nil)
	checkIdenticalSequences(t, sinks, nil)
}

func TestDependentServiceKeepsWorkingAcrossSwitch(t *testing.T) {
	// A module that *requires* the public abcast service (like the GM
	// module in Figure 4) must see uninterrupted service across the
	// replacement — the modularity claim of Section 4.
	c, sinks := buildDPU(t, 3, simnet.Config{Seed: 39},
		core.Config{InitialProtocol: abcast.ProtocolCT}, nil)
	// The dependent service: echoes every delivery it sees; here we just
	// assert sinks (which play that role) never miss a message while the
	// switch happens in the middle of a stream.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 40; k++ {
			c.Stacks[k%3].Call(core.Service, core.Broadcast{Data: []byte(fmt.Sprintf("m%d", k))})
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(15 * time.Millisecond)
	c.Stacks[2].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolToken})
	wg.Wait()
	waitDelivered(t, c, sinks, 40, nil)
	checkIdenticalSequences(t, sinks, nil)
}
