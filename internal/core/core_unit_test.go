package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/abcast"
	"repro/internal/kernel"
	"repro/internal/wire"
)

// mockImpl is a scripted inner ABcast implementation: it records
// Broadcast requests and delivers only when the test injects an
// indication, so every interleaving of Algorithm 1 can be driven
// deterministically.
type mockImpl struct {
	kernel.Base
	epoch   uint64
	sent    [][]byte
	started bool
	stopped bool
}

func (m *mockImpl) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	if b, ok := req.(abcast.Broadcast); ok {
		m.sent = append(m.sent, append([]byte(nil), b.Data...))
	}
}

func (m *mockImpl) Start() { m.started = true }
func (m *mockImpl) Stop()  { m.stopped = true }

// pubSink collects indications on the public service.
type pubSink struct {
	kernel.Base
	delivers []Deliver
	switches []Switched
	views    []ViewChange
}

func (s *pubSink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case Deliver:
		s.delivers = append(s.delivers, v)
	case Switched:
		s.switches = append(s.switches, v)
	case ViewChange:
		s.views = append(s.views, v)
	}
}

// rig is a single-stack Algorithm 1 test rig with a mock inner protocol.
type rig struct {
	st    *kernel.Stack
	repl  *Repl
	sink  *pubSink
	mocks *[]*mockImpl
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	mocks := &[]*mockImpl{}
	impls := abcast.NewRegistry()
	impls.MustRegister(abcast.Impl{
		Name: "mock",
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			m := &mockImpl{Base: kernel.NewBase(st, "mock"), epoch: epoch}
			*mocks = append(*mocks, m)
			return m
		},
	})
	impls.MustRegister(abcast.Impl{
		Name: "mock2",
		New: func(st *kernel.Stack, epoch uint64) kernel.Module {
			m := &mockImpl{Base: kernel.NewBase(st, "mock2"), epoch: epoch}
			*mocks = append(*mocks, m)
			return m
		},
	})
	cfg.InitialProtocol = "mock"
	cfg.Impls = impls
	if cfg.Grace == 0 {
		cfg.Grace = 30 * time.Millisecond
	}
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	t.Cleanup(st.Close)
	r := &rig{st: st, mocks: mocks}
	if err := st.DoSync(func() {
		f := Factory(cfg)
		mod := f.New(st)
		st.AddModule(mod)
		st.Bind(Service, mod)
		r.repl = mod.(*Repl)
		r.sink = &pubSink{Base: kernel.NewBase(st, "pub-sink")}
		st.AddModule(r.sink)
		st.Subscribe(Service, r.sink)
		mod.Start()
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) sync(t *testing.T) {
	t.Helper()
	if err := r.st.DoSync(func() {}); err != nil {
		t.Fatal(err)
	}
}

// cur returns the most recently created mock (the bound implementation).
func (r *rig) cur() *mockImpl { return (*r.mocks)[len(*r.mocks)-1] }

// injectDeliver simulates an Adeliver from the inner protocol.
func (r *rig) injectDeliver(data []byte) {
	r.st.Indicate(abcast.ServiceImpl, abcast.Deliver{Origin: 0, Data: data})
}

func encNil(sn uint64, origin kernel.Addr, seq uint64, data []byte) []byte {
	w := wire.NewWriter(len(data) + 24)
	w.Byte(tagNil).Uvarint(sn).Uvarint(uint64(origin)).Uvarint(seq).Raw(data)
	return w.Bytes()
}

func encNew(sn uint64, initiator kernel.Addr, reqID uint64, name string) []byte {
	w := wire.NewWriter(len(name) + 24)
	w.Byte(tagNew).Uvarint(sn).Uvarint(uint64(initiator)).Uvarint(reqID).String(name)
	return w.Bytes()
}

func TestRABcastWrapsWithHeaderAndTracksUndelivered(t *testing.T) {
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("m1")})
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.cur().sent) != 1 {
			t.Fatalf("inner got %d broadcasts, want 1", len(r.cur().sent))
		}
		want := encNil(0, 0, 1, []byte("m1"))
		if !bytes.Equal(r.cur().sent[0], want) {
			t.Errorf("header mismatch:\n got %v\nwant %v", r.cur().sent[0], want)
		}
		if r.repl.undelivered.len() != 1 {
			t.Errorf("undelivered = %d, want 1", r.repl.undelivered.len())
		}
	})
}

func TestDeliverRemovesFromUndeliveredAndIndicates(t *testing.T) {
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("m1")})
	r.sync(t)
	r.injectDeliver(encNil(0, 0, 1, []byte("m1")))
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 1 || string(r.sink.delivers[0].Data) != "m1" {
			t.Fatalf("delivers = %+v", r.sink.delivers)
		}
		if r.repl.undelivered.len() != 0 {
			t.Errorf("undelivered = %d after delivery", r.repl.undelivered.len())
		}
	})
}

func TestStaleSnDeliveryDiscarded(t *testing.T) {
	// Line 18 of Algorithm 1: a message with a stale sequence number is
	// discarded.
	r := newRig(t, Config{})
	r.injectDeliver(encNew(0, 0, 1, "mock2")) // switch: sn 0 -> 1
	r.sync(t)
	r.injectDeliver(encNil(0, 0, 1, []byte("stale"))) // old-epoch delivery
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 0 {
			t.Errorf("stale delivery leaked: %+v", r.sink.delivers)
		}
	})
}

func TestChangeSwitchesModuleAndReissuesUndelivered(t *testing.T) {
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("a")})
	r.st.Call(Service, Broadcast{Data: []byte("b")})
	r.sync(t)
	oldMock := r.cur()
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	r.st.DoSync(func() {
		newMock := r.cur()
		if newMock == oldMock {
			t.Fatal("no new module created")
		}
		if newMock.epoch != 1 {
			t.Errorf("new module epoch = %d, want 1", newMock.epoch)
		}
		if !newMock.started {
			t.Error("new module not started")
		}
		// Reissues: both undelivered messages, re-tagged with sn=1,
		// in the original issue order (lines 15-16).
		wantA := encNil(1, 0, 1, []byte("a"))
		wantB := encNil(1, 0, 2, []byte("b"))
		if len(newMock.sent) != 2 ||
			!bytes.Equal(newMock.sent[0], wantA) || !bytes.Equal(newMock.sent[1], wantB) {
			t.Errorf("reissues = %v", newMock.sent)
		}
		// Switched indication.
		if len(r.sink.switches) != 1 || r.sink.switches[0].Sn != 1 ||
			r.sink.switches[0].Protocol != "mock2" || r.sink.switches[0].Reissued != 2 {
			t.Errorf("switches = %+v", r.sink.switches)
		}
		// The old module is unbound but still in the stack (paper §2).
		if r.st.Provider(abcast.ServiceImpl) != kernel.Module(newMock) {
			t.Error("new module not bound to inner service")
		}
		if _, in := r.st.Module(oldMock.ID()); !in {
			t.Error("old module removed immediately; must survive until grace expires")
		}
	})
}

func TestOldModuleRetiredAfterGrace(t *testing.T) {
	r := newRig(t, Config{Grace: 20 * time.Millisecond})
	r.sync(t)
	oldMock := r.cur()
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var gone, stopped bool
		r.st.DoSync(func() {
			_, in := r.st.Module(oldMock.ID())
			gone = !in
			stopped = oldMock.stopped
		})
		if gone {
			if !stopped {
				t.Error("old module removed without Stop")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("old module never retired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestExactlyOnceAcrossSwitch(t *testing.T) {
	// A message caught by the switch: the old stream delivers it late
	// (stale sn, filtered) and the reissue delivers it once.
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("caught")})
	r.sync(t)
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	// Old stream's late delivery with sn=0: filtered.
	r.injectDeliver(encNil(0, 0, 1, []byte("caught")))
	// New stream's delivery of the reissue with sn=1: delivered.
	r.injectDeliver(encNil(1, 0, 1, []byte("caught")))
	// A duplicate of the reissue (e.g. relayed twice at the boundary)
	// would violate integrity of the inner protocol, not of Repl; but a
	// second stale copy must still be filtered.
	r.injectDeliver(encNil(0, 0, 1, []byte("caught")))
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 1 {
			t.Fatalf("delivered %d times, want exactly 1: %+v", len(r.sink.delivers), r.sink.delivers)
		}
		if r.repl.undelivered.len() != 0 {
			t.Errorf("undelivered not cleared after reissued delivery")
		}
	})
}

func TestRacingChangeDiscardedAndRetriedWhenMine(t *testing.T) {
	r := newRig(t, Config{RetryLostChange: true})
	r.sync(t)
	// Two changes were issued concurrently in epoch 0; ours lost.
	r.injectDeliver(encNew(0, 1, 1, "mock2")) // the winner, initiated by stack 1
	r.sync(t)
	mockAfterFirst := r.cur()
	r.injectDeliver(encNew(0, 0, 5, "mock")) // ours, now stale
	r.sync(t)
	r.st.DoSync(func() {
		if r.repl.sn != 1 {
			t.Errorf("sn = %d, want 1 (stale change must not switch)", r.repl.sn)
		}
		// The retry goes out through the *new* module with sn=1.
		want := encNew(1, 0, 5, "mock")
		found := false
		for _, b := range mockAfterFirst.sent {
			if bytes.Equal(b, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no retry broadcast found in %v", mockAfterFirst.sent)
		}
	})
}

func TestRacingChangeNotRetriedWhenDisabled(t *testing.T) {
	r := newRig(t, Config{RetryLostChange: false})
	r.sync(t)
	r.injectDeliver(encNew(0, 1, 1, "mock2"))
	r.sync(t)
	cur := r.cur()
	before := len(cur.sent)
	r.injectDeliver(encNew(0, 0, 2, "mock"))
	r.sync(t)
	r.st.DoSync(func() {
		if len(cur.sent) != before {
			t.Errorf("retry broadcast sent despite RetryLostChange=false")
		}
		if r.repl.sn != 1 {
			t.Errorf("sn = %d, want 1", r.repl.sn)
		}
	})
}

func TestChangeToUnknownProtocolDiscardedWithoutEpochBump(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	r.injectDeliver(encNew(0, 0, 1, "no-such-impl"))
	r.sync(t)
	r.st.DoSync(func() {
		if r.repl.sn != 0 {
			t.Errorf("sn = %d, want 0", r.repl.sn)
		}
		if len(r.sink.switches) != 0 {
			t.Errorf("switched: %+v", r.sink.switches)
		}
	})
	// The layer keeps working.
	r.st.Call(Service, Broadcast{Data: []byte("still-alive")})
	r.injectDeliver(encNil(0, 0, 1, []byte("still-alive")))
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 1 {
			t.Errorf("delivery after discarded change failed")
		}
	})
}

func TestBackToBackChanges(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	r.injectDeliver(encNew(1, 0, 2, "mock"))
	r.sync(t)
	r.injectDeliver(encNew(2, 0, 3, "mock2"))
	r.sync(t)
	r.st.DoSync(func() {
		if r.repl.sn != 3 {
			t.Errorf("sn = %d, want 3", r.repl.sn)
		}
		if r.repl.curName != "mock2" {
			t.Errorf("current = %q", r.repl.curName)
		}
		if got := r.cur().epoch; got != 3 {
			t.Errorf("current epoch = %d", got)
		}
	})
}

func TestStatusRequest(t *testing.T) {
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("x")})
	got := make(chan Status, 1)
	r.st.Call(Service, StatusReq{Reply: func(s Status) { got <- s }})
	select {
	case s := <-got:
		if s.Sn != 0 || s.Protocol != "mock" || s.Undelivered != 1 {
			t.Errorf("status = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no status reply")
	}
}

func TestDeliveryOfOtherStacksMessageLeavesUndeliveredAlone(t *testing.T) {
	r := newRig(t, Config{})
	r.st.Call(Service, Broadcast{Data: []byte("mine")})
	r.sync(t)
	// A message from stack 7 is delivered; our own stays undelivered.
	r.injectDeliver(encNil(0, 7, 1, []byte("theirs")))
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 1 || r.sink.delivers[0].Origin != 7 {
			t.Fatalf("delivers = %+v", r.sink.delivers)
		}
		if r.repl.undelivered.len() != 1 {
			t.Errorf("undelivered = %d, want 1", r.repl.undelivered.len())
		}
	})
}

func TestQuickPendingSetKeepsInsertionOrder(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newPendingSet()
		var reference []msgID
		inRef := func(id msgID) int {
			for i, r := range reference {
				if r == id {
					return i
				}
			}
			return -1
		}
		seq := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || len(reference) == 0 {
				seq++
				id := msgID{origin: kernel.Addr(op % 4), seq: seq}
				if inRef(id) == -1 {
					s.add(id, []byte{op})
					reference = append(reference, id)
				}
			} else {
				victim := reference[int(op)%len(reference)]
				s.remove(victim)
				reference = append(reference[:inRef(victim)], reference[inRef(victim)+1:]...)
			}
		}
		if s.len() != len(reference) {
			return false
		}
		var got []msgID
		s.each(func(id msgID, _ []byte) { got = append(got, id) })
		if len(got) != len(reference) {
			return false
		}
		for i := range got {
			if got[i] != reference[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickHeaderRoundtrip(t *testing.T) {
	f := func(sn uint64, origin uint16, seq uint64, data []byte) bool {
		enc := encNil(sn, kernel.Addr(origin), seq, data)
		r := wire.NewReader(enc)
		if r.Byte() != tagNil {
			return false
		}
		gsn := r.Uvarint()
		gorigin := kernel.Addr(r.Uvarint())
		gseq := r.Uvarint()
		gdata := r.Rest()
		return r.Err() == nil && gsn == sn && gorigin == kernel.Addr(origin) &&
			gseq == seq && bytes.Equal(gdata, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGarbageFromInnerProtocolIgnored(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	for _, garbage := range [][]byte{nil, {}, {200}, {0, 0xFF}, {1, 0x80}} {
		r.injectDeliver(garbage)
	}
	r.sync(t)
	r.st.DoSync(func() {
		if len(r.sink.delivers) != 0 || len(r.sink.switches) != 0 {
			t.Errorf("garbage produced indications: %+v %+v", r.sink.delivers, r.sink.switches)
		}
		if r.repl.sn != 0 {
			t.Errorf("sn changed on garbage")
		}
	})
}

func TestChangeReplyOnCompletion(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	got := make(chan ChangeReply, 1)
	r.st.Call(Service, ChangeProtocol{Protocol: "mock2", Reply: func(c ChangeReply) { got <- c }})
	r.sync(t)
	// The tracked request went out through the inner protocol; feed it
	// back as the total order would.
	var sent []byte
	r.st.DoSync(func() { sent = r.cur().sent[0] })
	if want := encNew(0, 0, 1, "mock2"); !bytes.Equal(sent, want) {
		t.Fatalf("change header = %v, want %v", sent, want)
	}
	r.injectDeliver(sent)
	r.sync(t)
	select {
	case c := <-got:
		if c.Err != nil {
			t.Fatalf("reply error: %v", c.Err)
		}
		if c.Ev.Sn != 1 || c.Ev.Protocol != "mock2" {
			t.Errorf("reply event = %+v", c.Ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no change reply")
	}
}

func TestChangeReplyImmediateOnUnknownProtocol(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	got := make(chan ChangeReply, 1)
	r.st.Call(Service, ChangeProtocol{Protocol: "no-such-impl", Reply: func(c ChangeReply) { got <- c }})
	select {
	case c := <-got:
		if !errors.Is(c.Err, ErrUnknownProtocol) {
			t.Fatalf("err = %v, want ErrUnknownProtocol", c.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply for unknown protocol")
	}
	// Nothing circulated through the group and the epoch is untouched.
	r.st.DoSync(func() {
		if len(r.cur().sent) != 0 {
			t.Errorf("unknown change was broadcast: %v", r.cur().sent)
		}
		if r.repl.sn != 0 {
			t.Errorf("sn = %d", r.repl.sn)
		}
	})
}

func TestEpochWaitParksUntilSwitch(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	now := make(chan Status, 1)
	r.st.Call(Service, EpochWaitReq{Epoch: 0, Reply: func(s Status) { now <- s }})
	select {
	case s := <-now:
		if s.Sn != 0 {
			t.Fatalf("immediate wait status = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait for reached epoch did not reply immediately")
	}
	later := make(chan Status, 1)
	r.st.Call(Service, EpochWaitReq{Epoch: 1, Reply: func(s Status) { later <- s }})
	r.sync(t)
	select {
	case s := <-later:
		t.Fatalf("future-epoch wait replied early: %+v", s)
	default:
	}
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	select {
	case s := <-later:
		if s.Sn != 1 || s.Protocol != "mock2" {
			t.Errorf("wait status = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("epoch waiter never released")
	}
}

func TestChangeReplySurvivesLostRaceViaRetry(t *testing.T) {
	r := newRig(t, Config{RetryLostChange: true})
	r.sync(t)
	got := make(chan ChangeReply, 1)
	r.st.Call(Service, ChangeProtocol{Protocol: "mock2", Reply: func(c ChangeReply) { got <- c }})
	r.sync(t)
	// A remote change wins epoch 0 first; ours is delivered stale and
	// retried with the same request id through the new module.
	r.injectDeliver(encNew(0, 1, 1, "mock"))
	r.sync(t)
	retryCarrier := r.cur()
	r.injectDeliver(encNew(0, 0, 1, "mock2")) // ours, stale, triggers retry
	r.sync(t)
	var retry []byte
	r.st.DoSync(func() {
		want := encNew(1, 0, 1, "mock2")
		for _, b := range retryCarrier.sent {
			if bytes.Equal(b, want) {
				retry = b
			}
		}
	})
	if retry == nil {
		t.Fatal("retry with original request id not rebroadcast")
	}
	select {
	case c := <-got:
		t.Fatalf("reply before retry completed: %+v", c)
	default:
	}
	r.injectDeliver(retry)
	r.sync(t)
	select {
	case c := <-got:
		if c.Err != nil || c.Ev.Sn != 2 || c.Ev.Protocol != "mock2" {
			t.Errorf("retried reply = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply after retry won")
	}
}

func TestChangeReplyFailsOnLostRaceWithoutRetry(t *testing.T) {
	r := newRig(t, Config{RetryLostChange: false})
	r.sync(t)
	got := make(chan ChangeReply, 1)
	r.st.Call(Service, ChangeProtocol{Protocol: "mock2", Reply: func(c ChangeReply) { got <- c }})
	r.sync(t)
	r.injectDeliver(encNew(0, 1, 1, "mock"))  // remote winner
	r.injectDeliver(encNew(0, 0, 1, "mock2")) // ours, stale
	r.sync(t)
	select {
	case c := <-got:
		if c.Err == nil {
			t.Fatalf("lost race without retry must fail, got %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply for lost race")
	}
}

func TestAbandonedEpochWaitersPruned(t *testing.T) {
	r := newRig(t, Config{})
	r.sync(t)
	// Park waiters whose requester immediately gives up, interleaved
	// with fresh requests: the pre-park prune must keep the slice from
	// accumulating dead entries.
	closed := make(chan struct{})
	close(closed)
	for i := 0; i < 50; i++ {
		r.st.Call(Service, EpochWaitReq{Epoch: 99, Reply: func(Status) {}, Done: closed})
	}
	live := make(chan Status, 1)
	r.st.Call(Service, EpochWaitReq{Epoch: 1, Reply: func(s Status) { live <- s }})
	r.sync(t)
	r.st.DoSync(func() {
		if got := len(r.repl.epochWaiters); got > 2 {
			t.Errorf("epochWaiters retained %d entries, want <= 2", got)
		}
	})
	// The live waiter still fires on the switch.
	r.injectDeliver(encNew(0, 0, 1, "mock2"))
	r.sync(t)
	select {
	case s := <-live:
		if s.Sn != 1 {
			t.Errorf("live waiter status = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live waiter lost during pruning")
	}
}
