package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/wire"
)

func encBatchFrame(sn uint64, origin kernel.Addr, seq uint64, records ...[]byte) []byte {
	blob := wire.NewWriter(256)
	for _, rec := range records {
		blob.BytesField(rec)
	}
	w := wire.NewWriter(blob.Len() + 24)
	w.Byte(tagBatch).Uvarint(sn).Uvarint(uint64(origin)).Uvarint(seq).Raw(blob.Bytes())
	return w.Bytes()
}

// decodeBatchFrame splits an encoded tagBatch message into its header
// and records.
func decodeBatchFrame(t *testing.T, enc []byte) (sn uint64, id msgID, records [][]byte) {
	t.Helper()
	r := wire.NewReader(enc)
	if tag := r.Byte(); tag != tagBatch {
		t.Fatalf("tag = %d, want tagBatch", tag)
	}
	sn = r.Uvarint()
	id = msgID{origin: kernel.Addr(r.Uvarint()), seq: r.Uvarint()}
	for r.Err() == nil && r.Remaining() > 0 {
		records = append(records, r.BytesField())
	}
	if r.Err() != nil {
		t.Fatalf("decode: %v", r.Err())
	}
	return sn, id, records
}

// settle runs enough executor rounds for cascaded async calls (flush ->
// inner broadcast -> mock) to drain, then runs the assertions on the
// executor so the reads are synchronized with module state.
func (r *rig) settle(t *testing.T, assert func()) {
	t.Helper()
	for i := 0; i < 4; i++ {
		r.sync(t)
	}
	if err := r.st.DoSync(assert); err != nil {
		t.Fatal(err)
	}
}

func TestBatchFlushesOnBytes(t *testing.T) {
	r := newRig(t, Config{BatchDelay: time.Hour, BatchBytes: 64})
	r.st.Call(Service, Broadcast{Data: bytes.Repeat([]byte{1}, 30)})
	r.settle(t, func() {
		if got := len(r.cur().sent); got != 0 {
			t.Errorf("batch flushed after 30 bytes, below the 64-byte threshold (sent=%d)", got)
		}
	})
	r.st.Call(Service, Broadcast{Data: bytes.Repeat([]byte{2}, 40)})
	r.settle(t, func() {
		if got := len(r.cur().sent); got != 1 {
			t.Fatalf("sent %d inner broadcasts, want 1 flushed batch", got)
		}
		_, _, records := decodeBatchFrame(t, r.cur().sent[0])
		if len(records) != 2 || len(records[0]) != 30 || len(records[1]) != 40 {
			t.Errorf("batch records = %d (%v), want the two payloads in order", len(records), records)
		}
	})
}

func TestBatchFlushesOnDelay(t *testing.T) {
	r := newRig(t, Config{BatchDelay: 5 * time.Millisecond})
	r.st.Call(Service, Broadcast{Data: []byte("solo")})
	r.settle(t, func() {
		if got := len(r.cur().sent); got != 0 {
			t.Errorf("batch flushed immediately (sent=%d), want timer-driven flush", got)
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		flushed := false
		r.settle(t, func() { flushed = len(r.cur().sent) == 1 })
		if flushed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never flushed on the delay timer")
		}
		time.Sleep(time.Millisecond)
	}
	r.settle(t, func() {
		_, _, records := decodeBatchFrame(t, r.cur().sent[0])
		if len(records) != 1 || string(records[0]) != "solo" {
			t.Errorf("records = %q, want [solo]", records)
		}
	})
}

func TestBatchDeliveryUnpacksInOrderAndFilters(t *testing.T) {
	r := newRig(t, Config{BatchDelay: time.Hour})
	// A remote batch delivers each record, in packing order.
	r.injectDeliver(encBatchFrame(0, 2, 1, []byte("a"), []byte("b"), []byte("c")))
	r.settle(t, func() {
		if len(r.sink.delivers) != 3 {
			t.Fatalf("delivered %d records, want 3", len(r.sink.delivers))
		}
		for i, want := range []string{"a", "b", "c"} {
			d := r.sink.delivers[i]
			if string(d.Data) != want || d.Origin != 2 {
				t.Errorf("deliver[%d] = %q from %d, want %q from 2", i, d.Data, d.Origin, want)
			}
		}
	})
	// A stale-epoch batch is discarded wholesale (Algorithm 1 line 18).
	r.injectDeliver(encBatchFrame(7, 2, 2, []byte("stale")))
	r.settle(t, func() {
		if len(r.sink.delivers) != 3 {
			t.Error("stale-epoch batch was not filtered")
		}
	})
}

// TestBatchCaughtAtSwitchReissuedExactlyOnce drives the exact scenario
// the tentpole calls out: a batch is open (unflushed) when a change
// message arrives. The switch must fold it into the undelivered set and
// reissue it exactly once through the new epoch; stale-epoch copies are
// sn-filtered on delivery.
func TestBatchCaughtAtSwitchReissuedExactlyOnce(t *testing.T) {
	r := newRig(t, Config{BatchDelay: time.Hour})
	r.st.Call(Service, Broadcast{Data: []byte("x")})
	r.st.Call(Service, Broadcast{Data: []byte("y")})
	var oldMock *mockImpl
	r.settle(t, func() {
		oldMock = r.cur()
		if len(oldMock.sent) != 0 {
			t.Errorf("batch flushed early: %d", len(oldMock.sent))
		}
	})
	// The change arrives through the old total order at epoch 0.
	r.injectDeliver(encNew(0, 1, 1, "mock2"))
	var reissue []byte
	r.settle(t, func() {
		newMock := r.cur()
		if newMock == oldMock {
			t.Fatal("switch did not install a new implementation")
		}
		// The open batch crossed the boundary without a wasted old-epoch
		// broadcast: it was closed into the undelivered set and reissued
		// exactly once through the new epoch (sn 1).
		if len(oldMock.sent) != 0 {
			t.Errorf("old impl sent %d messages, want 0 (batch reissued only through the new epoch)", len(oldMock.sent))
		}
		if len(newMock.sent) != 1 {
			t.Fatalf("new impl sent %d messages, want exactly one reissue", len(newMock.sent))
		}
		reissue = newMock.sent[0]
		newSn, _, newRecords := decodeBatchFrame(t, reissue)
		if newSn != 1 {
			t.Errorf("reissue sn=%d, want 1", newSn)
		}
		if len(newRecords) != 2 || string(newRecords[0]) != "x" || string(newRecords[1]) != "y" {
			t.Errorf("reissued records %q, want [x y]", newRecords)
		}
	})
	// A stale-epoch copy (as a crashed initiator's relay would produce)
	// is filtered; the new-epoch copy delivers both payloads and clears
	// the undelivered set.
	r.injectDeliver(encBatchFrame(0, 0, 1, []byte("x"), []byte("y")))
	r.settle(t, func() {
		if len(r.sink.delivers) != 0 {
			t.Error("stale-epoch batch delivered")
		}
	})
	r.injectDeliver(reissue)
	r.settle(t, func() {
		if len(r.sink.delivers) != 2 {
			t.Errorf("delivered %d, want 2", len(r.sink.delivers))
		}
		if und := r.repl.undelivered.len(); und != 0 {
			t.Errorf("undelivered = %d after delivery, want 0", und)
		}
	})
	// A second switch must not reissue the already-delivered batch.
	r.injectDeliver(encNew(1, 1, 2, "mock"))
	r.settle(t, func() {
		if got := len(r.cur().sent); got != 0 {
			t.Errorf("second switch reissued %d messages, want 0 (batch already delivered)", got)
		}
	})
}
