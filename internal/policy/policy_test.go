package policy

import (
	"sync"
	"testing"
	"time"
)

// lossy/clean signal helpers against the default LossSensitive
// thresholds (enter 0.05, exit 0.01).
func lossySignal(current string) Signals {
	return Signals{Protocol: current, PacketsSent: 500, RetransmitRatio: 0.20, Interval: 50 * time.Millisecond}
}

func cleanSignal(current string) Signals {
	return Signals{Protocol: current, PacketsSent: 500, RetransmitRatio: 0.0, Interval: 50 * time.Millisecond}
}

func deadBandSignal(current string) Signals {
	return Signals{Protocol: current, PacketsSent: 500, RetransmitRatio: 0.03, Interval: 50 * time.Millisecond}
}

// recorder captures Act calls and emitted advice.
type recorder struct {
	mu     sync.Mutex
	acts   []string
	advice []Advice
}

func (r *recorder) act(target, _ string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.acts = append(r.acts, target)
	return nil
}

func (r *recorder) onAdvice(a Advice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advice = append(r.advice, a)
}

func (r *recorder) actTargets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.acts...)
}

func (r *recorder) adviceTargets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.advice))
	for i, a := range r.advice {
		out[i] = a.Target
	}
	return out
}

func newTestEngine(t *testing.T, cfg Config) (*Engine, *recorder) {
	t.Helper()
	rec := &recorder{}
	if cfg.Policy == nil {
		cfg.Policy = NewLossSensitive("ct", "seq")
	}
	if cfg.Sample == nil {
		cfg.Sample = func() (Signals, bool) { return Signals{}, false }
	}
	if cfg.Act == nil && !cfg.Advisory {
		cfg.Act = rec.act
	}
	cfg.OnAdvice = rec.onAdvice
	return New(cfg), rec
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHysteresisPreventsFlapping drives an oscillating signal that
// crosses the enter threshold every other sample: with Confirm=2 no
// target is ever confirmed twice in a row, so the engine never
// switches, however long the oscillation lasts.
func TestHysteresisPreventsFlapping(t *testing.T) {
	e, rec := newTestEngine(t, Config{Confirm: 2, Cooldown: time.Millisecond})
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		s := lossySignal("seq")
		if i%2 == 1 {
			s = cleanSignal("seq")
		}
		now = now.Add(50 * time.Millisecond)
		e.step(now, s)
	}
	if got := rec.actTargets(); len(got) != 0 {
		t.Fatalf("oscillating signal produced switches: %v", got)
	}
	if got := rec.adviceTargets(); len(got) != 0 {
		t.Fatalf("oscillating signal produced advice: %v", got)
	}
}

// TestConfirmThreshold verifies a sustained signal IS acted on, at
// exactly the Confirm'th consecutive agreeing sample.
func TestConfirmThreshold(t *testing.T) {
	e, rec := newTestEngine(t, Config{Confirm: 3, Cooldown: time.Millisecond})
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		now = now.Add(50 * time.Millisecond)
		e.step(now, lossySignal("seq"))
		if got := rec.actTargets(); len(got) != 0 {
			t.Fatalf("switched after %d samples, want confirmation at 3", i+1)
		}
	}
	now = now.Add(50 * time.Millisecond)
	e.step(now, lossySignal("seq"))
	if got := rec.actTargets(); !equalSeq(got, []string{"ct"}) {
		t.Fatalf("acts = %v, want [ct]", got)
	}
	last, ok := e.Last()
	if !ok || last.Target != "ct" || !last.Acted {
		t.Fatalf("Last() = %+v, %v; want acted advice for ct", last, ok)
	}
}

// TestCooldownSuppressesBackToBack switches once, then immediately
// confirms the opposite target: the engine must sit out the cooldown
// window before switching back.
func TestCooldownSuppressesBackToBack(t *testing.T) {
	e, rec := newTestEngine(t, Config{Confirm: 1, Cooldown: time.Minute})
	now := time.Unix(0, 0)

	now = now.Add(time.Second)
	e.step(now, lossySignal("seq"))
	if got := rec.actTargets(); !equalSeq(got, []string{"ct"}) {
		t.Fatalf("acts = %v, want [ct]", got)
	}

	// Back-to-back reversal inside the cooldown window: suppressed.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		e.step(now, cleanSignal("ct"))
	}
	if got := rec.actTargets(); !equalSeq(got, []string{"ct"}) {
		t.Fatalf("cooldown did not suppress: acts = %v", got)
	}

	// After the window the target goes through again (Confirm=1, so one
	// fresh sample suffices).
	now = now.Add(2 * time.Minute)
	e.step(now, cleanSignal("ct"))
	if got := rec.actTargets(); !equalSeq(got, []string{"ct", "seq"}) {
		t.Fatalf("acts after cooldown = %v, want [ct seq]", got)
	}
}

// TestCooldownResetsConfirmationStreak pins the re-confirmation
// contract: a target suppressed by the cooldown loses its streak and
// must win Confirm FRESH samples after the window expires — it cannot
// fire on the first post-window tick off samples gathered inside it.
func TestCooldownResetsConfirmationStreak(t *testing.T) {
	e, rec := newTestEngine(t, Config{Confirm: 2, Cooldown: time.Minute})
	now := time.Unix(0, 0)
	step := func(s Signals, d time.Duration) {
		now = now.Add(d)
		e.step(now, s)
	}
	step(lossySignal("seq"), time.Second)
	step(lossySignal("seq"), time.Second) // confirmed -> acts
	if got := rec.actTargets(); !equalSeq(got, []string{"ct"}) {
		t.Fatalf("acts = %v, want [ct]", got)
	}
	// Confirm and re-confirm the reversal inside the window: suppressed,
	// streak dropped each time.
	for i := 0; i < 6; i++ {
		step(cleanSignal("ct"), time.Second)
	}
	// First post-window sample alone must NOT act (streak was reset)...
	step(cleanSignal("ct"), 2*time.Minute)
	if got := rec.actTargets(); !equalSeq(got, []string{"ct"}) {
		t.Fatalf("acted on first post-cooldown sample: %v", got)
	}
	// ...the Confirm'th fresh one does.
	step(cleanSignal("ct"), time.Second)
	if got := rec.actTargets(); !equalSeq(got, []string{"ct", "seq"}) {
		t.Fatalf("acts = %v, want [ct seq]", got)
	}
}

// TestAdvisoryNeverActs runs a loss ramp through an advisory engine:
// the advice stream must match the switch sequence an active engine
// would produce — [ct seq] — with Act never called (it would panic:
// nil func).
func TestAdvisoryNeverActs(t *testing.T) {
	e, rec := newTestEngine(t, Config{Confirm: 2, Cooldown: time.Millisecond, Advisory: true})
	now := time.Unix(0, 0)
	step := func(s Signals) {
		now = now.Add(50 * time.Millisecond)
		e.step(now, s)
	}
	// Lossy phase: the installed protocol never changes (nothing acts),
	// so every sample reports current=seq.
	for i := 0; i < 10; i++ {
		step(lossySignal("seq"))
	}
	// Recovery phase.
	for i := 0; i < 10; i++ {
		step(cleanSignal("seq"))
	}
	if got := rec.adviceTargets(); !equalSeq(got, []string{"ct", "seq"}) {
		t.Fatalf("advisory advice = %v, want [ct seq]", got)
	}
	for _, a := range rec.advice {
		if a.Acted {
			t.Fatalf("advisory advice marked acted: %+v", a)
		}
	}
	if got := rec.actTargets(); len(got) != 0 {
		t.Fatalf("advisory engine called Act: %v", got)
	}
}

// TestDeadBandHoldsCurrent: between exit and enter thresholds both
// built-in policies vote to stay with whatever is installed.
func TestDeadBandHoldsCurrent(t *testing.T) {
	loss := NewLossSensitive("ct", "seq")
	for _, cur := range []string{"ct", "seq"} {
		if d := loss.Evaluate(deadBandSignal(cur)); d.Target != cur {
			t.Fatalf("loss dead band moved %s -> %s (%s)", cur, d.Target, d.Reason)
		}
	}
	lat := NewLatencySensitive("seq", "ct")
	mid := Signals{Protocol: "ct", AckRTT: 6 * time.Millisecond}
	if d := lat.Evaluate(mid); d.Target != "ct" {
		t.Fatalf("latency dead band moved ct -> %s (%s)", d.Target, d.Reason)
	}
	unmeasured := Signals{Protocol: "seq", AckRTT: 0}
	if d := lat.Evaluate(unmeasured); d.Target != "seq" {
		t.Fatalf("unmeasured RTT moved seq -> %s (%s)", d.Target, d.Reason)
	}
}

// TestPolicyThresholds pins the built-in policies' decisions on either
// side of their thresholds.
func TestPolicyThresholds(t *testing.T) {
	loss := NewLossSensitive("ct", "seq")
	if d := loss.Evaluate(Signals{Protocol: "seq", PacketsSent: 100, RetransmitRatio: 0.06}); d.Target != "ct" {
		t.Fatalf("ratio 0.06: target %s, want ct", d.Target)
	}
	if d := loss.Evaluate(Signals{Protocol: "ct", PacketsSent: 100, RetransmitRatio: 0.005}); d.Target != "seq" {
		t.Fatalf("ratio 0.005: target %s, want seq", d.Target)
	}
	// An idle window measures nothing: hold position, do not mistake
	// "no traffic" for "clean path".
	if d := loss.Evaluate(Signals{Protocol: "ct", PacketsSent: 0, RetransmitRatio: 0}); d.Target != "ct" {
		t.Fatalf("idle window moved ct -> %s (%s)", d.Target, d.Reason)
	}
	lat := NewLatencySensitive("seq", "ct")
	if d := lat.Evaluate(Signals{Protocol: "ct", AckRTT: 9 * time.Millisecond}); d.Target != "seq" {
		t.Fatalf("rtt 9ms: target %s, want seq", d.Target)
	}
	if d := lat.Evaluate(Signals{Protocol: "seq", AckRTT: 300 * time.Microsecond}); d.Target != "ct" {
		t.Fatalf("rtt 300µs: target %s, want ct", d.Target)
	}
}

// TestEngineLifecycle exercises the real sampling loop end to end: a
// live engine samples, confirms and acts, and Stop joins cleanly (and
// is idempotent, including before Start).
func TestEngineLifecycle(t *testing.T) {
	var mu sync.Mutex
	current := "seq"
	rec := &recorder{}
	e := New(Config{
		Policy:   NewLossSensitive("ct", "seq"),
		Interval: 2 * time.Millisecond,
		Confirm:  2,
		Cooldown: 5 * time.Millisecond,
		Sample: func() (Signals, bool) {
			mu.Lock()
			defer mu.Unlock()
			return Signals{Protocol: current, PacketsSent: 100, RetransmitRatio: 0.5}, true
		},
		Act: func(target, reason string) error {
			mu.Lock()
			current = target
			mu.Unlock()
			return rec.act(target, reason)
		},
		OnAdvice: rec.onAdvice,
	})
	e.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := rec.actTargets(); len(got) > 0 {
			if got[0] != "ct" {
				t.Fatalf("first act = %s, want ct", got[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never acted on a sustained lossy signal")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent

	unstarted := New(Config{
		Policy:   NewLossSensitive("ct", "seq"),
		Advisory: true,
		Sample:   func() (Signals, bool) { return Signals{}, false },
	})
	unstarted.Stop() // must not hang without Start
}
