package policy

import (
	"fmt"
	"time"
)

// LossSensitive prefers a loss-tolerant protocol when the estimated
// loss (RP2P retransmit ratio) is high and a lean, loss-sensitive one
// when the path is clean. The canonical pairing in this stack:
// consensus-based abcast/ct rides out loss (decisions carry payloads,
// any stack can drive progress), while abcast/seq is faster on a clean
// path but stalls behind every retransmission to or from the
// sequencer.
//
// EnterRatio and ExitRatio form a dead band: between them the policy
// votes to stay, whichever protocol is installed, so a loss estimate
// hovering near one threshold cannot flap the group.
type LossSensitive struct {
	// LossyProtocol is installed when RetransmitRatio >= EnterRatio.
	LossyProtocol string
	// CleanProtocol is installed when RetransmitRatio <= ExitRatio.
	CleanProtocol string
	// EnterRatio (default 0.05) and ExitRatio (default 0.01).
	EnterRatio float64
	ExitRatio  float64
}

// NewLossSensitive returns a LossSensitive policy with the default
// thresholds.
func NewLossSensitive(lossy, clean string) LossSensitive {
	return LossSensitive{LossyProtocol: lossy, CleanProtocol: clean}
}

func (p LossSensitive) withDefaults() LossSensitive {
	if p.EnterRatio <= 0 {
		p.EnterRatio = 0.05
	}
	if p.ExitRatio <= 0 {
		p.ExitRatio = 0.01
	}
	return p
}

// Name implements Policy.
func (LossSensitive) Name() string { return "loss-sensitive" }

// Evaluate implements Policy.
func (p LossSensitive) Evaluate(s Signals) Decision {
	p = p.withDefaults()
	switch {
	case s.PacketsSent <= 0:
		// An idle window measures nothing: a zero ratio here means "no
		// traffic", not "clean path" — hold position.
		return Decision{Target: s.Protocol, Reason: "no traffic in window (loss unmeasured)"}
	case s.RetransmitRatio >= p.EnterRatio:
		return Decision{
			Target: p.LossyProtocol,
			Reason: fmt.Sprintf("retransmit ratio %.3f >= %.3f", s.RetransmitRatio, p.EnterRatio),
		}
	case s.RetransmitRatio <= p.ExitRatio:
		return Decision{
			Target: p.CleanProtocol,
			Reason: fmt.Sprintf("retransmit ratio %.3f <= %.3f", s.RetransmitRatio, p.ExitRatio),
		}
	default:
		return Decision{Target: s.Protocol, Reason: "loss estimate in dead band"}
	}
}

// LatencySensitive prefers a protocol with fewer communication steps
// when the path round-trip time is high. On a fast LAN the
// consensus-based abcast/ct buys uniformity for a small premium; when
// the RTT grows, each consensus instance pays several round-trips per
// batch and the fixed-sequencer abcast/seq (one hop to the sequencer,
// one ordered fan-out) wins.
//
// Like LossSensitive, the enter/exit thresholds form a dead band. The
// defaults are calibrated against the *loaded* ack RTT, not the wire
// latency: cumulative acks ride at the end of executor passes, so even
// a ~100µs LAN measures 1-3ms of smoothed ack RTT under load. The
// thresholds must sit above that floor or the policy would react to
// its own queueing.
type LatencySensitive struct {
	// SlowPathProtocol is installed when AckRTT >= EnterRTT.
	SlowPathProtocol string
	// FastPathProtocol is installed when AckRTT <= ExitRTT.
	FastPathProtocol string
	// EnterRTT (default 8ms) and ExitRTT (default 4ms).
	EnterRTT time.Duration
	ExitRTT  time.Duration
}

// NewLatencySensitive returns a LatencySensitive policy with the
// default thresholds.
func NewLatencySensitive(slowPath, fastPath string) LatencySensitive {
	return LatencySensitive{SlowPathProtocol: slowPath, FastPathProtocol: fastPath}
}

func (p LatencySensitive) withDefaults() LatencySensitive {
	if p.EnterRTT <= 0 {
		p.EnterRTT = 8 * time.Millisecond
	}
	if p.ExitRTT <= 0 {
		p.ExitRTT = 4 * time.Millisecond
	}
	return p
}

// Name implements Policy.
func (LatencySensitive) Name() string { return "latency-sensitive" }

// Evaluate implements Policy.
func (p LatencySensitive) Evaluate(s Signals) Decision {
	p = p.withDefaults()
	switch {
	case s.AckRTT >= p.EnterRTT:
		return Decision{
			Target: p.SlowPathProtocol,
			Reason: fmt.Sprintf("ack RTT %v >= %v", s.AckRTT, p.EnterRTT),
		}
	case s.AckRTT > 0 && s.AckRTT <= p.ExitRTT:
		return Decision{
			Target: p.FastPathProtocol,
			Reason: fmt.Sprintf("ack RTT %v <= %v", s.AckRTT, p.ExitRTT),
		}
	default:
		return Decision{Target: s.Protocol, Reason: "RTT in dead band (or unmeasured)"}
	}
}
