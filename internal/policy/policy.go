package policy

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Signals is one sample of the stack's runtime condition, assembled by
// the embedding layer (see dpu's sampler) from the process-wide metrics
// registry and the replacement layer's status.
type Signals struct {
	// Protocol is the atomic-broadcast protocol the decision is made
	// against: the installed one in active mode, the engine's assumed
	// one in advisory mode (see Engine).
	Protocol string
	// Interval is the window the windowed rates below cover.
	Interval time.Duration
	// PacketsSent is how many RP2P data packets the window covers
	// ("rp2p.packets_sent" delta). Zero means the window carried no
	// traffic to measure — RetransmitRatio is then no information, not
	// a clean path, and policies must hold position.
	PacketsSent float64
	// RetransmitRatio estimates loss: RP2P retransmissions per data
	// packet transmitted in the window ("rp2p.retransmits" over
	// "rp2p.packets_sent"). ~0 on a clean path; approaches the true
	// loss rate under random loss and exceeds it under partitions.
	// Meaningless when PacketsSent is 0.
	RetransmitRatio float64
	// AckRTT is the smoothed RP2P acknowledgement round-trip time
	// ("rp2p.ack_rtt_us"), the stack's view of path latency.
	AckRTT time.Duration
	// ConsensusLatency is the smoothed propose-to-decide latency of
	// consensus instances ("abcast.consensus_latency_us"); zero when no
	// consensus-based protocol is (or recently was) installed.
	ConsensusLatency time.Duration
	// RelayFanout is the rbcast relay amplification in the window:
	// relayed records per received record ("rbcast.records_relayed"
	// over "rbcast.records_received").
	RelayFanout float64
	// DeliveryRate is totally-ordered deliveries per second in the
	// window ("core.deliveries").
	DeliveryRate float64
}

// Decision is a policy's verdict on one sample.
type Decision struct {
	// Target is the protocol the policy wants installed. Empty or equal
	// to Signals.Protocol means "stay".
	Target string
	// Reason is a short operator-facing explanation.
	Reason string
}

// Policy maps a sample of runtime signals to a desired protocol.
// Policies are evaluated on the engine's sampling goroutine and must
// not block; they should carry their own enter/exit thresholds so the
// dead band between them damps chatter at the signal level.
type Policy interface {
	Name() string
	Evaluate(Signals) Decision
}

// Advice is one emitted adaptation decision: a performed switch in
// active mode, or what the engine would have done in advisory mode.
type Advice struct {
	Seq     uint64 // 1-based emission counter per engine
	At      time.Time
	Policy  string
	Current string // protocol the decision was made against
	Target  string
	Reason  string
	Signals Signals
	Acted   bool // true when the engine performed the switch
}

// Config parameterises an Engine.
type Config struct {
	// Policy is the decision maker. Required.
	Policy Policy
	// Interval is the sampling period (default 50ms).
	Interval time.Duration
	// Confirm is how many consecutive samples must agree on the same
	// target before the engine acts (default 2). This is the engine's
	// hysteresis: a signal oscillating across a policy threshold never
	// produces a switch.
	Confirm int
	// Cooldown is the minimum time between emitted decisions (default
	// 20×Interval). Confirmed targets arriving inside the window are
	// suppressed and must re-confirm after it expires.
	Cooldown time.Duration
	// Advisory, when true, makes the engine emit Advice without ever
	// calling Act. The engine then evaluates against the protocol its
	// own advice trail implies, so the advice stream matches the switch
	// sequence an active engine would have produced.
	Advisory bool
	// Sample produces one Signals snapshot. Returning ok=false skips
	// the round (e.g. the stack is mid-shutdown). Required.
	Sample func() (s Signals, ok bool)
	// Act performs the switch in active mode. Required unless Advisory.
	Act func(target, reason string) error
	// OnAdvice, when non-nil, receives every emitted Advice (in both
	// modes), on the engine goroutine.
	OnAdvice func(Advice)
	// Clock schedules the sampling ticks and timestamps decisions. Nil
	// means the wall clock; a vclock.Virtual makes the adaptation loop
	// deterministic under simulated time.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Confirm <= 0 {
		c.Confirm = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 20 * c.Interval
	}
	if c.Clock == nil {
		c.Clock = vclock.Wall
	}
	return c
}

// Engine counters, exposed through the process-wide metrics registry
// (and therefore in dpu-bench's -json counter section).
var (
	ctrSamples    = metrics.NewCounter("policy.samples")
	ctrAdvice     = metrics.NewCounter("policy.advice")
	ctrSwitches   = metrics.NewCounter("policy.switches")
	ctrSwitchErrs = metrics.NewCounter("policy.switch_errors")
	ctrHysteresis = metrics.NewCounter("policy.suppressed_hysteresis")
	ctrCooldown   = metrics.NewCounter("policy.suppressed_cooldown")
)

// Engine is the adaptation loop: sample → evaluate → confirm → act (or
// advise). One engine runs per node. The loop is a self-rearming timer
// chain on Config.Clock rather than a dedicated goroutine, so under a
// virtual clock the ticks become ordinary scheduled events and the whole
// adaptation trajectory is deterministic.
type Engine struct {
	cfg Config

	// Decision state, touched only under runMu (tick callbacks, or
	// tests driving step directly).
	pendingTarget string
	pendingCount  int
	lastDecision  time.Time
	assumed       string // advisory mode: protocol the advice trail implies

	mu   sync.Mutex
	last Advice
	seq  uint64

	runMu   sync.Mutex // serializes ticks against each other and Stop
	timerMu sync.Mutex
	timer   vclock.Timer
	started bool
	stopped bool
}

// New validates the configuration and returns an unstarted engine.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Policy == nil {
		panic("policy: Config.Policy is required")
	}
	if cfg.Sample == nil {
		panic("policy: Config.Sample is required")
	}
	if cfg.Act == nil && !cfg.Advisory {
		panic("policy: Config.Act is required in active mode")
	}
	return &Engine{cfg: cfg}
}

// Start arms the sampling loop. Safe to call once.
func (e *Engine) Start() {
	e.timerMu.Lock()
	defer e.timerMu.Unlock()
	if e.started || e.stopped {
		return
	}
	e.started = true
	e.timer = e.cfg.Clock.AfterFunc(e.cfg.Interval, e.tick)
}

// Stop halts the loop and waits for any in-flight tick to finish. Safe
// to call more than once and before Start.
func (e *Engine) Stop() {
	e.timerMu.Lock()
	if e.stopped {
		e.timerMu.Unlock()
		return
	}
	e.stopped = true
	if e.timer != nil {
		e.timer.Stop()
	}
	e.timerMu.Unlock()
	// An already-running tick holds runMu; taking it drains the tick.
	e.runMu.Lock()
	e.runMu.Unlock() //nolint:staticcheck // empty section is the join
}

// Last returns the most recently emitted advice; ok is false before
// the first emission.
func (e *Engine) Last() (Advice, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last, e.last.Seq > 0
}

// tick runs one sampling round and rearms the timer.
func (e *Engine) tick() {
	e.runMu.Lock()
	e.timerMu.Lock()
	stopped := e.stopped
	e.timerMu.Unlock()
	if !stopped {
		if s, ok := e.cfg.Sample(); ok {
			e.step(e.cfg.Clock.Now(), s)
		}
	}
	e.runMu.Unlock()
	e.timerMu.Lock()
	if !e.stopped {
		e.timer = e.cfg.Clock.AfterFunc(e.cfg.Interval, e.tick)
	}
	e.timerMu.Unlock()
}

// step runs one evaluation round. Split from run so the unit suite can
// drive the decision machinery with synthetic clocks and signals.
func (e *Engine) step(now time.Time, s Signals) {
	ctrSamples.Add(1)
	if e.cfg.Advisory && e.assumed != "" {
		// Evaluate against the protocol the advice trail implies, so an
		// advisory engine's stream mirrors the switches an active one
		// would have made instead of re-advising the same move forever.
		s.Protocol = e.assumed
	}
	d := e.cfg.Policy.Evaluate(s)
	if d.Target == "" || d.Target == s.Protocol {
		e.pendingTarget, e.pendingCount = "", 0
		return
	}
	if d.Target != e.pendingTarget {
		e.pendingTarget, e.pendingCount = d.Target, 1
	} else {
		e.pendingCount++
	}
	if e.pendingCount < e.cfg.Confirm {
		ctrHysteresis.Add(1)
		return
	}
	if !e.lastDecision.IsZero() && now.Sub(e.lastDecision) < e.cfg.Cooldown {
		// Suppressed: drop the streak, so the target must re-confirm
		// with fresh samples once the window expires (as Config.Cooldown
		// documents) instead of firing on the first post-window tick.
		e.pendingTarget, e.pendingCount = "", 0
		ctrCooldown.Add(1)
		return
	}
	e.pendingTarget, e.pendingCount = "", 0
	e.lastDecision = now
	adv := Advice{
		At: now, Policy: e.cfg.Policy.Name(),
		Current: s.Protocol, Target: d.Target, Reason: d.Reason,
		Signals: s,
	}
	if e.cfg.Advisory {
		e.assumed = d.Target
	} else {
		if err := e.cfg.Act(d.Target, d.Reason); err != nil {
			ctrSwitchErrs.Add(1)
			return
		}
		ctrSwitches.Add(1)
		adv.Acted = true
	}
	ctrAdvice.Add(1)
	e.mu.Lock()
	e.seq++
	adv.Seq = e.seq
	e.last = adv
	e.mu.Unlock()
	if e.cfg.OnAdvice != nil {
		e.cfg.OnAdvice(adv)
	}
}
