// Package policy closes the adaptation loop of the dynamic protocol
// update stack: it turns the runtime signals already latent in the
// protocol modules into automatic (or advisory) protocol switches.
//
// The paper's premise is that no single atomic-broadcast protocol is
// best in every environment — that is why the replacement layer exists.
// This package supplies the missing decision maker. An Engine
// periodically samples Signals (loss estimated from RP2P
// retransmissions, smoothed ack round-trip time, consensus decision
// latency, relay fan-out, delivery throughput), hands them to a
// pluggable Policy, and — once the policy's verdict survives hysteresis
// and cooldown — either performs the switch (active mode) or emits an
// Advice event describing what it would do (advisory mode).
//
// # Hysteresis and cooldown
//
// Adaptation is not free: a protocol switch reissues the undelivered
// backlog and perturbs latency for everyone ("On the Complexity of
// Weight-Dynamic Network Algorithms" makes the general point that
// frequent adaptation has its own cost, and "The Augmentation-Speed
// Tradeoff for Consistent Network Updates" studies when an update is
// worth its disruption). The engine therefore never reacts to a single
// sample. A candidate switch must be confirmed by Confirm consecutive
// samples (hysteresis — an oscillating signal straddling a threshold
// never wins), and after any switch the engine refuses further
// switches for Cooldown (a flapping environment costs at most one
// switch per cooldown window, not one per flap). The built-in policies
// add their own signal-level hysteresis: separate enter and exit
// thresholds with a dead band between them in which they vote to stay.
//
// The dpu layer wires an Engine per node with dpu.WithAdaptive; see
// docs/ADAPTIVE.md for the operator-level picture.
package policy
