package envelope

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWrapUnwrap(t *testing.T) {
	for _, k := range []Kind{KindApp, KindGM, KindConsRepl, KindBench} {
		body := []byte("payload")
		kind, got, err := Unwrap(Wrap(k, body))
		if err != nil || kind != k || !bytes.Equal(got, body) {
			t.Errorf("kind %d: got (%d, %q, %v)", k, kind, got, err)
		}
	}
}

func TestUnwrapEmpty(t *testing.T) {
	if _, _, err := Unwrap(nil); err != ErrEmpty {
		t.Errorf("Unwrap(nil) err = %v", err)
	}
}

func TestWrapEmptyBody(t *testing.T) {
	kind, body, err := Unwrap(Wrap(KindGM, nil))
	if err != nil || kind != KindGM || len(body) != 0 {
		t.Errorf("got (%d, %v, %v)", kind, body, err)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(k uint8, body []byte) bool {
		kind, got, err := Unwrap(Wrap(Kind(k), body))
		return err == nil && kind == Kind(k) && bytes.Equal(got, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
