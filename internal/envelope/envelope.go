// Package envelope frames payloads of the public atomic-broadcast
// service so independent users (the application, the group membership
// module, the consensus-replacement extension) can share one totally
// ordered stream without seeing each other's messages.
package envelope

import "errors"

// Kind identifies the owner of a broadcast payload.
type Kind byte

// Reserved payload kinds.
const (
	// KindApp is application data (the dpu façade).
	KindApp Kind = 0
	// KindGM is reserved for group membership traffic. Since the
	// view-driven membership refactor GM operations travel as a core
	// wire tag (tagView) instead of enveloped app payloads; the value
	// stays reserved so old captures decode unambiguously.
	KindGM Kind = 1
	// KindConsRepl is the consensus-replacement extension.
	KindConsRepl Kind = 2
	// KindBench is benchmark/workload probe traffic.
	KindBench Kind = 3
	// KindAppPaced is application data issued through the dpu façade's
	// outstanding-broadcast window (Node.Broadcast): its self-delivery
	// releases a window slot, whereas KindApp (the unpaced legacy path)
	// does not hold one.
	KindAppPaced Kind = 4
)

// ErrEmpty is returned when unwrapping an empty payload.
var ErrEmpty = errors.New("envelope: empty payload")

// Wrap prefixes body with the kind tag.
func Wrap(k Kind, body []byte) []byte {
	out := make([]byte, 0, len(body)+1)
	out = append(out, byte(k))
	return append(out, body...)
}

// Unwrap splits a wrapped payload into its kind and body.
func Unwrap(data []byte) (Kind, []byte, error) {
	if len(data) < 1 {
		return 0, nil, ErrEmpty
	}
	return Kind(data[0]), data[1:], nil
}
