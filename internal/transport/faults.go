package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Process-wide counters for the adversarial fault features, mirrored
// from FaultStats so operators see them next to wire.frames_rejected.
var (
	corruptedCounter = metrics.NewCounter("transport.corrupted")
	reorderedCounter = metrics.NewCounter("transport.reordered")
)

// FaultConfig parameterises the Faulty decorator with simnet's loss and
// duplication semantics: every non-loopback send is independently lost
// with probability LossRate, and (when it survives) duplicated with
// probability DupRate, then delayed by Delay plus a uniform random
// jitter in [0, Jitter). Loopback (self-addressed) sends are never
// dropped or delayed, matching simnet.
//
// Beyond simnet's model the decorator injects adversarial faults:
// seeded byte-level corruption (CorruptRate), reordering via per-
// datagram hold-back (ReorderRate/ReorderDelay), correlated loss
// bursts (BurstRate/BurstLen) and one-way partitions (CutOneWay).
//
// All rates are runtime-mutable (SetLoss, SetDup, SetDelay, SetJitter,
// SetCorrupt, SetReorder, SetBurst), so a scenario can reshape a live
// link — the environment timelines of cmd/dpu-bench -scenario run on
// exactly this.
type FaultConfig struct {
	// Seed makes packet fates reproducible.
	Seed int64
	// LossRate is the probability a datagram is dropped, in [0, 1].
	LossRate float64
	// DupRate is the probability a datagram is sent twice, in [0, 1].
	DupRate float64
	// Delay postpones every surviving non-loopback datagram.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// CorruptRate is the probability a surviving datagram has 1–3 of
	// its bytes flipped in flight, in [0, 1]. The frame checksum
	// (internal/wire) turns corruption into a counted drop at the
	// receiver instead of a misparse.
	CorruptRate float64
	// ReorderRate is the probability a surviving datagram is held back
	// by ReorderDelay so later sends overtake it, in [0, 1].
	ReorderRate float64
	// ReorderDelay is how long a reordered datagram is held back.
	// Zero means a default of 2ms.
	ReorderDelay time.Duration
	// BurstRate is the probability a datagram opens a loss burst that
	// also swallows the next BurstLen-1 non-loopback datagrams, in
	// [0, 1]. Bursts model correlated outages the independent LossRate
	// cannot.
	BurstRate float64
	// BurstLen is the total burst length in datagrams. Zero means a
	// default of 4.
	BurstLen int
	// Clock schedules the delay/jitter timers. Nil means vclock.Wall;
	// under a vclock.Virtual the held-back datagrams release on virtual
	// time, so seeded fault runs replay identically (and never stall
	// waiting for wall timers the virtual clock cannot advance).
	Clock vclock.Clock
}

// defaultReorderDelay and defaultBurstLen back the zero values of
// FaultConfig.ReorderDelay and FaultConfig.BurstLen.
const (
	defaultReorderDelay = 2 * time.Millisecond
	defaultBurstLen     = 4
)

// FaultStats counts the decorator's interventions.
type FaultStats struct {
	Passed     uint64
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
	Corrupted  uint64
	Reordered  uint64
	BurstDrops uint64 // datagrams swallowed by loss bursts (incl. openers)
	Blocked    uint64 // datagrams dropped by one-way partitions
}

// Shaper is the runtime-mutable traffic-shaping surface shared by the
// Faulty decorator and (via Cluster.SetLoss and friends) the built-in
// simulated network: loss, fixed delay and jitter can be changed while
// traffic flows. The adaptation scenarios drive their environment
// timelines through this interface.
type Shaper interface {
	SetLoss(p float64)
	SetDelay(d time.Duration)
	SetJitter(j time.Duration)
}

// FaultInjector extends Shaper with the adversarial fault surface of
// the Faulty decorator: byte-level corruption, reordering, correlated
// loss bursts and one-way (asymmetric) partitions, all runtime-mutable.
// Cluster.SetCorrupt and friends route through this interface so an
// externally supplied transport can substitute its own injector.
type FaultInjector interface {
	Shaper
	SetCorrupt(p float64)
	SetReorder(p float64)
	SetBurst(p float64, length int)
	CutOneWay(from, to Addr)
	HealOneWay(from, to Addr)
}

// Faulty layers probabilistic loss, duplication, delay, corruption,
// reordering, burst loss and one-way partitions over any transport, so
// fault-injection tests written against the simnet model also run over
// real sockets. Closing the decorator closes the inner transport and
// discards datagrams still held back by delay.
func Faulty(inner Transport, cfg FaultConfig) *FaultyTransport {
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Wall
	}
	return &FaultyTransport{
		inner:  inner,
		cfg:    cfg,
		clock:  clock,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		timers: make(map[vclock.Timer]struct{}),
		oneWay: make(map[edge]struct{}),
	}
}

// edge is a directed sender→receiver pair, the unit of one-way cuts.
type edge struct{ from, to Addr }

// flip is one byte mutation a corrupted datagram suffers in flight.
type flip struct {
	pos int
	xor byte
}

// FaultyTransport is the decorator returned by Faulty. All fate rolls
// (loss, duplication, jitter) consume one shared seeded RNG under one
// mutex, so a given send sequence reproduces the same fates run after
// run; concurrent senders serialise on the mutex instead of racing the
// RNG state.
type FaultyTransport struct {
	inner Transport

	mu        sync.Mutex
	cfg       FaultConfig
	clock     vclock.Clock
	rng       *rand.Rand
	stats     FaultStats
	timers    map[vclock.Timer]struct{}
	oneWay    map[edge]struct{}
	burstLeft int // datagrams the current loss burst still swallows
	closed    bool
}

// Open opens the inner endpoint and wraps its sender. An inner endpoint
// that batches sends (BatchSender) stays batched through the decorator:
// the wrapper applies per-datagram fates at Enqueue time and forwards
// Flush, so fault injection composes with syscall amortization.
func (t *FaultyTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	ep, err := t.inner.Open(addr, recv)
	if err != nil {
		return nil, err
	}
	return wrapFaulty(t, ep), nil
}

// OpenBatch opens the inner endpoint in batch-receive mode, shimming
// per-packet delivery into singleton batches over fabrics without a
// batched receive path (simnet). The shim changes nothing observable:
// each datagram still arrives as its own callback, in the same order,
// so seeded scenario runs stay digest-identical. It implements the
// optional BatchOpener extension — the decorator always offers it, as
// it always offers Router.
func (t *FaultyTransport) OpenBatch(addr Addr, recv BatchRecvFunc) (Endpoint, error) {
	var ep Endpoint
	var err error
	if bo, ok := t.inner.(BatchOpener); ok {
		ep, err = bo.OpenBatch(addr, recv)
	} else {
		ep, err = t.inner.Open(addr, func(from Addr, data []byte) {
			recv([]Packet{{From: from, Data: data}})
		})
	}
	if err != nil {
		return nil, err
	}
	return wrapFaulty(t, ep), nil
}

// wrapFaulty picks the decorator shape that preserves the inner
// endpoint's batching capability.
func wrapFaulty(t *FaultyTransport, ep Endpoint) Endpoint {
	fe := faultyEndpoint{t: t, ep: ep}
	if bs, ok := ep.(BatchSender); ok {
		return faultyBatchEndpoint{faultyEndpoint: fe, bs: bs}
	}
	return fe
}

// Close closes the inner transport and cancels delayed datagrams still
// in flight.
func (t *FaultyTransport) Close() {
	t.mu.Lock()
	t.closed = true
	for tm := range t.timers {
		tm.Stop()
	}
	t.timers = make(map[vclock.Timer]struct{})
	t.mu.Unlock()
	t.inner.Close()
}

// AddRoute forwards to the inner transport when it supports routing;
// a no-op over implicit-routing fabrics, so the decorator is always a
// Router and view-driven route updates pass through it transparently.
func (t *FaultyTransport) AddRoute(addr Addr, endpoint string) error {
	if r, ok := t.inner.(Router); ok {
		return r.AddRoute(addr, endpoint)
	}
	return nil
}

// RemoveRoute forwards to the inner transport when it supports routing.
func (t *FaultyTransport) RemoveRoute(addr Addr) {
	if r, ok := t.inner.(Router); ok {
		r.RemoveRoute(addr)
	}
}

// SetLoss changes the loss probability for subsequent sends.
func (t *FaultyTransport) SetLoss(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.LossRate = p
}

// SetDup changes the duplication probability for subsequent sends.
func (t *FaultyTransport) SetDup(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.DupRate = p
}

// SetDelay changes the fixed delay for subsequent sends.
func (t *FaultyTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Delay = d
}

// SetJitter changes the jitter bound for subsequent sends.
func (t *FaultyTransport) SetJitter(j time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Jitter = j
}

// SetCorrupt changes the byte-corruption probability for subsequent
// sends.
func (t *FaultyTransport) SetCorrupt(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.CorruptRate = p
}

// SetReorder changes the reordering probability for subsequent sends.
func (t *FaultyTransport) SetReorder(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.ReorderRate = p
}

// SetBurst changes the burst-loss probability and burst length for
// subsequent sends. length <= 0 keeps the current (or default) length.
func (t *FaultyTransport) SetBurst(p float64, length int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.BurstRate = p
	if length > 0 {
		t.cfg.BurstLen = length
	}
}

// CutOneWay blocks datagrams sent from from to to; traffic in the
// opposite direction still flows. Cutting is deterministic (no RNG
// draw), so toggling partitions never perturbs the seeded fate
// sequence of other traffic.
func (t *FaultyTransport) CutOneWay(from, to Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.oneWay[edge{from, to}] = struct{}{}
}

// HealOneWay restores the directed link cut by CutOneWay.
func (t *FaultyTransport) HealOneWay(from, to Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.oneWay, edge{from, to})
}

// Stats returns a snapshot of the decorator's counters.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// fate rolls the dice for one send; n.b. a dropped datagram cannot also
// be duplicated, as in simnet. Each feature's RNG is only rolled when
// that feature is configured, so enabling and later disabling one
// restores the exact fate sequence tests recorded without it. n is the
// datagram length, bounding corruption positions.
func (t *FaultyTransport) fate(loopback bool, from, to Addr, n int) (drop, dup bool, delay time.Duration, flips []flip) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !loopback {
		if _, cut := t.oneWay[edge{from, to}]; cut {
			t.stats.Blocked++
			return true, false, 0, nil
		}
		// A burst in progress swallows datagrams without consulting the
		// RNG: correlated loss, not another independent roll.
		if t.burstLeft > 0 {
			t.burstLeft--
			t.stats.Dropped++
			t.stats.BurstDrops++
			return true, false, 0, nil
		}
	}
	if !loopback && t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		t.stats.Dropped++
		return true, false, 0, nil
	}
	if !loopback && t.cfg.BurstRate > 0 && t.rng.Float64() < t.cfg.BurstRate {
		length := t.cfg.BurstLen
		if length <= 0 {
			length = defaultBurstLen
		}
		t.burstLeft = length - 1
		t.stats.Dropped++
		t.stats.BurstDrops++
		return true, false, 0, nil
	}
	if !loopback && t.cfg.DupRate > 0 && t.rng.Float64() < t.cfg.DupRate {
		t.stats.Duplicated++
		dup = true
	}
	if !loopback && n > 0 && t.cfg.CorruptRate > 0 && t.rng.Float64() < t.cfg.CorruptRate {
		flips = make([]flip, 1+t.rng.Intn(3))
		for i := range flips {
			flips[i] = flip{pos: t.rng.Intn(n), xor: byte(1 + t.rng.Intn(255))}
		}
		t.stats.Corrupted++
		corruptedCounter.Add(1)
	}
	if !loopback {
		delay = t.cfg.Delay
		if t.cfg.Jitter > 0 {
			delay += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
		}
		if t.cfg.ReorderRate > 0 && t.rng.Float64() < t.cfg.ReorderRate {
			rd := t.cfg.ReorderDelay
			if rd <= 0 {
				rd = defaultReorderDelay
			}
			delay += rd
			t.stats.Reordered++
			reorderedCounter.Add(1)
		}
	}
	t.stats.Passed++
	if delay > 0 {
		t.stats.Delayed++
	}
	return false, dup, delay, flips
}

// after schedules a delayed transmission, tracked so Close can cancel
// it. The data has already been copied by the caller.
func (t *FaultyTransport) after(delay time.Duration, send func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	var tm vclock.Timer
	tm = t.clock.AfterFunc(delay, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		closed := t.closed
		t.mu.Unlock()
		if !closed {
			send()
		}
	})
	t.timers[tm] = struct{}{}
}

type faultyEndpoint struct {
	t  *FaultyTransport
	ep Endpoint
}

func (e faultyEndpoint) Addr() Addr { return e.ep.Addr() }

func (e faultyEndpoint) Send(to Addr, data []byte) {
	from := e.ep.Addr()
	drop, dup, delay, flips := e.t.fate(to == from, from, to, len(data))
	if drop {
		return
	}
	if delay <= 0 && len(flips) == 0 {
		e.ep.Send(to, data)
		if dup {
			e.ep.Send(to, data)
		}
		return
	}
	// The transport contract lets the caller reuse data once Send
	// returns; a held-back or mutated datagram must carry its own copy.
	buf := append([]byte(nil), data...)
	for _, f := range flips {
		buf[f.pos] ^= f.xor
	}
	if delay <= 0 {
		e.ep.Send(to, buf)
		if dup {
			e.ep.Send(to, buf)
		}
		return
	}
	e.t.after(delay, func() {
		e.ep.Send(to, buf)
		if dup {
			e.ep.Send(to, buf)
		}
	})
}

func (e faultyEndpoint) Close() { e.ep.Close() }

// faultyBatchEndpoint decorates a batching endpoint: every Enqueue
// rolls the same per-datagram fate as Send would (the fate sequence is
// indifferent to which path carried the datagram), survivors stay on
// the inner batch queue, and Flush passes through.
type faultyBatchEndpoint struct {
	faultyEndpoint
	bs BatchSender
}

func (e faultyBatchEndpoint) Enqueue(to Addr, data []byte) {
	from := e.ep.Addr()
	drop, dup, delay, flips := e.t.fate(to == from, from, to, len(data))
	if drop {
		return
	}
	if delay <= 0 && len(flips) == 0 {
		e.bs.Enqueue(to, data)
		if dup {
			e.bs.Enqueue(to, data)
		}
		return
	}
	// Held-back or mutated datagrams carry their own copy, as in Send.
	buf := append([]byte(nil), data...)
	for _, f := range flips {
		buf[f.pos] ^= f.xor
	}
	if delay <= 0 {
		e.bs.Enqueue(to, buf)
		if dup {
			e.bs.Enqueue(to, buf)
		}
		return
	}
	// A delayed datagram re-materializes on a timer goroutine, outside
	// any executor pass — no Flush will follow, and BatchSender's
	// single-caller contract forbids touching the queue from here. Send
	// it directly: one unbatched syscall per delayed datagram is the
	// cost of shaping it.
	e.t.after(delay, func() {
		e.ep.Send(to, buf)
		if dup {
			e.ep.Send(to, buf)
		}
	})
}

func (e faultyBatchEndpoint) Flush() { e.bs.Flush() }
