package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// FaultConfig parameterises the Faulty decorator with simnet's loss and
// duplication semantics: every non-loopback send is independently lost
// with probability LossRate, and (when it survives) duplicated with
// probability DupRate, then delayed by Delay plus a uniform random
// jitter in [0, Jitter). Loopback (self-addressed) sends are never
// dropped or delayed, matching simnet.
//
// All rates are runtime-mutable (SetLoss, SetDup, SetDelay, SetJitter),
// so a scenario can reshape a live link — the environment timelines of
// cmd/dpu-bench -scenario run on exactly this.
type FaultConfig struct {
	// Seed makes packet fates reproducible.
	Seed int64
	// LossRate is the probability a datagram is dropped, in [0, 1].
	LossRate float64
	// DupRate is the probability a datagram is sent twice, in [0, 1].
	DupRate float64
	// Delay postpones every surviving non-loopback datagram.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Clock schedules the delay/jitter timers. Nil means vclock.Wall;
	// under a vclock.Virtual the held-back datagrams release on virtual
	// time, so seeded fault runs replay identically (and never stall
	// waiting for wall timers the virtual clock cannot advance).
	Clock vclock.Clock
}

// FaultStats counts the decorator's interventions.
type FaultStats struct {
	Passed     uint64
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
}

// Shaper is the runtime-mutable traffic-shaping surface shared by the
// Faulty decorator and (via Cluster.SetLoss and friends) the built-in
// simulated network: loss, fixed delay and jitter can be changed while
// traffic flows. The adaptation scenarios drive their environment
// timelines through this interface.
type Shaper interface {
	SetLoss(p float64)
	SetDelay(d time.Duration)
	SetJitter(j time.Duration)
}

// Faulty layers probabilistic loss, duplication and delay over any
// transport, so fault-injection tests written against the simnet model
// also run over real sockets. Closing the decorator closes the inner
// transport and discards datagrams still held back by delay.
func Faulty(inner Transport, cfg FaultConfig) *FaultyTransport {
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Wall
	}
	return &FaultyTransport{
		inner:  inner,
		cfg:    cfg,
		clock:  clock,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		timers: make(map[vclock.Timer]struct{}),
	}
}

// FaultyTransport is the decorator returned by Faulty. All fate rolls
// (loss, duplication, jitter) consume one shared seeded RNG under one
// mutex, so a given send sequence reproduces the same fates run after
// run; concurrent senders serialise on the mutex instead of racing the
// RNG state.
type FaultyTransport struct {
	inner Transport

	mu     sync.Mutex
	cfg    FaultConfig
	clock  vclock.Clock
	rng    *rand.Rand
	stats  FaultStats
	timers map[vclock.Timer]struct{}
	closed bool
}

// Open opens the inner endpoint and wraps its sender.
func (t *FaultyTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	ep, err := t.inner.Open(addr, recv)
	if err != nil {
		return nil, err
	}
	return faultyEndpoint{t: t, ep: ep}, nil
}

// Close closes the inner transport and cancels delayed datagrams still
// in flight.
func (t *FaultyTransport) Close() {
	t.mu.Lock()
	t.closed = true
	for tm := range t.timers {
		tm.Stop()
	}
	t.timers = make(map[vclock.Timer]struct{})
	t.mu.Unlock()
	t.inner.Close()
}

// AddRoute forwards to the inner transport when it supports routing;
// a no-op over implicit-routing fabrics, so the decorator is always a
// Router and view-driven route updates pass through it transparently.
func (t *FaultyTransport) AddRoute(addr Addr, endpoint string) error {
	if r, ok := t.inner.(Router); ok {
		return r.AddRoute(addr, endpoint)
	}
	return nil
}

// RemoveRoute forwards to the inner transport when it supports routing.
func (t *FaultyTransport) RemoveRoute(addr Addr) {
	if r, ok := t.inner.(Router); ok {
		r.RemoveRoute(addr)
	}
}

// SetLoss changes the loss probability for subsequent sends.
func (t *FaultyTransport) SetLoss(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.LossRate = p
}

// SetDup changes the duplication probability for subsequent sends.
func (t *FaultyTransport) SetDup(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.DupRate = p
}

// SetDelay changes the fixed delay for subsequent sends.
func (t *FaultyTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Delay = d
}

// SetJitter changes the jitter bound for subsequent sends.
func (t *FaultyTransport) SetJitter(j time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Jitter = j
}

// Stats returns a snapshot of the decorator's counters.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// fate rolls the dice for one send; n.b. a dropped datagram cannot also
// be duplicated, as in simnet. Jitter is only rolled when configured,
// so enabling and later disabling delay restores the exact fate
// sequence loss/dup tests recorded without it.
func (t *FaultyTransport) fate(loopback bool) (drop, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !loopback && t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		t.stats.Dropped++
		return true, false, 0
	}
	if !loopback && t.cfg.DupRate > 0 && t.rng.Float64() < t.cfg.DupRate {
		t.stats.Duplicated++
		dup = true
	}
	if !loopback {
		delay = t.cfg.Delay
		if t.cfg.Jitter > 0 {
			delay += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
		}
	}
	t.stats.Passed++
	if delay > 0 {
		t.stats.Delayed++
	}
	return false, dup, delay
}

// after schedules a delayed transmission, tracked so Close can cancel
// it. The data has already been copied by the caller.
func (t *FaultyTransport) after(delay time.Duration, send func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	var tm vclock.Timer
	tm = t.clock.AfterFunc(delay, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		closed := t.closed
		t.mu.Unlock()
		if !closed {
			send()
		}
	})
	t.timers[tm] = struct{}{}
}

type faultyEndpoint struct {
	t  *FaultyTransport
	ep Endpoint
}

func (e faultyEndpoint) Addr() Addr { return e.ep.Addr() }

func (e faultyEndpoint) Send(to Addr, data []byte) {
	drop, dup, delay := e.t.fate(to == e.ep.Addr())
	if drop {
		return
	}
	if delay <= 0 {
		e.ep.Send(to, data)
		if dup {
			e.ep.Send(to, data)
		}
		return
	}
	// The transport contract lets the caller reuse data once Send
	// returns; a held-back datagram must carry its own copy.
	buf := append([]byte(nil), data...)
	e.t.after(delay, func() {
		e.ep.Send(to, buf)
		if dup {
			e.ep.Send(to, buf)
		}
	})
}

func (e faultyEndpoint) Close() { e.ep.Close() }
