package transport

import (
	"math/rand"
	"sync"
)

// FaultConfig parameterises the Faulty decorator with simnet's loss and
// duplication semantics: every non-loopback send is independently lost
// with probability LossRate, and (when it survives) duplicated with
// probability DupRate. Loopback (self-addressed) sends are never
// dropped, matching simnet.
type FaultConfig struct {
	// Seed makes packet fates reproducible.
	Seed int64
	// LossRate is the probability a datagram is dropped, in [0, 1].
	LossRate float64
	// DupRate is the probability a datagram is sent twice, in [0, 1].
	DupRate float64
}

// FaultStats counts the decorator's interventions.
type FaultStats struct {
	Passed     uint64
	Dropped    uint64
	Duplicated uint64
}

// Faulty layers probabilistic loss and duplication over any transport,
// so fault-injection tests written against the simnet model also run
// over real sockets. Closing the decorator closes the inner transport.
func Faulty(inner Transport, cfg FaultConfig) *FaultyTransport {
	return &FaultyTransport{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// FaultyTransport is the decorator returned by Faulty.
type FaultyTransport struct {
	inner Transport
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// Open opens the inner endpoint and wraps its sender.
func (t *FaultyTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	ep, err := t.inner.Open(addr, recv)
	if err != nil {
		return nil, err
	}
	return faultyEndpoint{t: t, ep: ep}, nil
}

// Close closes the inner transport.
func (t *FaultyTransport) Close() { t.inner.Close() }

// AddRoute forwards to the inner transport when it supports routing;
// a no-op over implicit-routing fabrics, so the decorator is always a
// Router and view-driven route updates pass through it transparently.
func (t *FaultyTransport) AddRoute(addr Addr, endpoint string) error {
	if r, ok := t.inner.(Router); ok {
		return r.AddRoute(addr, endpoint)
	}
	return nil
}

// RemoveRoute forwards to the inner transport when it supports routing.
func (t *FaultyTransport) RemoveRoute(addr Addr) {
	if r, ok := t.inner.(Router); ok {
		r.RemoveRoute(addr)
	}
}

// Stats returns a snapshot of the decorator's counters.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// fate rolls the dice for one send; n.b. a dropped datagram cannot also
// be duplicated, as in simnet.
func (t *FaultyTransport) fate(loopback bool) (drop, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !loopback && t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		t.stats.Dropped++
		return true, false
	}
	if !loopback && t.cfg.DupRate > 0 && t.rng.Float64() < t.cfg.DupRate {
		t.stats.Duplicated++
		t.stats.Passed++
		return false, true
	}
	t.stats.Passed++
	return false, false
}

type faultyEndpoint struct {
	t  *FaultyTransport
	ep Endpoint
}

func (e faultyEndpoint) Addr() Addr { return e.ep.Addr() }

func (e faultyEndpoint) Send(to Addr, data []byte) {
	drop, dup := e.t.fate(to == e.ep.Addr())
	if drop {
		return
	}
	e.ep.Send(to, data)
	if dup {
		e.ep.Send(to, data)
	}
}

func (e faultyEndpoint) Close() { e.ep.Close() }
