package transport

import "repro/internal/simnet"

// Sim adapts an internal/simnet fabric to the Transport interface. The
// simnet network keeps its full fault model (latency, jitter,
// bandwidth, loss, duplication, partitions, crashes) and its
// determinism; closing the returned transport closes the underlying
// network.
//
// The adapter deliberately implements neither BatchOpener nor
// BatchSender: simnet has no syscalls to amortize, and keeping the
// per-datagram path means every scenario event fires exactly as it did
// before batching existed, preserving the corpus's bit-identical
// digests. Callers that batch (the udp module) fall back transparently.
func Sim(n *simnet.Network) Transport { return simTransport{n} }

type simTransport struct{ net *simnet.Network }

func (t simTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	ep, err := t.net.Open(simnet.Addr(addr), func(from simnet.Addr, data []byte) {
		recv(Addr(from), data)
	})
	if err != nil {
		return nil, err
	}
	return simEndpoint{ep}, nil
}

func (t simTransport) Close() { t.net.Close() }

type simEndpoint struct{ ep *simnet.Endpoint }

func (e simEndpoint) Addr() Addr             { return Addr(e.ep.Addr()) }
func (e simEndpoint) Send(to Addr, b []byte) { e.ep.Send(simnet.Addr(to), b) }
func (e simEndpoint) Close()                 { e.ep.Close() }
