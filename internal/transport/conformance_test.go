// Conformance runs for every backend. This file is in the EXTERNAL
// test package on purpose: transporttest imports transport, so only
// package transport_test files may import it back (see the package
// comment in transporttest).
package transport_test

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

func bookOf(t testing.TB, addrs []transport.Addr, reserve func(testing.TB, int) []string) map[transport.Addr]string {
	t.Helper()
	ports := reserve(t, len(addrs))
	book := make(map[transport.Addr]string, len(addrs))
	for i, a := range addrs {
		book[a] = ports[i]
	}
	return book
}

// TestConformanceSim runs the contract suite over the deterministic
// simulated fabric (fault-free: reliable, but jitter may reorder).
func TestConformanceSim(t *testing.T) {
	transporttest.Conformance{
		New: func(t testing.TB, addrs []transport.Addr) transport.Transport {
			return transport.Sim(simnet.New(simnet.Config{Seed: 1}))
		},
		Reliable:       true,
		DeliverPayload: 128 << 10, // the simulator has no datagram ceiling
	}.Run(t)
}

// TestConformanceUDP runs the suite over real UDP loopback sockets with
// the batched (sendmmsg/recvmmsg) backend where the platform has it.
func TestConformanceUDP(t *testing.T) {
	transporttest.Conformance{
		New: func(t testing.TB, addrs []transport.Addr) transport.Transport {
			tr, err := transport.NewUDP(transport.UDPConfig{
				Book: bookOf(t, addrs, transporttest.ReserveAddrs),
			})
			if err != nil {
				t.Fatalf("NewUDP: %v", err)
			}
			return tr
		},
		Reserve:        transporttest.ReserveAddrs,
		DeliverPayload: 60000,                 // near the datagram ceiling
		DropPayload:    transport.MaxDatagram, // header leaves no room: dropped
	}.Run(t)
}

// TestConformanceUDPFallback forces the portable single-datagram
// syscall path (the non-linux shape of the same backend).
func TestConformanceUDPFallback(t *testing.T) {
	transporttest.Conformance{
		New: func(t testing.TB, addrs []transport.Addr) transport.Transport {
			tr, err := transport.NewUDP(transport.UDPConfig{
				Book:            bookOf(t, addrs, transporttest.ReserveAddrs),
				DisableBatching: true,
			})
			if err != nil {
				t.Fatalf("NewUDP: %v", err)
			}
			return tr
		},
		Reserve:        transporttest.ReserveAddrs,
		DeliverPayload: 60000,
		DropPayload:    transport.MaxDatagram,
	}.Run(t)
}

// TestConformanceTCP runs the suite over the stream backend: ordered,
// reliable, and required to carry payloads far past the datagram
// ceiling (fragmented and reassembled).
func TestConformanceTCP(t *testing.T) {
	transporttest.Conformance{
		New: func(t testing.TB, addrs []transport.Addr) transport.Transport {
			tr, err := transport.NewTCP(transport.TCPConfig{
				Book:       bookOf(t, addrs, transporttest.ReserveStreamAddrs),
				MaxMessage: 1 << 20,
			})
			if err != nil {
				t.Fatalf("NewTCP: %v", err)
			}
			return tr
		},
		Reserve:        transporttest.ReserveStreamAddrs,
		Ordered:        true,
		Reliable:       true,
		DeliverPayload: 1 << 20,       // 16× the datagram ceiling
		DropPayload:    (1 << 20) + 1, // over MaxMessage: dropped
	}.Run(t)
}
