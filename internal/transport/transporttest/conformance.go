// Package transporttest provides shared helpers for tests that run
// transport backends on the loopback interface, and a backend-agnostic
// conformance suite that pins the Transport contract (best-effort
// delivery, payload limits, close-during-send safety, the optional
// BatchSender/Router extensions and Faulty wrapping) across Sim, UDP
// and TCP.
//
// Because this package imports internal/transport, the transport
// package's own IN-PACKAGE tests must not import it (that would be an
// import cycle); they keep a local copy of the port-reservation helper,
// and the conformance suite is invoked from external (package
// transport_test) files.
package transporttest

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// ReserveAddrs binds n ephemeral loopback UDP ports, releases them and
// returns their "host:port" addresses in order — the raw material for
// an address book keyed by small integer group addresses. The tiny
// window in which another process could grab a released port is
// acceptable in tests.
func ReserveAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// ReserveStreamAddrs is ReserveAddrs for stream backends: it reserves
// ephemeral loopback TCP ports.
func ReserveStreamAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	ls := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		ls = append(ls, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

// Factory builds a fresh, isolated transport whose fabric (or address
// book) covers every address in addrs. Each conformance subtest calls
// it once; the suite closes the transport itself.
type Factory func(t testing.TB, addrs []transport.Addr) transport.Transport

// Conformance describes one backend under the contract suite. The
// boolean knobs encode where the Transport contract leaves backends
// room to differ; everything else is asserted identically.
type Conformance struct {
	// New builds the backend.
	New Factory
	// Reserve reserves loopback "host:port" strings routable by this
	// backend, for the Router subtest. nil skips Router coverage (the
	// simulated fabric has implicit routing).
	Reserve func(t testing.TB, n int) []string
	// Ordered asserts per-pair FIFO: what arrives from one peer arrives
	// in send order with no duplicates. True for stream backends; a
	// datagram contract permits reordering, so the suite only checks
	// delivery there.
	Ordered bool
	// Reliable asserts loopback delivery without resend: every accepted
	// Send arrives. Stream backends and the fault-free simulator are
	// reliable; real UDP under burst load may shed datagrams, so the
	// suite retries sends instead.
	Reliable bool
	// DeliverPayload is a payload size that must round-trip (pick the
	// backend's documented ceiling). Zero skips the large-payload probe.
	DeliverPayload int
	// DropPayload is a payload size the backend must DROP silently —
	// no delivery, no error, no wedged endpoint. Zero skips the probe.
	DropPayload int
}

// Run executes the conformance suite as subtests of t.
func (c Conformance) Run(t *testing.T) {
	t.Run("Loopback", c.loopback)
	t.Run("Ordering", c.ordering)
	t.Run("PayloadLimits", c.payloadLimits)
	t.Run("Batch", c.batch)
	t.Run("CloseDuringSend", c.closeDuringSend)
	t.Run("Router", c.router)
	t.Run("FaultyWrap", c.faultyWrap)
}

// sink collects deliveries for one endpoint.
type sink struct {
	mu   sync.Mutex
	msgs []transport.Packet
}

func (s *sink) recv(from transport.Addr, data []byte) {
	s.mu.Lock()
	s.msgs = append(s.msgs, transport.Packet{From: from, Data: data})
	s.mu.Unlock()
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) snapshot() []transport.Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]transport.Packet(nil), s.msgs...)
}

// waitFor polls cond (≈1ms cadence) until it holds or the deadline
// passes, reporting whether it held. Transports deliver asynchronously,
// so every assertion about arrival goes through here.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

const arrival = 10 * time.Second

// deliver sends payload until it shows up in s (a single send for
// reliable backends), failing the test on timeout.
func (c Conformance) deliver(t *testing.T, ep transport.Endpoint, to transport.Addr, s *sink, payload []byte, what string) {
	t.Helper()
	has := func() bool {
		for _, p := range s.snapshot() {
			if bytes.Equal(p.Data, payload) {
				return true
			}
		}
		return false
	}
	if c.Reliable {
		ep.Send(to, payload)
		if !waitFor(arrival, has) {
			t.Fatalf("%s: payload never delivered on a reliable backend", what)
		}
		return
	}
	deadline := time.Now().Add(arrival)
	for time.Now().Before(deadline) {
		ep.Send(to, payload)
		if waitFor(50*time.Millisecond, has) {
			return
		}
	}
	t.Fatalf("%s: payload never delivered (with resends)", what)
}

func (c Conformance) loopback(t *testing.T) {
	tr := c.New(t, []transport.Addr{1, 2})
	defer tr.Close()
	var s1, s2 sink
	ep1, err := tr.Open(1, s1.recv)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	ep2, err := tr.Open(2, s2.recv)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if got := ep1.Addr(); got != 1 {
		t.Fatalf("ep1.Addr() = %d, want 1", got)
	}
	c.deliver(t, ep1, 2, &s2, []byte("hello from 1"), "1->2")
	c.deliver(t, ep2, 1, &s1, []byte("hello from 2"), "2->1")
	for _, p := range s2.snapshot() {
		if p.From != 1 {
			t.Fatalf("endpoint 2 got a packet attributed to %d, want 1", p.From)
		}
	}
	// Opening an already-open address must fail rather than hijack it.
	if _, err := tr.Open(1, s1.recv); err == nil {
		t.Fatalf("second Open(1) succeeded; want error")
	}
}

func (c Conformance) ordering(t *testing.T) {
	tr := c.New(t, []transport.Addr{1, 2})
	defer tr.Close()
	var s sink
	ep1, err := tr.Open(1, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if _, err := tr.Open(2, s.recv); err != nil {
		t.Fatalf("open 2: %v", err)
	}
	// Establish the path first so unreliable backends do not shed the
	// burst's head while (e.g.) ARP or connection setup completes.
	c.deliver(t, ep1, 2, &s, []byte("warmup"), "warmup")
	const n = 100
	for i := 0; i < n; i++ {
		ep1.Send(2, []byte(fmt.Sprintf("seq-%04d", i)))
	}
	if c.Reliable {
		if !waitFor(arrival, func() bool { return s.count() >= n+1 }) {
			t.Fatalf("delivered %d of %d messages on a reliable backend", s.count()-1, n)
		}
	} else {
		// Give an unreliable backend a beat to drain what it kept.
		waitFor(500*time.Millisecond, func() bool { return s.count() >= n+1 })
	}
	if !c.Ordered {
		return
	}
	last := -1
	for _, p := range s.snapshot()[1:] {
		var seq int
		if _, err := fmt.Sscanf(string(p.Data), "seq-%d", &seq); err != nil {
			t.Fatalf("unexpected payload %q", p.Data)
		}
		if seq <= last {
			t.Fatalf("ordering violation on an ordered backend: %d after %d", seq, last)
		}
		last = seq
	}
}

// payloadPattern fills a large payload with position-dependent bytes so
// a reassembly that scrambles fragment order cannot pass.
func payloadPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func (c Conformance) payloadLimits(t *testing.T) {
	if c.DeliverPayload == 0 && c.DropPayload == 0 {
		t.Skip("backend declares no payload limits to probe")
	}
	tr := c.New(t, []transport.Addr{1, 2})
	defer tr.Close()
	var s sink
	ep1, err := tr.Open(1, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if _, err := tr.Open(2, s.recv); err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if c.DropPayload > 0 {
		// Oversize first: it must vanish without wedging the endpoint.
		ep1.Send(2, payloadPattern(c.DropPayload))
	}
	if c.DeliverPayload > 0 {
		big := payloadPattern(c.DeliverPayload)
		c.deliver(t, ep1, 2, &s, big, fmt.Sprintf("%d-byte payload", len(big)))
	}
	c.deliver(t, ep1, 2, &s, []byte("after-oversize"), "small payload after oversize")
	if c.DropPayload > 0 {
		for _, p := range s.snapshot() {
			if len(p.Data) == c.DropPayload {
				t.Fatalf("over-limit %d-byte payload was delivered", c.DropPayload)
			}
		}
	}
}

func (c Conformance) batch(t *testing.T) {
	tr := c.New(t, []transport.Addr{1, 2})
	defer tr.Close()
	var s sink
	ep1, err := tr.Open(1, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if _, err := tr.Open(2, s.recv); err != nil {
		t.Fatalf("open 2: %v", err)
	}
	bs, ok := ep1.(transport.BatchSender)
	if !ok {
		t.Skip("backend endpoints do not implement BatchSender")
	}
	c.deliver(t, ep1, 2, &s, []byte("warmup"), "warmup")
	// A batch that ends in Flush is equivalent to the same plain Sends.
	const n = 20
	sent := make(map[string]bool, n)
	flush := func() {
		bs.Flush()
		if !c.Reliable {
			return
		}
		ok := waitFor(arrival, func() bool {
			got := 0
			for _, p := range s.snapshot() {
				if sent[string(p.Data)] {
					got++
				}
			}
			return got >= len(sent)
		})
		if !ok {
			t.Fatalf("flushed batch not fully delivered on a reliable backend (%d sent)", len(sent))
		}
	}
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("batch-%04d", i)
		sent[msg] = true
		bs.Enqueue(2, []byte(msg))
	}
	flush()
	// An empty flush is a no-op, not an error.
	bs.Flush()
	// Unreliable backends: retry whole batches until everything landed.
	if !c.Reliable {
		deadline := time.Now().Add(arrival)
		for time.Now().Before(deadline) {
			missing := make(map[string]bool, len(sent))
			for m := range sent {
				missing[m] = true
			}
			for _, p := range s.snapshot() {
				delete(missing, string(p.Data))
			}
			if len(missing) == 0 {
				return
			}
			for m := range missing {
				bs.Enqueue(2, []byte(m))
			}
			bs.Flush()
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("enqueued batch never fully delivered (with resends)")
	}
}

func (c Conformance) closeDuringSend(t *testing.T) {
	tr := c.New(t, []transport.Addr{1, 2})
	var s sink
	ep1, err := tr.Open(1, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	ep2, err := tr.Open(2, s.recv)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	c.deliver(t, ep1, 2, &s, []byte("pre-close"), "pre-close")
	// Hammer sends from several goroutines while both the receiving
	// endpoint and then the whole transport close underneath them: no
	// panic, no deadlock; post-close sends are silently dropped.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("hammer-%d", g))
			// Bounded and paced: the probe is close-during-send SAFETY,
			// not throughput, and an unbounded tight loop piles up
			// in-flight work some backends (simnet timers) then have to
			// drain at Close.
			for i := 0; i < 2000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep1.Send(2, payload)
				if i%100 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			<-stop
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	ep2.Close()
	time.Sleep(5 * time.Millisecond)
	tr.Close()
	close(stop)
	wg.Wait()
	// The endpoint slot must be reusable after an endpoint-level Close
	// on a still-open transport; after transport Close, Open must fail.
	if _, err := tr.Open(2, s.recv); err == nil {
		t.Fatalf("Open succeeded on a closed transport")
	}
	ep1.Send(2, []byte("post-close")) // must not panic
}

func (c Conformance) router(t *testing.T) {
	if c.Reserve == nil {
		t.Skip("backend has implicit routing (no Router extension)")
	}
	tr := c.New(t, []transport.Addr{1, 2})
	defer tr.Close()
	rt, ok := tr.(transport.Router)
	if !ok {
		t.Fatalf("backend reserves addresses but does not implement Router")
	}
	var s1, s3 sink
	ep1, err := tr.Open(1, s1.recv)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	// Address 3 is not in the book: sends to it are dropped as loss.
	ep1.Send(3, []byte("unrouted"))
	// Admit 3 at a fresh loopback port, open it, and traffic flows.
	extra := c.Reserve(t, 1)[0]
	if err := rt.AddRoute(3, extra); err != nil {
		t.Fatalf("AddRoute(3, %q): %v", extra, err)
	}
	ep3, err := tr.Open(3, s3.recv)
	if err != nil {
		t.Fatalf("open 3 after AddRoute: %v", err)
	}
	c.deliver(t, ep1, 3, &s3, []byte("routed"), "1->3 after AddRoute")
	c.deliver(t, ep3, 1, &s1, []byte("back"), "3->1 after AddRoute")
	// Retire the route: subsequent sends to 3 drop; the endpoint itself
	// keeps working for other destinations.
	rt.RemoveRoute(3)
	before := s3.count()
	for i := 0; i < 5; i++ {
		ep1.Send(3, []byte(fmt.Sprintf("after-remove-%d", i)))
	}
	if waitFor(200*time.Millisecond, func() bool { return s3.count() > before }) {
		t.Fatalf("send to a removed route was delivered")
	}
}

func (c Conformance) faultyWrap(t *testing.T) {
	inner := c.New(t, []transport.Addr{1, 2})
	tr := transport.Faulty(inner, transport.FaultConfig{Seed: 42})
	defer tr.Close()
	var s sink
	ep1, err := tr.Open(1, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if _, err := tr.Open(2, s.recv); err != nil {
		t.Fatalf("open 2: %v", err)
	}
	// Zero-rate wrap: behavior unchanged.
	c.deliver(t, ep1, 2, &s, []byte("through faulty"), "1->2 through zero-rate Faulty")
	// Total loss: nothing new arrives.
	tr.SetLoss(1.0)
	before := s.count()
	for i := 0; i < 10; i++ {
		ep1.Send(2, []byte(fmt.Sprintf("lost-%d", i)))
	}
	if waitFor(200*time.Millisecond, func() bool { return s.count() > before }) {
		t.Fatalf("packet delivered through loss=1.0")
	}
	// Heal: traffic flows again (resend loop rides out queued fates).
	tr.SetLoss(0)
	c.deliver(t, ep1, 2, &s, []byte("healed"), "1->2 after loss healed")
}
