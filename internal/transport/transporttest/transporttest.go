// Package transporttest provides shared helpers for tests that run the
// real-socket transport backend on the loopback interface. It must not
// import internal/transport, so the transport package's own internal
// tests can use it too.
package transporttest

import (
	"net"
	"testing"
)

// ReserveAddrs binds n ephemeral loopback UDP ports, releases them and
// returns their "host:port" addresses in order — the raw material for
// an address book keyed by small integer group addresses. The tiny
// window in which another process could grab a released port is
// acceptable in tests.
func ReserveAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}
