package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// reserveStreamBook builds a TCP address book over freshly reserved
// loopback ports (local copy of transporttest.ReserveStreamAddrs; see
// reserveLoopbackAddrs for why the import is off limits).
func reserveStreamBook(t testing.TB, n int) map[Addr]string {
	t.Helper()
	book := make(map[Addr]string, n)
	ls := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		ls = append(ls, l)
		book[Addr(i)] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	return book
}

func newTestTCP(t testing.TB, book map[Addr]string) *TCPTransport {
	t.Helper()
	tr, err := NewTCP(TCPConfig{Book: book, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTCPRoundTrip(t *testing.T) {
	tr := newTestTCP(t, reserveStreamBook(t, 2))
	defer tr.Close()
	recv0, ch0 := collector(8)
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, recv0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, recv1)
	if err != nil {
		t.Fatal(err)
	}

	ep0.Send(1, []byte("ping"))
	expectPacket(t, ch1, packet{0, "ping"})
	ep1.Send(0, []byte("pong"))
	expectPacket(t, ch0, packet{1, "pong"})

	// Loopback: a self-addressed message comes back through a real
	// connection to our own listener.
	ep0.Send(0, []byte("self"))
	expectPacket(t, ch0, packet{0, "self"})

	// Empty payloads survive framing (a single empty FIN frame).
	ep1.Send(0, nil)
	expectPacket(t, ch0, packet{1, ""})

	st := tr.Stats()
	if st.Delivered != 4 || st.Malformed != 0 || st.SendErrs != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Dials == 0 {
		t.Fatalf("no dials counted: %+v", st)
	}
}

// TestTCPLargePayload round-trips a payload ~16× the UDP datagram
// ceiling: it must be fragmented on the wire and reassembled exactly.
func TestTCPLargePayload(t *testing.T) {
	tr := newTestTCP(t, reserveStreamBook(t, 2))
	defer tr.Close()
	got := make(chan []byte, 1)
	if _, err := tr.Open(0, func(from Addr, data []byte) { got <- data }); err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i*7 + i>>9)
	}
	ep1.Send(0, big)
	select {
	case data := <-got:
		if !bytes.Equal(data, big) {
			t.Fatalf("large payload corrupted in flight (%d bytes)", len(data))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large payload never delivered")
	}
	if st := tr.Stats(); st.Fragments < uint64(len(big)/DefaultMaxFragment) {
		t.Fatalf("expected ≥%d fragments, stats %+v", len(big)/DefaultMaxFragment, st)
	}
}

// TestTCPReconnect kills the receiving endpoint and reopens it: the
// sender must redial (counted as a reconnect) and traffic resume.
func TestTCPReconnect(t *testing.T) {
	book := reserveStreamBook(t, 2)
	tr := newTestTCP(t, book)
	defer tr.Close()
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, recv1)
	if err != nil {
		t.Fatal(err)
	}
	ep0.Send(1, []byte("before"))
	expectPacket(t, ch1, packet{0, "before"})

	ep1.Close()
	recv1b, ch1b := collector(8)
	if _, err := tr.Open(1, recv1b); err != nil {
		t.Fatalf("reopen 1: %v", err)
	}
	// The sender's old connection is dead; keep sending until the
	// redial lands (frames sent into the dying connection are loss).
	deadline := time.Now().Add(10 * time.Second)
	for {
		ep0.Send(1, []byte("after"))
		select {
		case got := <-ch1b:
			if got.data != "after" || got.from != 0 {
				t.Fatalf("unexpected packet %+v", got)
			}
			if st := tr.Stats(); st.Reconnects == 0 {
				t.Fatalf("no reconnect counted: %+v", st)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("traffic never resumed after reconnect")
		}
	}
}

// TestTCPSimultaneousDial has both peers dial each other at once, many
// times: the lower-address initiator must win the tie-break on both
// sides, and traffic must keep flowing both ways afterwards.
func TestTCPSimultaneousDial(t *testing.T) {
	tr := newTestTCP(t, reserveStreamBook(t, 2))
	defer tr.Close()
	recv0, ch0 := collector(64)
	recv1, ch1 := collector(64)
	ep0, err := tr.Open(0, recv0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, recv1)
	if err != nil {
		t.Fatal(err)
	}
	// First sends from both sides race their dials.
	ep0.Send(1, []byte("race-0"))
	ep1.Send(0, []byte("race-1"))
	// Whatever connections died in the tie-break, these must arrive
	// (possibly after a redial).
	deliver := func(ep Endpoint, to Addr, ch chan packet, payload string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			ep.Send(to, []byte(payload))
			select {
			case got := <-ch:
				if got.data == payload {
					return
				}
			case <-time.After(20 * time.Millisecond):
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never delivered", payload)
			}
		}
	}
	deliver(ep0, 1, ch1, "steady-0")
	deliver(ep1, 0, ch0, "steady-1")
}

func TestTCPSendErrors(t *testing.T) {
	tr, err := NewTCP(TCPConfig{Book: reserveStreamBook(t, 1), MaxMessage: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, ch := collector(1)
	ep, err := tr.Open(0, recv)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(9, []byte("no such peer"))
	ep.Send(0, make([]byte, 4096)) // beyond MaxMessage
	expectQuiet(t, ch, 50*time.Millisecond)
	if st := tr.Stats(); st.SendErrs != 2 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPRemoveRouteDropsLink evicts a peer mid-stream: its connection
// closes, queued frames are discarded, and later sends drop as loss.
func TestTCPRemoveRouteDropsLink(t *testing.T) {
	tr := newTestTCP(t, reserveStreamBook(t, 2))
	defer tr.Close()
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	ep0.Send(1, []byte("pre"))
	expectPacket(t, ch1, packet{0, "pre"})

	tr.RemoveRoute(1)
	ep0.Send(1, []byte("post"))
	expectQuiet(t, ch1, 100*time.Millisecond)
	if st := tr.Stats(); st.SendErrs == 0 {
		t.Fatalf("post-eviction send not counted as loss: %+v", st)
	}
}

// TestTCPRejectsStrays drives raw connections at an endpoint: a
// mis-spoken hello and a desynchronized stream must both be dropped
// (and counted) without disturbing well-behaved peers.
func TestTCPRejectsStrays(t *testing.T) {
	book := reserveStreamBook(t, 2)
	tr := newTestTCP(t, book)
	defer tr.Close()
	recv0, ch0 := collector(8)
	if _, err := tr.Open(0, recv0); err != nil {
		t.Fatal(err)
	}

	// A datagram-framed hello (wrong kind byte) is refused.
	c1, err := net.Dial("tcp", book[0])
	if err != nil {
		t.Fatal(err)
	}
	c1.Write([]byte{frameMagic, frameVersion, 0x01, 'x'})
	// A hello from an address not in the book is refused.
	c2, err := net.Dial("tcp", book[0])
	if err != nil {
		t.Fatal(err)
	}
	c2.Write(appendStreamHello(nil, 99))
	// A valid hello followed by garbage desynchronizes and is torn down.
	c3, err := net.Dial("tcp", book[0])
	if err != nil {
		t.Fatal(err)
	}
	c3.Write(append(appendStreamHello(nil, 1), 0xFF, 0xFF, 0xFF))

	// All three connections end up closed by the endpoint.
	for i, c := range []net.Conn{c1, c2, c3} {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatalf("stray connection %d not closed", i)
		}
		c.Close()
	}
	expectQuiet(t, ch0, 50*time.Millisecond)

	// A well-formed peer still gets through.
	ep1, err := tr.Open(1, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	ep1.Send(0, []byte("legit"))
	expectPacket(t, ch0, packet{1, "legit"})
	if st := tr.Stats(); st.Malformed < 2 {
		t.Fatalf("stray connections not counted: %+v", st)
	}
}

// TestTCPBatchCoalesces checks the BatchSender path: one Flush delivers
// everything enqueued, in order, to each peer.
func TestTCPBatchCoalesces(t *testing.T) {
	tr := newTestTCP(t, reserveStreamBook(t, 2))
	defer tr.Close()
	recv1, ch1 := collector(64)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	bs, ok := ep0.(BatchSender)
	if !ok {
		t.Fatal("TCP endpoint does not implement BatchSender")
	}
	for i := 0; i < 16; i++ {
		bs.Enqueue(1, []byte{byte('a' + i)})
	}
	bs.Flush()
	for i := 0; i < 16; i++ {
		expectPacket(t, ch1, packet{0, string(rune('a' + i))})
	}
	bs.Flush() // empty flush is a no-op
	expectQuiet(t, ch1, 20*time.Millisecond)
}
