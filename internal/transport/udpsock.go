package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Process-wide counters for the batched-syscall backend, next to the
// fault counters so operators can see at a glance whether syscall
// amortization is engaged (see docs/OPERATIONS.md).
var (
	batchSendsCounter = metrics.NewCounter("transport.batch_sends")
	batchRecvsCounter = metrics.NewCounter("transport.batch_recvs")
)

// Real-socket frame layout (one frame per UDP datagram), encoded with
// the internal/wire codec shared by every protocol header:
//
//	magic   byte    0xD7 — rejects strays from other programs
//	version byte    1
//	from    uvarint sender's group address
//	payload rest    opaque datagram body
//
// The sender's address travels in the frame rather than being inferred
// from the socket source address, so the address book may point at
// NAT'd or multi-homed peers whose observed source differs from their
// book entry. The group is mutually trusting (as in the paper's
// cluster); authentication is out of scope.
const (
	frameMagic   byte = 0xD7
	frameVersion byte = 1
)

// MaxDatagram is the default receive buffer and the largest payload a
// UDP endpoint accepts (the practical UDP payload ceiling).
const MaxDatagram = 65507

// BatchSyscallsAvailable reports whether this build carries the batched
// syscall backend (sendmmsg/recvmmsg on linux). When false, BatchSender
// and OpenBatch still work but degrade to the single-datagram path;
// benchmarks and alloc guards use this to skip batch-specific
// assertions.
func BatchSyscallsAvailable() bool { return batchSyscalls }

// UDPConfig configures a real-socket transport.
type UDPConfig struct {
	// Book maps every group address to its UDP "host:port". All
	// entries are resolved once, in NewUDP.
	Book map[Addr]string
	// MaxPacket bounds the receive buffer (default MaxDatagram).
	MaxPacket int
	// Logf, when non-nil, receives diagnostics (send errors, malformed
	// frames). The transport never logs through any other channel.
	Logf func(format string, args ...any)
	// DisableBatching forces the portable single-datagram syscall path
	// even on platforms with a batched backend (sendmmsg/recvmmsg).
	// Endpoints still implement BatchSender — Enqueue degrades to an
	// immediate Send and Flush to a no-op — so callers need no
	// platform-specific code. Benchmarks use this to measure the
	// batching delta on one binary.
	DisableBatching bool
	// SocketBuffer, when positive, requests SO_RCVBUF and SO_SNDBUF of
	// that many bytes on every endpoint socket (the kernel may clamp to
	// net.core.rmem_max/wmem_max). Datagrams a full receive buffer
	// cannot hold are dropped by the kernel as loss; at batch load a
	// larger buffer rides out the bursts sendmmsg produces, which is
	// cheaper than recovering the drops via retransmission.
	SocketBuffer int
}

// UDPStats counts socket activity. Retrieve a snapshot with Stats.
//
// SendCalls/RecvCalls count syscalls, Sent/Delivered count datagrams:
// on the batched backend one sendmmsg flush or recvmmsg read moves many
// datagrams per call, so SendCalls/Sent is the measured syscall
// amortization ratio (dpu-bench's syscalls_per_message probe).
type UDPStats struct {
	Sent      uint64 // datagrams handed to the socket
	Delivered uint64 // well-formed frames delivered to receivers
	Malformed uint64 // frames dropped by the decoder
	SendErrs  uint64 // socket write failures (dropped, as loss)
	Bytes     uint64 // payload bytes sent
	SendCalls uint64 // write syscalls (WriteToUDP or sendmmsg)
	RecvCalls uint64 // read syscalls (ReadFromUDP or recvmmsg)
}

// UDPTransport sends datagrams over real net.UDPConn sockets using a
// static address book. It satisfies Transport: each Open binds one
// socket and starts a read-loop goroutine that decodes frames and hands
// them to the endpoint's RecvFunc.
type UDPTransport struct {
	cfg UDPConfig

	// The address book is mutable at runtime (see AddRoute/RemoveRoute,
	// driven by membership views); bookMu is read-locked on every Send.
	bookMu sync.RWMutex
	book   map[Addr]*net.UDPAddr

	mu     sync.Mutex
	eps    map[Addr]*udpEndpoint
	closed bool

	// Per-packet counters are atomics: every Send and every received
	// datagram touches them, and endpoints must not contend on t.mu.
	sent, delivered, malformed, sendErrs, bytes atomic.Uint64
	sendCalls, recvCalls                        atomic.Uint64
}

// NewUDP resolves the address book and returns a real-socket transport.
// No sockets are bound until Open.
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	if len(cfg.Book) == 0 {
		return nil, fmt.Errorf("transport: empty address book")
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = MaxDatagram
	}
	book := make(map[Addr]*net.UDPAddr, len(cfg.Book))
	for a, s := range cfg.Book {
		ua, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("transport: address book entry %d (%q): %w", a, s, err)
		}
		book[a] = ua
	}
	return &UDPTransport{cfg: cfg, book: book, eps: make(map[Addr]*udpEndpoint)}, nil
}

func (t *UDPTransport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Open binds the socket listed for addr in the address book and starts
// its read loop. The returned endpoint always implements BatchSender:
// on platforms with the sendmmsg backend Enqueue/Flush amortize write
// syscalls, elsewhere they degrade to immediate Sends.
func (t *UDPTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	return t.open(addr, recv, nil)
}

// OpenBatch binds the socket like Open but delivers incoming datagrams
// through recv in batches: one recvmmsg worth per callback on the
// batched backend, singleton batches on the portable path. It
// implements the optional BatchOpener extension.
func (t *UDPTransport) OpenBatch(addr Addr, recv BatchRecvFunc) (Endpoint, error) {
	if recv == nil {
		return nil, fmt.Errorf("transport: OpenBatch with nil receiver")
	}
	return t.open(addr, nil, recv)
}

func (t *UDPTransport) open(addr Addr, recv RecvFunc, brecv BatchRecvFunc) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.eps[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %d already open", addr)
	}
	t.bookMu.RLock()
	ua, ok := t.book[addr]
	t.bookMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: address %d not in book", addr)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %d at %v: %w", addr, ua, err)
	}
	if t.cfg.SocketBuffer > 0 {
		// Best-effort: the kernel clamps to rmem_max/wmem_max, and a
		// smaller buffer only costs retransmissions, not correctness.
		if err := conn.SetReadBuffer(t.cfg.SocketBuffer); err != nil {
			t.logf("transport: endpoint %d: SO_RCVBUF %d: %v", addr, t.cfg.SocketBuffer, err)
		}
		if err := conn.SetWriteBuffer(t.cfg.SocketBuffer); err != nil {
			t.logf("transport: endpoint %d: SO_SNDBUF %d: %v", addr, t.cfg.SocketBuffer, err)
		}
	}
	ep := &udpEndpoint{tr: t, addr: addr, conn: conn, recv: recv, brecv: brecv}
	if !t.cfg.DisableBatching {
		// Best-effort: a setup failure (unsupported platform, raw-conn
		// error) leaves bio nil and the endpoint on the portable path.
		if bio, err := newBatchIO(conn, t.cfg.MaxPacket); err == nil {
			ep.bio = bio
		} else {
			t.logf("transport: endpoint %d: batched syscalls unavailable: %v", addr, err)
		}
	}
	t.eps[addr] = ep
	ep.wg.Add(1)
	if brecv != nil && ep.bio != nil {
		go ep.readBatchLoop()
	} else {
		go ep.readLoop()
	}
	return ep, nil
}

// AddRoute maps a group address to a "host:port" endpoint at runtime,
// resolving it immediately. Membership views use it to admit a joining
// node's socket into the address book on every running process.
func (t *UDPTransport) AddRoute(addr Addr, endpoint string) error {
	ua, err := net.ResolveUDPAddr("udp", endpoint)
	if err != nil {
		return fmt.Errorf("transport: route %d (%q): %w", addr, endpoint, err)
	}
	t.bookMu.Lock()
	t.book[addr] = ua
	t.bookMu.Unlock()
	return nil
}

// RemoveRoute retires an address from the book; subsequent sends to it
// are dropped as loss. Used when a member is evicted from the view.
func (t *UDPTransport) RemoveRoute(addr Addr) {
	t.bookMu.Lock()
	delete(t.book, addr)
	t.bookMu.Unlock()
}

// Stats returns a snapshot of socket counters.
func (t *UDPTransport) Stats() UDPStats {
	return UDPStats{
		Sent:      t.sent.Load(),
		Delivered: t.delivered.Load(),
		Malformed: t.malformed.Load(),
		SendErrs:  t.sendErrs.Load(),
		Bytes:     t.bytes.Load(),
		SendCalls: t.sendCalls.Load(),
		RecvCalls: t.recvCalls.Load(),
	}
}

// Close detaches every endpoint and rejects further Opens.
func (t *UDPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	eps := make([]*udpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

type udpEndpoint struct {
	tr    *UDPTransport
	addr  Addr
	conn  *net.UDPConn
	recv  RecvFunc      // set when opened with Open
	brecv BatchRecvFunc // set when opened with OpenBatch
	bio   *batchIO      // nil: batched syscalls unavailable or disabled
	wg    sync.WaitGroup

	// closed is an atomic, not a mutex-guarded bool: the receive hot
	// path checks it once per datagram (or batch) and must not take a
	// lock per packet.
	closed atomic.Bool
}

// Addr returns the endpoint's group address.
func (e *udpEndpoint) Addr() Addr { return e.addr }

// Send frames data and writes it to the socket of to's book entry.
// Failures (unknown address, oversized payload, socket errors) drop the
// datagram, as network loss would; RP2P's retransmission recovers.
func (e *udpEndpoint) Send(to Addr, data []byte) {
	t := e.tr
	t.bookMu.RLock()
	dst, ok := t.book[to]
	t.bookMu.RUnlock()
	if !ok || len(data) > t.cfg.MaxPacket-maxFrameHeader {
		reason := "address not in book"
		if ok {
			reason = "oversized payload"
		}
		t.sendErrs.Add(1)
		t.logf("transport: drop send %d->%d: %s", e.addr, to, reason)
		return
	}
	w := wire.GetWriter(len(data) + maxFrameHeader)
	w.Byte(frameMagic).Byte(frameVersion).Uvarint(uint64(e.addr)).Raw(data)
	t.sendCalls.Add(1)
	_, err := e.conn.WriteToUDP(w.Bytes(), dst)
	w.Free() // the kernel has copied the datagram
	if err != nil {
		t.sendErrs.Add(1)
		t.logf("transport: send %d->%d: %v", e.addr, to, err)
		return
	}
	t.sent.Add(1)
	t.bytes.Add(uint64(len(data)))
}

// Enqueue frames data and parks it on the endpoint's send queue for the
// next Flush; on platforms without the sendmmsg backend it degrades to
// an immediate Send. Like Send, failures (unknown address, oversized
// payload) drop the datagram as loss. Enqueue and Flush must be called
// from one goroutine at a time (the stack executor).
func (e *udpEndpoint) Enqueue(to Addr, data []byte) {
	t := e.tr
	if e.bio == nil {
		e.Send(to, data)
		return
	}
	t.bookMu.RLock()
	dst, ok := t.book[to]
	t.bookMu.RUnlock()
	if !ok || len(data) > t.cfg.MaxPacket-maxFrameHeader {
		reason := "address not in book"
		if ok {
			reason = "oversized payload"
		}
		t.sendErrs.Add(1)
		t.logf("transport: drop enqueue %d->%d: %s", e.addr, to, reason)
		return
	}
	w := wire.GetWriter(len(data) + maxFrameHeader)
	w.Byte(frameMagic).Byte(frameVersion).Uvarint(uint64(e.addr)).Raw(data)
	//dpulint:ignore poolfree frame parked on the batch send queue; flush and discard (via Close) guarantee the Free
	switch e.bio.enqueue(w, len(data), dst) {
	case enqueueOK:
	case enqueueBadAddr:
		// Address family the raw backend cannot encode (e.g. a v6
		// destination on a v4 socket): let the stdlib path handle it.
		w.Free()
		e.Send(to, data)
	case enqueueClosed:
		w.Free()
		t.sendErrs.Add(1)
	}
}

// Flush transmits everything enqueued since the previous Flush, in as
// few sendmmsg calls as the batch size allows. A no-op when nothing is
// queued or the batched backend is unavailable.
func (e *udpEndpoint) Flush() {
	if e.bio != nil {
		e.bio.flush(e)
	}
}

// maxFrameHeader bounds the frame header: magic, version and a uvarint
// address of at most 10 bytes.
const maxFrameHeader = 12

// maxRecvFailures bounds how many consecutive transient recvmmsg errnos
// readBatchLoop rides out before concluding the errno is persistent
// (an fd-level fault, not pressure) and stopping rather than spinning.
const maxRecvFailures = 100

// readLoop decodes frames off the socket until the endpoint closes.
func (e *udpEndpoint) readLoop() {
	defer e.wg.Done()
	t := e.tr
	// One byte beyond MaxPacket: ReadFromUDP silently cuts a datagram
	// at the buffer size, so a full read marks an over-limit datagram
	// (e.g. a peer configured with a larger MaxPacket) that must be
	// dropped rather than delivered as a truncated-but-decodable frame.
	buf := make([]byte, t.cfg.MaxPacket+1)
	for {
		t.recvCalls.Add(1)
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			// Socket closed (endpoint shutdown) or unrecoverable.
			return
		}
		if n == len(buf) {
			t.malformed.Add(1)
			wire.RejectFrame()
			t.logf("transport: endpoint %d: dropped over-limit datagram (>%d bytes)", e.addr, t.cfg.MaxPacket)
			continue
		}
		from, payload, ok := decodeFrame(buf[:n])
		if !ok {
			t.malformed.Add(1)
			wire.RejectFrame()
			t.logf("transport: endpoint %d: dropped malformed %d-byte frame", e.addr, n)
			continue
		}
		t.delivered.Add(1)
		// The receiver owns its slice; the read buffer is reused.
		e.recvPacket(from, append([]byte(nil), payload...))
	}
}

// readBatchLoop drains the socket with recvmmsg until the endpoint
// closes, delivering each syscall's worth of frames as one batch. The
// decoded payloads of a batch share a single arena allocation — the
// per-packet copy of the portable path amortized recvBatch ways.
func (e *udpEndpoint) readBatchLoop() {
	defer e.wg.Done()
	t := e.tr
	failures := 0 // consecutive transient recvmmsg errnos
	for {
		t.recvCalls.Add(1)
		n, errno, err := e.bio.recvBatch()
		if err != nil {
			// RawConn dead: socket closed (endpoint shutdown).
			return
		}
		if errno != 0 {
			// Transient kernel failure (e.g. ENOMEM under memory
			// pressure; EINTR is already retried inside recvBatch): keep
			// receiving — returning here would permanently deafen this
			// endpoint while the rest of the stack runs on. A persistent
			// errno would spin, so give up after a bounded run of
			// consecutive failures with no successful read in between.
			t.logf("transport: endpoint %d: recvmmsg: %v", e.addr, errno)
			if failures++; failures >= maxRecvFailures {
				t.logf("transport: endpoint %d: %d consecutive receive failures, stopping read loop", e.addr, failures)
				return
			}
			continue
		}
		failures = 0
		batchRecvsCounter.Add(1)
		// The receiver owns pkts and the arena (it typically enqueues
		// the whole batch as one executor task), so both are fresh per
		// batch: two allocations per syscall, not two per packet.
		pkts := make([]Packet, 0, n)
		arena := make([]byte, 0, e.bio.recvBytes(n))
		for i := 0; i < n; i++ {
			raw, overLimit := e.bio.recvMsg(i)
			if overLimit {
				t.malformed.Add(1)
				wire.RejectFrame()
				t.logf("transport: endpoint %d: dropped over-limit datagram (>%d bytes)", e.addr, t.cfg.MaxPacket)
				continue
			}
			from, payload, ok := decodeFrame(raw)
			if !ok {
				t.malformed.Add(1)
				wire.RejectFrame()
				t.logf("transport: endpoint %d: dropped malformed %d-byte frame", e.addr, len(raw))
				continue
			}
			t.delivered.Add(1)
			// The receiver owns its slice; carve it off the shared
			// arena so the syscall buffers can be reused immediately.
			arena = append(arena, payload...)
			pkts = append(pkts, Packet{From: from, Data: arena[len(arena)-len(payload):]})
		}
		if len(pkts) > 0 && !e.closed.Load() {
			e.brecv(pkts)
		}
	}
}

// recvPacket delivers one decoded frame unless the endpoint has closed.
// An endpoint opened with OpenBatch but running the portable read loop
// receives it as a singleton batch.
func (e *udpEndpoint) recvPacket(from Addr, data []byte) {
	if e.closed.Load() {
		return
	}
	if e.brecv != nil {
		e.brecv([]Packet{{From: from, Data: data}})
		return
	}
	e.recv(from, data)
}

// Close shuts the socket down and waits for the read loop to exit.
// Datagrams still parked on the batch send queue are discarded, as loss.
func (e *udpEndpoint) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if e.bio != nil {
		e.bio.discard()
	}
	e.conn.Close()
	e.wg.Wait()
	t := e.tr
	t.mu.Lock()
	if t.eps[e.addr] == e {
		delete(t.eps, e.addr)
	}
	t.mu.Unlock()
}

// decodeFrame parses one datagram; ok is false for frames that are
// truncated, carry the wrong magic or version, or whose sender address
// overflows.
func decodeFrame(b []byte) (from Addr, payload []byte, ok bool) {
	r := wire.NewReader(b)
	r.Expect(frameMagic, "transport magic")
	r.Expect(frameVersion, "transport version")
	f := r.Uvarint()
	payload = r.Rest()
	if r.Err() != nil || f >= 1<<31 {
		return 0, nil, false
	}
	return Addr(f), payload, true
}
