package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Real-socket frame layout (one frame per UDP datagram), encoded with
// the internal/wire codec shared by every protocol header:
//
//	magic   byte    0xD7 — rejects strays from other programs
//	version byte    1
//	from    uvarint sender's group address
//	payload rest    opaque datagram body
//
// The sender's address travels in the frame rather than being inferred
// from the socket source address, so the address book may point at
// NAT'd or multi-homed peers whose observed source differs from their
// book entry. The group is mutually trusting (as in the paper's
// cluster); authentication is out of scope.
const (
	frameMagic   byte = 0xD7
	frameVersion byte = 1
)

// MaxDatagram is the default receive buffer and the largest payload a
// UDP endpoint accepts (the practical UDP payload ceiling).
const MaxDatagram = 65507

// UDPConfig configures a real-socket transport.
type UDPConfig struct {
	// Book maps every group address to its UDP "host:port". All
	// entries are resolved once, in NewUDP.
	Book map[Addr]string
	// MaxPacket bounds the receive buffer (default MaxDatagram).
	MaxPacket int
	// Logf, when non-nil, receives diagnostics (send errors, malformed
	// frames). The transport never logs through any other channel.
	Logf func(format string, args ...any)
}

// UDPStats counts socket activity. Retrieve a snapshot with Stats.
type UDPStats struct {
	Sent      uint64 // datagrams handed to the socket
	Delivered uint64 // well-formed frames delivered to receivers
	Malformed uint64 // frames dropped by the decoder
	SendErrs  uint64 // socket write failures (dropped, as loss)
	Bytes     uint64 // payload bytes sent
}

// UDPTransport sends datagrams over real net.UDPConn sockets using a
// static address book. It satisfies Transport: each Open binds one
// socket and starts a read-loop goroutine that decodes frames and hands
// them to the endpoint's RecvFunc.
type UDPTransport struct {
	cfg UDPConfig

	// The address book is mutable at runtime (see AddRoute/RemoveRoute,
	// driven by membership views); bookMu is read-locked on every Send.
	bookMu sync.RWMutex
	book   map[Addr]*net.UDPAddr

	mu     sync.Mutex
	eps    map[Addr]*udpEndpoint
	closed bool

	// Per-packet counters are atomics: every Send and every received
	// datagram touches them, and endpoints must not contend on t.mu.
	sent, delivered, malformed, sendErrs, bytes atomic.Uint64
}

// NewUDP resolves the address book and returns a real-socket transport.
// No sockets are bound until Open.
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	if len(cfg.Book) == 0 {
		return nil, fmt.Errorf("transport: empty address book")
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = MaxDatagram
	}
	book := make(map[Addr]*net.UDPAddr, len(cfg.Book))
	for a, s := range cfg.Book {
		ua, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("transport: address book entry %d (%q): %w", a, s, err)
		}
		book[a] = ua
	}
	return &UDPTransport{cfg: cfg, book: book, eps: make(map[Addr]*udpEndpoint)}, nil
}

func (t *UDPTransport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Open binds the socket listed for addr in the address book and starts
// its read loop.
func (t *UDPTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.eps[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %d already open", addr)
	}
	t.bookMu.RLock()
	ua, ok := t.book[addr]
	t.bookMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: address %d not in book", addr)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %d at %v: %w", addr, ua, err)
	}
	ep := &udpEndpoint{tr: t, addr: addr, conn: conn, recv: recv}
	t.eps[addr] = ep
	ep.wg.Add(1)
	go ep.readLoop()
	return ep, nil
}

// AddRoute maps a group address to a "host:port" endpoint at runtime,
// resolving it immediately. Membership views use it to admit a joining
// node's socket into the address book on every running process.
func (t *UDPTransport) AddRoute(addr Addr, endpoint string) error {
	ua, err := net.ResolveUDPAddr("udp", endpoint)
	if err != nil {
		return fmt.Errorf("transport: route %d (%q): %w", addr, endpoint, err)
	}
	t.bookMu.Lock()
	t.book[addr] = ua
	t.bookMu.Unlock()
	return nil
}

// RemoveRoute retires an address from the book; subsequent sends to it
// are dropped as loss. Used when a member is evicted from the view.
func (t *UDPTransport) RemoveRoute(addr Addr) {
	t.bookMu.Lock()
	delete(t.book, addr)
	t.bookMu.Unlock()
}

// Stats returns a snapshot of socket counters.
func (t *UDPTransport) Stats() UDPStats {
	return UDPStats{
		Sent:      t.sent.Load(),
		Delivered: t.delivered.Load(),
		Malformed: t.malformed.Load(),
		SendErrs:  t.sendErrs.Load(),
		Bytes:     t.bytes.Load(),
	}
}

// Close detaches every endpoint and rejects further Opens.
func (t *UDPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	eps := make([]*udpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

type udpEndpoint struct {
	tr   *UDPTransport
	addr Addr
	conn *net.UDPConn
	recv RecvFunc
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Addr returns the endpoint's group address.
func (e *udpEndpoint) Addr() Addr { return e.addr }

// Send frames data and writes it to the socket of to's book entry.
// Failures (unknown address, oversized payload, socket errors) drop the
// datagram, as network loss would; RP2P's retransmission recovers.
func (e *udpEndpoint) Send(to Addr, data []byte) {
	t := e.tr
	t.bookMu.RLock()
	dst, ok := t.book[to]
	t.bookMu.RUnlock()
	if !ok || len(data) > t.cfg.MaxPacket-maxFrameHeader {
		reason := "address not in book"
		if ok {
			reason = "oversized payload"
		}
		t.sendErrs.Add(1)
		t.logf("transport: drop send %d->%d: %s", e.addr, to, reason)
		return
	}
	w := wire.GetWriter(len(data) + maxFrameHeader)
	w.Byte(frameMagic).Byte(frameVersion).Uvarint(uint64(e.addr)).Raw(data)
	_, err := e.conn.WriteToUDP(w.Bytes(), dst)
	w.Free() // the kernel has copied the datagram
	if err != nil {
		t.sendErrs.Add(1)
		t.logf("transport: send %d->%d: %v", e.addr, to, err)
		return
	}
	t.sent.Add(1)
	t.bytes.Add(uint64(len(data)))
}

// maxFrameHeader bounds the frame header: magic, version and a uvarint
// address of at most 10 bytes.
const maxFrameHeader = 12

// readLoop decodes frames off the socket until the endpoint closes.
func (e *udpEndpoint) readLoop() {
	defer e.wg.Done()
	t := e.tr
	// One byte beyond MaxPacket: ReadFromUDP silently cuts a datagram
	// at the buffer size, so a full read marks an over-limit datagram
	// (e.g. a peer configured with a larger MaxPacket) that must be
	// dropped rather than delivered as a truncated-but-decodable frame.
	buf := make([]byte, t.cfg.MaxPacket+1)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			// Socket closed (endpoint shutdown) or unrecoverable.
			return
		}
		if n == len(buf) {
			t.malformed.Add(1)
			wire.RejectFrame()
			t.logf("transport: endpoint %d: dropped over-limit datagram (>%d bytes)", e.addr, t.cfg.MaxPacket)
			continue
		}
		from, payload, ok := decodeFrame(buf[:n])
		if !ok {
			t.malformed.Add(1)
			wire.RejectFrame()
			t.logf("transport: endpoint %d: dropped malformed %d-byte frame", e.addr, n)
			continue
		}
		t.delivered.Add(1)
		// The receiver owns its slice; the read buffer is reused.
		e.recvPacket(from, append([]byte(nil), payload...))
	}
}

// recvPacket delivers one decoded frame unless the endpoint has closed.
func (e *udpEndpoint) recvPacket(from Addr, data []byte) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if !closed {
		e.recv(from, data)
	}
}

// Close shuts the socket down and waits for the read loop to exit.
func (e *udpEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.conn.Close()
	e.wg.Wait()
	t := e.tr
	t.mu.Lock()
	if t.eps[e.addr] == e {
		delete(t.eps, e.addr)
	}
	t.mu.Unlock()
}

// decodeFrame parses one datagram; ok is false for frames that are
// truncated, carry the wrong magic or version, or whose sender address
// overflows.
func decodeFrame(b []byte) (from Addr, payload []byte, ok bool) {
	r := wire.NewReader(b)
	r.Expect(frameMagic, "transport magic")
	r.Expect(frameVersion, "transport version")
	f := r.Uvarint()
	payload = r.Rest()
	if r.Err() != nil || f >= 1<<31 {
		return 0, nil, false
	}
	return Addr(f), payload, true
}
