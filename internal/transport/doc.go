// Package transport abstracts the unreliable datagram fabric under the
// group-communication stack (the wire below Figure 4's UDP module), so
// the same protocol code runs over an in-process simulated LAN or over
// real UDP sockets spanning OS processes and hosts.
//
// A Transport hands out Endpoints: one per stack, identified by a small
// integer Addr that doubles as the stack's group address. Endpoints
// send best-effort datagrams — loss, duplication and reordering are all
// permitted, exactly the service the paper's stack assumes at the
// bottom and repairs above (RP2P adds reliability and FIFO order, the
// protocols above add agreement).
//
// Two backends are provided:
//
//   - Sim wraps internal/simnet, preserving the deterministic,
//     fault-parameterised in-memory fabric used by the test suites and
//     benchmark figures.
//   - NewUDP binds real net.UDPConn sockets with a static address book
//     mapping Addr to host:port, for multi-process and multi-host
//     deployments (see cmd/dpu-sim's -listen/-peers mode).
//
// Two optional interfaces extend a backend:
//
//   - Router exposes explicit routing state (the real-socket address
//     book): membership views admit and retire endpoints at runtime
//     through AddRoute/RemoveRoute. Fabrics with implicit routing
//     (simnet reaches any address) simply do not implement it.
//   - Shaper exposes runtime-mutable traffic shaping (SetLoss,
//     SetDelay, SetJitter): the adaptation scenarios reshape a live
//     network through it (see docs/ADAPTIVE.md).
//
// The Faulty decorator layers simnet-style probabilistic loss,
// duplication and delay over any backend — deterministically, from one
// seeded RNG — so fault-injection tests and adaptive-controller
// scenarios written against the simnet model also run over real
// sockets. It forwards Router calls to the inner transport and
// implements Shaper, so every fate parameter is mutable while traffic
// flows.
package transport
