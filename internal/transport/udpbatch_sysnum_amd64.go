//go:build linux && amd64

package transport

// Syscall numbers for the batched datagram calls. The stdlib syscall
// package predates sendmmsg (Linux 3.0), so both numbers live here;
// see arch manuals (arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
