//go:build !linux || !(amd64 || arm64)

package transport

// Portable stub for platforms without sendmmsg/recvmmsg: endpoints
// still satisfy BatchSender (Enqueue degrades to Send, Flush to a
// no-op) and OpenBatch still works (singleton batches through the
// portable read loop), so callers never branch on the platform.

import (
	"errors"
	"net"
	"syscall"

	"repro/internal/wire"
)

// batchSyscalls reports at build time that this platform has no batched
// syscall backend.
const batchSyscalls = false

type enqueueResult byte

const (
	enqueueOK enqueueResult = iota
	enqueueBadAddr
	enqueueClosed
)

// batchIO is never instantiated off linux; the methods exist so
// udpsock.go compiles unchanged (every call site is nil-guarded).
type batchIO struct{}

func newBatchIO(*net.UDPConn, int) (*batchIO, error) {
	return nil, errors.New("batched syscalls not supported on this platform")
}

func (b *batchIO) enqueue(*wire.Writer, int, *net.UDPAddr) enqueueResult { return enqueueClosed }
func (b *batchIO) flush(*udpEndpoint)                                    {}
func (b *batchIO) recvBatch() (int, syscall.Errno, error) {
	return 0, 0, errors.New("unsupported")
}
func (b *batchIO) recvBytes(int) int          { return 0 }
func (b *batchIO) recvMsg(int) ([]byte, bool) { return nil, true }
func (b *batchIO) discard()                   {}
