//go:build linux && (amd64 || arm64)

package transport

// Batched-syscall backend for the real-socket transport: sendmmsg and
// recvmmsg move up to sendBatch/recvBatch datagrams per kernel
// crossing, which is where the per-message cost of the UDP path lives
// once the stack itself is allocation-free (see docs/PERFORMANCE.md's
// syscall-budget section).
//
// The backend is deliberately built on the stdlib only: raw
// SYS_SENDMMSG/SYS_RECVMMSG syscalls through syscall.RawConn, with the
// mmsghdr/iovec arrays laid out once per endpoint and reused for every
// call. RawConn keeps the socket inside the Go netpoller — a would-
// block return re-arms the poller instead of spinning — so batched
// endpoints coexist with deadlines, Close and the runtime's scheduler
// exactly like the portable path.

import (
	"fmt"
	"net"
	"sync"
	"syscall"
	"unsafe"

	"repro/internal/wire"
)

// batchSyscalls reports at build time that this platform compiles the
// sendmmsg/recvmmsg backend in.
const batchSyscalls = true

const (
	// sendBatch bounds one sendmmsg: a Flush of more datagrams issues
	// ceil(n/sendBatch) syscalls.
	sendBatch = 32
	// recvBatch bounds one recvmmsg, and thereby the size of the packet
	// batches handed to BatchRecvFunc (and the executor task that
	// carries them).
	recvBatch = 32
)

// mmsghdr mirrors the kernel's struct mmsghdr. Go rounds the struct
// size up to the alignment of syscall.Msghdr, which matches the C
// layout on every linux GOARCH (8-byte alignment and trailing pad on
// 64-bit, none on 32-bit).
type mmsghdr struct {
	hdr    syscall.Msghdr
	msglen uint32
}

// sockaddrBuf stores one destination as the kernel sees it. The buffer
// is a RawSockaddrInet6 (the larger family) so casting to
// RawSockaddrInet4 is always in-bounds and aligned.
type sockaddrBuf struct {
	sa  syscall.RawSockaddrInet6
	len uint32
}

// queuedSend is one framed datagram parked between Enqueue and Flush.
// The frame lives in a pooled wire.Writer freed after the syscall (or
// by discard on Close).
type queuedSend struct {
	w    *wire.Writer
	plen int // payload bytes (frame minus header), for UDPStats.Bytes
	sa   sockaddrBuf
}

type enqueueResult byte

const (
	enqueueOK enqueueResult = iota
	enqueueBadAddr
	enqueueClosed
)

// batchIO is the per-endpoint syscall state. The send queue is guarded
// by mu — uncontended in steady state (Enqueue and Flush both run on
// the stack executor; only Close crosses goroutines) — while the recv
// arrays are owned exclusively by the read loop. mu is never held
// across a syscall: flush swaps the queue out and sends from a local
// slice, so Close (discard) is never parked behind the netpoller.
type batchIO struct {
	rc syscall.RawConn
	v6 bool // socket family: encode destinations as INET6

	mu     sync.Mutex
	sendq  []queuedSend
	closed bool
	// flushMu serializes flushers. Enqueue/Flush are already called
	// from one goroutine at a time (the stack executor), but the
	// scatter arrays below must never be shared by two concurrent
	// flushes, and flushMu enforces that without coupling it to mu.
	flushMu sync.Mutex
	// sendmmsg scatter arrays, rebuilt from the drained queue on every
	// flush; owned by the flushMu holder.
	shdrs [sendBatch]mmsghdr
	siovs [sendBatch]syscall.Iovec

	// recvmmsg arrays, laid out once: riovs[i] points at its slot in
	// rbufs. Source addresses are not collected (Name is nil) — the
	// sender's group address travels in the frame, exactly as on the
	// portable path.
	rhdrs [recvBatch]mmsghdr
	riovs [recvBatch]syscall.Iovec
	rbufs [recvBatch][]byte
}

// newBatchIO prepares the syscall state for one bound socket.
func newBatchIO(conn *net.UDPConn, maxPacket int) (*batchIO, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	la, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		return nil, fmt.Errorf("transport: unexpected local address %T", conn.LocalAddr())
	}
	b := &batchIO{rc: rc, v6: la.IP.To4() == nil}
	// One byte beyond maxPacket, for the same reason as the portable
	// read loop: a full buffer marks an over-limit datagram.
	backing := make([]byte, recvBatch*(maxPacket+1))
	for i := range b.rbufs {
		b.rbufs[i] = backing[i*(maxPacket+1) : (i+1)*(maxPacket+1)]
		b.riovs[i].Base = &b.rbufs[i][0]
		b.riovs[i].Len = uint64(len(b.rbufs[i]))
		b.rhdrs[i].hdr.Iov = &b.riovs[i]
		b.rhdrs[i].hdr.Iovlen = 1
	}
	return b, nil
}

// encodeAddr writes dst as a raw sockaddr of the socket's own family
// (a v4 destination on a v6 socket becomes v4-mapped). It reports false
// for a family the socket cannot reach.
func (b *batchIO) encodeAddr(dst *net.UDPAddr, out *sockaddrBuf) bool {
	if !b.v6 {
		ip4 := dst.IP.To4()
		if ip4 == nil {
			return false
		}
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&out.sa))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(dst.Port>>8), byte(dst.Port)
		copy(sa.Addr[:], ip4)
		out.len = syscall.SizeofSockaddrInet4
		return true
	}
	ip6 := dst.IP.To16()
	if ip6 == nil {
		return false
	}
	out.sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&out.sa.Port))
	p[0], p[1] = byte(dst.Port>>8), byte(dst.Port)
	copy(out.sa.Addr[:], ip6)
	out.len = syscall.SizeofSockaddrInet6
	return true
}

// enqueue parks one framed datagram for the next flush, taking
// ownership of w on success.
func (b *batchIO) enqueue(w *wire.Writer, plen int, dst *net.UDPAddr) enqueueResult {
	var qs queuedSend
	if !b.encodeAddr(dst, &qs.sa) {
		return enqueueBadAddr
	}
	qs.w, qs.plen = w, plen
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return enqueueClosed
	}
	b.sendq = append(b.sendq, qs)
	return enqueueOK
}

// flush drains the send queue in sendmmsg batches. A partial send
// continues from where the kernel stopped; a hard error drops the
// datagram at the front of the batch (counted as SendErrs, i.e. loss)
// and continues, so flush always terminates.
//
// The queue is swapped out under mu and the syscall loop runs on the
// local slice with mu released: sendmmsg can park in the netpoller
// waiting for writability, and Close (discard) must never block behind
// kernel send-buffer state. closed is re-checked before each syscall
// batch so a mid-flush Close discards the remainder promptly.
func (b *batchIO) flush(e *udpEndpoint) {
	t := e.tr
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	q := b.sendq
	b.sendq = nil
	b.mu.Unlock()
	rest := q
	for len(rest) > 0 {
		b.mu.Lock()
		closed := b.closed
		b.mu.Unlock()
		if closed {
			break
		}
		n := len(rest)
		if n > sendBatch {
			n = sendBatch
		}
		for i := 0; i < n; i++ {
			frame := rest[i].w.Bytes()
			b.siovs[i].Base = &frame[0]
			b.siovs[i].Len = uint64(len(frame))
			h := &b.shdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&rest[i].sa.sa))
			h.Namelen = rest[i].sa.len
			h.Iov = &b.siovs[i]
			h.Iovlen = 1
		}
		sent, errno, err := b.sendmmsg(n)
		if err != nil {
			// Socket closed under us: the rest is discarded as loss
			// (freed below, with the counter bumped here).
			t.sendErrs.Add(uint64(len(rest)))
			break
		}
		t.sendCalls.Add(1)
		batchSendsCounter.Add(1)
		for i := 0; i < sent; i++ {
			t.sent.Add(1)
			t.bytes.Add(uint64(rest[i].plen))
			rest[i].w.Free()
		}
		rest = rest[sent:]
		if errno != 0 || sent == 0 {
			// A hard errno is attributable to the first undelivered
			// datagram (sendmmsg sends in order and stops at the first
			// failure): drop it and move on, exactly as the portable
			// path drops a failed WriteToUDP. The sent==0-without-errno
			// guard keeps the loop terminating no matter what the
			// kernel reports.
			if errno != 0 {
				t.logf("transport: batch send from %d: %v", e.addr, errno)
			}
			t.sendErrs.Add(1)
			rest[0].w.Free()
			rest = rest[1:]
		}
	}
	// Closed (or socket dead) mid-flush: whatever survived the loop is
	// discarded.
	for i := range rest {
		rest[i].w.Free()
	}
	// Hand the batch storage back for reuse — unless Close got here
	// first (keep it discarded) or a concurrent Enqueue started a fresh
	// queue (keep its contents).
	b.mu.Lock()
	if !b.closed && b.sendq == nil {
		b.sendq = q[:0]
	}
	b.mu.Unlock()
}

// sendmmsg issues one SYS_SENDMMSG for the first n prepared headers,
// waiting for writability through the netpoller. err is non-nil only
// when the RawConn itself is dead (socket closed). EINTR is retried in
// place — raw syscalls do not get the internal/poll retry the stdlib
// write path has, and sendmmsg returns EINTR only when nothing was
// sent, so the retry never duplicates a datagram.
func (b *batchIO) sendmmsg(n int) (sent int, errno syscall.Errno, err error) {
	err = b.rc.Write(func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&b.shdrs[0])), uintptr(n),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EINTR {
				continue
			}
			if e == syscall.EAGAIN {
				return false
			}
			sent, errno = int(r), e
			return true
		}
	})
	if err == nil && errno != 0 {
		sent = 0
	}
	return sent, errno, err
}

// recvBatch blocks (via the netpoller) until at least one datagram is
// readable and returns how many the kernel delivered into the prepared
// buffers. EINTR is retried in place (raw syscalls do not get the
// internal/poll retry the stdlib read path has). A non-nil err means
// the RawConn itself is dead (socket closed) and receiving is over; a
// non-zero errno is a per-call kernel failure (e.g. ENOMEM) the caller
// should treat as transient.
func (b *batchIO) recvBatch() (n int, errno syscall.Errno, err error) {
	err = b.rc.Read(func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&b.rhdrs[0])), recvBatch,
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EINTR {
				continue
			}
			if e == syscall.EAGAIN {
				return false
			}
			n, errno = int(r), e
			return true
		}
	})
	if err != nil {
		return 0, 0, err
	}
	if errno != 0 {
		return 0, errno, nil
	}
	return n, 0, nil
}

// recvBytes sums the datagram lengths of the last recvBatch's first n
// messages — the arena capacity for a zero-realloc payload copy.
func (b *batchIO) recvBytes(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += int(b.rhdrs[i].msglen)
	}
	return total
}

// recvMsg returns the i-th datagram of the last recvBatch, and whether
// it exceeded the configured packet limit (truncated by the kernel or
// exactly filling the over-limit sentinel byte).
func (b *batchIO) recvMsg(i int) (raw []byte, overLimit bool) {
	ln := int(b.rhdrs[i].msglen)
	if ln >= len(b.rbufs[i]) || b.rhdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
		return nil, true
	}
	return b.rbufs[i][:ln], false
}

// discard marks the backend closed and frees everything still queued.
// Called from Close; Enqueue and Flush observe closed under mu.
func (b *batchIO) discard() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for i := range b.sendq {
		b.sendq[i].w.Free()
	}
	b.sendq = nil
}
