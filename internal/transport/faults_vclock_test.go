package transport

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

// memFabric is a minimal synchronous in-memory fabric: a send invokes
// the destination's RecvFunc on the calling goroutine. With the Faulty
// decorator's timers on a virtual clock, every delivery then happens
// either inside Send (undelayed) or inside Virtual.RunFor (delayed),
// so a single-goroutine test observes a total delivery order.
type memFabric struct{ eps map[Addr]RecvFunc }

func newMemFabric() *memFabric { return &memFabric{eps: make(map[Addr]RecvFunc)} }

func (f *memFabric) Open(a Addr, recv RecvFunc) (Endpoint, error) {
	f.eps[a] = recv
	return memEndpoint{f: f, a: a}, nil
}

func (f *memFabric) Close() {}

type memEndpoint struct {
	f *memFabric
	a Addr
}

func (e memEndpoint) Addr() Addr { return e.a }

func (e memEndpoint) Send(to Addr, data []byte) {
	if recv := e.f.eps[to]; recv != nil {
		recv(e.a, append([]byte(nil), data...))
	}
}

func (e memEndpoint) Close() {}

// faultyVirtualDigest runs one seeded fault schedule under a virtual
// clock and returns the delivery transcript: payload and virtual
// arrival time of every datagram, in delivery order.
func faultyVirtualDigest(t *testing.T, seed int64) (string, FaultStats) {
	t.Helper()
	vc := vclock.NewVirtual()
	ft := Faulty(newMemFabric(), FaultConfig{
		Seed:     seed,
		LossRate: 0.25,
		DupRate:  0.2,
		Delay:    3 * time.Millisecond,
		Jitter:   5 * time.Millisecond,
		Clock:    vc,
	})
	var got []string
	if _, err := ft.Open(2, func(from Addr, data []byte) {
		got = append(got, fmt.Sprintf("%s@%v", data, vc.Elapsed()))
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := ft.Open(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ep.Send(2, []byte(fmt.Sprintf("msg-%03d", i)))
	}
	// Release every held-back datagram: delay+jitter is bounded by 8ms.
	vc.RunFor(50 * time.Millisecond)
	ft.Close()
	return strings.Join(got, "\n"), ft.Stats()
}

// TestFaultyVirtualClockDeterminism pins the clocktime fix in the
// Faulty decorator: delay/jitter timers run on the injected clock, so a
// seeded fault schedule under vclock.Virtual replays the identical
// delivery transcript — same arrivals, same duplications, same virtual
// timestamps — run after run. With wall timers (the old behavior) the
// held-back datagrams would race the test goroutine and virtual time
// would never advance for them.
func TestFaultyVirtualClockDeterminism(t *testing.T) {
	d1, s1 := faultyVirtualDigest(t, 42)
	d2, s2 := faultyVirtualDigest(t, 42)
	if d1 != d2 {
		t.Fatalf("same seed, different delivery transcripts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	// The schedule must actually exercise the fault machinery.
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("degenerate fault schedule: %+v", s1)
	}
	// Delayed datagrams must arrive on virtual time (elapsed > 0). The
	// wall-timer bug delivered them while the virtual clock stood still.
	if !strings.Contains(d1, "@3.") && !strings.Contains(d1, "@4.") && !strings.Contains(d1, "@5.") {
		t.Fatalf("no delivery carries a virtual-time arrival stamp:\n%s", d1)
	}
	// A different seed must produce a different schedule.
	d3, _ := faultyVirtualDigest(t, 43)
	if d3 == d1 {
		t.Fatal("different seeds produced identical transcripts")
	}
}
