package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// Stream wire format, shared by every stream backend (TCP today). A
// connection starts with one hello identifying the DIALING side:
//
//	magic   byte    0xD7 — same stray-rejection magic as the datagram frame
//	kind    byte    0x53 ('S') — distinguishes a stream hello from a datagram
//	version byte    1
//	from    uvarint initiator's group address
//
// after which the connection carries a sequence of fragment frames:
//
//	flags   byte    bit0 = FIN (message complete); other bits reserved, zero
//	length  uvarint fragment length in bytes
//	frag    bytes   the fragment
//
// A message is the concatenation of consecutive fragments up to and
// including the first FIN fragment. Fragmentation is what kills the
// datagram ceiling: a payload of any size up to MaxMessage crosses as
// ⌈len/MaxFragment⌉ frames and is reassembled on the far side. The
// framing layer carries no checksum of its own — payload integrity is
// the sealed inner wire frame's job (wire.SealFrame, CRC32-C), and TCP
// already covers the link — but any framing violation (bad magic, a
// reserved flag, a pathological length) is unrecoverable desync and
// tears the connection down; reconnection starts a clean stream.
const (
	streamMagic   byte = 0xD7
	streamKind    byte = 0x53 // 'S'
	streamVersion byte = 1

	streamFIN byte = 1 << 0
)

// DefaultMaxMessage bounds reassembled stream messages (and therefore
// the largest payload a stream backend accepts for sending).
const DefaultMaxMessage = 16 << 20

// DefaultMaxFragment is the default stream fragment size: large enough
// that small messages never fragment, small enough that one message
// cannot monopolize a connection's write path.
const DefaultMaxFragment = 64 << 10

// streamHelloMax bounds the hello: magic, kind, version and a uvarint
// address of at most 10 bytes.
const streamHelloMax = 13

// errStreamMalformed marks a framing violation; the connection carrying
// it must be torn down (the byte stream is desynchronized).
var errStreamMalformed = errors.New("transport: malformed stream frame")

// errStreamShort reports that a buffer holds only a prefix of a frame;
// the caller should read more bytes and retry. Never a failure.
var errStreamShort = errors.New("transport: short stream frame")

// appendStreamHello appends the connection hello for initiator from.
func appendStreamHello(dst []byte, from Addr) []byte {
	w := wire.NewWriter(streamHelloMax)
	w.Byte(streamMagic).Byte(streamKind).Byte(streamVersion).Uvarint(uint64(from))
	return append(dst, w.Bytes()...)
}

// decodeStreamHello parses a connection hello from the front of b,
// returning the initiator address and the bytes consumed. err is
// errStreamShort when b holds only a hello prefix, errStreamMalformed
// when the bytes can never be a valid hello.
func decodeStreamHello(b []byte) (from Addr, n int, err error) {
	if len(b) >= 1 && b[0] != streamMagic {
		return 0, 0, errStreamMalformed
	}
	if len(b) >= 2 && b[1] != streamKind {
		return 0, 0, errStreamMalformed
	}
	if len(b) >= 3 && b[2] != streamVersion {
		return 0, 0, errStreamMalformed
	}
	if len(b) < 4 {
		return 0, 0, errStreamShort
	}
	r := wire.NewReader(b[3:])
	f := r.Uvarint()
	if r.Err() != nil {
		// A uvarint cut short is indistinguishable from one that needs
		// more bytes; only an overflow (>10 bytes available) is final.
		if len(b) >= streamHelloMax {
			return 0, 0, errStreamMalformed
		}
		return 0, 0, errStreamShort
	}
	if f >= 1<<31 {
		return 0, 0, errStreamMalformed
	}
	return Addr(f), 3 + r.Pos(), nil
}

// appendStreamMessage appends payload to dst as fragment frames of at
// most maxFrag bytes each and returns the extended buffer plus the
// number of fragments emitted (always ≥ 1; an empty payload is a single
// empty FIN frame).
func appendStreamMessage(dst []byte, payload []byte, maxFrag int) ([]byte, int) {
	frags := 0
	for {
		frag := payload
		fin := byte(streamFIN)
		if len(frag) > maxFrag {
			frag = frag[:maxFrag]
			fin = 0
		}
		payload = payload[len(frag):]
		w := wire.NewWriter(2 + 10)
		w.Byte(fin).Uvarint(uint64(len(frag)))
		dst = append(dst, w.Bytes()...)
		dst = append(dst, frag...)
		frags++
		if fin != 0 {
			return dst, frags
		}
	}
}

// streamDecoder reassembles messages from a stream of fragment frames.
// One decoder per connection; not safe for concurrent use.
type streamDecoder struct {
	maxMessage int
	maxFrag    int
	pending    []byte // partial message under reassembly (nil between messages)
	mid        bool   // a fragment has been consumed since the last FIN
}

// feed parses every complete frame at the front of buf, invoking emit
// once per completed message with an owned slice (the decoder keeps no
// reference). It returns the number of bytes consumed; the caller
// retains buf[n:] for the next feed. A non-nil error is a framing
// violation: the connection is desynchronized and must be torn down.
func (d *streamDecoder) feed(buf []byte, emit func(msg []byte)) (int, error) {
	consumed := 0
	for {
		b := buf[consumed:]
		if len(b) < 2 {
			return consumed, nil
		}
		flags := b[0]
		if flags&^streamFIN != 0 {
			return consumed, fmt.Errorf("%w: reserved flag bits %#02x", errStreamMalformed, flags)
		}
		r := wire.NewReader(b[1:])
		ln := r.Uvarint()
		if r.Err() != nil {
			if len(b) >= 1+10 {
				return consumed, fmt.Errorf("%w: fragment length overflow", errStreamMalformed)
			}
			return consumed, nil // length prefix not complete yet
		}
		if ln > uint64(d.maxFrag) {
			return consumed, fmt.Errorf("%w: %d-byte fragment exceeds limit %d", errStreamMalformed, ln, d.maxFrag)
		}
		if ln == 0 && flags&streamFIN == 0 {
			// An empty non-final fragment makes no reassembly progress; a
			// peer emitting one is broken (or an attack on the read loop).
			return consumed, fmt.Errorf("%w: empty non-final fragment", errStreamMalformed)
		}
		if len(d.pending)+int(ln) > d.maxMessage {
			return consumed, fmt.Errorf("%w: reassembled message exceeds limit %d", errStreamMalformed, d.maxMessage)
		}
		header := 1 + r.Pos()
		if len(b) < header+int(ln) {
			return consumed, nil // fragment body not complete yet
		}
		frag := b[header : header+int(ln)]
		consumed += header + int(ln)
		if flags&streamFIN != 0 {
			if !d.mid && d.pending == nil {
				// Whole message in one frame: hand the receiver its own
				// copy without an intermediate pending buffer.
				msg := append([]byte(nil), frag...)
				emit(msg)
				continue
			}
			msg := append(d.pending, frag...)
			d.pending, d.mid = nil, false
			emit(msg)
			continue
		}
		d.pending = append(d.pending, frag...)
		d.mid = true
	}
}

// Backoff computes capped exponential retry delays with jitter: attempt
// n (1-based) waits base·2^(n-1) capped at max, jittered uniformly into
// [d/2, d] so peers retrying in lockstep spread out. It is the single
// backoff schedule for everything that redials a stream peer — the TCP
// backend's reconnect path and the dpu join handshake. Not safe for
// concurrent use; give each retry loop its own Backoff.
type Backoff struct {
	base, max time.Duration
	rng       *rand.Rand
}

// NewBackoff returns a Backoff over [base, max] with jitter drawn from
// a deterministic seed.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retrying after failed attempt number
// attempt (1-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 1; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// WaitBackoff sleeps d on the injected clock, aborting early when ctx
// is cancelled. Under a virtual clock the wait consumes virtual time
// only, so retry loops stay deterministic in simulation.
func WaitBackoff(ctx context.Context, clock vclock.Clock, d time.Duration) error {
	if clock == nil {
		clock = vclock.Wall
	}
	done := make(chan struct{})
	tm := clock.AfterFunc(d, func() { close(done) })
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		tm.Stop()
		return ctx.Err()
	}
}

// DialStream dials a stream peer with a per-attempt timeout, honoring
// an earlier ctx deadline. It is the one dial path for stream
// connections — the TCP backend and the dpu join handshake both go
// through it, so their retry/timeout semantics stay aligned.
func DialStream(ctx context.Context, addr string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}
