package transport

import "errors"

// Addr identifies an endpoint: the stack's address within its group.
// The value is the same small integer used as kernel.Addr and, for the
// simulated backend, simnet.Addr.
type Addr int

// RecvFunc is invoked for every datagram delivered to an endpoint. It
// runs on a transport-owned goroutine (a simnet timer goroutine or a
// socket read loop); implementations must hand the packet to their
// stack's executor and return quickly. The data slice is owned by the
// receiver and remains valid after the call returns.
type RecvFunc func(from Addr, data []byte)

// Endpoint is one stack's attachment to the fabric.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Send transmits data to the endpoint at to, best-effort: the
	// datagram may be lost, duplicated or reordered, and Send never
	// blocks on delivery. The data is copied (or encoded) before Send
	// returns; the caller may reuse the buffer.
	Send(to Addr, data []byte)
	// Close detaches the endpoint. In-flight packets to it are
	// discarded; the address becomes available for a new Open.
	Close()
}

// Packet is one received datagram inside a batch delivery: the decoded
// sender address and the payload. As with RecvFunc, the data slice is
// owned by the receiver and remains valid after the batch callback
// returns.
type Packet struct {
	From Addr
	Data []byte
}

// BatchRecvFunc is invoked with a whole batch of received datagrams at
// once (one recvmmsg worth on the batched linux backend). It runs on a
// transport-owned goroutine; implementations must hand the batch to
// their stack's executor — ideally as ONE enqueued task, which is the
// point of batch delivery — and return quickly. The pkts slice and
// every packet's data are owned by the receiver and remain valid after
// the call returns.
type BatchRecvFunc func(pkts []Packet)

// BatchOpener is an optional Transport extension for backends that can
// deliver received datagrams in batches. Backends without a batched
// receive path simply do not implement it; callers fall back to Open.
type BatchOpener interface {
	// OpenBatch attaches an endpoint at addr like Open, but delivers
	// incoming datagrams through recv in batches of one or more packets.
	OpenBatch(addr Addr, recv BatchRecvFunc) (Endpoint, error)
}

// BatchSender is an optional Endpoint extension for backends that can
// amortize the per-datagram send cost (one sendmmsg per flush on the
// batched linux backend). The contract mirrors Send: Enqueue copies (or
// encodes) data before returning, delivery is best-effort, and queued
// datagrams to one destination leave in Enqueue order. Flush transmits
// everything queued since the previous Flush; an endpoint with nothing
// queued flushes as a no-op. Enqueue and Flush must be called from one
// goroutine at a time (the stack executor); they may race with the
// backend's receive path but not with each other.
//
// Every call sequence that ends in Flush is equivalent to the same
// sequence of plain Sends — BatchSender changes syscall count, never
// semantics — so callers may mix Send and Enqueue freely as long as
// they do not rely on cross-path ordering within one batch.
type BatchSender interface {
	Endpoint
	Enqueue(to Addr, data []byte)
	Flush()
}

// Router is an optional Transport extension for fabrics with explicit
// routing state (the real-socket address book): membership views admit
// and retire endpoints at runtime through it. Fabrics with implicit
// routing (simnet reaches any address) simply do not implement it.
type Router interface {
	// AddRoute maps a group address to a transport endpoint ("host:port"
	// for UDP). Re-adding an existing address overwrites its entry.
	AddRoute(addr Addr, endpoint string) error
	// RemoveRoute forgets the address; subsequent sends to it are
	// dropped as loss.
	RemoveRoute(addr Addr)
}

// Transport is a factory of endpoints over one fabric.
type Transport interface {
	// Open attaches an endpoint at addr. recv is invoked for every
	// delivered datagram. Opening an address twice without closing the
	// first endpoint is an error.
	Open(addr Addr, recv RecvFunc) (Endpoint, error)
	// Close shuts the whole fabric down: every endpoint is detached and
	// subsequent sends are discarded.
	Close()
}

// ErrClosed is returned by Open on a closed transport.
var ErrClosed = errors.New("transport: closed")
