// Package transport abstracts the unreliable datagram fabric under the
// group-communication stack (the wire below Figure 4's UDP module), so
// the same protocol code runs over an in-process simulated LAN or over
// real UDP sockets spanning OS processes and hosts.
//
// A Transport hands out Endpoints: one per stack, identified by a small
// integer Addr that doubles as the stack's group address. Endpoints
// send best-effort datagrams — loss, duplication and reordering are all
// permitted, exactly the service the paper's stack assumes at the
// bottom and repairs above (RP2P adds reliability and FIFO order, the
// protocols above add agreement).
//
// Two backends are provided:
//
//   - Sim wraps internal/simnet, preserving the deterministic,
//     fault-parameterised in-memory fabric used by the test suites and
//     benchmark figures.
//   - NewUDP binds real net.UDPConn sockets with a static address book
//     mapping Addr to host:port, for multi-process and multi-host
//     deployments (see cmd/dpu-sim's -listen/-peers mode).
//
// The Faulty decorator layers simnet-style probabilistic loss and
// duplication over any backend, so fault-injection tests can run
// against real sockets too.
package transport

import "errors"

// Addr identifies an endpoint: the stack's address within its group.
// The value is the same small integer used as kernel.Addr and, for the
// simulated backend, simnet.Addr.
type Addr int

// RecvFunc is invoked for every datagram delivered to an endpoint. It
// runs on a transport-owned goroutine (a simnet timer goroutine or a
// socket read loop); implementations must hand the packet to their
// stack's executor and return quickly. The data slice is owned by the
// receiver and remains valid after the call returns.
type RecvFunc func(from Addr, data []byte)

// Endpoint is one stack's attachment to the fabric.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Send transmits data to the endpoint at to, best-effort: the
	// datagram may be lost, duplicated or reordered, and Send never
	// blocks on delivery. The data is copied (or encoded) before Send
	// returns; the caller may reuse the buffer.
	Send(to Addr, data []byte)
	// Close detaches the endpoint. In-flight packets to it are
	// discarded; the address becomes available for a new Open.
	Close()
}

// Router is an optional Transport extension for fabrics with explicit
// routing state (the real-socket address book): membership views admit
// and retire endpoints at runtime through it. Fabrics with implicit
// routing (simnet reaches any address) simply do not implement it.
type Router interface {
	// AddRoute maps a group address to a transport endpoint ("host:port"
	// for UDP). Re-adding an existing address overwrites its entry.
	AddRoute(addr Addr, endpoint string) error
	// RemoveRoute forgets the address; subsequent sends to it are
	// dropped as loss.
	RemoveRoute(addr Addr)
}

// Transport is a factory of endpoints over one fabric.
type Transport interface {
	// Open attaches an endpoint at addr. recv is invoked for every
	// delivered datagram. Opening an address twice without closing the
	// first endpoint is an error.
	Open(addr Addr, recv RecvFunc) (Endpoint, error)
	// Close shuts the whole fabric down: every endpoint is detached and
	// subsequent sends are discarded.
	Close()
}

// ErrClosed is returned by Open on a closed transport.
var ErrClosed = errors.New("transport: closed")
