package transport

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestFaultyCorrupt flips bytes in flight: with CorruptRate 1 every
// delivered datagram differs from what was sent, and two runs with the
// same seed mutate identically.
func TestFaultyCorrupt(t *testing.T) {
	run := func(seed int64) []string {
		ft := Faulty(newMemFabric(), FaultConfig{Seed: seed, CorruptRate: 1, Clock: vclock.NewVirtual()})
		defer ft.Close()
		var got []string
		if _, err := ft.Open(2, func(_ Addr, data []byte) {
			got = append(got, string(data))
		}); err != nil {
			t.Fatal(err)
		}
		ep, err := ft.Open(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			orig := []byte(fmt.Sprintf("payload-%03d", i))
			sent := append([]byte(nil), orig...)
			ep.Send(2, sent)
			// The caller's buffer is never mutated in place.
			if !bytes.Equal(sent, orig) {
				t.Fatal("Send mutated the caller's buffer")
			}
		}
		st := ft.Stats()
		if st.Corrupted != 20 {
			t.Fatalf("Corrupted = %d, want 20", st.Corrupted)
		}
		return got
	}
	got := run(7)
	if len(got) != 20 {
		t.Fatalf("delivered %d datagrams, want 20", len(got))
	}
	for i, g := range got {
		if g == fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("datagram %d delivered uncorrupted", i)
		}
	}
	if again := run(7); strings.Join(got, "\n") != strings.Join(again, "\n") {
		t.Fatal("same seed produced different corruptions")
	}
	if other := run(8); strings.Join(got, "\n") == strings.Join(other, "\n") {
		t.Fatal("different seeds produced identical corruptions")
	}
}

// TestFaultyCorruptLoopbackExempt keeps self-addressed traffic clean,
// matching the loss/delay exemptions.
func TestFaultyCorruptLoopbackExempt(t *testing.T) {
	ft := Faulty(newMemFabric(), FaultConfig{Seed: 1, CorruptRate: 1, Clock: vclock.NewVirtual()})
	defer ft.Close()
	var got []byte
	ep, err := ft.Open(1, func(_ Addr, data []byte) { got = data })
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(1, []byte("self"))
	if string(got) != "self" {
		t.Fatalf("loopback corrupted: %q", got)
	}
}

// TestFaultyReorder inverts delivery order: a held-back datagram is
// overtaken by one sent after it.
func TestFaultyReorder(t *testing.T) {
	vc := vclock.NewVirtual()
	ft := Faulty(newMemFabric(), FaultConfig{
		Seed:         3,
		ReorderRate:  1,
		ReorderDelay: 10 * time.Millisecond,
		Clock:        vc,
	})
	defer ft.Close()
	var got []string
	if _, err := ft.Open(2, func(_ Addr, data []byte) { got = append(got, string(data)) }); err != nil {
		t.Fatal(err)
	}
	ep, err := ft.Open(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(2, []byte("first")) // held back 10ms
	ft.SetReorder(0)
	ep.Send(2, []byte("second")) // sails through
	vc.RunFor(50 * time.Millisecond)
	want := "second,first"
	if strings.Join(got, ",") != want {
		t.Fatalf("delivery order %q, want %q", strings.Join(got, ","), want)
	}
	if st := ft.Stats(); st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
}

// TestFaultyBurst drops correlated runs: one opener swallows the next
// BurstLen-1 datagrams without further RNG draws, even after the rate
// is turned off.
func TestFaultyBurst(t *testing.T) {
	ft := Faulty(newMemFabric(), FaultConfig{Seed: 5, BurstRate: 1, BurstLen: 4, Clock: vclock.NewVirtual()})
	defer ft.Close()
	var got []string
	if _, err := ft.Open(2, func(_ Addr, data []byte) { got = append(got, string(data)) }); err != nil {
		t.Fatal(err)
	}
	ep, err := ft.Open(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(2, []byte("opener")) // opens the burst, dropped
	ft.SetBurst(0, 0)
	for i := 0; i < 3; i++ {
		ep.Send(2, []byte(fmt.Sprintf("swallowed-%d", i)))
	}
	ep.Send(2, []byte("survivor"))
	if strings.Join(got, ",") != "survivor" {
		t.Fatalf("delivered %q, want just the survivor", got)
	}
	st := ft.Stats()
	if st.BurstDrops != 4 || st.Dropped != 4 || st.Passed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultyOneWay blocks exactly one direction of a link, with no RNG
// draw, and heals it again.
func TestFaultyOneWay(t *testing.T) {
	ft := Faulty(newMemFabric(), FaultConfig{Seed: 9, Clock: vclock.NewVirtual()})
	defer ft.Close()
	var at1, at2 []string
	ep1, err := ft.Open(1, func(_ Addr, data []byte) { at1 = append(at1, string(data)) })
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := ft.Open(2, func(_ Addr, data []byte) { at2 = append(at2, string(data)) })
	if err != nil {
		t.Fatal(err)
	}
	ft.CutOneWay(1, 2)
	ep1.Send(2, []byte("blocked"))
	ep2.Send(1, []byte("reverse-ok"))
	ft.HealOneWay(1, 2)
	ep1.Send(2, []byte("healed"))
	if strings.Join(at2, ",") != "healed" {
		t.Fatalf("at 2: %q, want only the post-heal datagram", at2)
	}
	if strings.Join(at1, ",") != "reverse-ok" {
		t.Fatalf("at 1: %q, want the reverse-direction datagram", at1)
	}
	if st := ft.Stats(); st.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", st.Blocked)
	}
}

// TestFaultyZeroRatesNeutral pins the wrap-by-default contract the
// scenario driver relies on: a Faulty decorator with every rate at zero
// consumes no RNG and delivers synchronously, so wrapping a transport
// in it cannot perturb a seeded run.
func TestFaultyZeroRatesNeutral(t *testing.T) {
	ft := Faulty(newMemFabric(), FaultConfig{Seed: 123, Clock: vclock.NewVirtual()})
	defer ft.Close()
	var got []string
	if _, err := ft.Open(2, func(_ Addr, data []byte) { got = append(got, string(data)) }); err != nil {
		t.Fatal(err)
	}
	ep, err := ft.Open(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ep.Send(2, []byte(fmt.Sprintf("m%d", i))) // delivered inside Send: no timers, no copies
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d, want 50", len(got))
	}
	st := ft.Stats()
	if st.Passed != 50 || st.Dropped+st.Duplicated+st.Delayed+st.Corrupted+st.Reordered+st.BurstDrops+st.Blocked != 0 {
		t.Fatalf("zero-rate decorator intervened: %+v", st)
	}
}
