package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// encodeMessages is a test helper: frames each payload and returns the
// concatenated byte stream plus total fragment count.
func encodeMessages(maxFrag int, payloads ...[]byte) ([]byte, int) {
	var buf []byte
	frags := 0
	for _, p := range payloads {
		var n int
		buf, n = appendStreamMessage(buf, p, maxFrag)
		frags += n
	}
	return buf, frags
}

// feedAll drives a decoder over stream in chunk-sized reads, modeling a
// TCP receiver that sees arbitrary segment boundaries.
func feedAll(t *testing.T, d *streamDecoder, stream []byte, chunk int) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, 0, len(stream))
	for off := 0; off < len(stream); {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		buf = append(buf, stream[off:end]...)
		off = end
		n, err := d.feed(buf, func(m []byte) { out = append(out, m) })
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		buf = buf[:copy(buf, buf[n:])]
	}
	return out
}

func TestStreamHelloRoundTrip(t *testing.T) {
	for _, addr := range []Addr{0, 1, 127, 128, 300, 1 << 20, 1<<31 - 1} {
		hello := appendStreamHello(nil, addr)
		from, n, err := decodeStreamHello(hello)
		if err != nil || from != addr || n != len(hello) {
			t.Fatalf("hello(%d): from=%d n=%d err=%v", addr, from, n, err)
		}
		// Trailing stream bytes after the hello are not consumed.
		from, n, err = decodeStreamHello(append(hello, 0xAB, 0xCD))
		if err != nil || from != addr || n != len(hello) {
			t.Fatalf("hello(%d)+suffix: from=%d n=%d err=%v", addr, from, n, err)
		}
		// Every strict prefix reports short, never success or malformed.
		for i := 0; i < len(hello); i++ {
			if _, _, err := decodeStreamHello(hello[:i]); err != errStreamShort {
				t.Fatalf("hello(%d) prefix %d: err=%v, want errStreamShort", addr, i, err)
			}
		}
	}
}

func TestStreamHelloMalformed(t *testing.T) {
	good := appendStreamHello(nil, 7)
	bad := [][]byte{
		{0x00},                             // wrong magic
		{streamMagic, 0x00},                // wrong kind (e.g. a datagram frame byte)
		{streamMagic, streamKind, 0x02},    // wrong version
		{frameMagic, frameVersion, 3, 'x'}, // a datagram frame dialed at a stream port
		append([]byte{streamMagic, streamKind, streamVersion}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), // addr uvarint overflow
	}
	for i, b := range bad {
		if _, _, err := decodeStreamHello(b); !errors.Is(err, errStreamMalformed) {
			t.Fatalf("bad hello %d: err=%v, want malformed", i, err)
		}
	}
	if _, _, err := decodeStreamHello(good); err != nil {
		t.Fatalf("good hello rejected: %v", err)
	}
}

func TestStreamFragmentation(t *testing.T) {
	cases := []struct {
		size, maxFrag, wantFrags int
	}{
		{0, 100, 1},
		{1, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{250, 100, 3},
		{1 << 20, DefaultMaxFragment, 16},
	}
	for _, tc := range cases {
		payload := make([]byte, tc.size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		stream, frags := encodeMessages(tc.maxFrag, payload)
		if frags != tc.wantFrags {
			t.Fatalf("size %d maxFrag %d: %d fragments, want %d", tc.size, tc.maxFrag, frags, tc.wantFrags)
		}
		d := &streamDecoder{maxMessage: tc.size + 1, maxFrag: tc.maxFrag}
		got := feedAll(t, d, stream, 1024)
		if len(got) != 1 || !bytes.Equal(got[0], payload) {
			t.Fatalf("size %d maxFrag %d: reassembly mismatch (%d messages)", tc.size, tc.maxFrag, len(got))
		}
	}
}

// TestStreamReassemblyQuickcheck is the reassembly property test:
// random payloads, random fragment limits and random read-chunk sizes
// must always reproduce the original message sequence exactly.
func TestStreamReassemblyQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf4a6))
	for round := 0; round < 200; round++ {
		maxFrag := 1 + rng.Intn(512)
		nmsgs := 1 + rng.Intn(5)
		payloads := make([][]byte, nmsgs)
		for i := range payloads {
			p := make([]byte, rng.Intn(4*maxFrag))
			rng.Read(p)
			payloads[i] = p
		}
		stream, _ := encodeMessages(maxFrag, payloads...)
		chunk := 1 + rng.Intn(200)
		d := &streamDecoder{maxMessage: 8 * maxFrag, maxFrag: maxFrag}
		got := feedAll(t, d, stream, chunk)
		if len(got) != nmsgs {
			t.Fatalf("round %d: %d messages, want %d (maxFrag %d chunk %d)", round, len(got), nmsgs, maxFrag, chunk)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("round %d: message %d mismatch (maxFrag %d chunk %d)", round, i, maxFrag, chunk)
			}
		}
	}
}

func TestStreamDecoderViolations(t *testing.T) {
	d := func() *streamDecoder { return &streamDecoder{maxMessage: 1 << 16, maxFrag: 1 << 10} }
	noEmit := func([]byte) {}

	// Reserved flag bits tear the connection down.
	if _, err := d().feed([]byte{0x80, 0x01, 'x'}, noEmit); !errors.Is(err, errStreamMalformed) {
		t.Fatalf("reserved flags: %v", err)
	}
	// A fragment over the limit is rejected before buffering it.
	over := wire.NewWriter(16).Byte(0).Uvarint(1 << 11).Bytes()
	if _, err := d().feed(over, noEmit); !errors.Is(err, errStreamMalformed) {
		t.Fatalf("oversize fragment: %v", err)
	}
	// A pathological length (uvarint overflow / absurd size) is rejected
	// without allocating.
	huge := wire.NewWriter(16).Byte(0).Uvarint(1 << 62).Bytes()
	if _, err := d().feed(huge, noEmit); !errors.Is(err, errStreamMalformed) {
		t.Fatalf("pathological length: %v", err)
	}
	// An empty non-final fragment makes no progress and is rejected.
	if _, err := d().feed([]byte{0x00, 0x00}, noEmit); !errors.Is(err, errStreamMalformed) {
		t.Fatalf("empty non-final fragment: %v", err)
	}
	// Reassembly beyond maxMessage is rejected even when every fragment
	// is individually legal.
	dec := &streamDecoder{maxMessage: 1 << 11, maxFrag: 1 << 10}
	stream, _ := encodeMessages(1<<10, make([]byte, 1<<12))
	if _, err := dec.feed(stream, noEmit); !errors.Is(err, errStreamMalformed) {
		t.Fatalf("over-limit reassembly: %v", err)
	}
}

// TestStreamEveryBitFlip carries a SEALED wire frame as the stream
// payload and flips every bit of the encoded stream bytes, one at a
// time. Each flip must end in rejection: either the stream framing
// detects desync (connection teardown = the message is lost), or the
// corrupted payload reaches reassembly and the sealed-frame CRC32-C
// refuses to open it. No flip may yield a frame that opens cleanly.
func TestStreamEveryBitFlip(t *testing.T) {
	const salt = 0x5eed
	sealed := make([]byte, wire.FrameOverhead+32)
	sealed[0] = 0x07 // tag
	for i := wire.FrameOverhead; i < len(sealed); i++ {
		sealed[i] = byte(i * 13)
	}
	wire.SealFrame(sealed, salt)
	if _, _, ok := wire.OpenFrame(sealed, salt); !ok {
		t.Fatal("pristine frame does not open")
	}
	stream, _ := encodeMessages(16, sealed) // several fragments
	for bit := 0; bit < len(stream)*8; bit++ {
		mut := append([]byte(nil), stream...)
		mut[bit/8] ^= 1 << (bit % 8)
		d := &streamDecoder{maxMessage: 1 << 16, maxFrag: 16}
		var msgs [][]byte
		_, err := d.feed(mut, func(m []byte) { msgs = append(msgs, m) })
		if err != nil {
			continue // framing violation: connection torn down, frame lost
		}
		for _, m := range msgs {
			if _, _, ok := wire.OpenFrame(m, salt); ok {
				t.Fatalf("bit flip %d slipped through stream framing AND the sealed-frame CRC", bit)
			}
		}
	}
}

// FuzzStreamFrame fuzzes the fragment-frame decoder: arbitrary bytes
// must never panic, never consume more than they were given, and — for
// well-formed prefixes — consume whole frames only. The same input also
// drives an encode→decode round-trip with fuzzer-chosen fragmentation
// and read chunking, which must reproduce the payload bit-exactly.
func FuzzStreamFrame(f *testing.F) {
	seed1, _ := encodeMessages(8, []byte("hello stream"))
	seed2, _ := encodeMessages(3, []byte(""), []byte("ab"), make([]byte, 64))
	f.Add(seed1, uint16(8), uint8(3))
	f.Add(seed2, uint16(3), uint8(1))
	f.Add([]byte{0x01, 0x00}, uint16(100), uint8(7)) // empty FIN frame
	f.Add([]byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint16(16), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, frag uint16, chunk uint8) {
		// 1. Adversarial decode: no panic, sane consumption.
		d := &streamDecoder{maxMessage: 1 << 16, maxFrag: 1 << 10}
		total := 0
		for off := 0; off < len(data); {
			n, err := d.feed(data[off:], func([]byte) {})
			if n < 0 || off+n > len(data) {
				t.Fatalf("feed consumed %d of %d remaining", n, len(data)-off)
			}
			total += n
			if err != nil {
				break
			}
			if n == 0 {
				break // incomplete frame: a real reader would read more
			}
			off += n
		}
		if total > len(data) {
			t.Fatalf("decoder consumed %d > input %d", total, len(data))
		}

		// 2. Round-trip: the input as a payload, fragmented and chunked
		// by fuzzer-chosen sizes, must reassemble bit-exactly.
		maxFrag := int(frag)%1024 + 1
		readChunk := int(chunk)%128 + 1
		stream, frags := appendStreamMessage(nil, data, maxFrag)
		wantFrags := (len(data) + maxFrag - 1) / maxFrag
		if wantFrags == 0 {
			wantFrags = 1
		}
		if frags != wantFrags {
			t.Fatalf("%d-byte payload at maxFrag %d: %d fragments, want %d", len(data), maxFrag, frags, wantFrags)
		}
		rt := &streamDecoder{maxMessage: len(data) + 1, maxFrag: maxFrag}
		var got [][]byte
		buf := make([]byte, 0, len(stream))
		for off := 0; off < len(stream); {
			end := off + readChunk
			if end > len(stream) {
				end = len(stream)
			}
			buf = append(buf, stream[off:end]...)
			off = end
			n, err := rt.feed(buf, func(m []byte) { got = append(got, m) })
			if err != nil {
				t.Fatalf("round-trip feed: %v", err)
			}
			buf = buf[:copy(buf, buf[n:])]
		}
		if len(got) != 1 || !bytes.Equal(got[0], data) {
			t.Fatalf("round-trip mismatch: %d messages", len(got))
		}
	})
}

func TestBackoffSchedule(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	for attempt := 1; attempt <= 8; attempt++ {
		full := 10 * time.Millisecond
		for i := 1; i < attempt && full < 80*time.Millisecond; i++ {
			full *= 2
		}
		if full > 80*time.Millisecond {
			full = 80 * time.Millisecond
		}
		d := b.Delay(attempt)
		if d < full/2 || d > full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
	// Deterministic for a given seed.
	x, y := NewBackoff(time.Millisecond, time.Second, 99), NewBackoff(time.Millisecond, time.Second, 99)
	for i := 1; i < 10; i++ {
		if x.Delay(i) != y.Delay(i) {
			t.Fatalf("same-seed backoffs diverge at attempt %d", i)
		}
	}
}
