package transport

// Conformance suite for BatchSender/BatchOpener backends, run over
// every shape the real-socket transport can take: the batched syscall
// backend, the portable fallback (DisableBatching), and the Faulty
// decorator over either. transporttest deliberately cannot import this
// package, so the suite lives here, next to the implementations.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

// batchVariant builds one transport shape to run the conformance suite
// against. open returns the transport whose endpoints must implement
// BatchSender, plus the raw *UDPTransport for stats.
type batchVariant struct {
	name string
	mk   func(t *testing.T, cfg UDPConfig) (Transport, *UDPTransport)
}

func batchVariants() []batchVariant {
	return []batchVariant{
		{"batched", func(t *testing.T, cfg UDPConfig) (Transport, *UDPTransport) {
			u, err := NewUDP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return u, u
		}},
		{"fallback", func(t *testing.T, cfg UDPConfig) (Transport, *UDPTransport) {
			cfg.DisableBatching = true
			u, err := NewUDP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return u, u
		}},
		{"faulty", func(t *testing.T, cfg UDPConfig) (Transport, *UDPTransport) {
			u, err := NewUDP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// All rates zero: the decorator must pass batching through
			// untouched.
			return Faulty(u, FaultConfig{Seed: 1}), u
		}},
	}
}

// TestBatchSenderConformance checks the BatchSender contract on every
// transport shape: Enqueue+Flush is observationally a sequence of
// Sends — per-destination FIFO order, datagram-counting stats, loss on
// oversized or unroutable frames — regardless of how many syscalls
// carry it.
func TestBatchSenderConformance(t *testing.T) {
	for _, v := range batchVariants() {
		t.Run(v.name+"/flush-ordering", func(t *testing.T) {
			tr, u := v.mk(t, UDPConfig{Book: reserveBook(t, 3)})
			defer tr.Close()
			recv1, ch1 := collector(256)
			recv2, ch2 := collector(256)
			if _, err := tr.Open(1, recv1); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Open(2, recv2); err != nil {
				t.Fatal(err)
			}
			ep0, err := tr.Open(0, func(Addr, []byte) {})
			if err != nil {
				t.Fatal(err)
			}
			bs, ok := ep0.(BatchSender)
			if !ok {
				t.Fatalf("%T does not implement BatchSender", ep0)
			}
			// Interleave two destinations across several flush cycles —
			// more than one sendmmsg worth in the last cycle.
			const perCycle, cycles = 40, 3
			for c := 0; c < cycles; c++ {
				for i := 0; i < perCycle; i++ {
					bs.Enqueue(1, []byte(fmt.Sprintf("to1-%d-%d", c, i)))
					bs.Enqueue(2, []byte(fmt.Sprintf("to2-%d-%d", c, i)))
				}
				bs.Flush()
			}
			for c := 0; c < cycles; c++ {
				for i := 0; i < perCycle; i++ {
					expectPacket(t, ch1, packet{0, fmt.Sprintf("to1-%d-%d", c, i)})
					expectPacket(t, ch2, packet{0, fmt.Sprintf("to2-%d-%d", c, i)})
				}
			}
			st := u.Stats()
			if want := uint64(2 * perCycle * cycles); st.Sent != want || st.Delivered != want {
				t.Fatalf("stats count datagrams, not syscalls: sent=%d delivered=%d want %d", st.Sent, st.Delivered, want)
			}
			if BatchSyscallsAvailable() && v.name != "fallback" {
				// 240 datagrams in 3 flushes of ceil(80/32)=3 syscalls.
				if st.SendCalls > 12 {
					t.Fatalf("batched backend used %d send syscalls for %d datagrams", st.SendCalls, st.Sent)
				}
			}
		})

		t.Run(v.name+"/oversized-and-unroutable-in-batch", func(t *testing.T) {
			tr, u := v.mk(t, UDPConfig{Book: reserveBook(t, 2), MaxPacket: 2048})
			defer tr.Close()
			recv1, ch1 := collector(16)
			if _, err := tr.Open(1, recv1); err != nil {
				t.Fatal(err)
			}
			ep0, err := tr.Open(0, func(Addr, []byte) {})
			if err != nil {
				t.Fatal(err)
			}
			bs := ep0.(BatchSender)
			bs.Enqueue(1, []byte("ok-1"))
			bs.Enqueue(1, make([]byte, 4096)) // over MaxPacket: rejected, loss
			bs.Enqueue(9, []byte("nowhere"))  // not in book: rejected, loss
			bs.Enqueue(1, []byte("ok-2"))
			bs.Flush()
			expectPacket(t, ch1, packet{0, "ok-1"})
			expectPacket(t, ch1, packet{0, "ok-2"})
			expectQuiet(t, ch1, 50*time.Millisecond)
			st := u.Stats()
			if st.Sent != 2 || st.SendErrs != 2 {
				t.Fatalf("want 2 sent + 2 errors, got %+v", st)
			}
		})

		t.Run(v.name+"/empty-flush", func(t *testing.T) {
			tr, u := v.mk(t, UDPConfig{Book: reserveBook(t, 1)})
			defer tr.Close()
			ep0, err := tr.Open(0, func(Addr, []byte) {})
			if err != nil {
				t.Fatal(err)
			}
			bs := ep0.(BatchSender)
			for i := 0; i < 10; i++ {
				bs.Flush()
			}
			if st := u.Stats(); st.Sent != 0 || st.SendErrs != 0 {
				t.Fatalf("empty flushes must be no-ops, got %+v", st)
			}
		})
	}
}

// TestBatchPartialSendError drives a real partial-batch sendmmsg
// failure: with MaxPacket raised past the UDP payload ceiling, a
// middle datagram passes the config check but draws EMSGSIZE from the
// kernel. The failed datagram must be counted as loss (SendErrs) and
// the rest of the batch must still go out, in order.
func TestBatchPartialSendError(t *testing.T) {
	if !BatchSyscallsAvailable() {
		t.Skip("no batched syscall backend on this platform")
	}
	tr, err := NewUDP(UDPConfig{Book: reserveBook(t, 2), MaxPacket: 80000})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv1, ch1 := collector(16)
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bs := ep0.(BatchSender)
	bs.Enqueue(1, []byte("before"))
	bs.Enqueue(1, make([]byte, 70000)) // > 65507: kernel rejects with EMSGSIZE
	bs.Enqueue(1, []byte("after"))
	bs.Flush()
	expectPacket(t, ch1, packet{0, "before"})
	expectPacket(t, ch1, packet{0, "after"})
	st := tr.Stats()
	if st.Sent != 2 || st.SendErrs != 1 {
		t.Fatalf("partial-batch error must count as loss: %+v", st)
	}
}

// TestOpenBatchDelivery checks batched receive end to end: a burst of
// Sends arrives through the BatchRecvFunc with correct senders,
// payloads and order, and the batched backend uses far fewer read
// syscalls than datagrams.
func TestOpenBatchDelivery(t *testing.T) {
	tr, err := NewUDP(UDPConfig{Book: reserveBook(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	type delivery struct {
		batch int
		pkt   packet
	}
	ch := make(chan delivery, 512)
	batches := 0
	if _, err := tr.OpenBatch(1, func(pkts []Packet) {
		batches++
		for _, p := range pkts {
			ch <- delivery{batches, packet{p.From, string(p.Data)}}
		}
	}); err != nil {
		t.Fatal(err)
	}
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bs := ep0.(BatchSender)
	const n = 200
	for i := 0; i < n; i++ {
		bs.Enqueue(1, []byte(fmt.Sprintf("m%03d", i)))
	}
	bs.Flush()
	maxBatch := 0
	for i := 0; i < n; i++ {
		select {
		case d := <-ch:
			if want := fmt.Sprintf("m%03d", i); d.pkt.data != want || d.pkt.from != 0 {
				t.Fatalf("delivery %d: got %+v want %q from 0", i, d.pkt, want)
			}
			if d.batch > maxBatch {
				maxBatch = d.batch
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at delivery %d", i)
		}
	}
	st := tr.Stats()
	if st.Delivered != n {
		t.Fatalf("delivered %d want %d", st.Delivered, n)
	}
	if BatchSyscallsAvailable() {
		if maxBatch >= n/2 {
			t.Errorf("no batching observed: %d batches for %d datagrams", maxBatch, n)
		}
	}
}

// TestFaultySimSingletonBatches checks the decorator's OpenBatch shim
// over a fabric with no batched receive path (simnet): every datagram
// arrives as its own singleton batch — the per-datagram event granularity
// that keeps scenario digests bit-identical. (Arrival order is simnet's
// business: its default jitter may reorder.)
func TestFaultySimSingletonBatches(t *testing.T) {
	net := simnet.New(simnet.Config{})
	ft := Faulty(Sim(net), FaultConfig{Seed: 7})
	defer ft.Close()
	ch := make(chan packet, 64)
	if _, err := ft.OpenBatch(1, func(pkts []Packet) {
		if len(pkts) != 1 {
			t.Errorf("singleton shim delivered %d packets in one batch", len(pkts))
		}
		for _, p := range pkts {
			ch <- packet{p.From, string(p.Data)}
		}
	}); err != nil {
		t.Fatal(err)
	}
	ep0, err := ft.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ep0.(BatchSender); ok {
		t.Fatalf("sim endpoints must not batch sends (digest stability)")
	}
	for i := 0; i < 20; i++ {
		ep0.Send(1, []byte(fmt.Sprintf("s%02d", i)))
	}
	got := make(map[string]bool, 20)
	for i := 0; i < 20; i++ {
		select {
		case p := <-ch:
			if p.from != 0 || got[p.data] {
				t.Fatalf("unexpected or duplicate packet %+v", p)
			}
			got[p.data] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d packets", i)
		}
	}
	for i := 0; i < 20; i++ {
		if !got[fmt.Sprintf("s%02d", i)] {
			t.Fatalf("missing packet s%02d", i)
		}
	}
}

// TestFaultyBatchFates checks that fault fates apply per-Enqueue on the
// batched path: with full loss nothing leaves; after healing, delayed
// datagrams still arrive (via the decorator's timer path).
func TestFaultyBatchFates(t *testing.T) {
	u, err := NewUDP(UDPConfig{Book: reserveBook(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ft := Faulty(u, FaultConfig{Seed: 3, LossRate: 1})
	defer ft.Close()
	recv1, ch1 := collector(64)
	if _, err := ft.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	ep0, err := ft.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bs, ok := ep0.(BatchSender)
	if !ok {
		t.Fatalf("faulty wrapper lost BatchSender: %T", ep0)
	}
	for i := 0; i < 10; i++ {
		bs.Enqueue(1, []byte("lost"))
	}
	bs.Flush()
	expectQuiet(t, ch1, 50*time.Millisecond)
	if got := ft.Stats().Dropped; got != 10 {
		t.Fatalf("dropped %d want 10", got)
	}
	ft.SetLoss(0)
	ft.SetDelay(time.Millisecond)
	bs.Enqueue(1, []byte("delayed"))
	bs.Flush() // nothing on the queue: the delayed copy rides a timer
	expectPacket(t, ch1, packet{0, "delayed"})
}
