package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Process-wide counters for the stream backend, next to the batch and
// fault counters (see docs/OPERATIONS.md). Dials count every outbound
// connection attempt; reconnects count the attempts that replace a
// previously established connection to the same peer; fragments count
// the extra frames emitted for messages that exceeded one fragment.
var (
	streamDialsCounter      = metrics.NewCounter("transport.stream_dials")
	streamReconnectsCounter = metrics.NewCounter("transport.stream_reconnects")
	streamFragmentsCounter  = metrics.NewCounter("transport.stream_fragments")
)

// TCPConfig configures a stream-oriented real-socket transport.
type TCPConfig struct {
	// Book maps every group address to its TCP "host:port". Addresses
	// are kept as strings and resolved by each dial, so DNS changes and
	// runtime AddRoute updates take effect on the next connection.
	Book map[Addr]string
	// MaxMessage bounds a reassembled message and therefore the largest
	// payload Send accepts (default DefaultMaxMessage). Peers must agree
	// on it: a message over the receiver's limit is a framing violation
	// that tears the connection down.
	MaxMessage int
	// MaxFragment bounds one stream fragment (default DefaultMaxFragment).
	MaxFragment int
	// QueueLimit caps the bytes parked per peer while its connection is
	// down or slow (default 4 MiB). Messages beyond it are dropped as
	// loss — a stream peer that stays unreachable must not grow the
	// sender's heap without bound.
	QueueLimit int
	// Logf, when non-nil, receives diagnostics (dial failures, malformed
	// frames). The transport never logs through any other channel.
	Logf func(format string, args ...any)
	// Clock schedules the reconnect backoff timers (default vclock.Wall).
	// Socket I/O deadlines are kernel timers and stay on wall time.
	Clock vclock.Clock
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// RedialBase/RedialMax shape the per-peer reconnect backoff:
	// base·2^(attempt-1) capped at max, jittered into [d/2, d]
	// (defaults 20ms / 1s).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Seed feeds the backoff jitter so simulated runs are reproducible.
	Seed int64
}

// TCPStats counts stream activity. Retrieve a snapshot with Stats.
type TCPStats struct {
	Dials      uint64 // outbound connection attempts
	Accepted   uint64 // inbound connections that completed the hello
	Reconnects uint64 // dial attempts replacing a previously live connection
	Sent       uint64 // messages written to a connection
	Delivered  uint64 // messages reassembled and delivered to receivers
	Fragments  uint64 // fragment frames sent for multi-fragment messages
	Malformed  uint64 // framing violations (each tears a connection down)
	SendErrs   uint64 // drops: unknown route, oversize, queue overflow, closed
	Bytes      uint64 // payload bytes sent
}

// TCPTransport sends length-prefixed stream frames over real net.Conn
// connections using a mutable address book. It satisfies Transport,
// BatchOpener and (via its endpoints) BatchSender and Router, so the
// stack above runs unmodified over streams.
//
// Connections are managed per (endpoint, peer) pair: the first send to
// a peer dials lazily, a single accept loop per endpoint admits inbound
// connections, a dead connection is redialed with capped backoff on the
// injected clock the next time traffic needs it, and when both sides
// dial simultaneously the connection initiated by the LOWER address
// wins (both sides apply the same rule, so the pair converges on one
// connection; frames in flight on the loser are dropped, as loss).
// Membership drives the lifecycle through Router: AddRoute admits a
// joiner, RemoveRoute tears down the peer's connection and queue.
type TCPTransport struct {
	cfg TCPConfig

	bookMu sync.RWMutex
	book   map[Addr]string

	mu     sync.Mutex
	eps    map[Addr]*tcpEndpoint
	closed bool

	dials, accepted, reconnects         atomic.Uint64
	sent, delivered, fragments          atomic.Uint64
	malformed, sendErrs, payloadedBytes atomic.Uint64
}

// NewTCP validates the address book and returns a stream transport. No
// listeners are bound until Open.
func NewTCP(cfg TCPConfig) (*TCPTransport, error) {
	if len(cfg.Book) == 0 {
		return nil, fmt.Errorf("transport: empty address book")
	}
	if cfg.MaxMessage <= 0 {
		cfg.MaxMessage = DefaultMaxMessage
	}
	if cfg.MaxFragment <= 0 {
		cfg.MaxFragment = DefaultMaxFragment
	}
	if cfg.MaxFragment > cfg.MaxMessage {
		cfg.MaxFragment = cfg.MaxMessage
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 4 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Wall
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RedialBase <= 0 {
		cfg.RedialBase = 20 * time.Millisecond
	}
	if cfg.RedialMax <= 0 {
		cfg.RedialMax = time.Second
	}
	book := make(map[Addr]string, len(cfg.Book))
	for a, s := range cfg.Book {
		if _, _, err := net.SplitHostPort(s); err != nil {
			return nil, fmt.Errorf("transport: address book entry %d (%q): %w", a, s, err)
		}
		book[a] = s
	}
	return &TCPTransport{cfg: cfg, book: book, eps: make(map[Addr]*tcpEndpoint)}, nil
}

func (t *TCPTransport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Open binds the TCP listener for addr's book entry and starts its
// accept loop. The returned endpoint implements BatchSender: Enqueue
// parks frames per peer and Flush writes each peer's batch as one
// coalesced buffer.
func (t *TCPTransport) Open(addr Addr, recv RecvFunc) (Endpoint, error) {
	return t.open(addr, recv, nil)
}

// OpenBatch binds the listener like Open but delivers incoming messages
// in batches: every message reassembled from one socket read arrives in
// one callback. It implements the optional BatchOpener extension.
func (t *TCPTransport) OpenBatch(addr Addr, recv BatchRecvFunc) (Endpoint, error) {
	if recv == nil {
		return nil, fmt.Errorf("transport: OpenBatch with nil receiver")
	}
	return t.open(addr, nil, recv)
}

func (t *TCPTransport) open(addr Addr, recv RecvFunc, brecv BatchRecvFunc) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.eps[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %d already open", addr)
	}
	t.bookMu.RLock()
	bind, ok := t.book[addr]
	t.bookMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: address %d not in book", addr)
	}
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %d at %s: %w", addr, bind, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &tcpEndpoint{
		tr: t, addr: addr, listener: l, recv: recv, brecv: brecv,
		ctx: ctx, cancel: cancel,
		links: make(map[Addr]*tcpLink),
		pend:  make(map[net.Conn]struct{}),
	}
	t.eps[addr] = ep
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// AddRoute maps a group address to a "host:port" endpoint at runtime.
// Membership views use it to admit a joining node on every running
// process. If the address was already routed elsewhere, the stale
// connection is torn down so the next send dials the new endpoint.
func (t *TCPTransport) AddRoute(addr Addr, endpoint string) error {
	if _, _, err := net.SplitHostPort(endpoint); err != nil {
		return fmt.Errorf("transport: route %d (%q): %w", addr, endpoint, err)
	}
	t.bookMu.Lock()
	prev, had := t.book[addr]
	t.book[addr] = endpoint
	t.bookMu.Unlock()
	if had && prev != endpoint {
		t.mu.Lock()
		eps := t.snapshotEndpointsLocked()
		t.mu.Unlock()
		for _, ep := range eps {
			ep.dropLink(addr)
		}
	}
	return nil
}

// RemoveRoute retires an address from the book, closes any connection
// to it and discards its queued frames; subsequent sends are dropped as
// loss. Used when a member is evicted from the view.
func (t *TCPTransport) RemoveRoute(addr Addr) {
	t.bookMu.Lock()
	delete(t.book, addr)
	t.bookMu.Unlock()
	t.mu.Lock()
	eps := t.snapshotEndpointsLocked()
	t.mu.Unlock()
	for _, ep := range eps {
		ep.dropLink(addr)
	}
}

func (t *TCPTransport) snapshotEndpointsLocked() []*tcpEndpoint {
	eps := make([]*tcpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	return eps
}

func (t *TCPTransport) route(addr Addr) (string, bool) {
	t.bookMu.RLock()
	s, ok := t.book[addr]
	t.bookMu.RUnlock()
	return s, ok
}

// Stats returns a snapshot of stream counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		Dials:      t.dials.Load(),
		Accepted:   t.accepted.Load(),
		Reconnects: t.reconnects.Load(),
		Sent:       t.sent.Load(),
		Delivered:  t.delivered.Load(),
		Fragments:  t.fragments.Load(),
		Malformed:  t.malformed.Load(),
		SendErrs:   t.sendErrs.Load(),
		Bytes:      t.payloadedBytes.Load(),
	}
}

// Close detaches every endpoint and rejects further Opens.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	eps := t.snapshotEndpointsLocked()
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

type tcpEndpoint struct {
	tr       *TCPTransport
	addr     Addr
	listener net.Listener
	recv     RecvFunc      // set when opened with Open
	brecv    BatchRecvFunc // set when opened with OpenBatch
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	linkMu sync.Mutex
	links  map[Addr]*tcpLink

	// pendMu guards inbound connections still mid-hello: they belong to
	// no link yet, so Close must reach them directly.
	pendMu sync.Mutex
	pend   map[net.Conn]struct{}

	// dirty is the executor-confined BatchSender state: links touched by
	// Enqueue since the last Flush, in first-touch order. Only the
	// single Enqueue/Flush caller reads or writes it.
	dirty []*tcpLink

	closed atomic.Bool
}

// Addr returns the endpoint's group address.
func (e *tcpEndpoint) Addr() Addr { return e.addr }

// Send frames data as one stream message and hands it to the peer
// link's writer, dialing lazily if no connection is up. Failures
// (unknown address, oversized payload, full queue, closed endpoint)
// drop the message, as network loss would; RP2P's retransmission
// recovers.
func (e *tcpEndpoint) Send(to Addr, data []byte) {
	if l := e.park(to, data); l != nil {
		l.kick()
	}
}

// Enqueue frames data onto the peer link's queue for the next Flush.
// Enqueue and Flush must be called from one goroutine at a time (the
// stack executor); Send may be used concurrently from other goroutines.
func (e *tcpEndpoint) Enqueue(to Addr, data []byte) {
	l := e.park(to, data)
	if l == nil {
		return
	}
	for _, d := range e.dirty {
		if d == l {
			return
		}
	}
	e.dirty = append(e.dirty, l)
}

// Flush wakes the writer of every link touched by Enqueue since the
// previous Flush; each writer drains its whole queue with one
// conn.Write, so one executor pass costs one coalesced write per peer.
func (e *tcpEndpoint) Flush() {
	for i, l := range e.dirty {
		l.kick()
		e.dirty[i] = nil
	}
	e.dirty = e.dirty[:0]
}

// park frames data onto to's link queue and returns the link, or nil
// when the message was dropped.
func (e *tcpEndpoint) park(to Addr, data []byte) *tcpLink {
	t := e.tr
	if e.closed.Load() {
		t.sendErrs.Add(1)
		return nil
	}
	if _, ok := t.route(to); !ok {
		t.sendErrs.Add(1)
		t.logf("transport: drop send %d->%d: address not in book", e.addr, to)
		return nil
	}
	if len(data) > t.cfg.MaxMessage {
		t.sendErrs.Add(1)
		t.logf("transport: drop send %d->%d: %d-byte payload exceeds stream limit %d",
			e.addr, to, len(data), t.cfg.MaxMessage)
		return nil
	}
	l := e.link(to)
	if l == nil {
		t.sendErrs.Add(1)
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		t.sendErrs.Add(1)
		return nil
	}
	if len(l.pending) > t.cfg.QueueLimit {
		l.mu.Unlock()
		t.sendErrs.Add(1)
		t.logf("transport: drop send %d->%d: peer queue over %d bytes", e.addr, to, t.cfg.QueueLimit)
		return nil
	}
	var frags int
	l.pending, frags = appendStreamMessage(l.pending, data, t.cfg.MaxFragment)
	l.mu.Unlock()
	if frags > 1 {
		t.fragments.Add(uint64(frags))
		streamFragmentsCounter.Add(uint64(frags))
	}
	t.payloadedBytes.Add(uint64(len(data)))
	return l
}

// link returns the live link for peer, creating it (and its writer
// goroutine) on first use.
func (e *tcpEndpoint) link(peer Addr) *tcpLink {
	e.linkMu.Lock()
	defer e.linkMu.Unlock()
	if e.closed.Load() {
		return nil
	}
	if l, ok := e.links[peer]; ok {
		return l
	}
	l := &tcpLink{ep: e, peer: peer, wake: make(chan struct{}, 1)}
	e.links[peer] = l
	e.wg.Add(1)
	go l.runWriter()
	return l
}

// dropLink tears down the link to peer: its connection is closed, its
// queue discarded, its writer stopped. The next send (if the peer is
// ever re-routed) builds a fresh link.
func (e *tcpEndpoint) dropLink(peer Addr) {
	e.linkMu.Lock()
	l := e.links[peer]
	delete(e.links, peer)
	e.linkMu.Unlock()
	if l != nil {
		l.shutdown()
	}
}

// acceptLoop admits inbound connections: each one opens with a hello
// identifying the dialing peer, after which the connection joins that
// peer's link (or loses the duplicate tie-break and is closed).
func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			// Listener closed (endpoint shutdown) or unrecoverable.
			return
		}
		e.wg.Add(1)
		go e.admit(conn)
	}
}

// admit reads the hello off an inbound connection and registers it with
// the initiating peer's link.
func (e *tcpEndpoint) admit(conn net.Conn) {
	defer e.wg.Done()
	t := e.tr
	e.pendMu.Lock()
	if e.closed.Load() {
		e.pendMu.Unlock()
		conn.Close()
		return
	}
	e.pend[conn] = struct{}{}
	e.pendMu.Unlock()
	defer func() {
		e.pendMu.Lock()
		delete(e.pend, conn)
		e.pendMu.Unlock()
	}()
	//dpulint:ignore clocktime TCP I/O deadline on a real socket; kernel OS timers are wall-clock by definition
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 0, streamHelloMax)
	var from Addr
	for {
		n, err := conn.Read(buf[len(buf):cap(buf)])
		if n > 0 {
			buf = buf[:len(buf)+n]
		}
		if err != nil {
			conn.Close()
			return
		}
		var hn int
		from, hn, err = decodeStreamHello(buf)
		if err == nil {
			buf = buf[hn:]
			break
		}
		if err != errStreamShort {
			t.malformed.Add(1)
			t.logf("transport: endpoint %d: rejected inbound connection: %v", e.addr, err)
			conn.Close()
			return
		}
	}
	var zero time.Time
	conn.SetReadDeadline(zero)
	if _, ok := t.route(from); !ok || from == e.addr {
		// Not in the book (evicted, or a stray) — refuse.
		t.logf("transport: endpoint %d: rejected inbound connection from unrouted %d", e.addr, from)
		conn.Close()
		return
	}
	l := e.link(from)
	if l == nil {
		conn.Close()
		return
	}
	t.accepted.Add(1)
	// Inbound connections were initiated by the remote peer.
	if l.adopt(conn, from) {
		e.wg.Add(1)
		go l.readConn(conn, append([]byte(nil), buf...))
	}
}

// recvMsg delivers one reassembled message unless the endpoint has
// closed. An endpoint opened with OpenBatch receives it inside a batch.
func (e *tcpEndpoint) recvMsg(from Addr, msgs [][]byte) {
	if e.closed.Load() || len(msgs) == 0 {
		return
	}
	e.tr.delivered.Add(uint64(len(msgs)))
	if e.brecv != nil {
		pkts := make([]Packet, len(msgs))
		for i, m := range msgs {
			pkts[i] = Packet{From: from, Data: m}
		}
		e.brecv(pkts)
		return
	}
	for _, m := range msgs {
		e.recv(from, m)
	}
}

// Close shuts the listener and every link down and waits for all
// endpoint goroutines (accept loop, link writers, connection readers)
// to exit.
func (e *tcpEndpoint) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.cancel()
	e.listener.Close()
	e.pendMu.Lock()
	for c := range e.pend {
		c.Close()
	}
	e.pendMu.Unlock()
	e.linkMu.Lock()
	links := make([]*tcpLink, 0, len(e.links))
	for _, l := range e.links {
		links = append(links, l)
	}
	e.links = make(map[Addr]*tcpLink)
	e.linkMu.Unlock()
	for _, l := range links {
		l.shutdown()
	}
	e.wg.Wait()
	t := e.tr
	t.mu.Lock()
	if t.eps[e.addr] == e {
		delete(t.eps, e.addr)
	}
	t.mu.Unlock()
}

// tcpLink is the connection manager for one (endpoint, peer) pair: a
// queue of encoded frames, at most one live connection, and a writer
// goroutine that dials lazily and redials with capped backoff.
type tcpLink struct {
	ep   *tcpEndpoint
	peer Addr
	wake chan struct{} // capacity 1: writer wake-up

	mu            sync.Mutex
	pending       []byte   // encoded frames awaiting write
	conn          net.Conn // canonical connection (nil while down)
	connInitiator Addr     // dialing side of conn, for the tie-break
	everUp        bool     // a connection has been established before
	closed        bool
}

// kick wakes the writer; a no-op if a wake-up is already queued.
func (l *tcpLink) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// adopt installs c as the link's connection, applying the duplicate
// tie-break: if a connection is already up, the one whose INITIATOR has
// the lower address wins; on a tie (the peer re-dialed after losing its
// old connection) the newer one wins. Returns false when c lost and was
// closed; the caller starts a read loop only for adopted connections.
func (l *tcpLink) adopt(c net.Conn, initiator Addr) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.Close()
		return false
	}
	var evicted net.Conn
	if l.conn != nil {
		if l.connInitiator < initiator {
			l.mu.Unlock()
			c.Close()
			return false
		}
		evicted = l.conn
	}
	l.conn, l.connInitiator, l.everUp = c, initiator, true
	l.mu.Unlock()
	if evicted != nil {
		// Closing wakes its read loop, which clears any stale state.
		evicted.Close()
	}
	return true
}

// dropConn clears c as the link's connection (if it still is) and
// closes it; the next traffic redials.
func (l *tcpLink) dropConn(c net.Conn) {
	l.mu.Lock()
	if l.conn == c {
		l.conn = nil
	}
	l.mu.Unlock()
	c.Close()
}

// shutdown closes the link permanently: queued frames are discarded and
// the live connection (if any) is closed, which unblocks the reader and
// writer goroutines.
func (l *tcpLink) shutdown() {
	l.mu.Lock()
	l.closed = true
	l.pending = nil
	c := l.conn
	l.conn = nil
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
	l.kick()
}

// runWriter is the link's writer goroutine: woken by kick, it drains
// the whole queue with one conn.Write per wake-up, dialing (and
// redialing, with capped backoff on the injected clock) whenever
// traffic finds the connection down.
func (l *tcpLink) runWriter() {
	e := l.ep
	defer e.wg.Done()
	t := e.tr
	backoff := NewBackoff(t.cfg.RedialBase, t.cfg.RedialMax,
		t.cfg.Seed^(int64(e.addr)<<16)^int64(l.peer))
	for {
		select {
		case <-l.wake:
		case <-e.ctx.Done():
			return
		}
		for {
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			if len(l.pending) == 0 {
				l.mu.Unlock()
				break
			}
			if l.peer == e.addr {
				// Self-addressed traffic short-circuits the socket: decode
				// our own frames and deliver on this (transport-owned)
				// goroutine. Dialing our own listener would put both halves
				// of one connection on this link and confuse the tie-break.
				buf := l.pending
				l.pending = nil
				l.mu.Unlock()
				l.deliverLocal(buf)
				continue
			}
			conn := l.conn
			if conn == nil {
				l.mu.Unlock()
				if !l.connect(backoff) {
					return // link closed or endpoint shut down while dialing
				}
				continue
			}
			buf := l.pending
			l.pending = nil
			l.mu.Unlock()
			if _, err := conn.Write(buf); err != nil {
				// The frames in buf are lost, as network loss; the stream
				// restarts clean on the next connection.
				t.sendErrs.Add(1)
				t.logf("transport: %d->%d: write: %v", e.addr, l.peer, err)
				l.dropConn(conn)
				continue
			}
			t.sent.Add(1)
		}
	}
}

// deliverLocal reassembles self-addressed frames and delivers them in
// one batch; buf always holds whole frames (park only appends complete
// messages).
func (l *tcpLink) deliverLocal(buf []byte) {
	e := l.ep
	t := e.tr
	dec := &streamDecoder{maxMessage: t.cfg.MaxMessage, maxFrag: t.cfg.MaxFragment}
	var msgs [][]byte
	if _, err := dec.feed(buf, func(m []byte) { msgs = append(msgs, m) }); err != nil {
		t.malformed.Add(1)
		t.logf("transport: endpoint %d: self-delivery desynchronized: %v", e.addr, err)
		return
	}
	t.sent.Add(1)
	e.recvMsg(e.addr, msgs)
}

// connect establishes a connection for the link, retrying with capped
// backoff until it succeeds, the route disappears, or the link/endpoint
// closes. Returns false when the writer should exit.
func (l *tcpLink) connect(backoff *Backoff) bool {
	e := l.ep
	t := e.tr
	for attempt := 1; ; attempt++ {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return false
		}
		if l.conn != nil {
			// An inbound connection arrived while we were backing off.
			l.mu.Unlock()
			return true
		}
		redial := l.everUp
		l.mu.Unlock()
		addr, ok := t.route(l.peer)
		if !ok {
			// Evicted mid-dial: drop the queued frames as loss.
			l.mu.Lock()
			l.pending = nil
			l.mu.Unlock()
			return true
		}
		t.dials.Add(1)
		streamDialsCounter.Add(1)
		if redial {
			t.reconnects.Add(1)
			streamReconnectsCounter.Add(1)
		}
		conn, err := DialStream(e.ctx, addr, t.cfg.DialTimeout)
		if err == nil {
			hello := appendStreamHello(nil, e.addr)
			if _, werr := conn.Write(hello); werr != nil {
				err = werr
				conn.Close()
			} else if l.adopt(conn, e.addr) {
				e.wg.Add(1)
				go l.readConn(conn, nil)
				return true
			} else {
				// Lost the tie-break to an inbound connection: use that one.
				return true
			}
		}
		t.logf("transport: %d->%d: dial %s: %v", e.addr, l.peer, addr, err)
		if werr := WaitBackoff(e.ctx, t.cfg.Clock, backoff.Delay(attempt)); werr != nil {
			return false // endpoint shutting down
		}
	}
}

// readConn reassembles messages off one connection until it dies or the
// endpoint closes. seed carries bytes already read past the hello by
// admit. Messages decoded from one socket read are delivered as one
// batch.
func (l *tcpLink) readConn(conn net.Conn, seed []byte) {
	e := l.ep
	defer e.wg.Done()
	defer l.dropConn(conn)
	t := e.tr
	dec := &streamDecoder{maxMessage: t.cfg.MaxMessage, maxFrag: t.cfg.MaxFragment}
	buf := make([]byte, 0, 32<<10)
	buf = append(buf, seed...)
	var msgs [][]byte
	emit := func(m []byte) { msgs = append(msgs, m) }
	for {
		n, err := dec.feed(buf, emit)
		if err != nil {
			t.malformed.Add(1)
			t.logf("transport: endpoint %d: connection from %d desynchronized: %v", e.addr, l.peer, err)
			return
		}
		if len(msgs) > 0 {
			e.recvMsg(l.peer, msgs)
			msgs = nil
		}
		buf = buf[:copy(buf, buf[n:])]
		if len(buf) == cap(buf) {
			// The partial frame outgrew the buffer; grow geometrically.
			grown := make([]byte, len(buf), 2*cap(buf))
			copy(grown, buf)
			buf = grown
		}
		rn, err := conn.Read(buf[len(buf):cap(buf)])
		if rn > 0 {
			buf = buf[:len(buf)+rn]
		}
		if err != nil && rn == 0 {
			// Connection dead (peer closed, tie-break eviction, shutdown).
			return
		}
	}
}
