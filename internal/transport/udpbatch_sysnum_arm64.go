//go:build linux && arm64

package transport

// Syscall numbers for the batched datagram calls, from the generic
// syscall table (include/uapi/asm-generic/unistd.h).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
