package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// reserveLoopbackAddrs is a local copy of transporttest.ReserveAddrs:
// the in-package tests cannot import transporttest (it imports this
// package for the conformance suite, which would be a cycle).
func reserveLoopbackAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// reserveBook builds an address book over freshly reserved loopback
// ports.
func reserveBook(t *testing.T, n int) map[Addr]string {
	t.Helper()
	book := make(map[Addr]string, n)
	for i, a := range reserveLoopbackAddrs(t, n) {
		book[Addr(i)] = a
	}
	return book
}

type packet struct {
	from Addr
	data string
}

// collector funnels deliveries into a channel.
func collector(buf int) (RecvFunc, chan packet) {
	ch := make(chan packet, buf)
	return func(from Addr, data []byte) {
		ch <- packet{from, string(data)}
	}, ch
}

func expectPacket(t *testing.T, ch chan packet, want packet) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %+v", want)
	}
}

func expectQuiet(t *testing.T, ch chan packet, d time.Duration) {
	t.Helper()
	select {
	case got := <-ch:
		t.Fatalf("unexpected delivery %+v", got)
	case <-time.After(d):
	}
}

func TestUDPRoundTrip(t *testing.T) {
	tr, err := NewUDP(UDPConfig{Book: reserveBook(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv0, ch0 := collector(8)
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, recv0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, recv1)
	if err != nil {
		t.Fatal(err)
	}
	if ep0.Addr() != 0 || ep1.Addr() != 1 {
		t.Fatalf("bad endpoint addrs %d %d", ep0.Addr(), ep1.Addr())
	}

	ep0.Send(1, []byte("ping"))
	expectPacket(t, ch1, packet{0, "ping"})
	ep1.Send(0, []byte("pong"))
	expectPacket(t, ch0, packet{1, "pong"})

	// Loopback: a self-addressed datagram comes back through the socket.
	ep0.Send(0, []byte("self"))
	expectPacket(t, ch0, packet{0, "self"})

	// Empty payloads survive framing.
	ep1.Send(0, nil)
	expectPacket(t, ch0, packet{1, ""})

	st := tr.Stats()
	if st.Sent != 4 || st.Delivered != 4 || st.Malformed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUDPOpenErrors(t *testing.T) {
	tr, err := NewUDP(UDPConfig{Book: reserveBook(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, _ := collector(1)
	if _, err := tr.Open(0, recv); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(0, recv); err == nil {
		t.Fatal("double open succeeded")
	}
	if _, err := tr.Open(7, recv); err == nil {
		t.Fatal("open of unlisted address succeeded")
	}
	tr.Close()
	if _, err := tr.Open(0, recv); err != ErrClosed {
		t.Fatalf("open after close: %v", err)
	}
}

func TestUDPSendErrors(t *testing.T) {
	tr, err := NewUDP(UDPConfig{Book: reserveBook(t, 1), MaxPacket: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, ch := collector(1)
	ep, err := tr.Open(0, recv)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(9, []byte("no such peer"))
	ep.Send(0, make([]byte, 4096)) // beyond MaxPacket
	expectQuiet(t, ch, 50*time.Millisecond)
	if st := tr.Stats(); st.SendErrs != 2 || st.Sent != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestUDPFrameCorruption feeds raw datagrams — truncated, mis-tagged
// and version-skewed — straight into the socket and checks the decoder
// drops each without disturbing subsequent good frames.
func TestUDPFrameCorruption(t *testing.T) {
	book := reserveBook(t, 1)
	tr, err := NewUDP(UDPConfig{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, ch := collector(8)
	if _, err := tr.Open(0, recv); err != nil {
		t.Fatal(err)
	}

	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	dst, err := net.ResolveUDPAddr("udp", book[0])
	if err != nil {
		t.Fatal(err)
	}

	good := wire.NewWriter(16).Byte(frameMagic).Byte(frameVersion).Uvarint(3).Raw([]byte("ok")).Bytes()
	bad := [][]byte{
		{},                                   // empty datagram
		{frameMagic},                         // truncated after magic
		{frameMagic, frameVersion},           // truncated before the sender address
		good[:2],                             // truncated header
		{0x00, frameVersion, 0x01, 'x'},      // wrong magic
		{frameMagic, frameVersion + 1, 0x01}, // wrong version
		append([]byte{frameMagic, frameVersion}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), // overflowing sender varint
	}
	for i, b := range bad {
		if _, err := raw.WriteToUDP(b, dst); err != nil {
			t.Fatalf("write bad frame %d: %v", i, err)
		}
	}
	if _, err := raw.WriteToUDP(good, dst); err != nil {
		t.Fatal(err)
	}

	// The good frame arrives; none of the bad ones do.
	expectPacket(t, ch, packet{3, "ok"})
	expectQuiet(t, ch, 50*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := tr.Stats(); st.Malformed == uint64(len(bad)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("malformed count %d, want %d", tr.Stats().Malformed, len(bad))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPOverLimitDatagram sends from a peer configured with a larger
// MaxPacket: the receiver's read loop must drop the over-limit
// datagram as malformed instead of delivering a silently truncated
// frame (ReadFromUDP cuts at the buffer with no error).
func TestUDPOverLimitDatagram(t *testing.T) {
	book := reserveBook(t, 2)
	small, err := NewUDP(UDPConfig{Book: book, MaxPacket: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	big, err := NewUDP(UDPConfig{Book: book, MaxPacket: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	recv0, ch0 := collector(4)
	if _, err := small.Open(0, recv0); err != nil {
		t.Fatal(err)
	}
	epBig, err := big.Open(1, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}

	epBig.Send(0, make([]byte, 2000)) // fits big's limit, exceeds small's
	expectQuiet(t, ch0, 50*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for small.Stats().Malformed != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("over-limit datagram not counted: %+v", small.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// A frame within the receiver's limit still flows.
	epBig.Send(0, []byte("ok"))
	expectPacket(t, ch0, packet{1, "ok"})
}

// TestDecodeFrameTruncation checks every strict prefix of a valid frame
// is rejected (the wire reader's sticky ErrTruncated path).
func TestDecodeFrameTruncation(t *testing.T) {
	full := wire.NewWriter(16).Byte(frameMagic).Byte(frameVersion).Uvarint(300).Raw([]byte("payload")).Bytes()
	from, payload, ok := decodeFrame(full)
	if !ok || from != 300 || string(payload) != "payload" {
		t.Fatalf("full frame: from=%d payload=%q ok=%v", from, payload, ok)
	}
	// Prefixes shorter than the 4-byte header (magic, version, 2-byte
	// uvarint) must fail; longer prefixes just shorten the payload.
	for cut := 0; cut < 4; cut++ {
		if _, _, ok := decodeFrame(full[:cut]); ok {
			t.Fatalf("truncated frame of %d bytes accepted", cut)
		}
	}
}

func TestSimAdapterRoundTrip(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	tr := Sim(net)
	defer tr.Close()
	recv0, ch0 := collector(8)
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, recv0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Open(1, recv1)
	if err != nil {
		t.Fatal(err)
	}
	ep0.Send(1, []byte("a"))
	ep1.Send(0, []byte("b"))
	ep0.Send(0, []byte("self"))
	expectPacket(t, ch1, packet{0, "a"})
	// ch0 receives from two senders; simnet does not order across them.
	got := map[packet]bool{}
	for i := 0; i < 2; i++ {
		select {
		case p := <-ch0:
			got[p] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; got %v", got)
		}
	}
	if !got[packet{1, "b"}] || !got[packet{0, "self"}] {
		t.Fatalf("got %v", got)
	}
	ep1.Close()
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

// TestFaultyLoss injects simnet-style probabilistic loss over the real
// socket backend: with LossRate 1 nothing but loopback traffic
// survives; with loss off again everything flows.
func TestFaultyLoss(t *testing.T) {
	inner, err := NewUDP(UDPConfig{Book: reserveBook(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	tr := Faulty(inner, FaultConfig{Seed: 42, LossRate: 1})
	defer tr.Close()
	recv0, ch0 := collector(64)
	recv1, ch1 := collector(64)
	ep0, err := tr.Open(0, recv0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ep0.Send(1, []byte(fmt.Sprintf("doomed-%d", i)))
	}
	expectQuiet(t, ch1, 100*time.Millisecond)
	if st := tr.Stats(); st.Dropped != 20 || st.Passed != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Loopback is exempt from loss, as in simnet.
	ep0.Send(0, []byte("self"))
	expectPacket(t, ch0, packet{0, "self"})
}

// TestFaultyDup duplicates every datagram: each send is delivered
// exactly twice — the dedup burden the upper layers must carry.
func TestFaultyDup(t *testing.T) {
	inner := Sim(simnet.New(simnet.Config{Seed: 7}))
	tr := Faulty(inner, FaultConfig{Seed: 7, DupRate: 1})
	defer tr.Close()
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	ep0.Send(1, []byte("x"))
	expectPacket(t, ch1, packet{0, "x"})
	expectPacket(t, ch1, packet{0, "x"})
	expectQuiet(t, ch1, 50*time.Millisecond)
	if st := tr.Stats(); st.Duplicated != 1 || st.Passed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultySeededLoss pins the deterministic fate sequence: the same
// seed yields the same survivors, the property the simnet-based suites
// rely on.
func TestFaultySeededLoss(t *testing.T) {
	run := func() []string {
		inner := Sim(simnet.New(simnet.Config{Seed: 3}))
		tr := Faulty(inner, FaultConfig{Seed: 99, LossRate: 0.5})
		defer tr.Close()
		recv1, ch1 := collector(64)
		ep0, err := tr.Open(0, func(Addr, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Open(1, recv1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			ep0.Send(1, []byte(fmt.Sprintf("m%d", i)))
		}
		var got []string
		for {
			select {
			case p := <-ch1:
				got = append(got, p.data)
			case <-time.After(100 * time.Millisecond):
				return got
			}
		}
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 16 {
		t.Fatalf("expected partial loss, got %d of 16", len(a))
	}
	// Zero-latency simnet timers do not order concurrent deliveries;
	// only the set of survivors is deterministic.
	sort.Strings(a)
	sort.Strings(b)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("fates not reproducible:\n%v\n%v", a, b)
	}
}

func TestUDPRuntimeRoutes(t *testing.T) {
	// The address book is mutable at runtime: AddRoute admits a joiner's
	// endpoint, RemoveRoute retires an evicted member's.
	addrs := reserveLoopbackAddrs(t, 3)
	tr, err := NewUDP(UDPConfig{Book: map[Addr]string{0: addrs[0], 1: addrs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	recv := make(chan string, 16)
	ep0, err := tr.Open(0, func(from Addr, data []byte) {
		recv <- fmt.Sprintf("%d:%s", from, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Address 2 is not in the book yet: the send is dropped as loss.
	ep0.Send(2, []byte("early"))
	if got := tr.Stats().SendErrs; got != 1 {
		t.Fatalf("send to unrouted address: SendErrs = %d, want 1", got)
	}

	// Admit 2 at runtime and exchange traffic both ways.
	if err := tr.AddRoute(2, addrs[2]); err != nil {
		t.Fatal(err)
	}
	ep2, err := tr.Open(2, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = ep2
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep0.Send(2, []byte("hi")) // UDP: retry until the socket is up
		ep2.Send(0, []byte("yo"))
		select {
		case got := <-recv:
			if got != "2:yo" {
				t.Fatalf("received %q", got)
			}
			goto routed
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no traffic over runtime route")
		}
	}
routed:
	// Retire the route: sends drop again.
	tr.RemoveRoute(2)
	base := tr.Stats().SendErrs
	ep0.Send(2, []byte("late"))
	if got := tr.Stats().SendErrs; got != base+1 {
		t.Fatalf("send after RemoveRoute: SendErrs = %d, want %d", got, base+1)
	}

	// AddRoute validates the endpoint.
	if err := tr.AddRoute(5, "not a hostport::"); err == nil {
		t.Fatal("bad endpoint accepted")
	}
}

func TestFaultyForwardsRoutes(t *testing.T) {
	addrs := reserveLoopbackAddrs(t, 2)
	inner, err := NewUDP(UDPConfig{Book: map[Addr]string{0: addrs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	f := Faulty(inner, FaultConfig{})
	defer f.Close()
	var r Router = f // the decorator is always a Router
	if err := r.AddRoute(1, addrs[1]); err != nil {
		t.Fatal(err)
	}
	inner.bookMu.RLock()
	_, ok := inner.book[1]
	inner.bookMu.RUnlock()
	if !ok {
		t.Fatal("route not forwarded to inner transport")
	}
	r.RemoveRoute(1)
	inner.bookMu.RLock()
	_, ok = inner.book[1]
	inner.bookMu.RUnlock()
	if ok {
		t.Fatal("route removal not forwarded")
	}
}

// TestFaultyRuntimeMutable reshapes a live decorator: loss 1 → nothing
// flows; SetLoss(0) → everything flows again, no reconstruction.
func TestFaultyRuntimeMutable(t *testing.T) {
	inner := Sim(simnet.New(simnet.Config{Seed: 5}))
	tr := Faulty(inner, FaultConfig{Seed: 5, LossRate: 1})
	defer tr.Close()
	recv1, ch1 := collector(64)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ep0.Send(1, []byte("doomed"))
	}
	expectQuiet(t, ch1, 50*time.Millisecond)
	tr.SetLoss(0)
	ep0.Send(1, []byte("alive"))
	expectPacket(t, ch1, packet{0, "alive"})
	if st := tr.Stats(); st.Dropped != 10 || st.Passed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultyDelayAndJitter holds datagrams back: with a 30ms delay a
// send is not delivered promptly, but arrives once the delay elapses
// (and the caller's buffer, reused immediately after Send, must not
// corrupt the held-back copy).
func TestFaultyDelayAndJitter(t *testing.T) {
	inner := Sim(simnet.New(simnet.Config{Seed: 11}))
	tr := Faulty(inner, FaultConfig{Seed: 11, Delay: 30 * time.Millisecond, Jitter: 5 * time.Millisecond})
	defer tr.Close()
	recv1, ch1 := collector(8)
	ep0, err := tr.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(1, recv1); err != nil {
		t.Fatal(err)
	}
	buf := []byte("delayed")
	start := time.Now()
	ep0.Send(1, buf)
	copy(buf, "clobber") // the decorator must have copied
	select {
	case p := <-ch1:
		t.Fatalf("delivered %q after only %v", p.data, time.Since(start))
	case <-time.After(10 * time.Millisecond):
	}
	expectPacket(t, ch1, packet{0, "delayed"})
	if since := time.Since(start); since < 25*time.Millisecond {
		t.Fatalf("arrived after %v, want >= ~30ms", since)
	}
	if st := tr.Stats(); st.Delayed != 1 || st.Passed != 1 {
		t.Fatalf("stats %+v", st)
	}

	// SetDelay(0)+SetJitter(0) restores prompt delivery.
	tr.SetDelay(0)
	tr.SetJitter(0)
	ep0.Send(1, []byte("prompt"))
	expectPacket(t, ch1, packet{0, "prompt"})
}

// TestFaultyConcurrentSendDeterminism is the regression test for the
// mutable decorator's RNG: fates must come from one mutex-guarded
// seeded stream (not a racy snapshot taken at construction), so (a)
// concurrent senders pass the race detector and conserve the packet
// count, and (b) a sequential send sequence reproduces the identical
// fate sequence run after run, even after runtime Set* calls.
func TestFaultyConcurrentSendDeterminism(t *testing.T) {
	const senders, perSender = 8, 200
	concurrent := func() FaultStats {
		inner := Sim(simnet.New(simnet.Config{Seed: 1}))
		tr := Faulty(inner, FaultConfig{Seed: 21, LossRate: 0.3, DupRate: 0.1})
		defer tr.Close()
		ep0, err := tr.Open(0, func(Addr, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Open(1, func(Addr, []byte) {}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					ep0.Send(1, []byte("m"))
				}
			}()
		}
		wg.Wait()
		return tr.Stats()
	}
	st := concurrent()
	if st.Passed+st.Dropped != senders*perSender {
		t.Fatalf("lost fate rolls under concurrency: %+v", st)
	}

	sequential := func() FaultStats {
		inner := Sim(simnet.New(simnet.Config{Seed: 1}))
		tr := Faulty(inner, FaultConfig{Seed: 21, LossRate: 0.3, DupRate: 0.1})
		defer tr.Close()
		ep0, err := tr.Open(0, func(Addr, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Open(1, func(Addr, []byte) {}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			ep0.Send(1, []byte("m"))
		}
		tr.SetLoss(0.8) // runtime mutation must not fork the RNG stream
		for i := 0; i < 100; i++ {
			ep0.Send(1, []byte("m"))
		}
		return tr.Stats()
	}
	a, b := sequential(), sequential()
	if a != b {
		t.Fatalf("sequential fates not reproducible:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 {
		t.Fatalf("expected mixed fates, got %+v", a)
	}
}
