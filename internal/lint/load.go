package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/rp2p", or "fixture/<name>"
	// for analyzer test fixtures loaded from a testdata directory).
	Path string
	// Dir is the source directory.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types and Info are the type-checker's results.
	Types *types.Package
	Info  *types.Info
	// Imports lists the module-internal packages this one imports.
	Imports []string
}

// Program is a loaded module: every buildable package, type-checked in
// dependency order against a shared FileSet.
type Program struct {
	Fset *token.FileSet
	// Packages in deterministic topological order (dependencies first).
	Packages []*Package
	byPath   map[string]*Package
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
}

// Lookup returns the package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every buildable package under the
// module root (skipping testdata, hidden and underscore directories and
// _test.go files), plus any extra fixture directories, which are loaded
// under the import path "fixture/<basename>". Standard-library imports
// are resolved by compiling them from GOROOT source, so the loader works
// with no module cache and no network; module-internal imports resolve
// against the packages being loaded.
func LoadModule(root string, fixtureDirs ...string) (*Program, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		byPath:     make(map[string]*Package),
		ModulePath: modPath,
	}

	ctx := build.Default
	// The repository is pure Go; with cgo off the source importer
	// compiles even net/os dependencies from GOROOT source alone.
	ctx.CgoEnabled = false

	type rawPkg struct {
		pkg     *Package
		imports []string
	}
	raw := make(map[string]*rawPkg)

	addDir := func(dir, importPath string) error {
		files, imports, err := parseDir(&ctx, prog.Fset, dir)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		raw[importPath] = &rawPkg{
			pkg:     &Package{Path: importPath, Dir: dir, Files: files},
			imports: imports,
		}
		return nil
	}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		return addDir(path, importPath)
	})
	if err != nil {
		return nil, err
	}

	for _, dir := range fixtureDirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if err := addDir(abs, "fixture/"+filepath.Base(abs)); err != nil {
			return nil, err
		}
	}

	// Type-check on demand in dependency order. srcImp compiles stdlib
	// packages from GOROOT source and caches them internally.
	srcImp := importer.ForCompiler(prog.Fset, "source", nil)
	checked := make(map[string]*Package)
	var inFlight []string
	var check func(path string) (*types.Package, error)
	check = func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p.Types, nil
		}
		rp, ok := raw[path]
		if !ok {
			return nil, fmt.Errorf("lint: unknown package %q", path)
		}
		for _, f := range inFlight {
			if f == path {
				return nil, fmt.Errorf("lint: import cycle through %q", path)
			}
		}
		inFlight = append(inFlight, path)
		defer func() { inFlight = inFlight[:len(inFlight)-1] }()

		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{
			Importer: importerFunc(func(imp string) (*types.Package, error) {
				if imp == "C" {
					return nil, fmt.Errorf("lint: cgo not supported")
				}
				if imp == modPath || strings.HasPrefix(imp, modPath+"/") || strings.HasPrefix(imp, "fixture/") {
					return check(imp)
				}
				return srcImp.Import(imp)
			}),
		}
		tpkg, err := conf.Check(path, prog.Fset, rp.pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		rp.pkg.Types = tpkg
		rp.pkg.Info = info
		for _, imp := range rp.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				rp.pkg.Imports = append(rp.pkg.Imports, imp)
			}
		}
		checked[path] = rp.pkg
		prog.Packages = append(prog.Packages, rp.pkg)
		prog.byPath[path] = rp.pkg
		return tpkg, nil
	}

	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := check(p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// parseDir parses the buildable non-test Go files of one directory,
// honoring build constraints (so e.g. a !race file is chosen over its
// race twin). It returns nil files when the directory holds no
// buildable non-test Go sources.
func parseDir(ctx *build.Context, fset *token.FileSet, dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for imp := range importSet {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	return files, imports, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunProgram executes the analyzers over every package of the program in
// dependency order (so facts flow from imported packages to importers)
// and returns all surviving findings, sorted. Fixture packages are
// skipped unless includeFixtures is set — the module's own health check
// must not depend on intentionally-buggy fixture code.
func RunProgram(prog *Program, analyzers []*Analyzer, includeFixtures bool) ([]Finding, error) {
	facts := NewFactStore()
	var all []Finding
	for _, pkg := range prog.Packages {
		if !includeFixtures && strings.HasPrefix(pkg.Path, "fixture/") {
			continue
		}
		fs, err := RunPackage(prog.Fset, pkg.Path, pkg.Files, pkg.Types, pkg.Info, analyzers, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}
