// Package lint is the project-specific static-analysis framework behind
// cmd/dpu-lint. It mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic, per-package facts — on top of the standard
// library's go/ast and go/types only, because the repository carries no
// third-party dependencies (see go.mod). The framework is a build tool:
// nothing under internal/lint is imported by runtime code.
//
// The analyzers themselves live in internal/lint/analyzers and enforce
// the stack's cross-cutting contracts (clock discipline, deterministic
// map iteration on emission paths, pooled-buffer ownership, executor
// confinement). See docs/LINTING.md for the catalogue and the rationale
// behind each invariant.
//
// # Suppressions
//
// A finding is suppressed with a directive comment on the flagged line
// or on the line directly above it:
//
//	//dpulint:ignore <analyzer> <reason>
//
// The reason is mandatory: a directive without one suppresses the
// finding but raises a missing-reason diagnostic in its place, so the
// tree is only clean when every exception is justified in-line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through
// the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dpulint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the fact channel for cross-package analyses.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the type-checker's use/def/type records for Files.
	Info *types.Info
	// ImportFact returns the fact blob this analyzer exported for a
	// directly or indirectly imported package, or nil.
	ImportFact func(pkgPath string) []byte
	// ExportFact publishes a fact blob for packages that import this one.
	ExportFact func(data []byte)
	// Report records one finding.
	Report func(Diagnostic)
}

// Finding is a diagnostic resolved to a position, tagged with the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// directive is one parsed //dpulint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// DirectivePrefix introduces every dpu-lint control comment.
const DirectivePrefix = "//dpulint:"

// parseDirectives extracts //dpulint:ignore directives from a file's
// comments. Other dpulint: directives (e.g. //dpulint:executor) are
// consumed by individual analyzers and ignored here.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			// A "//" inside the directive starts a trailing comment (the
			// fixtures put // want expectations there); it is not reason
			// text.
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			if len(fields) == 0 || fields[0] != "ignore" {
				continue
			}
			d := directive{pos: fset.Position(c.Pos())}
			if len(fields) > 1 {
				d.analyzer = fields[1]
			}
			if len(fields) > 2 {
				d.reason = strings.Join(fields[2:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// RunPackage executes the analyzers over one loaded package and returns
// the findings that survive suppression, including any directive-hygiene
// diagnostics (ignore without analyzer name or without reason). Facts
// exported by each analyzer are stored into factStore under the
// package's path; importers' facts are looked up there.
//
// Findings in _test.go files are discarded: test code legitimately uses
// the wall clock, raw map iteration and unpooled buffers, and the
// determinism contracts bind production code only.
func RunPackage(fset *token.FileSet, pkgPath string, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			ImportFact: func(path string) []byte {
				return facts.Get(path, a.Name)
			},
			ExportFact: func(data []byte) {
				facts.Put(pkgPath, a.Name, data)
			},
			Report: func(d Diagnostic) {
				raw = append(raw, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkgPath, err)
		}
	}

	var directives []directive
	for _, f := range files {
		directives = append(directives, parseDirectives(fset, f)...)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Finding
	used := make([]bool, len(directives))
	for _, fd := range raw {
		if strings.HasSuffix(fd.Pos.Filename, "_test.go") {
			continue
		}
		suppressed := false
		for i, d := range directives {
			if d.analyzer != fd.Analyzer {
				continue
			}
			if d.pos.Filename != fd.Pos.Filename {
				continue
			}
			// A directive guards its own line (trailing comment) or the
			// line directly beneath it (standalone comment above the
			// flagged statement).
			if d.pos.Line == fd.Pos.Line || d.pos.Line == fd.Pos.Line-1 {
				suppressed = true
				used[i] = true
			}
		}
		if !suppressed {
			out = append(out, fd)
		}
	}

	// Directive hygiene: every ignore needs a known analyzer and a reason,
	// whether or not it matched a finding this run.
	for _, d := range directives {
		if strings.HasSuffix(d.pos.Filename, "_test.go") {
			continue
		}
		switch {
		case d.analyzer == "":
			out = append(out, Finding{
				Analyzer: "dpulint",
				Pos:      d.pos,
				Message:  "malformed directive: //dpulint:ignore needs an analyzer name and a reason",
			})
		case !known[d.analyzer]:
			out = append(out, Finding{
				Analyzer: "dpulint",
				Pos:      d.pos,
				Message:  fmt.Sprintf("unknown analyzer %q in //dpulint:ignore directive", d.analyzer),
			})
		case d.reason == "":
			out = append(out, Finding{
				Analyzer: "dpulint",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//dpulint:ignore %s without a reason: justify the exception in-line", d.analyzer),
			})
		}
	}

	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// FactStore holds per-(package, analyzer) fact blobs, in memory for the
// whole-program driver and serialized to vetx files by the go vet mode.
type FactStore struct {
	m map[string]map[string][]byte // pkg path -> analyzer -> blob
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[string]map[string][]byte)} }

// Get returns the blob for (pkgPath, analyzer), or nil.
func (s *FactStore) Get(pkgPath, analyzer string) []byte {
	return s.m[pkgPath][analyzer]
}

// Put stores the blob for (pkgPath, analyzer).
func (s *FactStore) Put(pkgPath, analyzer string, data []byte) {
	byA := s.m[pkgPath]
	if byA == nil {
		byA = make(map[string][]byte)
		s.m[pkgPath] = byA
	}
	byA[analyzer] = data
}

// Package returns the analyzer->blob map for one package (nil if none),
// for serialization into a vetx file.
func (s *FactStore) Package(pkgPath string) map[string][]byte { return s.m[pkgPath] }

// SetPackage installs a deserialized analyzer->blob map for a package.
func (s *FactStore) SetPackage(pkgPath string, facts map[string][]byte) {
	if len(facts) > 0 {
		s.m[pkgPath] = facts
	}
}
