package lint_test

import (
	"os"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// TestRepositoryIsClean is the meta-check behind the CI lint job: the
// repository itself must produce zero unsuppressed findings, so every
// invariant the analyzers encode (clock discipline, deterministic
// emission order, pooled-buffer ownership, executor confinement) holds
// tree-wide, and every suppression carries its reason.
func TestRepositoryIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := lint.RunProgram(prog, analyzers.All(), false)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("dpu-lint: %d finding(s); fix them or add //dpulint:ignore <analyzer> <reason>", len(findings))
	}
}
