// Package linttest is the fixture harness for the dpu-lint analyzers,
// playing the role golang.org/x/tools/go/analysis/analysistest plays
// for upstream analyzers. Each analyzer has a fixture package under
// internal/lint/analyzers/testdata/<name>; expectations are written as
// trailing comments on the offending lines:
//
//	time.Sleep(d) // want `direct time\.Sleep`
//
// Check loads the whole module plus every fixture directory exactly
// once per test binary (the load type-checks the standard library from
// GOROOT source, which costs a couple of seconds), runs the full suite,
// and then diffs the findings inside one fixture directory against that
// directory's want comments: every finding must be wanted and every
// want must fire.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// FixtureNames lists the fixture directories under testdata, one per
// analyzer.
var FixtureNames = []string{"clocktime", "maporder", "poolfree", "executoronly"}

var (
	loadOnce sync.Once
	loadErr  error
	findings []lint.Finding
	rootDir  string
)

func load() {
	wd, err := os.Getwd()
	if err != nil {
		loadErr = err
		return
	}
	rootDir, err = lint.ModuleRoot(wd)
	if err != nil {
		loadErr = err
		return
	}
	dirs := make([]string, len(FixtureNames))
	for i, n := range FixtureNames {
		dirs[i] = filepath.Join(rootDir, "internal", "lint", "analyzers", "testdata", n)
	}
	prog, err := lint.LoadModule(rootDir, dirs...)
	if err != nil {
		loadErr = err
		return
	}
	findings, loadErr = lint.RunProgram(prog, analyzers.All(), true)
}

// wantRE matches one expectation comment; the regexp between backquotes
// is applied to "analyzer: message".
var wantRE = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// Check verifies the fixture directory for one analyzer: findings of
// any analyzer inside it must match the want comments line for line.
func Check(t *testing.T, fixture string) {
	t.Helper()
	loadOnce.Do(load)
	if loadErr != nil {
		t.Fatalf("loading module and fixtures: %v", loadErr)
	}
	dir := filepath.Join(rootDir, "internal", "lint", "analyzers", "testdata", fixture)

	wants := make(map[string][]*want) // filename -> expectations
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants[path] = append(wants[path], &want{line: i + 1, re: re})
			}
		}
	}

	var got []lint.Finding
	for _, f := range findings {
		if filepath.Dir(f.Pos.Filename) == dir {
			got = append(got, f)
		}
	}

	for _, f := range got {
		matched := false
		text := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		for _, w := range wants[f.Pos.Filename] {
			if w.line == f.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected a finding matching %q, got none", file, w.line, w.re)
			}
		}
	}
}
