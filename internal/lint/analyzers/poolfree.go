package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// PoolFree enforces the PR 3 pooled-buffer contract: a *wire.Writer
// obtained from wire.GetWriter is owned by the acquiring function and
// must reach a matching Free on every return path. Two findings exist:
//
//   - leak: some path returns while an acquired writer is neither freed
//     nor deferred-freed — the buffer never returns to the pool;
//   - ownership transfer: the writer value escapes the function (stored
//     into a field/map/slice, passed as an argument, captured by a
//     closure, returned), so "Free on every path here" can no longer be
//     checked locally.
//
// Transfers are sometimes the design (rp2p parks encoded packets until
// the ack; rbcast frames live in the module between executor passes):
// those sites must carry a //dpulint:ignore poolfree <reason> naming
// the owner responsible for the eventual Free.
var PoolFree = &lint.Analyzer{
	Name: "poolfree",
	Doc:  "every wire.GetWriter must reach a matching Free on all return paths of the acquiring function",
	Run:  runPoolFree,
}

func runPoolFree(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Every function body is a scope; nested literals are scopes of
		// their own (a writer acquired inside a literal is owned by it).
		var scopes []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scopes = append(scopes, n.Body)
				}
			case *ast.FuncLit:
				scopes = append(scopes, n.Body)
			}
			return true
		})
		for _, body := range scopes {
			checkPoolScope(pass, body)
		}
	}
	return nil
}

// wstate is the per-writer abstract state, a may-set over {live, freed}.
type wstate uint8

const (
	stLive  wstate = 1 << iota // some path reaches here with the buffer unfreed
	stFreed                    // some path reaches here after Free
)

type poolChecker struct {
	pass     *lint.Pass
	body     *ast.BlockStmt
	acquired map[*types.Var]token.Pos // writer vars owned by this scope
	deferred map[*types.Var]bool      // freed by a defer
	reported map[*types.Var]bool
	bailed   bool // goto or other unsupported flow: skip leak reporting
}

// checkPoolScope analyzes one function body.
func checkPoolScope(pass *lint.Pass, body *ast.BlockStmt) {
	c := &poolChecker{
		pass:     pass,
		body:     body,
		acquired: make(map[*types.Var]token.Pos),
		deferred: make(map[*types.Var]bool),
		reported: make(map[*types.Var]bool),
	}
	c.collectAcquisitions()
	if len(c.acquired) == 0 {
		return
	}
	c.checkEscapes()
	if len(c.acquired) == 0 {
		return
	}
	out := c.stmt(body, make(poolEnv))
	if c.bailed {
		return
	}
	if out != nil {
		c.checkExit(out, body.End())
	}
}

// collectAcquisitions records vars assigned directly from
// wire.GetWriter in this scope (not inside nested literals).
func (c *poolChecker) collectAcquisitions() {
	c.walkScope(c.body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isWireGetWriter(c.pass.Info, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := c.pass.Info.Defs[id]
			if obj == nil {
				obj = c.pass.Info.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok {
				if _, dup := c.acquired[v]; !dup {
					c.acquired[v] = call.Pos()
				}
			}
		}
	})
}

// walkScope visits nodes of the scope without descending into nested
// function literals.
func (c *poolChecker) walkScope(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkEscapes reports tracked writers whose value leaves the scope and
// stops tracking them (ownership moved; leak analysis no longer local).
func (c *poolChecker) checkEscapes() {
	// Identify, for each use of a tracked var, whether it is a benign
	// receiver/assignment position. Everything else is a transfer.
	benign := make(map[*ast.Ident]bool)
	c.walkScope(c.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// w.Free(), w.Bytes(), w.Uvarint(...): using the writer
			// through its methods never moves ownership.
			if id, ok := n.X.(*ast.Ident); ok {
				benign[id] = true
			}
		case *ast.BinaryExpr:
			// Comparisons (w == nil, w != prev) inspect the pointer
			// without moving ownership.
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				benign[id] = true
			}
			if id, ok := ast.Unparen(n.Y).(*ast.Ident); ok {
				benign[id] = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				// Reassignment from GetWriter is a fresh acquisition;
				// anything else on the RHS poisons local tracking and is
				// handled below as a transfer of the old value.
				if i < len(n.Rhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isWireGetWriter(c.pass.Info, call) {
						benign[id] = true
					}
				}
			}
		}
	})

	escaped := make(map[*types.Var]bool)
	// Closure captures: any use of a tracked var inside a nested literal.
	ast.Inspect(c.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != ast.Node(c.body) {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
						if _, tracked := c.acquired[v]; tracked && !escaped[v] {
							escaped[v] = true
							c.report(v, id.Pos(), "captured by a function literal")
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
	c.walkScope(c.body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || benign[id] {
			return
		}
		v, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if _, tracked := c.acquired[v]; !tracked || escaped[v] {
			return
		}
		escaped[v] = true
		c.report(v, id.Pos(), "leaves the function here (stored, passed or returned)")
	})
	for v := range escaped {
		delete(c.acquired, v)
	}
}

func (c *poolChecker) report(v *types.Var, pos token.Pos, how string) {
	if c.reported[v] {
		return
	}
	c.reported[v] = true
	acq := c.pass.Fset.Position(c.acquired[v])
	c.pass.Report(lint.Diagnostic{
		Pos: pos,
		Message: fmt.Sprintf(
			"pooled wire.Writer %s (acquired at %s:%d) %s: ownership transfers must guarantee the eventual Free and carry a //dpulint:ignore poolfree <reason>",
			v.Name(), trimPath(acq.Filename), acq.Line, how),
	})
}

func (c *poolChecker) reportLeak(v *types.Var, at token.Pos) {
	if c.reported[v] {
		return
	}
	c.reported[v] = true
	acq := c.pass.Fset.Position(c.acquired[v])
	c.pass.Report(lint.Diagnostic{
		Pos: at,
		Message: fmt.Sprintf(
			"pooled wire.Writer %s (acquired at %s:%d) may not reach Free on this return path",
			v.Name(), trimPath(acq.Filename), acq.Line),
	})
}

type poolEnv map[*types.Var]wstate

func (e poolEnv) clone() poolEnv {
	out := make(poolEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// join merges two fallthrough environments; either may be nil (path
// does not fall through).
func join(a, b poolEnv) poolEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func (c *poolChecker) checkExit(e poolEnv, at token.Pos) {
	for v, st := range e {
		if st&stLive != 0 && !c.deferred[v] {
			c.reportLeak(v, at)
		}
	}
}

// stmt abstractly executes one statement. It returns the environment on
// fallthrough, or nil when the path terminates (return, panic).
func (c *poolChecker) stmt(s ast.Stmt, e poolEnv) poolEnv {
	if c.bailed || s == nil {
		return e
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			e = c.stmt(st, e)
			if e == nil {
				return nil
			}
		}
		return e
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isWireGetWriter(c.pass.Info, call) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Defs[id]
				if obj == nil {
					obj = c.pass.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if _, tracked := c.acquired[v]; tracked {
						if prev, had := e[v]; had && prev&stLive != 0 {
							c.reportLeak(v, s.Pos())
						}
						e[v] = stLive
					}
				}
			}
		}
		return e
	case *ast.ExprStmt:
		if v, ok := c.freeCallOn(s.X); ok {
			e[v] = stFreed
			return e
		}
		if isPanic(s.X) {
			return nil
		}
		return e
	case *ast.DeferStmt:
		if v, ok := c.freeCallOn(s.Call); ok {
			c.deferred[v] = true
		}
		return e
	case *ast.ReturnStmt:
		c.checkExit(e, s.Pos())
		return nil
	case *ast.IfStmt:
		e = c.stmt(s.Init, e)
		thenEnv := c.stmt(s.Body, e.clone())
		var elseEnv poolEnv
		if s.Else != nil {
			elseEnv = c.stmt(s.Else, e.clone())
		} else {
			elseEnv = e
		}
		return join(thenEnv, elseEnv)
	case *ast.ForStmt:
		e = c.stmt(s.Init, e)
		body := c.stmt(s.Body, e.clone())
		if s.Post != nil && body != nil {
			body = c.stmt(s.Post, body)
		}
		return join(e, body)
	case *ast.RangeStmt:
		body := c.stmt(s.Body, e.clone())
		return join(e, body)
	case *ast.SwitchStmt:
		e = c.stmt(s.Init, e)
		return c.caseBodies(s.Body, e, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		e = c.stmt(s.Init, e)
		return c.caseBodies(s.Body, e, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		return c.caseBodies(s.Body, e, true)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, e)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			c.bailed = true
		}
		// break/continue/fallthrough: approximate as falling through to
		// the enclosing join.
		return e
	default:
		return e
	}
}

// caseBodies joins the clause bodies of a switch/select; withoutMatch
// adds the no-clause-taken path when there is no default.
func (c *poolChecker) caseBodies(body *ast.BlockStmt, e poolEnv, hasDefault bool) poolEnv {
	var out poolEnv
	if !hasDefault {
		out = e
	}
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		env := e.clone()
		for _, st := range stmts {
			env = c.stmt(st, env)
			if env == nil {
				break
			}
		}
		out = join(out, env)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// freeCallOn matches `v.Free()` for a tracked writer v.
func (c *poolChecker) freeCallOn(x ast.Expr) (*types.Var, bool) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	_, tracked := c.acquired[v]
	return v, tracked
}

func isPanic(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// trimPath shortens an absolute filename to its last two segments for
// readable diagnostics.
func trimPath(p string) string {
	n := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			n++
			if n == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
