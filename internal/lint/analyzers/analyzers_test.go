package analyzers_test

import (
	"testing"

	"repro/internal/lint/linttest"
)

// Each analyzer is exercised against its fixture package under
// testdata/: true positives carry // want expectations, negatives and
// suppressed findings must stay silent. The harness loads the module
// (with fixtures) once for the whole test binary.

func TestClocktime(t *testing.T)    { linttest.Check(t, "clocktime") }
func TestMapOrder(t *testing.T)     { linttest.Check(t, "maporder") }
func TestPoolFree(t *testing.T)     { linttest.Check(t, "poolfree") }
func TestExecutorOnly(t *testing.T) { linttest.Check(t, "executoronly") }
