package analyzers

import (
	"fmt"
	"go/ast"

	"repro/internal/lint"
)

// bannedTime lists the package time functions that read or schedule
// against the runtime clock. Anything else in package time (Duration
// arithmetic, time.Unix, formatting) is clock-agnostic and allowed.
var bannedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"Tick":      true,
	"Since":     true,
}

// Clocktime enforces the stack's clock discipline: packages threaded
// with an injected vclock.Clock must not read or schedule against the
// runtime clock directly. A direct time.Now or time.AfterFunc in such a
// package silently runs on wall time even when the whole cluster is
// simulated under a vclock.Virtual, which both breaks determinism (the
// callback races the event loop) and stalls virtual runs (the virtual
// clock never advances wall timers). internal/vclock is exempt — it is
// the single adapter to the runtime clock.
var Clocktime = &lint.Analyzer{
	Name: "clocktime",
	Doc:  "forbid direct time.Now/Sleep/After/AfterFunc/NewTimer/Tick/Since in clock-injected packages; use the injected vclock.Clock",
	Run:  runClocktime,
}

func runClocktime(pass *lint.Pass) error {
	if !inClockScope(pass.Pkg.Path()) {
		return nil
	}
	if isVclockPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := usedPkgName(pass.Info, id)
			if pkg == nil || pkg.Imported().Path() != "time" {
				return true
			}
			if !bannedTime[sel.Sel.Name] {
				return true
			}
			pass.Report(lint.Diagnostic{
				Pos: sel.Pos(),
				Message: fmt.Sprintf(
					"direct time.%s in a clock-injected package: route it through the stack's vclock.Clock so virtual-time runs stay deterministic",
					sel.Sel.Name),
			})
			return true
		})
	}
	return nil
}

func isVclockPackage(path string) bool {
	return path == "internal/vclock" || len(path) > len("internal/vclock") &&
		path[len(path)-len("/internal/vclock"):] == "/internal/vclock"
}
