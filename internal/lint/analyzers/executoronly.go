package analyzers

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// ExecutorOnly enforces executor confinement. Functions annotated with
// a //dpulint:executor line in their doc comment (kernel.CallSync,
// RegisterFlusher, SetPeers, ...) touch executor-owned state without
// locks and are safe only on the kernel's executor goroutine. The
// analyzer computes the set of functions whose bodies are known to run
// in executor context and flags any call to an annotated function from
// outside that set, and any `go` statement that launches one onto a
// fresh goroutine.
//
// Executor context is seeded by axioms and grown by propagation:
//
//   - annotated functions themselves (they can only be entered from the
//     executor, so their bodies inherit the context);
//   - HandleRequest/HandleIndication/Start/Stop methods on types that
//     implement the kernel Module interface (the kernel invokes them
//     from the drain loop);
//   - function literals and method values passed to the Stack
//     scheduling methods (Do, DoSync, After, Every, RegisterFlusher,
//     Call, CallSync, Indicate, IndicateBatch), including values
//     reached through composite literals such as
//     rp2p.Listen{Handler: m.onRecv};
//   - function values passed to the kernel's newExecutor constructor:
//     the executor invokes them only from its drain loop, whether that
//     loop runs on a dedicated goroutine or on a shared Pool worker, so
//     the task runner and post-batch flusher are executor context by
//     axiom;
//   - transitively: an unexported function whose every direct call site
//     sits inside an executor-context function and whose address never
//     escapes. Exported functions are never inferred — callers in other
//     packages are invisible here, so inference would be unsound;
//     annotate them instead.
var ExecutorOnly = &lint.Analyzer{
	Name: "executoronly",
	Doc:  "functions annotated //dpulint:executor may only be called from executor-context functions",
	Run:  runExecutorOnly,
}

// ExecutorDirective is the doc-comment annotation marking a function as
// executor-only.
const ExecutorDirective = "//dpulint:executor"

// stackSchedulers are the *kernel.Stack methods whose function-valued
// arguments run on the executor. IndicateBatch is the batched twin of
// Indicate: handler values carried inside its indication slice are
// dispatched from the same drain loop.
var stackSchedulers = []string{
	"Do", "DoSync", "After", "Every", "RegisterFlusher", "Call", "CallSync",
	"Indicate", "IndicateBatch",
}

// execFacts is the gob-serialized cross-package fact: the FullNames of
// this package's annotated (restricted) functions.
type execFacts struct {
	Restricted []string
}

// moduleMethods are the kernel.Module methods whose bodies run on the
// executor goroutine.
var moduleMethods = map[string]bool{
	"HandleRequest": true, "HandleIndication": true, "Start": true, "Stop": true,
}

// moduleInterface is the duck profile of kernel.Module: a receiver type
// carrying all of these methods is treated as a module.
var moduleInterface = []string{
	"ID", "Protocol", "HandleRequest", "HandleIndication", "Start", "Stop",
}

func runExecutorOnly(pass *lint.Pass) error {
	st := &execState{
		pass:      pass,
		annotated: make(map[*types.Func]bool),
		execFuncs: make(map[*types.Func]bool),
		execLits:  make(map[*ast.FuncLit]bool),
		litOfVar:  make(map[*types.Var]*ast.FuncLit),
		sites:     make(map[*types.Func][]callSite),
		escaped:   make(map[*types.Func]bool),
	}
	st.collectAnnotations()
	st.collectModuleHandlers()
	st.collectVarLiterals()
	st.collectScheduledValues()
	st.collectCallSites()
	st.propagate()
	st.exportFacts()
	st.reportViolations()
	return nil
}

// callSite is one direct call of a package-local function: where it
// happens and whether it is the operand of a `go` statement.
type callSite struct {
	enclosing ast.Node // *ast.FuncDecl or *ast.FuncLit, nil at package scope
	call      *ast.CallExpr
	inGo      bool
}

type execState struct {
	pass      *lint.Pass
	annotated map[*types.Func]bool
	execFuncs map[*types.Func]bool
	execLits  map[*ast.FuncLit]bool
	litOfVar  map[*types.Var]*ast.FuncLit
	sites     map[*types.Func][]callSite
	escaped   map[*types.Func]bool
}

// collectAnnotations finds //dpulint:executor doc comments. Annotated
// functions are restricted and their bodies are executor context.
func (st *execState) collectAnnotations() {
	for _, f := range st.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == ExecutorDirective {
					if fn, ok := st.pass.Info.Defs[fd.Name].(*types.Func); ok {
						st.annotated[fn] = true
						st.execFuncs[fn] = true
					}
				}
			}
		}
	}
}

// collectModuleHandlers marks HandleRequest/HandleIndication/Start/Stop
// methods on types whose (pointer) method set carries the full
// kernel.Module profile.
func (st *execState) collectModuleHandlers() {
	for _, f := range st.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !moduleMethods[fd.Name.Name] {
				continue
			}
			fn, ok := st.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			rt := recv.Type()
			if _, isPtr := rt.(*types.Pointer); !isPtr {
				rt = types.NewPointer(rt)
			}
			mset := types.NewMethodSet(rt)
			isModule := true
			for _, name := range moduleInterface {
				if lookupMethod(mset, name) == nil {
					isModule = false
					break
				}
			}
			if isModule {
				st.execFuncs[fn] = true
			}
		}
	}
}

func lookupMethod(mset *types.MethodSet, name string) *types.Selection {
	for i := 0; i < mset.Len(); i++ {
		if mset.At(i).Obj().Name() == name {
			return mset.At(i)
		}
	}
	return nil
}

// collectVarLiterals maps variables initialized from a single function
// literal (fn := func() {...}) to that literal, so passing the variable
// to a scheduler marks the literal's body.
func (st *execState) collectVarLiterals() {
	for _, f := range st.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := st.pass.Info.Defs[id]
				if obj == nil {
					obj = st.pass.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if _, dup := st.litOfVar[v]; dup {
						delete(st.litOfVar, v) // reassigned: ambiguous, drop
					} else {
						st.litOfVar[v] = lit
					}
				}
			}
			return true
		})
	}
}

// collectScheduledValues marks function values passed to the Stack
// scheduling methods — and to the kernel's executor constructor — as
// executor context.
func (st *execState) collectScheduledValues() {
	for _, f := range st.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(st.pass.Info, call)
			if !isKernelStackMethod(callee, stackSchedulers...) && !isExecutorConstructor(callee) {
				return true
			}
			for _, arg := range call.Args {
				st.markScheduled(arg)
			}
			return true
		})
	}
}

// isExecutorConstructor reports whether callee is the kernel's internal
// newExecutor constructor (or a fixture stand-in): the executor invokes
// its function-valued arguments — the task runner and the post-batch
// flusher — only from the drain loop, on the dedicated run() goroutine
// or on a shared Pool worker's slice(), never concurrently. They are
// therefore executor context by axiom.
func isExecutorConstructor(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Name() != "newExecutor" {
		return false
	}
	p := f.Pkg().Path()
	return p == "internal/kernel" || strings.HasSuffix(p, "/internal/kernel") ||
		strings.HasPrefix(p, "fixture/")
}

// markScheduled recursively marks function values inside a scheduler
// argument: literals, named functions, method values, and any of those
// nested in composite literals (e.g. Listen{Handler: m.onRecv}).
func (st *execState) markScheduled(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		st.execLits[e] = true
	case *ast.Ident:
		switch obj := st.pass.Info.Uses[e].(type) {
		case *types.Func:
			st.execFuncs[obj] = true
		case *types.Var:
			if lit := st.litOfVar[obj]; lit != nil {
				st.execLits[lit] = true
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := st.pass.Info.Uses[e.Sel].(*types.Func); ok {
			st.execFuncs[fn] = true
		}
	case *ast.UnaryExpr:
		st.markScheduled(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				st.markScheduled(kv.Value)
			} else {
				st.markScheduled(elt)
			}
		}
	}
}

// collectCallSites records, for every package-local function, each
// direct call (with enclosing function and go-statement flag) and
// whether its value escapes (referenced outside callee position and
// outside scheduler arguments).
func (st *execState) collectCallSites() {
	for _, f := range st.pass.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if id, ok := n.(*ast.Ident); ok {
				fn, ok := st.pass.Info.Uses[id].(*types.Func)
				if ok && fn.Pkg() == st.pass.Pkg {
					st.recordUse(id, fn, stack)
				}
			}
			return true
		}
		// ast.Inspect pushes on entry and signals exit with nil.
		ast.Inspect(f, walk)
	}
}

// recordUse classifies one identifier use of a package-local function.
func (st *execState) recordUse(id *ast.Ident, fn *types.Func, stack []ast.Node) {
	// stack[len-1] == id. The node above may be the selector wrapping a
	// method reference; the one above that the call.
	i := len(stack) - 2
	if i >= 0 {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.Sel == id {
			i--
		}
	}
	var call *ast.CallExpr
	if i >= 0 {
		if c, ok := stack[i].(*ast.CallExpr); ok && ast.Unparen(c.Fun) == stack[i+1] {
			call = c
		}
	}
	if call == nil {
		// Not a direct call. A reference inside a scheduler argument was
		// already classified; any other reference makes the context of
		// eventual calls unknowable.
		if !st.execFuncs[fn] {
			st.escaped[fn] = true
		}
		return
	}
	inGo := false
	if i > 0 {
		if g, ok := stack[i-1].(*ast.GoStmt); ok && g.Call == call {
			inGo = true
		}
	}
	st.sites[fn] = append(st.sites[fn], callSite{
		enclosing: enclosingFunc(stack[:i]),
		call:      call,
		inGo:      inGo,
	})
}

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// propagate grows the executor set to its greatest fixed point over the
// package-local call graph: an unexported, non-escaped function all of
// whose call sites are executor-context (and none a `go` launch) is
// executor-context too.
func (st *execState) propagate() {
	candidates := make(map[*types.Func]bool)
	for fn, sites := range st.sites {
		if fn.Exported() || st.execFuncs[fn] || st.escaped[fn] || len(sites) == 0 {
			continue
		}
		candidates[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn := range candidates {
			for _, site := range st.sites[fn] {
				if site.inGo || !st.nodeIsExec(site.enclosing, candidates) {
					delete(candidates, fn)
					changed = true
					break
				}
			}
		}
	}
	for fn := range candidates {
		st.execFuncs[fn] = true
	}
}

// nodeIsExec reports whether the function node is executor context,
// counting still-live propagation candidates as tentatively executor.
func (st *execState) nodeIsExec(node ast.Node, candidates map[*types.Func]bool) bool {
	switch node := node.(type) {
	case *ast.FuncDecl:
		fn, ok := st.pass.Info.Defs[node.Name].(*types.Func)
		if !ok {
			return false
		}
		return st.execFuncs[fn] || candidates[fn]
	case *ast.FuncLit:
		return st.execLits[node]
	default:
		return false
	}
}

// exportFacts publishes the restricted set for importing packages.
func (st *execState) exportFacts() {
	if len(st.annotated) == 0 {
		return
	}
	var facts execFacts
	for fn := range st.annotated {
		facts.Restricted = append(facts.Restricted, fn.FullName())
	}
	sortStrings(facts.Restricted)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err == nil {
		st.pass.ExportFact(buf.Bytes())
	}
}

// isRestricted reports whether fn carries //dpulint:executor, locally
// or via an imported package's facts.
func (st *execState) isRestricted(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == st.pass.Pkg {
		return st.annotated[fn]
	}
	blob := st.pass.ImportFact(fn.Pkg().Path())
	if blob == nil {
		return false
	}
	var facts execFacts
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&facts); err != nil {
		return false
	}
	full := fn.FullName()
	for _, r := range facts.Restricted {
		if r == full {
			return true
		}
	}
	return false
}

// reportViolations flags calls to restricted functions from outside
// executor context and `go` launches of them from anywhere.
func (st *execState) reportViolations() {
	for _, f := range st.pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(st.pass.Info, call)
			if !st.isRestricted(fn) {
				return true
			}
			inGo := false
			if len(stack) >= 2 {
				if g, ok := stack[len(stack)-2].(*ast.GoStmt); ok && g.Call == call {
					inGo = true
				}
			}
			st.checkRestrictedCall(fn, call, stack[:len(stack)-1], inGo)
			return true
		})
	}
}

func (st *execState) checkRestrictedCall(fn *types.Func, call *ast.CallExpr, outer []ast.Node, inGo bool) {
	if inGo {
		st.pass.Report(lint.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"%s is executor-only (//dpulint:executor) but is launched on a new goroutine; schedule it with Stack.Do/After instead",
				fn.Name()),
		})
		return
	}
	encl := enclosingFunc(outer)
	if st.nodeIsExec(encl, nil) {
		return
	}
	st.pass.Report(lint.Diagnostic{
		Pos: call.Pos(),
		Message: fmt.Sprintf(
			"%s is executor-only (//dpulint:executor): call it from a module handler or a task scheduled on the stack, not from %s",
			fn.Name(), describeContext(st.pass, encl)),
	})
}

// describeContext names the offending context for the diagnostic.
func describeContext(pass *lint.Pass, node ast.Node) string {
	switch node := node.(type) {
	case *ast.FuncDecl:
		return node.Name.Name
	case *ast.FuncLit:
		return "a function literal of unknown context"
	default:
		return "package scope"
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
