package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// MapOrder flags `for range` over a map whose body emits: sends or
// relays frames, raises kernel events, or appends to wire buffers. Go
// randomizes map iteration order, so such a loop emits in a different
// order every run — exactly the class behind the PR 6 consensus
// tie-break and fd fan-out determinism bugs. The fix is the sorted-keys
// idiom (collect keys, sort, iterate) or an insertion-ordered side
// slice; pure bookkeeping loops over maps (counting, lookups, deletes
// with no emission) are fine and not flagged.
var MapOrder = &lint.Analyzer{
	Name: "maporder",
	Doc:  "forbid map-ordered iteration in loops that send/relay frames, raise kernel events or touch wire buffers",
	Run:  runMapOrder,
}

// emissionNames matches callee names that transmit or enqueue by
// convention, catching project emission helpers (send, sendFrame,
// transmit, enqueueRecord, relay, broadcast, emit...) regardless of
// receiver type.
func isEmissionName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range []string{"send", "transmit", "relay", "emit", "enqueue", "broadcast"} {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runMapOrder(pass *lint.Pass) error {
	if !inClockScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if why := emissionIn(pass.Info, rng.Body); why != "" {
				pass.Report(lint.Diagnostic{
					Pos: rng.Pos(),
					Message: fmt.Sprintf(
						"map iteration order is randomized and this loop %s: iterate sorted keys or an insertion-ordered slice instead",
						why),
				})
			}
			return true
		})
	}
	return nil
}

// emissionIn reports why the loop body is order-sensitive: the first
// emission-class operation found, or "" when the body is pure
// bookkeeping. Nested function literals count — a callback scheduled
// per iteration still captures the map's order.
func emissionIn(info *types.Info, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "sends on a channel"
			return false
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if f == nil {
				// Indirect call through a function value: judge by the
				// selector/identifier name when there is one.
				if name := callExprName(n); name != "" && isEmissionName(name) {
					why = fmt.Sprintf("calls %s (emission by name)", name)
					return false
				}
				return true
			}
			switch {
			case isKernelStackMethod(f, "Call", "CallSync", "Indicate", "Do", "After", "Every", "SetPeers"):
				why = fmt.Sprintf("raises kernel events via Stack.%s", f.Name())
			case isWireWriterMethod(f):
				why = fmt.Sprintf("mutates a pooled wire.Writer (%s)", f.Name())
			case isEmissionName(f.Name()):
				why = fmt.Sprintf("calls %s", f.Name())
			}
			if why != "" {
				return false
			}
		}
		return true
	})
	return why
}

func callExprName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
