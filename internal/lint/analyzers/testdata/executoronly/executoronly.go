// Package executoronly is the dpu-lint fixture for the executoronly
// analyzer: confinement of //dpulint:executor functions to
// executor-context callers.
package executoronly

import "repro/internal/kernel"

const svc kernel.ServiceID = "fixture/svc"

// mod carries the full kernel.Module profile (ID and Protocol come from
// the embedded kernel.Base), so its handler bodies are executor context.
type mod struct {
	kernel.Base
}

func (m *mod) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	m.Stk.CallSync(svc, req) // ok: module handler
	m.helper()
}

func (m *mod) HandleIndication(kernel.ServiceID, kernel.Indication) {}

func (m *mod) Start() {
	m.Stk.RegisterFlusher(func() {
		m.Stk.CallSync(svc, nil) // ok: flusher runs on the executor
	})
}

func (m *mod) Stop() {}

// helper is inferred executor-context: unexported, and its only call
// site is HandleRequest.
func (m *mod) helper() {
	m.Stk.CallSync(svc, nil) // ok: inferred via propagation
}

// scheduled closures run on the executor.
func okScheduled(st *kernel.Stack) {
	st.Do(func() {
		st.CallSync(svc, nil) // ok: literal passed to Stack.Do
	})
}

func badPlainCall(st *kernel.Stack) {
	st.CallSync(svc, nil) // want `executoronly: CallSync is executor-only`
}

func badGoroutine(st *kernel.Stack) {
	st.Do(func() {
		go st.SetPeers(nil, nil) // want `executoronly: SetPeers is executor-only .* launched on a new goroutine`
	})
}

func suppressedStartup(st *kernel.Stack) {
	//dpulint:ignore executoronly fixture demonstrates single-goroutine startup before the executor runs
	st.SetPeers(nil, nil)
}

// batchEvent carries a handler function inside an indication value, the
// way transport modules hand receive callbacks upward.
type batchEvent struct {
	handler func()
}

// okIndicateBatch: handler values reached through the indication slice
// passed to IndicateBatch are dispatched from the drain loop, so
// batchHandler below is executor context.
func okIndicateBatch(st *kernel.Stack, m *mod) {
	st.IndicateBatch(svc, []kernel.Indication{
		batchEvent{handler: m.batchHandler},
		batchEvent{handler: func() {
			st.CallSync(svc, nil) // ok: literal inside an IndicateBatch slice
		}},
	})
}

func (m *mod) batchHandler() {
	m.Stk.CallSync(svc, nil) // ok: scheduled via IndicateBatch
}

// newExecutor mirrors the shape of the kernel's executor constructor:
// its function arguments run only on the drain loop — the dedicated
// run() goroutine or a shared Pool worker's slice() — so they are
// executor context by axiom.
func newExecutor(run func(), flush func()) {
	_ = run
	_ = flush
}

func okExecutorConstructor(st *kernel.Stack) {
	newExecutor(func() {
		st.CallSync(svc, nil) // ok: task runner handed to newExecutor
	}, func() {
		st.SetPeers(nil, nil) // ok: flusher handed to newExecutor
	})
}
