// Package poolfree is the dpu-lint fixture for the poolfree analyzer:
// pooled wire.Writer ownership.
package poolfree

import "repro/internal/wire"

func leakOnEarlyReturn(cond bool) {
	w := wire.GetWriter(8)
	w.Byte(1)
	if cond {
		return // want `poolfree: .*may not reach Free`
	}
	w.Free()
}

func leakAtEnd() {
	w := wire.GetWriter(8)
	w.Byte(1)
} // want `poolfree: .*may not reach Free`

func okStraightLine() {
	w := wire.GetWriter(8)
	w.Byte(1)
	w.Free()
}

func okDeferred(cond bool) {
	w := wire.GetWriter(8)
	defer w.Free()
	if cond {
		return
	}
	w.Byte(2)
}

func okBranches(cond bool) {
	w := wire.GetWriter(8)
	if cond {
		w.Byte(1)
	} else {
		w.Byte(2)
	}
	w.Free()
}

func okLoop(n int) {
	w := wire.GetWriter(8)
	for i := 0; i < n; i++ {
		w.Byte(byte(i))
	}
	w.Free()
}

type holder struct{ w *wire.Writer }

func escapeToField(h *holder) {
	w := wire.GetWriter(8)
	h.w = w // want `poolfree: .*leaves the function`
}

func escapeToClosure() func() {
	w := wire.GetWriter(8)
	return func() { w.Free() } // want `poolfree: .*captured by a function literal`
}

func suppressedTransfer(h *holder) {
	w := wire.GetWriter(8)
	//dpulint:ignore poolfree fixture demonstrates a documented ownership transfer
	h.w = w
}
