// Package maporder is the dpu-lint fixture for the maporder analyzer:
// randomized map iteration in loops that emit.
package maporder

import (
	"sort"

	"repro/internal/wire"
)

func badChannel(m map[int]int, ch chan int) {
	for k := range m { // want `maporder: .*sends on a channel`
		ch <- k
	}
}

func sendAll(int) {}

func badEmissionName(m map[int]int) {
	for k := range m { // want `maporder: .*calls sendAll`
		sendAll(k)
	}
}

func badWire(m map[int]int) {
	w := wire.GetWriter(8)
	for k := range m { // want `maporder: .*mutates a pooled wire\.Writer`
		w.Uvarint(uint64(k))
	}
	w.Free()
}

// badNested still emits per iteration, one callback deep.
func badNested(m map[int]int, ch chan int) {
	for k := range m { // want `maporder: .*sends on a channel`
		func() { ch <- k }()
	}
}

// goodBookkeeping aggregates without emitting.
func goodBookkeeping(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodSorted is the prescribed idiom: collect, sort, then emit.
func goodSorted(m map[int]int, ch chan int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		ch <- m[k]
	}
}

func suppressed(m map[int]int, ch chan int) {
	//dpulint:ignore maporder fixture demonstrates a justified unordered emission
	for k := range m {
		ch <- k
	}
}
