// Package clocktime is the dpu-lint fixture for the clocktime
// analyzer: direct runtime-clock reads in clock-injected packages.
package clocktime

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `clocktime: direct time\.Sleep`
	return time.Now()            // want `clocktime: direct time\.Now`
}

func badTimer(fn func()) {
	time.AfterFunc(time.Second, fn) // want `clocktime: direct time\.AfterFunc`
}

// okDuration uses only clock-agnostic parts of package time.
func okDuration(d time.Duration) time.Duration {
	return 2*d + 5*time.Second
}

// okUnix builds a timestamp from a number, reading no clock.
func okUnix(ns int64) time.Time {
	return time.Unix(0, ns)
}

func suppressed() time.Time {
	//dpulint:ignore clocktime fixture demonstrates a justified wall-clock read
	return time.Now()
}

func missingReason() time.Time {
	//dpulint:ignore clocktime // want `dpulint: //dpulint:ignore clocktime without a reason`
	return time.Now()
}
