// Package analyzers holds the four project-specific checks run by
// cmd/dpu-lint: clocktime (clock discipline), maporder (deterministic
// iteration on emission paths), poolfree (pooled wire.Writer ownership)
// and executoronly (executor confinement of //dpulint:executor
// functions). docs/LINTING.md is the operator-facing catalogue; this
// package is the implementation.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// All returns the full analyzer suite in deterministic order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Clocktime, MapOrder, PoolFree, ExecutorOnly}
}

// clockScoped lists the module-relative package paths (and path
// prefixes, for their subpackages) whose code runs under an injected
// vclock.Clock. Direct time.Now/timer use inside them desynchronizes
// virtual-time runs, so clocktime and maporder confine themselves to
// this set. internal/vclock itself is exempt: it is the one place
// allowed to touch the runtime clock.
var clockScoped = []string{
	"internal/kernel",
	"internal/simnet",
	"internal/fd",
	"internal/rp2p",
	"internal/abcast",
	"internal/rbcast",
	"internal/core",
	"internal/policy",
	"internal/consensus",
	"internal/gm",
	"internal/maestro",
	"internal/graceful",
	"internal/scenario",
	"internal/transport",
	"internal/workload",
	"dpu",
}

// inClockScope reports whether the package (by import path) is subject
// to the clock-discipline and map-order contracts. Fixture packages
// ("fixture/<analyzer>") are always in scope so the analyzer tests can
// exercise the checks outside the real tree.
func inClockScope(pkgPath string) bool {
	if strings.HasPrefix(pkgPath, "fixture/") {
		return true
	}
	for _, s := range clockScoped {
		if strings.HasSuffix(pkgPath, "/"+s) || pkgPath == s {
			return true
		}
	}
	return false
}

// usedPkgName resolves an identifier to the package it names, if it is
// the qualifier of a selector (e.g. the "time" in time.Now).
func usedPkgName(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj
	}
	return nil
}

// calleeFunc resolves the callee of a call expression to its *types.Func
// (methods included), or nil for indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isKernelStackMethod reports whether f is the named method on
// *kernel.Stack (any package whose path ends in internal/kernel, so the
// check also binds in fixture copies).
func isKernelStackMethod(f *types.Func, names ...string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(f.Pkg().Path(), "internal/kernel") {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Stack" {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isWireWriterMethod reports whether f is a method on wire.Writer.
func isWireWriterMethod(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || !strings.HasSuffix(f.Pkg().Path(), "internal/wire") {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Writer"
}

// isWireGetWriter reports whether the call is wire.GetWriter.
func isWireGetWriter(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil &&
		strings.HasSuffix(f.Pkg().Path(), "internal/wire") &&
		f.Name() == "GetWriter" && f.Type().(*types.Signature).Recv() == nil
}
