// Package fd implements the FD module of the paper's stack (Figure 4):
// a heartbeat failure detector providing the properties of the ◇S
// (eventually strong) class assumed by the Chandra–Toueg consensus
// algorithm. Heartbeats travel over raw UDP (losing one is harmless);
// a peer silent for longer than its adaptive timeout is suspected, and
// a heartbeat from a suspected peer both restores it and lengthens its
// timeout — so in a stable run false suspicions eventually cease, the
// ◇S convergence argument.
//
// Heartbeats travel on the shared socket under the udp.ChanFD channel
// tag (see internal/udp's registry), deliberately below RP2P:
// retransmitting a stale heartbeat would defeat the timeout logic.
package fd

import (
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/udp"
)

// suspectCounter counts Suspect indications across all fd modules of
// the process; exported through the metrics registry (dpu-bench -json).
var suspectCounter = metrics.NewCounter("fd.suspect_events")

// Service is the failure-detection service.
const Service kernel.ServiceID = "fd"

// Protocol is the protocol name registered for this module.
const Protocol = "fd"

// Suspect is indicated when a peer becomes suspected.
type Suspect struct {
	P kernel.Addr
}

// Restore is indicated when a suspected peer proves alive again.
type Restore struct {
	P kernel.Addr
}

// SuspectsReq asks for the current suspect list, delivered through
// Reply on the executor.
type SuspectsReq struct {
	Reply func([]kernel.Addr)
}

// Config tunes the detector.
type Config struct {
	// Interval between heartbeats (and suspicion checks).
	Interval time.Duration
	// Timeout is the initial silence threshold before suspicion.
	Timeout time.Duration
	// AdaptStep is added to a peer's timeout after a false suspicion.
	AdaptStep time.Duration
	// MaxTimeout caps adaptation.
	MaxTimeout time.Duration
}

// DefaultConfig returns defaults scaled for the simulated LAN.
func DefaultConfig() Config {
	return Config{
		Interval:   10 * time.Millisecond,
		Timeout:    60 * time.Millisecond,
		AdaptStep:  40 * time.Millisecond,
		MaxTimeout: 2 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	if c.AdaptStep <= 0 {
		c.AdaptStep = d.AdaptStep
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = d.MaxTimeout
	}
	return c
}

type monitored struct {
	lastHeard time.Time
	timeout   time.Duration
	suspected bool
}

// Module implements the failure detector.
type Module struct {
	kernel.Base
	cfg   Config
	peers map[kernel.Addr]*monitored
	tick  *kernel.Timer
}

// Factory returns the module factory.
func Factory(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: []kernel.ServiceID{udp.Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{
				Base:  kernel.NewBase(st, Protocol),
				cfg:   cfg,
				peers: make(map[kernel.Addr]*monitored),
			}
		},
	}
}

// Start begins monitoring the other members of the current view and
// subscribes to view changes so the monitor set tracks the membership.
func (m *Module) Start() {
	now := m.Stk.Now()
	for _, p := range m.Stk.Others() {
		m.peers[p] = &monitored{lastHeard: now, timeout: m.cfg.Timeout}
	}
	m.Stk.Subscribe(udp.Service, m)
	m.Stk.Subscribe(kernel.PeerService, m)
	m.tick = m.Stk.Every(m.cfg.Interval, m.onTick)
}

// Stop halts heartbeats and monitoring.
func (m *Module) Stop() {
	if m.tick != nil {
		m.tick.Stop()
	}
	m.Stk.Unsubscribe(udp.Service, m)
	m.Stk.Unsubscribe(kernel.PeerService, m)
}

// onPeersChanged reconciles the monitor set with a new membership view:
// added members start monitored (heard "now", base timeout) so a fresh
// joiner gets its startup grace; removed members are forgotten without
// a Suspect, eviction is not a failure.
func (m *Module) onPeersChanged(pc kernel.PeersChanged) {
	now := m.Stk.Now()
	for _, p := range pc.Added {
		if p == m.Stk.Addr() {
			continue
		}
		if _, ok := m.peers[p]; !ok {
			m.peers[p] = &monitored{lastHeard: now, timeout: m.cfg.Timeout}
		}
	}
	for _, p := range pc.Removed {
		delete(m.peers, p)
	}
}

func (m *Module) onTick() {
	// Iterate in sorted order: heartbeat sends consume the shared simnet
	// fault RNG, so map-order iteration would make packet fates differ
	// between runs with the same seed.
	peers := make([]kernel.Addr, 0, len(m.peers))
	for p := range m.peers {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		m.Stk.Call(udp.Service, udp.Send{To: p, Chan: udp.ChanFD})
	}
	now := m.Stk.Now()
	for _, p := range peers {
		st := m.peers[p]
		if !st.suspected && now.Sub(st.lastHeard) > st.timeout {
			st.suspected = true
			suspectCounter.Add(1)
			m.Stk.Indicate(Service, Suspect{P: p})
		}
	}
}

// HandleIndication processes heartbeat receptions and membership views.
func (m *Module) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc == kernel.PeerService {
		if pc, ok := ind.(kernel.PeersChanged); ok {
			m.onPeersChanged(pc)
		}
		return
	}
	rv, ok := ind.(udp.Recv)
	if !ok || rv.Chan != udp.ChanFD {
		return
	}
	st, ok := m.peers[rv.From]
	if !ok {
		return
	}
	st.lastHeard = m.Stk.Now()
	if st.suspected {
		st.suspected = false
		st.timeout = min(st.timeout+m.cfg.AdaptStep, m.cfg.MaxTimeout)
		m.Stk.Indicate(Service, Restore{P: rv.From})
	}
}

// HandleRequest serves SuspectsReq.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	r, ok := req.(SuspectsReq)
	if !ok || r.Reply == nil {
		return
	}
	var out []kernel.Addr
	for p, st := range m.peers {
		if st.suspected {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	r.Reply(out)
}
