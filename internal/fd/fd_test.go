package fd_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 10 * time.Second

// fdLog records Suspect/Restore indications.
type fdLog struct {
	kernel.Base
	mu       sync.Mutex
	suspects map[kernel.Addr]bool
	restores int
}

func newFDLog(st *kernel.Stack) *fdLog {
	return &fdLog{Base: kernel.NewBase(st, "fdlog"), suspects: make(map[kernel.Addr]bool)}
}

func (l *fdLog) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch v := ind.(type) {
	case fd.Suspect:
		l.suspects[v.P] = true
	case fd.Restore:
		l.suspects[v.P] = false
		l.restores++
	}
}

func (l *fdLog) suspected(p kernel.Addr) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suspects[p]
}

func (l *fdLog) restoreCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.restores
}

func build(t *testing.T, n int, netCfg simnet.Config, cfg fd.Config) (*stacktest.Cluster, []*fdLog) {
	c := stacktest.New(t, n, netCfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(fd.Factory(cfg))
	c.CreateAll(fd.Protocol)
	logs := make([]*fdLog, n)
	for i := range logs {
		i := i
		c.OnSync(i, func() {
			logs[i] = newFDLog(c.Stacks[i])
			c.Stacks[i].AddModule(logs[i])
			c.Stacks[i].Subscribe(fd.Service, logs[i])
		})
	}
	return c, logs
}

func TestNoSuspicionsInStableGroup(t *testing.T) {
	_, logs := build(t, 3, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 100 * time.Millisecond})
	time.Sleep(300 * time.Millisecond)
	for i, l := range logs {
		for p := kernel.Addr(0); p < 3; p++ {
			if l.suspected(p) {
				t.Errorf("stack %d suspects %d in a stable group", i, p)
			}
		}
	}
}

func TestCrashedPeerEventuallySuspected(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	c.Net.SetDown(2, true) // peer 2 goes silent
	c.Eventually(timeout, "suspicion of 2", func() bool {
		return logs[0].suspected(2) && logs[1].suspected(2)
	})
	if logs[0].suspected(1) || logs[1].suspected(0) {
		t.Error("live peers suspected")
	}
}

func TestRecoveredPeerRestored(t *testing.T) {
	c, logs := build(t, 2, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	c.Net.SetDown(1, true)
	c.Eventually(timeout, "suspicion", func() bool { return logs[0].suspected(1) })
	c.Net.SetDown(1, false)
	c.Eventually(timeout, "restore", func() bool { return !logs[0].suspected(1) })
	if logs[0].restoreCount() == 0 {
		t.Error("no Restore indication")
	}
}

func TestPartitionedPeerSuspectedThenRestoredOnHeal(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	c.Net.Cut(0, 2)
	c.Eventually(timeout, "one-sided suspicion", func() bool { return logs[0].suspected(2) })
	// 1 still hears 2: no suspicion there.
	if logs[1].suspected(2) {
		t.Error("stack 1 suspects 2 despite intact link")
	}
	c.Net.Heal(0, 2)
	c.Eventually(timeout, "restore after heal", func() bool { return !logs[0].suspected(2) })
}

func TestAdaptiveTimeoutReducesFalseSuspicions(t *testing.T) {
	// A timeout shorter than the network latency forces false suspicions;
	// adaptation must grow the timeout until suspicions stop (the ◇S
	// convergence property).
	c, logs := build(t, 2,
		simnet.Config{BaseLatency: 30 * time.Millisecond},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 20 * time.Millisecond,
			AdaptStep: 30 * time.Millisecond, MaxTimeout: time.Second})
	c.Eventually(timeout, "initial false suspicion", func() bool { return logs[0].restoreCount() >= 1 })
	// After enough adaptation the suspicions must cease: wait for a
	// stretch with no state change.
	c.Eventually(timeout, "suspicions cease", func() bool {
		before := logs[0].restoreCount()
		time.Sleep(200 * time.Millisecond)
		return logs[0].restoreCount() == before && !logs[0].suspected(1)
	})
}

func TestSuspectsQuery(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	c.Net.SetDown(1, true)
	c.Eventually(timeout, "suspicion", func() bool { return logs[0].suspected(1) })
	got := make(chan []kernel.Addr, 1)
	c.Stacks[0].Call(fd.Service, fd.SuspectsReq{Reply: func(s []kernel.Addr) { got <- s }})
	select {
	case s := <-got:
		if len(s) != 1 || s[0] != 1 {
			t.Errorf("Suspects = %v, want [1]", s)
		}
	case <-time.After(timeout):
		t.Fatal("no reply")
	}
}

func TestMonitorSetFollowsView(t *testing.T) {
	// The monitor set is view-driven: a member removed by SetPeers is
	// forgotten (no Suspect for eviction), and a freshly admitted member
	// is monitored from "now" with the base timeout.
	c, logs := build(t, 3, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	// Remove 2 from stack 0's view; 2 keeps running, but even if it went
	// silent, stack 0 must not suspect a non-member.
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0, 1}, nil) })
	c.Net.SetDown(2, true)
	c.Eventually(timeout, "stack 1 suspects 2", func() bool { return logs[1].suspected(2) })
	if logs[0].suspected(2) {
		t.Error("stack 0 suspects evicted member 2")
	}
	// Re-admit 2 (still down): now stack 0 must suspect it again.
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0, 1, 2}, nil) })
	c.Eventually(timeout, "stack 0 suspects re-admitted 2", func() bool { return logs[0].suspected(2) })
}

func TestSuspectsReqAfterViewChange(t *testing.T) {
	c, logs := build(t, 2, simnet.Config{},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 40 * time.Millisecond})
	c.Net.SetDown(1, true)
	c.Eventually(timeout, "suspicion", func() bool { return logs[0].suspected(1) })
	c.OnSync(0, func() { c.Stacks[0].SetPeers([]kernel.Addr{0}, nil) })
	got := make(chan []kernel.Addr, 1)
	c.Stacks[0].Call(fd.Service, fd.SuspectsReq{Reply: func(s []kernel.Addr) { got <- s }})
	select {
	case s := <-got:
		if len(s) != 0 {
			t.Errorf("suspects after eviction = %v, want none", s)
		}
	case <-time.After(timeout):
		t.Fatal("no SuspectsReq reply")
	}
}
