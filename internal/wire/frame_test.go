package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func seal(t *testing.T, tag byte, payload []byte, salt uint64) []byte {
	t.Helper()
	w := NewWriter(FrameOverhead + len(payload))
	w.Byte(tag).Pad(FrameOverhead - 1).Raw(payload)
	frame := w.Bytes()
	SealFrame(frame, salt)
	return frame
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		frame := seal(t, 7, p, 42)
		tag, got, ok := OpenFrame(frame, 42)
		if !ok {
			t.Fatalf("OpenFrame rejected a sealed frame (payload %d bytes)", len(p))
		}
		if tag != 7 {
			t.Fatalf("tag = %d, want 7", tag)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameRejectsShort(t *testing.T) {
	before := framesRejected.Value()
	for n := 0; n < FrameOverhead; n++ {
		if _, _, ok := OpenFrame(make([]byte, n), 0); ok {
			t.Fatalf("OpenFrame accepted a %d-byte frame", n)
		}
	}
	if got := framesRejected.Value() - before; got != FrameOverhead {
		t.Fatalf("frames_rejected grew by %d, want %d", got, FrameOverhead)
	}
}

func TestFrameRejectsEveryBitFlip(t *testing.T) {
	frame := seal(t, 3, []byte("the quick brown fox"), 9)
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, _, ok := OpenFrame(mut, 9); ok {
				t.Fatalf("accepted frame with byte %d bit %d flipped", i, bit)
			}
		}
	}
}

func TestFrameRejectsWrongSalt(t *testing.T) {
	frame := seal(t, 1, []byte("payload"), 5)
	if _, _, ok := OpenFrame(frame, 6); ok {
		t.Fatal("accepted frame under the wrong salt (mis-attributed source)")
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	frame := seal(t, 1, []byte("a longer payload body"), 5)
	for n := FrameOverhead; n < len(frame); n++ {
		if _, _, ok := OpenFrame(frame[:n], 5); ok {
			t.Fatalf("accepted frame truncated to %d of %d bytes", n, len(frame))
		}
	}
}

func TestSealIdempotent(t *testing.T) {
	frame := seal(t, 2, []byte("retransmit me"), 11)
	SealFrame(frame, 11) // a parked buffer may be re-sealed on retransmit
	if _, _, ok := OpenFrame(frame, 11); !ok {
		t.Fatal("re-sealed frame no longer opens")
	}
}

// FuzzFrame feeds OpenFrame random byte soup and mutated valid frames:
// it must never panic, and must either round-trip an untouched sealed
// frame or reject anything else.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{}, uint64(0), -1, byte(0))
	f.Add([]byte("hello world"), uint64(42), -1, byte(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint64(1), 3, byte(0x80))
	f.Fuzz(func(t *testing.T, payload []byte, salt uint64, mutAt int, mutXor byte) {
		// Arbitrary bytes straight through OpenFrame: no panic allowed.
		OpenFrame(payload, salt)

		// A sealed frame, optionally mutated at one position.
		w := NewWriter(FrameOverhead + len(payload))
		w.Byte(1).Pad(FrameOverhead - 1).Raw(payload)
		frame := w.Bytes()
		SealFrame(frame, salt)
		mutated := false
		if mutAt >= 0 && mutAt < len(frame) && mutXor != 0 {
			frame[mutAt] ^= mutXor
			mutated = true
		}
		tag, got, ok := OpenFrame(frame, salt)
		if mutated && ok {
			t.Fatalf("accepted frame mutated at %d (xor %#x)", mutAt, mutXor)
		}
		if !mutated {
			if !ok {
				t.Fatal("rejected an untouched sealed frame")
			}
			if tag != 1 || !bytes.Equal(got, payload) {
				t.Fatal("round-trip mismatch")
			}
		}
	})
}

func BenchmarkSealOpen(b *testing.B) {
	payload := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(payload)
	w := NewWriter(FrameOverhead + len(payload))
	w.Byte(1).Pad(FrameOverhead - 1).Raw(payload)
	frame := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SealFrame(frame, 7)
		if _, _, ok := OpenFrame(frame, 7); !ok {
			b.Fatal("reject")
		}
	}
}
