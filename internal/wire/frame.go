package wire

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/metrics"
)

// Every datagram that crosses a transport fabric is framed as
//
//	[1-byte tag][4-byte CRC32-C][payload...]
//
// by the udp module (see internal/udp). The checksum covers the tag,
// the payload, and a caller-supplied salt — the sender's stack address
// — so a frame whose source attribution was corrupted in flight fails
// verification just like a flipped payload byte. Frames that fail to
// open are counted in wire.frames_rejected and dropped before they can
// be misparsed into the kernel.

// FrameOverhead is the number of leading bytes a framed datagram
// reserves ahead of the payload: one tag byte plus the 4-byte checksum.
// Senders that use the zero-copy headroom path (udp.Send.Headroom) must
// reserve exactly this many bytes; Writer.Pad(FrameOverhead) does.
const FrameOverhead = 5

// castagnoli is the CRC32-C table; Castagnoli has hardware support on
// amd64/arm64, so sealing costs a few ns even for large frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// framesRejected counts datagrams dropped by OpenFrame: truncated
// frames, checksum mismatches, corrupted tags or mis-attributed
// sources. Exposed process-wide as wire.frames_rejected.
var framesRejected = metrics.NewCounter("wire.frames_rejected")

// RejectFrame counts a frame dropped by an outer framing layer (e.g.
// the real-socket transport's frame decoder) into wire.frames_rejected,
// so every layer that refuses a corrupt or truncated frame feeds the
// same process-wide counter.
func RejectFrame() { framesRejected.Add(1) }

// frameSum computes the integrity checksum of a sealed or to-be-sealed
// frame: CRC32-C over the salt, the tag byte, and the payload (the
// 4-byte checksum slot itself is excluded).
func frameSum(frame []byte, salt uint64) uint32 {
	var hdr [9]byte
	binary.BigEndian.PutUint64(hdr[:8], salt)
	hdr[8] = frame[0]
	sum := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(sum, castagnoli, frame[FrameOverhead:])
}

// SealFrame stamps the checksum into frame[1:5]. The caller has already
// written the tag into frame[0] and the payload from frame[FrameOverhead:];
// the frame must be at least FrameOverhead bytes. Sealing is idempotent,
// so retransmitting a parked buffer through the framing layer again is
// harmless.
func SealFrame(frame []byte, salt uint64) {
	binary.BigEndian.PutUint32(frame[1:FrameOverhead], frameSum(frame, salt))
}

// OpenFrame validates a received frame against salt and splits it into
// tag and payload. The payload aliases data. On any failure — frame too
// short to carry the header, or checksum mismatch — it counts the frame
// into wire.frames_rejected and reports ok=false; the caller must drop
// the datagram.
func OpenFrame(data []byte, salt uint64) (tag byte, payload []byte, ok bool) {
	if len(data) < FrameOverhead {
		framesRejected.Add(1)
		return 0, nil, false
	}
	if binary.BigEndian.Uint32(data[1:FrameOverhead]) != frameSum(data, salt) {
		framesRejected.Add(1)
		return 0, nil, false
	}
	return data[0], data[FrameOverhead:], true
}
