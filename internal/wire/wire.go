// Package wire implements the binary encoding used by every protocol
// header in the repository. It is a tiny, allocation-conscious codec:
// writers append to a byte slice, readers consume one with a sticky
// error so call sites can decode a whole header and check Err() once.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrTruncated is reported when a reader runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrOverflow is reported when a varint does not fit its target type.
var ErrOverflow = errors.New("wire: varint overflow")

// Writer appends values to a growing byte slice.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledCap bounds the buffers the pool retains: a writer that grew
// beyond it is dropped on Free instead of pinning a jumbo buffer.
const maxPooledCap = 64 << 10

// GetWriter returns a pooled writer with at least the given capacity.
// The caller owns it (and every slice obtained from Bytes) until Free.
// Pooling amortizes the per-message buffer allocation on encode hot
// paths; call sites whose encoded bytes outlive the send (anything a
// downstream module may retain) must keep the writer un-freed or use
// NewWriter instead.
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// Free resets the writer and returns it to the pool. The caller must
// not touch the writer or any slice obtained from Bytes afterwards.
func (w *Writer) Free() {
	if cap(w.buf) > maxPooledCap {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	writerPool.Put(w)
}

// Reset truncates the writer to empty, keeping its capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the encoded bytes. The slice aliases the writer's
// internal buffer; callers must not keep writing through the writer
// while holding the result unless they own both.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) *Writer {
	w.buf = append(w.buf, b)
	return w
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) *Writer {
	if b {
		return w.Byte(1)
	}
	return w.Byte(0)
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) *Writer {
	w.buf = binary.AppendUvarint(w.buf, v)
	return w
}

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(v int64) *Writer {
	w.buf = binary.AppendVarint(w.buf, v)
	return w
}

// Uint64 appends a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// Uint32 appends a fixed-width big-endian uint32.
func (w *Writer) Uint32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// Pad appends n zero bytes. Framing layers use it to reserve headroom
// that a lower layer will stamp in place (see FrameOverhead).
func (w *Writer) Pad(n int) *Writer {
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, 0)
	}
	return w
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) *Writer {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) *Writer {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Raw appends bytes with no length prefix (trailing payloads).
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// Reader consumes a byte slice produced by Writer. The first decoding
// failure latches into err; subsequent reads return zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered while decoding, if any.
func (r *Reader) Err() error { return r.err }

// Pos returns the current read offset into the buffer, letting framers
// recover the raw bytes of a just-decoded record (for zero-copy relay).
func (r *Reader) Pos() int { return r.off }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean encoded as one byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Uint32 reads a fixed-width big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.off < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 reads a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.off < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// BytesField reads a length-prefixed byte slice. The result aliases the
// reader's buffer.
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.BytesField())
}

// Rest returns all unread bytes (trailing payload) and advances to the
// end of the buffer.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Expect consumes a byte and fails with a descriptive error when it
// does not match want.
func (r *Reader) Expect(want byte, what string) {
	got := r.Byte()
	if r.err == nil && got != want {
		r.fail(fmt.Errorf("wire: bad %s: got %d want %d", what, got, want))
	}
}
