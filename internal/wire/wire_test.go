package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundtripScalars(t *testing.T) {
	w := NewWriter(64)
	w.Byte(7).Bool(true).Bool(false).Uvarint(300).Varint(-12345).Uint64(math.MaxUint64)
	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d, want 7", got)
	}
	if !r.Bool() {
		t.Errorf("first Bool = false, want true")
	}
	if r.Bool() {
		t.Errorf("second Bool = true, want false")
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("Varint = %d, want -12345", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d, want max", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestRoundtripComposite(t *testing.T) {
	payload := []byte("trailing payload")
	w := NewWriter(0)
	w.String("abcast/ct").BytesField([]byte{1, 2, 3}).Raw(payload)
	r := NewReader(w.Bytes())
	if got := r.String(); got != "abcast/ct" {
		t.Errorf("String = %q", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesField = %v", got)
	}
	if got := r.Rest(); !bytes.Equal(got, payload) {
		t.Errorf("Rest = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestEmptyFields(t *testing.T) {
	w := NewWriter(0)
	w.String("").BytesField(nil)
	r := NewReader(w.Bytes())
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.BytesField(); len(got) != 0 {
		t.Errorf("BytesField = %v, want empty", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(0)
	w.String("hello").Uint64(42)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		r.Uint64()
		if r.Err() == nil {
			t.Errorf("cut=%d: no error on truncated input", cut)
		}
	}
}

func TestErrorIsSticky(t *testing.T) {
	r := NewReader(nil)
	r.Byte()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	first := r.Err()
	r.Uvarint()
	_ = r.String()
	if r.Err() != first {
		t.Errorf("error replaced: %v != %v", r.Err(), first)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining after error = %d", r.Remaining())
	}
}

func TestExpect(t *testing.T) {
	w := NewWriter(0)
	w.Byte(3)
	r := NewReader(w.Bytes())
	r.Expect(3, "tag")
	if r.Err() != nil {
		t.Fatalf("Expect(match) failed: %v", r.Err())
	}
	r2 := NewReader(w.Bytes())
	r2.Expect(4, "tag")
	if r2.Err() == nil {
		t.Fatal("Expect(mismatch) did not fail")
	}
}

func TestLengthOverflowRejected(t *testing.T) {
	// A length prefix larger than the buffer must fail, not panic.
	w := NewWriter(0)
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("BytesField = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestQuickUvarintRoundtrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		w.Uvarint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVarintRoundtrip(t *testing.T) {
	f := func(v int64) bool {
		w := NewWriter(0)
		w.Varint(v)
		r := NewReader(w.Bytes())
		return r.Varint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompositeRoundtrip(t *testing.T) {
	f := func(s string, b []byte, u uint64, i int64, flag bool, tail []byte) bool {
		w := NewWriter(0)
		w.String(s).BytesField(b).Uvarint(u).Varint(i).Bool(flag).Raw(tail)
		r := NewReader(w.Bytes())
		gs := r.String()
		gb := r.BytesField()
		gu := r.Uvarint()
		gi := r.Varint()
		gf := r.Bool()
		gt := r.Rest()
		return r.Err() == nil && gs == s && bytes.Equal(gb, b) &&
			gu == u && gi == i && gf == flag && bytes.Equal(gt, tail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		r := NewReader(garbage)
		_ = r.String()
		r.BytesField()
		r.Uvarint()
		r.Uint64()
		r.Varint()
		r.Rest()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
