package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"repro/dpu"
)

// Checker audits the per-stack unified event logs of one run against
// the protocol's safety invariants. It is deliberately decoupled from
// the driver: logs in, violations out — which is also what makes the
// checkers themselves testable against synthetic streams (see
// checker_test.go).
type Checker struct {
	// Enabled selects the invariants to enforce (nil/empty = all; see
	// knownInvariants).
	Enabled []string
	// Founders are the stacks subscribed from the first delivery on;
	// their logs anchor at position 0 of the total order. Non-founder
	// (joiner) logs anchor where their first delivery appears in the
	// reference order.
	Founders map[int]bool
	// ExemptOrigins are senders whose broadcast stream may end in a
	// ragged tail (crashed or evicted mid-run): the gap-freeness check
	// skips them, the ordering checks still apply.
	ExemptOrigins map[int]bool
}

// Counts are the deterministic per-run checker totals: a seeded virtual
// run must reproduce them bit-identically.
type Counts struct {
	Deliveries int
	Switches   int
	Views      int
	Advice     int
}

// Report is the checker's verdict over one run's logs.
type Report struct {
	Counts Counts
	// Digest is an FNV-1a hash over every stack's canonical event
	// stream — the strongest cheap determinism witness: two runs with
	// the same seed must produce the same digest.
	Digest uint64
	// Violations lists every invariant breach found, most fundamental
	// first. Empty means the run is clean.
	Violations []string
}

// Err folds the violations into one error (nil when clean).
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("invariant violations (%d): %s", len(r.Violations), strings.Join(r.Violations, "; "))
}

func (c *Checker) enabled(name string) bool {
	if len(c.Enabled) == 0 {
		return true
	}
	for _, e := range c.Enabled {
		if e == name {
			return true
		}
	}
	return false
}

// deliveryKey identifies one broadcast uniquely: the origin stack plus
// the payload (workload payloads embed origin and sequence, so they
// never collide).
func deliveryKey(d dpu.Delivery) string {
	return strconv.Itoa(d.Origin) + "\x00" + string(d.Data)
}

// workloadSeq parses a driver workload payload `w:<origin>:<seq>[:pad]`
// and reports (origin, seq, true); other payloads report false.
func workloadSeq(data []byte) (int, uint64, bool) {
	s := string(data)
	if !strings.HasPrefix(s, "w:") {
		return 0, 0, false
	}
	rest := s[2:]
	i := strings.IndexByte(rest, ':')
	if i < 0 {
		return 0, 0, false
	}
	origin, err := strconv.Atoi(rest[:i])
	if err != nil {
		return 0, 0, false
	}
	seqPart := rest[i+1:]
	if j := strings.IndexByte(seqPart, ':'); j >= 0 {
		seqPart = seqPart[:j]
	}
	seq, err := strconv.ParseUint(seqPart, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return origin, seq, true
}

// Check audits the logs. Keys of logs are stack ids; each log is that
// stack's unified event stream in publish order.
func (c *Checker) Check(logs map[int][]dpu.Event) *Report {
	rep := &Report{}
	ids := make([]int, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Canonical per-stack delivery sequences, counts and digest.
	h := fnv.New64a()
	deliveries := make(map[int][]dpu.Delivery, len(ids))
	for _, id := range ids {
		fmt.Fprintf(h, "stack %d\n", id)
		for _, ev := range logs[id] {
			switch ev.Kind {
			case dpu.EventDelivery:
				rep.Counts.Deliveries++
				deliveries[id] = append(deliveries[id], ev.Delivery)
				fmt.Fprintf(h, "d %d %q %d\n", ev.Delivery.Origin, ev.Delivery.Data, ev.Delivery.At.UnixNano())
			case dpu.EventSwitch:
				rep.Counts.Switches++
				fmt.Fprintf(h, "s %d %s\n", ev.Switch.Epoch, ev.Switch.Protocol)
			case dpu.EventView:
				rep.Counts.Views++
				fmt.Fprintf(h, "v %d %v\n", ev.View.ID, ev.View.Members)
			case dpu.EventAdvice:
				rep.Counts.Advice++
				// Advice carries engine-side floats; counted but not
				// digested, so the digest stays a pure protocol witness.
			}
		}
	}
	rep.Digest = h.Sum64()

	if c.enabled("exactly-once") {
		c.checkExactlyOnce(ids, deliveries, rep)
	}
	ref, refStack := c.reference(ids, deliveries)
	offsets := map[int]int{}
	if c.enabled("total-order") || c.enabled("no-gaps") || c.enabled("view-agreement") {
		offsets = c.checkTotalOrder(ids, deliveries, ref, refStack, rep)
	}
	if c.enabled("no-gaps") {
		c.checkGaps(ref, refStack, rep)
	}
	if c.enabled("view-agreement") {
		c.checkViews(ids, logs, offsets, rep)
	}
	if c.enabled("switch-agreement") {
		c.checkSwitches(ids, logs, rep)
	}
	return rep
}

// reference picks the longest founder delivery log as the canonical
// total order every other log is audited against (falling back to the
// longest log of all when no founder delivered anything).
func (c *Checker) reference(ids []int, deliveries map[int][]dpu.Delivery) ([]dpu.Delivery, int) {
	best, bestStack := []dpu.Delivery(nil), -1
	for _, id := range ids {
		if len(c.Founders) > 0 && !c.Founders[id] {
			continue
		}
		if len(deliveries[id]) > len(best) {
			best, bestStack = deliveries[id], id
		}
	}
	if bestStack == -1 {
		for _, id := range ids {
			if len(deliveries[id]) > len(best) {
				best, bestStack = deliveries[id], id
			}
		}
	}
	return best, bestStack
}

func (c *Checker) checkExactlyOnce(ids []int, deliveries map[int][]dpu.Delivery, rep *Report) {
	for _, id := range ids {
		seen := make(map[string]int, len(deliveries[id]))
		for i, d := range deliveries[id] {
			k := deliveryKey(d)
			if prev, dup := seen[k]; dup {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"exactly-once: stack %d delivered %q from %d twice (positions %d and %d)",
					id, d.Data, d.Origin, prev, i))
				continue
			}
			seen[k] = i
		}
	}
}

// checkTotalOrder verifies every stack's delivery sequence is one
// contiguous window of the reference order: founders anchored at 0, a
// joiner anchored where its first delivery appears in the reference. A
// log shorter than its window (a crashed or evicted stack) is a legal
// prefix; a mismatch inside the window is a total-order violation.
// Returns each stack's anchor offset for the view-cut check.
func (c *Checker) checkTotalOrder(ids []int, deliveries map[int][]dpu.Delivery, ref []dpu.Delivery, refStack int, rep *Report) map[int]int {
	refIndex := make(map[string]int, len(ref))
	for i, d := range ref {
		refIndex[deliveryKey(d)] = i
	}
	offsets := make(map[int]int, len(ids))
	for _, id := range ids {
		log := deliveries[id]
		offsets[id] = 0
		if id == refStack || len(log) == 0 {
			continue
		}
		start := 0
		if len(c.Founders) > 0 && !c.Founders[id] {
			pos, ok := refIndex[deliveryKey(log[0])]
			if !ok {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"total-order: joiner %d starts with %q from %d, absent from the reference order (stack %d)",
					id, log[0].Data, log[0].Origin, refStack))
				continue
			}
			start = pos
			offsets[id] = pos
		}
		for i, d := range log {
			rpos := start + i
			if rpos >= len(ref) {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"total-order: stack %d delivered %d events beyond the reference order's end (first extra: %q from %d)",
					id, len(log)-i, d.Data, d.Origin))
				break
			}
			if deliveryKey(d) != deliveryKey(ref[rpos]) {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"total-order: stack %d position %d delivered %q from %d, reference stack %d has %q from %d",
					id, rpos, d.Data, d.Origin, refStack, ref[rpos].Data, ref[rpos].Origin))
				break
			}
		}
	}
	return offsets
}

// checkGaps verifies the reference order delivers every workload
// sender's sequence numbers contiguously from 0 — a hole in the middle
// of a sender's stream means a message was lost across a switch, an
// epoch boundary or a view change. Only the tail may be missing, and
// only exempt (crashed/evicted) senders may stop short at all.
func (c *Checker) checkGaps(ref []dpu.Delivery, refStack int, rep *Report) {
	maxSeq := map[int]uint64{}
	got := map[int]map[uint64]bool{}
	for _, d := range ref {
		origin, seq, ok := workloadSeq(d.Data)
		if !ok {
			continue
		}
		if got[origin] == nil {
			got[origin] = map[uint64]bool{}
		}
		got[origin][seq] = true
		if seq > maxSeq[origin] {
			maxSeq[origin] = seq
		}
	}
	origins := make([]int, 0, len(got))
	for o := range got {
		origins = append(origins, o)
	}
	sort.Ints(origins)
	for _, o := range origins {
		if c.ExemptOrigins[o] {
			continue
		}
		var missing []uint64
		for s := uint64(0); s <= maxSeq[o]; s++ {
			if !got[o][s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"no-gaps: reference stack %d delivered sender %d up to seq %d but is missing %d seq(s), first %d",
				refStack, o, maxSeq[o], len(missing), missing[0]))
		}
	}
}

// checkViews verifies view agreement: every stack that installs view V
// sees the identical member set, and — where the stack's position in
// the total order is anchored — installs it at the identical commit
// cut (the count of deliveries preceding it).
func (c *Checker) checkViews(ids []int, logs map[int][]dpu.Event, offsets map[int]int, rep *Report) {
	type viewAt struct {
		stack   int
		members string
		cut     int // absolute position in the reference order; -1 unknown
	}
	byID := map[uint64][]viewAt{}
	viewIDs := []uint64{}
	for _, id := range ids {
		ndel := 0
		anchored := len(c.Founders) == 0 || c.Founders[id]
		for _, ev := range logs[id] {
			switch ev.Kind {
			case dpu.EventDelivery:
				ndel++
				anchored = true // a joiner anchors at its first delivery
			case dpu.EventView:
				cut := -1
				if anchored {
					cut = offsets[id] + ndel
				}
				if _, seen := byID[ev.View.ID]; !seen {
					viewIDs = append(viewIDs, ev.View.ID)
				}
				byID[ev.View.ID] = append(byID[ev.View.ID], viewAt{
					stack: id, members: fmt.Sprint(ev.View.Members), cut: cut,
				})
			}
		}
	}
	sort.Slice(viewIDs, func(i, j int) bool { return viewIDs[i] < viewIDs[j] })
	for _, vid := range viewIDs {
		installs := byID[vid]
		for _, v := range installs[1:] {
			if v.members != installs[0].members {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"view-agreement: view %d members differ: stack %d has %s, stack %d has %s",
					vid, installs[0].stack, installs[0].members, v.stack, v.members))
				break
			}
		}
		cut := -1
		for _, v := range installs {
			if v.cut < 0 {
				continue
			}
			if cut < 0 {
				cut = v.cut
				continue
			}
			if v.cut != cut {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"view-agreement: view %d commits at different cuts: stack %d at %d deliveries, stack %d at %d",
					vid, installs[0].stack, cut, v.stack, v.cut))
				break
			}
		}
	}
}

// checkSwitches verifies switch agreement: every stack that completes
// the switch to epoch E reports the identical protocol, and each
// stack's switch epochs are strictly increasing.
func (c *Checker) checkSwitches(ids []int, logs map[int][]dpu.Event, rep *Report) {
	protoByEpoch := map[uint64]string{}
	stackByEpoch := map[uint64]int{}
	for _, id := range ids {
		last := uint64(0)
		haveLast := false
		for _, ev := range logs[id] {
			if ev.Kind != dpu.EventSwitch {
				continue
			}
			sw := ev.Switch
			if haveLast && sw.Epoch <= last {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"switch-agreement: stack %d switch epochs not increasing (%d after %d)", id, sw.Epoch, last))
			}
			last, haveLast = sw.Epoch, true
			if p, seen := protoByEpoch[sw.Epoch]; seen {
				if p != sw.Protocol {
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"switch-agreement: epoch %d runs %s on stack %d but %s on stack %d",
						sw.Epoch, p, stackByEpoch[sw.Epoch], sw.Protocol, id))
				}
			} else {
				protoByEpoch[sw.Epoch] = sw.Protocol
				stackByEpoch[sw.Epoch] = id
			}
		}
	}
}
