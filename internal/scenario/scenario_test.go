package scenario

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// minimal is a tiny inline scenario used by the smoke, determinism and
// fuzz tests: one manual switch under light load, a few hundred virtual
// milliseconds.
const minimal = `
name: minimal
seed: 9
nodes: 3
initial: seq
workload:
  rate: 200
  payload: 24
phases:
  - name: warm
    duration: 300ms
  - name: switched
    duration: 500ms
    actions:
      - {at: 50ms, action: switch, to: ct}
    expect: {protocol: ct}
drain: 400ms
expect:
  final_protocol: ct
  switch_sequence: [ct]
`

func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestMinimalScenario(t *testing.T) {
	sc := mustParse(t, minimal)
	res, err := Run(sc, Options{Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Deliveries == 0 {
		t.Fatal("no deliveries recorded")
	}
	if len(res.Switches) != 1 || res.Switches[0].Protocol != "abcast/ct" {
		t.Fatalf("switches = %+v", res.Switches)
	}
}

// TestCorpusParses is the corpus gate: every scenarios/*.dpu.yaml file
// must parse and validate.
func TestCorpusParses(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range corpus {
		t.Logf("%-24s nodes=%-3d phases=%d seed=%d tags=%v", sc.Name, sc.Nodes, len(sc.Phases), sc.Seed, sc.Tags)
	}
}

// TestCorpus executes every corpus scenario at its committed seed.
// Large-tagged entries are skipped under -race (they run in the plain
// pass and in TestLarge50).
func TestCorpus(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range corpus {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if raceEnabled && sc.HasTag("large") {
				t.Skipf("%s is large-tagged: skipped under -race", sc.Name)
			}
			if testing.Short() && sc.HasTag("large") {
				t.Skipf("%s is large-tagged: skipped under -short", sc.Name)
			}
			res, err := Run(sc, Options{Log: t.Logf})
			if err != nil {
				t.Fatalf("seed %d: %v\nreproduce: go test ./internal/scenario -run 'TestCorpus/%s'", sc.Seed, err, sc.Name)
			}
			t.Logf("%s: %d deliveries, %d switches, %d views, digest %016x, %s virtual in %s wall",
				sc.Name, res.Counts.Deliveries, res.Counts.Switches, res.Counts.Views,
				res.Digest, res.VirtualTime, res.WallTime.Round(time.Millisecond))
		})
	}
}

// TestParity pins the ported timelines to the protocol sequences the
// original Go scenario code in cmd/dpu-bench converged to: the DSL
// port must demonstrate the same adaptation story, phase by phase.
func TestParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity runs three full adaptive scenarios")
	}
	want := map[string][]string{
		// Legacy scenarioDefs wants, in phase order ("" = free-running).
		"loss-ramp":      {"abcast/seq", "abcast/ct", "abcast/seq"},
		"latency-step":   {"abcast/ct", "abcast/seq", "abcast/ct"},
		"partition-flap": {"abcast/seq", "", "abcast/seq"},
	}
	for name, phases := range want {
		name, phases := name, phases
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Phases) != len(phases) {
				t.Fatalf("corpus %s has %d phases, legacy timeline had %d", name, len(sc.Phases), len(phases))
			}
			res, err := Run(sc, Options{Log: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			for i, wantProto := range phases {
				if wantProto == "" {
					continue
				}
				if got := res.Phases[i].EndProtocol; got != wantProto {
					t.Errorf("phase %s converged to %s, legacy timeline converged to %s",
						res.Phases[i].Name, got, wantProto)
				}
			}
		})
	}
}

// TestDeterminism is the reproducibility witness: the same scenario at
// the same seed must produce bit-identical checker event counts and
// the identical event-stream digest across two runs. crash-restart and
// corrupt-under-switch extend the witness over the fault-injection
// surface: restart joins, seeded corruption and checksum rejects are
// all part of the deterministic schedule.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"churn-during-switch", "crash-restart", "corrupt-under-switch"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if a.Counts != b.Counts {
				t.Fatalf("checker counts diverge: %+v vs %+v", a.Counts, b.Counts)
			}
			if a.Digest != b.Digest {
				t.Fatalf("event digests diverge: %016x vs %016x (counts %+v)", a.Digest, b.Digest, a.Counts)
			}
			if a.RejectedFrames != b.RejectedFrames {
				t.Fatalf("rejected-frame counts diverge: %d vs %d", a.RejectedFrames, b.RejectedFrames)
			}
		})
	}
}

// TestSeedSweep runs the sweep scenarios across consecutive seeds. The
// default width keeps the test suite quick; CI raises it with
// DPU_SCENARIO_SWEEP_SEEDS. A failing seed is reported verbatim with
// the exact reproduction command.
func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs full scenarios")
	}
	seeds := 3
	if s := os.Getenv("DPU_SCENARIO_SWEEP_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("DPU_SCENARIO_SWEEP_SEEDS=%q: want a positive integer", s)
		}
		seeds = n
	}
	names := []string{"minimal", "churn-during-switch", "crash-restart", "corrupt-under-switch"}
	if s := os.Getenv("DPU_SCENARIO_SWEEP"); s != "" {
		names = []string{s}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			var sc *Scenario
			if name == "minimal" {
				sc = mustParse(t, minimal)
			} else {
				var err error
				sc, err = ByName(name)
				if err != nil {
					t.Fatal(err)
				}
			}
			for seed := int64(1); seed <= int64(seeds); seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					res, err := Run(sc, Options{Seed: &seed})
					if err != nil {
						t.Fatalf("FAILING SEED %d for scenario %s: %v\nreproduce: DPU_SCENARIO_SWEEP=%s DPU_SCENARIO_SEED=%d go test ./internal/scenario -run 'TestSeedSweep/%s/seed-%d'",
							seed, sc.Name, err, sc.Name, seed, name, seed)
					}
					t.Logf("seed %d: digest %016x, %d deliveries", seed, res.Digest, res.Counts.Deliveries)
				})
			}
		})
	}
}

// TestLarge50 is the acceptance witness for scale: 50 nodes, membership
// churn, two protocol switches and a partition flap, several simulated
// seconds — all inside a 10-second wall budget.
func TestLarge50(t *testing.T) {
	if raceEnabled {
		t.Skip("large-50 is skipped under -race")
	}
	if testing.Short() {
		t.Skip("large-50 runs a 50-node schedule")
	}
	sc, err := ByName("large-50")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Options{Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime > 10*time.Second {
		t.Fatalf("large-50 took %s wall, budget is 10s", res.WallTime)
	}
	t.Logf("large-50: %d deliveries, %d switches, %d views over %s virtual in %s wall",
		res.Counts.Deliveries, res.Counts.Switches, res.Counts.Views, res.VirtualTime,
		res.WallTime.Round(time.Millisecond))
}
