package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/dpu"
)

// Scenario is one parsed timeline: the cluster to build, the
// environment schedule to play, and the outcome to demand.
type Scenario struct {
	Name       string
	Seed       int64
	Nodes      int
	Initial    string // initial protocol (canonical name)
	Transport  string // "sim" (default), "udp" or "tcp"
	Membership bool
	AutoEvict  bool
	Grace      time.Duration
	Tags       []string

	Env      Env
	FD       FDConfig
	Adaptive *Adaptive
	Workload Workload
	Phases   []Phase
	Drain    time.Duration
	Expect   Expect

	// Invariants lists the enabled checkers; empty means all.
	Invariants []string
}

// Env is a network shape; nil fields inherit the previous shape.
type Env struct {
	Latency   *time.Duration
	Jitter    *time.Duration
	Loss      *float64
	Bandwidth *float64
}

// FDConfig tunes the heartbeat failure detector (zero keeps defaults).
type FDConfig struct {
	Interval time.Duration
	Timeout  time.Duration
}

// Adaptive enables the adaptation engine for the run.
type Adaptive struct {
	Policy   string // "loss-sensitive" | "latency-sensitive"
	Interval time.Duration
	Confirm  int
	Cooldown time.Duration
	Advisory bool
}

// Workload is the broadcast load driven through the run.
type Workload struct {
	Rate    float64 // broadcasts per second per sender
	Senders int     // sender stacks 0..Senders-1 (0 = all founders)
	Payload int     // padded payload size in bytes
}

// Phase is one leg of the timeline.
type Phase struct {
	Name     string
	Duration time.Duration
	Env      *Env
	Flap     *Flap
	Actions  []Action
	Expect   PhaseExpect
}

// Flap toggles one link broken/healed every half Period for the whole
// phase.
type Flap struct {
	A, B   int
	Period time.Duration
}

// Action is one scheduled intervention inside a phase.
type Action struct {
	At     time.Duration // offset from the phase start
	Action string        // see actionNames
	Node   int           // add-node/evict/crash/restart/switch initiator (-1 = unset)
	To     string        // switch target protocol
	A, B   int           // partition/heal link (two-way or one-way)
	Loss   float64       // set-loss
	Rate   float64       // corrupt/reorder probability
	Delay  time.Duration // set-delay
	Jitter time.Duration // set-jitter
}

// PhaseExpect is checked when the phase's virtual time has elapsed.
type PhaseExpect struct {
	Protocol string // converged protocol ("" = none demanded)
}

// Expect is checked after the drain.
type Expect struct {
	FinalProtocol     string
	SwitchSequence    []string // exact order of completed switch targets
	MinSwitches       int      // -1 = unset
	MaxSwitches       int      // -1 = unset
	MinViews          int      // -1 = unset; committed view changes
	MinRejectedFrames int      // -1 = unset; checksum-rejected datagrams
}

var actionNames = map[string]bool{
	"add-node": true, "evict": true, "crash": true, "restart": true,
	"switch":    true,
	"partition": true, "heal": true,
	"partition-oneway": true, "heal-oneway": true,
	"corrupt": true, "reorder": true,
	"set-loss": true, "set-delay": true, "set-jitter": true,
}

// knownInvariants names the checkers Parse accepts (and Run enforces).
var knownInvariants = map[string]bool{
	"total-order": true, "exactly-once": true, "no-gaps": true,
	"view-agreement": true, "switch-agreement": true,
}

// Parse decodes one scenario document. Unknown keys, malformed
// durations and out-of-range references are errors — a corpus file
// that parses is a corpus file that runs.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	m, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: top level must be a map")
	}
	d := newDec(m, "")
	sc := &Scenario{
		Seed:  d.int64("seed", 1),
		Nodes: d.int("nodes", 3),
		Name:  d.str("name", ""),
	}
	sc.Initial = canonicalProtocol(d.str("initial", "ct"))
	sc.Transport = d.str("transport", "sim")
	sc.Membership = d.boolean("membership", false)
	sc.AutoEvict = d.boolean("auto_evict", false)
	sc.Grace = d.dur("grace", 0)
	sc.Drain = d.dur("drain", 500*time.Millisecond)
	sc.Tags = d.strList("tags")
	sc.Invariants = d.strList("invariants")
	sc.Env = decodeEnv(d.sub("env"))
	if fd := d.sub("fd"); fd != nil {
		sc.FD = FDConfig{Interval: fd.dur("interval", 0), Timeout: fd.dur("timeout", 0)}
		fd.finish()
	}
	if a := d.sub("adaptive"); a != nil {
		sc.Adaptive = &Adaptive{
			Policy:   a.str("policy", ""),
			Interval: a.dur("interval", 25*time.Millisecond),
			Confirm:  a.int("confirm", 2),
			Cooldown: a.dur("cooldown", 300*time.Millisecond),
			Advisory: a.boolean("advisory", false),
		}
		a.finish()
	}
	if w := d.sub("workload"); w != nil {
		sc.Workload = Workload{
			Rate:    w.float("rate", 200),
			Senders: w.int("senders", 0),
			Payload: w.int("payload", 32),
		}
		w.finish()
	} else {
		sc.Workload = Workload{Rate: 200, Payload: 32}
	}
	for i, pv := range d.list("phases") {
		pm, ok := pv.(map[string]any)
		if !ok {
			d.errf("phases[%d]: must be a map", i)
			continue
		}
		pd := &dec{m: pm, used: map[string]bool{}, path: fmt.Sprintf("phases[%d].", i), errs: d.errs}
		ph := Phase{
			Name:     pd.str("name", fmt.Sprintf("phase-%d", i)),
			Duration: pd.dur("duration", 0),
		}
		if e := pd.sub("env"); e != nil {
			env := decodeEnv(e)
			ph.Env = &env
		}
		if f := pd.sub("flap"); f != nil {
			ph.Flap = &Flap{A: f.int("a", 0), B: f.int("b", 1), Period: f.dur("period", 100*time.Millisecond)}
			f.finish()
		}
		for j, av := range pd.list("actions") {
			am, ok := av.(map[string]any)
			if !ok {
				pd.errf("actions[%d]: must be a map", j)
				continue
			}
			ad := &dec{m: am, used: map[string]bool{}, path: fmt.Sprintf("phases[%d].actions[%d].", i, j), errs: d.errs}
			act := Action{
				At:     ad.dur("at", 0),
				Action: ad.str("action", ""),
				Node:   ad.int("node", -1),
				To:     canonicalProtocol(ad.str("to", "")),
				A:      ad.int("a", 0),
				B:      ad.int("b", 1),
				Loss:   ad.float("loss", 0),
				Rate:   ad.float("rate", 0),
				Delay:  ad.dur("delay", 0),
				Jitter: ad.dur("jitter", 0),
			}
			if !actionNames[act.Action] {
				ad.errf("unknown action %q", act.Action)
			}
			if act.Action == "switch" && act.To == "" {
				ad.errf("switch action needs `to:`")
			}
			if act.Action == "restart" && act.Node < 0 {
				ad.errf("restart action needs `node:`")
			}
			if (act.Action == "corrupt" || act.Action == "reorder") && (act.Rate < 0 || act.Rate > 1) {
				ad.errf("%s rate %v not in [0,1]", act.Action, act.Rate)
			}
			if act.At > ph.Duration {
				ad.errf("at %s exceeds the phase duration %s", act.At, ph.Duration)
			}
			ad.finish()
			ph.Actions = append(ph.Actions, act)
		}
		if ex := pd.sub("expect"); ex != nil {
			ph.Expect.Protocol = canonicalProtocol(ex.str("protocol", ""))
			ex.finish()
		}
		if ph.Duration <= 0 {
			pd.errf("duration must be positive")
		}
		pd.finish()
		sc.Phases = append(sc.Phases, ph)
	}
	sc.Expect = Expect{MinSwitches: -1, MaxSwitches: -1, MinViews: -1, MinRejectedFrames: -1}
	if ex := d.sub("expect"); ex != nil {
		sc.Expect.FinalProtocol = canonicalProtocol(ex.str("final_protocol", ""))
		for _, p := range ex.strList("switch_sequence") {
			sc.Expect.SwitchSequence = append(sc.Expect.SwitchSequence, canonicalProtocol(p))
		}
		sc.Expect.MinSwitches = ex.int("min_switches", -1)
		sc.Expect.MaxSwitches = ex.int("max_switches", -1)
		sc.Expect.MinViews = ex.int("min_views", -1)
		sc.Expect.MinRejectedFrames = ex.int("min_rejected_frames", -1)
		ex.finish()
	}
	d.finish()
	if err := d.err(); err != nil {
		return nil, err
	}
	return sc, sc.validate()
}

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: `name:` is required")
	}
	if sc.Nodes < 1 || sc.Nodes > 512 {
		return fmt.Errorf("scenario %s: nodes %d not in [1,512]", sc.Name, sc.Nodes)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %s: at least one phase is required", sc.Name)
	}
	if !validProtocol(sc.Initial) {
		return fmt.Errorf("scenario %s: unknown initial protocol %q", sc.Name, sc.Initial)
	}
	switch sc.Transport {
	case "sim", "udp", "tcp":
	default:
		return fmt.Errorf("scenario %s: unknown transport %q (known: sim, udp, tcp)", sc.Name, sc.Transport)
	}
	if sc.Transport != "sim" && sc.Env.Bandwidth != nil {
		return fmt.Errorf("scenario %s: bandwidth shaping needs the simulated network (transport: sim)", sc.Name)
	}
	if sc.Adaptive != nil {
		switch sc.Adaptive.Policy {
		case "loss-sensitive", "latency-sensitive":
		default:
			return fmt.Errorf("scenario %s: unknown adaptive policy %q", sc.Name, sc.Adaptive.Policy)
		}
	}
	for _, inv := range sc.Invariants {
		if !knownInvariants[inv] {
			known := make([]string, 0, len(knownInvariants))
			for k := range knownInvariants {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("scenario %s: unknown invariant %q (known: %s)", sc.Name, inv, strings.Join(known, ", "))
		}
	}
	needsMembership := false
	for _, ph := range sc.Phases {
		for _, a := range ph.Actions {
			switch a.Action {
			case "add-node", "evict", "restart":
				needsMembership = true
			case "switch":
				if !validProtocol(a.To) {
					return fmt.Errorf("scenario %s: phase %s switches to unknown protocol %q", sc.Name, ph.Name, a.To)
				}
			}
		}
		if ph.Expect.Protocol != "" && !validProtocol(ph.Expect.Protocol) {
			return fmt.Errorf("scenario %s: phase %s expects unknown protocol %q", sc.Name, ph.Name, ph.Expect.Protocol)
		}
	}
	if needsMembership && !sc.Membership {
		return fmt.Errorf("scenario %s: add-node/evict/restart actions need `membership: true`", sc.Name)
	}
	if sc.Expect.FinalProtocol != "" && !validProtocol(sc.Expect.FinalProtocol) {
		return fmt.Errorf("scenario %s: unknown final protocol %q", sc.Name, sc.Expect.FinalProtocol)
	}
	for _, p := range sc.Expect.SwitchSequence {
		if !validProtocol(p) {
			return fmt.Errorf("scenario %s: unknown protocol %q in switch_sequence", sc.Name, p)
		}
	}
	return nil
}

// HasTag reports whether the scenario carries the tag.
func (sc *Scenario) HasTag(tag string) bool {
	for _, t := range sc.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// canonicalProtocol maps the DSL's short protocol aliases to the
// registered implementation names.
func canonicalProtocol(name string) string {
	switch name {
	case "ct":
		return dpu.ProtocolCT
	case "seq", "sequencer":
		return dpu.ProtocolSequencer
	case "token":
		return dpu.ProtocolToken
	default:
		return name
	}
}

func validProtocol(name string) bool {
	switch name {
	case dpu.ProtocolCT, dpu.ProtocolSequencer, dpu.ProtocolToken:
		return true
	}
	return false
}

func decodeEnv(d *dec) Env {
	var e Env
	if d == nil {
		return e
	}
	if v, ok := d.optDur("latency"); ok {
		e.Latency = &v
	}
	if v, ok := d.optDur("jitter"); ok {
		e.Jitter = &v
	}
	if v, ok := d.optFloat("loss"); ok {
		e.Loss = &v
	}
	if v, ok := d.optFloat("bandwidth"); ok {
		e.Bandwidth = &v
	}
	d.finish()
	return e
}

// dec is a strict map decoder: every key must be consumed, every value
// must type-check, and all failures accumulate into one error. Child
// decoders (sub) share the root's error sink, so one err() call at the
// root reports everything.
type dec struct {
	m    map[string]any
	used map[string]bool
	path string
	errs *[]string
}

func newDec(m map[string]any, path string) *dec {
	return &dec{m: m, used: map[string]bool{}, path: path, errs: new([]string)}
}

func (d *dec) errf(format string, args ...any) {
	*d.errs = append(*d.errs, d.path+fmt.Sprintf(format, args...))
}

func (d *dec) take(key string) (string, bool) {
	v, ok := d.m[key]
	if !ok {
		return "", false
	}
	d.used[key] = true
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a scalar", key)
		return "", false
	}
	return s, true
}

func (d *dec) str(key, def string) string {
	if s, ok := d.take(key); ok {
		return s
	}
	return def
}

func (d *dec) int(key string, def int) int {
	s, ok := d.take(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		d.errf("%s: %q is not an integer", key, s)
		return def
	}
	return n
}

func (d *dec) int64(key string, def int64) int64 {
	s, ok := d.take(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.errf("%s: %q is not an integer", key, s)
		return def
	}
	return n
}

func (d *dec) float(key string, def float64) float64 {
	v, ok := d.optFloat(key)
	if !ok {
		return def
	}
	return v
}

func (d *dec) optFloat(key string) (float64, bool) {
	s, ok := d.take(key)
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.errf("%s: %q is not a number", key, s)
		return 0, false
	}
	return f, true
}

func (d *dec) boolean(key string, def bool) bool {
	s, ok := d.take(key)
	if !ok {
		return def
	}
	switch s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	d.errf("%s: %q is not a boolean", key, s)
	return def
}

func (d *dec) dur(key string, def time.Duration) time.Duration {
	v, ok := d.optDur(key)
	if !ok {
		return def
	}
	return v
}

func (d *dec) optDur(key string) (time.Duration, bool) {
	s, ok := d.take(key)
	if !ok {
		return 0, false
	}
	if s == "0" {
		return 0, true
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.errf("%s: %q is not a duration (use units: 100ms, 2s, 50us)", key, s)
		return 0, false
	}
	return v, true
}

func (d *dec) strList(key string) []string {
	v, ok := d.m[key]
	if !ok {
		return nil
	}
	d.used[key] = true
	l, ok := v.([]any)
	if !ok {
		d.errf("%s: expected a list", key)
		return nil
	}
	out := make([]string, 0, len(l))
	for i, item := range l {
		s, ok := item.(string)
		if !ok {
			d.errf("%s[%d]: expected a scalar", key, i)
			continue
		}
		out = append(out, s)
	}
	return out
}

func (d *dec) list(key string) []any {
	v, ok := d.m[key]
	if !ok {
		return nil
	}
	d.used[key] = true
	l, ok := v.([]any)
	if !ok {
		d.errf("%s: expected a list", key)
		return nil
	}
	return l
}

func (d *dec) sub(key string) *dec {
	v, ok := d.m[key]
	if !ok {
		return nil
	}
	d.used[key] = true
	m, ok := v.(map[string]any)
	if !ok {
		d.errf("%s: expected a map", key)
		return nil
	}
	return &dec{m: m, used: map[string]bool{}, path: d.path + key + ".", errs: d.errs}
}

// finish flags unconsumed keys. Sub-decoder errors propagate through
// the parent's errs (the caller appends them).
func (d *dec) finish() {
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		if !d.used[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.errf("unknown key %q", k)
	}
}

func (d *dec) err() error {
	if len(*d.errs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: %s", strings.Join(*d.errs, "; "))
}
