package scenario

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// realTransports is the matrix axis beyond the default simulated
// fabric: the same timelines, replayed over real loopback sockets.
var realTransports = []string{"udp", "tcp"}

// matrixQuick names the corpus entries every matrix run covers; the
// rest of the corpus joins when DPU_TRANSPORT_MATRIX=full (the CI
// transport-matrix job). The quick set deliberately spans membership
// churn, crash-restart recovery and checksum-rejecting corruption —
// the three hardest things to get right over a real socket.
var matrixQuick = map[string]bool{
	"churn-during-switch":  true,
	"crash-restart":        true,
	"corrupt-under-switch": true,
}

// TestMinimalOverTransports replays the inline minimal scenario over
// each real transport. This is the cheapest end-to-end witness that
// the wall-clock driver, the endpoint book and the Faulty surface hold
// together outside the simulator, so it runs unconditionally.
func TestMinimalOverTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("real-transport runs take wall-clock time")
	}
	for _, tr := range realTransports {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			sc := mustParse(t, minimal)
			res, err := Run(sc, Options{Log: t.Logf, Transport: tr})
			if err != nil {
				t.Fatalf("over %s: %v", tr, err)
			}
			if res.Transport != tr {
				t.Fatalf("result records transport %q, want %q", res.Transport, tr)
			}
			if res.Counts.Deliveries == 0 {
				t.Fatal("no deliveries recorded")
			}
			t.Logf("%s: %d deliveries, digest %016x, %s wall", tr,
				res.Counts.Deliveries, res.Digest, res.WallTime.Round(time.Millisecond))
		})
	}
}

// TestTransportMatrix replays the scenario corpus over real loopback
// sockets. Every run is audited by the full invariant-checker set —
// that audit, repeated per seed and per transport, is the determinism
// witness for real transports (digests are logged, but bit-equality is
// only asserted under the virtual clock; see TestDeterminism).
func TestTransportMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("real-transport runs take wall-clock time")
	}
	full := os.Getenv("DPU_TRANSPORT_MATRIX") == "full"
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range realTransports {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			for _, sc := range corpus {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					if sc.Transport != "" && sc.Transport != "sim" && sc.Transport != tr {
						t.Skipf("%s pins transport %s", sc.Name, sc.Transport)
					}
					if !full && !matrixQuick[sc.Name] {
						t.Skipf("set DPU_TRANSPORT_MATRIX=full to run the whole corpus over %s", tr)
					}
					if sc.HasTag("large") && raceEnabled {
						t.Skipf("%s is large-tagged: skipped under -race", sc.Name)
					}
					// Large-tagged entries run ~50 in-process stacks over
					// thousands of real kernel sockets. Below a few cores
					// the process is CPU-saturated, consensus turns stretch
					// past the failure detector's timeout and the run fails
					// its liveness expectations (never its safety checkers)
					// purely from scheduling starvation. The same scenario
					// is covered at full scale under the virtual clock by
					// TestCorpus, so skip rather than flake.
					if sc.HasTag("large") && runtime.NumCPU() < 4 {
						t.Skipf("%s runs %d stacks over real sockets: needs >=4 CPUs, have %d (full-scale coverage lives in TestCorpus under virtual time)",
							sc.Name, sc.Nodes, runtime.NumCPU())
					}
					res, err := Run(sc, Options{Log: t.Logf, Transport: tr})
					if err != nil {
						t.Fatalf("seed %d over %s: %v\nreproduce: go test ./internal/scenario -run 'TestTransportMatrix/%s/%s'",
							sc.Seed, tr, err, tr, sc.Name)
					}
					t.Logf("%s over %s: %d deliveries, %d switches, %d views, digest %016x, %s wall",
						sc.Name, tr, res.Counts.Deliveries, res.Counts.Switches, res.Counts.Views,
						res.Digest, res.WallTime.Round(time.Millisecond))
				})
			}
		})
	}
}

// TestTransportSweep re-seeds the minimal scenario per transport: each
// seeded run must come out of the checkers green. CI widens the sweep
// with DPU_SCENARIO_SWEEP_SEEDS, exactly like the virtual-time sweep.
func TestTransportSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real-transport runs take wall-clock time")
	}
	seeds := int64(2)
	if s := os.Getenv("DPU_SCENARIO_SWEEP_SEEDS"); s != "" {
		var n int
		for _, c := range s {
			if c < '0' || c > '9' {
				t.Fatalf("DPU_SCENARIO_SWEEP_SEEDS=%q: want a positive integer", s)
			}
			n = n*10 + int(c-'0')
		}
		if n < 1 {
			t.Fatalf("DPU_SCENARIO_SWEEP_SEEDS=%q: want a positive integer", s)
		}
		seeds = int64(n)
	}
	for _, tr := range realTransports {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				seed := seed
				sc := mustParse(t, minimal)
				res, err := Run(sc, Options{Seed: &seed, Transport: tr})
				if err != nil {
					t.Fatalf("FAILING SEED %d over %s: %v", seed, tr, err)
				}
				t.Logf("seed %d over %s: digest %016x, %d deliveries", seed, tr, res.Digest, res.Counts.Deliveries)
			}
		})
	}
}
