package scenario

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/dpu"
)

// Synthetic-stream self-tests: each test fabricates per-stack event
// logs containing exactly one violation and asserts the matching
// checker catches it — so a green corpus run means the invariants were
// actually enforced, not silently skipped.

func delivery(stack, origin int, data string) dpu.Event {
	return dpu.Event{Kind: dpu.EventDelivery, Delivery: dpu.Delivery{
		Stack: stack, Origin: origin, Data: []byte(data), At: time.Unix(0, 0),
	}}
}

func view(id uint64, members ...int) dpu.Event {
	return dpu.Event{Kind: dpu.EventView, View: dpu.View{ID: id, Members: members}}
}

func switchEv(epoch uint64, proto string) dpu.Event {
	return dpu.Event{Kind: dpu.EventSwitch, Switch: dpu.SwitchEvent{Epoch: epoch, Protocol: proto}}
}

// cleanLogs builds identical three-stack logs that satisfy every
// invariant: the baseline each test perturbs.
func cleanLogs() map[int][]dpu.Event {
	logs := map[int][]dpu.Event{}
	for stack := 0; stack < 3; stack++ {
		var log []dpu.Event
		for seq := 0; seq < 4; seq++ {
			for origin := 0; origin < 3; origin++ {
				log = append(log, delivery(stack, origin, fmt.Sprintf("w:%d:%d", origin, seq)))
			}
		}
		logs[stack] = log
	}
	return logs
}

func wantViolation(t *testing.T, rep *Report, invariant string) {
	t.Helper()
	if len(rep.Violations) == 0 {
		t.Fatalf("%s violation not caught (report clean)", invariant)
	}
	for _, v := range rep.Violations {
		if strings.HasPrefix(v, invariant+":") {
			t.Logf("caught: %s", v)
			return
		}
	}
	t.Fatalf("no %s violation among: %v", invariant, rep.Violations)
}

func TestCheckerCleanBaseline(t *testing.T) {
	rep := (&Checker{}).Check(cleanLogs())
	if err := rep.Err(); err != nil {
		t.Fatalf("clean logs reported violations: %v", err)
	}
	if rep.Counts.Deliveries != 36 {
		t.Fatalf("deliveries = %d, want 36", rep.Counts.Deliveries)
	}
}

func TestCheckerCatchesTotalOrderViolation(t *testing.T) {
	logs := cleanLogs()
	// Stack 2 swaps two adjacent deliveries: same set, different order.
	logs[2][4], logs[2][5] = logs[2][5], logs[2][4]
	wantViolation(t, (&Checker{}).Check(logs), "total-order")
}

func TestCheckerCatchesDuplicateDelivery(t *testing.T) {
	logs := cleanLogs()
	// Stack 1 delivers the same broadcast twice (e.g. reissued across a
	// switch without dedup).
	logs[1] = append(logs[1], logs[1][3])
	wantViolation(t, (&Checker{}).Check(logs), "exactly-once")
}

func TestCheckerCatchesDeliveryGap(t *testing.T) {
	logs := cleanLogs()
	// Every stack agrees on an order that skips sender 1's seq 2: the
	// message was dropped across a switch, not reordered.
	for stack := range logs {
		var pruned []dpu.Event
		for _, ev := range logs[stack] {
			if ev.Kind == dpu.EventDelivery && string(ev.Delivery.Data) == "w:1:2" {
				continue
			}
			pruned = append(pruned, ev)
		}
		logs[stack] = pruned
	}
	wantViolation(t, (&Checker{}).Check(logs), "no-gaps")
}

func TestCheckerExemptsRetiredSenders(t *testing.T) {
	logs := cleanLogs()
	for stack := range logs {
		var pruned []dpu.Event
		for _, ev := range logs[stack] {
			if ev.Kind == dpu.EventDelivery && string(ev.Delivery.Data) == "w:1:2" {
				continue
			}
			pruned = append(pruned, ev)
		}
		logs[stack] = pruned
	}
	c := &Checker{ExemptOrigins: map[int]bool{1: true}}
	if err := c.Check(logs).Err(); err != nil {
		t.Fatalf("exempt origin still reported: %v", err)
	}
}

func TestCheckerCatchesViewDisagreement(t *testing.T) {
	logs := cleanLogs()
	// Same view ID, different member sets on two stacks.
	logs[0] = append(logs[0], view(2, 0, 1, 2))
	logs[1] = append(logs[1], view(2, 0, 1))
	wantViolation(t, (&Checker{}).Check(logs), "view-agreement")
}

func TestCheckerCatchesViewCutDisagreement(t *testing.T) {
	logs := cleanLogs()
	// Identical members but installed at different commit cuts: stack 0
	// installs after all 12 deliveries, stack 1 after only 6.
	logs[0] = append(logs[0], view(2, 0, 1, 2))
	logs[1] = append(logs[1][:6:6], view(2, 0, 1, 2))
	wantViolation(t, (&Checker{}).Check(logs), "view-agreement")
}

func TestCheckerCatchesSwitchDisagreement(t *testing.T) {
	logs := cleanLogs()
	// Same epoch, different protocols.
	logs[0] = append(logs[0], switchEv(2, "abcast/ct"))
	logs[1] = append(logs[1], switchEv(2, "abcast/seq"))
	wantViolation(t, (&Checker{}).Check(logs), "switch-agreement")
}

func TestCheckerCatchesNonMonotonicEpochs(t *testing.T) {
	logs := cleanLogs()
	logs[0] = append(logs[0], switchEv(3, "abcast/ct"), switchEv(2, "abcast/seq"))
	wantViolation(t, (&Checker{}).Check(logs), "switch-agreement")
}

func TestCheckerJoinerWindow(t *testing.T) {
	logs := cleanLogs()
	// Stack 3 joined late: it delivered a contiguous suffix of the
	// reference order. That is legal — its window anchors at its first
	// delivery.
	logs[3] = append([]dpu.Event(nil), logs[0][6:]...)
	founders := map[int]bool{0: true, 1: true, 2: true}
	if err := (&Checker{Founders: founders}).Check(logs).Err(); err != nil {
		t.Fatalf("late joiner suffix flagged: %v", err)
	}
	// But a joiner that skips a message inside its window is a
	// total-order violation.
	logs[3] = append(append([]dpu.Event(nil), logs[0][6:8]...), logs[0][9:]...)
	wantViolation(t, (&Checker{Founders: founders}).Check(logs), "total-order")
}

func TestCheckerEnabledSubset(t *testing.T) {
	logs := cleanLogs()
	logs[1] = append(logs[1], logs[1][3]) // duplicate delivery
	// With only total-order enabled, the duplicate goes unreported...
	c := &Checker{Enabled: []string{"total-order"}}
	rep := c.Check(logs)
	for _, v := range rep.Violations {
		if strings.HasPrefix(v, "exactly-once:") {
			t.Fatalf("disabled checker still ran: %s", v)
		}
	}
	// ...and with exactly-once enabled it is caught.
	c = &Checker{Enabled: []string{"exactly-once"}}
	wantViolation(t, c.Check(logs), "exactly-once")
}

func TestCheckerDigestSensitivity(t *testing.T) {
	a := (&Checker{}).Check(cleanLogs())
	b := (&Checker{}).Check(cleanLogs())
	if a.Digest != b.Digest {
		t.Fatalf("identical logs digest differently: %016x vs %016x", a.Digest, b.Digest)
	}
	logs := cleanLogs()
	logs[2][4], logs[2][5] = logs[2][5], logs[2][4]
	if c := (&Checker{}).Check(logs); c.Digest == a.Digest {
		t.Fatal("reordered logs produced the same digest")
	}
}
