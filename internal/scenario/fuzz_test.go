package scenario

import (
	"testing"
	"time"
)

// FuzzParse throws arbitrary bytes at the YAML-subset parser and the
// schema decoder: neither may panic, and a scenario that parses must
// validate deterministically (parse twice, agree twice).
func FuzzParse(f *testing.F) {
	f.Add([]byte(minimal))
	f.Add([]byte("name: x\nphases:\n  - name: p\n    duration: 1s\n"))
	f.Add([]byte("a: [1, {b: 2}, 'c']\n"))
	f.Add([]byte("xs:\n  - k: 1\n    l: [a, b]\n"))
	f.Add([]byte("\t"))
	f.Add([]byte("a: \"unterminated"))
	f.Add([]byte("phases: []\n"))
	corpus, err := Corpus()
	if err != nil {
		f.Fatal(err)
	}
	_ = corpus
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		sc2, err2 := Parse(data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("parse nondeterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if sc.Name != sc2.Name || len(sc.Phases) != len(sc2.Phases) {
			t.Fatalf("parse nondeterministic: %+v vs %+v", sc, sc2)
		}
	})
}

// FuzzScenario drives the full virtual-time engine with fuzzed seeds:
// every seed must run the minimal scenario to completion with all
// invariant checkers passing, because the checkers assert protocol
// safety properties that hold for any fault schedule. A failing seed is
// the reproduction recipe and is reported verbatim.
func FuzzScenario(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	sc, err := Parse([]byte(minimal))
	if err != nil {
		f.Fatal(err)
	}
	// Strip the convergence expectations: under adversarial seeds only
	// the safety invariants are guaranteed, not the exact switch trail.
	sc.Expect = Expect{MinSwitches: -1, MaxSwitches: -1, MinViews: -1}
	for i := range sc.Phases {
		sc.Phases[i].Expect = PhaseExpect{}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		res, err := Run(sc, Options{Seed: &seed})
		if err != nil {
			t.Fatalf("FAILING SEED %d: %v\nreproduce: go test ./internal/scenario -run FuzzScenario -fuzz=^$ with Options{Seed: &seed} at seed=%d",
				seed, err, seed)
		}
		if res.WallTime > 30*time.Second {
			t.Fatalf("seed %d: run took %s wall", seed, res.WallTime)
		}
	})
}
