package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/dpu"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Options tunes one Run.
type Options struct {
	// Seed overrides the scenario's seed when non-nil (seed sweeps).
	Seed *int64
	// Transport overrides the scenario's transport when non-empty
	// ("sim", "udp" or "tcp") — the transport-matrix axis.
	Transport string
	// Log, when set, receives one line per phase (progress narration
	// for CLI drivers; tests leave it nil).
	Log func(format string, args ...any)
}

// PhaseResult records one executed phase.
type PhaseResult struct {
	Name        string
	Start, End  time.Duration // virtual offsets from the run start
	EndProtocol string        // installed protocol at the phase boundary
	Switches    int           // completed switches on the reference stack within the phase
}

// SwitchRecord is one completed protocol replacement on the reference
// stack.
type SwitchRecord struct {
	At       time.Duration // virtual offset from the run start
	Epoch    uint64
	Protocol string
	Reissued int
}

// Result is the outcome of one scenario run that passed every
// invariant and expectation.
type Result struct {
	Name          string
	Seed          int64
	Transport     string // fabric the run executed over: sim, udp or tcp
	Nodes         int    // stacks alive at the end
	Phases        []PhaseResult
	Switches      []SwitchRecord
	Counts        Counts
	Digest        uint64
	FinalProtocol string
	FinalMembers  []int
	// RejectedFrames counts the datagrams the wire checksum refused
	// during this run (the receive-side witness of corrupt actions).
	RejectedFrames uint64
	VirtualTime    time.Duration // simulated time covered
	WallTime       time.Duration // real time spent
}

// Run executes one scenario and audits it. Under `transport: sim`
// (the default) the run happens in virtual time on the simulated
// fabric — deterministic to the bit. Over "udp" or "tcp" the same
// timeline plays on the wall clock over real loopback sockets, with
// the Faulty decorator as the environment-shaping surface; the
// invariant checkers still audit every event stream, but digests are
// schedule-dependent there. The returned error carries the first
// expectation failure or invariant violation; the Result is returned
// even then (when the run got far enough to produce one) so callers
// can report partial evidence.
func Run(sc *Scenario, opts Options) (*Result, error) {
	seed := sc.Seed
	if opts.Seed != nil {
		seed = *opts.Seed
	}
	trKind := sc.Transport
	if trKind == "" {
		trKind = "sim"
	}
	if opts.Transport != "" {
		trKind = opts.Transport
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wallStart := time.Now() //dpulint:ignore clocktime wall_ms result reporting measures real elapsed time, deliberately outside the virtual clock

	// WithFaults is always on: with every rate at zero the decorator
	// consumes no randomness and is schedule-neutral, and it gives the
	// corrupt/reorder/partition-oneway actions a surface to mutate —
	// over real transports it is the ONLY such surface.
	dopts := []dpu.Option{
		dpu.WithSeed(seed),
		dpu.WithInitialProtocol(sc.Initial),
		dpu.WithFaults(),
	}
	var (
		clk  runClock
		pool *endpointPool
	)
	switch trKind {
	case "sim":
		vc := vclock.NewVirtual()
		clk = virtualRunClock{vc}
		dopts = append(dopts, dpu.WithClock(vc))
		// The simulated LAN's defaults (100µs ± 50µs) apply unless the
		// scenario shapes the founding environment explicitly.
		if sc.Env.Latency != nil {
			jitter := *sc.Env.Latency / 2
			if sc.Env.Jitter != nil {
				jitter = *sc.Env.Jitter
			}
			dopts = append(dopts, dpu.WithLatency(*sc.Env.Latency, jitter))
		}
		if sc.Env.Loss != nil {
			dopts = append(dopts, dpu.WithLoss(*sc.Env.Loss))
		}
		if sc.Env.Bandwidth != nil {
			dopts = append(dopts, dpu.WithBandwidth(*sc.Env.Bandwidth))
		}
	case "udp", "tcp":
		if sc.Env.Bandwidth != nil {
			return nil, fmt.Errorf("scenario %s: bandwidth shaping needs the simulated network (transport: sim)", sc.Name)
		}
		// Founders plus one fresh endpoint per admitting action: ids
		// are never reused, so neither are socket addresses. Reservation
		// is bind-then-release, so a port can be stolen in the window —
		// typically by an ephemeral outbound connection of a previous
		// run — and the transport build fails with "address already in
		// use". That race is an artifact of the reservation trick, not
		// of the code under test: re-reserve and retry a few times.
		var (
			tr         transport.Transport
			eps        []string
			founderEps map[int]string
		)
		for attempt := 1; ; attempt++ {
			var err error
			eps, err = reserveEndpoints(trKind, sc.Nodes+sc.joinBudget())
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			book := make(map[transport.Addr]string, sc.Nodes)
			founderEps = make(map[int]string, sc.Nodes)
			for i := 0; i < sc.Nodes; i++ {
				book[transport.Addr(i)] = eps[i]
				founderEps[i] = eps[i]
			}
			if trKind == "udp" {
				tr, err = transport.NewUDP(transport.UDPConfig{Book: book})
			} else {
				tr, err = transport.NewTCP(transport.TCPConfig{Book: book})
			}
			if err == nil {
				break
			}
			if attempt >= 3 {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			logf("scenario %s: endpoint reservation lost a port race (%v); re-reserving", sc.Name, err)
		}
		dopts = append(dopts, dpu.WithTransport(tr))
		if sc.Membership {
			dopts = append(dopts, dpu.WithEndpoints(founderEps))
		}
		pool = &endpointPool{free: eps[sc.Nodes:]}
		clk = newWallRunClock()
	default:
		return nil, fmt.Errorf("scenario %s: unknown transport %q (known: sim, udp, tcp)", sc.Name, trKind)
	}
	if sc.Membership {
		dopts = append(dopts, dpu.WithMembership())
	}
	if sc.AutoEvict {
		dopts = append(dopts, dpu.WithAutoEvict())
	}
	if sc.Grace > 0 {
		dopts = append(dopts, dpu.WithGrace(sc.Grace))
	}
	if sc.FD.Interval > 0 || sc.FD.Timeout > 0 {
		dopts = append(dopts, dpu.WithFailureDetector(sc.FD.Interval, sc.FD.Timeout))
	}
	if a := sc.Adaptive; a != nil {
		var p dpu.AdaptivePolicy
		switch a.Policy {
		case "loss-sensitive":
			p = dpu.LossSensitivePolicy(0, 0)
		case "latency-sensitive":
			p = dpu.LatencySensitivePolicy(0, 0)
		default:
			return nil, fmt.Errorf("scenario %s: unknown adaptive policy %q", sc.Name, a.Policy)
		}
		aopts := []dpu.AdaptiveOption{
			dpu.AdaptiveInterval(a.Interval),
			dpu.AdaptiveConfirm(a.Confirm),
			dpu.AdaptiveCooldown(a.Cooldown),
		}
		if a.Advisory {
			aopts = append(aopts, dpu.Advisory())
		}
		dopts = append(dopts, dpu.WithAdaptive(p, aopts...))
	}

	c, err := dpu.New(sc.Nodes, dopts...)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	defer c.Close()
	if trKind != "sim" {
		// Real transports take the founding environment through the
		// Faulty decorator's shaping surface (the simnet-only founding
		// options cannot apply).
		if sc.Env.Latency != nil {
			jitter := *sc.Env.Latency / 2
			if sc.Env.Jitter != nil {
				jitter = *sc.Env.Jitter
			}
			if err := c.SetDelay(*sc.Env.Latency); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			if err := c.SetJitter(jitter); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
		}
		if sc.Env.Loss != nil {
			if err := c.SetLoss(*sc.Env.Loss); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
		}
	}
	// The reject counter is process-wide; the delta across this run is
	// meaningful because runs execute sequentially (the virtual clock
	// guarantees it under sim; the test harness runs scenarios one at a
	// time over real transports).
	rejectedBefore := metrics.Counters()["wire.frames_rejected"]

	d := &driver{sc: sc, c: c, clk: clk, pool: pool, logf: logf,
		logs:    map[int][]dpu.Event{},
		founder: map[int]bool{},
		exempt:  map[int]bool{},
		retired: map[int]bool{},
	}
	for i := 0; i < sc.Nodes; i++ {
		d.founder[i] = true
		if err := d.subscribe(i); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	d.startWorkload()

	var phases []PhaseResult
	var expectFailure error
	for _, ph := range sc.Phases {
		pr, err := d.runPhase(ph)
		phases = append(phases, pr)
		if err != nil {
			expectFailure = fmt.Errorf("scenario %s: %w", sc.Name, err)
			break
		}
	}

	// Drain: workload off, the backlog settles, in-flight switches and
	// view changes complete.
	d.stopWorkload()
	clk.RunFor(sc.Drain)

	finalProto, finalMembers := d.finalStatus()
	virtual := clk.Elapsed()

	// Tear down before auditing: Close ends every subscription stream,
	// which is what lets the drain goroutines finish and the logs
	// freeze.
	c.Close()
	d.wg.Wait()

	res := &Result{
		Name:           sc.Name,
		Seed:           seed,
		Transport:      trKind,
		Phases:         phases,
		FinalProtocol:  finalProto,
		FinalMembers:   finalMembers,
		RejectedFrames: metrics.Counters()["wire.frames_rejected"] - rejectedBefore,
		VirtualTime:    virtual,
		//dpulint:ignore clocktime wall_ms result reporting measures real elapsed time, deliberately outside the virtual clock
		WallTime: time.Since(wallStart),
	}
	d.mu.Lock()
	logs := d.logs
	aliveStacks := 0
	for id := range logs {
		if !d.retired[id] {
			aliveStacks++
		}
	}
	d.mu.Unlock()
	res.Nodes = aliveStacks

	ck := &Checker{Enabled: sc.Invariants, Founders: d.founder, ExemptOrigins: d.exempt}
	rep := ck.Check(logs)
	res.Counts = rep.Counts
	res.Digest = rep.Digest
	res.Switches = d.referenceSwitches(logs)
	for i := range res.Phases {
		res.Phases[i].Switches = countSwitchesIn(res.Switches, res.Phases[i].Start, res.Phases[i].End)
	}
	if err := rep.Err(); err != nil {
		return res, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if expectFailure != nil {
		return res, expectFailure
	}
	if err := d.checkFinalExpectations(res); err != nil {
		return res, err
	}
	logf("scenario %s: %d deliveries, %d switches, %d views over %s virtual in %s wall",
		sc.Name, res.Counts.Deliveries, res.Counts.Switches, res.Counts.Views,
		res.VirtualTime, res.WallTime.Round(time.Millisecond))
	return res, nil
}

// driver is the mutable state of one run. Under the virtual clock,
// timer callbacks run inline on the clock-owner goroutine; under the
// wall clock (real transports) they fire concurrently on their own
// goroutines — so everything a callback touches is an atomic or sits
// behind the mutex.
type driver struct {
	sc   *Scenario
	c    *dpu.Cluster
	clk  runClock
	pool *endpointPool // nil under sim: every draw is ""
	logf func(string, ...any)

	mu      sync.Mutex
	logs    map[int][]dpu.Event
	founder map[int]bool // immutable after Run's setup
	exempt  map[int]bool // senders with a legitimate ragged tail
	retired map[int]bool // crashed or evicted stacks
	wg      sync.WaitGroup

	workloadStopped atomic.Bool
	flapGen         atomic.Int64
}

// subscribe attaches an Events-stream subscription to the stack and
// drains it into the per-stack log. Block policy: the checkers must see
// every event, and the drain goroutine always consumes.
func (d *driver) subscribe(id int) error {
	n, err := d.c.Node(id)
	if err != nil {
		return err
	}
	sub, err := n.Subscribe(dpu.SubscribeOptions{Events: true, Buffer: 8192, Policy: dpu.Block})
	if err != nil {
		return err
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for ev := range sub.Events() {
			d.mu.Lock()
			d.logs[id] = append(d.logs[id], ev)
			d.mu.Unlock()
		}
	}()
	return nil
}

// startWorkload schedules one self-rearming broadcast chain per sender.
// Each tick runs as a virtual-clock event, so the whole load is part of
// the deterministic schedule. The legacy Cluster.Broadcast is the right
// call here: it hands the payload to the stack without blocking on the
// outstanding window (blocking would deadlock the clock goroutine).
func (d *driver) startWorkload() {
	w := d.sc.Workload
	if w.Rate <= 0 {
		return
	}
	senders := w.Senders
	if senders <= 0 || senders > d.sc.Nodes {
		senders = d.sc.Nodes
	}
	period := time.Duration(float64(time.Second) / w.Rate)
	if period <= 0 {
		period = time.Millisecond
	}
	for s := 0; s < senders; s++ {
		s := s
		seq := uint64(0)
		var tick func()
		tick = func() {
			if d.workloadStopped.Load() || d.isRetired(s) {
				return
			}
			if err := d.c.Broadcast(s, workloadPayload(s, seq, w.Payload)); err != nil {
				// The stack crashed or was evicted mid-run: its stream ends
				// here, legitimately ragged.
				d.markExempt(s)
				return
			}
			seq++
			d.clk.AfterFunc(period, tick)
		}
		// Stagger the chains so senders do not all fire on the same
		// instant.
		d.clk.AfterFunc(time.Duration(s+1)*period/time.Duration(senders+1), tick)
	}
}

func (d *driver) stopWorkload() { d.workloadStopped.Store(true) }

func (d *driver) isRetired(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retired[id]
}

func (d *driver) markExempt(id int) {
	d.mu.Lock()
	d.exempt[id] = true
	d.mu.Unlock()
}

func (d *driver) markRetired(id int) {
	d.mu.Lock()
	d.exempt[id] = true
	d.retired[id] = true
	d.mu.Unlock()
}

// workloadPayload builds `w:<origin>:<seq>` padded to size bytes.
func workloadPayload(origin int, seq uint64, size int) []byte {
	p := fmt.Sprintf("w:%d:%d", origin, seq)
	if len(p) < size {
		b := make([]byte, size)
		copy(b, p)
		b[len(p)] = ':'
		for i := len(p) + 1; i < size; i++ {
			b[i] = 'x'
		}
		return b
	}
	return []byte(p)
}

// runPhase applies the phase's environment, schedules its actions and
// flap as clock events, advances the run clock by the phase duration,
// and checks the phase expectation at the boundary (quiescent under
// the virtual clock; a live snapshot over real transports).
func (d *driver) runPhase(ph Phase) (PhaseResult, error) {
	pr := PhaseResult{Name: ph.Name, Start: d.clk.Elapsed()}
	if env := ph.Env; env != nil {
		if env.Loss != nil {
			if err := d.c.SetLoss(*env.Loss); err != nil {
				return pr, fmt.Errorf("phase %s: %w", ph.Name, err)
			}
		}
		if env.Latency != nil {
			if err := d.c.SetDelay(*env.Latency); err != nil {
				return pr, fmt.Errorf("phase %s: %w", ph.Name, err)
			}
		}
		if env.Jitter != nil {
			if err := d.c.SetJitter(*env.Jitter); err != nil {
				return pr, fmt.Errorf("phase %s: %w", ph.Name, err)
			}
		}
	}
	// Action failures are recorded under a lock: wall-clock callbacks
	// run concurrently with each other and with this goroutine.
	var (
		actMu  sync.Mutex
		actErr error
	)
	fail := func(format string, args ...any) {
		actMu.Lock()
		defer actMu.Unlock()
		if actErr == nil {
			actErr = fmt.Errorf("phase %s: %s", ph.Name, fmt.Sprintf(format, args...))
		}
	}
	for _, a := range ph.Actions {
		a := a
		d.clk.AfterFunc(a.At, func() { d.runAction(ph.Name, a, fail) })
	}
	if f := ph.Flap; f != nil {
		d.startFlap(*f, ph.Duration, fail)
	}
	d.clk.RunFor(ph.Duration)
	d.flapGen.Add(1) // any flap chain of this phase stops rearming
	actMu.Lock()
	err := actErr
	actMu.Unlock()
	if err != nil {
		return pr, err
	}
	pr.End = d.clk.Elapsed()
	proto, _ := d.status()
	pr.EndProtocol = proto
	d.logf("phase %-18s %8s..%8s  protocol=%s",
		ph.Name, pr.Start.Truncate(time.Millisecond), pr.End.Truncate(time.Millisecond), proto)
	if want := ph.Expect.Protocol; want != "" && proto != want {
		// Keep polling for the clock's grace before failing: zero under
		// the virtual clock (the boundary is already quiescent), bounded
		// over real sockets (the switch may straddle the boundary by
		// scheduling noise). The extra wall time shifts later phase
		// boundaries, which real-transport runs tolerate by design.
		deadline := d.clk.Elapsed() + d.clk.ExpectGrace()
		for proto != want && d.clk.Elapsed() < deadline {
			d.clk.RunFor(50 * time.Millisecond)
			proto, _ = d.status()
		}
		if proto != want {
			return pr, fmt.Errorf("phase %s: expected convergence to %s, still on %s after %s (+%s grace)",
				ph.Name, want, proto, ph.Duration, d.clk.ExpectGrace())
		}
		pr.EndProtocol = proto
	}
	return pr, nil
}

// runAction executes one scheduled intervention on the clock goroutine.
// Every branch is non-blocking: a blocking wait here would deadlock the
// virtual clock against the progress it is waiting for.
func (d *driver) runAction(phase string, a Action, fail func(string, ...any)) {
	switch a.Action {
	case "add-node":
		err := d.c.AddNodeAsync(d.pool.next(), func(n *dpu.Node, err error) {
			if err != nil {
				fail("add-node: %v", err)
				return
			}
			// The callback runs on the sponsor's executor at the commit:
			// subscribing here catches the joiner's stream from its first
			// event.
			if err := d.subscribe(n.Index()); err != nil {
				fail("add-node: subscribe joiner %d: %v", n.Index(), err)
			}
		})
		if err != nil {
			fail("add-node: %v", err)
		}
	case "evict":
		victim := a.Node
		if victim < 0 {
			fail("evict: `node:` is required")
			return
		}
		sponsor, ok := d.lowestRunning(victim)
		if !ok {
			fail("evict %d: no other running stack to order the eviction", victim)
			return
		}
		// The victim's stream legitimately ends at the eviction commit.
		d.markRetired(victim)
		if err := d.c.Leave(sponsor, victim); err != nil {
			fail("evict %d: %v", victim, err)
		}
	case "crash":
		if a.Node < 0 {
			fail("crash: `node:` is required")
			return
		}
		d.markRetired(a.Node)
		if err := d.c.Crash(a.Node); err != nil {
			fail("crash %d: %v", a.Node, err)
		}
	case "restart":
		// Revive the crashed/evicted slot as a fresh member: the commit
		// callback runs on the sponsor's executor, so subscribing there
		// catches the revived stack's stream from its first event.
		err := d.c.RestartAtAsync(a.Node, d.pool.next(), func(n *dpu.Node, err error) {
			if err != nil {
				fail("restart %d: %v", a.Node, err)
				return
			}
			if err := d.subscribe(n.Index()); err != nil {
				fail("restart %d: subscribe revived %d: %v", a.Node, n.Index(), err)
			}
		})
		if err != nil {
			fail("restart %d: %v", a.Node, err)
		}
	case "switch":
		initiator := a.Node
		if initiator < 0 {
			var ok bool
			initiator, ok = d.lowestRunning(-1)
			if !ok {
				fail("switch: no running stack")
				return
			}
		}
		if err := d.c.ChangeProtocol(initiator, a.To); err != nil {
			fail("switch to %s: %v", a.To, err)
		}
	case "partition":
		if err := d.c.PartitionLink(a.A, a.B); err != nil {
			fail("partition %d-%d: %v", a.A, a.B, err)
		}
	case "heal":
		if err := d.c.HealLink(a.A, a.B); err != nil {
			fail("heal %d-%d: %v", a.A, a.B, err)
		}
	case "partition-oneway":
		if err := d.c.PartitionOneWay(a.A, a.B); err != nil {
			fail("partition-oneway %d->%d: %v", a.A, a.B, err)
		}
	case "heal-oneway":
		if err := d.c.HealOneWay(a.A, a.B); err != nil {
			fail("heal-oneway %d->%d: %v", a.A, a.B, err)
		}
	case "corrupt":
		if err := d.c.SetCorrupt(a.Rate); err != nil {
			fail("corrupt: %v", err)
		}
	case "reorder":
		if err := d.c.SetReorder(a.Rate); err != nil {
			fail("reorder: %v", err)
		}
	case "set-loss":
		if err := d.c.SetLoss(a.Loss); err != nil {
			fail("set-loss: %v", err)
		}
	case "set-delay":
		if err := d.c.SetDelay(a.Delay); err != nil {
			fail("set-delay: %v", err)
		}
	case "set-jitter":
		if err := d.c.SetJitter(a.Jitter); err != nil {
			fail("set-jitter: %v", err)
		}
	}
}

// startFlap breaks and heals one link every half period until the
// phase ends (the generation counter invalidates the chain at the
// boundary, so a flap never leaks into the next phase).
func (d *driver) startFlap(f Flap, duration time.Duration, fail func(string, ...any)) {
	gen := d.flapGen.Load()
	half := f.Period / 2
	if half <= 0 {
		half = 50 * time.Millisecond
	}
	cut := true
	var toggle func()
	toggle = func() {
		if d.flapGen.Load() != gen {
			// The phase ended mid-flap: leave the link healed.
			if err := d.c.HealLink(f.A, f.B); err != nil {
				fail("flap heal %d-%d: %v", f.A, f.B, err)
			}
			return
		}
		var err error
		if cut {
			err = d.c.PartitionLink(f.A, f.B)
		} else {
			err = d.c.HealLink(f.A, f.B)
		}
		if err != nil {
			fail("flap %d-%d: %v", f.A, f.B, err)
			return
		}
		cut = !cut
		d.clk.AfterFunc(half, toggle)
	}
	d.clk.AfterFunc(0, toggle)
}

// lowestRunning returns the lowest-indexed running stack, skipping
// `skip` (pass -1 to skip none).
func (d *driver) lowestRunning(skip int) (int, bool) {
	for id := 0; id < d.c.N(); id++ {
		if id == skip || d.isRetired(id) {
			continue
		}
		if _, err := d.c.Status(id); err == nil {
			return id, true
		}
	}
	return -1, false
}

// status snapshots the reference stack's protocol and members. Safe on
// the driver goroutine between RunFor calls: the cluster is quiescent,
// and the stack's executor serves the request promptly.
func (d *driver) status() (string, []int) {
	id, ok := d.lowestRunning(-1)
	if !ok {
		return "", nil
	}
	st, err := d.c.Status(id)
	if err != nil {
		return "", nil
	}
	return st.Protocol, st.Members
}

func (d *driver) finalStatus() (string, []int) { return d.status() }

// referenceSwitches extracts the switch sequence of the lowest-indexed
// founder that observed the most switches (the reference trail the
// scenario's switch expectations are checked against). View changes
// make the core re-install the current protocol under a fresh epoch;
// those reinstalls carry the same protocol as the one already running
// and are dropped here so the trail only records real transitions.
func (d *driver) referenceSwitches(logs map[int][]dpu.Event) []SwitchRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	base := d.clk.Base()
	var best []SwitchRecord
	for id := 0; id < d.sc.Nodes; id++ {
		cur := d.sc.Initial
		var recs []SwitchRecord
		for _, ev := range logs[id] {
			if ev.Kind != dpu.EventSwitch {
				continue
			}
			if ev.Switch.Protocol == cur {
				continue // view-change reinstall, not a transition
			}
			cur = ev.Switch.Protocol
			recs = append(recs, SwitchRecord{
				At:       ev.Switch.At.Sub(base),
				Epoch:    ev.Switch.Epoch,
				Protocol: ev.Switch.Protocol,
				Reissued: ev.Switch.Reissued,
			})
		}
		if len(recs) > len(best) {
			best = recs
		}
	}
	return best
}

func countSwitchesIn(switches []SwitchRecord, start, end time.Duration) int {
	n := 0
	for _, s := range switches {
		if s.At > start && s.At <= end {
			n++
		}
	}
	return n
}

// checkFinalExpectations audits the scenario's end-state demands.
func (d *driver) checkFinalExpectations(res *Result) error {
	ex := d.sc.Expect
	if ex.FinalProtocol != "" && res.FinalProtocol != ex.FinalProtocol {
		return fmt.Errorf("scenario %s: final protocol %s, want %s", d.sc.Name, res.FinalProtocol, ex.FinalProtocol)
	}
	if ex.SwitchSequence != nil {
		var got []string
		for _, s := range res.Switches {
			got = append(got, s.Protocol)
		}
		if len(got) != len(ex.SwitchSequence) {
			return fmt.Errorf("scenario %s: switch sequence %v, want %v", d.sc.Name, got, ex.SwitchSequence)
		}
		for i := range got {
			if got[i] != ex.SwitchSequence[i] {
				return fmt.Errorf("scenario %s: switch sequence %v, want %v", d.sc.Name, got, ex.SwitchSequence)
			}
		}
	}
	if ex.MinSwitches >= 0 && len(res.Switches) < ex.MinSwitches {
		return fmt.Errorf("scenario %s: %d switches, want at least %d", d.sc.Name, len(res.Switches), ex.MinSwitches)
	}
	if ex.MaxSwitches >= 0 && len(res.Switches) > ex.MaxSwitches {
		return fmt.Errorf("scenario %s: %d switches, want at most %d (flap suppression failed)", d.sc.Name, len(res.Switches), ex.MaxSwitches)
	}
	if ex.MinViews >= 0 {
		// Views are counted per stack; the per-stack maximum is the
		// number of commits the longest-lived member observed.
		maxViews := 0
		d.mu.Lock()
		for _, log := range d.logs {
			n := 0
			for _, ev := range log {
				if ev.Kind == dpu.EventView {
					n++
				}
			}
			if n > maxViews {
				maxViews = n
			}
		}
		d.mu.Unlock()
		if maxViews < ex.MinViews {
			return fmt.Errorf("scenario %s: %d committed views observed, want at least %d", d.sc.Name, maxViews, ex.MinViews)
		}
	}
	if ex.MinRejectedFrames >= 0 && res.RejectedFrames < uint64(ex.MinRejectedFrames) {
		return fmt.Errorf("scenario %s: %d frames rejected by the wire checksum, want at least %d",
			d.sc.Name, res.RejectedFrames, ex.MinRejectedFrames)
	}
	return nil
}
