package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/scenarios"
)

// Corpus parses every embedded corpus scenario and returns them sorted
// by name. A file that fails to parse fails the whole load: the corpus
// gate in CI runs exactly this.
func Corpus() ([]*Scenario, error) {
	entries, err := scenarios.FS.ReadDir(".")
	if err != nil {
		return nil, err
	}
	var out []*Scenario
	seen := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".dpu.yaml") {
			continue
		}
		data, err := scenarios.FS.ReadFile(e.Name())
		if err != nil {
			return nil, err
		}
		sc, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if prev, dup := seen[sc.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate scenario name %q (also in %s)", e.Name(), sc.Name, prev)
		}
		seen[sc.Name] = e.Name()
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario corpus is empty")
	}
	return out, nil
}

// ByName returns the embedded corpus scenario with the given name.
func ByName(name string) (*Scenario, error) {
	corpus, err := Corpus()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, sc := range corpus {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	return nil, fmt.Errorf("unknown scenario %q (corpus: %s)", name, strings.Join(names, ", "))
}

// LoadFile parses a scenario from a file on disk.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
