package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseYAMLShapes(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want any
	}{
		{"scalar-map", "a: 1\nb: two\n", map[string]any{"a": "1", "b": "two"}},
		{"nested-map", "a:\n  b: 1\n  c: 2\n", map[string]any{"a": map[string]any{"b": "1", "c": "2"}}},
		{"block-list", "xs:\n  - 1\n  - 2\n", map[string]any{"xs": []any{"1", "2"}}},
		{"list-of-maps", "xs:\n  - k: 1\n    l: 2\n  - k: 3\n", map[string]any{"xs": []any{
			map[string]any{"k": "1", "l": "2"}, map[string]any{"k": "3"}}}},
		{"flow-list", "xs: [a, b, c]\n", map[string]any{"xs": []any{"a", "b", "c"}}},
		{"flow-map", "x: {a: 1, b: 2}\n", map[string]any{"x": map[string]any{"a": "1", "b": "2"}}},
		{"flow-map-in-list", "xs:\n  - {a: 1}\n  - {a: 2}\n", map[string]any{"xs": []any{
			map[string]any{"a": "1"}, map[string]any{"a": "2"}}}},
		{"comments", "# header\na: 1 # trailing\nb: 2\n", map[string]any{"a": "1", "b": "2"}},
		{"quoted", `a: "x: y # not a comment"` + "\n", map[string]any{"a": "x: y # not a comment"}},
		{"empty-flow-list", "xs: []\n", map[string]any{"xs": []any{}}},
		{"blank-lines", "a: 1\n\n\nb: 2\n", map[string]any{"a": "1", "b": "2"}},
		{"single-quoted", "a: 'hash # inside'\n", map[string]any{"a": "hash # inside"}},
		{"colon-in-value", "a: w:3:14\n", map[string]any{"a": "w:3:14"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseYAML([]byte(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parsed %#v, want %#v", got, tc.want)
			}
		})
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"tab-indent", "a:\n\tb: 1\n", "tab"},
		{"duplicate-key", "a: 1\na: 2\n", "duplicate"},
		{"bad-indent", "a:\n    b: 1\n   c: 2\n", "indent"},
		{"unterminated-quote", `a: "oops` + "\n", "quote"},
		{"unterminated-flow", "a: [1, 2\n", "flow"},
		{"list-map-mix", "a:\n  - 1\n  b: 2\n", ""},
		{"empty", "", "empty"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.in))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			if tc.want != "" && !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSchemaDefaults(t *testing.T) {
	sc := mustParse(t, "name: d\nphases:\n  - name: p\n    duration: 100ms\n")
	if sc.Seed != 1 || sc.Nodes != 3 || sc.Initial != "abcast/ct" {
		t.Fatalf("defaults: seed=%d nodes=%d initial=%s", sc.Seed, sc.Nodes, sc.Initial)
	}
	if sc.Drain != 500*time.Millisecond {
		t.Fatalf("drain default = %s", sc.Drain)
	}
	if sc.Workload.Rate != 200 || sc.Workload.Payload != 32 || sc.Workload.Senders != 0 {
		t.Fatalf("workload defaults = %+v", sc.Workload)
	}
	if sc.Expect.MinViews != -1 || sc.Expect.MinSwitches != -1 || sc.Expect.MaxSwitches != -1 || sc.Expect.MinRejectedFrames != -1 {
		t.Fatalf("expect defaults = %+v", sc.Expect)
	}
}

func TestSchemaRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"no-name", "nodes: 3\nphases:\n  - name: p\n    duration: 1s\n", "name"},
		{"no-phases", "name: x\n", "phase"},
		{"bad-protocol", "name: x\ninitial: paxos\nphases:\n  - name: p\n    duration: 1s\n", "protocol"},
		{"bad-action", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: explode}\n", "action"},
		{"unknown-key", "name: x\nbogus: 1\nphases:\n  - name: p\n    duration: 1s\n", "bogus"},
		{"bare-duration", "name: x\nphases:\n  - name: p\n    duration: 100\n", "unit"},
		{"too-many-nodes", "name: x\nnodes: 4096\nphases:\n  - name: p\n    duration: 1s\n", "nodes"},
		{"add-node-without-membership", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: add-node}\n", "membership"},
		{"evict-without-membership", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: evict, node: 1}\n", "membership"},
		{"unknown-invariant", "name: x\ninvariants: [total-order, telepathy]\nphases:\n  - name: p\n    duration: 1s\n", "invariant"},
		{"switch-without-target", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: switch}\n", "to"},
		{"restart-without-membership", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: restart, node: 1}\n", "membership"},
		{"restart-without-node", "name: x\nmembership: true\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: restart}\n", "node"},
		{"corrupt-rate-out-of-range", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: corrupt, rate: 1.5}\n", "rate"},
		{"reorder-rate-out-of-range", "name: x\nphases:\n  - name: p\n    duration: 1s\n    actions:\n      - {at: 0ms, action: reorder, rate: -0.1}\n", "rate"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatal("schema accepted invalid scenario")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSchemaProtocolAliases(t *testing.T) {
	for alias, want := range map[string]string{
		"ct": "abcast/ct", "seq": "abcast/seq", "sequencer": "abcast/seq",
		"token": "abcast/token", "abcast/ct": "abcast/ct",
	} {
		sc := mustParse(t, "name: x\ninitial: "+alias+"\nphases:\n  - name: p\n    duration: 1s\n")
		if sc.Initial != want {
			t.Fatalf("alias %q resolved to %q, want %q", alias, sc.Initial, want)
		}
	}
}

func TestSchemaFullDocument(t *testing.T) {
	sc := mustParse(t, `
name: full
seed: 77
nodes: 5
initial: seq
membership: true
auto_evict: true
grace: 250ms
tags: [large, nightly]
env:
  latency: 2ms
  jitter: 100us
  loss: 0.05
fd:
  interval: 50ms
  timeout: 250ms
adaptive:
  policy: loss-sensitive
  interval: 20ms
  confirm: 3
  cooldown: 150ms
workload:
  rate: 500
  senders: 2
  payload: 64
phases:
  - name: a
    duration: 1s
    env:
      loss: 0.2
    flap:
      a: 0
      b: 1
      period: 100ms
    actions:
      - {at: 10ms, action: switch, to: ct, node: 2}
      - {at: 20ms, action: partition, a: 1, b: 3}
      - {at: 30ms, action: set-loss, loss: 0.5}
    expect: {protocol: ct}
drain: 1s
invariants: [total-order, exactly-once]
expect:
  final_protocol: ct
  switch_sequence: [ct]
  min_switches: 1
  max_switches: 3
  min_views: 0
`)
	if sc.Seed != 77 || sc.Nodes != 5 || !sc.Membership || !sc.AutoEvict {
		t.Fatalf("top-level fields: %+v", sc)
	}
	if sc.Env.Loss == nil || *sc.Env.Loss != 0.05 || *sc.Env.Latency != 2*time.Millisecond {
		t.Fatalf("env: %+v", sc.Env)
	}
	if sc.Adaptive == nil || sc.Adaptive.Policy != "loss-sensitive" || sc.Adaptive.Confirm != 3 {
		t.Fatalf("adaptive: %+v", sc.Adaptive)
	}
	ph := sc.Phases[0]
	if ph.Flap == nil || ph.Flap.Period != 100*time.Millisecond {
		t.Fatalf("flap: %+v", ph.Flap)
	}
	if len(ph.Actions) != 3 || ph.Actions[0].To != "abcast/ct" || ph.Actions[0].Node != 2 {
		t.Fatalf("actions: %+v", ph.Actions)
	}
	if ph.Expect.Protocol != "abcast/ct" {
		t.Fatalf("phase expect: %+v", ph.Expect)
	}
	if !reflect.DeepEqual(sc.Invariants, []string{"total-order", "exactly-once"}) {
		t.Fatalf("invariants: %v", sc.Invariants)
	}
	if sc.Expect.MinSwitches != 1 || sc.Expect.MaxSwitches != 3 || sc.Expect.MinViews != 0 {
		t.Fatalf("expect: %+v", sc.Expect)
	}
}
