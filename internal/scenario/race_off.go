//go:build !race

package scenario

// raceEnabled reports whether the race detector is compiled in. Large
// corpus entries are skipped under -race: the detector multiplies both
// memory and CPU several-fold, and the 50-node flood schedule is
// already the most expensive thing in the suite.
const raceEnabled = false
