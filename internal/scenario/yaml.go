// Package scenario executes declarative fault-injection timelines
// against a dpu cluster under discrete-event virtual time.
//
// A scenario file (conventionally *.dpu.yaml) scripts the environment
// — loss/delay ramps, link flaps, partitions — together with a
// workload, membership churn and protocol-switch triggers, plus the
// outcome the run must converge to. The driver executes it against the
// built-in simulated network on a virtual clock, so a 50-node run over
// tens of simulated seconds finishes in well under a second of wall
// time, and always-on invariant checkers (total order, exactly-once,
// gap-freeness across switches, view agreement) audit every delivery
// stream. See docs/SCENARIOS.md for the DSL reference.
package scenario

import (
	"fmt"
	"strings"
)

// parseYAML parses the YAML subset the scenario DSL uses into
// map[string]any / []any / string trees. Supported: block maps and
// lists by two-or-more-space indentation, `- ` list items (including
// inline `- key: value` map starts), flow lists `[a, b]`, flow maps
// `{k: v}`, single- and double-quoted scalars, and `#` comments. Not
// supported (and not needed): anchors, tags, multi-line scalars,
// multiple documents. Scalars stay strings; the schema layer types
// them.
func parseYAML(data []byte) (any, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yparser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected de-indent to %d columns", p.lines[p.pos].no, p.lines[p.pos].indent)
	}
	return v, nil
}

type yline struct {
	no     int // 1-based source line
	indent int
	text   string // content with indentation and comments stripped
}

// splitLines strips comments and blank lines and records indentation.
func splitLines(src string) ([]yline, error) {
	var out []yline
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		if strings.Contains(raw, "\t") {
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") {
				return nil, fmt.Errorf("yaml line %d: tab indentation (use spaces)", no)
			}
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		out = append(out, yline{no: no, indent: indent, text: trimmed})
	}
	return out, nil
}

// stripComment removes a trailing `# ...` comment, respecting quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			// YAML requires a comment to start a line or follow whitespace;
			// "a#b" is a plain scalar.
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type yparser struct {
	lines []yline
	pos   int
}

// parseBlock parses the run of lines at exactly `indent` columns
// (descending into deeper children) and returns the list or map they
// form.
func (p *yparser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of input")
	}
	if ln := p.lines[p.pos]; ln.indent != indent {
		return nil, fmt.Errorf("yaml line %d: expected %d-column indentation, got %d", ln.no, indent, ln.indent)
	}
	if isListItem(p.lines[p.pos].text) {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yparser) parseList(indent int) (any, error) {
	list := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation inside list", ln.no)
		}
		if !isListItem(ln.text) {
			return nil, fmt.Errorf("yaml line %d: expected `- ` list item", ln.no)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		switch {
		case rest == "":
			// `-` alone: the item is the deeper block that follows.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty list item", ln.no)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		case isMapEntry(rest):
			// `- key: value`: an inline map start. The dash indents the
			// item's map by two extra columns; rewrite this line as its
			// first entry and parse the map in place.
			p.lines[p.pos] = yline{no: ln.no, indent: indent + 2, text: rest}
			v, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		default:
			p.pos++
			v, err := parseScalar(rest, ln.no)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
	}
	return list, nil
}

// isMapEntry reports whether text begins a `key:` map entry (a colon at
// top level, outside quotes and brackets, followed by space or EOL).
func isMapEntry(text string) bool {
	k, _, ok := splitKey(text)
	return ok && k != ""
}

// splitKey splits `key: value` at the first eligible colon.
func splitKey(text string) (key, value string, ok bool) {
	var quote byte
	depth := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i+1 == len(text) || text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
			}
		}
	}
	return "", "", false
}

func (p *yparser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation", ln.no)
		}
		key, value, ok := splitKey(ln.text)
		if !ok || key == "" {
			return nil, fmt.Errorf("yaml line %d: expected `key: value`", ln.no)
		}
		key = unquote(key)
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.no, key)
		}
		p.pos++
		if value != "" {
			v, err := parseScalar(value, ln.no)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Bare `key:`: a nested block if deeper lines follow, else empty.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = ""
		}
	}
	return m, nil
}

// parseScalar types a flow value: quoted string, flow list, flow map,
// or bare string.
func parseScalar(s string, lineno int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case len(s) >= 2 && (s[0] == '"' || s[0] == '\''):
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("yaml line %d: unterminated quote", lineno)
		}
		return s[1 : len(s)-1], nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow list", lineno)
		}
		items, err := splitFlow(s[1:len(s)-1], lineno)
		if err != nil {
			return nil, err
		}
		list := []any{}
		for _, it := range items {
			v, err := parseScalar(it, lineno)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
		return list, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow map", lineno)
		}
		items, err := splitFlow(s[1:len(s)-1], lineno)
		if err != nil {
			return nil, err
		}
		m := map[string]any{}
		for _, it := range items {
			key, value, ok := splitKey(it)
			if !ok || key == "" {
				return nil, fmt.Errorf("yaml line %d: expected `key: value` in flow map", lineno)
			}
			key = unquote(key)
			if _, dup := m[key]; dup {
				return nil, fmt.Errorf("yaml line %d: duplicate key %q", lineno, key)
			}
			v, err := parseScalar(value, lineno)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		return m, nil
	default:
		return s, nil
	}
}

// splitFlow splits a flow body at top-level commas.
func splitFlow(s string, lineno int) ([]string, error) {
	var (
		out   []string
		start int
		quote byte
		depth int
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("yaml line %d: unbalanced brackets", lineno)
			}
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("yaml line %d: unterminated quote", lineno)
	}
	if depth != 0 {
		return nil, fmt.Errorf("yaml line %d: unbalanced brackets", lineno)
	}
	if last := strings.TrimSpace(s[start:]); last != "" {
		out = append(out, last)
	}
	return out, nil
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
