package scenario

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/vclock"
)

// runClock is the driver's view of time. Under `transport: sim` it is
// the virtual clock — RunFor executes the whole event schedule inline
// and deterministically. Over real-socket transports (udp, tcp) it is
// the wall clock: RunFor genuinely sleeps while the cluster runs on
// kernel timers, and AfterFunc callbacks fire on their own goroutines,
// which is why the driver's callback state is atomics-and-mutex safe.
type runClock interface {
	AfterFunc(d time.Duration, fn func())
	RunFor(d time.Duration)
	Elapsed() time.Duration
	Base() time.Time
	// ExpectGrace is how long a phase-boundary expectation may keep
	// polling before it fails. Zero under the virtual clock: there the
	// boundary is quiescent by construction, so an unmet expectation is
	// already final. Over real sockets the boundary is just a point in
	// wall time — a 50-stack protocol switch can straddle it by a few
	// hundred milliseconds of scheduling noise without anything being
	// wrong, so the driver grants a bounded convergence window.
	ExpectGrace() time.Duration
}

// virtualRunClock adapts vclock.Virtual (whose AfterFunc returns a
// Timer handle the driver never cancels).
type virtualRunClock struct{ *vclock.Virtual }

func (v virtualRunClock) AfterFunc(d time.Duration, fn func()) { v.Virtual.AfterFunc(d, fn) }

func (v virtualRunClock) ExpectGrace() time.Duration { return 0 }

// wallRunClock drives real-transport runs. The dpulint clocktime
// exemptions are deliberate: this type exists precisely to leave the
// virtual-time discipline when the sockets underneath are real.
type wallRunClock struct{ base time.Time }

func newWallRunClock() *wallRunClock {
	return &wallRunClock{base: time.Now()} //dpulint:ignore clocktime wall-clock driver for real-socket transports
}

func (w *wallRunClock) AfterFunc(d time.Duration, fn func()) {
	time.AfterFunc(d, fn) //dpulint:ignore clocktime wall-clock driver for real-socket transports
}

func (w *wallRunClock) RunFor(d time.Duration) {
	time.Sleep(d) //dpulint:ignore clocktime wall-clock driver for real-socket transports
}

func (w *wallRunClock) Elapsed() time.Duration {
	return time.Since(w.base) //dpulint:ignore clocktime wall-clock driver for real-socket transports
}

func (w *wallRunClock) Base() time.Time { return w.base }

func (w *wallRunClock) ExpectGrace() time.Duration { return 2 * time.Second }

// reserveEndpoints binds n ephemeral loopback sockets of the given
// kind ("udp" or "tcp"), records their addresses and releases them, so
// the transport about to be built can re-bind them. The usual
// reservation caveat applies — another process could grab a port in
// the window — which is acceptable for test drivers on loopback.
func reserveEndpoints(kind string, n int) ([]string, error) {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch kind {
		case "udp":
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("reserve udp endpoint: %w", err)
			}
			out = append(out, pc.LocalAddr().String())
			pc.Close()
		case "tcp":
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("reserve tcp endpoint: %w", err)
			}
			out = append(out, l.Addr().String())
			l.Close()
		default:
			return nil, fmt.Errorf("reserve endpoints: unknown transport %q", kind)
		}
	}
	return out, nil
}

// endpointPool hands out pre-reserved endpoints to add-node and
// restart actions over real transports (each admission needs a fresh
// socket address; ids — and therefore endpoints — are never reused).
// The nil pool is the simulated network: every draw is the empty
// endpoint, which is what the simulated fabric expects.
type endpointPool struct {
	mu   sync.Mutex
	free []string
}

func (p *endpointPool) next() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return ""
	}
	ep := p.free[0]
	p.free = p.free[1:]
	return ep
}

// joinBudget counts the actions that admit a member over the run — the
// number of extra endpoints a real-transport run must reserve up front.
func (sc *Scenario) joinBudget() int {
	n := 0
	for _, ph := range sc.Phases {
		for _, a := range ph.Actions {
			if a.Action == "add-node" || a.Action == "restart" {
				n++
			}
		}
	}
	return n
}
