// Package simnet is the network substrate substituting for the paper's
// cluster (7 PCs on a 100Base-TX switch). It is an in-memory datagram
// fabric with a parameterised fault and latency model: one-way base
// latency, uniform jitter, a bandwidth term proportional to packet size,
// probabilistic loss and duplication, link cuts (partitions) and
// endpoint crashes. Packets are delivered asynchronously on timer
// goroutines; receivers re-inject them into their stack's executor.
//
// The model is deliberately simple but exercises exactly the code paths
// the protocols depend on: variable delay (reordering across sources),
// loss (retransmission), duplication (dedup) and partitions (failure
// detection and consensus rounds).
//
// The stack does not use this package directly: transport.Sim adapts a
// Network to the internal/transport interface, next to the real-socket
// backend (see internal/transport).
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Addr identifies an endpoint (one per stack).
type Addr int

// Config parameterises the fabric. The zero value is a perfect network
// with zero latency.
type Config struct {
	// Seed makes packet fates (loss, jitter, duplication) reproducible.
	Seed int64
	// BaseLatency is the one-way propagation delay.
	BaseLatency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthBps, when > 0, adds size*8/BandwidthBps of transmission
	// delay per packet.
	BandwidthBps float64
	// SerializeEgress, when true together with BandwidthBps, models a
	// per-NIC transmit queue: a sender's packets serialize through its
	// link, so fan-out (n-1 unicasts per broadcast) costs grow with the
	// group size — the effect that makes larger groups slower on real
	// hardware.
	SerializeEgress bool
	// EgressQueueLimit bounds the transmit queue (as queueing delay):
	// packets that would wait longer are tail-dropped, like a real NIC
	// or switch buffer. 0 means a 50ms default when SerializeEgress is
	// on. Without a bound, congestion turns into unbounded bufferbloat
	// instead of the loss that congestion control needs to observe.
	EgressQueueLimit time.Duration
	// LossRate is the probability a packet is dropped, in [0, 1].
	LossRate float64
	// DupRate is the probability a packet is delivered twice.
	DupRate float64
	// LoopbackLatency is the delay for self-addressed packets.
	LoopbackLatency time.Duration
	// Clock supplies delivery timers and the egress-queue timebase. Nil
	// means the wall clock; a vclock.Virtual runs the whole fabric under
	// deterministic virtual time. Fixed at New; Update cannot change it.
	Clock vclock.Clock
}

// Stats counts fabric activity. Retrieve a snapshot with Network.Stats.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // loss-model drops
	QueueDrops uint64 // egress-queue tail drops (congestion)
	Cut        uint64 // drops due to partitions or down endpoints
	Duplicated uint64
	Bytes      uint64
}

// ErrClosed is returned by operations on a closed network.
var ErrClosed = errors.New("simnet: network closed")

type link struct{ a, b Addr }

func mkLink(a, b Addr) link {
	if a > b {
		a, b = b, a
	}
	return link{a, b}
}

// Network is the shared fabric connecting all endpoints of a group.
type Network struct {
	mu      sync.Mutex
	cfg     Config
	clock   vclock.Clock
	rng     *rand.Rand
	eps     map[Addr]*Endpoint
	cuts    map[link]bool
	down    map[Addr]bool
	latency map[link]time.Duration // per-link override
	egress  map[Addr]time.Time     // per-NIC transmit queue tail
	timers  map[vclock.Timer]struct{}
	stats   Stats
	closed  bool
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Wall
	}
	return &Network{
		cfg:     cfg,
		clock:   clock,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		eps:     make(map[Addr]*Endpoint),
		cuts:    make(map[link]bool),
		down:    make(map[Addr]bool),
		latency: make(map[link]time.Duration),
		egress:  make(map[Addr]time.Time),
		timers:  make(map[vclock.Timer]struct{}),
	}
}

// Endpoint is one stack's attachment point.
type Endpoint struct {
	net  *Network
	addr Addr
	recv func(from Addr, data []byte)
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Close detaches the endpoint; in-flight packets to it are discarded
// and the address becomes available again.
func (e *Endpoint) Close() {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.eps[e.addr] == e {
		delete(e.net.eps, e.addr)
	}
}

// Open attaches an endpoint at addr. recv is invoked on a timer
// goroutine for every delivered packet; it must hand the packet to the
// stack's executor and return quickly.
func (n *Network) Open(addr Addr, recv func(from Addr, data []byte)) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.eps[addr]; dup {
		return nil, fmt.Errorf("simnet: endpoint %d already open", addr)
	}
	ep := &Endpoint{net: n, addr: addr, recv: recv}
	n.eps[addr] = ep
	return ep, nil
}

// Send transmits data to the endpoint at to. The data is copied; the
// caller may reuse the buffer. Sending never blocks.
func (e *Endpoint) Send(to Addr, data []byte) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.down[e.addr] {
		n.mu.Unlock()
		return
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(data))
	if n.down[to] || n.cuts[mkLink(e.addr, to)] {
		n.stats.Cut++
		n.mu.Unlock()
		return
	}
	if e.addr != to && n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.Dropped++
		n.mu.Unlock()
		return
	}
	delay, ok := n.delayLocked(e.addr, to, len(data))
	if !ok {
		n.stats.QueueDrops++
		n.mu.Unlock()
		return
	}
	dup := e.addr != to && n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate
	var dupDelay time.Duration
	if dup {
		var dupOK bool
		dupDelay, dupOK = n.delayLocked(e.addr, to, len(data))
		dup = dupOK
		if dupOK {
			n.stats.Duplicated++
		}
	}
	buf := append([]byte(nil), data...)
	n.scheduleLocked(delay, e.addr, to, buf)
	if dup {
		n.scheduleLocked(dupDelay, e.addr, to, buf)
	}
	n.mu.Unlock()
}

// delayLocked computes one packet's delay; n.mu must be held. The
// second result is false when the sender's egress queue is full and the
// packet is tail-dropped.
func (n *Network) delayLocked(from, to Addr, size int) (time.Duration, bool) {
	if from == to {
		return n.cfg.LoopbackLatency, true
	}
	d := n.cfg.BaseLatency
	if ov, ok := n.latency[mkLink(from, to)]; ok {
		d = ov
	}
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	if n.cfg.BandwidthBps > 0 {
		tx := time.Duration(float64(size*8) / n.cfg.BandwidthBps * float64(time.Second))
		if n.cfg.SerializeEgress {
			// The packet leaves only when the NIC's queue has drained;
			// a queue beyond the limit tail-drops instead.
			limit := n.cfg.EgressQueueLimit
			if limit <= 0 {
				limit = 50 * time.Millisecond
			}
			now := n.clock.Now()
			tail := n.egress[from]
			if tail.Before(now) {
				tail = now
			}
			// Tail-drop when the backlog (waiting time) exceeds the
			// limit. The packet's own transmission time is not counted:
			// any packet can pass an idle link, however large.
			if tail.Sub(now) > limit {
				return 0, false
			}
			tail = tail.Add(tx)
			n.egress[from] = tail
			d += tail.Sub(now)
		} else {
			d += tx
		}
	}
	return d, true
}

// scheduleLocked arms the delivery timer; n.mu must be held.
func (n *Network) scheduleLocked(delay time.Duration, from, to Addr, data []byte) {
	var tm vclock.Timer
	tm = n.clock.AfterFunc(delay, func() {
		n.mu.Lock()
		delete(n.timers, tm)
		if n.closed || n.down[to] || n.cuts[mkLink(from, to)] {
			n.stats.Cut++
			n.mu.Unlock()
			return
		}
		ep := n.eps[to]
		if ep == nil {
			n.stats.Cut++
			n.mu.Unlock()
			return
		}
		n.stats.Delivered++
		recv := ep.recv
		n.mu.Unlock()
		recv(from, data)
	})
	n.timers[tm] = struct{}{}
}

// Cut severs the bidirectional link between a and b (partition).
func (n *Network) Cut(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts[mkLink(a, b)] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cuts, mkLink(a, b))
}

// Isolate cuts every link touching a (full partition of one node).
func (n *Network) Isolate(a Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.eps {
		if other != a {
			n.cuts[mkLink(a, other)] = true
		}
	}
}

// SetDown marks an endpoint crashed (true) or recovered (false).
// Packets from and to a down endpoint are silently discarded.
func (n *Network) SetDown(a Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[a] = down
}

// SetLinkLatency overrides the base latency of one link.
func (n *Network) SetLinkLatency(a, b Addr, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency[mkLink(a, b)] = d
}

// Update atomically adjusts the configuration (e.g. to change the loss
// rate mid-experiment). The seed and RNG are unaffected.
func (n *Network) Update(fn func(*Config)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(&n.cfg)
}

// Stats returns a snapshot of fabric counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the fabric down: pending deliveries are cancelled and
// subsequent sends discarded.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for tm := range n.timers {
		tm.Stop()
	}
	n.timers = make(map[vclock.Timer]struct{})
}
