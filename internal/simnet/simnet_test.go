package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector gathers delivered packets.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	from []Addr
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) recv(from Addr, data []byte) {
	c.mu.Lock()
	c.got = append(c.got, data)
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d packets (got %d)", n, i)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func TestBasicDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	c := newCollector()
	a, err := n.Open(0, func(Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(1, c.recv); err != nil {
		t.Fatal(err)
	}
	a.Send(1, []byte("hi"))
	c.wait(t, 1)
	if string(c.got[0]) != "hi" || c.from[0] != 0 {
		t.Errorf("got %q from %d", c.got[0], c.from[0])
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDataIsCopiedOnSend(t *testing.T) {
	n := New(Config{BaseLatency: 5 * time.Millisecond})
	defer n.Close()
	c := newCollector()
	a, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	buf := []byte("original")
	a.Send(1, buf)
	copy(buf, "MUTATED!")
	c.wait(t, 1)
	if string(c.got[0]) != "original" {
		t.Errorf("delivered %q; sender mutation leaked", c.got[0])
	}
}

func TestSelfSendUsesLoopback(t *testing.T) {
	n := New(Config{BaseLatency: time.Hour}) // would time out if used
	defer n.Close()
	c := newCollector()
	ep, _ := n.Open(0, c.recv)
	ep.Send(0, []byte("self"))
	c.wait(t, 1)
}

func TestLatencyIsApplied(t *testing.T) {
	const lat = 50 * time.Millisecond
	n := New(Config{BaseLatency: lat})
	defer n.Close()
	c := newCollector()
	a, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	start := time.Now()
	a.Send(1, []byte("x"))
	c.wait(t, 1)
	if el := time.Since(start); el < lat {
		t.Errorf("delivered after %v, want >= %v", el, lat)
	}
}

func TestBandwidthAddsSizeProportionalDelay(t *testing.T) {
	// 1 Mbps: a 12500-byte packet costs 100 ms of transmission delay.
	n := New(Config{BandwidthBps: 1e6})
	defer n.Close()
	c := newCollector()
	a, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	start := time.Now()
	a.Send(1, make([]byte, 12500))
	c.wait(t, 1)
	if el := time.Since(start); el < 90*time.Millisecond {
		t.Errorf("delivered after %v, want ~100ms", el)
	}
}

func TestLossRateDropsRoughlyTheRightFraction(t *testing.T) {
	n := New(Config{Seed: 42, LossRate: 0.5})
	defer n.Close()
	var delivered atomic.Int64
	a, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, func(Addr, []byte) { delivered.Add(1) })
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(1, []byte{1})
	}
	time.Sleep(100 * time.Millisecond)
	got := delivered.Load()
	if got < total*3/10 || got > total*7/10 {
		t.Errorf("delivered %d of %d with 50%% loss; outside [30%%,70%%]", got, total)
	}
	st := n.Stats()
	if st.Dropped == 0 {
		t.Error("no drops recorded")
	}
	if st.Dropped+uint64(got) != total {
		t.Errorf("dropped %d + delivered %d != %d", st.Dropped, got, total)
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{Seed: 7, DupRate: 1.0})
	defer n.Close()
	var delivered atomic.Int64
	a, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, func(Addr, []byte) { delivered.Add(1) })
	a.Send(1, []byte{1})
	time.Sleep(50 * time.Millisecond)
	if got := delivered.Load(); got != 2 {
		t.Errorf("delivered %d, want 2 (dup rate 1.0)", got)
	}
}

func TestCutBlocksBothDirectionsAndHealRestores(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	c0, c1 := newCollector(), newCollector()
	e0, _ := n.Open(0, c0.recv)
	e1, _ := n.Open(1, c1.recv)
	n.Cut(0, 1)
	e0.Send(1, []byte("a"))
	e1.Send(0, []byte("b"))
	time.Sleep(30 * time.Millisecond)
	if c0.count() != 0 || c1.count() != 0 {
		t.Error("packets crossed a cut link")
	}
	n.Heal(0, 1)
	e0.Send(1, []byte("c"))
	c1.wait(t, 1)
}

func TestIsolateCutsAllLinks(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	c := newCollector()
	e0, _ := n.Open(0, func(Addr, []byte) {})
	e1, _ := n.Open(1, func(Addr, []byte) {})
	n.Open(2, c.recv)
	n.Isolate(2)
	e0.Send(2, []byte("x"))
	e1.Send(2, []byte("y"))
	time.Sleep(30 * time.Millisecond)
	if c.count() != 0 {
		t.Error("isolated node received packets")
	}
}

func TestDownEndpointDropsTraffic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	c := newCollector()
	e0, _ := n.Open(0, c.recv)
	e1, _ := n.Open(1, c.recv)
	n.SetDown(1, true)
	e0.Send(1, []byte("to-down"))   // to a down node
	e1.Send(0, []byte("from-down")) // from a down node
	time.Sleep(30 * time.Millisecond)
	if c.count() != 0 {
		t.Error("down endpoint exchanged traffic")
	}
	n.SetDown(1, false)
	e1.Send(0, []byte("recovered"))
	c.wait(t, 1)
}

func TestInFlightPacketDroppedWhenLinkCutDuringFlight(t *testing.T) {
	n := New(Config{BaseLatency: 60 * time.Millisecond})
	defer n.Close()
	c := newCollector()
	e0, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	e0.Send(1, []byte("x"))
	n.Cut(0, 1) // cut while the packet is in flight
	time.Sleep(150 * time.Millisecond)
	if c.count() != 0 {
		t.Error("in-flight packet survived a cut")
	}
}

func TestCloseCancelsInFlight(t *testing.T) {
	n := New(Config{BaseLatency: 60 * time.Millisecond})
	c := newCollector()
	e0, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	e0.Send(1, []byte("x"))
	n.Close()
	time.Sleep(120 * time.Millisecond)
	if c.count() != 0 {
		t.Error("packet delivered after Close")
	}
	if _, err := n.Open(2, c.recv); err != ErrClosed {
		t.Errorf("Open after Close: err = %v, want ErrClosed", err)
	}
}

func TestDuplicateOpenRejected(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	if _, err := n.Open(0, func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(0, func(Addr, []byte) {}); err == nil {
		t.Error("duplicate Open succeeded")
	}
}

func TestPerLinkLatencyOverride(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond})
	defer n.Close()
	c := newCollector()
	e0, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	n.SetLinkLatency(0, 1, 80*time.Millisecond)
	start := time.Now()
	e0.Send(1, []byte("slow"))
	c.wait(t, 1)
	if el := time.Since(start); el < 70*time.Millisecond {
		t.Errorf("override ignored: delivered after %v", el)
	}
}

func TestUpdateConfigMidRun(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var delivered atomic.Int64
	e0, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, func(Addr, []byte) { delivered.Add(1) })
	e0.Send(1, []byte{1})
	time.Sleep(20 * time.Millisecond)
	n.Update(func(c *Config) { c.LossRate = 1.0 })
	for i := 0; i < 20; i++ {
		e0.Send(1, []byte{1})
	}
	time.Sleep(30 * time.Millisecond)
	if got := delivered.Load(); got != 1 {
		t.Errorf("delivered %d, want 1 (loss=1.0 after update)", got)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) []bool {
		n := New(Config{Seed: seed, LossRate: 0.5})
		defer n.Close()
		var mu sync.Mutex
		fates := make([]bool, 0, 100)
		e0, _ := n.Open(0, func(Addr, []byte) {})
		n.Open(1, func(_ Addr, data []byte) {
			mu.Lock()
			fates = append(fates, true)
			mu.Unlock()
		})
		for i := 0; i < 100; i++ {
			e0.Send(1, []byte{byte(i)})
			time.Sleep(100 * time.Microsecond) // keep delivery order stable
		}
		time.Sleep(50 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		return fates
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Errorf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
}

func TestStatsByteCounting(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	c := newCollector()
	e0, _ := n.Open(0, func(Addr, []byte) {})
	n.Open(1, c.recv)
	e0.Send(1, make([]byte, 100))
	e0.Send(1, make([]byte, 28))
	c.wait(t, 2)
	if st := n.Stats(); st.Bytes != 128 {
		t.Errorf("Bytes = %d, want 128", st.Bytes)
	}
}
