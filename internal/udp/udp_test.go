package udp_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 5 * time.Second

// sink records Recv indications for one channel tag.
type sink struct {
	kernel.Base
	mu  sync.Mutex
	got []udp.Recv
}

func newSink(st *kernel.Stack) *sink { return &sink{Base: kernel.NewBase(st, "sink")} }

func (s *sink) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	if rv, ok := ind.(udp.Recv); ok {
		s.mu.Lock()
		s.got = append(s.got, rv)
		s.mu.Unlock()
	}
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) at(i int) udp.Recv {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[i]
}

func build(t *testing.T, n int, cfg simnet.Config) (*stacktest.Cluster, []*sink) {
	c := stacktest.New(t, n, cfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.CreateAll(udp.Protocol)
	sinks := make([]*sink, n)
	for i := range sinks {
		i := i
		c.OnSync(i, func() {
			sinks[i] = newSink(c.Stacks[i])
			c.Stacks[i].AddModule(sinks[i])
			c.Stacks[i].Subscribe(udp.Service, sinks[i])
		})
	}
	return c, sinks
}

func TestSendReceive(t *testing.T) {
	c, sinks := build(t, 2, simnet.Config{})
	c.Stacks[0].Call(udp.Service, udp.Send{To: 1, Chan: 7, Data: []byte("ping")})
	c.Eventually(timeout, "datagram", func() bool { return sinks[1].count() == 1 })
	got := sinks[1].at(0)
	if got.From != 0 || got.Chan != 7 || string(got.Data) != "ping" {
		t.Errorf("got %+v", got)
	}
}

func TestChannelTagPreserved(t *testing.T) {
	c, sinks := build(t, 2, simnet.Config{})
	c.Stacks[0].Call(udp.Service, udp.Send{To: 1, Chan: udp.ChanRP2P, Data: []byte("a")})
	c.Stacks[0].Call(udp.Service, udp.Send{To: 1, Chan: udp.ChanFD, Data: []byte("b")})
	c.Eventually(timeout, "two datagrams", func() bool { return sinks[1].count() == 2 })
	tags := map[byte]bool{}
	tags[sinks[1].at(0).Chan] = true
	tags[sinks[1].at(1).Chan] = true
	if !tags[udp.ChanRP2P] || !tags[udp.ChanFD] {
		t.Errorf("channel tags lost: %v", tags)
	}
}

func TestEmptyPayloadHeartbeat(t *testing.T) {
	c, sinks := build(t, 2, simnet.Config{})
	c.Stacks[0].Call(udp.Service, udp.Send{To: 1, Chan: udp.ChanFD})
	c.Eventually(timeout, "heartbeat", func() bool { return sinks[1].count() == 1 })
	if got := sinks[1].at(0); len(got.Data) != 0 {
		t.Errorf("payload = %v, want empty", got.Data)
	}
}

func TestLossyNetworkDropsAreSilent(t *testing.T) {
	c, sinks := build(t, 2, simnet.Config{Seed: 3, LossRate: 1.0})
	for i := 0; i < 10; i++ {
		c.Stacks[0].Call(udp.Service, udp.Send{To: 1, Chan: 1, Data: []byte{1}})
	}
	// Nothing must arrive; also nothing must crash.
	c.OnSync(0, func() {})
	if sinks[1].count() != 0 {
		t.Errorf("received %d datagrams on a fully lossy net", sinks[1].count())
	}
}

func TestStopReleasesEndpoint(t *testing.T) {
	c, _ := build(t, 1, simnet.Config{})
	c.OnSync(0, func() {
		st := c.Stacks[0]
		prov := st.Provider(udp.Service)
		st.RemoveModule(prov.ID())
		// Recreating must succeed because Stop closed the endpoint.
		if _, err := st.CreateProtocol(udp.Protocol); err != nil {
			t.Errorf("recreate after stop: %v", err)
		}
	})
}
