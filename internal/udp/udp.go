// Package udp is the bottom module of the group-communication stack
// (Figure 4 of the paper): an interface to an unreliable datagram
// transport. It binds a simnet endpoint to the "net/udp" service and
// demultiplexes traffic with a one-byte channel tag so that several
// upper modules (RP2P, the failure detector) can share the socket.
package udp

import (
	"repro/internal/kernel"
	"repro/internal/simnet"
)

// Service is the unreliable datagram service.
const Service kernel.ServiceID = "net/udp"

// Protocol is the protocol name registered for this module.
const Protocol = "net/udp"

// Well-known channel tags for modules sharing the socket.
const (
	ChanRP2P byte = 1
	ChanFD   byte = 2
)

// Send requests an unreliable datagram transmission.
type Send struct {
	To   kernel.Addr
	Chan byte
	Data []byte
}

// Recv is indicated for every received datagram, to all listeners of
// the service; each listener filters on Chan.
type Recv struct {
	From kernel.Addr
	Chan byte
	Data []byte
}

// Module implements the UDP module.
type Module struct {
	kernel.Base
	net *simnet.Network
	ep  *simnet.Endpoint
}

// Factory returns the module factory bound to a simnet fabric.
func Factory(net *simnet.Network) kernel.Factory {
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{Base: kernel.NewBase(st, Protocol), net: net}
		},
	}
}

// Start opens the endpoint at the stack's address.
func (m *Module) Start() {
	ep, err := m.net.Open(simnet.Addr(m.Stk.Addr()), m.receive)
	if err != nil {
		m.Stk.Logf("udp: open: %v", err)
		return
	}
	m.ep = ep
}

// Stop releases the endpoint.
func (m *Module) Stop() {
	if m.ep != nil {
		m.ep.Close()
		m.ep = nil
	}
}

// HandleRequest transmits Send requests.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	s, ok := req.(Send)
	if !ok || m.ep == nil {
		return
	}
	buf := make([]byte, 0, len(s.Data)+1)
	buf = append(buf, s.Chan)
	buf = append(buf, s.Data...)
	m.ep.Send(simnet.Addr(s.To), buf)
}

// receive runs on a simnet timer goroutine; it re-injects the packet
// into the stack as an indication (Indicate enqueues onto the executor).
func (m *Module) receive(from simnet.Addr, data []byte) {
	if len(data) < 1 {
		return
	}
	m.Stk.Indicate(Service, Recv{From: kernel.Addr(from), Chan: data[0], Data: data[1:]})
}
