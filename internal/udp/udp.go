// Package udp is the bottom module of the group-communication stack
// (Figure 4 of the paper): an interface to an unreliable datagram
// transport. It binds a transport endpoint to the "net/udp" service and
// demultiplexes traffic with a one-byte channel tag so that several
// upper modules can share the socket. Every outgoing datagram is sealed
// with a per-frame checksum (see internal/wire's frame layer) and every
// incoming one verified, so corrupted or truncated frames are counted
// and dropped instead of misparsed by the modules above.
//
// The module is transport-agnostic: it speaks to internal/transport,
// so the same stack runs over the deterministic in-process simnet
// fabric (transport.Sim) or over real UDP sockets spanning processes
// and hosts (transport.NewUDP).
//
// # Channel-tag registry
//
// Every datagram carries a one-byte tag directly after the transport
// frame; each listener of the Recv indication filters on it. The
// well-known tags are declared here so the registry has a single home:
//
//	ChanRP2P (1) — net/rp2p sequence/ack traffic. Everything above
//	  RP2P (rbcast, consensus, abcast, gm, core) multiplexes further
//	  by *named* RP2P channels ("rb", "cons", "cons-dec", "sq/<epoch>",
//	  "tk/<epoch>", "ab/<impl>/<epoch>", ...), not by new byte tags.
//	ChanFD (2) — the failure detector's heartbeats, which deliberately
//	  bypass RP2P: losing one is harmless and retransmitting a stale
//	  heartbeat would defeat the timeout logic.
//
// New modules that need raw datagrams should claim the next free byte
// here rather than inventing a private constant.
package udp

import (
	"repro/internal/kernel"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Service is the unreliable datagram service.
const Service kernel.ServiceID = "net/udp"

// Protocol is the protocol name registered for this module.
const Protocol = "net/udp"

// Well-known channel tags for modules sharing the socket. See the
// package comment for the registry.
const (
	// ChanRP2P carries reliable point-to-point (net/rp2p) traffic.
	ChanRP2P byte = 1
	// ChanFD carries failure-detector heartbeats.
	ChanFD byte = 2
)

// Send requests an unreliable datagram transmission.
//
// Data is never retained once the request has been handled: the module
// frames it and the transport copies (or encodes) it before its Send
// returns. A sender that issues the request with Stack.CallSync may
// therefore reuse or pool the buffer as soon as the call returns.
//
// When Headroom is true, the first wire.FrameOverhead bytes of Data are
// reserved headroom owned by this module: it writes Chan and the frame
// checksum into them and hands Data to the transport as-is, so the
// payload crosses the framing layer without a copy. The sender must
// have reserved that leading region (wire.Writer.Pad(wire.FrameOverhead);
// its payload starts at Data[wire.FrameOverhead]).
type Send struct {
	To       kernel.Addr
	Chan     byte
	Data     []byte
	Headroom bool
}

// Recv is indicated for every received datagram, to all listeners of
// the service; each listener filters on Chan.
type Recv struct {
	From kernel.Addr
	Chan byte
	Data []byte
}

// Module implements the UDP module over a transport backend.
//
// When the backend supports batching, the module engages it end to end:
// outgoing Send requests are enqueued on the endpoint's BatchSender and
// flushed once per executor batch (through Stack.RegisterFlusher), so
// every frame produced in one executor pass leaves in as few sendmmsg
// calls as possible; incoming traffic is opened through BatchOpener and
// each received batch is re-injected as ONE executor event
// (Stack.IndicateBatch) instead of one per datagram. Backends without
// batching (simnet) take the original per-datagram path, bit for bit.
type Module struct {
	kernel.Base
	tr      transport.Transport
	ep      transport.Endpoint
	bs      transport.BatchSender // non-nil when the endpoint batches sends
	unflush func()                // unregisters the per-batch Flush hook
	openErr error
}

// Factory returns the module factory bound to a transport fabric.
func Factory(tr transport.Transport) kernel.Factory {
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		New: func(st *kernel.Stack) kernel.Module {
			return &Module{Base: kernel.NewBase(st, Protocol), tr: tr}
		},
	}
}

// Start opens the endpoint at the stack's address and subscribes to
// membership views so the transport's routing state follows the view.
// Module.Start cannot return an error, so a failure (e.g. a real-socket
// bind conflict) is recorded for OpenErr and the module stays up with
// no endpoint, dropping all traffic.
func (m *Module) Start() {
	m.Stk.Subscribe(kernel.PeerService, m)
	var ep transport.Endpoint
	var err error
	if bo, ok := m.tr.(transport.BatchOpener); ok {
		ep, err = bo.OpenBatch(transport.Addr(m.Stk.Addr()), m.receiveBatch)
	} else {
		ep, err = m.tr.Open(transport.Addr(m.Stk.Addr()), m.receive)
	}
	if err != nil {
		m.openErr = err
		m.Stk.Logf("udp: open: %v", err)
		return
	}
	m.ep = ep
	if bs, ok := ep.(transport.BatchSender); ok {
		m.bs = bs
		// Start runs on the executor, where RegisterFlusher is legal:
		// from here on every drained event batch ends with one Flush,
		// which is what turns N Send requests into one sendmmsg.
		m.unflush = m.Stk.RegisterFlusher(bs.Flush)
	}
}

// OpenErr reports whether Start failed to open the transport endpoint.
// Stack builders should check it (on the executor) after creating the
// stack: with real sockets a bind failure is otherwise silent.
func (m *Module) OpenErr() error { return m.openErr }

// Stop releases the endpoint, flushing anything still queued so the
// module's last frames (e.g. a leave announcement) actually leave.
func (m *Module) Stop() {
	m.Stk.Unsubscribe(kernel.PeerService, m)
	if m.bs != nil {
		m.bs.Flush()
		m.unflush()
		m.bs, m.unflush = nil, nil
	}
	if m.ep != nil {
		m.ep.Close()
		m.ep = nil
	}
}

// HandleIndication admits transport routes as membership views change,
// when the transport has explicit routing state (real sockets).
// Implicit-routing fabrics (simnet) need no updates.
//
// Routes are only ADDED here. The transport — and its address book —
// is shared by every stack this process hosts, while a view installs
// on each stack's executor independently: removing a route as soon as
// ONE stack drops the peer would sever co-hosted stacks that have not
// installed the view yet (including retransmissions still carrying the
// eviction commit toward the evicted member). Retirement is therefore
// a process-level decision, taken by whoever owns the process's stack
// set (the dpu layer prunes once no local stack lists the peer).
func (m *Module) HandleIndication(svc kernel.ServiceID, ind kernel.Indication) {
	if svc != kernel.PeerService {
		return
	}
	pc, ok := ind.(kernel.PeersChanged)
	if !ok {
		return
	}
	router, ok := m.tr.(transport.Router)
	if !ok {
		return
	}
	for _, p := range pc.Added {
		ep := pc.Endpoints[p]
		if ep == "" {
			continue // endpoint unknown: leave the book alone
		}
		if err := router.AddRoute(transport.Addr(p), ep); err != nil {
			m.Stk.Logf("udp: admitting route %d -> %q: %v", p, ep, err)
		}
	}
}

// HandleRequest transmits Send requests.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	s, ok := req.(Send)
	if !ok || m.ep == nil {
		return
	}
	if s.Headroom && len(s.Data) >= wire.FrameOverhead {
		// The sender reserved the frame header: no framing copy at all.
		s.Data[0] = s.Chan
		wire.SealFrame(s.Data, uint64(m.Stk.Addr()))
		m.send(transport.Addr(s.To), s.Data)
		return
	}
	w := wire.GetWriter(len(s.Data) + wire.FrameOverhead)
	w.Byte(s.Chan).Pad(wire.FrameOverhead - 1).Raw(s.Data)
	frame := w.Bytes()
	wire.SealFrame(frame, uint64(m.Stk.Addr()))
	m.send(transport.Addr(s.To), frame)
	w.Free() // the transport has copied (or enqueued a copy of) the frame
}

// send hands one sealed frame to the transport: onto the batch queue
// when the endpoint batches (the registered flusher transmits it at the
// end of this executor pass), immediately otherwise. Both paths copy
// before returning. Executor-only.
//
//dpulint:executor
func (m *Module) send(to transport.Addr, frame []byte) {
	if m.bs != nil {
		m.bs.Enqueue(to, frame)
		return
	}
	m.ep.Send(to, frame)
}

// receive runs on a transport goroutine (simnet timer or socket read
// loop); it re-injects the packet into the stack as an indication
// (Indicate enqueues onto the executor).
// A frame whose checksum does not verify against the claimed sender is
// counted (wire.frames_rejected) and dropped here, before anything
// above the framing layer can misparse it.
func (m *Module) receive(from transport.Addr, data []byte) {
	tag, payload, ok := wire.OpenFrame(data, uint64(from))
	if !ok {
		return
	}
	m.Stk.Indicate(Service, Recv{From: kernel.Addr(from), Chan: tag, Data: payload})
}

// receiveBatch is the batched twin of receive: one recvmmsg worth of
// datagrams becomes one executor event carrying the batch's surviving
// indications, delivered to listeners individually and in order —
// identical to len(pkts) receive calls, minus len(pkts)-1 queue
// round-trips. Runs on a transport goroutine.
func (m *Module) receiveBatch(pkts []transport.Packet) {
	inds := make([]kernel.Indication, 0, len(pkts))
	for _, p := range pkts {
		tag, payload, ok := wire.OpenFrame(p.Data, uint64(p.From))
		if !ok {
			continue
		}
		inds = append(inds, Recv{From: kernel.Addr(p.From), Chan: tag, Data: payload})
	}
	m.Stk.IndicateBatch(Service, inds)
}
