package consensus_test

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/simnet"
)

// TestMajorityPartitionDecidesMinorityBlocksThenCatchesUp exercises the
// quorum behaviour the Chandra-Toueg algorithm promises: during a
// partition, the majority side keeps deciding, the minority side blocks
// (safety over liveness), and after the heal the minority adopts the
// majority's decisions through the reliable broadcast of decisions.
func TestMajorityPartitionDecidesMinorityBlocksThenCatchesUp(t *testing.T) {
	c, logs := build(t, 5, simnet.Config{Seed: 77}, fastFD())
	// Partition: {0,1,2} | {3,4}.
	for _, a := range []simnet.Addr{0, 1, 2} {
		for _, b := range []simnet.Addr{3, 4} {
			c.Net.Cut(a, b)
		}
	}
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("majority-value")})
	// Majority side decides.
	c.Eventually(timeout, "majority decision", func() bool {
		for i := 0; i < 3; i++ {
			if _, ok := logs[i].get(id); !ok {
				return false
			}
		}
		return true
	})
	// Minority side must NOT decide while partitioned (give it time to
	// try): safety over liveness.
	time.Sleep(150 * time.Millisecond)
	for i := 3; i < 5; i++ {
		if v, ok := logs[i].get(id); ok {
			// Deciding is only legal if it matches the majority value
			// (it cannot: decisions travel over cut links) — flag it.
			t.Fatalf("minority stack %d decided %q during partition", i, v)
		}
	}
	// Heal: relayed decisions catch the minority up.
	for _, a := range []simnet.Addr{0, 1, 2} {
		for _, b := range []simnet.Addr{3, 4} {
			c.Net.Heal(a, b)
		}
	}
	got := waitDecisionEverywhere(t, c, logs, id, nil)
	if string(got) != "majority-value" {
		t.Errorf("decided %q", got)
	}
}

// TestDecisionsSurviveCoordinatorPartition cuts only the round-0
// coordinator away mid-instance; the rest must rotate past it.
func TestDecisionsSurviveCoordinatorPartition(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{Seed: 78, BaseLatency: time.Millisecond}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("x"), []byte("y"), []byte("z")})
	c.Net.Isolate(0) // round-0 coordinator unreachable
	skip := map[int]bool{0: true}
	waitDecisionEverywhere(t, c, logs, id, skip)
	// Heal; the isolated coordinator must converge to the same value.
	c.Net.Heal(0, 1)
	c.Net.Heal(0, 2)
	waitDecisionEverywhere(t, c, logs, id, nil)
}
