// Package consensus implements the CT module of the paper's stack
// (Figure 4): the Chandra–Toueg ◇S consensus algorithm with a rotating
// coordinator, providing a multi-instance distributed consensus service.
//
// Each instance runs in asynchronous rounds. In round r, with c =
// coordinator(r): (1) every process sends its estimate (with the round
// in which it was adopted) to c; (2) c collects a majority of estimates
// and proposes the one with the highest timestamp; (3) each process
// waits for c's proposal or suspects c through the FD service, answering
// ack (adopting the proposal) or nack; (4) on a majority of acks, c
// reliably broadcasts the decision. Safety never depends on the failure
// detector; termination needs ◇S accuracy and a majority of correct
// processes.
//
// Instances are keyed by (Group, Seq). Groups namespace independent
// users of the service: during a dynamic protocol update, the old and
// the new atomic-broadcast modules run their instances in different
// groups (group = the replacement epoch) over this single shared module,
// which is exactly the composition of Figure 4 where consensus survives
// the ABcast replacement. Decisions are cached per group and replayed to
// late listeners, so a module created mid-run (the new protocol version)
// observes every decision of its group.
package consensus

import (
	"sort"

	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// Service is the default consensus service.
const Service kernel.ServiceID = "consensus"

// Protocol is the default protocol name registered for this module.
const Protocol = "consensus/ct"

const (
	rp2pChannel = "cons"     // point-to-point consensus rounds
	decChannel  = "cons-dec" // reliable broadcast of decisions
)

// CoordPolicy selects how the coordinator of a round is chosen.
type CoordPolicy int

// Coordinator policies.
const (
	// Rotating is the classic CT rotating coordinator: coord(r) =
	// peers[r mod n].
	Rotating CoordPolicy = iota
	// Fixed biases the coordinator towards the lowest address: even
	// rounds are coordinated by peers[0], odd rounds rotate over the
	// rest to preserve liveness after a leader crash. The mapping stays
	// a deterministic function of the round — CT's safety argument
	// requires at most one possible proposer per round.
	Fixed
)

// Config parameterises a consensus module instance, so several distinct
// consensus protocols can coexist in one stack (the consensus
// replacement extension): each gets its own service name and wire
// channels.
type Config struct {
	// Service is the service this module provides. Default "consensus".
	Service kernel.ServiceID
	// Protocol is the registered protocol name. Default "consensus/ct".
	Protocol string
	// Channel is the RP2P channel for round messages. Default "cons".
	Channel string
	// DecChannel is the RBcast channel for decisions. Default "cons-dec".
	DecChannel string
	// Policy selects the coordinator strategy. Default Rotating.
	Policy CoordPolicy
}

func (c Config) withDefaults() Config {
	if c.Service == "" {
		c.Service = Service
	}
	if c.Protocol == "" {
		c.Protocol = Protocol
	}
	if c.Channel == "" {
		c.Channel = rp2pChannel
	}
	if c.DecChannel == "" {
		c.DecChannel = decChannel
	}
	return c
}

// InstanceID names one consensus instance.
type InstanceID struct {
	// Group namespaces instances; users of the service pick disjoint
	// groups (the DPU layer uses the replacement epoch).
	Group uint64
	// Seq is the instance number within the group.
	Seq uint64
}

// Propose starts (or joins) an instance with this process's initial
// value. Proposing twice for the same instance is idempotent; proposing
// for a decided instance re-indicates the decision to the group's
// listener.
type Propose struct {
	ID    InstanceID
	Value []byte
}

// Decide is handed to the group's listener when an instance decides.
type Decide struct {
	ID    InstanceID
	Value []byte
}

// Listen registers the decision handler for a group and immediately
// replays all cached decisions of that group in Seq order. The handler
// runs on the stack's executor.
type Listen struct {
	Group   uint64
	Handler func(Decide)
}

// Unlisten removes the group's handler; decisions keep accumulating in
// the cache.
type Unlisten struct {
	Group uint64
}

// Forget discards all cached decisions and live instances of a group
// (garbage collection once an epoch is fully retired).
type Forget struct {
	Group uint64
}

// Refetch re-indicates the cached decision of one instance to the
// group's listener, if that instance has decided; otherwise it is a
// no-op. It lets a user that bounds its own out-of-order decision
// buffering recover an evicted decision from the module's cache.
type Refetch struct {
	ID InstanceID
}

// InspectReq asks for a diagnostic snapshot, delivered through Reply on
// the executor.
type InspectReq struct {
	Reply func(Inspect)
}

// Inspect is a diagnostic snapshot of the consensus module.
type Inspect struct {
	// Live instance states, keyed by instance.
	Instances map[InstanceID]InstanceInfo
	// Decisions counts cached decisions.
	Decisions int
	// Suspects is the current local suspect list.
	Suspects []kernel.Addr
}

// InstanceInfo summarises one live instance.
type InstanceInfo struct {
	Started   bool
	Round     uint64
	EstsAt    int // estimates received for the current round
	RepliesAt int // acks+nacks received for the current round
	Proposal  bool
}

const (
	msgEst     byte = 0
	msgPropose byte = 1
	msgAck     byte = 2
	msgNack    byte = 3
)

type estimate struct {
	ts  uint64
	val []byte
}

// instance is the per-instance state machine.
type instance struct {
	id      InstanceID
	started bool
	decided bool
	round   uint64
	est     []byte
	ts      uint64

	ests      map[uint64]map[kernel.Addr]estimate // round -> sender -> estimate
	proposals map[uint64][]byte                   // round -> coordinator proposal
	acks      map[uint64]map[kernel.Addr]bool     // round -> sender -> ack?
	estSent   map[uint64]bool
	replySent map[uint64]bool // ack or nack sent for this round
	proposed  map[uint64]bool // I proposed as coordinator of this round
}

func newInstance(id InstanceID) *instance {
	return &instance{
		id:        id,
		ests:      make(map[uint64]map[kernel.Addr]estimate),
		proposals: make(map[uint64][]byte),
		acks:      make(map[uint64]map[kernel.Addr]bool),
		estSent:   make(map[uint64]bool),
		replySent: make(map[uint64]bool),
		proposed:  make(map[uint64]bool),
	}
}

// Module implements the consensus service.
type Module struct {
	kernel.Base
	cfg       Config
	peers     []kernel.Addr // sorted
	suspects  map[kernel.Addr]bool
	instances map[InstanceID]*instance
	decisions map[InstanceID][]byte
	groupSeqs map[uint64][]uint64 // decided seqs per group, kept sorted
	handlers  map[uint64]func(Decide)
}

// Factory returns the module factory with the default configuration.
func Factory() kernel.Factory { return FactoryWith(Config{}) }

// FactoryWith returns a module factory for a configured consensus
// variant (distinct service name, wire channels, coordinator policy).
func FactoryWith(cfg Config) kernel.Factory {
	cfg = cfg.withDefaults()
	return kernel.Factory{
		Protocol: cfg.Protocol,
		Provides: []kernel.ServiceID{cfg.Service},
		Requires: []kernel.ServiceID{rp2p.Service, rbcast.Service, fd.Service},
		New: func(st *kernel.Stack) kernel.Module {
			peers := append([]kernel.Addr(nil), st.Peers()...)
			sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
			return &Module{
				Base:      kernel.NewBase(st, cfg.Protocol),
				cfg:       cfg,
				peers:     peers,
				suspects:  make(map[kernel.Addr]bool),
				instances: make(map[InstanceID]*instance),
				decisions: make(map[InstanceID][]byte),
				groupSeqs: make(map[uint64][]uint64),
				handlers:  make(map[uint64]func(Decide)),
			}
		},
	}
}

// Start wires the module to RP2P, RBcast, the failure detector and the
// kernel's membership indications (the participant set follows the
// installed view).
func (m *Module) Start() {
	m.Stk.Call(rp2p.Service, rp2p.Listen{Channel: m.cfg.Channel, Handler: m.onRecv})
	m.Stk.Call(rbcast.Service, rbcast.Listen{Channel: m.cfg.DecChannel, Handler: m.onDecision})
	m.Stk.Subscribe(fd.Service, m)
	m.Stk.Subscribe(kernel.PeerService, m)
}

// Stop detaches from the substrate services.
func (m *Module) Stop() {
	m.Stk.Call(rp2p.Service, rp2p.Unlisten{Channel: m.cfg.Channel})
	m.Stk.Call(rbcast.Service, rbcast.Unlisten{Channel: m.cfg.DecChannel})
	m.Stk.Unsubscribe(fd.Service, m)
	m.Stk.Unsubscribe(kernel.PeerService, m)
}

func (m *Module) majority() int { return len(m.peers)/2 + 1 }

func (m *Module) coordinator(round uint64) kernel.Addr {
	if len(m.peers) == 1 {
		return m.peers[0]
	}
	if m.cfg.Policy == Fixed {
		if round%2 == 0 {
			return m.peers[0]
		}
		return m.peers[int(1+(round/2)%uint64(len(m.peers)-1))]
	}
	return m.peers[int(round%uint64(len(m.peers)))]
}

// HandleRequest processes Propose, Listen, Unlisten and Forget.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Propose:
		m.propose(r)
	case Listen:
		m.handlers[r.Group] = r.Handler
		for _, seq := range m.groupSeqs[r.Group] {
			id := InstanceID{Group: r.Group, Seq: seq}
			r.Handler(Decide{ID: id, Value: m.decisions[id]})
		}
	case Unlisten:
		delete(m.handlers, r.Group)
	case Refetch:
		if val, done := m.decisions[r.ID]; done {
			m.indicate(Decide{ID: r.ID, Value: val})
		}
	case InspectReq:
		if r.Reply != nil {
			r.Reply(m.inspect())
		}
	case Forget:
		delete(m.handlers, r.Group)
		for _, seq := range m.groupSeqs[r.Group] {
			delete(m.decisions, InstanceID{Group: r.Group, Seq: seq})
		}
		delete(m.groupSeqs, r.Group)
		for id := range m.instances {
			if id.Group == r.Group {
				delete(m.instances, id)
			}
		}
	}
}

func (m *Module) inspect() Inspect {
	out := Inspect{Instances: make(map[InstanceID]InstanceInfo), Decisions: len(m.decisions)}
	for id, inst := range m.instances {
		_, prop := inst.proposals[inst.round]
		out.Instances[id] = InstanceInfo{
			Started:   inst.started,
			Round:     inst.round,
			EstsAt:    len(inst.ests[inst.round]),
			RepliesAt: len(inst.acks[inst.round]),
			Proposal:  prop,
		}
	}
	for p := range m.suspects {
		out.Suspects = append(out.Suspects, p)
	}
	sort.Slice(out.Suspects, func(i, j int) bool { return out.Suspects[i] < out.Suspects[j] })
	return out
}

// HandleIndication tracks the failure detector's suspect set and
// membership views: the participant set (quorums, coordinator
// rotation) is the currently installed view. A view change is ordered
// through the public atomic broadcast, so every surviving stack applies
// the same participant set at the same point of the total order;
// decisions of instances still draining under the old set propagate via
// the reliable decision broadcast regardless.
func (m *Module) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case fd.Suspect:
		m.suspects[v.P] = true
	case fd.Restore:
		delete(m.suspects, v.P)
	case kernel.PeersChanged:
		m.peers = append(m.peers[:0:0], v.Peers...) // already sorted
		for _, p := range v.Removed {
			delete(m.suspects, p)
		}
	default:
		return
	}
	// Suspicions unblock processes waiting for a coordinator. Advance
	// in instance-ID order: advancing sends messages, and map-order
	// iteration would consume the simulated network's fault RNG in a
	// different order on every run with the same seed.
	ids := make([]InstanceID, 0, len(m.instances))
	for id := range m.instances {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Group != ids[j].Group {
			return ids[i].Group < ids[j].Group
		}
		return ids[i].Seq < ids[j].Seq
	})
	for _, id := range ids {
		if inst := m.instances[id]; inst.started && !inst.decided {
			m.advance(inst)
		}
	}
}

func (m *Module) propose(p Propose) {
	if val, done := m.decisions[p.ID]; done {
		// Already decided (possibly before this module's user existed):
		// re-indicate so the proposer observes the decision.
		m.indicate(Decide{ID: p.ID, Value: val})
		return
	}
	inst := m.inst(p.ID)
	if inst.started {
		return // duplicate proposal
	}
	inst.started = true
	inst.est = p.Value
	inst.ts = 0
	m.advance(inst)
}

func (m *Module) inst(id InstanceID) *instance {
	in, ok := m.instances[id]
	if !ok {
		in = newInstance(id)
		m.instances[id] = in
	}
	return in
}

// advance drives the round state machine as far as buffered messages
// and the suspect set allow. It is called after every relevant event.
func (m *Module) advance(inst *instance) {
	for !inst.decided {
		r := inst.round
		coord := m.coordinator(r)
		// Phase 1: send the estimate for this round to the coordinator.
		if !inst.estSent[r] {
			inst.estSent[r] = true
			m.sendEst(coord, inst, r)
		}
		// Phase 2 (coordinator): with a majority of estimates, propose
		// the one adopted most recently.
		m.coordPhase2(inst, r)
		// Phase 3: answer the proposal, or nack a suspected coordinator.
		if !inst.replySent[r] {
			if val, ok := inst.proposals[r]; ok {
				inst.est = val
				// Timestamp r+1, NOT r: an estimate adopted in round 0 must
				// outrank every initial estimate (ts 0), or a round-1
				// coordinator that missed round 0 could prefer its own
				// initial value over one already locked at a majority —
				// two decisions for one instance. (Found by the scenario
				// corpus running over real sockets: flapping links plus
				// spurious suspicion drive exactly that round-0/round-1
				// race.)
				inst.ts = r + 1
				inst.replySent[r] = true
				m.sendReply(coord, inst, r, true)
				inst.round++
				continue
			}
			if m.suspects[coord] {
				inst.replySent[r] = true
				m.sendReply(coord, inst, r, false)
				inst.round++
				continue
			}
		}
		// Phase 4 runs in onRecv when acks arrive. Nothing else to do.
		return
	}
}

// coordPhase2 lets this process serve as the round's coordinator once a
// majority of estimates arrived. It runs even when the instance was not
// locally proposed yet: relaying the best received estimate is safe and
// keeps the group live while this stack's own proposal is still on its
// way (e.g. a module created mid-update that has nothing to send yet).
func (m *Module) coordPhase2(inst *instance, round uint64) {
	if inst.decided || inst.proposed[round] || m.coordinator(round) != m.Stk.Addr() {
		return
	}
	if len(inst.ests[round]) < m.majority() {
		return
	}
	inst.proposed[round] = true
	// Pick the most recently adopted estimate; ties (everyone still at
	// ts 0 in round 0 is the common case) break by lowest sender
	// address. Iterating the map directly would let Go's randomized
	// map order pick the winner, and the decided batch — though still
	// a valid consensus outcome — would differ between seeded runs.
	senders := make([]kernel.Addr, 0, len(inst.ests[round]))
	for a := range inst.ests[round] {
		senders = append(senders, a)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	best := estimate{}
	first := true
	for _, a := range senders {
		if e := inst.ests[round][a]; first || e.ts > best.ts {
			best = e
			first = false
		}
	}
	inst.proposals[round] = best.val
	m.sendProposal(inst, round, best.val)
}

// maybeDecide checks the coordinator's majority-ack condition for every
// round this process coordinated.
func (m *Module) maybeDecide(inst *instance, round uint64) {
	if inst.decided || !inst.proposed[round] {
		return
	}
	ackCount := 0
	for _, ok := range inst.acks[round] {
		if ok {
			ackCount++
		}
	}
	if ackCount >= m.majority() {
		// The value is locked at a majority: decide and disseminate.
		w := wire.NewWriter(len(inst.proposals[round]) + 24)
		w.Uvarint(inst.id.Group).Uvarint(inst.id.Seq).Raw(inst.proposals[round])
		m.Stk.Call(rbcast.Service, rbcast.Broadcast{Channel: m.cfg.DecChannel, Data: w.Bytes()})
	}
}

func (m *Module) header(t byte, id InstanceID, round uint64) *wire.Writer {
	w := wire.NewWriter(64)
	w.Byte(t).Uvarint(id.Group).Uvarint(id.Seq).Uvarint(round)
	return w
}

func (m *Module) sendEst(coord kernel.Addr, inst *instance, round uint64) {
	w := m.header(msgEst, inst.id, round)
	w.Uvarint(inst.ts).Raw(inst.est)
	m.Stk.Call(rp2p.Service, rp2p.Send{To: coord, Channel: m.cfg.Channel, Data: w.Bytes()})
}

func (m *Module) sendProposal(inst *instance, round uint64, val []byte) {
	w := m.header(msgPropose, inst.id, round)
	w.Raw(val)
	data := w.Bytes()
	for _, p := range m.peers {
		m.Stk.Call(rp2p.Service, rp2p.Send{To: p, Channel: m.cfg.Channel, Data: data})
	}
}

func (m *Module) sendReply(coord kernel.Addr, inst *instance, round uint64, ack bool) {
	t := msgAck
	if !ack {
		t = msgNack
	}
	w := m.header(t, inst.id, round)
	m.Stk.Call(rp2p.Service, rp2p.Send{To: coord, Channel: m.cfg.Channel, Data: w.Bytes()})
}

func (m *Module) onRecv(rv rp2p.Recv) {
	r := wire.NewReader(rv.Data)
	t := r.Byte()
	id := InstanceID{Group: r.Uvarint(), Seq: r.Uvarint()}
	round := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if _, done := m.decisions[id]; done {
		return // stale traffic for a decided instance
	}
	inst := m.inst(id)
	switch t {
	case msgEst:
		ts := r.Uvarint()
		val := r.Rest()
		if r.Err() != nil {
			return
		}
		if inst.ests[round] == nil {
			inst.ests[round] = make(map[kernel.Addr]estimate)
		}
		inst.ests[round][rv.From] = estimate{ts: ts, val: val}
	case msgPropose:
		val := r.Rest()
		if r.Err() != nil {
			return
		}
		if _, dup := inst.proposals[round]; !dup {
			inst.proposals[round] = val
		}
	case msgAck, msgNack:
		if inst.acks[round] == nil {
			inst.acks[round] = make(map[kernel.Addr]bool)
		}
		inst.acks[round][rv.From] = t == msgAck
		m.maybeDecide(inst, round)
		return
	default:
		return
	}
	if t == msgEst {
		m.coordPhase2(inst, round)
	}
	if inst.started {
		m.advance(inst)
	}
}

// onDecision handles the reliable broadcast of a decision.
func (m *Module) onDecision(d rbcast.Deliver) {
	r := wire.NewReader(d.Data)
	id := InstanceID{Group: r.Uvarint(), Seq: r.Uvarint()}
	val := r.Rest()
	if r.Err() != nil {
		return
	}
	if _, dup := m.decisions[id]; dup {
		return
	}
	m.decisions[id] = val
	seqs := m.groupSeqs[id.Group]
	pos := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= id.Seq })
	seqs = append(seqs, 0)
	copy(seqs[pos+1:], seqs[pos:])
	seqs[pos] = id.Seq
	m.groupSeqs[id.Group] = seqs
	if inst, ok := m.instances[id]; ok {
		inst.decided = true
		delete(m.instances, id) // retire live state; the cache remains
	}
	m.indicate(Decide{ID: id, Value: val})
}

func (m *Module) indicate(d Decide) {
	if h, ok := m.handlers[d.ID.Group]; ok {
		h(d)
	}
}
