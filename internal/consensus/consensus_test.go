package consensus_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 15 * time.Second

// decLog records decisions per stack.
type decLog struct {
	mu  sync.Mutex
	dec map[consensus.InstanceID][]byte
}

func newDecLog() *decLog { return &decLog{dec: make(map[consensus.InstanceID][]byte)} }

func (l *decLog) add(d consensus.Decide) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.dec[d.ID]; !dup {
		l.dec[d.ID] = d.Value
	}
}

func (l *decLog) get(id consensus.InstanceID) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.dec[id]
	return v, ok
}

func (l *decLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.dec)
}

func build(t *testing.T, n int, netCfg simnet.Config, fdCfg fd.Config) (*stacktest.Cluster, []*decLog) {
	c := stacktest.New(t, n, netCfg, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fdCfg))
	c.Reg.MustRegister(consensus.Factory())
	c.CreateAll(consensus.Protocol)
	logs := make([]*decLog, n)
	for i := range logs {
		logs[i] = newDecLog()
		c.Stacks[i].Call(consensus.Service, consensus.Listen{Group: 0, Handler: logs[i].add})
	}
	return c, logs
}

func fastFD() fd.Config {
	return fd.Config{Interval: 5 * time.Millisecond, Timeout: 50 * time.Millisecond,
		AdaptStep: 50 * time.Millisecond}
}

func proposeAll(c *stacktest.Cluster, id consensus.InstanceID, vals [][]byte) {
	for i, st := range c.Stacks {
		if st.Running() {
			st.Call(consensus.Service, consensus.Propose{ID: id, Value: vals[i%len(vals)]})
		}
	}
}

func waitDecisionEverywhere(t *testing.T, c *stacktest.Cluster, logs []*decLog, id consensus.InstanceID, crashed map[int]bool) []byte {
	t.Helper()
	c.Eventually(timeout, fmt.Sprintf("decision %v everywhere", id), func() bool {
		for i, l := range logs {
			if crashed[i] {
				continue
			}
			if _, ok := l.get(id); !ok {
				return false
			}
		}
		return true
	})
	var ref []byte
	for i, l := range logs {
		if crashed[i] {
			continue
		}
		v, _ := l.get(id)
		if ref == nil {
			ref = v
		} else if !bytes.Equal(ref, v) {
			t.Fatalf("agreement violated: stack %d decided %q, others %q", i, v, ref)
		}
	}
	return ref
}

func TestDecidesWithIdenticalProposals(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("v")})
	got := waitDecisionEverywhere(t, c, logs, id, nil)
	if string(got) != "v" {
		t.Errorf("decided %q, want %q (validity)", got, "v")
	}
}

func TestValidityDecisionIsSomeProposal(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{Seed: 1, Jitter: time.Millisecond}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	vals := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	proposeAll(c, id, vals)
	got := waitDecisionEverywhere(t, c, logs, id, nil)
	if string(got) != "a" && string(got) != "b" && string(got) != "c" {
		t.Errorf("decided %q, not among proposals (validity violated)", got)
	}
}

func TestManySequentialInstances(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{Seed: 2, BaseLatency: 500 * time.Microsecond}, fastFD())
	const k = 20
	for seq := uint64(0); seq < k; seq++ {
		id := consensus.InstanceID{Group: 0, Seq: seq}
		proposeAll(c, id, [][]byte{[]byte(fmt.Sprintf("val-%d", seq))})
	}
	c.Eventually(timeout, "all instances decided", func() bool {
		for _, l := range logs {
			if l.count() != k {
				return false
			}
		}
		return true
	})
	for seq := uint64(0); seq < k; seq++ {
		waitDecisionEverywhere(t, c, logs, consensus.InstanceID{Group: 0, Seq: seq}, nil)
	}
}

func TestConcurrentInstancesDifferentGroups(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{Seed: 3}, fastFD())
	g1 := make([]*decLog, 3)
	for i := range g1 {
		g1[i] = newDecLog()
		c.Stacks[i].Call(consensus.Service, consensus.Listen{Group: 1, Handler: g1[i].add})
	}
	id0 := consensus.InstanceID{Group: 0, Seq: 0}
	id1 := consensus.InstanceID{Group: 1, Seq: 0}
	proposeAll(c, id0, [][]byte{[]byte("group0")})
	proposeAll(c, id1, [][]byte{[]byte("group1")})
	if v := waitDecisionEverywhere(t, c, logs, id0, nil); string(v) != "group0" {
		t.Errorf("group 0 decided %q", v)
	}
	c.Eventually(timeout, "group 1 decision", func() bool {
		for _, l := range g1 {
			if _, ok := l.get(id1); !ok {
				return false
			}
		}
		return true
	})
	for _, l := range g1 {
		if v, _ := l.get(id1); string(v) != "group1" {
			t.Errorf("group 1 decided %q", v)
		}
	}
	// Group isolation: group-0 listeners must not see group-1 decisions.
	for i, l := range logs {
		if _, leak := l.get(id1); leak {
			t.Errorf("stack %d: group 1 decision leaked to group 0 listener", i)
		}
	}
}

func TestTerminatesWithMinorityCrash(t *testing.T) {
	c, logs := build(t, 5, simnet.Config{Seed: 4}, fastFD())
	// Crash two of five before proposing (incl. the round-0 coordinator).
	c.Net.SetDown(0, true)
	c.Stacks[0].Crash()
	c.Net.SetDown(4, true)
	c.Stacks[4].Crash()
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("survivor")})
	crashed := map[int]bool{0: true, 4: true}
	got := waitDecisionEverywhere(t, c, logs, id, crashed)
	if string(got) != "survivor" {
		t.Errorf("decided %q", got)
	}
}

func TestCoordinatorCrashMidInstanceStillTerminates(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{Seed: 5, BaseLatency: 2 * time.Millisecond}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	// Propose everywhere, then immediately crash the round-0 coordinator
	// (stack 0) so the nack/rotate path must run.
	proposeAll(c, id, [][]byte{[]byte("x"), []byte("y"), []byte("z")})
	c.Net.SetDown(0, true)
	c.Stacks[0].Crash()
	waitDecisionEverywhere(t, c, logs, id, map[int]bool{0: true})
}

func TestSafeUnderAggressiveFalseSuspicions(t *testing.T) {
	// A hair-trigger FD forces many rounds; safety (single decision,
	// agreement) must hold and adaptation must eventually let a round
	// complete.
	c, logs := build(t, 3,
		simnet.Config{Seed: 6, BaseLatency: 4 * time.Millisecond},
		fd.Config{Interval: 2 * time.Millisecond, Timeout: 3 * time.Millisecond,
			AdaptStep: 5 * time.Millisecond})
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("p0"), []byte("p1"), []byte("p2")})
	waitDecisionEverywhere(t, c, logs, id, nil)
}

func TestLossyNetworkDecides(t *testing.T) {
	c, logs := build(t, 3,
		simnet.Config{Seed: 7, LossRate: 0.15, BaseLatency: time.Millisecond},
		fd.Config{Interval: 5 * time.Millisecond, Timeout: 200 * time.Millisecond,
			AdaptStep: 100 * time.Millisecond})
	for seq := uint64(0); seq < 5; seq++ {
		id := consensus.InstanceID{Group: 0, Seq: seq}
		proposeAll(c, id, [][]byte{[]byte(fmt.Sprintf("m%d", seq))})
		waitDecisionEverywhere(t, c, logs, id, nil)
	}
}

func TestLateListenerGetsReplayedDecisions(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{}, fastFD())
	for seq := uint64(0); seq < 3; seq++ {
		id := consensus.InstanceID{Group: 9, Seq: seq}
		for _, st := range c.Stacks {
			st.Call(consensus.Service, consensus.Propose{ID: id, Value: []byte{byte(seq)}})
		}
	}
	_ = logs
	// Wait until stack 0 has all three decisions cached (listener on
	// group 9 does not exist anywhere yet).
	late := newDecLog()
	c.Eventually(timeout, "replay to late listener", func() bool {
		probe := newDecLog()
		done := make(chan struct{})
		c.Stacks[0].Do(func() {
			c.Stacks[0].Call(consensus.Service, consensus.Listen{Group: 9, Handler: probe.add})
			c.Stacks[0].Call(consensus.Service, consensus.Unlisten{Group: 9})
			close(done)
		})
		<-done
		// Listen/Unlisten above are queued; give them a beat to run.
		time.Sleep(5 * time.Millisecond)
		if probe.count() == 3 {
			c.Stacks[0].Call(consensus.Service, consensus.Listen{Group: 9, Handler: late.add})
			return true
		}
		return false
	})
	c.Eventually(timeout, "final replay", func() bool { return late.count() == 3 })
	// Replay must be in Seq order.
	// (decLog dedups by ID; order check needs a slice-based probe.)
}

func TestReproposeAfterDecisionReindicates(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("once")})
	waitDecisionEverywhere(t, c, logs, id, nil)
	// A second propose for the decided instance must re-indicate, not
	// restart the instance.
	got := make(chan consensus.Decide, 1)
	c.Stacks[1].Call(consensus.Service, consensus.Listen{Group: 0, Handler: func(d consensus.Decide) {
		select {
		case got <- d:
		default:
		}
	}})
	c.Stacks[1].Call(consensus.Service, consensus.Propose{ID: id, Value: []byte("again")})
	select {
	case d := <-got:
		if string(d.Value) != "once" {
			t.Errorf("re-indication value %q, want %q", d.Value, "once")
		}
	case <-time.After(timeout):
		t.Fatal("no re-indication")
	}
}

func TestForgetDropsGroupState(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("gone")})
	waitDecisionEverywhere(t, c, logs, id, nil)
	c.Stacks[0].Call(consensus.Service, consensus.Forget{Group: 0})
	c.OnSync(0, func() {})
	// After Forget, a fresh listener sees no replay.
	probe := newDecLog()
	c.Stacks[0].Call(consensus.Service, consensus.Listen{Group: 0, Handler: probe.add})
	c.OnSync(0, func() {})
	time.Sleep(10 * time.Millisecond)
	if probe.count() != 0 {
		t.Errorf("replayed %d decisions after Forget", probe.count())
	}
}

func TestUniformIntegritySingleDecisionValue(t *testing.T) {
	// Run several instances with conflicting proposals under jitter and
	// verify every stack decided the same single value per instance.
	c, logs := build(t, 5, simnet.Config{Seed: 8, Jitter: 2 * time.Millisecond}, fastFD())
	const k = 10
	for seq := uint64(0); seq < k; seq++ {
		vals := make([][]byte, 5)
		for i := range vals {
			vals[i] = []byte(fmt.Sprintf("s%d-i%d", seq, i))
		}
		proposeAll(c, consensus.InstanceID{Group: 0, Seq: seq}, vals)
	}
	for seq := uint64(0); seq < k; seq++ {
		waitDecisionEverywhere(t, c, logs, consensus.InstanceID{Group: 0, Seq: seq}, nil)
	}
}

// TestRefetchReindicatesCachedDecision: Refetch replays one cached
// decision to the group's listener (the recovery path for users that
// bound their own out-of-order decision buffers) and is a no-op for
// undecided instances.
func TestRefetchReindicatesCachedDecision(t *testing.T) {
	c, logs := build(t, 3, simnet.Config{}, fastFD())
	id := consensus.InstanceID{Group: 0, Seq: 0}
	proposeAll(c, id, [][]byte{[]byte("v")})
	want := waitDecisionEverywhere(t, c, logs, id, nil)

	var mu sync.Mutex
	var replayed []consensus.Decide
	c.OnSync(0, func() {})
	c.Stacks[0].Call(consensus.Service, consensus.Listen{Group: 0, Handler: func(d consensus.Decide) {
		mu.Lock()
		replayed = append(replayed, d)
		mu.Unlock()
	}})
	c.OnSync(0, func() {}) // Listen replays the cache once
	mu.Lock()
	base := len(replayed)
	mu.Unlock()
	c.Stacks[0].Call(consensus.Service, consensus.Refetch{ID: id})
	c.Stacks[0].Call(consensus.Service, consensus.Refetch{ID: consensus.InstanceID{Group: 0, Seq: 99}})
	c.OnSync(0, func() {})
	mu.Lock()
	defer mu.Unlock()
	if len(replayed) != base+1 {
		t.Fatalf("refetch replayed %d decisions, want exactly 1 (the decided instance)", len(replayed)-base)
	}
	got := replayed[len(replayed)-1]
	if got.ID != id || !bytes.Equal(got.Value, want) {
		t.Fatalf("refetch replayed %v/%q, want %v/%q", got.ID, got.Value, id, want)
	}
}
