package consensus

import (
	"bytes"
	"testing"

	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/rp2p"
	"repro/internal/wire"
)

// newBareModule builds a consensus module on a bare kernel stack with no
// substrate services bound. Outgoing rp2p/rbcast calls park harmlessly,
// which is exactly what a white-box test wants: it injects the messages
// of the other participants by hand and inspects the state machine
// directly, so a specific interleaving can be replayed deterministically
// instead of hoping a network schedule reproduces it.
func newBareModule(t *testing.T, self kernel.Addr) (*kernel.Stack, *Module) {
	t.Helper()
	st := kernel.NewStack(kernel.Config{Addr: self, Peers: []kernel.Addr{0, 1, 2}})
	t.Cleanup(func() { st.Close() })
	var m *Module
	if err := st.DoSync(func() {
		m = FactoryWith(Config{}).New(st).(*Module)
	}); err != nil {
		t.Fatal(err)
	}
	return st, m
}

func roundMsg(typ byte, id InstanceID, round uint64) *wire.Writer {
	w := wire.NewWriter(64)
	w.Byte(typ).Uvarint(id.Group).Uvarint(id.Seq).Uvarint(round)
	return w
}

func proposalMsg(id InstanceID, round uint64, val []byte) []byte {
	w := roundMsg(msgPropose, id, round)
	w.Raw(val)
	return w.Bytes()
}

func estMsg(id InstanceID, round, ts uint64, val []byte) []byte {
	w := roundMsg(msgEst, id, round)
	w.Uvarint(ts).Raw(val)
	return w.Bytes()
}

// TestRoundZeroAdoptionOutranksInitialEstimates replays the interleaving
// that once produced two decisions for a single instance (observed as
// total-order divergence by the scenario corpus over real sockets):
//
//	stack 0 (round-0 coordinator) proposes v0;
//	stack 2 adopts v0 and acks — v0 is locked at the majority {0, 2};
//	stack 1, partitioned from 0, suspects it, nacks round 0 and becomes
//	the round-1 coordinator with its own initial value v1 and the
//	round-1 estimate of stack 2.
//
// CT's locking argument requires stack 1 to prefer stack 2's adopted
// estimate: an estimate adopted in round r must carry a timestamp that
// outranks every estimate of rounds < r, including the initial ones
// (timestamp 0). When round-0 adoptions were stamped with the round
// number itself, they tied with initial estimates, the tie broke by
// lowest address, and stack 1 proposed v1 over the locked v0 — two
// coordinators then decided different values.
func TestRoundZeroAdoptionOutranksInitialEstimates(t *testing.T) {
	id := InstanceID{Group: 1, Seq: 643}
	v0 := []byte("locked-in-round-0")
	v1 := []byte("round-1-coordinator-initial")

	// Participant side: stack 2 adopts the round-0 proposal. Capture the
	// timestamp and value its round-1 estimate would carry.
	st2, m2 := newBareModule(t, 2)
	var adoptedTS uint64
	var adoptedVal []byte
	if err := st2.DoSync(func() {
		m2.propose(Propose{ID: id, Value: []byte("stack2-initial")})
		m2.onRecv(rp2p.Recv{From: 0, Channel: rp2pChannel, Data: proposalMsg(id, 0, v0)})
		inst := m2.inst(id)
		adoptedTS, adoptedVal = inst.ts, inst.est
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adoptedVal, v0) {
		t.Fatalf("participant adopted %q, want the coordinator's proposal %q", adoptedVal, v0)
	}
	if adoptedTS == 0 {
		t.Fatalf("round-0 adoption carries timestamp 0: indistinguishable from an initial estimate, so a later coordinator may override the locked value")
	}

	// Coordinator side: stack 1 missed round 0 entirely (suspicion, nack)
	// and coordinates round 1 with its own initial estimate plus stack 2's
	// — carrying exactly what the participant code above produced.
	st1, m1 := newBareModule(t, 1)
	var proposal []byte
	var proposed bool
	if err := st1.DoSync(func() {
		m1.propose(Propose{ID: id, Value: v1})
		m1.HandleIndication(fd.Service, fd.Suspect{P: 0})
		// The stack's own round-1 estimate, as rp2p loopback would deliver it.
		m1.onRecv(rp2p.Recv{From: 1, Channel: rp2pChannel, Data: estMsg(id, 1, 0, v1)})
		m1.onRecv(rp2p.Recv{From: 2, Channel: rp2pChannel, Data: estMsg(id, 1, adoptedTS, adoptedVal)})
		proposal, proposed = m1.inst(id).proposals[1]
	}); err != nil {
		t.Fatal(err)
	}
	if !proposed {
		t.Fatal("round-1 coordinator did not propose despite a majority of estimates")
	}
	if !bytes.Equal(proposal, v0) {
		t.Fatalf("round-1 coordinator proposed %q over the value locked in round 0 %q: agreement is violated if the round-0 decision went through", proposal, v0)
	}
}
