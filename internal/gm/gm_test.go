package gm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/stacktest"
	"repro/internal/udp"
)

const timeout = 20 * time.Second

type viewLog struct {
	kernel.Base
	mu    sync.Mutex
	views []gm.View
}

func (l *viewLog) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	if v, ok := ind.(gm.NewView); ok {
		l.mu.Lock()
		l.views = append(l.views, v.View)
		l.mu.Unlock()
	}
}

func (l *viewLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.views)
}

func (l *viewLog) snapshot() []gm.View {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]gm.View(nil), l.views...)
}

func build(t *testing.T, n int) (*stacktest.Cluster, []*viewLog) {
	t.Helper()
	c := stacktest.New(t, n, simnet.Config{}, nil)
	c.Reg.MustRegister(udp.Factory(c.Tr))
	c.Reg.MustRegister(rp2p.Factory(rp2p.Config{RTO: 5 * time.Millisecond}))
	c.Reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	c.Reg.MustRegister(fd.Factory(fd.Config{Interval: 5 * time.Millisecond, Timeout: 60 * time.Millisecond}))
	c.Reg.MustRegister(consensus.Factory())
	c.Reg.MustRegister(core.Factory(core.Config{InitialProtocol: abcast.ProtocolCT, Grace: 100 * time.Millisecond}))
	c.Reg.MustRegister(gm.Factory())
	c.CreateAll(gm.Protocol)
	logs := make([]*viewLog, n)
	for i := range logs {
		i := i
		c.OnSync(i, func() {
			logs[i] = &viewLog{Base: kernel.NewBase(c.Stacks[i], "view-log")}
			c.Stacks[i].AddModule(logs[i])
			c.Stacks[i].Subscribe(gm.Service, logs[i])
		})
	}
	return c, logs
}

func TestInitialViewContainsAllPeers(t *testing.T) {
	c, _ := build(t, 3)
	got := make(chan gm.View, 1)
	c.Stacks[0].Call(gm.Service, gm.ViewReq{Reply: func(v gm.View) { got <- v }})
	select {
	case v := <-got:
		if v.ID != 0 || len(v.Members) != 3 {
			t.Errorf("initial view %+v", v)
		}
		if !v.Contains(0) || !v.Contains(2) || v.Contains(7) {
			t.Errorf("Contains broken: %+v", v)
		}
	case <-time.After(timeout):
		t.Fatal("no view reply")
	}
}

func TestLeaveAndJoinProduceConsistentViews(t *testing.T) {
	// Views now drive the whole stack: an evicted member halts its
	// participation, so view agreement is checked on the members of each
	// view. The rejoin of the (now inert) id still commits consistently
	// on the surviving members.
	c, logs := build(t, 3)
	c.Stacks[0].Call(gm.Service, gm.Leave{P: 1})
	c.Eventually(timeout, "view 1 everywhere", func() bool {
		for _, l := range logs {
			if l.count() < 1 {
				return false
			}
		}
		return true
	})
	c.Stacks[2].Call(gm.Service, gm.Join{P: 1})
	c.Eventually(timeout, "view 2 on the survivors", func() bool {
		return logs[0].count() >= 2 && logs[2].count() >= 2
	})
	for _, i := range []int{0, 2} {
		vs := logs[i].snapshot()
		if vs[0].ID != 1 || len(vs[0].Members) != 2 || vs[0].Contains(1) {
			t.Errorf("stack %d view[0] = %+v", i, vs[0])
		}
		if vs[1].ID != 2 || len(vs[1].Members) != 3 || !vs[1].Contains(1) {
			t.Errorf("stack %d view[1] = %+v", i, vs[1])
		}
	}
	// The evicted stack observed its own eviction and nothing after.
	vs := logs[1].snapshot()
	if len(vs) < 1 || vs[0].ID != 1 || vs[0].Contains(1) {
		t.Errorf("evicted stack views = %+v", vs)
	}
}

func TestConcurrentOpsTotallyOrdered(t *testing.T) {
	// Two conflicting operations issued concurrently must be applied in
	// the same order on every stack (GM inherits ABcast's total order).
	// Each eviction halts its target, so every stack observes a prefix
	// of the same view sequence; the sole remaining member sees both.
	c, logs := build(t, 3)
	c.Stacks[0].Call(gm.Service, gm.Leave{P: 2})
	c.Stacks[1].Call(gm.Service, gm.Leave{P: 0})
	c.Eventually(timeout, "both ops on the survivor", func() bool {
		return logs[1].count() >= 2
	})
	ref := logs[1].snapshot()
	if len(ref[0].Members) != 2 || len(ref[1].Members) != 1 || !ref[1].Contains(1) {
		t.Fatalf("survivor view sequence %+v", ref)
	}
	for i, l := range logs {
		vs := l.snapshot()
		if len(vs) > len(ref) {
			t.Fatalf("stack %d saw %d views, survivor saw %d", i, len(vs), len(ref))
		}
		for k := range vs {
			if fmt.Sprintf("%v", vs[k]) != fmt.Sprintf("%v", ref[k]) {
				t.Fatalf("stack %d view[%d] = %+v, survivor saw %+v", i, k, vs[k], ref[k])
			}
		}
	}
}

func TestDuplicateOpsAreIdempotent(t *testing.T) {
	c, logs := build(t, 3)
	c.Stacks[0].Call(gm.Service, gm.Leave{P: 1})
	c.Stacks[0].Call(gm.Service, gm.Leave{P: 1}) // second leave: no new view
	c.Eventually(timeout, "first view", func() bool { return logs[0].count() >= 1 })
	time.Sleep(100 * time.Millisecond)
	for i, l := range logs {
		if l.count() != 1 {
			t.Errorf("stack %d got %d views, want 1 (duplicate op applied)", i, l.count())
		}
	}
}

func TestViewsSurviveProtocolSwitch(t *testing.T) {
	// The paper's modularity claim: GM depends on the abcast service and
	// must keep working, unaware, across the replacement — and the
	// replacement must keep working across view changes (both are epoch
	// bumps ordered through the same stream).
	c, logs := build(t, 3)
	c.Stacks[0].Call(gm.Service, gm.Leave{P: 2})
	c.Eventually(timeout, "pre-switch view", func() bool {
		for _, l := range logs {
			if l.count() < 1 {
				return false
			}
		}
		return true
	})
	c.Stacks[1].Call(core.Service, core.ChangeProtocol{Protocol: abcast.ProtocolSeq})
	c.Stacks[0].Call(gm.Service, gm.Join{P: 2})
	c.Eventually(timeout, "post-switch view on the survivors", func() bool {
		return logs[0].count() >= 2 && logs[1].count() >= 2
	})
	for _, i := range []int{0, 1} {
		vs := logs[i].snapshot()
		if vs[1].ID != 2 || !vs[1].Contains(2) {
			t.Errorf("stack %d post-switch view %+v", i, vs[1])
		}
	}
	// The membership op raced a protocol change; whatever order they
	// committed in, both survivors agree on the final protocol & epoch.
	status := func(i int) core.Status {
		got := make(chan core.Status, 1)
		c.Stacks[i].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
		return <-got
	}
	c.Eventually(timeout, "survivors converge", func() bool {
		a, b := status(0), status(1)
		return a.Sn == b.Sn && a.Protocol == b.Protocol
	})
}
