// Package gm implements the GM module of the paper's stack (Figure 4):
// a group membership service maintaining a consistent sequence of views
// among all group members. View changes are totally ordered by the
// *public* atomic broadcast service — the one provided by the
// replacement module — which makes GM the paper's example of a protocol
// that depends on the updated protocol and keeps providing service,
// unaware, while ABcast is replaced underneath it.
//
// GM is the policy layer: it validates join/leave requests, optionally
// converts failure-detector suspicions into proposed evictions
// (Config.AutoEvict), and publishes NewView indications. The mechanics
// — ordering the operation, bumping the epoch, swapping the peer set on
// every layer, reissuing undelivered messages — live in the replacement
// module (core.ChangeView), so a membership change reconfigures rbcast
// destinations, rp2p peer state, fd monitors, consensus quorums and
// transport routes at one point of the total order.
package gm

import (
	"sort"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/metrics"
)

// Service is the group membership service.
const Service kernel.ServiceID = "gm"

// Protocol is the protocol name registered for this module.
const Protocol = "gm"

// autoEvictCounter counts fd suspicions GM turned into eviction
// proposals (ordered through ABcast; duplicates commit as no-ops).
var autoEvictCounter = metrics.NewCounter("membership.auto_evict_proposals")

// View is one membership epoch.
type View struct {
	// ID increases by one with every membership change.
	ID uint64
	// Members is the sorted member list.
	Members []kernel.Addr
}

// clone returns a deep copy of the view.
func (v View) clone() View {
	return View{ID: v.ID, Members: append([]kernel.Addr(nil), v.Members...)}
}

// Contains reports whether p is a member.
func (v View) Contains(p kernel.Addr) bool {
	for _, m := range v.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Join requests adding a member; the resulting view change is totally
// ordered against all other membership operations and protocol
// switches.
type Join struct {
	// P is the member address to admit. Ignored when Assign is set.
	P kernel.Addr
	// Assign allocates a fresh member id deterministically at the
	// commit point (for nodes joining from outside the original id
	// space); the assigned id is reported through Reply.
	Assign bool
	// Endpoint is the joining node's transport endpoint, admitted into
	// every member's routing state when the view installs ("" over
	// implicit-routing fabrics such as simnet).
	Endpoint string
	// Reply, when non-nil, runs on the executor once the join commits
	// locally; it carries the sync cut a joiner boots from.
	Reply func(Result)
}

// Leave requests removing a member. The removed member, if alive,
// observes its own eviction and stops participating.
type Leave struct {
	P kernel.Addr
	// Reply, when non-nil, runs on the executor once the leave commits
	// locally.
	Reply func(Result)
}

// Result reports the commit of a Join or Leave: the installed view plus
// the coherent cut (epoch, protocol, endpoints, id-allocator position)
// a joining node needs to boot in sync with the group.
type Result struct {
	// View is the membership after the operation (the current one for a
	// no-op).
	View View
	// Member is the operand — for an Assign join, the id that was
	// allocated at the commit point.
	Member kernel.Addr
	// Epoch is the replacement layer's seqNumber after the operation;
	// a joiner's first implementation instance is scoped to it.
	Epoch uint64
	// Protocol is the atomic-broadcast implementation bound at Epoch.
	Protocol string
	// Endpoints maps members to transport endpoints, where known.
	Endpoints map[kernel.Addr]string
	// NextID is the id-allocator position after the operation.
	NextID kernel.Addr
	// NoOp marks an operation that matched the current view (joining a
	// present member, removing an absent one).
	NoOp bool
	// Err is non-nil when the operation failed validation or wiring.
	Err error
}

// ViewReq asks for the current view, delivered through Reply on the
// executor.
type ViewReq struct {
	Reply func(View)
}

// NewView is indicated on Service whenever a view is installed.
type NewView struct {
	View View
}

// Config tunes the membership module.
type Config struct {
	// AutoEvict proposes an eviction (ordered through ABcast, so every
	// survivor installs the identical view) whenever the failure
	// detector suspects a member. A false suspicion that commits still
	// yields a consistent view, but eviction is final for that member
	// id: the victim halts its participation and survivors discard its
	// connection state. A falsely evicted machine returns by joining
	// again under a fresh id (dpu.Cluster.AddNode / dpu.Join).
	AutoEvict bool
	// InitialViewID seeds the view counter; a joining node boots with
	// the value its sponsor reported so its view sequence lines up with
	// the founders'.
	InitialViewID uint64
}

// Module implements group membership.
type Module struct {
	kernel.Base
	cfg  Config
	view View

	// proposed tracks suspects this stack already proposed for eviction,
	// so a flapping detector does not spam the total order.
	proposed map[kernel.Addr]bool
}

// Factory returns the module factory with the default configuration.
// It requires the public abcast service (core.Service), not any
// particular implementation.
func Factory() kernel.Factory { return FactoryWith(Config{}) }

// FactoryWith returns the module factory for a configured GM (auto
// eviction, joiner view seeding).
func FactoryWith(cfg Config) kernel.Factory {
	requires := []kernel.ServiceID{core.Service}
	if cfg.AutoEvict {
		requires = append(requires, fd.Service)
	}
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: requires,
		New: func(st *kernel.Stack) kernel.Module {
			members := append([]kernel.Addr(nil), st.Peers()...)
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			return &Module{
				Base:     kernel.NewBase(st, Protocol),
				cfg:      cfg,
				view:     View{ID: cfg.InitialViewID, Members: members},
				proposed: make(map[kernel.Addr]bool),
			}
		},
	}
}

// Start subscribes to the public abcast service (view commits) and,
// with AutoEvict, to the failure detector.
func (m *Module) Start() {
	m.Stk.Subscribe(core.Service, m)
	if m.cfg.AutoEvict {
		m.Stk.Subscribe(fd.Service, m)
	}
}

// Stop unsubscribes.
func (m *Module) Stop() {
	m.Stk.Unsubscribe(core.Service, m)
	if m.cfg.AutoEvict {
		m.Stk.Unsubscribe(fd.Service, m)
	}
}

// HandleRequest processes Join, Leave and ViewReq.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Join:
		m.Stk.Call(core.Service, core.ChangeView{
			Op: core.ViewJoin, Member: r.P, Assign: r.Assign,
			Endpoint: r.Endpoint, Reply: adaptReply(r.Reply),
		})
	case Leave:
		m.Stk.Call(core.Service, core.ChangeView{
			Op: core.ViewLeave, Member: r.P, Reply: adaptReply(r.Reply),
		})
	case ViewReq:
		if r.Reply != nil {
			r.Reply(m.view.clone())
		}
	}
}

// adaptReply converts a core.ViewReply into the gm.Result surface.
func adaptReply(reply func(Result)) func(core.ViewReply) {
	if reply == nil {
		return nil
	}
	return func(vr core.ViewReply) {
		if vr.Err != nil {
			reply(Result{Err: vr.Err})
			return
		}
		reply(Result{
			View:      View{ID: vr.Ev.ViewID, Members: vr.Ev.Members},
			Member:    vr.Ev.Member,
			Epoch:     vr.Ev.Sn,
			Protocol:  vr.Ev.Protocol,
			Endpoints: vr.Ev.Endpoints,
			NextID:    vr.Ev.NextID,
			NoOp:      vr.Ev.NoOp,
		})
	}
}

// HandleIndication mirrors committed view changes into the public view
// stream and, with AutoEvict, turns suspicions into proposed evictions.
func (m *Module) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case core.ViewChange:
		m.view = View{ID: v.ViewID, Members: append([]kernel.Addr(nil), v.Members...)}
		if v.Op == core.ViewJoin {
			delete(m.proposed, v.Member) // a rejoiner is proposable again
		}
		m.Stk.Indicate(Service, NewView{View: m.view.clone()})
	case fd.Suspect:
		if !m.cfg.AutoEvict || m.proposed[v.P] || !m.view.Contains(v.P) {
			return
		}
		m.proposed[v.P] = true
		autoEvictCounter.Add(1)
		m.Stk.Call(core.Service, core.ChangeView{Op: core.ViewLeave, Member: v.P})
	case fd.Restore:
		// The suspicion was false and the eviction may or may not have
		// committed; either way the peer is proposable again if it is
		// (still or again) a member.
		delete(m.proposed, v.P)
	}
}
