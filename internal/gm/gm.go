// Package gm implements the GM module of the paper's stack (Figure 4):
// a group membership service maintaining a consistent sequence of views
// among all group members. View changes are totally ordered by the
// *public* atomic broadcast service — the one provided by the
// replacement module — which makes GM the paper's example of a protocol
// that depends on the updated protocol and keeps providing service,
// unaware, while ABcast is replaced underneath it.
package gm

import (
	"sort"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/kernel"
	"repro/internal/wire"
)

// Service is the group membership service.
const Service kernel.ServiceID = "gm"

// Protocol is the protocol name registered for this module.
const Protocol = "gm"

// View is one membership epoch.
type View struct {
	// ID increases by one with every membership change.
	ID uint64
	// Members is the sorted member list.
	Members []kernel.Addr
}

// clone returns a deep copy of the view.
func (v View) clone() View {
	return View{ID: v.ID, Members: append([]kernel.Addr(nil), v.Members...)}
}

// Contains reports whether p is a member.
func (v View) Contains(p kernel.Addr) bool {
	for _, m := range v.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Join requests adding a member; the resulting view change is totally
// ordered against all other membership operations.
type Join struct {
	P kernel.Addr
}

// Leave requests removing a member.
type Leave struct {
	P kernel.Addr
}

// ViewReq asks for the current view, delivered through Reply on the
// executor.
type ViewReq struct {
	Reply func(View)
}

// NewView is indicated on Service whenever the view changes.
type NewView struct {
	View View
}

const (
	opJoin  byte = 0
	opLeave byte = 1
)

// Module implements group membership.
type Module struct {
	kernel.Base
	view View
}

// Factory returns the module factory. It requires the public abcast
// service (core.Service), not any particular implementation.
func Factory() kernel.Factory {
	return kernel.Factory{
		Protocol: Protocol,
		Provides: []kernel.ServiceID{Service},
		Requires: []kernel.ServiceID{core.Service},
		New: func(st *kernel.Stack) kernel.Module {
			members := append([]kernel.Addr(nil), st.Peers()...)
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			return &Module{
				Base: kernel.NewBase(st, Protocol),
				view: View{ID: 0, Members: members},
			}
		},
	}
}

// Start subscribes to the public abcast service.
func (m *Module) Start() {
	m.Stk.Subscribe(core.Service, m)
}

// Stop unsubscribes.
func (m *Module) Stop() {
	m.Stk.Unsubscribe(core.Service, m)
}

// HandleRequest processes Join, Leave and ViewReq.
func (m *Module) HandleRequest(_ kernel.ServiceID, req kernel.Request) {
	switch r := req.(type) {
	case Join:
		m.broadcastOp(opJoin, r.P)
	case Leave:
		m.broadcastOp(opLeave, r.P)
	case ViewReq:
		if r.Reply != nil {
			r.Reply(m.view.clone())
		}
	}
}

func (m *Module) broadcastOp(op byte, p kernel.Addr) {
	w := wire.NewWriter(12)
	w.Byte(op).Uvarint(uint64(p))
	m.Stk.Call(core.Service, core.Broadcast{Data: envelope.Wrap(envelope.KindGM, w.Bytes())})
}

// HandleIndication processes totally-ordered membership operations.
func (m *Module) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	d, ok := ind.(core.Deliver)
	if !ok {
		return
	}
	kind, body, err := envelope.Unwrap(d.Data)
	if err != nil || kind != envelope.KindGM {
		return
	}
	r := wire.NewReader(body)
	op := r.Byte()
	p := kernel.Addr(r.Uvarint())
	if r.Err() != nil {
		return
	}
	switch op {
	case opJoin:
		if m.view.Contains(p) {
			return
		}
		m.view.ID++
		m.view.Members = append(m.view.Members, p)
		sort.Slice(m.view.Members, func(i, j int) bool { return m.view.Members[i] < m.view.Members[j] })
	case opLeave:
		if !m.view.Contains(p) {
			return
		}
		m.view.ID++
		kept := m.view.Members[:0]
		for _, q := range m.view.Members {
			if q != p {
				kept = append(kept, q)
			}
		}
		m.view.Members = kept
	default:
		return
	}
	m.Stk.Indicate(Service, NewView{View: m.view.clone()})
}
