// Package workload generates the constant-rate atomic-broadcast load of
// the paper's benchmark (Section 6.2): every stack issues fixed-size
// messages at a fixed rate; each message carries its id and send
// timestamp so receivers can compute latency without a global clock
// (the whole group shares one process here, so time.Now is a perfectly
// synchronized clock).
package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Payload is a decoded workload message.
type Payload struct {
	ID     metrics.MsgID
	SentAt time.Time
}

// Encode builds a workload payload of exactly size bytes (minimum
// header size applies; padding fills the rest).
func Encode(id metrics.MsgID, at time.Time, size int) []byte {
	w := wire.NewWriter(size + 20)
	w.Uvarint(uint64(id)).Varint(at.UnixNano())
	if pad := size - w.Len(); pad > 0 {
		w.Raw(make([]byte, pad))
	}
	return w.Bytes()
}

// Decode parses a workload payload.
func Decode(data []byte) (Payload, bool) {
	r := wire.NewReader(data)
	id := metrics.MsgID(r.Uvarint())
	nanos := r.Varint()
	if r.Err() != nil {
		return Payload{}, false
	}
	return Payload{ID: id, SentAt: time.Unix(0, nanos)}, true
}

// Config parameterises one generator.
type Config struct {
	// RatePerStack is messages per second issued by each stack.
	RatePerStack float64
	// PayloadSize is the encoded message size in bytes.
	PayloadSize int
}

// Generator drives constant load into a group. Send is invoked with a
// stack index and an encoded payload; the generator handles pacing, id
// assignment and recording.
type Generator struct {
	cfg      Config
	n        int
	rec      *metrics.Recorder
	send     func(stack int, payload []byte)
	nextID   atomic.Uint64
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewGenerator builds a generator for n stacks.
func NewGenerator(n int, cfg Config, rec *metrics.Recorder, send func(stack int, payload []byte)) *Generator {
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 128
	}
	return &Generator{cfg: cfg, n: n, rec: rec, send: send, stopCh: make(chan struct{})}
}

// Start launches one pacing goroutine per stack.
func (g *Generator) Start() {
	interval := time.Duration(float64(time.Second) / g.cfg.RatePerStack)
	if interval <= 0 {
		interval = time.Millisecond
	}
	for i := 0; i < g.n; i++ {
		i := i
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-g.stopCh:
					return
				case <-ticker.C:
					g.emit(i)
				}
			}
		}()
	}
}

func (g *Generator) emit(stack int) {
	id := metrics.MsgID(g.nextID.Add(1))
	//dpulint:ignore clocktime latency stamps compare send and delivery on the same host's wall clock; virtual runs do not use the latency recorder
	now := time.Now()
	g.rec.Sent(id, now)
	g.send(stack, Encode(id, now, g.cfg.PayloadSize))
}

// Burst synchronously emits k back-to-back messages from the stack,
// used to build a controlled in-flight backlog before a switch.
func (g *Generator) Burst(stack, k int) {
	for i := 0; i < k; i++ {
		g.emit(stack)
	}
}

// Sent returns the number of messages issued so far.
func (g *Generator) Sent() int { return int(g.nextID.Load()) }

// Stop halts pacing and waits for the goroutines to exit. Idempotent.
func (g *Generator) Stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	g.wg.Wait()
}
