package workload

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	at := time.Unix(0, 1718100000000000000)
	data := Encode(42, at, 256)
	if len(data) != 256 {
		t.Errorf("len = %d, want 256 (padded)", len(data))
	}
	p, ok := Decode(data)
	if !ok {
		t.Fatal("Decode failed")
	}
	if p.ID != 42 || !p.SentAt.Equal(at) {
		t.Errorf("decoded %+v", p)
	}
}

func TestEncodeSmallerThanHeaderStillWorks(t *testing.T) {
	data := Encode(1, time.Now(), 1)
	if _, ok := Decode(data); !ok {
		t.Error("Decode of minimal payload failed")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, ok := Decode(nil); ok {
		t.Error("Decode(nil) succeeded")
	}
	if _, ok := Decode([]byte{0x80}); ok {
		t.Error("Decode(truncated varint) succeeded")
	}
}

func TestQuickPayloadRoundtrip(t *testing.T) {
	f := func(id uint64, nanos int64, size uint16) bool {
		at := time.Unix(0, nanos)
		data := Encode(metrics.MsgID(id), at, int(size))
		p, ok := Decode(data)
		return ok && p.ID == metrics.MsgID(id) && p.SentAt.UnixNano() == nanos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorPacesAndRecords(t *testing.T) {
	rec := metrics.NewRecorder(1)
	var mu sync.Mutex
	perStack := make(map[int]int)
	gen := NewGenerator(3, Config{RatePerStack: 200, PayloadSize: 64}, rec,
		func(stack int, payload []byte) {
			if len(payload) != 64 {
				t.Errorf("payload size %d", len(payload))
			}
			p, ok := Decode(payload)
			if !ok {
				t.Error("generator produced undecodable payload")
				return
			}
			rec.Delivered(p.ID, time.Now())
			mu.Lock()
			perStack[stack]++
			mu.Unlock()
		})
	gen.Start()
	time.Sleep(100 * time.Millisecond)
	gen.Stop()
	gen.Stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(perStack) != 3 {
		t.Fatalf("stacks seen: %v", perStack)
	}
	total := 0
	for s, n := range perStack {
		if n == 0 {
			t.Errorf("stack %d sent nothing", s)
		}
		total += n
	}
	if gen.Sent() != total {
		t.Errorf("Sent() = %d, callbacks saw %d", gen.Sent(), total)
	}
	// Rough pacing check: 3 stacks * 200/s * 0.1s = 60 expected; allow
	// a wide band for scheduler noise.
	if total < 20 || total > 150 {
		t.Errorf("sent %d messages in 100ms at 3x200/s", total)
	}
	complete, sent := rec.Complete()
	if complete != sent {
		t.Errorf("recorder complete %d != sent %d", complete, sent)
	}
}

func TestGeneratorBurst(t *testing.T) {
	rec := metrics.NewRecorder(1)
	var count int
	var mu sync.Mutex
	gen := NewGenerator(2, Config{RatePerStack: 1}, rec, func(stack int, payload []byte) {
		mu.Lock()
		count++
		mu.Unlock()
		if stack != 1 {
			t.Errorf("burst from stack %d, want 1", stack)
		}
	})
	gen.Burst(1, 25)
	mu.Lock()
	defer mu.Unlock()
	if count != 25 || gen.Sent() != 25 {
		t.Errorf("burst sent %d (Sent=%d), want 25", count, gen.Sent())
	}
}

func TestGeneratorUniqueIDs(t *testing.T) {
	rec := metrics.NewRecorder(1)
	var mu sync.Mutex
	seen := make(map[metrics.MsgID]bool)
	gen := NewGenerator(4, Config{RatePerStack: 500}, rec, func(_ int, payload []byte) {
		p, _ := Decode(payload)
		mu.Lock()
		if seen[p.ID] {
			t.Errorf("duplicate id %d", p.ID)
		}
		seen[p.ID] = true
		mu.Unlock()
	})
	gen.Start()
	time.Sleep(50 * time.Millisecond)
	gen.Stop()
}
