package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual()
	var got []int
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	// Same deadline: registration order breaks the tie.
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 4) })
	for v.Step() {
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e := v.Elapsed(); e != 30*time.Millisecond {
		t.Fatalf("elapsed %v, want 30ms", e)
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if v.Step() {
		t.Fatal("no runnable events expected")
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualRunForAdvancesExactly(t *testing.T) {
	v := NewVirtual()
	var fired atomic.Int32
	v.AfterFunc(5*time.Millisecond, func() { fired.Add(1) })
	v.AfterFunc(50*time.Millisecond, func() { fired.Add(1) })
	v.RunFor(10 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("fired %d events, want 1", fired.Load())
	}
	if e := v.Elapsed(); e != 10*time.Millisecond {
		t.Fatalf("elapsed %v, want 10ms", e)
	}
	v.RunFor(40 * time.Millisecond)
	if fired.Load() != 2 {
		t.Fatalf("fired %d events, want 2", fired.Load())
	}
	if e := v.Elapsed(); e != 50*time.Millisecond {
		t.Fatalf("elapsed %v, want 50ms", e)
	}
}

func TestVirtualRearmChain(t *testing.T) {
	v := NewVirtual()
	var ticks int
	var arm func()
	arm = func() {
		v.AfterFunc(10*time.Millisecond, func() {
			ticks++
			if ticks < 5 {
				arm()
			}
		})
	}
	arm()
	v.RunFor(100 * time.Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

// fakeSource models an executor: work is accepted asynchronously and
// drains after a short real-time delay.
type fakeSource struct {
	mu       sync.Mutex
	accepted uint64
	pending  int
}

func (s *fakeSource) QueueState() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.pending == 0
}

func (s *fakeSource) push() {
	s.mu.Lock()
	s.accepted++
	s.pending++
	s.mu.Unlock()
}

func (s *fakeSource) drainOne() {
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
}

func TestVirtualQuiescenceWaitsForSources(t *testing.T) {
	v := NewVirtual()
	src := &fakeSource{}
	v.Register(src)

	drained := make(chan struct{})
	v.AfterFunc(time.Millisecond, func() {
		// The event hands work to the source; a background goroutine
		// drains it after a real-time delay. The next Step must not
		// fire until the drain completes.
		src.push()
		go func() {
			time.Sleep(20 * time.Millisecond)
			src.drainOne()
			close(drained)
		}()
	})
	ordered := true
	v.AfterFunc(2*time.Millisecond, func() {
		select {
		case <-drained:
		default:
			ordered = false
		}
	})
	for v.Step() {
	}
	if !ordered {
		t.Fatal("second event fired before the source quiesced")
	}
}

func TestWallClock(t *testing.T) {
	if IsVirtual(Wall) {
		t.Fatal("Wall must not be virtual")
	}
	before := time.Now()
	now := Wall.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Wall.Now too far in the past: %v", now)
	}
	done := make(chan struct{})
	tm := Wall.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
	if !IsVirtual(NewVirtual()) {
		t.Fatal("NewVirtual must be virtual")
	}
}
