// Package vclock abstracts time for the stack so whole clusters can run
// under discrete-event virtual time. Production code uses the Wall
// clock, which delegates to the runtime; simulations use Virtual, a
// deterministic event scheduler that advances time only when every
// registered event source (kernel executors) is quiescent.
//
// # Determinism
//
// The virtual clock guarantees a reproducible execution provided three
// properties hold, all of which the stack satisfies:
//
//  1. Every timer callback is registered through one Clock, so firing
//     order is the heap order (deadline, then registration sequence) —
//     there is no racing set of runtime timers.
//  2. The clock fires at most one event at a time and waits for full
//     quiescence (all executors idle, no queued work anywhere) before
//     firing the next, so the event cascade triggered by one firing is
//     serialized: shared randomness (the simnet fault RNG) is consumed
//     in a reproducible order.
//  3. Event sources do no wall-clock-dependent work of their own.
//
// Quiescence is detected with a double poll over a monotonic
// accepted-work counter: if every source reports idle and the total
// count is identical across two consecutive polls, no work was in
// flight between them (counters never decrease, so the check cannot be
// fooled by work that starts and finishes between polls).
package vclock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Timer is a cancellable pending callback, the clock-agnostic subset of
// *time.Timer. Stop reports whether it prevented the callback from
// firing.
type Timer interface {
	Stop() bool
}

// Clock supplies the two time operations the stack uses: reading the
// current instant and scheduling a callback.
type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, fn func()) Timer
}

// Wall is the real-time clock backed by the runtime.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// Source is an event consumer whose activity the virtual clock must
// observe to detect quiescence. QueueState returns a monotonic count of
// work items ever accepted and whether the source is currently idle
// (empty queue, no task running).
type Source interface {
	QueueState() (accepted uint64, idle bool)
}

// Registrar is implemented by clocks that track event sources. Code
// that builds stacks registers each one with the cluster's clock when
// the clock cares (the virtual clock does, the wall clock does not).
type Registrar interface {
	Register(Source)
}

// IsVirtual reports whether c is a virtual clock, letting callers pick
// non-blocking code paths that are safe to run on the clock goroutine.
func IsVirtual(c Clock) bool {
	_, ok := c.(*Virtual)
	return ok
}

// Virtual is a discrete-event clock. Timer callbacks run inline on the
// goroutine calling Step or RunFor (the driver), one at a time, each
// only after the previous event's cascade has fully drained.
//
// Step and RunFor must be called from a single goroutine; Now,
// AfterFunc, Stop and Register are safe from any goroutine.
type Virtual struct {
	mu     sync.Mutex
	base   time.Time
	now    int64 // nanoseconds since base
	events eventHeap
	seq    uint64

	srcMu sync.Mutex
	srcs  []Source
}

// NewVirtual creates a virtual clock. Time starts at a fixed arbitrary
// epoch so timestamps look plausible in traces but carry no relation to
// the host clock.
func NewVirtual() *Virtual {
	return &Virtual{base: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Base returns the clock's epoch: the instant Now reported before any
// time was stepped. Subtracting it from an event timestamp yields the
// event's virtual offset into the run.
func (v *Virtual) Base() time.Time { return v.base }

type vevent struct {
	at      int64
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
	index   int
}

type eventHeap []*vevent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*vevent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.base.Add(time.Duration(v.now))
}

// Elapsed returns how much virtual time has passed since creation.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return time.Duration(v.now)
}

// AfterFunc schedules fn to run after d of virtual time. The callback
// runs inline on the driver goroutine during Step or RunFor.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	ev := &vevent{at: v.now + int64(d), seq: v.seq, fn: fn}
	heap.Push(&v.events, ev)
	return &virtualTimer{v: v, ev: ev}
}

type virtualTimer struct {
	v  *Virtual
	ev *vevent
}

func (t *virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.ev.stopped || t.ev.fired {
		return false
	}
	t.ev.stopped = true
	if t.ev.index >= 0 {
		heap.Remove(&t.v.events, t.ev.index)
		t.ev.index = -1
	}
	return true
}

// Register adds an event source to the quiescence poll set. Sources are
// never removed: a stopped executor permanently reports idle.
func (v *Virtual) Register(s Source) {
	v.srcMu.Lock()
	defer v.srcMu.Unlock()
	v.srcs = append(v.srcs, s)
}

// pollSources returns the total accepted count and whether every source
// reports idle.
func (v *Virtual) pollSources() (uint64, bool) {
	v.srcMu.Lock()
	srcs := v.srcs
	v.srcMu.Unlock()
	var total uint64
	idle := true
	for _, s := range srcs {
		a, i := s.QueueState()
		total += a
		if !i {
			idle = false
		}
	}
	return total, idle
}

// quiesce blocks until every registered source is idle and no work was
// accepted between two consecutive polls.
func (v *Virtual) quiesce() {
	for spin := 0; ; spin++ {
		before, idle := v.pollSources()
		if idle {
			after, idleAgain := v.pollSources()
			if idleAgain && before == after {
				return
			}
		}
		if spin < 256 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// popNext removes and returns the earliest runnable event with deadline
// <= limit, advancing virtual time to it. A negative limit means no
// bound. Returns nil when no such event exists.
func (v *Virtual) popNext(limit int64) func() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.events.Len() > 0 {
		ev := v.events[0]
		if limit >= 0 && ev.at > limit {
			return nil
		}
		heap.Pop(&v.events)
		ev.index = -1
		if ev.stopped {
			continue
		}
		ev.fired = true
		if ev.at > v.now {
			v.now = ev.at
		}
		return ev.fn
	}
	return nil
}

// Step waits for quiescence, then fires the earliest pending event.
// It reports false when no events remain.
func (v *Virtual) Step() bool {
	v.quiesce()
	fn := v.popNext(-1)
	if fn == nil {
		return false
	}
	fn()
	return true
}

// RunFor advances virtual time by d, firing every event that falls due,
// and returns with all sources quiescent and the clock exactly d later.
func (v *Virtual) RunFor(d time.Duration) {
	v.mu.Lock()
	end := v.now + int64(d)
	v.mu.Unlock()
	for {
		v.quiesce()
		fn := v.popNext(end)
		if fn == nil {
			break
		}
		fn()
	}
	v.mu.Lock()
	if v.now < end {
		v.now = end
	}
	v.mu.Unlock()
}

// PendingEvents returns the number of scheduled, unfired, unstopped
// events (for tests and diagnostics).
func (v *Virtual) PendingEvents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, ev := range v.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}
