// Benchmarks regenerating the paper's evaluation (one per figure, plus
// the DESIGN.md ablations) and micro-benchmarks of every substrate
// layer. Run:
//
//	go test -bench=. -benchmem .
//
// Absolute numbers are for a simulated LAN on current hardware; the
// reproduction targets are the *shapes*: replacement-layer overhead of a
// few percent, a short latency spike around a replacement, Maestro's
// application blocking, and linear reissue cost.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/experiments"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udp"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BenchmarkFigure5LatencyTimeline runs the paper's Figure 5 experiment
// (constant load, one CT->CT replacement mid-run) once per iteration
// and reports the measured shape as custom metrics.
func BenchmarkFigure5LatencyTimeline(b *testing.B) {
	var baseline, during, window float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5(experiments.Figure5Config{
			N: 3, RatePerStack: 100, PayloadSize: 1024,
			Duration: 1200 * time.Millisecond, SwitchAt: 600 * time.Millisecond,
			Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseline += float64(res.BaselineAvg) / float64(time.Millisecond)
		during += float64(res.DuringAvg) / float64(time.Millisecond)
		window += float64(res.SwitchDone-res.SwitchStart) / float64(time.Millisecond)
	}
	b.ReportMetric(baseline/float64(b.N), "baseline-ms")
	b.ReportMetric(during/float64(b.N), "during-ms")
	b.ReportMetric(window/float64(b.N), "switch-window-ms")
}

// BenchmarkFigure6LoadSweep measures one (n, load) point of Figure 6
// per sub-benchmark, for each of the three curves.
func BenchmarkFigure6LoadSweep(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, variant := range []experiments.Manager{
			experiments.ManagerNone, experiments.ManagerRepl,
		} {
			b.Run(fmt.Sprintf("n%d/%s", n, variant), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					cl, err := experiments.BuildCluster(experiments.ClusterConfig{
						N: n, Manager: variant, Net: experiments.LANProfile(int64(i) + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					gen := workload.NewGenerator(n,
						workload.Config{RatePerStack: 150 / float64(n), PayloadSize: 1024},
						cl.Recorder, cl.Broadcast)
					gen.Start()
					time.Sleep(800 * time.Millisecond)
					gen.Stop()
					cl.WaitQuiesce(10 * time.Second)
					results := cl.Recorder.Results()
					var sum time.Duration
					for _, r := range results {
						sum += r.Avg
					}
					if len(results) > 0 {
						total += float64(sum/time.Duration(len(results))) / float64(time.Millisecond)
					}
					cl.Close()
				}
				b.ReportMetric(total/float64(b.N), "avg-latency-ms")
			})
		}
	}
}

// BenchmarkSwitchManagers is Ablation A: one switch under load per
// iteration for each replacement manager, reporting the disruption.
func BenchmarkSwitchManagers(b *testing.B) {
	for _, mgr := range []experiments.Manager{
		experiments.ManagerRepl, experiments.ManagerGraceful, experiments.ManagerMaestro,
	} {
		b.Run(string(mgr), func(b *testing.B) {
			var switchMS, duringMS float64
			for i := 0; i < b.N; i++ {
				cl, err := experiments.BuildCluster(experiments.ClusterConfig{
					N: 3, Manager: mgr, Net: experiments.LANProfile(int64(i) + 7),
				})
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.NewGenerator(3,
					workload.Config{RatePerStack: 60, PayloadSize: 512},
					cl.Recorder, cl.Broadcast)
				gen.Start()
				time.Sleep(200 * time.Millisecond)
				trigger := cl.ChangeProtocol(0, abcast.ProtocolCT)
				doneAt, ok := cl.WaitSwitched(0, 20*time.Second)
				if !ok {
					b.Fatal("switch stalled")
				}
				time.Sleep(150 * time.Millisecond)
				gen.Stop()
				cl.WaitQuiesce(10 * time.Second)
				var lats []time.Duration
				for _, r := range cl.Recorder.Results() {
					if !r.SentAt.Before(trigger) && r.SentAt.Before(doneAt) {
						lats = append(lats, r.Avg)
					}
				}
				var sum time.Duration
				for _, l := range lats {
					sum += l
				}
				if len(lats) > 0 {
					duringMS += float64(sum/time.Duration(len(lats))) / float64(time.Millisecond)
				}
				switchMS += float64(doneAt.Sub(trigger)) / float64(time.Millisecond)
				cl.Close()
			}
			b.ReportMetric(switchMS/float64(b.N), "switch-ms")
			b.ReportMetric(duringMS/float64(b.N), "during-lat-ms")
		})
	}
}

// BenchmarkSwitchReissue is Ablation B: switch duration as a function
// of the undelivered backlog reissued through the new protocol.
func BenchmarkSwitchReissue(b *testing.B) {
	for _, backlog := range []int{0, 100, 400} {
		b.Run(fmt.Sprintf("backlog%d", backlog), func(b *testing.B) {
			var switchMS float64
			for i := 0; i < b.N; i++ {
				rs, err := experiments.RunReissueScaling([]int{backlog}, int64(i)+13)
				if err != nil {
					b.Fatal(err)
				}
				switchMS += float64(rs[0].SwitchDuration) / float64(time.Millisecond)
			}
			b.ReportMetric(switchMS/float64(b.N), "switch-ms")
		})
	}
}

// BenchmarkSwitchMatrix is Ablation C: one cross-protocol switch per
// iteration for each ordered protocol pair.
func BenchmarkSwitchMatrix(b *testing.B) {
	pairs := [][2]string{
		{abcast.ProtocolCT, abcast.ProtocolSeq},
		{abcast.ProtocolSeq, abcast.ProtocolToken},
		{abcast.ProtocolToken, abcast.ProtocolCT},
	}
	for _, pair := range pairs {
		b.Run(fmt.Sprintf("%s_to_%s", pair[0][7:], pair[1][7:]), func(b *testing.B) {
			var switchMS float64
			for i := 0; i < b.N; i++ {
				c, err := dpu.New(3, dpu.WithSeed(int64(i)+17), dpu.WithInitialProtocol(pair[0]))
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				start := time.Now()
				if _, err := c.ChangeProtocolAll(ctx, pair[1]); err != nil {
					b.Fatalf("switch stalled: %v", err)
				}
				switchMS += float64(time.Since(start)) / float64(time.Millisecond)
				cancel()
				c.Close()
			}
			b.ReportMetric(switchMS/float64(b.N), "switch-ms")
		})
	}
}

// --- Micro-benchmarks per substrate layer ---

// BenchmarkWireEncodeDecode measures the codec used by every header.
func BenchmarkWireEncodeDecode(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := wire.NewWriter(len(payload) + 32)
		w.Byte(1).Uvarint(uint64(i)).Uvarint(42).String("abcast/ct").Raw(payload)
		r := wire.NewReader(w.Bytes())
		r.Byte()
		r.Uvarint()
		r.Uvarint()
		_ = r.String()
		r.Rest()
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

// BenchmarkKernelDispatch measures one service call through the
// executor and binding table.
func BenchmarkKernelDispatch(b *testing.B) {
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	defer st.Close()
	var handled atomic.Int64
	st.DoSync(func() {
		m := &countingModule{Base: kernel.NewBase(st, "bench"), count: &handled}
		st.AddModule(m)
		st.Bind("svc", m)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Call("svc", i)
	}
	st.DoSync(func() {})
	if handled.Load() != int64(b.N) {
		b.Fatalf("handled %d of %d", handled.Load(), b.N)
	}
}

type countingModule struct {
	kernel.Base
	count *atomic.Int64
}

func (m *countingModule) HandleRequest(kernel.ServiceID, kernel.Request) { m.count.Add(1) }

// benchGroup assembles n stacks with the full substrate for transport
// and protocol micro-benches.
type benchGroup struct {
	net    *simnet.Network
	stacks []*kernel.Stack
}

func newBenchGroup(b *testing.B, n int, protocols ...string) *benchGroup {
	b.Helper()
	g := &benchGroup{net: simnet.New(simnet.Config{
		BaseLatency: 50 * time.Microsecond, Seed: 1,
	})}
	reg := kernel.NewRegistry()
	reg.MustRegister(udp.Factory(transport.Sim(g.net)))
	reg.MustRegister(rp2p.Factory(rp2p.Config{}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	reg.MustRegister(fd.Factory(fd.Config{}))
	reg.MustRegister(consensus.Factory())
	peers := make([]kernel.Addr, n)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	for i := 0; i < n; i++ {
		st := kernel.NewStack(kernel.Config{Addr: kernel.Addr(i), Peers: peers, Registry: reg})
		g.stacks = append(g.stacks, st)
		err := st.DoSync(func() {
			for _, p := range protocols {
				if _, e := st.CreateProtocol(p); e != nil {
					b.Fatalf("create %s: %v", p, e)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		g.net.Close()
		for _, st := range g.stacks {
			st.Close()
		}
	})
	return g
}

// BenchmarkRP2PThroughput streams b.N reliable messages between two
// stacks.
func BenchmarkRP2PThroughput(b *testing.B) {
	g := newBenchGroup(b, 2, rp2p.Protocol)
	var got atomic.Int64
	done := make(chan struct{}, 1)
	total := int64(b.N)
	g.stacks[1].Call(rp2p.Service, rp2p.Listen{Channel: "bench", Handler: func(rp2p.Recv) {
		if got.Add(1) == total {
			done <- struct{}{}
		}
	}})
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.stacks[0].Call(rp2p.Service, rp2p.Send{To: 1, Channel: "bench", Data: payload})
	}
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		b.Fatalf("delivered %d of %d", got.Load(), b.N)
	}
}

// BenchmarkRBcastThroughput reliably broadcasts b.N messages in a
// 3-stack group.
func BenchmarkRBcastThroughput(b *testing.B) {
	g := newBenchGroup(b, 3, rbcast.Protocol)
	var got atomic.Int64
	done := make(chan struct{}, 1)
	total := int64(b.N) * 3
	for i := 0; i < 3; i++ {
		g.stacks[i].Call(rbcast.Service, rbcast.Listen{Channel: "bench", Handler: func(rbcast.Deliver) {
			if got.Add(1) == total {
				done <- struct{}{}
			}
		}})
	}
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.stacks[i%3].Call(rbcast.Service, rbcast.Broadcast{Channel: "bench", Data: payload})
	}
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		b.Fatalf("delivered %d of %d", got.Load(), total)
	}
}

// BenchmarkConsensusSequential decides b.N consensus instances one
// after another in a 3-stack group.
func BenchmarkConsensusSequential(b *testing.B) {
	g := newBenchGroup(b, 3, consensus.Protocol)
	decided := make(chan consensus.InstanceID, 16)
	var mu sync.Mutex
	seen := make(map[consensus.InstanceID]int)
	for i := 0; i < 3; i++ {
		g.stacks[i].Call(consensus.Service, consensus.Listen{Group: 0, Handler: func(d consensus.Decide) {
			mu.Lock()
			seen[d.ID]++
			full := seen[d.ID] == 3
			mu.Unlock()
			if full {
				decided <- d.ID
			}
		}})
	}
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := consensus.InstanceID{Group: 0, Seq: uint64(i)}
		for s := 0; s < 3; s++ {
			g.stacks[s].Call(consensus.Service, consensus.Propose{ID: id, Value: val})
		}
		select {
		case <-decided:
		case <-time.After(30 * time.Second):
			b.Fatalf("instance %d stalled", i)
		}
	}
}

// BenchmarkABcast measures end-to-end atomic broadcast throughput for
// each bundled implementation in a 3-stack group, through the full
// replacement layer (the paper's deployed shape), with sender-side
// batching enabled — the deployed configuration for heavy traffic. The
// unbatched per-message shape is covered by BenchmarkBroadcastLatency
// and the Figure 5/6 benches, which run with batching off.
func BenchmarkABcast(b *testing.B) {
	for _, proto := range []string{dpu.ProtocolCT, dpu.ProtocolSequencer, dpu.ProtocolToken} {
		b.Run(proto[7:], func(b *testing.B) {
			// The drainer must never lose a delivery to backpressure, so
			// size the channel for the whole run.
			c, err := dpu.New(3, dpu.WithSeed(3), dpu.WithInitialProtocol(proto),
				dpu.WithDeliveryBuffer(3*b.N+1024),
				dpu.WithBatching(500*time.Microsecond, 32<<10))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := make([]byte, 256)
			b.SetBytes(256)
			b.ReportAllocs()
			b.ResetTimer()
			gotAll := make(chan struct{}, 1)
			go func() {
				for i := 0; i < b.N*3; i++ {
					<-c.Deliveries(0)
				}
				gotAll <- struct{}{}
			}()
			for i := 0; i < b.N*3; i++ {
				if err := c.Broadcast(i%3, payload); err != nil {
					b.Fatal(err)
				}
			}
			select {
			case <-gotAll:
			case <-time.After(180 * time.Second):
				b.Fatal("broadcast stream stalled")
			}
		})
	}
}

// BenchmarkBroadcastLatency measures one round-trip (broadcast to
// self-delivery through total order) at a time — the per-message
// latency the paper's figures plot.
func BenchmarkBroadcastLatency(b *testing.B) {
	c, err := dpu.New(3, dpu.WithSeed(4))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Broadcast(0, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-c.Deliveries(0):
		case <-time.After(30 * time.Second):
			b.Fatal("delivery stalled")
		}
	}
}
