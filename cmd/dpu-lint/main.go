// Command dpu-lint runs the project's custom static analyzers (see
// docs/LINTING.md): clocktime, maporder, poolfree and executoronly.
//
// It runs in two modes:
//
//	dpu-lint ./...            whole-program mode: loads every package of
//	                          the enclosing module, runs the suite, and
//	                          prints findings to stdout (exit 1 if any).
//
//	go vet -vettool=$(which dpu-lint) ./...
//	                          vet-tool mode: cmd/go invokes the binary
//	                          once per package with a vet.cfg JSON file,
//	                          types come from gc export data, and
//	                          cross-package facts travel in .vetx files.
//
// The tool is self-contained: it implements the x/tools analysis
// contract on the standard library alone because the repository carries
// no third-party dependencies.
package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// zeroID is the placeholder content hash reported to cmd/go; vet
// results are cached against the tool binary, not this ID.
const zeroID = "00000000000000000000"

func main() {
	args := os.Args[1:]

	// go vet probes the tool before using it: -V=full must print a
	// version line and -flags the JSON list of tool flags (none here).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The devel format cmd/go's buildid parser accepts from a
		// vettool (see src/cmd/go/internal/work/buildid.go, toolID).
		fmt.Printf("%s version devel comments-go-here buildID=%s/%s/%s/%s\n",
			filepath.Base(os.Args[0]), zeroID, zeroID, zeroID, zeroID)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	os.Exit(standalone())
}

// standalone loads the whole module rooted above the working directory
// and runs the analyzer suite over every package.
func standalone() int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}
	findings, err := lint.RunProgram(prog, analyzers.All(), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Println(rel(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dpu-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// rel renders a finding with the filename relative to the module root.
func rel(root string, f lint.Finding) string {
	name := f.Pos.Filename
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		name = r
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// vetConfig mirrors the JSON cmd/go writes for each vet unit (see
// src/cmd/go/internal/work/exec.go, type vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package as directed by a vet.cfg file and
// returns the process exit code (0 clean, 1 tool error, 2 findings).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dpu-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(&cfg, err)
		}
		files = append(files, f)
	}

	// Resolve imports through gc export data, exactly as the compiler
	// did: source import path -> ImportMap -> PackageFile archive.
	compImp := importer.ForCompiler(fset, gcCompiler(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(&cfg, err)
	}

	// Facts of dependencies arrive as .vetx files (gob of the per-package
	// analyzer->blob map written by earlier units).
	facts := lint.NewFactStore()
	for pkgPath, vetxFile := range cfg.PackageVetx {
		m, err := readVetx(vetxFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpu-lint: reading facts of %s: %v\n", pkgPath, err)
			return 1
		}
		facts.SetPackage(pkgPath, m)
	}

	findings, err := lint.RunPackage(fset, cfg.ImportPath, files, tpkg, info, analyzers.All(), facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpu-lint:", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, facts.Package(cfg.ImportPath)); err != nil {
			fmt.Fprintln(os.Stderr, "dpu-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return 2
}

// typecheckFailed honors SucceedOnTypecheckFailure (cmd/go sets it when
// vet runs opportunistically) and still produces the facts file cmd/go
// expects to exist.
func typecheckFailed(cfg *vetConfig, err error) int {
	if cfg.VetxOutput != "" {
		_ = writeVetx(cfg.VetxOutput, nil)
	}
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "dpu-lint: %s: %v\n", cfg.ImportPath, err)
	return 1
}

// gcCompiler normalizes the compiler name for go/importer.
func gcCompiler(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

func readVetx(file string) (map[string][]byte, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m map[string][]byte
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, err
	}
	return m, nil
}

func writeVetx(file string, m map[string][]byte) error {
	if m == nil {
		m = map[string][]byte{}
	}
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
