package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/dpu"
	"repro/internal/transport"
)

// streamJSON records the stream-transport figure: the same broadcast
// workload over real UDP and real TCP loopback sockets across a
// payload sweep that deliberately crosses the UDP datagram ceiling.
// Below the ceiling the two backends are comparable; above it only the
// stream backend can carry the message at all (fragmented into
// DefaultMaxFragment chunks and reassembled), which is the point of
// the figure.
type streamJSON struct {
	N           int               `json:"n"`
	DatagramMax int               `json:"datagram_max"`
	Points      []streamPointJSON `json:"points"`
}

type streamPointJSON struct {
	PayloadBytes   int     `json:"payload_bytes"`
	Messages       int     `json:"messages"`
	UDPDeliverable bool    `json:"udp_deliverable"`
	UDPMsgsPerSec  float64 `json:"udp_msgs_per_sec,omitempty"`
	UDPMBPerSec    float64 `json:"udp_mb_per_sec,omitempty"`
	TCPMsgsPerSec  float64 `json:"tcp_msgs_per_sec"`
	TCPMBPerSec    float64 `json:"tcp_mb_per_sec"`
	TCPFragments   uint64  `json:"tcp_fragments"`
}

// udpPayloadCeiling is the largest app payload the figure trusts to a
// single datagram: MaxDatagram minus generous protocol-header room.
const udpPayloadCeiling = 60000

// reserveLoopbackStreamBook grabs n ephemeral loopback TCP ports, the
// stream twin of reserveLoopbackBook.
func reserveLoopbackStreamBook(n int) (map[transport.Addr]string, error) {
	book := make(map[transport.Addr]string, n)
	ls := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range ls {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ls = append(ls, l)
		book[transport.Addr(i)] = l.Addr().String()
	}
	return book, nil
}

// realTransportRun pushes msgs broadcasts per stack through a 3-stack
// cluster over the given real transport and returns delivered
// messages/sec on stack 0 (the shape of realUDPRun, transport-agnostic).
func realTransportRun(tr transport.Transport, msgs, payloadBytes int, seed int64) (float64, error) {
	c, err := dpu.New(3,
		dpu.WithTransport(tr), dpu.WithSeed(seed),
		dpu.WithDeliveryBuffer(3*msgs+1024),
		dpu.WithMaxOutstanding(16),
	)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	nodes := make([]*dpu.Node, 3)
	for i := range nodes {
		if nodes[i], err = c.Node(i); err != nil {
			return 0, err
		}
	}
	payload := make([]byte, payloadBytes)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < msgs*3; i++ {
			<-c.Deliveries(0)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	errc := make(chan error, 3)
	for s := 0; s < 3; s++ {
		go func(n *dpu.Node) {
			for i := 0; i < msgs; i++ {
				if err := n.Broadcast(ctx, payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(nodes[s])
	}
	for s := 0; s < 3; s++ {
		if err := <-errc; err != nil {
			return 0, err
		}
	}
	select {
	case <-done:
	case <-ctx.Done():
		return 0, fmt.Errorf("stream probe stalled at payload %d", payloadBytes)
	}
	return float64(msgs*3) / time.Since(start).Seconds(), nil
}

// streamProbe sweeps payload sizes across the datagram ceiling over
// both real-socket backends. The per-point message count scales down
// with payload size around a fixed byte budget so the big payloads
// don't dominate the wall clock.
func streamProbe(quick bool, seed int64) (*streamJSON, error) {
	payloads := []int{1024, 16 << 10, udpPayloadCeiling, 128 << 10, 512 << 10, 1 << 20}
	budget := 48 << 20
	if quick {
		payloads = []int{1024, udpPayloadCeiling, 256 << 10}
		budget = 12 << 20
	}
	out := &streamJSON{N: 3, DatagramMax: transport.MaxDatagram}
	for _, size := range payloads {
		msgs := budget / size
		if msgs > 2000 {
			msgs = 2000
		}
		if msgs < 10 {
			msgs = 10
		}
		pt := streamPointJSON{
			PayloadBytes:   size,
			Messages:       msgs * 3,
			UDPDeliverable: size <= udpPayloadCeiling,
		}
		if pt.UDPDeliverable {
			book, err := reserveLoopbackBook(3)
			if err != nil {
				return nil, err
			}
			utr, err := transport.NewUDP(transport.UDPConfig{Book: book, SocketBuffer: 4 << 20})
			if err != nil {
				return nil, err
			}
			rate, err := realTransportRun(utr, msgs, size, seed)
			if err != nil {
				return nil, fmt.Errorf("udp payload %d: %w", size, err)
			}
			pt.UDPMsgsPerSec = rate
			pt.UDPMBPerSec = rate * float64(size) / (1 << 20)
		}
		book, err := reserveLoopbackStreamBook(3)
		if err != nil {
			return nil, err
		}
		ttr, err := transport.NewTCP(transport.TCPConfig{Book: book})
		if err != nil {
			return nil, err
		}
		rate, err := realTransportRun(ttr, msgs, size, seed)
		if err != nil {
			return nil, fmt.Errorf("tcp payload %d: %w", size, err)
		}
		pt.TCPMsgsPerSec = rate
		pt.TCPMBPerSec = rate * float64(size) / (1 << 20)
		pt.TCPFragments = ttr.Stats().Fragments
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
