package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/scenario"
)

// Scenarios run through internal/scenario: declarative YAML timelines
// (scenarios/*.dpu.yaml, or any file via -scenario file:<path>)
// executed under virtual time with the invariant checkers on. The old
// wall-clock Go timelines this file used to hold are ported to the
// corpus 1:1 (see scenarios/ and TestParity); what used to take tens of
// wall seconds per timeline now takes well under a second.

// resolveScenarios expands the -scenario argument into parsed
// scenarios: "all" is the whole embedded corpus, "file:<path>" loads
// from disk, anything else is a corpus name; comma-separation mixes
// them.
func resolveScenarios(arg string) ([]*scenario.Scenario, error) {
	if arg == "all" {
		return scenario.Corpus()
	}
	var out []*scenario.Scenario
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		var (
			sc  *scenario.Scenario
			err error
		)
		if path, ok := strings.CutPrefix(tok, "file:"); ok {
			sc, err = scenario.LoadFile(path)
		} else {
			sc, err = scenario.ByName(tok)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scenario %q selects nothing", arg)
	}
	return out, nil
}

// runScenario executes one scenario and renders the schema-stable
// record. seed overrides the scenario's committed seed when non-nil
// (the -seed flag, only when set explicitly); transportOverride does
// the same for the fabric (the -transport flag): "sim" runs under
// virtual time, "udp"/"tcp" replay the timeline on the wall clock over
// real loopback sockets.
func runScenario(w io.Writer, sc *scenario.Scenario, seed *int64, transportOverride string) (*scenarioJSON, error) {
	res, err := scenario.Run(sc, scenario.Options{Seed: seed, Transport: transportOverride})
	if err != nil {
		return nil, err
	}

	policy := "manual"
	if sc.Adaptive != nil {
		policy = sc.Adaptive.Policy
	}
	out := &scenarioJSON{
		Name: res.Name, N: res.Nodes, Policy: policy, InitialProto: sc.Initial,
		Transport:    res.Transport,
		Seed:         res.Seed,
		Deliveries:   res.Counts.Deliveries,
		Views:        res.Counts.Views,
		AdviceEvents: res.Counts.Advice,
		Digest:       fmt.Sprintf("%016x", res.Digest),
		VirtualMs:    ms(res.VirtualTime),
		WallMs:       ms(res.WallTime),
	}
	for i, ph := range res.Phases {
		def := sc.Phases[i]
		rec := scenarioPhaseJSON{
			Name:         ph.Name,
			DurationMs:   ms(ph.End - ph.Start),
			WantProtocol: def.Expect.Protocol,
			EndProtocol:  ph.EndProtocol,
			Switches:     ph.Switches,
			// Run returns an error on a missed phase expectation, so a
			// demanded protocol that we got here with did converge.
			Converged: true,
		}
		if def.Env != nil {
			if def.Env.Loss != nil {
				rec.LossPct = *def.Env.Loss * 100
			}
			if def.Env.Latency != nil {
				rec.DelayUs = def.Env.Latency.Microseconds()
			}
		}
		out.Phases = append(out.Phases, rec)
		fmt.Fprintf(w, "  phase %-12s %6s virtual  ->  %-12s (%d switches%s)\n",
			ph.Name, ph.End-ph.Start, ph.EndProtocol, ph.Switches, wantNote(def.Expect.Protocol))
	}
	for _, sw := range res.Switches {
		out.Switches = append(out.Switches, scenarioEventJSON{
			AtMs: ms(sw.At), Protocol: sw.Protocol, Epoch: sw.Epoch,
		})
	}
	fmt.Fprintf(w, "  %d deliveries, %d views, digest %s — %s virtual in %s wall, invariants clean\n",
		out.Deliveries, out.Views, out.Digest,
		res.VirtualTime, res.WallTime.Round(time.Millisecond))
	return out, nil
}

func wantNote(want string) string {
	if want == "" {
		return ""
	}
	return ", converged to " + want
}
