package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/dpu"
)

// A scenario is a scripted environment timeline run against a live
// adaptive cluster over the simulated LAN: each phase reshapes the
// network at runtime (Cluster.SetLoss/SetDelay, link flaps) and then
// waits for the controller to converge to the protocol that fits —
// demonstrating, per phase, that the adaptation loop closes.
type scenarioPhase struct {
	name   string
	loss   float64
	delay  time.Duration
	want   string        // protocol the controller should converge to ("" = none expected)
	hold   time.Duration // dwell after convergence (or total phase time without want)
	flapMs int           // when > 0, flap the 0-1 link with this half-period
}

type scenarioDef struct {
	name    string
	initial string
	policy  dpu.AdaptivePolicy
	pname   string
	phases  []scenarioPhase
}

// scenarioDefs returns the bundled timelines. Delays/losses are chosen
// so the built-in policy thresholds are crossed decisively in both
// directions — the controller's convergence, not threshold tuning, is
// what the scenario measures.
func scenarioDefs(quick bool) map[string]scenarioDef {
	hold := 600 * time.Millisecond
	flapFor := 3 * time.Second
	if quick {
		hold = 300 * time.Millisecond
		flapFor = 1500 * time.Millisecond
	}
	return map[string]scenarioDef{
		// A clean path degrades to 30% loss and recovers: the
		// loss-sensitive controller must ride out the lossy phase on the
		// consensus protocol and return to the lean sequencer after.
		"loss-ramp": {
			name: "loss-ramp", initial: dpu.ProtocolSequencer,
			policy: dpu.LossSensitivePolicy(0, 0), pname: "loss-sensitive",
			phases: []scenarioPhase{
				{name: "clean", loss: 0, want: dpu.ProtocolSequencer, hold: hold},
				{name: "lossy", loss: 0.30, want: dpu.ProtocolCT, hold: hold},
				{name: "recovered", loss: 0, want: dpu.ProtocolSequencer, hold: hold},
			},
		},
		// The path latency steps from LAN-like 100µs to 5ms and back:
		// the latency-sensitive controller must trade consensus
		// round-trips for the sequencer's short path, then trade back.
		"latency-step": {
			name: "latency-step", initial: dpu.ProtocolCT,
			policy: dpu.LatencySensitivePolicy(0, 0), pname: "latency-sensitive",
			phases: []scenarioPhase{
				{name: "lan", delay: 100 * time.Microsecond, want: dpu.ProtocolCT, hold: hold},
				{name: "wan-step", delay: 5 * time.Millisecond, want: dpu.ProtocolSequencer, hold: hold},
				{name: "back", delay: 100 * time.Microsecond, want: dpu.ProtocolCT, hold: hold},
			},
		},
		// The 0-1 link flaps faster than any sensible reaction time:
		// hysteresis and cooldown must bound the controller to at most
		// one switch per cooldown window instead of one per flap (the
		// suppression counters in the JSON tell the story).
		"partition-flap": {
			name: "partition-flap", initial: dpu.ProtocolSequencer,
			policy: dpu.LossSensitivePolicy(0, 0), pname: "loss-sensitive",
			phases: []scenarioPhase{
				{name: "calm", loss: 0, want: dpu.ProtocolSequencer, hold: hold},
				{name: "flapping", flapMs: 150, hold: flapFor},
				{name: "healed", loss: 0, want: dpu.ProtocolSequencer, hold: hold},
			},
		},
	}
}

// runScenario executes one timeline and reports the per-phase record.
func runScenario(w io.Writer, def scenarioDef, seed int64, quick bool) (*scenarioJSON, error) {
	const n = 3
	cooldown := 300 * time.Millisecond
	c, err := dpu.New(n,
		dpu.WithSeed(seed),
		dpu.WithInitialProtocol(def.initial),
		dpu.WithAdaptive(def.policy,
			dpu.AdaptiveInterval(25*time.Millisecond),
			dpu.AdaptiveConfirm(2),
			dpu.AdaptiveCooldown(cooldown)),
	)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	node, err := c.Node(0)
	if err != nil {
		return nil, err
	}
	sub, err := node.Subscribe(dpu.SubscribeOptions{Switches: true, Advice: true, Buffer: 256})
	if err != nil {
		return nil, err
	}

	// Continuous workload so the controller has signals to sample.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sender, err := c.Node(i)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() { <-stop; cancel() }()
			payload := []byte("scenario-workload-payload")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := sender.Broadcast(ctx, payload); err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	// Event collectors.
	start := time.Now()
	var (
		evMu     sync.Mutex
		switches []scenarioEventJSON
		advice   atomic.Int64
	)
	var collectorWG sync.WaitGroup
	collectorWG.Add(2)
	go func() {
		defer collectorWG.Done()
		for ev := range sub.Switches() {
			evMu.Lock()
			switches = append(switches, scenarioEventJSON{
				AtMs: ms(ev.At.Sub(start)), Protocol: ev.Protocol, Epoch: ev.Epoch,
			})
			evMu.Unlock()
		}
	}()
	go func() {
		defer collectorWG.Done()
		for range sub.Advice() {
			advice.Add(1)
		}
	}()
	switchCount := func() int {
		evMu.Lock()
		defer evMu.Unlock()
		return len(switches)
	}

	out := &scenarioJSON{
		Name: def.name, N: n, Policy: def.pname, InitialProto: def.initial,
	}
	convergeTimeout := 20 * time.Second
	if quick {
		convergeTimeout = 10 * time.Second
	}
	for _, ph := range def.phases {
		phaseStart := time.Now()
		before := switchCount()
		if ph.flapMs == 0 {
			if err := c.SetLoss(ph.loss); err != nil {
				return nil, err
			}
		}
		if ph.delay > 0 {
			if err := c.SetDelay(ph.delay); err != nil {
				return nil, err
			}
		}

		rec := scenarioPhaseJSON{
			Name: ph.name, LossPct: ph.loss * 100, DelayUs: ph.delay.Microseconds(),
			WantProtocol: ph.want,
		}
		status := func() (dpu.Status, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			return node.Status(ctx)
		}
		switch {
		case ph.flapMs > 0:
			// Flap the link for the whole phase dwell.
			half := time.Duration(ph.flapMs) * time.Millisecond
			for end := time.Now().Add(ph.hold); time.Now().Before(end); {
				if err := c.PartitionLink(0, 1); err != nil {
					return nil, err
				}
				time.Sleep(half)
				if err := c.HealLink(0, 1); err != nil {
					return nil, err
				}
				time.Sleep(half)
			}
			rec.Converged = true // nothing demanded; record reality below
		case ph.want != "":
			deadline := time.Now().Add(convergeTimeout)
			for {
				st, err := status()
				if err != nil {
					return nil, err
				}
				if st.Protocol == ph.want {
					rec.Converged = true
					rec.ConvergeMs = ms(time.Since(phaseStart))
					break
				}
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			time.Sleep(ph.hold) // dwell so the next phase starts from a settled state
		default:
			time.Sleep(ph.hold)
		}

		st, err := status()
		if err != nil {
			return nil, err
		}
		rec.EndProtocol = st.Protocol
		rec.DurationMs = ms(time.Since(phaseStart))
		rec.Switches = switchCount() - before
		out.Phases = append(out.Phases, rec)
		fmt.Fprintf(w, "  phase %-10s loss=%4.0f%% delay=%6s  ->  %-12s (%d switches, %s)\n",
			ph.name, ph.loss*100, ph.delay, st.Protocol, rec.Switches, conv(rec))
		if ph.want != "" && !rec.Converged {
			return nil, fmt.Errorf("scenario %s: phase %s never converged to %s (at %s)",
				def.name, ph.name, ph.want, st.Protocol)
		}
	}

	sub.Close()
	collectorWG.Wait()
	evMu.Lock()
	out.Switches = append([]scenarioEventJSON(nil), switches...)
	evMu.Unlock()
	out.AdviceEvents = int(advice.Load())
	return out, nil
}

func conv(rec scenarioPhaseJSON) string {
	if rec.WantProtocol == "" {
		return "free-running"
	}
	if rec.Converged {
		return fmt.Sprintf("converged in %.0fms", rec.ConvergeMs)
	}
	return "NOT CONVERGED"
}
