// Command dpu-bench regenerates every figure of the paper's evaluation
// (Section 6) and the ablations listed in DESIGN.md, printing the same
// rows/series the paper plots. With -json it additionally writes a
// schema-stable BENCH_*.json file (see docs/PERFORMANCE.md for the
// schema), so the repository's performance trajectory is recorded
// run-over-run.
//
// Usage:
//
//	dpu-bench -fig 5                 # Figure 5: latency timeline around a replacement
//	dpu-bench -fig 6                 # Figure 6: latency vs load, n=3 and n=7
//	dpu-bench -fig ablation-managers # ours vs Maestro vs Graceful
//	dpu-bench -fig ablation-reissue  # switch cost vs undelivered backlog
//	dpu-bench -fig ablation-matrix   # cross-protocol switch matrix
//	dpu-bench -fig throughput        # hot-path throughput probe (batched vs not)
//	dpu-bench -fig membership        # view-change churn probe (runtime join/evict)
//	dpu-bench -fig all               # everything
//	dpu-bench -quick -json           # fast smoke run + BENCH_results.json
//
// Declarative scenarios (see docs/SCENARIOS.md) run a cluster through
// a scripted environment/membership timeline under virtual time with
// the invariant checkers on, and verify the per-phase and end-state
// expectations written in the scenario file:
//
//	dpu-bench -scenario loss-ramp            # corpus entry by name
//	dpu-bench -scenario all -json            # whole scenarios/ corpus
//	dpu-bench -scenario file:my.dpu.yaml     # any scenario file on disk
//	dpu-bench -scenario large-50 -seed 9     # override the committed seed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/dpu"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// report is the JSON document -json emits. Field names are the schema;
// additions are allowed, renames and removals are not (downstream
// tooling diffs these files across commits).
type report struct {
	Schema    string `json:"schema"` // "dpu-bench/v1"
	Generated string `json:"generated,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Quick     bool   `json:"quick"`
	Seed      int64  `json:"seed"`

	Figure5          *figure5JSON      `json:"figure5,omitempty"`
	Figure6          []figure6JSON     `json:"figure6,omitempty"`
	AblationManagers []managerJSON     `json:"ablation_managers,omitempty"`
	AblationReissue  []reissueJSON     `json:"ablation_reissue,omitempty"`
	AblationMatrix   []matrixJSON      `json:"ablation_matrix,omitempty"`
	Throughput       *throughputJSON   `json:"throughput,omitempty"`
	Membership       *membershipJSON   `json:"membership,omitempty"`
	Scenarios        []scenarioJSON    `json:"scenarios,omitempty"`
	Counters         map[string]uint64 `json:"counters,omitempty"`
}

type figure5JSON struct {
	N              int     `json:"n"`
	RatePerStack   float64 `json:"rate_per_stack"`
	PayloadBytes   int     `json:"payload_bytes"`
	BaselineMs     float64 `json:"baseline_ms"`
	DuringMs       float64 `json:"during_ms"`
	AfterMs        float64 `json:"after_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	SwitchWindowMs float64 `json:"switch_window_ms"`
	Sent           int     `json:"sent"`
	Complete       int     `json:"complete"`
}

type figure6JSON struct {
	N                int     `json:"n"`
	Load             float64 `json:"load"`
	NoLayerMs        float64 `json:"no_layer_ms"`
	WithLayerMs      float64 `json:"with_layer_ms"`
	DuringMs         float64 `json:"during_ms"`
	LayerOverheadPct float64 `json:"layer_overhead_pct"`
}

type managerJSON struct {
	Manager    string  `json:"manager"`
	SwitchMs   float64 `json:"switch_ms"`
	BaselineMs float64 `json:"baseline_ms"`
	DuringMs   float64 `json:"during_ms"`
}

type reissueJSON struct {
	Backlog  int     `json:"backlog"`
	SwitchMs float64 `json:"switch_ms"`
	DrainMs  float64 `json:"drain_ms"`
}

type matrixJSON struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	SwitchMs   float64 `json:"switch_ms"`
	BaselineMs float64 `json:"baseline_ms"`
	DuringMs   float64 `json:"during_ms"`
}

type throughputJSON struct {
	N                   int     `json:"n"`
	PayloadBytes        int     `json:"payload_bytes"`
	Messages            int     `json:"messages"`
	BatchMaxDelayUs     int64   `json:"batch_max_delay_us"`
	BatchMaxBytes       int     `json:"batch_max_bytes"`
	UnbatchedMsgsPerSec float64 `json:"unbatched_msgs_per_sec"`
	BatchedMsgsPerSec   float64 `json:"batched_msgs_per_sec"`
}

type membershipJSON struct {
	N           int     `json:"n"`
	Joins       int     `json:"joins"`
	Evictions   int     `json:"evictions"`
	JoinMs      float64 `json:"join_ms"`  // mean confirmed AddNode latency
	EvictMs     float64 `json:"evict_ms"` // mean confirmed Evict latency
	FinalViewID uint64  `json:"final_view_id"`
}

// scenarioJSON records one scenario timeline: the scripted phases,
// whether each converged to its expected protocol, and every switch
// performed. The policy.* counters land in the top-level counter
// section. Scenarios run under virtual time since the engine moved to
// internal/scenario; the added fields record the run's determinism
// witness (seed + digest) and the virtual/wall time split.
type scenarioJSON struct {
	Name         string              `json:"name"`
	N            int                 `json:"n"`
	Policy       string              `json:"policy"`
	InitialProto string              `json:"initial_protocol"`
	Phases       []scenarioPhaseJSON `json:"phases"`
	Switches     []scenarioEventJSON `json:"switches"`
	AdviceEvents int                 `json:"advice_events"`
	Seed         int64               `json:"scenario_seed,omitempty"`
	Deliveries   int                 `json:"deliveries,omitempty"`
	Views        int                 `json:"views,omitempty"`
	Digest       string              `json:"digest,omitempty"`
	VirtualMs    float64             `json:"virtual_ms,omitempty"`
	WallMs       float64             `json:"wall_ms,omitempty"`
}

type scenarioPhaseJSON struct {
	Name         string  `json:"name"`
	LossPct      float64 `json:"loss_pct"`
	DelayUs      int64   `json:"delay_us"`
	DurationMs   float64 `json:"duration_ms"`
	WantProtocol string  `json:"want_protocol,omitempty"`
	EndProtocol  string  `json:"end_protocol"`
	Converged    bool    `json:"converged"`
	ConvergeMs   float64 `json:"converge_ms,omitempty"`
	Switches     int     `json:"switches"`
}

type scenarioEventJSON struct {
	AtMs     float64 `json:"at_ms"` // relative to scenario start
	Protocol string  `json:"protocol"`
	Epoch    uint64  `json:"epoch"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// throughputProbe floods msgs 256-byte broadcasts through a 3-stack
// cluster and measures delivered messages/sec on one stack, with and
// without sender-side batching — the headline hot-path number.
func throughputProbe(msgs int, seed int64) (*throughputJSON, error) {
	const payloadBytes = 256
	const batchDelay = 500 * time.Microsecond
	const batchBytes = 32 << 10
	run := func(opts ...dpu.Option) (float64, error) {
		opts = append(opts, dpu.WithSeed(seed), dpu.WithDeliveryBuffer(3*msgs+1024))
		c, err := dpu.New(3, opts...)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		payload := make([]byte, payloadBytes)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < msgs*3; i++ {
				<-c.Deliveries(0)
			}
		}()
		start := time.Now()
		for i := 0; i < msgs*3; i++ {
			if err := c.Broadcast(i%3, payload); err != nil {
				return 0, err
			}
		}
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			return 0, fmt.Errorf("throughput probe stalled")
		}
		return float64(msgs*3) / time.Since(start).Seconds(), nil
	}
	unbatched, err := run()
	if err != nil {
		return nil, err
	}
	batched, err := run(dpu.WithBatching(batchDelay, batchBytes))
	if err != nil {
		return nil, err
	}
	return &throughputJSON{
		N: 3, PayloadBytes: payloadBytes, Messages: msgs * 3,
		BatchMaxDelayUs: batchDelay.Microseconds(), BatchMaxBytes: batchBytes,
		UnbatchedMsgsPerSec: unbatched, BatchedMsgsPerSec: batched,
	}, nil
}

// membershipProbe measures view-change churn: confirmed runtime joins
// (AddNode) and evictions through a live cluster, which also populates
// the membership.* counters the JSON report exports.
func membershipProbe(rounds int, seed int64) (*membershipJSON, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c, err := dpu.New(3, dpu.WithSeed(seed), dpu.WithMembership())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	sponsor, err := c.Node(0)
	if err != nil {
		return nil, err
	}
	var joinTotal, evictTotal time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		node, err := c.AddNode(ctx, "")
		if err != nil {
			return nil, fmt.Errorf("join round %d: %w", i, err)
		}
		joinTotal += time.Since(start)
		start = time.Now()
		if _, err := sponsor.Evict(ctx, node.Index()); err != nil {
			return nil, fmt.Errorf("evict round %d: %w", i, err)
		}
		evictTotal += time.Since(start)
	}
	st, err := sponsor.Status(ctx)
	if err != nil {
		return nil, err
	}
	return &membershipJSON{
		N: 3, Joins: rounds, Evictions: rounds,
		JoinMs:      ms(joinTotal) / float64(rounds),
		EvictMs:     ms(evictTotal) / float64(rounds),
		FinalViewID: st.ViewID,
	}, nil
}

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, ablation-managers, ablation-reissue, ablation-matrix, throughput, membership, all")
	scenario := flag.String("scenario", "", "scenario(s) to run instead of figures: a corpus name, file:<path>, or all (comma-separated; see docs/SCENARIOS.md)")
	n := flag.Int("n", 7, "group size for Figure 5")
	rate := flag.Float64("rate", 50, "per-stack message rate for Figure 5 [msg/s]")
	payload := flag.Int("payload", 1024, "payload size for Figure 5 [bytes]")
	duration := flag.Duration("duration", 4*time.Second, "Figure 5 experiment duration")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "shrink durations/sweeps for a fast smoke run")
	jsonOut := flag.Bool("json", false, "also write the results as machine-readable JSON")
	outPath := flag.String("out", "BENCH_results.json", "output path for -json")
	stamp := flag.Bool("stamp", true, "record the generation time in the JSON (disable for reproducible diffs)")
	flag.Parse()

	rep := &report{
		Schema:    "dpu-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Seed:      *seed,
	}
	if *stamp {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("==> %s\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	// -scenario selects the adaptive timelines and skips the figures; the
	// two probe different things and a CI job typically wants one or the
	// other.
	want := func(name string) bool { return *scenario == "" && (*fig == "all" || *fig == name) }

	if want("5") {
		run("Figure 5", func() error {
			cfg := experiments.Figure5Config{
				N: *n, RatePerStack: *rate, PayloadSize: *payload,
				Duration: *duration, Seed: *seed,
			}
			if *quick {
				cfg.N, cfg.Duration, cfg.PayloadSize = 3, time.Second, 512
			}
			res, err := experiments.RunFigure5(cfg)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			rep.Figure5 = &figure5JSON{
				N: res.Config.N, RatePerStack: res.Config.RatePerStack,
				PayloadBytes: res.Config.PayloadSize,
				BaselineMs:   ms(res.BaselineAvg), DuringMs: ms(res.DuringAvg),
				AfterMs: ms(res.AfterAvg), OverheadPct: res.OverheadPct(),
				SwitchWindowMs: ms(res.SwitchDone - res.SwitchStart),
				Sent:           res.Sent, Complete: res.Complete,
			}
			return nil
		})
	}
	if want("6") {
		run("Figure 6", func() error {
			cfg := experiments.Figure6Config{Seed: *seed}
			if *quick {
				cfg.Ns = []int{3}
				cfg.Loads = []float64{60, 120}
				cfg.Duration = 800 * time.Millisecond
			}
			points, err := experiments.RunFigure6(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure6(os.Stdout, cfg, points)
			for _, p := range points {
				rep.Figure6 = append(rep.Figure6, figure6JSON{
					N: p.N, Load: p.Load,
					NoLayerMs: ms(p.NoLayer), WithLayerMs: ms(p.WithLayer),
					DuringMs: ms(p.During), LayerOverheadPct: p.LayerOverheadPct(),
				})
			}
			return nil
		})
	}
	if want("ablation-managers") {
		run("Ablation A (managers)", func() error {
			rs, err := experiments.RunManagersComparison(3, 60, *seed)
			if err != nil {
				return err
			}
			experiments.PrintManagersComparison(os.Stdout, 3, 60, rs)
			for _, r := range rs {
				rep.AblationManagers = append(rep.AblationManagers, managerJSON{
					Manager:  string(r.Manager),
					SwitchMs: ms(r.SwitchDuration), BaselineMs: ms(r.BaselineAvg),
					DuringMs: ms(r.DuringAvg),
				})
			}
			return nil
		})
	}
	if want("ablation-reissue") {
		run("Ablation B (reissue scaling)", func() error {
			backlogs := []int{0, 50, 200, 500, 1000}
			if *quick {
				backlogs = []int{0, 100}
			}
			rs, err := experiments.RunReissueScaling(backlogs, *seed)
			if err != nil {
				return err
			}
			experiments.PrintReissueScaling(os.Stdout, rs)
			for _, r := range rs {
				rep.AblationReissue = append(rep.AblationReissue, reissueJSON{
					Backlog: r.Backlog, SwitchMs: ms(r.SwitchDuration), DrainMs: ms(r.DrainTime),
				})
			}
			return nil
		})
	}
	if want("ablation-matrix") {
		run("Ablation C (switch matrix)", func() error {
			rs, err := experiments.RunSwitchMatrix(40, *seed)
			if err != nil {
				return err
			}
			experiments.PrintSwitchMatrix(os.Stdout, rs)
			for _, r := range rs {
				rep.AblationMatrix = append(rep.AblationMatrix, matrixJSON{
					From: r.From, To: r.To, SwitchMs: ms(r.SwitchDuration),
					BaselineMs: ms(r.BaselineAvg), DuringMs: ms(r.DuringAvg),
				})
			}
			return nil
		})
	}
	if want("throughput") {
		run("Throughput probe (batched vs unbatched)", func() error {
			msgs := 10000
			if *quick {
				msgs = 2000
			}
			tp, err := throughputProbe(msgs, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d payload=%dB messages=%d\n", tp.N, tp.PayloadBytes, tp.Messages)
			fmt.Printf("%12s %14.0f msg/s\n", "unbatched", tp.UnbatchedMsgsPerSec)
			fmt.Printf("%12s %14.0f msg/s  (WithBatching %dµs / %dB)\n",
				"batched", tp.BatchedMsgsPerSec, tp.BatchMaxDelayUs, tp.BatchMaxBytes)
			rep.Throughput = tp
			return nil
		})
	}

	if want("membership") {
		run("Membership churn probe (join/evict)", func() error {
			rounds := 20
			if *quick {
				rounds = 5
			}
			mj, err := membershipProbe(rounds, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d joins=%d evictions=%d\n", mj.N, mj.Joins, mj.Evictions)
			fmt.Printf("%12s %10.2f ms (confirmed AddNode)\n", "join", mj.JoinMs)
			fmt.Printf("%12s %10.2f ms (confirmed Evict)\n", "evict", mj.EvictMs)
			rep.Membership = mj
			return nil
		})
	}

	if *scenario != "" {
		scs, err := resolveScenarios(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		// The corpus files commit their own seeds; -seed overrides only
		// when set explicitly on the command line.
		var seedOverride *int64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = seed
			}
		})
		for _, sc := range scs {
			sc := sc
			policy := "manual"
			if sc.Adaptive != nil {
				policy = sc.Adaptive.Policy + " policy"
			}
			run(fmt.Sprintf("Scenario %s (%s, initial %s, %d nodes)", sc.Name, policy, sc.Initial, sc.Nodes), func() error {
				sj, err := runScenario(os.Stdout, sc, seedOverride)
				if err != nil {
					return err
				}
				rep.Scenarios = append(rep.Scenarios, *sj)
				return nil
			})
		}
	}

	if *jsonOut {
		rep.Counters = metrics.Counters()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
