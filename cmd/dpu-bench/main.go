// Command dpu-bench regenerates every figure of the paper's evaluation
// (Section 6) and the ablations listed in DESIGN.md, printing the same
// rows/series the paper plots.
//
// Usage:
//
//	dpu-bench -fig 5                 # Figure 5: latency timeline around a replacement
//	dpu-bench -fig 6                 # Figure 6: latency vs load, n=3 and n=7
//	dpu-bench -fig ablation-managers # ours vs Maestro vs Graceful
//	dpu-bench -fig ablation-reissue  # switch cost vs undelivered backlog
//	dpu-bench -fig ablation-matrix   # cross-protocol switch matrix
//	dpu-bench -fig all               # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, ablation-managers, ablation-reissue, ablation-matrix, all")
	n := flag.Int("n", 7, "group size for Figure 5")
	rate := flag.Float64("rate", 50, "per-stack message rate for Figure 5 [msg/s]")
	payload := flag.Int("payload", 1024, "payload size for Figure 5 [bytes]")
	duration := flag.Duration("duration", 4*time.Second, "Figure 5 experiment duration")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "shrink durations/sweeps for a fast smoke run")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("==> %s\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("5") {
		run("Figure 5", func() error {
			cfg := experiments.Figure5Config{
				N: *n, RatePerStack: *rate, PayloadSize: *payload,
				Duration: *duration, Seed: *seed,
			}
			if *quick {
				cfg.N, cfg.Duration, cfg.PayloadSize = 3, time.Second, 512
			}
			res, err := experiments.RunFigure5(cfg)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("6") {
		run("Figure 6", func() error {
			cfg := experiments.Figure6Config{Seed: *seed}
			if *quick {
				cfg.Ns = []int{3}
				cfg.Loads = []float64{60, 120}
				cfg.Duration = 800 * time.Millisecond
			}
			points, err := experiments.RunFigure6(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure6(os.Stdout, cfg, points)
			return nil
		})
	}
	if want("ablation-managers") {
		run("Ablation A (managers)", func() error {
			rs, err := experiments.RunManagersComparison(3, 60, *seed)
			if err != nil {
				return err
			}
			experiments.PrintManagersComparison(os.Stdout, 3, 60, rs)
			return nil
		})
	}
	if want("ablation-reissue") {
		run("Ablation B (reissue scaling)", func() error {
			backlogs := []int{0, 50, 200, 500, 1000}
			if *quick {
				backlogs = []int{0, 100}
			}
			rs, err := experiments.RunReissueScaling(backlogs, *seed)
			if err != nil {
				return err
			}
			experiments.PrintReissueScaling(os.Stdout, rs)
			return nil
		})
	}
	if want("ablation-matrix") {
		run("Ablation C (switch matrix)", func() error {
			rs, err := experiments.RunSwitchMatrix(40, *seed)
			if err != nil {
				return err
			}
			experiments.PrintSwitchMatrix(os.Stdout, rs)
			return nil
		})
	}
}
