// Command dpu-bench regenerates every figure of the paper's evaluation
// (Section 6) and the ablations listed in DESIGN.md, printing the same
// rows/series the paper plots. With -json it additionally writes a
// schema-stable BENCH_*.json file (see docs/PERFORMANCE.md for the
// schema), so the repository's performance trajectory is recorded
// run-over-run.
//
// Usage:
//
//	dpu-bench -fig 5                 # Figure 5: latency timeline around a replacement
//	dpu-bench -fig 6                 # Figure 6: latency vs load, n=3 and n=7
//	dpu-bench -fig ablation-managers # ours vs Maestro vs Graceful
//	dpu-bench -fig ablation-reissue  # switch cost vs undelivered backlog
//	dpu-bench -fig ablation-matrix   # cross-protocol switch matrix
//	dpu-bench -fig throughput        # hot-path throughput probe (batched vs not)
//	dpu-bench -fig syscall-batch     # syscalls/message over the batched UDP backend
//	dpu-bench -fig parallel          # pooled-executor throughput at GOMAXPROCS>1
//	dpu-bench -fig membership        # view-change churn probe (runtime join/evict)
//	dpu-bench -fig all               # everything
//	dpu-bench -quick -json           # fast smoke run + BENCH_results.json
//
// Declarative scenarios (see docs/SCENARIOS.md) run a cluster through
// a scripted environment/membership timeline under virtual time with
// the invariant checkers on, and verify the per-phase and end-state
// expectations written in the scenario file:
//
//	dpu-bench -scenario loss-ramp            # corpus entry by name
//	dpu-bench -scenario all -json            # whole scenarios/ corpus
//	dpu-bench -scenario file:my.dpu.yaml     # any scenario file on disk
//	dpu-bench -scenario large-50 -seed 9     # override the committed seed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/dpu"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// report is the JSON document -json emits. Field names are the schema;
// additions are allowed, renames and removals are not (downstream
// tooling diffs these files across commits).
type report struct {
	Schema     string `json:"schema"` // "dpu-bench/v1"
	Generated  string `json:"generated,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`

	Figure5          *figure5JSON      `json:"figure5,omitempty"`
	Figure6          []figure6JSON     `json:"figure6,omitempty"`
	AblationManagers []managerJSON     `json:"ablation_managers,omitempty"`
	AblationReissue  []reissueJSON     `json:"ablation_reissue,omitempty"`
	AblationMatrix   []matrixJSON      `json:"ablation_matrix,omitempty"`
	Throughput       *throughputJSON   `json:"throughput,omitempty"`
	SyscallBatch     *syscallBatchJSON `json:"syscall_batch,omitempty"`
	Stream           *streamJSON       `json:"stream,omitempty"`
	Parallel         *parallelJSON     `json:"parallel,omitempty"`
	Membership       *membershipJSON   `json:"membership,omitempty"`
	Scenarios        []scenarioJSON    `json:"scenarios,omitempty"`
	Counters         map[string]uint64 `json:"counters,omitempty"`
}

type figure5JSON struct {
	N              int     `json:"n"`
	RatePerStack   float64 `json:"rate_per_stack"`
	PayloadBytes   int     `json:"payload_bytes"`
	BaselineMs     float64 `json:"baseline_ms"`
	DuringMs       float64 `json:"during_ms"`
	AfterMs        float64 `json:"after_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	SwitchWindowMs float64 `json:"switch_window_ms"`
	Sent           int     `json:"sent"`
	Complete       int     `json:"complete"`
}

type figure6JSON struct {
	N                int     `json:"n"`
	Load             float64 `json:"load"`
	NoLayerMs        float64 `json:"no_layer_ms"`
	WithLayerMs      float64 `json:"with_layer_ms"`
	DuringMs         float64 `json:"during_ms"`
	LayerOverheadPct float64 `json:"layer_overhead_pct"`
}

type managerJSON struct {
	Manager    string  `json:"manager"`
	SwitchMs   float64 `json:"switch_ms"`
	BaselineMs float64 `json:"baseline_ms"`
	DuringMs   float64 `json:"during_ms"`
}

type reissueJSON struct {
	Backlog  int     `json:"backlog"`
	SwitchMs float64 `json:"switch_ms"`
	DrainMs  float64 `json:"drain_ms"`
}

type matrixJSON struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	SwitchMs   float64 `json:"switch_ms"`
	BaselineMs float64 `json:"baseline_ms"`
	DuringMs   float64 `json:"during_ms"`
}

type throughputJSON struct {
	N                   int     `json:"n"`
	PayloadBytes        int     `json:"payload_bytes"`
	Messages            int     `json:"messages"`
	BatchMaxDelayUs     int64   `json:"batch_max_delay_us"`
	BatchMaxBytes       int     `json:"batch_max_bytes"`
	UnbatchedMsgsPerSec float64 `json:"unbatched_msgs_per_sec"`
	BatchedMsgsPerSec   float64 `json:"batched_msgs_per_sec"`
}

// syscallBatchJSON records the syscall-amortization probe: the same
// real-UDP workload over the sendmmsg/recvmmsg backend and over the
// portable one-datagram-per-syscall fallback, with the transport's
// syscall and datagram counters for each. SyscallsPerMessage is
// (send+recv syscalls) / (sent+delivered datagrams): 1.0 for the
// fallback by construction, and 2/batch-size in the ideal batched case.
type syscallBatchJSON struct {
	N                 int                 `json:"n"`
	PayloadBytes      int                 `json:"payload_bytes"`
	Messages          int                 `json:"messages"`
	BackendAvailable  bool                `json:"backend_available"`
	Batched           syscallBatchRunJSON `json:"batched"`
	Fallback          syscallBatchRunJSON `json:"fallback"`
	SyscallsSavedPct  float64             `json:"syscalls_saved_pct"`
	ThroughputGainPct float64             `json:"throughput_gain_pct"`
}

type syscallBatchRunJSON struct {
	MsgsPerSec         float64 `json:"msgs_per_sec"`
	Sent               uint64  `json:"sent"`
	Delivered          uint64  `json:"delivered"`
	SendCalls          uint64  `json:"send_calls"`
	RecvCalls          uint64  `json:"recv_calls"`
	SyscallsPerMessage float64 `json:"syscalls_per_message"`
}

// parallelJSON records the pooled-executor throughput figure: the same
// batched real-UDP workload with one dedicated goroutine per stack vs
// the shared executor pool, at whatever GOMAXPROCS the run was given.
type parallelJSON struct {
	N                   int     `json:"n"`
	PayloadBytes        int     `json:"payload_bytes"`
	Messages            int     `json:"messages"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	PoolWorkers         int     `json:"pool_workers"`
	DedicatedMsgsPerSec float64 `json:"dedicated_msgs_per_sec"`
	PooledMsgsPerSec    float64 `json:"pooled_msgs_per_sec"`
	SpeedupPct          float64 `json:"speedup_pct"`
}

type membershipJSON struct {
	N           int     `json:"n"`
	Joins       int     `json:"joins"`
	Evictions   int     `json:"evictions"`
	JoinMs      float64 `json:"join_ms"`  // mean confirmed AddNode latency
	EvictMs     float64 `json:"evict_ms"` // mean confirmed Evict latency
	FinalViewID uint64  `json:"final_view_id"`
}

// scenarioJSON records one scenario timeline: the scripted phases,
// whether each converged to its expected protocol, and every switch
// performed. The policy.* counters land in the top-level counter
// section. Scenarios run under virtual time since the engine moved to
// internal/scenario; the added fields record the run's determinism
// witness (seed + digest) and the virtual/wall time split.
type scenarioJSON struct {
	Name         string              `json:"name"`
	N            int                 `json:"n"`
	Policy       string              `json:"policy"`
	InitialProto string              `json:"initial_protocol"`
	Transport    string              `json:"transport,omitempty"`
	Phases       []scenarioPhaseJSON `json:"phases"`
	Switches     []scenarioEventJSON `json:"switches"`
	AdviceEvents int                 `json:"advice_events"`
	Seed         int64               `json:"scenario_seed,omitempty"`
	Deliveries   int                 `json:"deliveries,omitempty"`
	Views        int                 `json:"views,omitempty"`
	Digest       string              `json:"digest,omitempty"`
	VirtualMs    float64             `json:"virtual_ms,omitempty"`
	WallMs       float64             `json:"wall_ms,omitempty"`
}

type scenarioPhaseJSON struct {
	Name         string  `json:"name"`
	LossPct      float64 `json:"loss_pct"`
	DelayUs      int64   `json:"delay_us"`
	DurationMs   float64 `json:"duration_ms"`
	WantProtocol string  `json:"want_protocol,omitempty"`
	EndProtocol  string  `json:"end_protocol"`
	Converged    bool    `json:"converged"`
	ConvergeMs   float64 `json:"converge_ms,omitempty"`
	Switches     int     `json:"switches"`
}

type scenarioEventJSON struct {
	AtMs     float64 `json:"at_ms"` // relative to scenario start
	Protocol string  `json:"protocol"`
	Epoch    uint64  `json:"epoch"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// throughputProbe floods msgs 256-byte broadcasts through a 3-stack
// cluster and measures delivered messages/sec on one stack, with and
// without sender-side batching — the headline hot-path number.
func throughputProbe(msgs int, seed int64) (*throughputJSON, error) {
	const payloadBytes = 256
	const batchDelay = 500 * time.Microsecond
	const batchBytes = 32 << 10
	run := func(opts ...dpu.Option) (float64, error) {
		opts = append(opts, dpu.WithSeed(seed), dpu.WithDeliveryBuffer(3*msgs+1024))
		c, err := dpu.New(3, opts...)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		payload := make([]byte, payloadBytes)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < msgs*3; i++ {
				<-c.Deliveries(0)
			}
		}()
		start := time.Now()
		for i := 0; i < msgs*3; i++ {
			if err := c.Broadcast(i%3, payload); err != nil {
				return 0, err
			}
		}
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			return 0, fmt.Errorf("throughput probe stalled")
		}
		return float64(msgs*3) / time.Since(start).Seconds(), nil
	}
	unbatched, err := run()
	if err != nil {
		return nil, err
	}
	batched, err := run(dpu.WithBatching(batchDelay, batchBytes))
	if err != nil {
		return nil, err
	}
	return &throughputJSON{
		N: 3, PayloadBytes: payloadBytes, Messages: msgs * 3,
		BatchMaxDelayUs: batchDelay.Microseconds(), BatchMaxBytes: batchBytes,
		UnbatchedMsgsPerSec: unbatched, BatchedMsgsPerSec: batched,
	}, nil
}

// reserveLoopbackBook grabs n ephemeral loopback UDP ports and returns
// them as a transport address book. The sockets are closed before the
// book is used, so a concurrent process could in principle steal a
// port; for a single-process bench run the window is harmless.
func reserveLoopbackBook(n int) (map[transport.Addr]string, error) {
	book := make(map[transport.Addr]string, n)
	conns := make([]*net.UDPConn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		conns = append(conns, c)
		book[transport.Addr(i)] = c.LocalAddr().String()
	}
	return book, nil
}

// realUDPRun pushes msgs broadcasts per stack through a 3-stack cluster
// over real loopback sockets and returns delivered messages/sec on
// stack 0 plus the transport's syscall/datagram counters. The senders
// go through Node.Broadcast so the WithMaxOutstanding window paces
// them: real sockets have finite buffers, and an unpaced flood
// (Cluster.Broadcast bypasses the window) drowns the run in kernel-side
// drops and retransmissions instead of measuring the steady state.
func realUDPRun(msgs, payloadBytes int, seed int64, disableBatching bool, extra ...dpu.Option) (float64, transport.UDPStats, error) {
	book, err := reserveLoopbackBook(3)
	if err != nil {
		return 0, transport.UDPStats{}, err
	}
	tr, err := transport.NewUDP(transport.UDPConfig{
		Book: book, DisableBatching: disableBatching,
		SocketBuffer: 4 << 20, // ride out sendmmsg bursts without kernel drops
	})
	if err != nil {
		return 0, transport.UDPStats{}, err
	}
	opts := append([]dpu.Option{
		dpu.WithTransport(tr), dpu.WithSeed(seed),
		dpu.WithDeliveryBuffer(3*msgs + 1024),
		dpu.WithMaxOutstanding(64),
	}, extra...)
	c, err := dpu.New(3, opts...)
	if err != nil {
		return 0, transport.UDPStats{}, err
	}
	defer c.Close()
	nodes := make([]*dpu.Node, 3)
	for i := range nodes {
		if nodes[i], err = c.Node(i); err != nil {
			return 0, transport.UDPStats{}, err
		}
	}
	payload := make([]byte, payloadBytes)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < msgs*3; i++ {
			<-c.Deliveries(0)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	errc := make(chan error, 3)
	for s := 0; s < 3; s++ {
		go func(n *dpu.Node) {
			for i := 0; i < msgs; i++ {
				if err := n.Broadcast(ctx, payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(nodes[s])
	}
	for s := 0; s < 3; s++ {
		if err := <-errc; err != nil {
			return 0, transport.UDPStats{}, err
		}
	}
	select {
	case <-done:
	case <-ctx.Done():
		return 0, transport.UDPStats{}, fmt.Errorf("real-UDP probe stalled")
	}
	elapsed := time.Since(start).Seconds()
	return float64(msgs*3) / elapsed, tr.Stats(), nil
}

// syscallsPerMessage condenses one run's stats into the headline
// amortization ratio.
func syscallsPerMessage(st transport.UDPStats) float64 {
	if st.Sent+st.Delivered == 0 {
		return 0
	}
	return float64(st.SendCalls+st.RecvCalls) / float64(st.Sent+st.Delivered)
}

// syscallBatchProbe runs the identical real-UDP workload over the
// batched backend and the portable fallback, recording throughput and
// the syscall budget of each. App-level broadcast batching stays OFF so
// every protocol datagram hits the socket layer individually — the
// worst case the sendmmsg/recvmmsg backend exists to amortize.
func syscallBatchProbe(msgs int, seed int64) (*syscallBatchJSON, error) {
	const payloadBytes = 256
	out := &syscallBatchJSON{
		N: 3, PayloadBytes: payloadBytes, Messages: msgs * 3,
		BackendAvailable: transport.BatchSyscallsAvailable(),
	}
	rate, st, err := realUDPRun(msgs, payloadBytes, seed, false)
	if err != nil {
		return nil, err
	}
	out.Batched = syscallBatchRunJSON{
		MsgsPerSec: rate, Sent: st.Sent, Delivered: st.Delivered,
		SendCalls: st.SendCalls, RecvCalls: st.RecvCalls,
		SyscallsPerMessage: syscallsPerMessage(st),
	}
	rate, st, err = realUDPRun(msgs, payloadBytes, seed, true)
	if err != nil {
		return nil, err
	}
	out.Fallback = syscallBatchRunJSON{
		MsgsPerSec: rate, Sent: st.Sent, Delivered: st.Delivered,
		SendCalls: st.SendCalls, RecvCalls: st.RecvCalls,
		SyscallsPerMessage: syscallsPerMessage(st),
	}
	if out.Fallback.SyscallsPerMessage > 0 {
		out.SyscallsSavedPct = 100 * (1 - out.Batched.SyscallsPerMessage/out.Fallback.SyscallsPerMessage)
	}
	if out.Fallback.MsgsPerSec > 0 {
		out.ThroughputGainPct = 100 * (out.Batched.MsgsPerSec/out.Fallback.MsgsPerSec - 1)
	}
	return out, nil
}

// parallelProbe measures what the shared executor pool buys on a
// multi-core budget: the same batched-backend real-UDP workload with
// dedicated per-stack goroutines vs WithExecutorPool. Meaningful at
// GOMAXPROCS > 1 with real cores behind it; on a single core it
// documents the no-win case the WithExecutorPool godoc promises.
func parallelProbe(msgs int, seed int64) (*parallelJSON, error) {
	const payloadBytes = 256
	dedicated, _, err := realUDPRun(msgs, payloadBytes, seed, false)
	if err != nil {
		return nil, err
	}
	pooled, _, err := realUDPRun(msgs, payloadBytes, seed, false, dpu.WithExecutorPool(0))
	if err != nil {
		return nil, err
	}
	return &parallelJSON{
		N: 3, PayloadBytes: payloadBytes, Messages: msgs * 3,
		GOMAXPROCS: runtime.GOMAXPROCS(0), PoolWorkers: runtime.GOMAXPROCS(0),
		DedicatedMsgsPerSec: dedicated, PooledMsgsPerSec: pooled,
		SpeedupPct: 100 * (pooled/dedicated - 1),
	}, nil
}

// membershipProbe measures view-change churn: confirmed runtime joins
// (AddNode) and evictions through a live cluster, which also populates
// the membership.* counters the JSON report exports.
func membershipProbe(rounds int, seed int64) (*membershipJSON, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c, err := dpu.New(3, dpu.WithSeed(seed), dpu.WithMembership())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	sponsor, err := c.Node(0)
	if err != nil {
		return nil, err
	}
	var joinTotal, evictTotal time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		node, err := c.AddNode(ctx, "")
		if err != nil {
			return nil, fmt.Errorf("join round %d: %w", i, err)
		}
		joinTotal += time.Since(start)
		start = time.Now()
		if _, err := sponsor.Evict(ctx, node.Index()); err != nil {
			return nil, fmt.Errorf("evict round %d: %w", i, err)
		}
		evictTotal += time.Since(start)
	}
	st, err := sponsor.Status(ctx)
	if err != nil {
		return nil, err
	}
	return &membershipJSON{
		N: 3, Joins: rounds, Evictions: rounds,
		JoinMs:      ms(joinTotal) / float64(rounds),
		EvictMs:     ms(evictTotal) / float64(rounds),
		FinalViewID: st.ViewID,
	}, nil
}

func main() {
	fig := flag.String("fig", "all", "which figure(s) to regenerate (comma-separated): 5, 6, ablation-managers, ablation-reissue, ablation-matrix, throughput, syscall-batch, stream, parallel, membership, all")
	scenario := flag.String("scenario", "", "scenario(s) to run instead of figures: a corpus name, file:<path>, or all (comma-separated; see docs/SCENARIOS.md)")
	transportFlag := flag.String("transport", "", "override the scenarios' transport: sim, udp or tcp (scenario runs only)")
	n := flag.Int("n", 7, "group size for Figure 5")
	rate := flag.Float64("rate", 50, "per-stack message rate for Figure 5 [msg/s]")
	payload := flag.Int("payload", 1024, "payload size for Figure 5 [bytes]")
	duration := flag.Duration("duration", 4*time.Second, "Figure 5 experiment duration")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "shrink durations/sweeps for a fast smoke run")
	jsonOut := flag.Bool("json", false, "also write the results as machine-readable JSON")
	outPath := flag.String("out", "BENCH_results.json", "output path for -json")
	stamp := flag.Bool("stamp", true, "record the generation time in the JSON (disable for reproducible diffs)")
	flag.Parse()

	rep := &report{
		Schema:     "dpu-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Seed:       *seed,
	}
	if *stamp {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("==> %s\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	// -scenario selects the adaptive timelines and skips the figures; the
	// two probe different things and a CI job typically wants one or the
	// other.
	figs := make(map[string]bool)
	for _, f := range strings.Split(*fig, ",") {
		figs[strings.TrimSpace(f)] = true
	}
	want := func(name string) bool { return *scenario == "" && (figs["all"] || figs[name]) }

	if want("5") {
		run("Figure 5", func() error {
			cfg := experiments.Figure5Config{
				N: *n, RatePerStack: *rate, PayloadSize: *payload,
				Duration: *duration, Seed: *seed,
			}
			if *quick {
				cfg.N, cfg.Duration, cfg.PayloadSize = 3, time.Second, 512
			}
			res, err := experiments.RunFigure5(cfg)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			rep.Figure5 = &figure5JSON{
				N: res.Config.N, RatePerStack: res.Config.RatePerStack,
				PayloadBytes: res.Config.PayloadSize,
				BaselineMs:   ms(res.BaselineAvg), DuringMs: ms(res.DuringAvg),
				AfterMs: ms(res.AfterAvg), OverheadPct: res.OverheadPct(),
				SwitchWindowMs: ms(res.SwitchDone - res.SwitchStart),
				Sent:           res.Sent, Complete: res.Complete,
			}
			return nil
		})
	}
	if want("6") {
		run("Figure 6", func() error {
			cfg := experiments.Figure6Config{Seed: *seed}
			if *quick {
				cfg.Ns = []int{3}
				cfg.Loads = []float64{60, 120}
				cfg.Duration = 800 * time.Millisecond
			}
			points, err := experiments.RunFigure6(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure6(os.Stdout, cfg, points)
			for _, p := range points {
				rep.Figure6 = append(rep.Figure6, figure6JSON{
					N: p.N, Load: p.Load,
					NoLayerMs: ms(p.NoLayer), WithLayerMs: ms(p.WithLayer),
					DuringMs: ms(p.During), LayerOverheadPct: p.LayerOverheadPct(),
				})
			}
			return nil
		})
	}
	if want("ablation-managers") {
		run("Ablation A (managers)", func() error {
			rs, err := experiments.RunManagersComparison(3, 60, *seed)
			if err != nil {
				return err
			}
			experiments.PrintManagersComparison(os.Stdout, 3, 60, rs)
			for _, r := range rs {
				rep.AblationManagers = append(rep.AblationManagers, managerJSON{
					Manager:  string(r.Manager),
					SwitchMs: ms(r.SwitchDuration), BaselineMs: ms(r.BaselineAvg),
					DuringMs: ms(r.DuringAvg),
				})
			}
			return nil
		})
	}
	if want("ablation-reissue") {
		run("Ablation B (reissue scaling)", func() error {
			backlogs := []int{0, 50, 200, 500, 1000}
			if *quick {
				backlogs = []int{0, 100}
			}
			rs, err := experiments.RunReissueScaling(backlogs, *seed)
			if err != nil {
				return err
			}
			experiments.PrintReissueScaling(os.Stdout, rs)
			for _, r := range rs {
				rep.AblationReissue = append(rep.AblationReissue, reissueJSON{
					Backlog: r.Backlog, SwitchMs: ms(r.SwitchDuration), DrainMs: ms(r.DrainTime),
				})
			}
			return nil
		})
	}
	if want("ablation-matrix") {
		run("Ablation C (switch matrix)", func() error {
			rs, err := experiments.RunSwitchMatrix(40, *seed)
			if err != nil {
				return err
			}
			experiments.PrintSwitchMatrix(os.Stdout, rs)
			for _, r := range rs {
				rep.AblationMatrix = append(rep.AblationMatrix, matrixJSON{
					From: r.From, To: r.To, SwitchMs: ms(r.SwitchDuration),
					BaselineMs: ms(r.BaselineAvg), DuringMs: ms(r.DuringAvg),
				})
			}
			return nil
		})
	}
	if want("throughput") {
		run("Throughput probe (batched vs unbatched)", func() error {
			msgs := 10000
			if *quick {
				msgs = 2000
			}
			tp, err := throughputProbe(msgs, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d payload=%dB messages=%d\n", tp.N, tp.PayloadBytes, tp.Messages)
			fmt.Printf("%12s %14.0f msg/s\n", "unbatched", tp.UnbatchedMsgsPerSec)
			fmt.Printf("%12s %14.0f msg/s  (WithBatching %dµs / %dB)\n",
				"batched", tp.BatchedMsgsPerSec, tp.BatchMaxDelayUs, tp.BatchMaxBytes)
			rep.Throughput = tp
			return nil
		})
	}

	if want("syscall-batch") {
		run("Syscall batching probe (sendmmsg/recvmmsg vs fallback)", func() error {
			msgs := 10000
			if *quick {
				msgs = 2000
			}
			sb, err := syscallBatchProbe(msgs, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d payload=%dB messages=%d backend=%v\n",
				sb.N, sb.PayloadBytes, sb.Messages, sb.BackendAvailable)
			p := func(name string, r syscallBatchRunJSON) {
				fmt.Printf("%12s %14.0f msg/s  %7d sendcalls / %7d sent, %7d recvcalls / %7d delivered  (%.3f syscalls/msg)\n",
					name, r.MsgsPerSec, r.SendCalls, r.Sent, r.RecvCalls, r.Delivered, r.SyscallsPerMessage)
			}
			p("batched", sb.Batched)
			p("fallback", sb.Fallback)
			fmt.Printf("%12s %13.1f%% syscalls saved, %+.1f%% throughput\n", "", sb.SyscallsSavedPct, sb.ThroughputGainPct)
			rep.SyscallBatch = sb
			return nil
		})
	}
	if want("stream") {
		run("Stream transport probe (UDP vs TCP across the datagram ceiling)", func() error {
			sj, err := streamProbe(*quick, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d datagram_max=%dB\n", sj.N, sj.DatagramMax)
			for _, pt := range sj.Points {
				udp := "   (exceeds datagram)"
				if pt.UDPDeliverable {
					udp = fmt.Sprintf("%8.0f msg/s %7.1f MB/s", pt.UDPMsgsPerSec, pt.UDPMBPerSec)
				}
				fmt.Printf("%9dB  udp %s   tcp %8.0f msg/s %7.1f MB/s  (%d fragments)\n",
					pt.PayloadBytes, udp, pt.TCPMsgsPerSec, pt.TCPMBPerSec, pt.TCPFragments)
			}
			rep.Stream = sj
			return nil
		})
	}
	if want("parallel") {
		run("Parallel executor probe (pool vs dedicated)", func() error {
			msgs := 10000
			if *quick {
				msgs = 2000
			}
			pp, err := parallelProbe(msgs, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d payload=%dB messages=%d GOMAXPROCS=%d\n",
				pp.N, pp.PayloadBytes, pp.Messages, pp.GOMAXPROCS)
			fmt.Printf("%12s %14.0f msg/s\n", "dedicated", pp.DedicatedMsgsPerSec)
			fmt.Printf("%12s %14.0f msg/s  (%+.1f%%)\n", "pooled", pp.PooledMsgsPerSec, pp.SpeedupPct)
			rep.Parallel = pp
			return nil
		})
	}

	if want("membership") {
		run("Membership churn probe (join/evict)", func() error {
			rounds := 20
			if *quick {
				rounds = 5
			}
			mj, err := membershipProbe(rounds, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("n=%d joins=%d evictions=%d\n", mj.N, mj.Joins, mj.Evictions)
			fmt.Printf("%12s %10.2f ms (confirmed AddNode)\n", "join", mj.JoinMs)
			fmt.Printf("%12s %10.2f ms (confirmed Evict)\n", "evict", mj.EvictMs)
			rep.Membership = mj
			return nil
		})
	}

	if *scenario != "" {
		scs, err := resolveScenarios(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		// The corpus files commit their own seeds; -seed overrides only
		// when set explicitly on the command line.
		var seedOverride *int64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = seed
			}
		})
		for _, sc := range scs {
			sc := sc
			policy := "manual"
			if sc.Adaptive != nil {
				policy = sc.Adaptive.Policy + " policy"
			}
			label := fmt.Sprintf("Scenario %s (%s, initial %s, %d nodes)", sc.Name, policy, sc.Initial, sc.Nodes)
			if *transportFlag != "" {
				label += " over " + *transportFlag
			}
			run(label, func() error {
				sj, err := runScenario(os.Stdout, sc, seedOverride, *transportFlag)
				if err != nil {
					return err
				}
				rep.Scenarios = append(rep.Scenarios, *sj)
				return nil
			})
		}
	}

	if *jsonOut {
		rep.Counters = metrics.Counters()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
