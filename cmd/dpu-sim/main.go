// Command dpu-sim runs a scripted dynamic-protocol-update scenario and
// narrates it: n stacks exchange totally-ordered messages over a
// simulated LAN while the atomic-broadcast protocol is replaced on the
// fly, optionally with crash and loss injection, finishing with a
// consistency audit of the delivery sequences.
//
// Usage:
//
//	dpu-sim -n 5 -msgs 200 -switch abcast/seq,abcast/token -loss 0.05 -crash 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/dpu"
)

func main() {
	n := flag.Int("n", 3, "group size")
	msgs := flag.Int("msgs", 100, "messages to broadcast (round-robin senders)")
	switches := flag.String("switch", "abcast/seq", "comma-separated protocol switch chain")
	initial := flag.String("initial", dpu.ProtocolCT, "initial protocol")
	loss := flag.Float64("loss", 0, "packet loss probability")
	crash := flag.Int("crash", -1, "stack to crash after the last switch (-1: none)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	opts := []dpu.Option{
		dpu.WithSeed(*seed),
		dpu.WithInitialProtocol(*initial),
	}
	if *loss > 0 {
		opts = append(opts, dpu.WithLoss(*loss))
	}
	c, err := dpu.New(*n, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	chain := []string{}
	for _, s := range strings.Split(*switches, ",") {
		if s = strings.TrimSpace(s); s != "" {
			chain = append(chain, s)
		}
	}
	phases := len(chain) + 1
	perPhase := *msgs / phases
	sent := 0
	sendBatch := func(k int) {
		for i := 0; i < k; i++ {
			payload := fmt.Sprintf("msg-%04d", sent)
			if err := c.Broadcast(sent%*n, []byte(payload)); err == nil {
				sent++
			}
		}
	}

	fmt.Printf("group of %d stacks, initial protocol %s, %d messages, loss %.0f%%\n",
		*n, *initial, *msgs, *loss*100)
	sendBatch(perPhase)
	for step, next := range chain {
		fmt.Printf("[%v] switching to %s (initiated by stack %d)...\n",
			time.Now().Format("15:04:05.000"), next, step%*n)
		if err := c.ChangeProtocol(step%*n, next); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; i < *n; i++ {
			select {
			case ev := <-c.Switches(i):
				fmt.Printf("  stack %d switched to %s (epoch %d, %d reissued)\n",
					ev.Stack, ev.Protocol, ev.Epoch, ev.Reissued)
			case <-time.After(30 * time.Second):
				fmt.Fprintf(os.Stderr, "stack %d never switched\n", i)
				os.Exit(1)
			}
		}
		sendBatch(perPhase)
	}
	sendBatch(*msgs - sent) // remainder

	live := make([]bool, *n)
	for i := range live {
		live[i] = true
	}
	if *crash >= 0 && *crash < *n {
		// Give the doomed stack's queued broadcasts a moment to leave;
		// whatever is still local when it dies is legitimately lost
		// (uniform agreement covers only messages that got delivered
		// somewhere).
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("crashing stack %d\n", *crash)
		c.Crash(*crash)
		live[*crash] = false
	}

	// Collect until each live stack has been quiet for a while, then
	// audit: every live stack must have delivered the identical
	// sequence (uniform agreement + uniform total order).
	sequences := make([][]string, *n)
	for i := 0; i < *n; i++ {
		if !live[i] {
			continue
		}
	collect:
		for {
			quiet := 2 * time.Second
			if len(sequences[i]) >= sent {
				quiet = 200 * time.Millisecond
			}
			select {
			case d, ok := <-c.Deliveries(i):
				if !ok {
					break collect
				}
				sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
			case <-time.After(quiet):
				break collect
			}
		}
	}
	ref := -1
	for i := 0; i < *n; i++ {
		if !live[i] {
			continue
		}
		if ref == -1 {
			ref = i
			continue
		}
		if len(sequences[i]) != len(sequences[ref]) {
			fmt.Fprintf(os.Stderr, "AGREEMENT VIOLATION: stack %d delivered %d, stack %d delivered %d\n",
				i, len(sequences[i]), ref, len(sequences[ref]))
			os.Exit(1)
		}
		for k := range sequences[ref] {
			if sequences[i][k] != sequences[ref][k] {
				fmt.Fprintf(os.Stderr, "ORDER VIOLATION at %d: stack %d=%s stack %d=%s\n",
					k, ref, sequences[ref][k], i, sequences[i][k])
				os.Exit(1)
			}
		}
	}
	aliveProbe := 0
	for i, ok := range live {
		if ok {
			aliveProbe = i
			break
		}
	}
	st, _ := c.Status(aliveProbe)
	fmt.Printf("OK: %d of %d sent messages delivered in identical total order on all live stacks; final protocol %s (epoch %d)\n",
		len(sequences[ref]), sent, st.Protocol, st.Epoch)
}
