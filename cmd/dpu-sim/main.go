// Command dpu-sim runs a scripted dynamic-protocol-update scenario and
// narrates it: n stacks exchange totally-ordered messages while the
// atomic-broadcast protocol is replaced on the fly, finishing with a
// consistency audit of the delivery sequences.
//
// In the default single-process mode the stacks share a simulated LAN
// with optional loss and crash injection:
//
//	dpu-sim -n 5 -msgs 200 -switch abcast/seq,abcast/token -loss 0.05 -crash 4
//
// In multi-process mode each process hosts one stack and the group
// communicates over real UDP sockets. Start one process per address
// book entry, each with the same -peers list and its own -listen
// address; the chain of -switch protocols is driven mid-stream by the
// processes whose turn it is:
//
//	dpu-sim -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -msgs 90 -switch abcast/seq
//	dpu-sim -listen 127.0.0.1:7001 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -msgs 90 -switch abcast/seq
//	dpu-sim -listen 127.0.0.1:7002 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -msgs 90 -switch abcast/seq
//
// Switch barriers are deterministic: the initiating process blocks in
// Node.ChangeProtocol until its local replacement completes, and every
// other process blocks in WaitForEpoch for the same epoch — no
// sleep-based guessing. Every process audits its own delivery sequence
// (exactly-once, all messages present) and prints a digest of the
// sequence; identical digests across processes certify the uniform
// total order.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/dpu"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 3, "group size (single-process mode)")
	msgs := flag.Int("msgs", 100, "messages to broadcast (round-robin senders)")
	switches := flag.String("switch", "abcast/seq", "comma-separated protocol switch chain")
	initial := flag.String("initial", dpu.ProtocolCT, "initial protocol")
	loss := flag.Float64("loss", 0, "packet loss probability (simulated in single-process mode, injected over UDP in multi-process mode)")
	crash := flag.Int("crash", -1, "stack to crash after the last switch (-1: none; single-process mode)")
	seed := flag.Int64("seed", 1, "simulation / fault-injection seed")
	listen := flag.String("listen", "", "this process's socket address (enables multi-process mode)")
	peers := flag.String("peers", "", "comma-separated address book of the whole group, in stack order (multi-process mode)")
	transportKind := flag.String("transport", "udp", "multi-process socket backend: udp (datagrams) or tcp (streams; carries payloads past the datagram ceiling)")
	joinsrv := flag.String("joinsrv", "", "TCP address to serve join handshakes on (multi-process mode; lets fresh processes -join)")
	join := flag.String("join", "", "join a running cluster via this member's -joinsrv TCP address (requires -listen for this process's UDP socket)")
	quiet := flag.Duration("quiet", 2*time.Second, "silence that ends delivery collection")
	flag.Parse()

	chain := []string{}
	for _, s := range strings.Split(*switches, ",") {
		if s = strings.TrimSpace(s); s != "" {
			chain = append(chain, s)
		}
	}

	if *join != "" {
		runJoiner(*join, *listen, *quiet)
		return
	}
	if *listen != "" {
		runMulti(*listen, *peers, *transportKind, *msgs, *initial, chain, *loss, *seed, *quiet, *joinsrv)
		return
	}
	runSingle(*n, *msgs, *initial, chain, *loss, *crash, *seed, *quiet)
}

// runJoiner is the fresh-process path: handshake with a member over
// TCP, boot the newly assigned stack over real UDP, print the view it
// landed in, then observe the totally-ordered stream until it goes
// quiet and report a digest of the observed suffix.
func runJoiner(sponsor, listen string, quiet time.Duration) {
	if listen == "" {
		fatalf("-join requires -listen (this process's UDP address)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, node, err := dpu.Join(ctx, sponsor, listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	st, err := node.Status(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("joined as member %d: %s\n", node.Index(), st)

	sub, err := node.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 8192, Policy: dpu.Block})
	if err != nil {
		fatalf("%v", err)
	}
	var sequence []string
	for {
		select {
		case d, ok := <-sub.Deliveries():
			if !ok {
				fatalf("cluster closed")
			}
			sequence = append(sequence, fmt.Sprintf("%d:%s", d.Origin, d.Data))
		case <-time.After(quiet):
			fmt.Printf("observed %d totally-ordered deliveries since joining; suffix digest %s\n",
				len(sequence), digest(sequence))
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// digest fingerprints a delivery sequence for cross-process comparison.
func digest(seq []string) string {
	h := sha256.New()
	for _, s := range seq {
		fmt.Fprintln(h, s)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// runMulti hosts one stack of an n-process group over real sockets —
// UDP datagrams or TCP streams, per -transport.
func runMulti(listen, peerList, transportKind string, msgs int, initial string, chain []string, loss float64, seed int64, quiet time.Duration, joinsrv string) {
	book := make(map[transport.Addr]string)
	self := -1
	var addrs []string
	for _, a := range strings.Split(peerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) < 2 {
		fatalf("multi-process mode needs -peers with at least two addresses")
	}
	for i, a := range addrs {
		book[transport.Addr(i)] = a
		if a == listen {
			self = i
		}
	}
	if self < 0 {
		fatalf("-listen %s does not appear in -peers %s", listen, peerList)
	}
	n := len(addrs)

	var (
		tr  transport.Transport
		err error
	)
	switch transportKind {
	case "udp":
		tr, err = transport.NewUDP(transport.UDPConfig{Book: book})
	case "tcp":
		tr, err = transport.NewTCP(transport.TCPConfig{Book: book})
	default:
		fatalf("-transport %q: want udp or tcp", transportKind)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if loss > 0 {
		tr = transport.Faulty(tr, transport.FaultConfig{Seed: seed, LossRate: loss})
	}
	endpoints := make(map[int]string, len(book))
	for a, ep := range book {
		endpoints[int(a)] = ep
	}
	c, err := dpu.New(n, dpu.WithTransport(tr), dpu.WithLocalStacks(self),
		dpu.WithInitialProtocol(initial), dpu.WithSeed(seed),
		dpu.WithMembership(), dpu.WithEndpoints(endpoints))
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	if joinsrv != "" {
		ln, err := net.Listen("tcp", joinsrv)
		if err != nil {
			fatalf("joinsrv: %v", err)
		}
		if err := c.ServeJoin(ln); err != nil {
			fatalf("joinsrv: %v", err)
		}
		fmt.Printf("serving join handshakes on %s\n", ln.Addr())
	}
	node, err := c.Node(self)
	if err != nil {
		fatalf("%v", err)
	}
	// The audit must see every delivery, so the subscription blocks the
	// stack rather than dropping when the collector lags.
	sub, err := node.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 8192, Policy: dpu.Block})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("stack %d of %d listening on %s, initial protocol %s\n", self, n, listen, initial)

	want := msgs + n // workload plus hellos
	var (
		mu        sync.Mutex
		sequence  []string
		delivered = make(map[string]int)
	)
	hellosDone := make(chan struct{})
	allDone := make(chan struct{})
	progress := make(chan struct{}, 1) // coalesced delivery ticks
	go func() {
		hellos := 0
		for d := range sub.Deliveries() {
			s := fmt.Sprintf("%d:%s", d.Origin, d.Data)
			mu.Lock()
			sequence = append(sequence, s)
			delivered[s]++
			total := len(sequence)
			mu.Unlock()
			select {
			case progress <- struct{}{}:
			default:
			}
			if strings.HasPrefix(string(d.Data), "hello-") {
				if hellos++; hellos == n {
					close(hellosDone)
				}
			}
			if total == want {
				close(allDone)
			}
		}
	}()

	ctx := context.Background()

	// Barrier: every process announces itself through the atomic
	// broadcast and waits for the whole group, so no workload message
	// races a peer that has not bound its socket yet.
	if err := node.Broadcast(ctx, []byte(fmt.Sprintf("hello-%d", self))); err != nil {
		fatalf("%v", err)
	}
	select {
	case <-hellosDone:
	case <-time.After(60 * time.Second):
		fatalf("group did not assemble within 60s")
	}
	fmt.Printf("all %d stacks joined\n", n)

	// Workload: global message index i is broadcast by stack i%n; the
	// chain's step'th switch is initiated by stack step%n after phase
	// step's share of messages. The initiator blocks until its own
	// replacement completes; everyone else waits for the same epoch —
	// later phases exercise the new protocol while earlier messages may
	// still be draining elsewhere, the live mid-stream replacement the
	// paper is about.
	phases := len(chain) + 1
	perPhase := msgs / phases
	sendRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%n != self {
				continue
			}
			if err := node.Broadcast(ctx, []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
				fatalf("%v", err)
			}
		}
	}
	lo := 0
	for step, next := range chain {
		hi := (step + 1) * perPhase
		sendRange(lo, hi)
		lo = hi
		sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		if step%n == self {
			fmt.Printf("[%s] initiating switch to %s\n", time.Now().Format("15:04:05.000"), next)
			ev, err := node.ChangeProtocol(sctx, next)
			if err != nil {
				fatalf("switch to %s: %v", next, err)
			}
			fmt.Printf("switched to %s (epoch %d, %d reissued)\n", ev.Protocol, ev.Epoch, ev.Reissued)
		} else {
			st, err := node.WaitForEpoch(sctx, uint64(step+1))
			if err != nil {
				fatalf("switch to %s never completed locally: %v", next, err)
			}
			fmt.Printf("switched to %s (epoch %d)\n", st.Protocol, st.Epoch)
		}
		cancel()
	}
	sendRange(lo, msgs)

	// Collect until every expected message arrived — tolerating any run
	// length as long as deliveries keep making progress (60s of silence
	// is the failure signal) — then linger for the quiet window so a
	// late duplicate would still be caught, and audit.
collect:
	for {
		select {
		case <-allDone:
			break collect
		case <-progress:
		case <-time.After(60 * time.Second):
			mu.Lock()
			got := len(sequence)
			mu.Unlock()
			fatalf("AGREEMENT VIOLATION: delivered %d of %d expected messages", got, want)
		}
	}
	<-time.After(quiet)

	mu.Lock()
	defer mu.Unlock()
	for s, k := range delivered {
		if k != 1 {
			fatalf("EXACTLY-ONCE VIOLATION: %s delivered %d times", s, k)
		}
	}
	if len(sequence) != want {
		fatalf("AGREEMENT VIOLATION: delivered %d, want %d", len(sequence), want)
	}
	st, err := node.Status(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("OK: stack %d delivered %d messages exactly once; final status %s\n",
		self, len(sequence), st)
	fmt.Printf("sequence digest %s (must match every peer)\n", digest(sequence))
}

// runSingle is the original scripted scenario over the simulated LAN.
func runSingle(n, msgs int, initial string, chain []string, loss float64, crash int, seed int64, quiet time.Duration) {
	opts := []dpu.Option{
		dpu.WithSeed(seed),
		dpu.WithInitialProtocol(initial),
	}
	if loss > 0 {
		opts = append(opts, dpu.WithLoss(loss))
	}
	c, err := dpu.New(n, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	ctx := context.Background()

	nodes := make([]*dpu.Node, n)
	subs := make([]*dpu.Subscription, n)
	for i := 0; i < n; i++ {
		if nodes[i], err = c.Node(i); err != nil {
			fatalf("%v", err)
		}
		// Sized to hold the whole workload so the audit-side collector
		// can read after the fact without ever blocking the stacks.
		subs[i], err = nodes[i].Subscribe(dpu.SubscribeOptions{
			Deliveries: true, Buffer: msgs + 64, Policy: dpu.Block,
		})
		if err != nil {
			fatalf("%v", err)
		}
	}

	phases := len(chain) + 1
	perPhase := msgs / phases
	sent := 0
	sendBatch := func(k int) {
		for i := 0; i < k; i++ {
			payload := fmt.Sprintf("msg-%04d", sent)
			if err := nodes[sent%n].Broadcast(ctx, []byte(payload)); err == nil {
				sent++
			}
		}
	}

	fmt.Printf("group of %d stacks, initial protocol %s, %d messages, loss %.0f%%\n",
		n, initial, msgs, loss*100)
	sendBatch(perPhase)
	for step, next := range chain {
		initiator := step % n
		fmt.Printf("[%v] switching to %s (initiated by stack %d)...\n",
			time.Now().Format("15:04:05.000"), next, initiator)
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		ev, err := nodes[initiator].ChangeProtocol(sctx, next)
		if err != nil {
			fatalf("switch to %s: %v", next, err)
		}
		fmt.Printf("  stack %d switched to %s (epoch %d, %d reissued)\n",
			initiator, ev.Protocol, ev.Epoch, ev.Reissued)
		for i := 0; i < n; i++ {
			if i == initiator {
				continue
			}
			st, err := c.WaitForEpoch(sctx, i, ev.Epoch)
			if err != nil {
				fatalf("stack %d never switched: %v", i, err)
			}
			fmt.Printf("  stack %d switched to %s (epoch %d)\n", i, st.Protocol, st.Epoch)
		}
		cancel()
		sendBatch(perPhase)
	}
	sendBatch(msgs - sent) // remainder

	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	if crash >= 0 && crash < n {
		// Fault drill: give the doomed stack's queued broadcasts a
		// moment to leave; whatever is still local when it dies is
		// legitimately lost (uniform agreement covers only messages
		// that got delivered somewhere).
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("crashing stack %d\n", crash)
		nodes[crash].Crash()
		live[crash] = false
	}

	// Collect until each live stack has been quiet for a while, then
	// audit: every live stack must have delivered the identical
	// sequence (uniform agreement + uniform total order).
	sequences := make([][]string, n)
	for i := 0; i < n; i++ {
		if !live[i] {
			continue
		}
	collect:
		for {
			wait := quiet
			if len(sequences[i]) >= sent {
				wait = 200 * time.Millisecond
			}
			select {
			case d, ok := <-subs[i].Deliveries():
				if !ok {
					break collect
				}
				sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
			case <-time.After(wait):
				break collect
			}
		}
	}
	ref := -1
	for i := 0; i < n; i++ {
		if !live[i] {
			continue
		}
		if ref == -1 {
			ref = i
			continue
		}
		if len(sequences[i]) != len(sequences[ref]) {
			fatalf("AGREEMENT VIOLATION: stack %d delivered %d, stack %d delivered %d",
				i, len(sequences[i]), ref, len(sequences[ref]))
		}
		for k := range sequences[ref] {
			if sequences[i][k] != sequences[ref][k] {
				fatalf("ORDER VIOLATION at %d: stack %d=%s stack %d=%s",
					k, ref, sequences[ref][k], i, sequences[i][k])
			}
		}
	}
	aliveProbe := 0
	for i, ok := range live {
		if ok {
			aliveProbe = i
			break
		}
	}
	st, _ := nodes[aliveProbe].Status(ctx)
	fmt.Printf("OK: %d of %d sent messages delivered in identical total order on all live stacks; final status %s\n",
		len(sequences[ref]), sent, st)
}
