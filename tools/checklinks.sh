#!/bin/sh
# checklinks.sh — fail on dead relative links in the repo's *.md files.
#
# Checks every markdown inline link target that is not an absolute URL
# or an in-page anchor: the referenced path must exist relative to the
# file containing the link (anchors on existing files are not
# validated — only the file's existence is).
#
# Usage: sh tools/checklinks.sh   (from the repository root)
set -eu

status=0
for f in $(git ls-files '*.md'); do
    dir=$(dirname "$f")
    # Inline links: capture the (...) target of ](...), strip any #anchor.
    for link in $(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' -e 's/#.*$//'); do
        case "$link" in
        '' | http://* | https://* | mailto:*) continue ;;
        esac
        if [ ! -e "$dir/$link" ]; then
            echo "$f: dead relative link: $link"
            status=1
        fi
    done
done
if [ "$status" -ne 0 ]; then
    echo "dead links found (paths are resolved relative to the linking file)"
fi
exit $status
