// Command tools/lint is the one-line entry point for the dpu-lint
// analyzer suite (see docs/LINTING.md):
//
//	go run ./tools/lint
//
// It is a thin alias of cmd/dpu-lint's standalone mode, kept under
// tools/ so contributors and CI have a single place to look for
// repository tooling. For the go vet integration build the real binary:
//
//	go build -o dpu-lint ./cmd/dpu-lint
//	go vet -vettool=./dpu-lint ./...
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	findings, err := lint.RunProgram(prog, analyzers.All(), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
