// Allocation budgets for the hot paths the perf work pins down. These
// are ordinary tests (not benchmarks) so CI fails loudly when a change
// re-introduces per-event allocations the batch-drain executor and the
// pooled codec removed.
package repro_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/kernel"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
	"repro/internal/wire"
)

// TestKernelDispatchAllocBudget asserts the typed Call fast-path stays
// closure-free: enqueueing and dispatching one pre-boxed request must
// cost at most ~1 allocation amortized (queue growth), where the old
// closure-per-event loop paid one closure plus queue growth.
func TestKernelDispatchAllocBudget(t *testing.T) {
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	defer st.Close()
	var handled atomic.Int64
	if err := st.DoSync(func() {
		m := &countingModule{Base: kernel.NewBase(st, "budget"), count: &handled}
		st.AddModule(m)
		st.Bind("svc", m)
	}); err != nil {
		t.Fatal(err)
	}
	var req kernel.Request = struct{}{} // pre-boxed: measures the kernel, not the caller
	avg := testing.AllocsPerRun(20000, func() {
		st.Call("svc", req)
	})
	st.DoSync(func() {})
	if avg > 1.0 {
		t.Errorf("kernel Call fast-path allocates %.2f allocs/op, budget 1.0", avg)
	}
	if handled.Load() == 0 {
		t.Fatal("no requests dispatched")
	}
}

// TestPoolDispatchAllocBudget is the pool-mode twin of the dispatch
// budget: scheduling a stack on the shared executor pool must not
// reintroduce per-event allocations. The only extra cost allowed over
// dedicated mode is the amortized run-queue growth on the idle→scheduled
// transition.
func TestPoolDispatchAllocBudget(t *testing.T) {
	pool := kernel.NewPool(2)
	defer pool.Close()
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}, Pool: pool})
	var handled atomic.Int64
	if err := st.DoSync(func() {
		m := &countingModule{Base: kernel.NewBase(st, "budget"), count: &handled}
		st.AddModule(m)
		st.Bind("svc", m)
	}); err != nil {
		t.Fatal(err)
	}
	var req kernel.Request = struct{}{}
	avg := testing.AllocsPerRun(20000, func() {
		st.Call("svc", req)
	})
	st.DoSync(func() {})
	st.Close()
	if avg > 1.0 {
		t.Errorf("pooled Call fast-path allocates %.2f allocs/op, budget 1.0", avg)
	}
	if handled.Load() == 0 {
		t.Fatal("no requests dispatched")
	}
}

// TestBatchEnqueueFlushAllocBudget asserts the batched send path is
// (amortized) allocation-light in steady state: Enqueue parks the frame
// on a pooled writer and the per-destination queue reuses its backing
// array; Flush builds sendmmsg headers into arrays wired up once at
// open. The residue allowed covers the RawConn closure and sync.Pool
// slack.
func TestBatchEnqueueFlushAllocBudget(t *testing.T) {
	if !transport.BatchSyscallsAvailable() {
		t.Skip("no batched syscall backend on this platform")
	}
	book := make(map[transport.Addr]string, 2)
	for i, a := range transporttest.ReserveAddrs(t, 2) {
		book[transport.Addr(i)] = a
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Open(1, func(transport.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Open(0, func(transport.Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bs, ok := ep.(transport.BatchSender)
	if !ok {
		t.Fatalf("%T is not a BatchSender", ep)
	}
	payload := make([]byte, 128)
	// Warm up: let the send queue and writer pool reach steady state.
	for i := 0; i < 64; i++ {
		bs.Enqueue(1, payload)
	}
	bs.Flush()
	avg := testing.AllocsPerRun(5000, func() {
		for i := 0; i < 8; i++ {
			bs.Enqueue(1, payload)
		}
		bs.Flush()
	})
	perDatagram := avg / 8
	if perDatagram > 1.0 {
		t.Errorf("batched send path allocates %.2f allocs/datagram, budget 1.0", perDatagram)
	}
}

// TestPooledWriterAllocBudget asserts the pooled codec writer is
// allocation-free in steady state.
func TestPooledWriterAllocBudget(t *testing.T) {
	payload := make([]byte, 256)
	avg := testing.AllocsPerRun(10000, func() {
		w := wire.GetWriter(len(payload) + 32)
		w.Byte(1).Uvarint(7).String("ch").Raw(payload)
		w.Free()
	})
	// sync.Pool gives no hard guarantee (GC may empty it), so allow a
	// small residue rather than asserting exactly zero.
	if avg > 0.5 {
		t.Errorf("pooled writer allocates %.2f allocs/op in steady state, budget 0.5", avg)
	}
}
