// Allocation budgets for the hot paths the perf work pins down. These
// are ordinary tests (not benchmarks) so CI fails loudly when a change
// re-introduces per-event allocations the batch-drain executor and the
// pooled codec removed.
package repro_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/kernel"
	"repro/internal/wire"
)

// TestKernelDispatchAllocBudget asserts the typed Call fast-path stays
// closure-free: enqueueing and dispatching one pre-boxed request must
// cost at most ~1 allocation amortized (queue growth), where the old
// closure-per-event loop paid one closure plus queue growth.
func TestKernelDispatchAllocBudget(t *testing.T) {
	st := kernel.NewStack(kernel.Config{Addr: 0, Peers: []kernel.Addr{0}})
	defer st.Close()
	var handled atomic.Int64
	if err := st.DoSync(func() {
		m := &countingModule{Base: kernel.NewBase(st, "budget"), count: &handled}
		st.AddModule(m)
		st.Bind("svc", m)
	}); err != nil {
		t.Fatal(err)
	}
	var req kernel.Request = struct{}{} // pre-boxed: measures the kernel, not the caller
	avg := testing.AllocsPerRun(20000, func() {
		st.Call("svc", req)
	})
	st.DoSync(func() {})
	if avg > 1.0 {
		t.Errorf("kernel Call fast-path allocates %.2f allocs/op, budget 1.0", avg)
	}
	if handled.Load() == 0 {
		t.Fatal("no requests dispatched")
	}
}

// TestPooledWriterAllocBudget asserts the pooled codec writer is
// allocation-free in steady state.
func TestPooledWriterAllocBudget(t *testing.T) {
	payload := make([]byte, 256)
	avg := testing.AllocsPerRun(10000, func() {
		w := wire.GetWriter(len(payload) + 32)
		w.Byte(1).Uvarint(7).String("ch").Raw(payload)
		w.Free()
	})
	// sync.Pool gives no hard guarantee (GC may empty it), so allow a
	// small residue rather than asserting exactly zero.
	if avg > 0.5 {
		t.Errorf("pooled writer allocates %.2f allocs/op in steady state, budget 0.5", avg)
	}
}
