// Package dpu is the public API of the dynamic-protocol-update library:
// a reproduction of "Structural and Algorithmic Issues of Dynamic
// Protocol Update" (Rütti, Wojciechowski, Schiper — IPDPS 2006).
//
// A Cluster assembles n protocol stacks (the paper's machines) over a
// simulated LAN — or, with WithTransport, over real UDP sockets
// spanning OS processes and hosts — each running the Figure-4
// group-communication stack — UDP, reliable point-to-point, failure
// detector, Chandra–Toueg consensus, atomic broadcast — topped by the
// replacement module that makes the atomic-broadcast protocol
// hot-swappable.
//
// Interaction goes through per-stack Node handles, which are validated
// once (sentinel errors ErrOutOfRange, ErrRemoteStack, ErrNotRunning)
// and take a context on every blocking operation:
//
//	c, _ := dpu.New(3)
//	defer c.Close()
//	node, _ := c.Node(0)
//	sub, _ := node.Subscribe(dpu.SubscribeOptions{Deliveries: true})
//	node.Broadcast(ctx, []byte("hello"))           // backpressured
//	ev, _ := node.ChangeProtocol(ctx, dpu.ProtocolSequencer)
//	// ev is the completed switch: the paper's "seqNumber advanced"
//	for d := range sub.Deliveries() { ... }        // totally ordered
//
// ChangeProtocol blocks until the replacement completes locally — the
// well-defined moment of Algorithm 1 where seqNumber advances and
// undelivered messages are reissued — and returns the resulting
// SwitchEvent. WaitForEpoch gives the same barrier to observers that
// did not initiate the change; ChangeProtocolAll drives a whole local
// group. Messages broadcast before, during and after a replacement are
// delivered exactly once, in the same total order, on every stack.
//
// # Elastic membership
//
// With WithMembership the cluster is elastic: GM views drive the peer
// set of every layer, so members can be added and evicted at runtime.
// Cluster.AddNode admits a new node whose stack boots on the coherent
// cut its ordered join created (delivering the same totally-ordered
// suffix as the founders), Node.Evict removes a member with commit
// confirmation, WithAutoEvict turns failure-detector suspicions into
// ordered evictions, and ServeJoin/Join extend the same handshake
// across OS processes over real UDP. See docs/OPERATIONS.md for the
// operator runbook.
//
// # Adaptive protocol switching
//
// With WithAdaptive the cluster decides for itself when to switch: an
// adaptation engine samples runtime signals (loss estimated from RP2P
// retransmissions, ack RTT, consensus latency, throughput), evaluates
// a policy (LossSensitivePolicy, LatencySensitivePolicy, or custom),
// and — once a decision survives hysteresis and cooldown — drives
// ChangeProtocolAll. Every decision is observable through Node.Advise
// and Subscribe(Advice); the Advisory option reports decisions without
// acting on them. Runtime network mutators (SetLoss, SetDelay,
// SetJitter) and cmd/dpu-bench's -scenario timelines exercise the
// loop; docs/ADAPTIVE.md covers signals, policies and tuning.
//
// The index-based Cluster methods (Broadcast, ChangeProtocol,
// Deliveries, ...) survive as thin deprecated wrappers around the Node
// API; see the migration table in the README.
package dpu
